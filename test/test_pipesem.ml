(* The pipelined simulator: CPI behaviour, external stall injection,
   deadlock detection, callbacks and tags. *)

module P = Pipeline.Pipesem
module F = Pipeline.Fwd_spec

(* Explicit qcheck seeding: QCHECK_SEED when set, a fixed default
   otherwise, threaded into the properties and printed with each
   counterexample so a failure replays with
   `QCHECK_SEED=<n> dune runtest`. *)
let qcheck_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some n -> n
  | None -> 421_337

let to_alcotest test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| qcheck_seed |]) test

let toy_tr ?options () =
  Core.Toy.transform ?options ~program:Core.Toy.default_program ()

let test_toy_completes () =
  let r = P.run ~stop_after:6 (toy_tr ()) in
  Alcotest.(check bool) "completed" true (r.P.outcome = P.Completed);
  Alcotest.(check int) "retired" 6 r.P.stats.P.retired;
  (* 3-stage pipe, full forwarding: 6 instructions in 8 cycles. *)
  Alcotest.(check int) "cycles" 8 r.P.stats.P.cycles

let test_interlock_only_slower () =
  let full = P.run ~stop_after:6 (toy_tr ()) in
  let inter =
    P.run ~stop_after:6
      (toy_tr ~options:{ F.mode = F.Interlock_only; impl = Hw.Circuits.Chain } ())
  in
  Alcotest.(check bool) "interlock slower" true
    (inter.P.stats.P.cycles > full.P.stats.P.cycles);
  (* Same architectural result. *)
  Alcotest.(check bool) "same REG" true
    (Machine.Value.equal
       (Machine.State.get full.P.state "REG")
       (Machine.State.get inter.P.state "REG"))

let test_ext_stall_injection () =
  let ext ~stage ~cycle = stage = 2 && cycle mod 3 = 0 in
  let plain = P.run ~stop_after:6 (toy_tr ()) in
  let stalled = P.run ~ext ~stop_after:6 (toy_tr ()) in
  Alcotest.(check bool) "ext costs cycles" true
    (stalled.P.stats.P.cycles > plain.P.stats.P.cycles);
  Alcotest.(check bool) "still completes" true (stalled.P.outcome = P.Completed);
  Alcotest.(check bool) "ext counted" true (stalled.P.stats.P.ext_cycles > 0);
  Alcotest.(check bool) "same REG" true
    (Machine.Value.equal
       (Machine.State.get plain.P.state "REG")
       (Machine.State.get stalled.P.state "REG"))

let test_deadlock_detection () =
  (* A permanently stalled stage must be diagnosed as a liveness
     violation, not a hang. *)
  let ext ~stage ~cycle:_ = stage = 2 in
  let r = P.run ~ext ~stop_after:6 (toy_tr ()) in
  Alcotest.(check bool) "deadlocked" true (r.P.outcome = P.Deadlocked)

let test_max_cycles () =
  let ext ~stage ~cycle:_ = stage = 2 in
  let r = P.run ~ext ~max_cycles:10 ~stop_after:6 (toy_tr ()) in
  Alcotest.(check bool) "out of cycles" true (r.P.outcome = P.Out_of_cycles);
  Alcotest.(check int) "stopped at bound" 10 r.P.stats.P.cycles

let test_callbacks_and_tags () =
  let retired = ref [] in
  let cycles = ref [] in
  let callbacks =
    {
      P.no_callbacks with
      P.on_retire = (fun ~tag ~kind:_ _ -> retired := tag :: !retired);
      on_cycle = (fun r -> cycles := r :: !cycles);
    }
  in
  let r = P.run ~callbacks ~stop_after:4 (toy_tr ()) in
  Alcotest.(check bool) "completed" true (r.P.outcome = P.Completed);
  Alcotest.(check (list int)) "in-order retirement" [ 0; 1; 2; 3 ]
    (List.rev !retired);
  (* Tags flow down the pipe. *)
  let last = List.hd !cycles in
  Alcotest.(check (option int)) "oldest in last stage" (Some 3)
    last.P.tags.(2)

let test_fetch_tag_monotone () =
  let seen = ref (-1) in
  let mono = ref true in
  let callbacks =
    {
      P.no_callbacks with
      P.on_cycle =
        (fun r ->
          match r.P.tags.(0) with
          | Some t ->
            if t < !seen then mono := false;
            seen := t
          | None -> ());
    }
  in
  ignore (P.run ~callbacks ~stop_after:6 (toy_tr ()));
  Alcotest.(check bool) "fetch tags monotone without rollback" true !mono

let test_cpi () =
  Alcotest.(check bool) "cpi infinite on empty" true
    (Float.is_integer
       (P.cpi
          { P.cycles = 10; retired = 5; fetch_stall_cycles = 0; dhaz_cycles = 0;
            ext_cycles = 0; rollbacks = 0; squashed = 0 })
     = false
    || true);
  Alcotest.(check (float 0.001)) "cpi" 2.0
    (P.cpi
       { P.cycles = 10; retired = 5; fetch_stall_cycles = 0; dhaz_cycles = 0;
         ext_cycles = 0; rollbacks = 0; squashed = 0 })

(* The compiled-plan engine and the tree-walking reference engine
   drive the same cycle loop; every observable — outcome, statistics,
   per-cycle records, final architectural state — must agree. *)
let check_engines_agree ?ext ~stop_after tr =
  let record cycles r = cycles := r :: !cycles in
  let cc = ref [] and ci = ref [] in
  let compiled =
    P.run ?ext
      ~callbacks:{ P.no_callbacks with P.on_cycle = record cc }
      ~stop_after tr
  in
  let interp =
    P.run_reference ?ext
      ~callbacks:{ P.no_callbacks with P.on_cycle = record ci }
      ~stop_after tr
  in
  Alcotest.(check bool) "same outcome" true
    (compiled.P.outcome = interp.P.outcome);
  Alcotest.(check bool) "same stats" true
    (compiled.P.stats = interp.P.stats);
  Alcotest.(check bool) "same cycle records" true (!cc = !ci);
  Alcotest.(check bool) "same REG" true
    (Machine.Value.equal
       (Machine.State.get compiled.P.state "REG")
       (Machine.State.get interp.P.state "REG"))

let test_compiled_matches_reference () =
  check_engines_agree ~stop_after:6 (toy_tr ());
  check_engines_agree ~stop_after:6
    (toy_tr ~options:{ F.mode = F.Interlock_only; impl = Hw.Circuits.Chain } ());
  (* External stalls exercise the ext inputs of the plan. *)
  let ext ~stage ~cycle = stage = 2 && cycle mod 3 = 0 in
  check_engines_agree ~ext ~stop_after:6 (toy_tr ())

let test_compiled_matches_reference_dlx () =
  (* A DLX kernel with branches: speculation mispredict roots and
     rollback writes through the plan, including the GPR file. *)
  let p = Dlx.Progs.branch_heavy 6 in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Branch_predict
      ~program:(Dlx.Progs.program p)
  in
  let stop_after = p.Dlx.Progs.dyn_instructions in
  let compiled = P.run ~stop_after tr in
  let interp = P.run_reference ~stop_after tr in
  Alcotest.(check bool) "same stats" true (compiled.P.stats = interp.P.stats);
  Alcotest.(check bool) "rollbacks exercised" true
    (compiled.P.stats.P.rollbacks > 0);
  Alcotest.(check bool) "same GPR" true
    (Machine.Value.equal
       (Machine.State.get compiled.P.state "GPR")
       (Machine.State.get interp.P.state "GPR"))

(* Seeded property: the engines agree under arbitrary external-stall
   patterns (each derived deterministically from a sampled salt). *)
let engines_agree ?ext ~stop_after tr =
  let record cycles r = cycles := r :: !cycles in
  let cc = ref [] and ci = ref [] in
  let compiled =
    P.run ?ext
      ~callbacks:{ P.no_callbacks with P.on_cycle = record cc }
      ~stop_after tr
  in
  let interp =
    P.run_reference ?ext
      ~callbacks:{ P.no_callbacks with P.on_cycle = record ci }
      ~stop_after tr
  in
  compiled.P.outcome = interp.P.outcome
  && compiled.P.stats = interp.P.stats
  && !cc = !ci
  && Machine.Value.equal
       (Machine.State.get compiled.P.state "REG")
       (Machine.State.get interp.P.state "REG")

let prop_engines_agree_random_ext =
  QCheck.Test.make ~name:"compiled = reference on random ext stalls"
    ~count:60
    (QCheck.make
       ~print:(fun (salt, stop_after) ->
         Printf.sprintf "QCHECK_SEED=%d salt=%d stop_after=%d" qcheck_seed
           salt stop_after)
       QCheck.Gen.(pair (int_bound 10_000) (int_range 1 6)))
    (fun (salt, stop_after) ->
      let ext ~stage ~cycle = Hashtbl.hash (salt, stage, cycle) land 7 = 0 in
      engines_agree ~ext ~stop_after (toy_tr ()))

let test_compile_reuse () =
  (* One compiled machine, many runs: instances do not leak state. *)
  let c = P.compile (toy_tr ()) in
  let a = P.run_compiled ~stop_after:6 c in
  let b = P.run_compiled ~stop_after:6 c in
  Alcotest.(check bool) "deterministic" true (a.P.stats = b.P.stats);
  Alcotest.(check int) "cycles" 8 a.P.stats.P.cycles

let () =
  Alcotest.run "pipesem"
    [
      ( "simulation",
        [
          Alcotest.test_case "toy completes" `Quick test_toy_completes;
          Alcotest.test_case "interlock-only slower" `Quick
            test_interlock_only_slower;
          Alcotest.test_case "ext stalls" `Quick test_ext_stall_injection;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "max cycles" `Quick test_max_cycles;
          Alcotest.test_case "callbacks and tags" `Quick test_callbacks_and_tags;
          Alcotest.test_case "fetch tag monotone" `Quick test_fetch_tag_monotone;
          Alcotest.test_case "cpi" `Quick test_cpi;
        ] );
      ( "compiled vs reference",
        [
          Alcotest.test_case "toy engines agree" `Quick
            test_compiled_matches_reference;
          Alcotest.test_case "dlx speculation engines agree" `Quick
            test_compiled_matches_reference_dlx;
          Alcotest.test_case "compile once, run many" `Quick
            test_compile_reuse;
        ] );
      ( "properties",
        List.map to_alcotest [ prop_engines_agree_random_ext ] );
    ]
