(* The service layer: request/response codecs, the CLI-equivalent
   handler, the content-addressed verdict cache, batch admission. *)

module Req = Service.Request
module Resp = Service.Response
module H = Service.Handler
module MS = Service.Machine_spec
module J = Obs.Json

(* ------------------------------------------------------------------ *)
(* Machine_spec                                                       *)
(* ------------------------------------------------------------------ *)

let test_machine_spec_roundtrip () =
  List.iter
    (fun m ->
      match MS.of_string (MS.to_string m) with
      | Ok m' -> Alcotest.(check bool) (MS.to_string m) true (m = m')
      | Error msg -> Alcotest.fail msg)
    MS.all;
  Alcotest.(check int) "five machines" 5 (List.length MS.names)

(* [contains s sub]: naive substring search, enough for diagnostics. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let test_machine_spec_unknown () =
  match MS.of_string "z80" with
  | Ok _ -> Alcotest.fail "z80 accepted"
  | Error msg ->
    Alcotest.(check bool) "names the machine" true
      (contains msg "unknown machine z80");
    List.iter
      (fun name ->
        Alcotest.(check bool) ("lists " ^ name) true (contains msg name))
      MS.names

(* ------------------------------------------------------------------ *)
(* Request codec                                                      *)
(* ------------------------------------------------------------------ *)

(* Floats that survive the JSON text round-trip exactly. *)
let safe_floats = [ 0.0; 0.25; 0.5; 0.75; 1.0; 1.5; 30.0 ]

let gen_request =
  let open QCheck.Gen in
  let gen_id = opt (oneofl [ "r1"; "batch42"; "x" ]) in
  let gen_spec =
    let* machine = oneofl MS.all in
    let* kernel = opt (oneofl [ "fib_10"; "memcpy_8"; "fib" ]) in
    let* program_file = opt (oneofl [ "prog.s"; "a/b.s" ]) in
    let* interlock_only = bool in
    let* impl = oneofl [ Hw.Circuits.Chain; Hw.Circuits.Tree; Hw.Circuits.Bus ] in
    return { Req.machine; kernel; program_file; interlock_only; impl }
  in
  let gen_kind =
    oneof
      [
        (let* verilog = bool in
         return (Req.Transform { verilog }));
        return Req.Verify;
        return Req.Proof;
        return Req.Stats;
        (let* seed = small_nat in
         let* mutants = opt (int_range 1 50) in
         let* transients = small_nat in
         let* hang = bool in
         let* timeout_s = oneofl safe_floats in
         let* bmc = bool in
         return (Req.Campaign { seed; mutants; transients; hang; timeout_s; bmc }));
        (let* axis = oneofl [ Req.Dependency; Req.Branch ] in
         let* points = list_size (int_range 1 4) (oneofl safe_floats) in
         let* length = int_range 1 100 in
         let* seed = small_nat in
         let* lanes = bool in
         return (Req.Sweep { axis; points; length; seed; lanes }));
      ]
  in
  let* id = gen_id in
  let* spec = gen_spec in
  let* kind = gen_kind in
  QCheck.Gen.return { Req.id; spec; kind }

let arb_request = QCheck.make ~print:Req.to_string gen_request

let test_request_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"request JSON round-trip" ~count:200 arb_request
       (fun r ->
         match Req.of_string (Req.to_string r) with
         | Ok r' -> Req.equal r r'
         | Error e ->
           QCheck.Test.fail_reportf "rejected own encoding: %s at %s" e.message
             e.path))

let test_request_unknown_field () =
  match
    Req.of_string
      {|{"pipegen":1,"kind":"verify","machine":"toy3","bogus":7}|}
  with
  | Ok _ -> Alcotest.fail "unknown field accepted"
  | Error e ->
    Alcotest.(check string) "path names the key" "$.bogus" e.Req.path

let test_request_kind_mismatched_field () =
  (* A field of another kind is an unknown field for this kind. *)
  match
    Req.of_string {|{"pipegen":1,"kind":"verify","verilog":true}|}
  with
  | Ok _ -> Alcotest.fail "verilog accepted on verify"
  | Error e -> Alcotest.(check string) "path" "$.verilog" e.Req.path

let test_request_version () =
  (match Req.of_string {|{"pipegen":2,"kind":"verify"}|} with
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error e -> Alcotest.(check string) "path" "$.pipegen" e.Req.path);
  match Req.of_string {|{"kind":"verify"}|} with
  | Ok _ -> Alcotest.fail "missing version accepted"
  | Error e -> Alcotest.(check string) "path" "$.pipegen" e.Req.path

let test_request_wrong_type () =
  match Req.of_string {|{"pipegen":1,"kind":"verify","kernel":3}|} with
  | Ok _ -> Alcotest.fail "int kernel accepted"
  | Error e ->
    Alcotest.(check string) "path" "$.kernel" e.Req.path;
    Alcotest.(check string) "message" "expected a string" e.Req.message

let test_request_sweep_requires_points () =
  match
    Req.of_string {|{"pipegen":1,"kind":"sweep","axis":"dependency"}|}
  with
  | Ok _ -> Alcotest.fail "pointless sweep accepted"
  | Error e -> Alcotest.(check string) "path" "$.points" e.Req.path

(* ------------------------------------------------------------------ *)
(* Response codec                                                     *)
(* ------------------------------------------------------------------ *)

let sample_verify_summary =
  {
    Resp.v_verified = true;
    v_violations = 0;
    v_edge_checks = 12;
    v_liveness_ok = true;
    v_max_gap = 3;
    v_obligations = 9;
    v_obligations_failed = [];
    v_coverage_holes = [ "rule r3 never fired" ];
  }

let sample_row =
  {
    Workload.Stats.label = "p0.5";
    instructions = 32;
    cycles = 48;
    cpi = 1.5;
    speedup_vs_sequential = 2.0;
    fetch_stall_cycles = 4;
    dhaz_cycles = 8;
    ext_cycles = 0;
    rollbacks = 1;
    squashed = 2;
  }

let sample_responses =
  [
    Resp.ok ~id:"t1"
      (Resp.Transformed
         { summary = "m\n"; inventory = "inv\n"; verilog = None });
    Resp.ok
      (Resp.Transformed
         { summary = "m\n"; inventory = "inv\n"; verilog = Some "module x;" });
    Resp.ok ~cached:true
      (Resp.Verdict { summary = sample_verify_summary; text = "VERIFIED\n" });
    Resp.ok (Resp.Proof_text { verified = false; text = "theory T\n" });
    Resp.ok
      (Resp.Stats_report
         { summary = J.Obj [ ("cycles", J.Int 48) ]; text = "cpi 1.5\n" });
    Resp.ok
      (Resp.Campaign_report
         {
           summary =
             {
               Fault.Campaign.mutants = 3;
               detected = 2;
               masked = 1;
               missed = 0;
               timed_out = 0;
               aborted = 0;
             };
           outcomes = J.List [];
           text = "campaign\n";
         });
    Resp.ok (Resp.Sweep_rows { rows = [ (0.5, sample_row) ]; text = "table\n" });
    Resp.fail ~id:"e1" Resp.Usage "unknown machine z80";
    Resp.fail ~phase:"transform" Resp.Internal "boom";
    Resp.fail Resp.Timeout "request timed out after 1.00s";
    Resp.fail Resp.Cancelled "shutting down";
    Resp.fail Resp.Failed_check "verification failed";
  ]

let test_response_roundtrip () =
  List.iter
    (fun r ->
      match Resp.of_string (Resp.to_string r) with
      | Ok r' ->
        Alcotest.(check bool)
          ("round-trip: " ^ Resp.to_string r)
          true (Resp.equal r r')
      | Error msg -> Alcotest.fail (Resp.to_string r ^ ": " ^ msg))
    sample_responses

let test_exit_codes () =
  let code r = Resp.exit_code r in
  Alcotest.(check int) "usage" 2 (code (Resp.fail Resp.Usage "x"));
  Alcotest.(check int) "failed_check" 3 (code (Resp.fail Resp.Failed_check "x"));
  Alcotest.(check int) "timeout" 3 (code (Resp.fail Resp.Timeout "x"));
  Alcotest.(check int) "internal" 1 (code (Resp.fail Resp.Internal "x"));
  Alcotest.(check int) "cancelled" 1 (code (Resp.fail Resp.Cancelled "x"));
  Alcotest.(check int) "verified" 0
    (code
       (Resp.ok (Resp.Verdict { summary = sample_verify_summary; text = "" })));
  Alcotest.(check int) "unverified" 3
    (code
       (Resp.ok
          (Resp.Verdict
             {
               summary = { sample_verify_summary with Resp.v_verified = false };
               text = "";
             })));
  Alcotest.(check bool) "unverified has diagnostic" true
    (Resp.failure_message
       (Resp.ok
          (Resp.Verdict
             {
               summary = { sample_verify_summary with Resp.v_verified = false };
               text = "";
             }))
    = Some "verification failed")

(* ------------------------------------------------------------------ *)
(* Handler: CLI-equivalent output                                     *)
(* ------------------------------------------------------------------ *)

let render f =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let spec machine = { Req.default_spec with Req.machine }

(* The pre-service CLI's verify printing, replicated independently:
   the handler must produce these exact bytes. *)
let expected_verify_text s =
  let tr = Workload.Sim.transform s.H.sim in
  let n = Workload.Sim.instructions s.H.sim in
  let v =
    match
      Core.verify_result ?reference:s.H.reference ~max_instructions:n
        ~compiled:(Workload.Sim.compiled s.H.sim) ?disasm:s.H.disasm tr
    with
    | Ok v -> v
    | Error _ -> Alcotest.fail "verification aborted"
  in
  let cov = Pipeline.Coverage.measure ~stop_after:n tr in
  render (fun fmt ->
      Format.fprintf fmt "%a" Proof_engine.Consistency.pp_report
        v.Core.consistency;
      Format.fprintf fmt "%a" Proof_engine.Liveness.pp_report v.Core.liveness;
      Format.fprintf fmt "%a" Pipeline.Coverage.pp cov;
      List.iter
        (Format.fprintf fmt "  coverage hole: %s@.")
        (Pipeline.Coverage.holes cov);
      Format.fprintf fmt "obligations:@.%a" Proof_engine.Obligation.pp
        v.Core.obligations;
      if Core.verified v then Format.fprintf fmt "VERIFIED@."
      else Format.fprintf fmt "VERIFICATION FAILED@.")

let expected_stats_text s =
  let _, summary = Workload.Sim.attribute s.H.sim in
  render (fun fmt ->
      Format.fprintf fmt "%a" Obs.Hazard.pp_summary summary;
      Format.fprintf fmt "%a" Obs.Hazard.pp_decomposition
        (Obs.Hazard.decompose summary))

let handle_text req =
  match (H.handle req).Resp.result with
  | Ok p -> Resp.text p
  | Error e -> Alcotest.fail (Resp.error_message e)

let test_handler_verify_matches_cli () =
  List.iter
    (fun m ->
      let s = H.select (spec m) in
      Alcotest.(check string)
        ("verify text, " ^ MS.to_string m)
        (expected_verify_text s)
        (handle_text (Req.make ~spec:(spec m) Req.Verify)))
    [ MS.Toy3; MS.Dlx5 ]

let test_handler_stats_matches_cli () =
  List.iter
    (fun m ->
      let s = H.select (spec m) in
      Alcotest.(check string)
        ("stats text, " ^ MS.to_string m)
        (expected_stats_text s)
        (handle_text (Req.make ~spec:(spec m) Req.Stats)))
    [ MS.Toy3; MS.Dlx5 ]

let test_handler_usage_errors () =
  let r =
    H.handle
      (Req.make ~spec:{ (spec MS.Dlx5) with Req.kernel = Some "nosuch" }
         Req.Verify)
  in
  (match r.Resp.result with
  | Error { Resp.code = Resp.Usage; message; _ } ->
    Alcotest.(check bool) "names the kernel" true
      (contains message "unknown kernel")
  | _ -> Alcotest.fail "expected a usage error");
  Alcotest.(check int) "exit 2" 2 (Resp.exit_code r)

(* ------------------------------------------------------------------ *)
(* Verdict cache and shape reuse                                      *)
(* ------------------------------------------------------------------ *)

let payload_bytes r =
  match r.Resp.result with
  | Ok p -> J.to_string ~minify:true (Resp.payload_to_json p)
  | Error e -> Alcotest.fail (Resp.error_message e)

let test_cache_bit_identity () =
  let env = H.create_env () in
  let req = Req.make ~spec:(spec MS.Toy3) Req.Verify in
  let r1 = H.handle ~env req in
  let r2 = H.handle ~env req in
  Alcotest.(check bool) "cold is uncached" false r1.Resp.cached;
  Alcotest.(check bool) "replay is cached" true r2.Resp.cached;
  Alcotest.(check string) "bit-identical payload" (payload_bytes r1)
    (payload_bytes r2);
  Alcotest.(check int) "one hit" 1 (Service.Cache.hits (H.verdicts env));
  (* A different program image must miss. *)
  let other =
    Req.make ~spec:{ (spec MS.Dlx5) with Req.kernel = Some "memcpy_8" }
      Req.Stats
  in
  let r3 = H.handle ~env other in
  Alcotest.(check bool) "different key misses" false r3.Resp.cached

let test_shape_reuse_sound () =
  (* Two programs on one machine shape through a shared environment
     (plan compiled once, rebound) must answer exactly like fresh
     one-shot evaluations. *)
  let env = H.create_env () in
  List.iter
    (fun kernel ->
      let s = { (spec MS.Dlx5) with Req.kernel = Some kernel } in
      let shared =
        H.handle ~env (Req.make ~spec:s Req.Stats) |> payload_bytes
      in
      let fresh = H.handle (Req.make ~spec:s Req.Stats) |> payload_bytes in
      Alcotest.(check string) ("shape reuse, " ^ kernel) fresh shared)
    [ "fib_10"; "memcpy_8"; "dep_chain_24" ]

let test_campaign_not_cached () =
  let env = H.create_env () in
  let req =
    Req.make ~spec:(spec MS.Toy3)
      (Req.Campaign
         {
           seed = 1;
           mutants = Some 2;
           transients = 1;
           hang = false;
           timeout_s = 10.0;
           bmc = false;
         })
  in
  let r1 = H.handle ~env req in
  let r2 = H.handle ~env req in
  Alcotest.(check bool) "never cached" false (r1.Resp.cached || r2.Resp.cached);
  Alcotest.(check string) "still deterministic" (payload_bytes r1)
    (payload_bytes r2)

(* ------------------------------------------------------------------ *)
(* Cancellation is a typed result                                     *)
(* ------------------------------------------------------------------ *)

let test_timeout_is_typed () =
  let cancel = Exec.Cancel.create ~timeout_s:0.0 () in
  let r = H.handle ~cancel (Req.make ~spec:(spec MS.Dlx5) Req.Verify) in
  (match r.Resp.result with
  | Error { Resp.code = Resp.Timeout; _ } -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Resp.error_message e)
  | Ok _ -> Alcotest.fail "expired token did not cancel");
  Alcotest.(check int) "timeout exits 3" 3 (Resp.exit_code r)

let test_parent_token () =
  let parent = Exec.Cancel.create () in
  let child = Exec.Cancel.with_parent parent () in
  Alcotest.(check bool) "fresh child" false (Exec.Cancel.cancelled child);
  Exec.Cancel.cancel parent;
  Alcotest.(check bool) "parent trip reaches child" true
    (Exec.Cancel.cancelled child);
  (* and it latched: the child now trips on its own flag *)
  Alcotest.(check bool) "latched" true (Exec.Cancel.cancelled child)

(* ------------------------------------------------------------------ *)
(* Batch admission                                                    *)
(* ------------------------------------------------------------------ *)

let test_process_batch () =
  Exec.Pool.with_pool ~size:2 @@ fun pool ->
  let env = H.create_env () in
  let lines =
    [
      {|{"pipegen":1,"id":"a","kind":"verify","machine":"toy3"}|};
      {|not json|};
      {|{"pipegen":1,"id":"b","kind":"verify","machine":"toy3"}|};
    ]
  in
  match Service.Serve.process_batch ~env ~pool lines with
  | [ ra; rbad; rb ] ->
    Alcotest.(check (option string)) "order: a" (Some "a") ra.Resp.id;
    Alcotest.(check (option string)) "order: b" (Some "b") rb.Resp.id;
    (match rbad.Resp.result with
    | Error { Resp.code = Resp.Usage; _ } -> ()
    | _ -> Alcotest.fail "malformed line must be a usage error");
    Alcotest.(check bool) "duplicate coalesced" true rb.Resp.cached;
    Alcotest.(check string) "coalesced payload identical" (payload_bytes ra)
      (payload_bytes rb)
  | rs -> Alcotest.fail (Printf.sprintf "expected 3 responses, got %d" (List.length rs))

let () =
  Alcotest.run "service"
    [
      ( "machine_spec",
        [
          Alcotest.test_case "round-trip" `Quick test_machine_spec_roundtrip;
          Alcotest.test_case "unknown name" `Quick test_machine_spec_unknown;
        ] );
      ( "request",
        [
          test_request_roundtrip;
          Alcotest.test_case "unknown field" `Quick test_request_unknown_field;
          Alcotest.test_case "mismatched kind field" `Quick
            test_request_kind_mismatched_field;
          Alcotest.test_case "version" `Quick test_request_version;
          Alcotest.test_case "wrong type" `Quick test_request_wrong_type;
          Alcotest.test_case "sweep needs points" `Quick
            test_request_sweep_requires_points;
        ] );
      ( "response",
        [
          Alcotest.test_case "round-trip" `Quick test_response_roundtrip;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
        ] );
      ( "handler",
        [
          Alcotest.test_case "verify = CLI" `Quick
            test_handler_verify_matches_cli;
          Alcotest.test_case "stats = CLI" `Quick test_handler_stats_matches_cli;
          Alcotest.test_case "usage errors" `Quick test_handler_usage_errors;
        ] );
      ( "cache",
        [
          Alcotest.test_case "bit-identical replay" `Quick
            test_cache_bit_identity;
          Alcotest.test_case "shape reuse sound" `Quick test_shape_reuse_sound;
          Alcotest.test_case "campaign not cached" `Slow
            test_campaign_not_cached;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "timeout is typed" `Quick test_timeout_is_typed;
          Alcotest.test_case "parent token" `Quick test_parent_token;
        ] );
      ( "serve",
        [ Alcotest.test_case "batch admission" `Quick test_process_batch ] );
    ]
