(* The service layer: request/response codecs, the CLI-equivalent
   handler, the content-addressed verdict cache, batch admission. *)

module Req = Service.Request
module Resp = Service.Response
module H = Service.Handler
module MS = Service.Machine_spec
module J = Obs.Json

(* ------------------------------------------------------------------ *)
(* Machine_spec                                                       *)
(* ------------------------------------------------------------------ *)

let test_machine_spec_roundtrip () =
  List.iter
    (fun m ->
      match MS.of_string (MS.to_string m) with
      | Ok m' -> Alcotest.(check bool) (MS.to_string m) true (m = m')
      | Error msg -> Alcotest.fail msg)
    MS.all;
  Alcotest.(check int) "five machines" 5 (List.length MS.names)

(* [contains s sub]: naive substring search, enough for diagnostics. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let test_machine_spec_unknown () =
  match MS.of_string "z80" with
  | Ok _ -> Alcotest.fail "z80 accepted"
  | Error msg ->
    Alcotest.(check bool) "names the machine" true
      (contains msg "unknown machine z80");
    List.iter
      (fun name ->
        Alcotest.(check bool) ("lists " ^ name) true (contains msg name))
      MS.names

(* ------------------------------------------------------------------ *)
(* Request codec                                                      *)
(* ------------------------------------------------------------------ *)

(* Floats that survive the JSON text round-trip exactly. *)
let safe_floats = [ 0.0; 0.25; 0.5; 0.75; 1.0; 1.5; 30.0 ]

let gen_request =
  let open QCheck.Gen in
  let gen_id = opt (oneofl [ "r1"; "batch42"; "x" ]) in
  let gen_spec =
    let* machine = oneofl MS.all in
    let* kernel = opt (oneofl [ "fib_10"; "memcpy_8"; "fib" ]) in
    let* program_file = opt (oneofl [ "prog.s"; "a/b.s" ]) in
    let* interlock_only = bool in
    let* impl = oneofl [ Hw.Circuits.Chain; Hw.Circuits.Tree; Hw.Circuits.Bus ] in
    return { Req.machine; kernel; program_file; interlock_only; impl }
  in
  let gen_kind =
    oneof
      [
        (let* verilog = bool in
         return (Req.Transform { verilog }));
        return Req.Verify;
        return Req.Proof;
        return Req.Stats;
        (let* seed = small_nat in
         let* mutants = opt (int_range 1 50) in
         let* transients = small_nat in
         let* hang = bool in
         let* timeout_s = oneofl safe_floats in
         let* bmc = bool in
         return (Req.Campaign { seed; mutants; transients; hang; timeout_s; bmc }));
        (let* axis = oneofl [ Req.Dependency; Req.Branch ] in
         let* points = list_size (int_range 1 4) (oneofl safe_floats) in
         let* length = int_range 1 100 in
         let* seed = small_nat in
         let* lanes = bool in
         return (Req.Sweep { axis; points; length; seed; lanes }));
      ]
  in
  let* id = gen_id in
  let* spec = gen_spec in
  let* kind = gen_kind in
  let* deadline_s = opt (oneofl [ 0.25; 1.5; 30.0 ]) in
  QCheck.Gen.return { Req.id; spec; kind; deadline_s }

let arb_request = QCheck.make ~print:Req.to_string gen_request

let test_request_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"request JSON round-trip" ~count:200 arb_request
       (fun r ->
         match Req.of_string (Req.to_string r) with
         | Ok r' -> Req.equal r r'
         | Error e ->
           QCheck.Test.fail_reportf "rejected own encoding: %s at %s" e.message
             e.path))

let test_request_unknown_field () =
  match
    Req.of_string
      {|{"pipegen":1,"kind":"verify","machine":"toy3","bogus":7}|}
  with
  | Ok _ -> Alcotest.fail "unknown field accepted"
  | Error e ->
    Alcotest.(check string) "path names the key" "$.bogus" e.Req.path

let test_request_kind_mismatched_field () =
  (* A field of another kind is an unknown field for this kind. *)
  match
    Req.of_string {|{"pipegen":1,"kind":"verify","verilog":true}|}
  with
  | Ok _ -> Alcotest.fail "verilog accepted on verify"
  | Error e -> Alcotest.(check string) "path" "$.verilog" e.Req.path

let test_request_version () =
  (match Req.of_string {|{"pipegen":2,"kind":"verify"}|} with
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error e -> Alcotest.(check string) "path" "$.pipegen" e.Req.path);
  match Req.of_string {|{"kind":"verify"}|} with
  | Ok _ -> Alcotest.fail "missing version accepted"
  | Error e -> Alcotest.(check string) "path" "$.pipegen" e.Req.path

let test_request_wrong_type () =
  match Req.of_string {|{"pipegen":1,"kind":"verify","kernel":3}|} with
  | Ok _ -> Alcotest.fail "int kernel accepted"
  | Error e ->
    Alcotest.(check string) "path" "$.kernel" e.Req.path;
    Alcotest.(check string) "message" "expected a string" e.Req.message

let test_request_sweep_requires_points () =
  match
    Req.of_string {|{"pipegen":1,"kind":"sweep","axis":"dependency"}|}
  with
  | Ok _ -> Alcotest.fail "pointless sweep accepted"
  | Error e -> Alcotest.(check string) "path" "$.points" e.Req.path

(* ------------------------------------------------------------------ *)
(* Response codec                                                     *)
(* ------------------------------------------------------------------ *)

let sample_verify_summary =
  {
    Resp.v_verified = true;
    v_violations = 0;
    v_edge_checks = 12;
    v_liveness_ok = true;
    v_max_gap = 3;
    v_obligations = 9;
    v_obligations_failed = [];
    v_coverage_holes = [ "rule r3 never fired" ];
  }

let sample_row =
  {
    Workload.Stats.label = "p0.5";
    instructions = 32;
    cycles = 48;
    cpi = 1.5;
    speedup_vs_sequential = 2.0;
    fetch_stall_cycles = 4;
    dhaz_cycles = 8;
    ext_cycles = 0;
    rollbacks = 1;
    squashed = 2;
  }

let sample_responses =
  [
    Resp.ok ~id:"t1"
      (Resp.Transformed
         { summary = "m\n"; inventory = "inv\n"; verilog = None });
    Resp.ok
      (Resp.Transformed
         { summary = "m\n"; inventory = "inv\n"; verilog = Some "module x;" });
    Resp.ok ~cached:true
      (Resp.Verdict { summary = sample_verify_summary; text = "VERIFIED\n" });
    Resp.ok (Resp.Proof_text { verified = false; text = "theory T\n" });
    Resp.ok
      (Resp.Stats_report
         { summary = J.Obj [ ("cycles", J.Int 48) ]; text = "cpi 1.5\n" });
    Resp.ok
      (Resp.Campaign_report
         {
           summary =
             {
               Fault.Campaign.mutants = 3;
               detected = 2;
               masked = 1;
               missed = 0;
               timed_out = 0;
               aborted = 0;
             };
           outcomes = J.List [];
           text = "campaign\n";
         });
    Resp.ok (Resp.Sweep_rows { rows = [ (0.5, sample_row) ]; text = "table\n" });
    Resp.fail ~id:"e1" Resp.Usage "unknown machine z80";
    Resp.fail ~phase:"transform" Resp.Internal "boom";
    Resp.fail Resp.Timeout "request timed out after 1.00s";
    Resp.fail Resp.Cancelled "shutting down";
    Resp.fail Resp.Failed_check "verification failed";
    Resp.fail ~id:"o1" ~retry_after_s:0.25 Resp.Overloaded "queue full";
    Resp.fail Resp.Overloaded "degraded: verdict not cached";
  ]

let test_response_roundtrip () =
  List.iter
    (fun r ->
      match Resp.of_string (Resp.to_string r) with
      | Ok r' ->
        Alcotest.(check bool)
          ("round-trip: " ^ Resp.to_string r)
          true (Resp.equal r r')
      | Error msg -> Alcotest.fail (Resp.to_string r ^ ": " ^ msg))
    sample_responses

let test_exit_codes () =
  let code r = Resp.exit_code r in
  Alcotest.(check int) "usage" 2 (code (Resp.fail Resp.Usage "x"));
  Alcotest.(check int) "failed_check" 3 (code (Resp.fail Resp.Failed_check "x"));
  Alcotest.(check int) "timeout" 3 (code (Resp.fail Resp.Timeout "x"));
  Alcotest.(check int) "internal" 1 (code (Resp.fail Resp.Internal "x"));
  Alcotest.(check int) "cancelled" 1 (code (Resp.fail Resp.Cancelled "x"));
  Alcotest.(check int) "overloaded" 1 (code (Resp.fail Resp.Overloaded "x"));
  Alcotest.(check int) "verified" 0
    (code
       (Resp.ok (Resp.Verdict { summary = sample_verify_summary; text = "" })));
  Alcotest.(check int) "unverified" 3
    (code
       (Resp.ok
          (Resp.Verdict
             {
               summary = { sample_verify_summary with Resp.v_verified = false };
               text = "";
             })));
  Alcotest.(check bool) "unverified has diagnostic" true
    (Resp.failure_message
       (Resp.ok
          (Resp.Verdict
             {
               summary = { sample_verify_summary with Resp.v_verified = false };
               text = "";
             }))
    = Some "verification failed")

(* ------------------------------------------------------------------ *)
(* Handler: CLI-equivalent output                                     *)
(* ------------------------------------------------------------------ *)

let render f =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let spec machine = { Req.default_spec with Req.machine }

(* The pre-service CLI's verify printing, replicated independently:
   the handler must produce these exact bytes. *)
let expected_verify_text s =
  let tr = Workload.Sim.transform s.H.sim in
  let n = Workload.Sim.instructions s.H.sim in
  let v =
    match
      Core.verify_result ?reference:s.H.reference ~max_instructions:n
        ~compiled:(Workload.Sim.compiled s.H.sim) ?disasm:s.H.disasm tr
    with
    | Ok v -> v
    | Error _ -> Alcotest.fail "verification aborted"
  in
  let cov = Pipeline.Coverage.measure ~stop_after:n tr in
  render (fun fmt ->
      Format.fprintf fmt "%a" Proof_engine.Consistency.pp_report
        v.Core.consistency;
      Format.fprintf fmt "%a" Proof_engine.Liveness.pp_report v.Core.liveness;
      Format.fprintf fmt "%a" Pipeline.Coverage.pp cov;
      List.iter
        (Format.fprintf fmt "  coverage hole: %s@.")
        (Pipeline.Coverage.holes cov);
      Format.fprintf fmt "obligations:@.%a" Proof_engine.Obligation.pp
        v.Core.obligations;
      if Core.verified v then Format.fprintf fmt "VERIFIED@."
      else Format.fprintf fmt "VERIFICATION FAILED@.")

let expected_stats_text s =
  let _, summary = Workload.Sim.attribute s.H.sim in
  render (fun fmt ->
      Format.fprintf fmt "%a" Obs.Hazard.pp_summary summary;
      Format.fprintf fmt "%a" Obs.Hazard.pp_decomposition
        (Obs.Hazard.decompose summary))

let handle_text req =
  match (H.handle req).Resp.result with
  | Ok p -> Resp.text p
  | Error e -> Alcotest.fail (Resp.error_message e)

let test_handler_verify_matches_cli () =
  List.iter
    (fun m ->
      let s = H.select (spec m) in
      Alcotest.(check string)
        ("verify text, " ^ MS.to_string m)
        (expected_verify_text s)
        (handle_text (Req.make ~spec:(spec m) Req.Verify)))
    [ MS.Toy3; MS.Dlx5 ]

let test_handler_stats_matches_cli () =
  List.iter
    (fun m ->
      let s = H.select (spec m) in
      Alcotest.(check string)
        ("stats text, " ^ MS.to_string m)
        (expected_stats_text s)
        (handle_text (Req.make ~spec:(spec m) Req.Stats)))
    [ MS.Toy3; MS.Dlx5 ]

let test_handler_usage_errors () =
  let r =
    H.handle
      (Req.make ~spec:{ (spec MS.Dlx5) with Req.kernel = Some "nosuch" }
         Req.Verify)
  in
  (match r.Resp.result with
  | Error { Resp.code = Resp.Usage; message; _ } ->
    Alcotest.(check bool) "names the kernel" true
      (contains message "unknown kernel")
  | _ -> Alcotest.fail "expected a usage error");
  Alcotest.(check int) "exit 2" 2 (Resp.exit_code r)

(* ------------------------------------------------------------------ *)
(* Verdict cache and shape reuse                                      *)
(* ------------------------------------------------------------------ *)

let payload_bytes r =
  match r.Resp.result with
  | Ok p -> J.to_string ~minify:true (Resp.payload_to_json p)
  | Error e -> Alcotest.fail (Resp.error_message e)

let test_cache_bit_identity () =
  let env = H.create_env () in
  let req = Req.make ~spec:(spec MS.Toy3) Req.Verify in
  let r1 = H.handle ~env req in
  let r2 = H.handle ~env req in
  Alcotest.(check bool) "cold is uncached" false r1.Resp.cached;
  Alcotest.(check bool) "replay is cached" true r2.Resp.cached;
  Alcotest.(check string) "bit-identical payload" (payload_bytes r1)
    (payload_bytes r2);
  Alcotest.(check int) "one hit" 1 (Service.Cache.hits (H.verdicts env));
  (* A different program image must miss. *)
  let other =
    Req.make ~spec:{ (spec MS.Dlx5) with Req.kernel = Some "memcpy_8" }
      Req.Stats
  in
  let r3 = H.handle ~env other in
  Alcotest.(check bool) "different key misses" false r3.Resp.cached

let test_shape_reuse_sound () =
  (* Two programs on one machine shape through a shared environment
     (plan compiled once, rebound) must answer exactly like fresh
     one-shot evaluations. *)
  let env = H.create_env () in
  List.iter
    (fun kernel ->
      let s = { (spec MS.Dlx5) with Req.kernel = Some kernel } in
      let shared =
        H.handle ~env (Req.make ~spec:s Req.Stats) |> payload_bytes
      in
      let fresh = H.handle (Req.make ~spec:s Req.Stats) |> payload_bytes in
      Alcotest.(check string) ("shape reuse, " ^ kernel) fresh shared)
    [ "fib_10"; "memcpy_8"; "dep_chain_24" ]

let test_campaign_not_cached () =
  let env = H.create_env () in
  let req =
    Req.make ~spec:(spec MS.Toy3)
      (Req.Campaign
         {
           seed = 1;
           mutants = Some 2;
           transients = 1;
           hang = false;
           timeout_s = 10.0;
           bmc = false;
         })
  in
  let r1 = H.handle ~env req in
  let r2 = H.handle ~env req in
  Alcotest.(check bool) "never cached" false (r1.Resp.cached || r2.Resp.cached);
  Alcotest.(check string) "still deterministic" (payload_bytes r1)
    (payload_bytes r2)

(* ------------------------------------------------------------------ *)
(* Cancellation is a typed result                                     *)
(* ------------------------------------------------------------------ *)

let test_timeout_is_typed () =
  let cancel = Exec.Cancel.create ~timeout_s:0.0 () in
  let r = H.handle ~cancel (Req.make ~spec:(spec MS.Dlx5) Req.Verify) in
  (match r.Resp.result with
  | Error { Resp.code = Resp.Timeout; _ } -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Resp.error_message e)
  | Ok _ -> Alcotest.fail "expired token did not cancel");
  Alcotest.(check int) "timeout exits 3" 3 (Resp.exit_code r)

let test_parent_token () =
  let parent = Exec.Cancel.create () in
  let child = Exec.Cancel.with_parent parent () in
  Alcotest.(check bool) "fresh child" false (Exec.Cancel.cancelled child);
  Exec.Cancel.cancel parent;
  Alcotest.(check bool) "parent trip reaches child" true
    (Exec.Cancel.cancelled child);
  (* and it latched: the child now trips on its own flag *)
  Alcotest.(check bool) "latched" true (Exec.Cancel.cancelled child)

let test_cancel_reason () =
  let t = Exec.Cancel.create () in
  Alcotest.(check bool) "armed has no reason" true
    (Exec.Cancel.reason t = None);
  Exec.Cancel.cancel t;
  Alcotest.(check bool) "explicit" true
    (Exec.Cancel.reason t = Some Exec.Cancel.Explicit);
  let d = Exec.Cancel.create ~timeout_s:0.0 () in
  (* the deadline compare is strict, so let the clock tick past it *)
  Unix.sleepf 0.002;
  Alcotest.(check bool) "deadline trips" true (Exec.Cancel.cancelled d);
  Alcotest.(check bool) "deadline reason" true
    (Exec.Cancel.reason d = Some Exec.Cancel.Deadline);
  (* The first cause latches: a later explicit cancel cannot turn a
     timeout into a cancellation. *)
  Exec.Cancel.cancel d;
  Alcotest.(check bool) "first cause latches" true
    (Exec.Cancel.reason d = Some Exec.Cancel.Deadline);
  (* A child inherits the reason of the ancestor that tripped it. *)
  let p = Exec.Cancel.create () in
  let c = Exec.Cancel.with_parent p ~timeout_s:60.0 () in
  Exec.Cancel.cancel p;
  Alcotest.(check bool) "child trips with parent" true
    (Exec.Cancel.cancelled c);
  Alcotest.(check bool) "child inherits reason" true
    (Exec.Cancel.reason c = Some Exec.Cancel.Explicit)

(* ------------------------------------------------------------------ *)
(* Batch admission                                                    *)
(* ------------------------------------------------------------------ *)

let test_process_batch () =
  Exec.Pool.with_pool ~size:2 @@ fun pool ->
  let env = H.create_env () in
  let lines =
    [
      {|{"pipegen":1,"id":"a","kind":"verify","machine":"toy3"}|};
      {|not json|};
      {|{"pipegen":1,"id":"b","kind":"verify","machine":"toy3"}|};
    ]
  in
  match Service.Serve.process_batch ~env ~pool lines with
  | [ ra; rbad; rb ] ->
    Alcotest.(check (option string)) "order: a" (Some "a") ra.Resp.id;
    Alcotest.(check (option string)) "order: b" (Some "b") rb.Resp.id;
    (match rbad.Resp.result with
    | Error { Resp.code = Resp.Usage; _ } -> ()
    | _ -> Alcotest.fail "malformed line must be a usage error");
    Alcotest.(check bool) "duplicate coalesced" true rb.Resp.cached;
    Alcotest.(check string) "coalesced payload identical" (payload_bytes ra)
      (payload_bytes rb)
  | rs -> Alcotest.fail (Printf.sprintf "expected 3 responses, got %d" (List.length rs))

(* ------------------------------------------------------------------ *)
(* Degraded mode and journal warm-start (handler level)               *)
(* ------------------------------------------------------------------ *)

let test_cache_only_mode () =
  let env = H.create_env () in
  let req = Req.make ~spec:(spec MS.Toy3) Req.Verify in
  let r_miss = H.handle ~env ~cache_only:true req in
  (match r_miss.Resp.result with
  | Error { Resp.code = Resp.Overloaded; _ } -> ()
  | _ -> Alcotest.fail "cache-only miss must answer Overloaded");
  let r_fill = H.handle ~env req in
  let r_hit = H.handle ~env ~cache_only:true req in
  Alcotest.(check bool) "degraded hit is cached" true r_hit.Resp.cached;
  Alcotest.(check string) "degraded hit bit-identical" (payload_bytes r_fill)
    (payload_bytes r_hit)

let test_warm_start () =
  let env1 = H.create_env () in
  let req = Req.make ~spec:(spec MS.Toy3) Req.Verify in
  let r1 = H.handle ~env:env1 req in
  let payload =
    match r1.Resp.result with
    | Ok p -> p
    | Error e -> Alcotest.fail (Resp.error_message e)
  in
  (* A "restarted" environment warmed from the journaled payload must
     answer from the cache, bit-identically. *)
  let env2 = H.create_env () in
  H.warm ~env:env2 req payload;
  let r2 = H.handle ~env:env2 req in
  Alcotest.(check bool) "warmed key hits" true r2.Resp.cached;
  Alcotest.(check string) "warmed payload bit-identical" (payload_bytes r1)
    (payload_bytes r2)

(* ------------------------------------------------------------------ *)
(* Admission control                                                  *)
(* ------------------------------------------------------------------ *)

module Srv = Service.Serve
module Jl = Service.Journal

let kernels = [| "fib_10"; "memcpy_8"; "dep_chain_24" |]

(* The [i]-th member of a family of cheap requests that are pairwise
   distinct up to their id for i in [0, 12): none of them coalesce,
   and none share a verdict-cache key (machine, kernel and kind all
   matter to the evaluation — Toy3 is excluded because it ignores the
   kernel, which would alias the keys). *)
let family_request ?deadline_s ~id i =
  let machine = if i mod 2 = 0 then MS.Dlx5 else MS.Dlx6 in
  let s = { (spec machine) with Req.kernel = Some kernels.(i / 2 mod 3) } in
  let kind = if i / 6 mod 2 = 0 then Req.Stats else Req.Verify in
  Req.make ~id ?deadline_s ~spec:s kind

let family_line ?deadline_s ~id i =
  Req.to_string (family_request ?deadline_s ~id i)

let test_admission_shed () =
  Exec.Pool.with_pool ~size:2 @@ fun pool ->
  let env = H.create_env () in
  let adm = Srv.make_admission ~max_queue:2 ~retries:0 () in
  let lines =
    List.init 4 (fun i -> family_line ~id:(Printf.sprintf "q%d" i) i)
  in
  let shed0 = Obs.Counters.get Obs.Counters.Serve_shed in
  let rs = Srv.process_batch ~env ~pool ~admission:adm lines in
  Alcotest.(check int) "4 responses" 4 (List.length rs);
  List.iteri
    (fun i r ->
      match (i < 2, r.Resp.result) with
      | true, Ok _ -> ()
      | true, Error e ->
        Alcotest.fail ("kept leader failed: " ^ Resp.error_message e)
      | ( false,
          Error { Resp.code = Resp.Overloaded; retry_after_s = Some ra; _ } )
        ->
        Alcotest.(check bool) "retry-after positive" true (ra > 0.0)
      | false, _ -> Alcotest.fail "overflow leader not shed Overloaded")
    rs;
  Alcotest.(check int) "serve_shed bumped per shed" (shed0 + 2)
    (Obs.Counters.get Obs.Counters.Serve_shed)

let test_admission_deadline_reject () =
  Exec.Pool.with_pool ~size:2 @@ fun pool ->
  let env = H.create_env () in
  (* ewma starts at 50ms: the second leader's projected queue wait
     (25ms) dwarfs a 1ms client deadline, so it is shed up front
     instead of timing out after queueing. *)
  let adm = Srv.make_admission () in
  let lines =
    [ family_line ~id:"d0" 0; family_line ~deadline_s:0.001 ~id:"d1" 1 ]
  in
  match Srv.process_batch ~env ~pool ~admission:adm lines with
  | [ r0; r1 ] -> (
    (match r0.Resp.result with
    | Ok _ -> ()
    | Error e ->
      Alcotest.fail ("deadline-free leader failed: " ^ Resp.error_message e));
    match r1.Resp.result with
    | Error { Resp.code = Resp.Overloaded; message; _ } ->
      Alcotest.(check bool) "names the deadline" true
        (contains message "deadline")
    | _ -> Alcotest.fail "unmeetable deadline was not shed early")
  | rs ->
    Alcotest.fail (Printf.sprintf "expected 2 responses, got %d" (List.length rs))

let test_admission_degraded () =
  Exec.Pool.with_pool ~size:2 @@ fun pool ->
  let env = H.create_env () in
  let adm = Srv.make_admission ~max_queue:1 ~retries:0 () in
  (* Three consecutive shedding batches trip cache-only mode. *)
  for b = 1 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "not yet degraded before batch %d" b)
      false (Srv.degraded adm);
    ignore
      (Srv.process_batch ~env ~pool ~admission:adm
         [ family_line ~id:"h0" 0; family_line ~id:"h1" 1 ]
        : Resp.t list)
  done;
  Alcotest.(check bool) "degraded after 3 hot batches" true (Srv.degraded adm);
  (* Degraded: an uncached verdict is answered Overloaded without
     being evaluated... *)
  (match
     Srv.process_batch ~env ~pool ~admission:adm [ family_line ~id:"h2" 2 ]
   with
  | [ r ] -> (
    match r.Resp.result with
    | Error { Resp.code = Resp.Overloaded; _ } -> ()
    | _ -> Alcotest.fail "degraded cache miss was evaluated")
  | _ -> Alcotest.fail "one response expected");
  (* ...while a journaled/previously-evaluated one is still served. *)
  (match
     Srv.process_batch ~env ~pool ~admission:adm [ family_line ~id:"h3" 0 ]
   with
  | [ r ] -> (
    match r.Resp.result with
    | Ok _ -> Alcotest.(check bool) "served from cache" true r.Resp.cached
    | Error e ->
      Alcotest.fail ("cached verdict refused: " ^ Resp.error_message e))
  | _ -> Alcotest.fail "one response expected");
  (* A quiet batch (nothing shed, queue at most half full) resets. *)
  ignore (Srv.process_batch ~env ~pool ~admission:adm [ {|not json|} ]
           : Resp.t list);
  Alcotest.(check bool) "quiet batch resets the mode" false (Srv.degraded adm)

let test_retry_outlasts_crash_budget () =
  let cfg =
    {
      Exec.Chaos.default_config with
      Exec.Chaos.seed = 11;
      crash = 1.0;
      crash_budget = Some 2;
    }
  in
  Exec.Pool.with_pool ~size:2 ~chaos:(Exec.Chaos.create cfg) @@ fun pool ->
  let env = H.create_env () in
  let adm = Srv.make_admission ~retries:2 () in
  let retries0 = Obs.Counters.get Obs.Counters.Serve_retries in
  let lines =
    List.init 4 (fun i -> family_line ~id:(Printf.sprintf "c%d" i) i)
  in
  let rs = Srv.process_batch ~env ~pool ~admission:adm lines in
  List.iter
    (fun (r : Resp.t) ->
      match r.Resp.result with
      | Ok _ -> ()
      | Error e ->
        Alcotest.fail
          ("a crash outlived the retry budget: " ^ Resp.error_message e))
    rs;
  Alcotest.(check int) "serve_retries = crash budget" (retries0 + 2)
    (Obs.Counters.get Obs.Counters.Serve_retries)

(* ------------------------------------------------------------------ *)
(* Journal                                                            *)
(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "pipegen_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_journal_roundtrip () =
  with_temp_file @@ fun path ->
  let j = Jl.open_ path in
  let seqs = Jl.append_admits j [ "ra"; "rb"; "rc" ] in
  Alcotest.(check (list int)) "fresh seqs" [ 0; 1; 2 ] seqs;
  Jl.append_done j [ (0, "resp-a"); (2, "resp-c") ];
  Jl.close j;
  (match Jl.read path with
  | [ e0; e1; e2 ] ->
    Alcotest.(check string) "e0 line" "ra" e0.Jl.line;
    Alcotest.(check (option string)) "e0 done" (Some "resp-a") e0.Jl.response;
    Alcotest.(check string) "e1 line" "rb" e1.Jl.line;
    Alcotest.(check (option string)) "e1 pending" None e1.Jl.response;
    Alcotest.(check (option string)) "e2 done" (Some "resp-c") e2.Jl.response
  | es -> Alcotest.fail (Printf.sprintf "expected 3 entries, got %d"
                           (List.length es)));
  (* Reopen: numbering continues past the existing max. *)
  let j2 = Jl.open_ path in
  Alcotest.(check (list int)) "seq continues" [ 3 ]
    (Jl.append_admits j2 [ "rd" ]);
  Jl.close j2;
  (* A torn trailing record (mid-write crash) is skipped, not fatal. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc {|{"journal":1,"op":"admit","seq":9,"line":"torn|};
  close_out oc;
  let entries = Jl.read path in
  Alcotest.(check int) "torn line skipped" 4 (List.length entries);
  Alcotest.(check bool) "rd still pending" true
    (List.exists
       (fun e -> e.Jl.line = "rd" && e.Jl.response = None)
       entries);
  (* Truncation (the clean-shutdown path) restarts numbering. *)
  let j3 = Jl.open_ path in
  Jl.truncate j3;
  Alcotest.(check (list int)) "post-truncate seqs restart" [ 0 ]
    (Jl.append_admits j3 [ "re" ]);
  Jl.close j3

let test_journal_recovery_shape () =
  (* The serve loop's crash-recovery contract at the library level:
     journal a batch, complete only part of it, "crash", and check that
     the journal hands back exactly the unfinished line for
     re-admission — whose re-evaluation in a fresh environment is
     byte-identical to the lost original. *)
  Exec.Pool.with_pool ~size:2 @@ fun pool ->
  with_temp_file @@ fun path ->
  let lines = [ family_line ~id:"j0" 0; family_line ~id:"j1" 1 ] in
  let j = Jl.open_ path in
  let seqs = Jl.append_admits j lines in
  let env = H.create_env () in
  let rs = Srv.process_batch ~env ~pool lines in
  let first = Resp.to_string (List.hd rs) in
  let second = Resp.to_string (List.nth rs 1) in
  (* the crash lands after journaling only the first verdict *)
  Jl.append_done j [ (List.hd seqs, first) ];
  Jl.close j;
  (* restart *)
  let completed, pending =
    List.partition (fun e -> e.Jl.response <> None) (Jl.read path)
  in
  (match completed with
  | [ e ] ->
    Alcotest.(check (option string)) "completed replays verbatim"
      (Some first) e.Jl.response
  | _ -> Alcotest.fail "exactly one completed entry expected");
  match pending with
  | [ e ] ->
    let env2 = H.create_env () in
    (match Srv.process_batch ~env:env2 ~pool [ e.Jl.line ] with
    | [ r ] ->
      Alcotest.(check string) "re-evaluation byte-identical" second
        (Resp.to_string r)
    | _ -> Alcotest.fail "one replayed response expected")
  | _ -> Alcotest.fail "exactly one pending entry expected"

(* ------------------------------------------------------------------ *)
(* Chaos soaks                                                        *)
(* ------------------------------------------------------------------ *)

(* [n] requests cycling through the 12-member distinct family: plenty
   of coalescing, every leader evaluated on a chaos-armed pool. *)
let soak_batch n =
  List.init n (fun i -> family_line ~id:(Printf.sprintf "k%d" i) (i mod 12))

let run_soak ?chaos n =
  let work0 = Obs.Counters.work_snapshot () in
  let responses =
    Exec.Pool.with_pool ~size:3 ?chaos @@ fun pool ->
    let env = H.create_env () in
    let adm = Srv.make_admission ~max_queue:(2 * n) ~retries:3 () in
    Srv.process_batch ~env ~pool ~admission:adm (soak_batch n)
  in
  let work1 = Obs.Counters.work_snapshot () in
  let delta =
    List.map2
      (fun (k0, v0) (k1, v1) ->
        assert (k0 = k1);
        (k0, v1 - v0))
      work0 work1
  in
  (List.map Resp.to_string responses, delta)

let test_soak_delay_chaos () =
  (* Delays-only chaos perturbs scheduling, never semantics: the
     responses and the WORK.* counter deltas must both be
     bit-identical to the clean run. *)
  let n = 60 in
  let clean, work_clean = run_soak n in
  let chaos =
    Exec.Chaos.create
      {
        Exec.Chaos.default_config with
        Exec.Chaos.seed = 42;
        delay = 0.5;
        delay_s = 0.0005;
        alloc = 0.25;
        alloc_words = 1 lsl 12;
      }
  in
  let chaotic, work_chaos = run_soak ~chaos n in
  Alcotest.(check (list string)) "responses bit-identical" clean chaotic;
  Alcotest.(check (list (pair string int))) "WORK.* bit-identical" work_clean
    work_chaos

let test_soak_crash_chaos () =
  (* Crash + wedge + kill chaos within the retry budget: every request
     is answered exactly once, byte-identically to the clean run —
     nothing lost, duplicated or corrupted. *)
  let n = 60 in
  let clean, _ = run_soak n in
  let chaos =
    Exec.Chaos.create
      {
        Exec.Chaos.default_config with
        Exec.Chaos.seed = 1234;
        crash = 0.05;
        crash_budget = Some 3;
        delay = 0.1;
        delay_s = 0.0005;
        wedge = 0.05;
        wedge_s = 0.002;
        wedge_budget = Some 4;
        kill = 0.25;
        kill_budget = Some 2;
      }
  in
  let chaotic, _ = run_soak ~chaos n in
  Alcotest.(check int) "no response lost or duplicated" n
    (List.length chaotic);
  Alcotest.(check (list string)) "responses bit-identical under faults"
    clean chaotic;
  Alcotest.(check bool) "faults were actually injected" true
    (Exec.Chaos.injected chaos > 0)

(* ------------------------------------------------------------------ *)
(* Client disconnects                                                 *)
(* ------------------------------------------------------------------ *)

let test_epipe_contained () =
  (* A client that hangs up mid-response must surface as the typed
     [Client_gone] (failing one connection), not as a SIGPIPE process
     kill — the regression that motivated ignoring SIGPIPE in
     [Serve.run]. *)
  let prev =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  Fun.protect
    ~finally:(fun () -> Option.iter (Sys.set_signal Sys.sigpipe) prev)
  @@ fun () ->
  let r, w = Unix.pipe () in
  Unix.close r;
  (match Srv.write_all w "late response\n" with
  | () -> Alcotest.fail "write to a gone client succeeded"
  | exception Srv.Client_gone -> ());
  Unix.close w

let () =
  Alcotest.run "service"
    [
      ( "machine_spec",
        [
          Alcotest.test_case "round-trip" `Quick test_machine_spec_roundtrip;
          Alcotest.test_case "unknown name" `Quick test_machine_spec_unknown;
        ] );
      ( "request",
        [
          test_request_roundtrip;
          Alcotest.test_case "unknown field" `Quick test_request_unknown_field;
          Alcotest.test_case "mismatched kind field" `Quick
            test_request_kind_mismatched_field;
          Alcotest.test_case "version" `Quick test_request_version;
          Alcotest.test_case "wrong type" `Quick test_request_wrong_type;
          Alcotest.test_case "sweep needs points" `Quick
            test_request_sweep_requires_points;
        ] );
      ( "response",
        [
          Alcotest.test_case "round-trip" `Quick test_response_roundtrip;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
        ] );
      ( "handler",
        [
          Alcotest.test_case "verify = CLI" `Quick
            test_handler_verify_matches_cli;
          Alcotest.test_case "stats = CLI" `Quick test_handler_stats_matches_cli;
          Alcotest.test_case "usage errors" `Quick test_handler_usage_errors;
        ] );
      ( "cache",
        [
          Alcotest.test_case "bit-identical replay" `Quick
            test_cache_bit_identity;
          Alcotest.test_case "shape reuse sound" `Quick test_shape_reuse_sound;
          Alcotest.test_case "campaign not cached" `Slow
            test_campaign_not_cached;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "timeout is typed" `Quick test_timeout_is_typed;
          Alcotest.test_case "parent token" `Quick test_parent_token;
          Alcotest.test_case "trip reason" `Quick test_cancel_reason;
        ] );
      ( "serve",
        [
          Alcotest.test_case "batch admission" `Quick test_process_batch;
          Alcotest.test_case "shed past max-queue" `Quick test_admission_shed;
          Alcotest.test_case "deadline early reject" `Quick
            test_admission_deadline_reject;
          Alcotest.test_case "degraded mode hysteresis" `Quick
            test_admission_degraded;
          Alcotest.test_case "retry outlasts crash budget" `Quick
            test_retry_outlasts_crash_budget;
          Alcotest.test_case "EPIPE contained" `Quick test_epipe_contained;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "cache-only mode" `Quick test_cache_only_mode;
          Alcotest.test_case "journal warm-start" `Quick test_warm_start;
        ] );
      ( "journal",
        [
          Alcotest.test_case "round-trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "crash-recovery shape" `Quick
            test_journal_recovery_shape;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "delays keep WORK bit-identical" `Slow
            test_soak_delay_chaos;
          Alcotest.test_case "crash soak loses nothing" `Slow
            test_soak_crash_chaos;
        ] );
    ]
