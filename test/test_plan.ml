(* The compiled evaluation core (Hw.Plan): differential testing
   against the legacy tree-walking interpreter over randomly generated
   well-typed expressions covering every operator, compile-time width
   rejection, hash-consing, and the Eval.compile bridge. *)

module E = Hw.Expr
module B = Hw.Bitvec
module P = Hw.Plan

(* Explicit qcheck seeding: QCHECK_SEED when set, a fixed default
   otherwise, threaded into the properties and printed with each
   counterexample so a failure replays with
   `QCHECK_SEED=<n> dune runtest`. *)
let qcheck_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some n -> n
  | None -> 421_337

let to_alcotest test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| qcheck_seed |]) test

let bv ~width v = B.make ~width (v land ((1 lsl width) - 1))

(* A deterministic register file shared by every evaluation path. *)
let mem_width = 8
let mem_fun addr = bv ~width:mem_width ((B.to_int addr * 37) + 11)

let legacy_env bindings =
  let base = Hw.Eval.env_of_assoc bindings in
  {
    base with
    Hw.Eval.lookup_file =
      (fun name addr ->
        if name = "mem" then mem_fun addr else raise Not_found);
  }

(* ------------------------------------------------------------------ *)
(* Random well-typed expressions, all operators, random widths.        *)
(* Input names encode their width ("v<w>_<i>") so any two occurrences  *)
(* agree.                                                              *)
(* ------------------------------------------------------------------ *)

let arb_expr_seed =
  let open QCheck.Gen in
  let leaf w =
    oneof
      [
        (int_bound ((1 lsl min w 20) - 1) >|= fun v -> E.const_int ~width:w v);
        ( int_bound 2 >|= fun i ->
          E.input (Printf.sprintf "v%d_%d" w i) w );
      ]
  in
  let rec gen depth w =
    if depth = 0 then leaf w
    else
      let sub = gen (depth - 1) in
      let arith =
        ( 4,
          oneofl [ E.Add; E.Sub; E.Mul; E.And; E.Or; E.Xor ] >>= fun op ->
          sub w >>= fun a ->
          sub w >|= fun b -> E.Binop (op, a, b) )
      in
      let shifts =
        ( 2,
          oneofl [ E.Shl; E.Shr; E.Sra ] >>= fun op ->
          sub w >>= fun a ->
          int_range 1 4 >>= fun wb ->
          sub wb >|= fun b -> E.Binop (op, a, b) )
      in
      let mux =
        ( 2,
          sub 1 >>= fun s ->
          sub w >>= fun a ->
          sub w >|= fun b -> E.Mux (s, a, b) )
      in
      let unops =
        ( 2,
          oneofl [ E.Not; E.Neg ] >>= fun op ->
          sub w >|= fun a -> E.Unop (op, a) )
      in
      let slice =
        ( 1,
          int_range w 16 >>= fun wa ->
          int_range 0 (wa - w) >>= fun lo ->
          sub wa >|= fun a -> E.Slice (a, lo + w - 1, lo) )
      in
      let extend =
        ( 1,
          int_range 1 w >>= fun wa ->
          oneofl [ (fun a -> E.Zext (a, w)); (fun a -> E.Sext (a, w)) ]
          >>= fun mk ->
          sub wa >|= mk )
      in
      let concat =
        (* [max] keeps the range valid when [w = 1]; the branch is only
           selected for [w > 1]. *)
        ( 1,
          int_range 1 (max 1 (w - 1)) >>= fun w1 ->
          sub w1 >>= fun hi ->
          sub (w - w1) >|= fun lo -> E.Concat (hi, lo) )
      in
      let one_bit =
        [
          ( 2,
            oneofl [ E.Eq; E.Ne; E.Ltu; E.Lts ] >>= fun op ->
            int_range 1 16 >>= fun wa ->
            sub wa >>= fun a ->
            sub wa >|= fun b -> E.Binop (op, a, b) );
          ( 1,
            oneofl [ E.Reduce_or; E.Reduce_and ] >>= fun op ->
            int_range 1 16 >>= fun wa ->
            sub wa >|= fun a -> E.Unop (op, a) );
        ]
      in
      let file_read =
        ( 1,
          int_range 1 8 >>= fun wa ->
          sub wa >|= fun addr ->
          E.File_read { file = "mem"; data_width = mem_width; addr } )
      in
      frequency
        ((1, leaf w) :: arith :: shifts :: mux :: unops :: unops
        :: (if w > 1 then [ slice; extend; concat ] else [ slice ])
        @ (if w = 1 then one_bit else [])
        @ if w = mem_width then [ file_read ] else [])
  in
  QCheck.make
    ~print:(fun (e, seed) ->
      Printf.sprintf "QCHECK_SEED=%d value seed %d: %s" qcheck_seed seed
        (E.to_string e))
    QCheck.Gen.(
      pair
        (int_range 1 16 >>= fun w -> gen 4 w)
        (int_bound 1_000_000))

(* Deterministic pseudo-random input values from the seed. *)
let bindings_of e seed =
  List.map
    (fun (name, w) -> (name, bv ~width:w (Hashtbl.hash (name, seed))))
    (E.inputs e)

(* Evaluate [e] through the direct Plan API. *)
let plan_value e bindings =
  let b = P.create ~auto:true ~files:[ ("mem", mem_width) ] () in
  let slot = P.root b e in
  let plan = P.build b in
  let inst = P.instance plan in
  P.bind_file inst "mem" mem_fun;
  P.iter_inputs plan (fun name ~slot ~width:_ ->
      P.set inst slot (List.assoc name bindings));
  P.run inst;
  P.get inst slot

(* Evaluate [e] through the Eval.compile bridge (closure env in, plan
   underneath). *)
let bridge_value e bindings =
  let spec =
    {
      Hw.Eval.spec_inputs = E.inputs e;
      spec_files = [ ("mem", mem_width) ];
    }
  in
  let compiled = Hw.Eval.compile spec [ e ] in
  (Hw.Eval.run_plan compiled (legacy_env bindings)).(0)

let prop_plan_matches_interpreter =
  QCheck.Test.make ~name:"plan = tree-walking eval (all ops)" ~count:500
    arb_expr_seed (fun (e, seed) ->
      let bindings = bindings_of e seed in
      let reference = Hw.Eval.eval (legacy_env bindings) e in
      B.equal reference (plan_value e bindings)
      && B.equal reference (bridge_value e bindings))

(* ------------------------------------------------------------------ *)
(* Compile-time width checking                                         *)
(* ------------------------------------------------------------------ *)

let compiles e =
  let b = P.create ~auto:true () in
  match P.root b e with
  | (_ : int) -> true
  | exception P.Compile_error _ -> false

let test_compile_errors () =
  let i8 = E.input "a" 8 and i4 = E.input "b" 4 in
  Alcotest.(check bool) "binop width mismatch" false
    (compiles (E.Binop (E.Add, i8, i4)));
  Alcotest.(check bool) "comparison width mismatch" false
    (compiles (E.Binop (E.Ltu, i8, i4)));
  Alcotest.(check bool) "mux select too wide" false
    (compiles (E.Mux (i4, i8, i8)));
  Alcotest.(check bool) "mux branch mismatch" false
    (compiles (E.Mux (E.input "s" 1, i8, i4)));
  Alcotest.(check bool) "slice out of range" false
    (compiles (E.Slice (i8, 9, 0)));
  Alcotest.(check bool) "shrinking zext" false (compiles (E.Zext (i8, 4)));
  Alcotest.(check bool) "inconsistent input width" false
    (compiles (E.Binop (E.Add, i8, E.Zext (E.input "a" 4, 8))));
  Alcotest.(check bool) "well-typed accepted" true
    (compiles (E.Binop (E.Add, i8, E.Zext (i4, 8))))

let test_strict_inputs () =
  (* Without ~auto, undeclared names are compile-time errors... *)
  let b = P.create ~inputs:[ ("a", 8) ] () in
  (match P.root b (E.input "nope" 8) with
  | (_ : int) -> Alcotest.fail "expected Compile_error"
  | exception P.Compile_error _ -> ());
  (* ...and declared ones must be used at their declared width. *)
  let b = P.create ~inputs:[ ("a", 8) ] () in
  (match P.root b (E.input "a" 4) with
  | (_ : int) -> Alcotest.fail "expected width conflict"
  | exception P.Compile_error _ -> ());
  (* Duplicate defines are rejected. *)
  let b = P.create ~auto:true () in
  let (_ : int) = P.define b "x" (E.const_int ~width:4 1) in
  match P.define b "x" (E.const_int ~width:4 2) with
  | (_ : int) -> Alcotest.fail "expected duplicate-define error"
  | exception P.Compile_error _ -> ()

let test_run_errors () =
  let b = P.create ~inputs:[ ("a", 8) ] ~files:[ ("mem", 8) ] () in
  let slot =
    P.root b
      (E.Binop
         ( E.Add,
           E.input "a" 8,
           E.File_read { file = "mem"; data_width = 8; addr = E.input "a" 8 }
         ))
  in
  let plan = P.build b in
  (* Wrong input width at run time. *)
  let inst = P.instance plan in
  (match P.set inst (Option.get (P.input_slot plan "a")) (bv ~width:4 1) with
  | () -> Alcotest.fail "expected Run_error on width"
  | exception P.Run_error _ -> ());
  (* Unbound file. *)
  let inst = P.instance plan in
  P.set inst (Option.get (P.input_slot plan "a")) (bv ~width:8 1);
  (match P.run inst with
  | () -> Alcotest.fail "expected Run_error on unbound file"
  | exception P.Run_error _ -> ());
  (* Bound: runs, and the name view resolves. *)
  P.bind_file inst "mem" mem_fun;
  P.run inst;
  Alcotest.(check bool) "result" true (B.width (P.get inst slot) = 8);
  Alcotest.(check bool) "read_name input" true
    (P.read_name inst "a" = Some (bv ~width:8 1))

let test_reset_rebind () =
  (* The instance-reuse contract behind compiled sessions: [reset]
     must erase everything the previous evaluation context could
     leak.  The two hazards are a stale input slot surviving into the
     next run and a stale file reader silently serving the previous
     context's data. *)
  let b = P.create ~inputs:[ ("a", 8) ] ~files:[ ("mem", 8) ] () in
  let k = P.define b "k" (E.const_int ~width:8 42) in
  let sum =
    P.root b
      (E.Binop
         ( E.Add,
           E.input "a" 8,
           E.File_read { file = "mem"; data_width = 8; addr = E.input "a" 8 }
         ))
  in
  let plan = P.build b in
  let a_slot = Option.get (P.input_slot plan "a") in
  let inst = P.instance plan in
  P.set inst a_slot (bv ~width:8 2);
  P.bind_file inst "mem" mem_fun;
  P.run inst;
  Alcotest.(check bool) "first run" true
    (P.get inst sum = B.add (bv ~width:8 2) (mem_fun (bv ~width:8 2)));
  P.reset inst;
  (* Constants are reloaded... *)
  Alcotest.(check bool) "const reloaded" true (P.get inst k = bv ~width:8 42);
  (* ...the stale input slot is cleared rather than still holding 2... *)
  Alcotest.(check bool) "stale slot cleared" true
    (P.get inst a_slot <> bv ~width:8 2);
  (* ...and the stale file binding fails loudly instead of reading
     the previous context's table. *)
  P.set inst a_slot (bv ~width:8 3);
  (match P.run inst with
  | () -> Alcotest.fail "expected Run_error on stale file after reset"
  | exception P.Run_error _ -> ());
  (* Rebinding restores the full contract. *)
  P.bind_file inst "mem" mem_fun;
  P.run inst;
  Alcotest.(check bool) "rebound run" true
    (P.get inst sum = B.add (bv ~width:8 3) (mem_fun (bv ~width:8 3)));
  (* bind_file without a reset replaces the reader in place — the
     rebind-only session path (new file table, same slots). *)
  let shifted addr = B.add (mem_fun addr) (bv ~width:8 1) in
  P.bind_file inst "mem" shifted;
  P.run inst;
  Alcotest.(check bool) "replaced reader" true
    (P.get inst sum = B.add (bv ~width:8 3) (shifted (bv ~width:8 3)))

let test_hash_consing () =
  (* (a + b) used three times: one add on the tape, not three. *)
  let a = E.input "a" 8 and b = E.input "b" 8 in
  let s = E.Binop (E.Add, a, b) in
  let e = E.Binop (E.Xor, E.Binop (E.Mul, s, s), s) in
  let builder = P.create ~auto:true () in
  let (_ : int) = P.root builder e in
  let plan = P.build builder in
  Alcotest.(check int) "tape length" 3 (P.n_instrs plan);
  (* Identical roots share the same slot. *)
  let builder = P.create ~auto:true () in
  let s1 = P.root builder s in
  let s2 = P.root builder (E.Binop (E.Add, a, b)) in
  Alcotest.(check int) "cse slot" s1 s2;
  let (_ : P.t) = P.build builder in
  ()

let test_define_resolution () =
  (* A define is visible to later expressions by name, like the
     simulator's ordered signal lists. *)
  let b = P.create ~inputs:[ ("x", 8) ] () in
  let (_ : int) =
    P.define b "double" (E.Binop (E.Add, E.input "x" 8, E.input "x" 8))
  in
  let quad =
    P.root b (E.Binop (E.Add, E.input "double" 8, E.input "double" 8))
  in
  let plan = P.build b in
  let inst = P.instance plan in
  P.set inst (Option.get (P.input_slot plan "x")) (bv ~width:8 5);
  P.run inst;
  Alcotest.(check int) "quad" 20 (B.to_int (P.get inst quad));
  Alcotest.(check bool) "define readable" true
    (P.read_name inst "double" = Some (bv ~width:8 10));
  Alcotest.(check bool) "slot name view" true
    (P.slot_name plan (Option.get (P.define_slot plan "double"))
    = Some "double")

(* ------------------------------------------------------------------ *)
(* The optimizer: folding, identities, DCE, compaction, LUT synthesis  *)
(* ------------------------------------------------------------------ *)

let plan_of es =
  let b = P.create ~auto:true ~files:[ ("mem", mem_width) ] () in
  let slots = List.map (P.root b) es in
  (P.build b, slots)

let run_get plan bindings slot =
  let inst = P.instance plan in
  P.bind_file inst "mem" mem_fun;
  P.iter_inputs plan (fun name ~slot ~width:_ ->
      P.set inst slot (List.assoc name bindings));
  P.run inst;
  P.get inst slot

let test_opt_const_fold () =
  (* A constant cone evaluates at compile time: the tape vanishes and
     the root reads back the folded value. *)
  let e =
    E.Binop
      ( E.Mul,
        E.Binop (E.Add, E.const_int ~width:8 1, E.const_int ~width:8 2),
        E.const_int ~width:8 3 )
  in
  let plan, slots = plan_of [ e ] in
  let opt, remap = P.optimize_remap plan in
  Alcotest.(check int) "tape empty" 0 (P.n_instrs opt);
  Alcotest.(check int) "folded value" 9
    (B.to_int (run_get opt [] remap.(List.hd slots)))

let test_opt_identities () =
  let x = E.input "x" 8 in
  let z = E.const_int ~width:8 0 in
  let es =
    [
      E.Binop (E.Or, x, z) (* alias x *);
      E.Binop (E.And, x, z) (* const 0 *);
      E.Binop (E.Xor, x, x) (* const 0: hash-consed equal slots *);
      E.Binop (E.Shl, x, E.const_int ~width:2 0) (* alias x *);
      E.Zext (E.Slice (x, 7, 0), 8) (* width identities: alias x *);
    ]
  in
  let plan, slots = plan_of es in
  let opt, remap = P.optimize_remap plan in
  Alcotest.(check int) "all identities folded" 0 (P.n_instrs opt);
  let bindings = [ ("x", bv ~width:8 0xa5) ] in
  let vals = List.map (fun s -> B.to_int (run_get opt bindings remap.(s))) slots in
  Alcotest.(check (list int)) "values" [ 0xa5; 0; 0; 0xa5; 0xa5 ] vals

let test_opt_mux_collapse () =
  let c = E.input "c" 1 in
  let a = E.input "a" 8 and b8 = E.input "b" 8 in
  let es =
    [
      E.Mux (E.const_int ~width:1 1, a, b8) (* constant select: alias a *);
      E.Mux (c, a, a) (* equal branches: alias a *);
      E.Mux (c, E.const_int ~width:1 1, E.const_int ~width:1 0)
      (* mux(c,1,0) = c *);
    ]
  in
  let plan, slots = plan_of es in
  let opt, remap = P.optimize_remap plan in
  Alcotest.(check int) "all muxes collapsed" 0 (P.n_instrs opt);
  let bindings =
    [ ("c", bv ~width:1 1); ("a", bv ~width:8 7); ("b", bv ~width:8 9) ]
  in
  let vals = List.map (fun s -> B.to_int (run_get opt bindings remap.(s))) slots in
  Alcotest.(check (list int)) "values" [ 7; 7; 1 ] vals

let test_opt_keep_define () =
  (* [keep_define] narrows the liveness roots: the unobserved define's
     cone dies (its file read included — readers are pure) and its name
     disappears from the tables rather than resolving to a dead slot. *)
  let x = E.input "x" 8 in
  let b = P.create ~inputs:[ ("x", 8) ] ~files:[ ("mem", mem_width) ] () in
  let (_ : int) =
    P.define b "live" (E.Binop (E.Add, x, E.const_int ~width:8 1))
  in
  let (_ : int) =
    P.define b "dead"
      (E.File_read
         {
           file = "mem";
           data_width = mem_width;
           addr = E.Binop (E.Mul, x, E.const_int ~width:8 3);
         })
  in
  let plan = P.build b in
  let full = P.optimize plan in
  let narrow = P.optimize ~keep_define:(fun n -> n = "live") plan in
  Alcotest.(check bool) "narrowed tape is smaller" true
    (P.n_instrs narrow < P.n_instrs full);
  Alcotest.(check bool) "dead define dropped" true
    (P.define_slot narrow "dead" = None);
  let inst = P.instance narrow in
  P.set inst (Option.get (P.input_slot narrow "x")) (bv ~width:8 4);
  P.run inst;
  Alcotest.(check bool) "kept define still reads" true
    (P.read_name inst "live" = Some (bv ~width:8 5))

let test_opt_counters () =
  (* Plan_ops_folded / Slots_killed tally exactly the tape and slot
     shrink of this compile. *)
  let x = E.input "x" 8 in
  let e = E.Binop (E.Or, E.Binop (E.And, x, E.const_int ~width:8 0), x) in
  let plan, _ = plan_of [ e ] in
  let before_f = Obs.Counters.get Obs.Counters.Plan_ops_folded in
  let before_k = Obs.Counters.get Obs.Counters.Slots_killed in
  let opt = P.optimize plan in
  Alcotest.(check int) "ops folded"
    (P.n_instrs plan - P.n_instrs opt)
    (Obs.Counters.get Obs.Counters.Plan_ops_folded - before_f);
  Alcotest.(check int) "slots killed"
    (P.n_slots plan - P.n_slots opt)
    (Obs.Counters.get Obs.Counters.Slots_killed - before_k)

let test_opt_lut_synthesis () =
  (* A decode-shaped cone — eq-against-const chain, or tree, const-mux
     ladder, all keyed on one 6-bit field — collapses to a single
     lookup step, equivalent on every point of the domain. *)
  let op6 = E.input "op" 6 in
  let eqc k = E.Binop (E.Eq, op6, E.const_int ~width:6 k) in
  let sel = E.Binop (E.Or, eqc 3, eqc 7) in
  let e =
    E.Mux
      ( sel,
        E.const_int ~width:4 9,
        E.Mux (eqc 12, E.const_int ~width:4 5, E.const_int ~width:4 1) )
  in
  let plan, slots = plan_of [ e ] in
  let opt, remap = P.optimize_remap plan in
  Alcotest.(check int) "cone collapsed to one step" 1 (P.n_instrs opt);
  Alcotest.(check int) "one lut" 1
    (Option.value ~default:0 (List.assoc_opt "lut" (P.stats opt)));
  Alcotest.(check int) "one table survives pruning" 1
    (Option.value ~default:0 (List.assoc_opt "tables" (P.stats opt)));
  let root = List.hd slots in
  for v = 0 to 63 do
    let bindings = [ ("op", bv ~width:6 v) ] in
    let reference = run_get plan bindings root in
    let lut = run_get opt bindings remap.(root) in
    if not (B.equal reference lut) then
      Alcotest.failf "lut diverges at op=%d: %d <> %d" v (B.to_int reference)
        (B.to_int lut)
  done

let test_opt_lut2_synthesis () =
  (* A two-operand cone becomes one [O_lut2]; exhaustive over the
     8-bit joint domain. *)
  let a = E.input "a" 4 and b4 = E.input "b" 4 in
  let e =
    E.Mux
      ( E.Binop (E.Eq, a, b4),
        E.Binop (E.Add, a, b4),
        E.Binop (E.Xor, a, b4) )
  in
  let plan, slots = plan_of [ e ] in
  let opt, remap = P.optimize_remap plan in
  Alcotest.(check int) "cone collapsed to one step" 1 (P.n_instrs opt);
  Alcotest.(check int) "one lut2" 1
    (Option.value ~default:0 (List.assoc_opt "lut2" (P.stats opt)));
  let root = List.hd slots in
  for va = 0 to 15 do
    for vb = 0 to 15 do
      let bindings = [ ("a", bv ~width:4 va); ("b", bv ~width:4 vb) ] in
      let reference = run_get plan bindings root in
      let lut = run_get opt bindings remap.(root) in
      if not (B.equal reference lut) then
        Alcotest.failf "lut2 diverges at a=%d b=%d" va vb
    done
  done

let test_segment_gating () =
  (* Control prefix + on-demand groups: running control then each
     group reproduces the full run, and the counters account one
     Plan_runs per cycle plus exactly the instructions executed. *)
  let x = E.input "x" 8 in
  let b = P.create ~inputs:[ ("x", 8) ] () in
  let ctrl = P.root b (E.Binop (E.Eq, x, E.const_int ~width:8 0)) in
  let g0 = P.root b (E.Binop (E.Add, x, E.const_int ~width:8 1)) in
  let g1 = P.root b (E.Binop (E.Mul, x, E.const_int ~width:8 3)) in
  let plan = P.build b in
  let seg =
    P.segment ~ctrl_roots:[| ctrl |] plan ~groups:[ [| g0 |]; [| g1 |] ]
  in
  Alcotest.(check bool) "segmented" true (P.is_segmented seg);
  Alcotest.(check int) "groups" 2 (P.n_groups seg);
  Alcotest.(check int) "partition covers the tape" (P.n_instrs plan)
    (P.n_ctrl_instrs seg + P.group_instrs seg 0 + P.group_instrs seg 1);
  let inst = P.instance seg in
  P.set inst (Option.get (P.input_slot seg "x")) (bv ~width:8 5);
  let runs0 = Obs.Counters.get Obs.Counters.Plan_runs in
  let ops0 = Obs.Counters.get Obs.Counters.Plan_ops in
  P.run_control inst;
  Alcotest.(check bool) "ctrl value" true
    (B.equal (P.get inst ctrl) (B.of_bool false));
  P.run_group inst 0;
  Alcotest.(check int) "group 0 on demand" 6 (B.to_int (P.get inst g0));
  P.run_group inst 1;
  Alcotest.(check int) "group 1 on demand" 15 (B.to_int (P.get inst g1));
  Alcotest.(check int) "one run counted" 1
    (Obs.Counters.get Obs.Counters.Plan_runs - runs0);
  Alcotest.(check int) "every executed instr counted" (P.n_instrs plan)
    (Obs.Counters.get Obs.Counters.Plan_ops - ops0)

(* Optimized ≡ unoptimized over the same random expression space the
   interpreter property uses — the differential oracle for the whole
   rewrite catalogue, LUT synthesis included. *)
let opt_value e bindings =
  let b = P.create ~auto:true ~files:[ ("mem", mem_width) ] () in
  let slot = P.root b e in
  let plan, remap = P.optimize_remap (P.build b) in
  let inst = P.instance plan in
  P.bind_file inst "mem" mem_fun;
  P.iter_inputs plan (fun name ~slot ~width:_ ->
      P.set inst slot (List.assoc name bindings));
  P.run inst;
  P.get inst remap.(slot)

let prop_optimize_matches =
  QCheck.Test.make ~name:"optimized plan = unoptimized (all ops)" ~count:500
    arb_expr_seed (fun (e, seed) ->
      let bindings = bindings_of e seed in
      B.equal (plan_value e bindings) (opt_value e bindings))

let test_env_of_assoc_semantics () =
  (* First binding wins (List.assoc compatibility) and unknown names
     still raise, so Eval_error reporting is preserved. *)
  let env =
    Hw.Eval.env_of_assoc
      [ ("a", bv ~width:8 1); ("a", bv ~width:8 2) ]
  in
  Alcotest.(check int) "first binding wins" 1
    (B.to_int (Hw.Eval.eval env (E.input "a" 8)));
  match Hw.Eval.eval env (E.input "nope" 8) with
  | (_ : B.t) -> Alcotest.fail "expected Eval_error"
  | exception Hw.Eval.Eval_error _ -> ()

let () =
  Alcotest.run "plan"
    [
      ( "unit",
        [
          Alcotest.test_case "compile-time width errors" `Quick
            test_compile_errors;
          Alcotest.test_case "strict inputs" `Quick test_strict_inputs;
          Alcotest.test_case "run-time errors" `Quick test_run_errors;
          Alcotest.test_case "reset and rebind" `Quick test_reset_rebind;
          Alcotest.test_case "hash-consing" `Quick test_hash_consing;
          Alcotest.test_case "define resolution" `Quick
            test_define_resolution;
          Alcotest.test_case "env_of_assoc semantics" `Quick
            test_env_of_assoc_semantics;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "constant folding" `Quick test_opt_const_fold;
          Alcotest.test_case "algebraic identities" `Quick test_opt_identities;
          Alcotest.test_case "mux collapse" `Quick test_opt_mux_collapse;
          Alcotest.test_case "keep_define narrows liveness" `Quick
            test_opt_keep_define;
          Alcotest.test_case "fold counters" `Quick test_opt_counters;
          Alcotest.test_case "lut synthesis" `Quick test_opt_lut_synthesis;
          Alcotest.test_case "lut2 synthesis" `Quick test_opt_lut2_synthesis;
          Alcotest.test_case "segmentation gating" `Quick test_segment_gating;
        ] );
      ( "properties",
        List.map to_alcotest
          [ prop_plan_matches_interpreter; prop_optimize_matches ] );
    ]
