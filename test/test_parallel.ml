(* The domain pool (Exec.Pool): order preservation and bit-identical
   results at every pool size, exception propagation with batch
   draining, pool reuse, nested (re-entrant) maps, utilization stats —
   and the sweep determinism regression: parallel sweep rows must equal
   the serial rows field for field. *)

module Pool = Exec.Pool

(* Explicit qcheck seeding: QCHECK_SEED when set, a fixed default
   otherwise, threaded into every property and printed with each
   counterexample so a failure replays with
   `QCHECK_SEED=<n> dune runtest`. *)
let qcheck_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some n -> n
  | None -> 421_337

let to_alcotest test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| qcheck_seed |]) test

(* ------------------------------------------------------------------ *)
(* Property: Pool.map is List.map, at any pool size                    *)
(* ------------------------------------------------------------------ *)

let prop_map_is_list_map =
  QCheck.Test.make ~name:"Pool.map = List.map (order, j in {1,2,4})"
    ~count:60
    (QCheck.make
       ~print:(fun (j, xs) ->
         Printf.sprintf "QCHECK_SEED=%d j=%d [%s]" qcheck_seed j
           (String.concat "; " (List.map string_of_int xs)))
       QCheck.Gen.(
         pair (oneofl [ 1; 2; 4 ]) (list_size (int_bound 64) small_int)))
    (fun (j, xs) ->
      let f x = (x * 7919) lxor (x lsl 3) in
      Pool.with_pool ~size:j (fun pool -> Pool.map pool f xs) = List.map f xs)

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_exception_propagation () =
  Pool.with_pool ~size:4 @@ fun pool ->
  let inputs = List.init 8 Fun.id in
  (match
     Pool.map pool
       (fun x -> if x = 3 then failwith "boom3" else x * 2)
       inputs
   with
  | (_ : int list) -> Alcotest.fail "expected Failure"
  | exception Failure msg -> Alcotest.(check string) "message" "boom3" msg);
  (* The batch drained and the pool survived: the next map works. *)
  Alcotest.(check (list int)) "pool reusable after failure"
    (List.map (fun x -> x + 1) inputs)
    (Pool.map pool (fun x -> x + 1) inputs)

let test_pool_reuse_and_stats () =
  Pool.with_pool ~size:3 @@ fun pool ->
  Pool.reset_stats pool;
  let n_batches = 10 and n_tasks = 24 in
  for i = 1 to n_batches do
    let expect = List.init n_tasks (fun x -> x * i) in
    Alcotest.(check (list int))
      (Printf.sprintf "batch %d" i)
      expect
      (Pool.map pool (fun x -> x * i) (List.init n_tasks Fun.id))
  done;
  let stats = Pool.stats pool in
  Alcotest.(check int) "one stats row per worker" 3 (List.length stats);
  Alcotest.(check int) "every task accounted"
    (n_batches * n_tasks)
    (List.fold_left (fun a (s : Pool.domain_stats) -> a + s.Pool.tasks) 0 stats)

let test_nested_map () =
  (* A task that itself maps on the same pool: the helping caller makes
     this deadlock-free even when all workers are busy. *)
  Pool.with_pool ~size:2 @@ fun pool ->
  let result =
    Pool.map pool
      (fun row -> Pool.map pool (fun col -> (row * 10) + col) [ 0; 1; 2 ])
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list (list int)))
    "nested rows"
    [ [ 0; 1; 2 ]; [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ] ]
    result

let test_map_reduce_ordered () =
  (* The fold must run in input order regardless of completion order:
     string concatenation is order-sensitive. *)
  Pool.with_pool ~size:4 @@ fun pool ->
  let s =
    Pool.map_reduce pool
      ~map:string_of_int
      ~fold:(fun acc x -> acc ^ x)
      ~init:""
      (List.init 10 Fun.id)
  in
  Alcotest.(check string) "ordered fold" "0123456789" s

let test_size_one_inline () =
  let pool = Pool.create ~size:1 () in
  Alcotest.(check int) "size" 1 (Pool.size pool);
  Alcotest.(check (list int)) "inline map" [ 2; 4; 6 ]
    (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *)

let test_shutdown_rejects () =
  let pool = Pool.create ~size:2 () in
  Alcotest.(check (list int)) "works before" [ 1 ]
    (Pool.map pool Fun.id [ 1 ]);
  Pool.shutdown pool;
  match Pool.map pool Fun.id [ 1 ] with
  | (_ : int list) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_invalid_size () =
  match Pool.create ~size:0 () with
  | (_ : Pool.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Fault-isolated map (map_result): failure paths                      *)
(* ------------------------------------------------------------------ *)

let test_map_result_failure_isolated () =
  (* A raising task yields Failed for its slot only; every sibling
     still completes and the pool survives at full width. *)
  Pool.with_pool ~size:4 @@ fun pool ->
  let rs =
    Pool.map_result pool
      (fun ~cancel:_ x ->
        if x mod 3 = 0 then failwith ("boom" ^ string_of_int x) else x * 2)
      (List.init 7 Fun.id)
  in
  Alcotest.(check int) "one result per input" 7 (List.length rs);
  List.iteri
    (fun i r ->
      match r with
      | Pool.Done v ->
        Alcotest.(check bool) "survivor slot" false (i mod 3 = 0);
        Alcotest.(check int) "survivor value" (i * 2) v
      | Pool.Failed (Failure msg, _) ->
        Alcotest.(check bool) "failed slot" true (i mod 3 = 0);
        Alcotest.(check string) "failure message"
          ("boom" ^ string_of_int i) msg
      | Pool.Failed _ -> Alcotest.fail "unexpected exception kind"
      | Pool.Timed_out _ -> Alcotest.fail "unexpected timeout"
      | Pool.Cancelled _ -> Alcotest.fail "unexpected cancellation")
    rs;
  Alcotest.(check (list int)) "pool reusable after failures" [ 2; 4; 6 ]
    (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ])

let test_map_result_timeout_spinner () =
  (* A task that spins forever but polls its token: the deadline trips
     it, the slot is Timed_out with the elapsed time, and no worker
     domain is lost — a later full-width batch still completes. *)
  Pool.with_pool ~size:2 @@ fun pool ->
  let rs =
    Pool.map_result ~timeout_s:0.2 pool
      (fun ~cancel x ->
        if x = 1 then
          while true do
            Exec.Cancel.check cancel;
            Domain.cpu_relax ()
          done;
        x)
      [ 0; 1; 2 ]
  in
  (match rs with
  | [ Pool.Done 0; Pool.Timed_out dt; Pool.Done 2 ] ->
    Alcotest.(check bool) "elapsed covers the deadline" true (dt >= 0.2)
  | _ -> Alcotest.fail "expected [Done 0; Timed_out _; Done 2]");
  Alcotest.(check (list int)) "pool at full width after the timeout"
    (List.init 8 succ)
    (Pool.map pool succ (List.init 8 Fun.id))

let test_map_result_nested_under_failure () =
  (* A sibling raises while another task runs a nested Pool.map on the
     same pool: the nested batch is unaffected (helping keeps it
     deadlock-free) and only the raising slot is Failed. *)
  Pool.with_pool ~size:2 @@ fun pool ->
  let rs =
    Pool.map_result pool
      (fun ~cancel:_ x ->
        if x = 0 then failwith "sibling"
        else Pool.map pool (fun y -> (10 * x) + y) [ 0; 1; 2 ])
      [ 0; 1; 2 ]
  in
  match rs with
  | [ Pool.Failed (Failure msg, _); Pool.Done r1; Pool.Done r2 ] ->
    Alcotest.(check string) "sibling message" "sibling" msg;
    Alcotest.(check (list int)) "nested under failure 1" [ 10; 11; 12 ] r1;
    Alcotest.(check (list int)) "nested under failure 2" [ 20; 21; 22 ] r2
  | _ -> Alcotest.fail "expected [Failed; Done; Done]"

let test_map_result_explicit_cancel_typed () =
  (* An explicitly tripped batch token yields Cancelled (not
     Timed_out): the token's latched reason classifies the result. *)
  Pool.with_pool ~size:2 @@ fun pool ->
  let cancel = Exec.Cancel.create () in
  Exec.Cancel.cancel cancel;
  (match
     Pool.map_result ~cancel pool
       (fun ~cancel x ->
         Exec.Cancel.check cancel;
         x)
       [ 0; 1 ]
   with
  | [ Pool.Cancelled _; Pool.Cancelled _ ] -> ()
  | [ Pool.Timed_out _; _ ] | [ _; Pool.Timed_out _ ] ->
    Alcotest.fail "explicit cancel misclassified as a timeout"
  | _ -> Alcotest.fail "expected two Cancelled results");
  (* ...while a deadline trip still reports Timed_out. *)
  match
    Pool.map_result ~timeout_s:0.0 pool
      (fun ~cancel _ ->
        Unix.sleepf 0.002;
        Exec.Cancel.check cancel)
      [ () ]
  with
  | [ Pool.Timed_out _ ] -> ()
  | _ -> Alcotest.fail "expected a Timed_out result"

(* ------------------------------------------------------------------ *)
(* Chaos injection and self-healing                                    *)
(* ------------------------------------------------------------------ *)

let test_chaos_crash_budget_exact () =
  (* Budgets turn probabilities into exact counts: crash = 1.0 with a
     budget of 3 fails exactly the first three draws, wherever the
     scheduler happens to land them, and every other task completes
     with the right value. *)
  let chaos =
    Exec.Chaos.create
      {
        Exec.Chaos.default_config with
        Exec.Chaos.seed = 3;
        crash = 1.0;
        crash_budget = Some 3;
      }
  in
  Pool.with_pool ~size:3 ~chaos @@ fun pool ->
  let rs = Pool.map_result pool (fun ~cancel:_ x -> x) (List.init 10 Fun.id) in
  let failed, done_ =
    List.partition (function Pool.Failed _ -> true | _ -> false) rs
  in
  Alcotest.(check int) "exactly budget crashes" 3 (List.length failed);
  Alcotest.(check int) "the rest completed" 7 (List.length done_);
  List.iteri
    (fun i r ->
      match r with
      | Pool.Done v -> Alcotest.(check int) "slot value" i v
      | Pool.Failed (Exec.Chaos.Injected_crash _, _) -> ()
      | _ -> Alcotest.fail "unexpected result kind")
    rs;
  Alcotest.(check int) "injector accounted" 3 (Exec.Chaos.injected chaos)

let test_self_healing () =
  (* Injected worker kills: the claimed tasks are requeued (no batch
     ever loses work), the dead domains are respawned by [heal] at a
     batch boundary, and the restarts surface in Pool_restarts. *)
  let chaos =
    Exec.Chaos.create
      {
        Exec.Chaos.default_config with
        Exec.Chaos.seed = 7;
        kill = 1.0;
        kill_budget = Some 2;
      }
  in
  Pool.with_pool ~size:4 ~chaos @@ fun pool ->
  let restarts0 = Obs.Counters.get Obs.Counters.Pool_restarts in
  let xs = List.init 32 Fun.id in
  let expect = List.map (fun x -> x * x) xs in
  Alcotest.(check (list int)) "no work lost to the kills" expect
    (Pool.map pool (fun x -> x * x) xs);
  (* Chaos pools heal at batch boundaries; drive a few batches until
     both victims have been respawned. *)
  let rec settle n =
    if
      n > 0
      && Obs.Counters.get Obs.Counters.Pool_restarts - restarts0 < 2
    then begin
      Alcotest.(check (list int)) "batch while healing" [ 2; 4; 6 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]);
      settle (n - 1)
    end
  in
  settle 10;
  Alcotest.(check int) "both kills healed" 2
    (Obs.Counters.get Obs.Counters.Pool_restarts - restarts0);
  Alcotest.(check int) "no dead workers left" 0 (Pool.dead_workers pool);
  Alcotest.(check (list int)) "full width restored" expect
    (Pool.map pool (fun x -> x * x) xs)

let test_map_opt () =
  Alcotest.(check (list int)) "None = List.map" [ 2; 3 ]
    (Pool.map_opt None succ [ 1; 2 ]);
  Pool.with_pool ~size:2 @@ fun pool ->
  Alcotest.(check (list int)) "Some = Pool.map" [ 2; 3 ]
    (Pool.map_opt (Some pool) succ [ 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Sweep determinism regression: -j 4 rows = serial rows, field for    *)
(* field (incl. the dhaz/ext/squash columns)                           *)
(* ------------------------------------------------------------------ *)

let check_rows_equal what (serial : (float * Workload.Stats.row) list)
    (parallel : (float * Workload.Stats.row) list) =
  Alcotest.(check int)
    (what ^ ": same point count")
    (List.length serial) (List.length parallel);
  List.iter2
    (fun (xs, (s : Workload.Stats.row)) (xp, (p : Workload.Stats.row)) ->
      let ck name field = Alcotest.(check int) (what ^ ": " ^ name) (field s) (field p) in
      Alcotest.(check (float 0.0)) (what ^ ": point") xs xp;
      Alcotest.(check string) (what ^ ": label") s.Workload.Stats.label
        p.Workload.Stats.label;
      ck "instructions" (fun r -> r.Workload.Stats.instructions);
      ck "cycles" (fun r -> r.Workload.Stats.cycles);
      Alcotest.(check (float 0.0)) (what ^ ": cpi") s.Workload.Stats.cpi
        p.Workload.Stats.cpi;
      Alcotest.(check (float 0.0))
        (what ^ ": speedup")
        s.Workload.Stats.speedup_vs_sequential
        p.Workload.Stats.speedup_vs_sequential;
      ck "fetch_stall_cycles" (fun r -> r.Workload.Stats.fetch_stall_cycles);
      ck "dhaz_cycles" (fun r -> r.Workload.Stats.dhaz_cycles);
      ck "ext_cycles" (fun r -> r.Workload.Stats.ext_cycles);
      ck "rollbacks" (fun r -> r.Workload.Stats.rollbacks);
      ck "squashed" (fun r -> r.Workload.Stats.squashed))
    serial parallel

let test_dependency_sweep_deterministic () =
  let biases = [ 0.0; 0.5; 1.0 ] in
  let serial =
    Workload.Sweep.dependency_sweep ~biases ~length:60 ~seed:3 ()
  in
  Pool.with_pool ~size:4 @@ fun pool ->
  let parallel =
    Workload.Sweep.dependency_sweep ~pool ~biases ~length:60 ~seed:3 ()
  in
  check_rows_equal "dependency" serial parallel

let test_branch_sweep_deterministic () =
  let taken_fracs = [ 0.0; 0.5; 1.0 ] in
  let serial =
    Workload.Sweep.branch_sweep ~taken_fracs ~length:60 ~seed:9 ()
  in
  Pool.with_pool ~size:4 @@ fun pool ->
  let parallel =
    Workload.Sweep.branch_sweep ~pool ~taken_fracs ~length:60 ~seed:9 ()
  in
  check_rows_equal "branch" serial parallel

(* ------------------------------------------------------------------ *)
(* Sharded map: bit-identical to map, order preserved                  *)
(* ------------------------------------------------------------------ *)

let prop_map_sharded_is_map =
  QCheck.Test.make ~name:"Pool.map_sharded = List.map (j, shards varied)"
    ~count:60
    (QCheck.make
       ~print:(fun (j, k, xs) ->
         Printf.sprintf "QCHECK_SEED=%d j=%d shards=%d [%s]" qcheck_seed j k
           (String.concat "; " (List.map string_of_int xs)))
       QCheck.Gen.(
         triple (oneofl [ 1; 2; 4 ]) (oneofl [ 1; 2; 3; 8 ])
           (list_size (int_bound 64) small_int)))
    (fun (j, k, xs) ->
      let f x = (x * 7919) lxor (x lsl 3) in
      Pool.with_pool ~size:j (fun pool -> Pool.map_sharded ~shards:k pool f xs)
      = List.map f xs)

(* ------------------------------------------------------------------ *)
(* WORK counter determinism: every deterministic counter must be       *)
(* bit-identical across -j 1 vs -j 4 and batched vs rebuild            *)
(* ------------------------------------------------------------------ *)

let counted f =
  Obs.Counters.reset ();
  let r = f () in
  (r, Obs.Counters.work_snapshot ())

let check_work_equal what a b =
  Alcotest.(check (list (pair string int))) (what ^ ": WORK counters") a b

let test_work_counters_j1_vs_j4 () =
  let biases = [ 0.0; 0.3; 0.6; 1.0 ] in
  let run ?pool () =
    Workload.Sweep.dependency_sweep ?pool ~biases ~length:80 ~seed:5 ()
  in
  let rows_s, work_s = counted (fun () -> run ()) in
  let rows_p, work_p =
    counted (fun () -> Pool.with_pool ~size:4 (fun pool -> run ~pool ()))
  in
  check_rows_equal "work j1 vs j4" rows_s rows_p;
  check_work_equal "serial vs -j4" work_s work_p;
  Alcotest.(check bool) "counters actually counted" true
    (List.assoc "sim_cycles" work_s > 0
    && List.assoc "plan_ops" work_s > 0
    && List.assoc "sweep_points" work_s = List.length biases)

let test_work_counters_batched_vs_rebuild () =
  let biases = [ 0.0; 0.5; 1.0 ] in
  let run ~batched () =
    Workload.Sweep.dependency_sweep ~batched ~biases ~length:60 ~seed:3 ()
  in
  let rows_b, work_b = counted (fun () -> run ~batched:true ()) in
  let rows_r, work_r = counted (fun () -> run ~batched:false ()) in
  check_rows_equal "batched vs rebuild" rows_b rows_r;
  check_work_equal "batched vs rebuild" work_b work_r

let prop_work_counters_deterministic =
  QCheck.Test.make
    ~name:"WORK counters bit-identical (random sweep, j in {1,2,4})"
    ~count:6
    (QCheck.make
       ~print:(fun (j, seed, bias) ->
         Printf.sprintf "QCHECK_SEED=%d j=%d seed=%d bias=%.2f" qcheck_seed j
           seed bias)
       QCheck.Gen.(
         triple (oneofl [ 2; 4 ]) (int_bound 1000)
           (map (fun n -> float_of_int n /. 100.) (int_bound 100))))
    (fun (j, seed, bias) ->
      let biases = [ bias; 1.0 -. bias ] in
      let run ?pool () =
        Workload.Sweep.dependency_sweep ?pool ~biases ~length:40 ~seed ()
      in
      let rows_s, work_s = counted (fun () -> run ()) in
      let rows_p, work_p =
        counted (fun () -> Pool.with_pool ~size:j (fun pool -> run ~pool ()))
      in
      rows_s = rows_p && work_s = work_p)

let test_verify_deterministic () =
  (* Core.verify with and without a pool: same verdict, same reports. *)
  let tr = Core.Toy.transform ~program:Core.Toy.default_program () in
  let serial = Core.verify tr in
  let parallel = Pool.with_pool ~size:4 (fun pool -> Core.verify ~pool tr) in
  Alcotest.(check bool) "serial verdict" true (Core.verified serial);
  Alcotest.(check bool) "parallel verdict" true (Core.verified parallel);
  Alcotest.(check bool) "same consistency report" true
    (serial.Core.consistency = parallel.Core.consistency);
  Alcotest.(check bool) "same liveness report" true
    (serial.Core.liveness = parallel.Core.liveness);
  Alcotest.(check int) "same obligation count"
    (List.length serial.Core.obligations)
    (List.length parallel.Core.obligations)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "reuse and stats" `Quick
            test_pool_reuse_and_stats;
          Alcotest.test_case "nested map" `Quick test_nested_map;
          Alcotest.test_case "map_reduce ordered" `Quick
            test_map_reduce_ordered;
          Alcotest.test_case "size 1 inline" `Quick test_size_one_inline;
          Alcotest.test_case "shutdown rejects" `Quick test_shutdown_rejects;
          Alcotest.test_case "invalid size" `Quick test_invalid_size;
          Alcotest.test_case "map_opt" `Quick test_map_opt;
        ] );
      ( "map_result",
        [
          Alcotest.test_case "failure isolated, batch drains" `Quick
            test_map_result_failure_isolated;
          Alcotest.test_case "timeout cancels a spinner" `Quick
            test_map_result_timeout_spinner;
          Alcotest.test_case "nested map under raising sibling" `Quick
            test_map_result_nested_under_failure;
          Alcotest.test_case "explicit cancel is typed" `Quick
            test_map_result_explicit_cancel_typed;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "crash budget exact" `Quick
            test_chaos_crash_budget_exact;
          Alcotest.test_case "kills heal, no work lost" `Quick
            test_self_healing;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "dependency sweep -j4 = serial" `Quick
            test_dependency_sweep_deterministic;
          Alcotest.test_case "branch sweep -j4 = serial" `Quick
            test_branch_sweep_deterministic;
          Alcotest.test_case "Core.verify -j4 = serial" `Quick
            test_verify_deterministic;
          Alcotest.test_case "WORK counters -j4 = serial" `Quick
            test_work_counters_j1_vs_j4;
          Alcotest.test_case "WORK counters batched = rebuild" `Quick
            test_work_counters_batched_vs_rebuild;
        ] );
      ( "properties",
        List.map to_alcotest
          [
            prop_map_is_list_map;
            prop_map_sharded_is_map;
            prop_work_counters_deterministic;
          ] );
    ]
