(* The observability subsystem: JSON round-trips, the metrics
   registry, span collection, the bench export schema, and — the core
   property — exact hazard-attribution cycle accounting on the DLX. *)

let json = Alcotest.testable Obs.Json.pp ( = )

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("null", Null);
          ("bools", List [ Bool true; Bool false ]);
          ("ints", List [ Int 0; Int (-42); Int max_int ]);
          ( "floats",
            List [ Float 0.1; Float 1e-300; Float (-.Float.pi); Float 3.0 ] );
          ("str", String "a \"quoted\"\nline\twith \\ and \x07 control");
          ("nested", Obj [ ("empty_list", List []); ("empty_obj", Obj []) ]);
        ])
  in
  Alcotest.check json "pretty round-trip" v
    (Obs.Json.parse_exn (Obs.Json.to_string v));
  Alcotest.check json "minified round-trip" v
    (Obs.Json.parse_exn (Obs.Json.to_string ~minify:true v))

let test_json_parse () =
  Alcotest.check json "unicode escape"
    (Obs.Json.String "a\xc3\xa9b")
    (Obs.Json.parse_exn {|"aéb"|});
  Alcotest.check json "number classes"
    (Obs.Json.List [ Obs.Json.Int 12; Obs.Json.Float 1.5; Obs.Json.Float 1e2 ])
    (Obs.Json.parse_exn "[12, 1.5, 1e2]");
  List.iter
    (fun bad ->
      match Obs.Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed %S" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}"; "" ]

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg ~help:"retired instructions" "retired" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "same name shares state" 5
    (Obs.Metrics.counter_value (Obs.Metrics.counter reg "retired"));
  let g = Obs.Metrics.gauge reg "cpi" in
  Obs.Metrics.set g 1.25;
  Alcotest.(check (float 0.0)) "gauge" 1.25 (Obs.Metrics.gauge_value g);
  let h = Obs.Metrics.histogram reg "stall_run_length" in
  List.iter (Obs.Metrics.observe h) [ 1.0; 1.0; 3.0; 9.0 ];
  Alcotest.(check int) "histogram count" 4 (Obs.Metrics.histogram_count h);
  Alcotest.(check (float 0.0)) "histogram sum" 14.0
    (Obs.Metrics.histogram_sum h);
  (match Obs.Json.member "counters" (Obs.Metrics.to_json reg) with
  | Some (Obs.Json.Obj fields) ->
    Alcotest.(check bool) "counter serialized" true
      (List.mem_assoc "retired" fields)
  | _ -> Alcotest.fail "counters object missing");
  Alcotest.(check bool) "csv has rows" true
    (String.length (Obs.Metrics.to_csv reg) > 0);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: retired already registered as a counter")
    (fun () -> ignore (Obs.Metrics.gauge reg "retired"))

(* ------------------------------------------------------------------ *)
(* Spans and trace events                                              *)
(* ------------------------------------------------------------------ *)

let test_spans () =
  Obs.Span.set_enabled true;
  let r =
    Obs.Span.with_span "outer" (fun () ->
        Obs.Span.with_span ~args:[ ("k", "1") ] "inner" (fun () -> 7))
  in
  Obs.Span.set_enabled false;
  Alcotest.(check int) "value through" 7 r;
  (* set_enabled false keeps the records until the next enable. *)
  match Obs.Span.records () with
  | [ inner; outer ] ->
    Alcotest.(check string) "inner first" "inner" inner.Obs.Span.span_name;
    Alcotest.(check int) "inner depth" 1 inner.Obs.Span.depth;
    Alcotest.(check string) "outer second" "outer" outer.Obs.Span.span_name;
    Alcotest.(check int) "outer depth" 0 outer.Obs.Span.depth;
    let trace = Obs.Trace_event.to_json [ inner; outer ] in
    (match Obs.Json.member "traceEvents" trace with
    | Some (Obs.Json.List evs) ->
      (* two spans + the process_name metadata record *)
      Alcotest.(check int) "trace events" 3 (List.length evs)
    | _ -> Alcotest.fail "traceEvents missing");
    Alcotest.check json "trace JSON parses" trace
      (Obs.Json.parse_exn (Obs.Trace_event.to_string [ inner; outer ]))
  | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs)

let test_spans_disabled () =
  Obs.Span.reset ();
  let r = Obs.Span.with_span "ignored" (fun () -> 3) in
  Alcotest.(check int) "value through" 3 r;
  Alcotest.(check int) "no records" 0 (List.length (Obs.Span.records ()))

(* ------------------------------------------------------------------ *)
(* Bench export                                                        *)
(* ------------------------------------------------------------------ *)

let test_export_roundtrip () =
  let entries =
    [
      Obs.Export.entry ~cpi:1.25 ~instructions:64 ~cycles:80
        ~breakdown:[ ("dhaz:stage1:1_GPRa", 0.1875); ("startup", 0.0625) ]
        "C1.fib_10";
      Obs.Export.entry ~ns_per_run:1234.5 "TIMING.F2_dlx_transformation";
      Obs.Export.entry "empty";
    ]
  in
  (match Obs.Export.of_json (Obs.Export.to_json entries) with
  | Ok back -> Alcotest.(check bool) "round-trip" true (back = entries)
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg);
  (* Unknown schema versions are rejected. *)
  match
    Obs.Export.of_json
      (Obs.Json.Obj
         [
           ("schema", Obs.Json.String "pipeline-bench/999");
           ("experiments", Obs.Json.Obj []);
         ])
  with
  | Ok _ -> Alcotest.fail "accepted unknown schema"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Work counters: the facility itself                                  *)
(* ------------------------------------------------------------------ *)

let test_counters_basic () =
  Obs.Counters.reset ();
  Obs.Counters.bump Obs.Counters.Plan_runs;
  Obs.Counters.add Obs.Counters.Plan_ops 41;
  Obs.Counters.add Obs.Counters.Plan_ops 1;
  Alcotest.(check int) "bump" 1 (Obs.Counters.get Obs.Counters.Plan_runs);
  Alcotest.(check int) "add" 42 (Obs.Counters.get Obs.Counters.Plan_ops);
  Obs.Counters.record_max Obs.Counters.Pool_queue_hwm 7;
  Obs.Counters.record_max Obs.Counters.Pool_queue_hwm 3;
  Alcotest.(check int) "record_max keeps the max" 7
    (Obs.Counters.get Obs.Counters.Pool_queue_hwm);
  Obs.Counters.with_disabled (fun () ->
      Obs.Counters.bump Obs.Counters.Plan_runs;
      Alcotest.(check bool) "disabled inside" false (Obs.Counters.enabled ()));
  Alcotest.(check bool) "re-enabled after" true (Obs.Counters.enabled ());
  Alcotest.(check int) "no counting while disabled" 1
    (Obs.Counters.get Obs.Counters.Plan_runs);
  let work = Obs.Counters.work_snapshot () in
  Alcotest.(check (option int))
    "snapshot row" (Some 42)
    (List.assoc_opt "plan_ops" work);
  Alcotest.(check bool) "work snapshot has no sched rows" false
    (List.mem_assoc "pool_tasks" work);
  Alcotest.(check bool) "sched snapshot has the hwm" true
    (List.mem_assoc "pool_queue_hwm" (Obs.Counters.sched_snapshot ()));
  Obs.Counters.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Counters.get Obs.Counters.Plan_ops)

(* ------------------------------------------------------------------ *)
(* Per-commit history: JSONL round-trip and the trend gate             *)
(* ------------------------------------------------------------------ *)

(* A miniature export: deterministic WORK scores, an informational
   SCHED row, one ns-like timing row and one speedup row. *)
let entries_v n =
  [
    Obs.Export.entry
      ~breakdown:[ ("plan_ops", float_of_int n); ("sim_cycles", 100.0) ]
      "WORK.counters";
    Obs.Export.entry ~breakdown:[ ("pool_tasks", 5.0) ] "SCHED.counters";
    Obs.Export.entry ~ns_per_run:1000.0 "PERF.sweep_serial";
    Obs.Export.entry ~ns_per_run:2.0 "PERF.par_sweep_speedup";
  ]

let record ?(commit = "abc1234") ?(epoch = 1754000000.0) entries =
  { Obs.History.commit; epoch; entries }

let test_history_roundtrip () =
  let path = Filename.temp_file "pipegen_hist" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let r1 = record ~commit:"aaaa111" (entries_v 10) in
  let r2 = record ~commit:"bbbb222" ~epoch:1754100000.5 (entries_v 11) in
  Obs.History.append ~path r1;
  Obs.History.append ~path r2;
  (match Obs.History.read ~path with
  | Ok back -> Alcotest.(check bool) "append/read round-trip" true (back = [ r1; r2 ])
  | Error msg -> Alcotest.failf "read failed: %s" msg);
  (* One minified line per record. *)
  let lines =
    In_channel.with_open_text path In_channel.input_lines
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "one line per record" 2 (List.length lines);
  (* Unknown history schemas are rejected. *)
  match
    Obs.History.record_of_json
      (Obs.Json.Obj [ ("schema", Obs.Json.String "pipeline-bench-history/999") ])
  with
  | Ok _ -> Alcotest.fail "accepted unknown history schema"
  | Error _ -> ()

let test_trend_gate_work () =
  let history = [ record (entries_v 10) ] in
  Alcotest.(check int) "identical run passes" 0
    (List.length (Obs.History.trend_gate ~history (entries_v 10)));
  (* A changed WORK row gates from the very first record; the SCHED row
     and the under-populated timing rows never do. *)
  match Obs.History.trend_gate ~history (entries_v 11) with
  | [ g ] ->
    Alcotest.(check string) "row" "WORK.counters.plan_ops" g.Obs.History.g_name;
    Alcotest.(check bool) "kind" true (g.Obs.History.g_kind = Obs.History.Work);
    Alcotest.(check (float 1e-9)) "baseline" 10.0 g.Obs.History.g_baseline;
    Alcotest.(check (float 1e-9)) "current" 11.0 g.Obs.History.g_current
  | gates -> Alcotest.failf "expected 1 gate, got %d" (List.length gates)

let test_trend_gate_missing_work_row () =
  let history = [ record (entries_v 10) ] in
  let current =
    [ Obs.Export.entry ~breakdown:[ ("plan_ops", 10.0) ] "WORK.counters" ]
  in
  let gates = Obs.History.trend_gate ~history current in
  Alcotest.(check bool) "disappeared WORK row is gated" true
    (List.exists
       (fun (g : Obs.History.gate) ->
         g.Obs.History.g_name = "WORK.counters.sim_cycles"
         && Float.is_nan g.Obs.History.g_current)
       gates)

let test_trend_gate_timing_band () =
  let hist ns = record [ Obs.Export.entry ~ns_per_run:ns "PERF.sweep_serial" ] in
  let current ns = [ Obs.Export.entry ~ns_per_run:ns "PERF.sweep_serial" ] in
  Alcotest.(check int) "too few records: not gated" 0
    (List.length
       (Obs.History.trend_gate ~history:[ hist 100.; hist 100. ]
          (current 1000.)));
  let history = [ hist 120.; hist 100.; hist 110. ] in
  (* Window best is 100; the default tol 0.5 allows up to 150. *)
  Alcotest.(check int) "within the band" 0
    (List.length (Obs.History.trend_gate ~history (current 149.)));
  (match Obs.History.trend_gate ~history (current 151.) with
  | [ g ] ->
    Alcotest.(check string) "row" "PERF.sweep_serial.ns_per_run"
      g.Obs.History.g_name;
    Alcotest.(check bool) "kind" true (g.Obs.History.g_kind = Obs.History.Timing);
    Alcotest.(check (float 1e-9)) "baseline is the window min" 100.0
      g.Obs.History.g_baseline
  | gates -> Alcotest.failf "expected 1 gate, got %d" (List.length gates));
  Alcotest.(check int) "wider tolerance passes" 0
    (List.length (Obs.History.trend_gate ~tol:1.0 ~history (current 151.)))

let test_trend_gate_speedup_direction () =
  let hist s =
    record [ Obs.Export.entry ~ns_per_run:s "PERF.par_sweep_speedup" ]
  in
  let current s =
    [ Obs.Export.entry ~ns_per_run:s "PERF.par_sweep_speedup" ]
  in
  let history = [ hist 1.8; hist 2.0; hist 1.9 ] in
  Alcotest.(check int) "getting faster passes" 0
    (List.length (Obs.History.trend_gate ~history (current 3.0)));
  (* Window best is 2.0; tol 0.5 puts the floor at 1.0. *)
  Alcotest.(check int) "above the floor passes" 0
    (List.length (Obs.History.trend_gate ~history (current 1.05)));
  match Obs.History.trend_gate ~history (current 0.9) with
  | [ g ] ->
    Alcotest.(check (float 1e-9)) "baseline is the window max" 2.0
      g.Obs.History.g_baseline
  | gates -> Alcotest.failf "expected 1 gate, got %d" (List.length gates)

let test_trend_gate_window () =
  let hist ns = record [ Obs.Export.entry ~ns_per_run:ns "PERF.x" ] in
  let history = [ hist 100.; hist 1000.; hist 1000. ] in
  let current = [ Obs.Export.entry ~ns_per_run:1400.0 "PERF.x" ] in
  Alcotest.(check int) "old fast record aged out of the window" 0
    (List.length (Obs.History.trend_gate ~k:2 ~min_records:2 ~history current));
  Alcotest.(check bool) "gated once the window reaches it" true
    (Obs.History.trend_gate ~k:3 ~min_records:2 ~history current <> [])

let test_history_select_diff () =
  let r1 = record ~commit:"aaaa111" (entries_v 10) in
  let r2 = record ~commit:"bbbb222" (entries_v 12) in
  let records = [ r1; r2 ] in
  (match Obs.History.select records "-1" with
  | Ok r -> Alcotest.(check string) "-1 is newest" "bbbb222" r.Obs.History.commit
  | Error e -> Alcotest.fail e);
  (match Obs.History.select records "0" with
  | Ok r -> Alcotest.(check string) "0 is oldest" "aaaa111" r.Obs.History.commit
  | Error e -> Alcotest.fail e);
  (match Obs.History.select records "aaa" with
  | Ok r ->
    Alcotest.(check string) "commit prefix" "aaaa111" r.Obs.History.commit
  | Error e -> Alcotest.fail e);
  (match Obs.History.select records "zzz" with
  | Ok _ -> Alcotest.fail "bogus selector accepted"
  | Error _ -> ());
  let rows = Obs.History.diff r1 r2 in
  Alcotest.(check bool) "diff finds the changed row" true
    (List.exists
       (fun (d : Obs.History.diff_row) ->
         d.Obs.History.d_name = "WORK.counters.plan_ops")
       rows);
  Alcotest.(check bool) "diff skips identical rows" false
    (List.exists
       (fun (d : Obs.History.diff_row) ->
         d.Obs.History.d_name = "PERF.sweep_serial.ns_per_run")
       rows)

(* ------------------------------------------------------------------ *)
(* Hazard attribution: exact cycle accounting on the DLX               *)
(* ------------------------------------------------------------------ *)

let run_attribution ?options ?(variant = Dlx.Seq_dlx.Base) p =
  let tr =
    Dlx.Seq_dlx.transform ?options ~data:p.Dlx.Progs.data variant
      ~program:(Dlx.Progs.program p)
  in
  Pipeline.Attribution.run ~stop_after:p.Dlx.Progs.dyn_instructions tr

let check_exact_accounting label (result : Pipeline.Pipesem.result)
    (s : Obs.Hazard.summary) =
  Alcotest.(check bool)
    (label ^ " completed") true
    (result.Pipeline.Pipesem.outcome = Pipeline.Pipesem.Completed);
  let stats = result.Pipeline.Pipesem.stats in
  Alcotest.(check int)
    (label ^ " cycles agree") stats.Pipeline.Pipesem.cycles s.Obs.Hazard.total_cycles;
  Alcotest.(check int)
    (label ^ " retired agree") stats.Pipeline.Pipesem.retired s.Obs.Hazard.retired;
  (* The integer identities behind CPI = 1 + sum of components. *)
  let lost =
    List.fold_left
      (fun acc (c : Obs.Hazard.component) -> acc + c.Obs.Hazard.cycles)
      0 s.Obs.Hazard.lost
  in
  Alcotest.(check int)
    (label ^ " cycles = retiring + lost")
    s.Obs.Hazard.total_cycles
    (s.Obs.Hazard.retiring_cycles + lost);
  Alcotest.(check int)
    (label ^ " retired = retiring + coincident")
    s.Obs.Hazard.retired
    (s.Obs.Hazard.retiring_cycles + s.Obs.Hazard.multi_retire_extra);
  let d = Obs.Hazard.decompose s in
  let total =
    List.fold_left
      (fun acc (_, v) -> acc +. v)
      d.Obs.Hazard.base d.Obs.Hazard.terms
  in
  Alcotest.(check (float 1e-9))
    (label ^ " decomposition sums to CPI")
    (Pipeline.Pipesem.cpi stats) total;
  Alcotest.(check (float 1e-9))
    (label ^ " cpi_total consistent")
    (Pipeline.Pipesem.cpi stats) d.Obs.Hazard.cpi_total

let test_accounting_forwarding () =
  let result, s = run_attribution (Dlx.Progs.fib 10) in
  check_exact_accounting "fwd" result s;
  (* Full forwarding absorbs fib's hazards: only pipeline fill remains,
     and the GPR operands are fed by the synthesized bypass paths. *)
  List.iter
    (fun (c : Obs.Hazard.component) ->
      Alcotest.(check bool) "only startup lost" true
        (c.Obs.Hazard.cause = Obs.Hazard.Startup))
    s.Obs.Hazard.lost;
  Alcotest.(check bool) "forwarding hits recorded" true
    (List.exists
       (fun ((rule, source), n) ->
         rule = "1_GPRa" && source <> "reg" && n > 0)
       s.Obs.Hazard.hits)

let test_accounting_interlock () =
  let options =
    {
      Pipeline.Fwd_spec.mode = Pipeline.Fwd_spec.Interlock_only;
      impl = Hw.Circuits.Chain;
    }
  in
  let result, s = run_attribution ~options (Dlx.Progs.fib 10) in
  check_exact_accounting "interlock" result s;
  (* Without forwarding the interlock must stall; the lost cycles name
     the stage and operand rule that raised each hazard. *)
  Alcotest.(check bool) "dhaz components present" true
    (List.exists
       (fun (c : Obs.Hazard.component) ->
         match c.Obs.Hazard.cause with
         | Obs.Hazard.Dhaz { stage = _; operand } -> operand <> ""
         | _ -> false)
       s.Obs.Hazard.lost)

let test_accounting_speculation () =
  let result, s =
    run_attribution ~variant:Dlx.Seq_dlx.Branch_predict
      (Dlx.Progs.branch_heavy 8)
  in
  check_exact_accounting "speculation" result s;
  Alcotest.(check bool) "squash cycles attributed" true
    (List.exists
       (fun (c : Obs.Hazard.component) ->
         c.Obs.Hazard.cause = Obs.Hazard.Rollback_squash
         && c.Obs.Hazard.cycles > 0)
       s.Obs.Hazard.lost)

let test_accounting_ext_stalls () =
  let p = Dlx.Progs.memcpy 8 in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  let ext = Workload.Sweep.memory_wait_states ~every:4 ~wait:2 in
  let t = Pipeline.Attribution.create tr in
  let result =
    Pipeline.Pipesem.run ~ext
      ~callbacks:(Pipeline.Attribution.callbacks t)
      ~stop_after:p.Dlx.Progs.dyn_instructions tr
  in
  let s = Pipeline.Attribution.finalize t in
  check_exact_accounting "ext" result s;
  Alcotest.(check bool) "ext stall cycles attributed" true
    (List.exists
       (fun (c : Obs.Hazard.component) ->
         c.Obs.Hazard.cause = Obs.Hazard.Ext_stall && c.Obs.Hazard.cycles > 0)
       s.Obs.Hazard.lost)

let test_summary_json () =
  let _, s = run_attribution (Dlx.Progs.fib 5) in
  let j = Obs.Hazard.summary_to_json s in
  (* The serialized summary is valid JSON and carries the accounting. *)
  let j' = Obs.Json.parse_exn (Obs.Json.to_string j) in
  Alcotest.check json "summary JSON round-trips" j j';
  match Obs.Json.member "cycles" j' with
  | Some v ->
    Alcotest.(check (option int))
      "total cycles" (Some s.Obs.Hazard.total_cycles) (Obs.Json.to_int_opt v)
  | None -> Alcotest.fail "cycles missing"

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parser" `Quick test_json_parse;
        ] );
      ("metrics", [ Alcotest.test_case "registry" `Quick test_metrics ]);
      ( "spans",
        [
          Alcotest.test_case "collection" `Quick test_spans;
          Alcotest.test_case "disabled" `Quick test_spans_disabled;
        ] );
      ("export", [ Alcotest.test_case "round-trip" `Quick test_export_roundtrip ]);
      ("counters", [ Alcotest.test_case "facility" `Quick test_counters_basic ]);
      ( "history",
        [
          Alcotest.test_case "JSONL round-trip" `Quick test_history_roundtrip;
          Alcotest.test_case "WORK rows gate exactly" `Quick
            test_trend_gate_work;
          Alcotest.test_case "disappeared WORK row" `Quick
            test_trend_gate_missing_work_row;
          Alcotest.test_case "timing tolerance band" `Quick
            test_trend_gate_timing_band;
          Alcotest.test_case "speedup gates downward" `Quick
            test_trend_gate_speedup_direction;
          Alcotest.test_case "window bounds the trend" `Quick
            test_trend_gate_window;
          Alcotest.test_case "select and diff" `Quick test_history_select_diff;
        ] );
      ( "hazard attribution",
        [
          Alcotest.test_case "forwarding" `Quick test_accounting_forwarding;
          Alcotest.test_case "interlock-only" `Quick test_accounting_interlock;
          Alcotest.test_case "speculation" `Quick test_accounting_speculation;
          Alcotest.test_case "external stalls" `Quick test_accounting_ext_stalls;
          Alcotest.test_case "summary JSON" `Quick test_summary_json;
        ] );
    ]
