(* The pipeline tracer: engine signals in the VCD, register/signal
   selection, and rejection of unknown names. *)

let has ~sub s =
  let n = String.length sub and h = String.length s in
  let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
  go 0

let fib = Dlx.Progs.fib 5

let dlx_transform () =
  Dlx.Seq_dlx.transform ~data:fib.Dlx.Progs.data Dlx.Seq_dlx.Base
    ~program:(Dlx.Progs.program fib)

let stop_after = fib.Dlx.Progs.dyn_instructions

let test_engine_signals () =
  let tr = dlx_transform () in
  let vcd, result = Pipeline.Tracer.trace ~stop_after tr in
  Alcotest.(check bool)
    "completed" true
    (result.Pipeline.Pipesem.outcome = Pipeline.Pipesem.Completed);
  let s = Hw.Vcd.to_string vcd in
  (* Every stall-engine bit of every stage is declared. *)
  for k = 0 to 4 do
    List.iter
      (fun base ->
        let name = Printf.sprintf "%s_%d" base k in
        Alcotest.(check bool) name true (has ~sub:(name ^ " $end") s))
      [ "full"; "stall"; "dhaz"; "ue"; "rollback" ]
  done;
  (* The default signal selection is each stage's dhaz (VCD declares
     the sanitized name: "$dhaz_stage_1" -> "_dhaz_stage_1"). *)
  Alcotest.(check bool) "default dhaz signal" true (has ~sub:"_dhaz_stage_1" s)

let test_register_selection () =
  let tr = dlx_transform () in
  let vcd, _ =
    Pipeline.Tracer.trace ~registers:[ "DPC" ] ~signals:[ "$g_1_GPRa" ]
      ~stop_after tr
  in
  let s = Hw.Vcd.to_string vcd in
  Alcotest.(check bool) "DPC declared" true (has ~sub:"DPC $end" s);
  Alcotest.(check bool) "g network declared" true (has ~sub:"_g_1_GPRa" s);
  (* Explicit signal selection replaces the default. *)
  Alcotest.(check bool)
    "no default dhaz" false
    (has ~sub:"_dhaz_stage_1" s)

let test_unknown_names () =
  let tr = dlx_transform () in
  Alcotest.check_raises "unknown register"
    (Invalid_argument "Tracer: unknown register NOPE") (fun () ->
      ignore (Pipeline.Tracer.trace ~registers:[ "NOPE" ] ~stop_after tr));
  Alcotest.check_raises "register file rejected"
    (Invalid_argument "Tracer: GPR is a register file") (fun () ->
      ignore (Pipeline.Tracer.trace ~registers:[ "GPR" ] ~stop_after tr));
  Alcotest.check_raises "unknown signal"
    (Invalid_argument "Tracer: unknown signal $nope") (fun () ->
      ignore (Pipeline.Tracer.trace ~signals:[ "$nope" ] ~stop_after tr))

let () =
  Alcotest.run "tracer"
    [
      ( "tracer",
        [
          Alcotest.test_case "engine signals" `Quick test_engine_signals;
          Alcotest.test_case "selection" `Quick test_register_selection;
          Alcotest.test_case "unknown names" `Quick test_unknown_names;
        ] );
    ]
