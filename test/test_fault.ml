(* The fault subsystem (lib/fault): mutant enumeration and sampling,
   detection-coverage classification, campaign determinism across pool
   sizes, checkpoint/resume, the wedged-engine timeout path — and the
   headline property: a single-bit flip in an architecturally visible
   pipeline register of the DLX is always detected or proved masked,
   never silently missed. *)

module Mutate = Fault.Mutate
module Campaign = Fault.Campaign

let qcheck_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some n -> n
  | None -> 421_337

let to_alcotest test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| qcheck_seed |]) test

let toy_tr () = Core.Toy.transform ~program:Core.Toy.default_program ()
let toy_instructions = List.length Core.Toy.default_program

let toy_target () = Campaign.make_target ~instructions:toy_instructions (toy_tr ())

(* ------------------------------------------------------------------ *)
(* Property: visible-register bit flips are never missed               *)
(* ------------------------------------------------------------------ *)

(* The DLX example under a small kernel.  PC and DPC are the base
   machine's architecturally visible scalar registers; a transient
   flip in either must be flagged by some checker (detected) or leave
   the visible final state bit-identical to the golden run (masked).
   A green verdict with diverging state would be a proof-engine false
   negative — the class the campaign exists to rule out. *)
let dlx_flip_property =
  let p = Dlx.Progs.fib 5 in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  let target =
    Campaign.make_target ~instructions:p.Dlx.Progs.dyn_instructions tr
  in
  QCheck.Test.make ~name:"DLX visible-register flip: detected or masked"
    ~count:10
    (QCheck.make
       ~print:(fun (reg, bit, cycle) ->
         Printf.sprintf "QCHECK_SEED=%d flip:%s[%d]@c%d" qcheck_seed reg bit
           cycle)
       QCheck.Gen.(
         triple (oneofl [ "PC"; "DPC" ]) (int_bound 31) (int_range 1 40)))
    (fun (register, bit, at_cycle) ->
      let m =
        Mutate.apply (Mutate.Transient_flip { register; bit; at_cycle }) tr
      in
      let outcomes, summary = Campaign.run target [ m ] in
      match outcomes with
      | [ o ] ->
        (match o.Campaign.out_class with
        | Campaign.Detected | Campaign.Masked -> true
        | Campaign.Missed | Campaign.Timed_out | Campaign.Aborted -> false)
        && Campaign.ok summary
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Enumeration and sampling                                            *)
(* ------------------------------------------------------------------ *)

let test_enumerate_deterministic () =
  let ms () = Mutate.enumerate ~transients:4 ~seed:7 ~hang:true (toy_tr ()) in
  let ids l = List.map (fun m -> m.Mutate.mut_id) l in
  Alcotest.(check (list string))
    "same seed, same mutant space" (ids (ms ())) (ids (ms ()));
  let m = ms () in
  Alcotest.(check bool) "ids unique" true
    (List.sort_uniq compare (ids m) = List.sort compare (ids m));
  Alcotest.(check bool) "has a hang mutant" true
    (List.exists (fun m -> m.Mutate.mut_fault = Mutate.Hang { at_cycle = 5 }) m)

let test_sample_prefix () =
  let xs = List.init 20 Fun.id in
  let s = Mutate.sample ~seed:3 ~count:8 xs in
  Alcotest.(check int) "prefix length" 8 (List.length s);
  Alcotest.(check (list int)) "deterministic in the seed" s
    (Mutate.sample ~seed:3 ~count:8 xs);
  Alcotest.(check bool) "members come from the input" true
    (List.for_all (fun x -> List.mem x xs) s);
  Alcotest.(check int) "count past the end = whole list" 20
    (List.length (Mutate.sample ~seed:3 ~count:99 xs))

(* ------------------------------------------------------------------ *)
(* Campaign classification on the toy machine                          *)
(* ------------------------------------------------------------------ *)

let test_toy_campaign_no_misses () =
  (* The full structural + stall-engine + transient space: every mutant
     lands in detected or masked — the engine has no false negatives on
     the toy machine — and structural stuck-hit mutants specifically
     are caught. *)
  let mutants = Mutate.enumerate ~transients:4 ~seed:0 (toy_tr ()) in
  let outcomes, summary = Campaign.run (toy_target ()) mutants in
  Alcotest.(check int) "one outcome per mutant" (List.length mutants)
    (List.length outcomes);
  Alcotest.(check int) "no misses" 0 summary.Campaign.missed;
  Alcotest.(check int) "no aborts" 0 summary.Campaign.aborted;
  Alcotest.(check bool) "campaign ok" true (Campaign.ok summary);
  Alcotest.(check bool) "something was detected" true
    (summary.Campaign.detected > 0);
  List.iter
    (fun o ->
      let is_stuck_hit =
        String.length o.Campaign.out_id >= 4
        && String.sub o.Campaign.out_id 0 4 = "hit:"
      in
      if is_stuck_hit then
        Alcotest.(check bool)
          (o.Campaign.out_id ^ " detected")
          true
          (o.Campaign.out_class = Campaign.Detected))
    outcomes

let test_campaign_deterministic_across_pools () =
  let mutants =
    Mutate.sample ~seed:5 ~count:8
      (Mutate.enumerate ~transients:4 ~seed:5 (toy_tr ()))
  in
  let serial = Campaign.run (toy_target ()) mutants in
  let parallel =
    Exec.Pool.with_pool ~size:4 @@ fun pool ->
    Campaign.run ~pool (toy_target ()) mutants
  in
  Alcotest.(check bool) "outcomes bit-identical at -j 4" true
    (serial = parallel)

let test_hang_times_out_without_aborting () =
  (* The deliberately wedged engine: cancelled by the per-mutant
     deadline, classified, and the rest of the batch is unharmed. *)
  let tr = toy_tr () in
  let mutants =
    [
      Mutate.apply (Mutate.Hang { at_cycle = 5 }) tr;
      Mutate.apply
        (Mutate.Stuck_wire { wire = Mutate.Stall; stage = 1; value = true })
        tr;
    ]
  in
  (* The budget must dwarf the sibling's honest runtime (milliseconds)
     or a loaded machine times the sibling out too and the count
     flakes; the wedged mutant burns the full budget either way. *)
  let outcomes, summary =
    Exec.Pool.with_pool ~size:2 @@ fun pool ->
    Campaign.run ~pool ~timeout_s:5.0
      (Campaign.make_target ~instructions:toy_instructions tr)
      mutants
  in
  Alcotest.(check int) "one timeout" 1 summary.Campaign.timed_out;
  Alcotest.(check int) "no aborts" 0 summary.Campaign.aborted;
  Alcotest.(check bool) "campaign still ok" true (Campaign.ok summary);
  match outcomes with
  | [ hang; sibling ] ->
    Alcotest.(check bool) "hang slot timed out" true
      (hang.Campaign.out_class = Campaign.Timed_out);
    Alcotest.(check bool) "sibling classified normally" true
      (sibling.Campaign.out_class = Campaign.Detected)
  | _ -> Alcotest.fail "expected two outcomes in mutant order"

let test_lane_campaign_determinism () =
  (* Per-mutant BMC sweeps through the bit-parallel lane engine: same
     mutants, same classification breakdown, same evidence strings and
     same WORK counters with [~lanes] on or off — structural mutants
     go bit-parallel, behavioural ones (injection hooks) stay scalar,
     neither may change a verdict. *)
  let alphabet =
    [
      Core.Toy.encode ~dst:1 ~src1:1 ~src2:1;
      Core.Toy.encode ~dst:2 ~src1:1 ~src2:2;
    ]
  in
  let target () =
    Campaign.make_target ~instructions:toy_instructions
      ~bmc:((fun program -> Core.Toy.transform ~program ()), alphabet, 3)
      ~bmc_load:(fun program -> Core.Toy.image ~program)
      (toy_tr ())
  in
  let mutants =
    Mutate.sample ~seed:9 ~count:6
      (Mutate.enumerate ~transients:2 ~seed:9 (toy_tr ()))
  in
  let counted f =
    Obs.Counters.reset ();
    let r = f () in
    (r, Obs.Counters.work_snapshot ())
  in
  let scalar, w_scalar = counted (fun () -> Campaign.run (target ()) mutants) in
  let lanes, w_lanes =
    counted (fun () -> Campaign.run ~lanes:true (target ()) mutants)
  in
  let pooled, w_pooled =
    counted (fun () ->
        Exec.Pool.with_pool ~size:4 @@ fun pool ->
        Campaign.run ~pool ~lanes:true (target ()) mutants)
  in
  let _, summary = scalar in
  Alcotest.(check bool) "some mutants structural" true
    (List.exists (fun m -> m.Mutate.mut_structural) mutants);
  Alcotest.(check bool) "campaign detected something" true
    (summary.Campaign.detected > 0);
  Alcotest.(check bool) "lanes = scalar outcomes + summary" true
    (lanes = scalar);
  Alcotest.(check bool) "pooled lanes = scalar outcomes + summary" true
    (pooled = scalar);
  Alcotest.(check (list (pair string int))) "WORK lanes = scalar" w_scalar
    w_lanes;
  Alcotest.(check (list (pair string int))) "WORK pooled lanes = scalar"
    w_scalar w_pooled

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume                                                 *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  let mutants =
    Mutate.sample ~seed:1 ~count:4
      (Mutate.enumerate ~transients:2 ~seed:1 (toy_tr ()))
  in
  let path = Filename.temp_file "fault_ckpt" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let outcomes, _ = Campaign.run ~checkpoint:path (toy_target ()) mutants in
  (* The file written after the last batch parses back to the same
     outcomes, in campaign order. *)
  match Result.bind (Obs.Json.read_file ~path) Campaign.of_json with
  | Error msg -> Alcotest.fail ("checkpoint unreadable: " ^ msg)
  | Ok back ->
    Alcotest.(check bool) "checkpoint round-trips" true (back = outcomes)

let test_resume_skips_finished_mutants () =
  (* Seed the checkpoint with a fabricated outcome for one mutant: a
     resumed campaign must keep it verbatim (the mutant was not
     re-run) and classify only the remaining ones. *)
  let mutants =
    Mutate.sample ~seed:2 ~count:3
      (Mutate.enumerate ~transients:2 ~seed:2 (toy_tr ()))
  in
  let first = List.hd mutants in
  let canned =
    {
      Campaign.out_id = first.Mutate.mut_id;
      out_fault = "canned";
      out_class = Campaign.Masked;
      out_evidence = "from-checkpoint";
    }
  in
  let path = Filename.temp_file "fault_resume" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Json.write_file ~path (Campaign.to_json [ canned ]);
  let outcomes, summary =
    Campaign.run ~checkpoint:path ~resume:true (toy_target ()) mutants
  in
  Alcotest.(check int) "every mutant has an outcome" (List.length mutants)
    (List.length outcomes);
  Alcotest.(check int) "summary covers all" (List.length mutants)
    summary.Campaign.mutants;
  (match outcomes with
  | o :: _ ->
    Alcotest.(check string) "prior outcome kept verbatim" "from-checkpoint"
      o.Campaign.out_evidence
  | [] -> Alcotest.fail "no outcomes");
  (* Without resume, the checkpoint is ignored and the mutant re-runs. *)
  let fresh, _ = Campaign.run ~checkpoint:path (toy_target ()) mutants in
  match fresh with
  | o :: _ ->
    Alcotest.(check bool) "no-resume re-classifies" true
      (o.Campaign.out_evidence <> "from-checkpoint")
  | [] -> Alcotest.fail "no outcomes"

let () =
  Alcotest.run "fault"
    [
      ( "mutate",
        [
          Alcotest.test_case "enumerate deterministic" `Quick
            test_enumerate_deterministic;
          Alcotest.test_case "sample prefix" `Quick test_sample_prefix;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "toy campaign: no misses" `Quick
            test_toy_campaign_no_misses;
          Alcotest.test_case "deterministic across pool sizes" `Quick
            test_campaign_deterministic_across_pools;
          Alcotest.test_case "hang times out without aborting" `Quick
            test_hang_times_out_without_aborting;
          Alcotest.test_case "lane-mode BMC sweeps deterministic" `Quick
            test_lane_campaign_determinism;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "resume skips finished mutants" `Quick
            test_resume_skips_finished_mutants;
        ] );
      ("properties", List.map to_alcotest [ dlx_flip_property ]);
    ]
