(* Differential fuzzing: random DLX programs (Workload.Gen) and random
   generated machines (Proof_engine.Machine_gen) run through the
   sequential reference and the pipelined machine, asserting
   committed-state equality — serially and fanned out over the domain
   pool.  Failures print the qcheck seed and the offending program's
   disassembly so they replay with `QCHECK_SEED=<n> dune runtest`. *)

module Pool = Exec.Pool
module C = Proof_engine.Consistency

(* Explicit qcheck seeding (see test_parallel.ml). *)
let qcheck_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some n -> n
  | None -> 421_337

let to_alcotest test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| qcheck_seed |]) test

(* ------------------------------------------------------------------ *)
(* Random DLX programs: one case = (generator seed, profile, length)   *)
(* ------------------------------------------------------------------ *)

let profiles =
  [
    ("typical", Workload.Gen.typical);
    ("alu_dep", Workload.Gen.alu_only ~dependency_bias:0.9);
    ("alu_indep", Workload.Gen.alu_only ~dependency_bias:0.0);
    ("memory", Workload.Gen.memory_heavy);
    ("branchy", Workload.Gen.branch_heavy ~taken_frac:0.6);
  ]

type case = { seed : int; profile : string; length : int }

let program_of { seed; profile; length } =
  Workload.Gen.generate ~seed ~length (List.assoc profile profiles)

let disasm (p : Dlx.Progs.t) =
  String.concat "\n"
    (List.mapi
       (fun i w ->
         Printf.sprintf "  %3d: %08x  %s" i w
           (match Dlx.Isa.decode w with
           | Some insn -> Format.asprintf "%a" Dlx.Isa.pp insn
           | None -> ".word"))
       (Dlx.Progs.program p))

let pp_case case =
  Printf.sprintf "QCHECK_SEED=%d seed=%d profile=%s length=%d\n%s" qcheck_seed
    case.seed case.profile case.length
    (disasm (program_of case))

(* Run one case differentially: the golden sequential trace is the
   reference (config.verify), the pipelined machine the implementation;
   the consistency checker compares every committed register write and
   the final architectural state. *)
let differential ?(config = Workload.Sweep.default) case =
  let p = program_of case in
  let sim = Workload.Sweep.sim_of_program ~config p in
  Workload.Sim.verify sim

let check_case ?config case =
  let report = differential ?config case in
  if C.ok report then true
  else
    QCheck.Test.fail_reportf "inconsistent:@.%a@.%s" C.pp_report report
      (pp_case case)

let arb_case =
  QCheck.make ~print:pp_case
    QCheck.Gen.(
      let* seed = int_bound 100_000 in
      let* profile = oneofl (List.map fst profiles) in
      let+ length = int_range 20 60 in
      { seed; profile; length })

let prop_random_programs_consistent =
  QCheck.Test.make ~name:"random DLX programs: pipelined = sequential"
    ~count:25 arb_case check_case

let prop_random_programs_consistent_bp =
  (* The speculating variant: squashes and rollbacks must never leak
     into the committed state. *)
  QCheck.Test.make
    ~name:"random DLX programs: branch-predict pipeline = sequential"
    ~count:15 arb_case
    (check_case
       ~config:
         {
           Workload.Sweep.default with
           Workload.Sweep.variant = Dlx.Seq_dlx.Branch_predict;
         })

(* ------------------------------------------------------------------ *)
(* Pool-driven fuzz sweeps                                             *)
(* ------------------------------------------------------------------ *)

let test_fuzz_sweep_through_pool () =
  (* 16 cases fanned out over 4 domains; the reports must be identical
     to the serial sweep, and all consistent. *)
  let cases =
    List.init 16 (fun i ->
        {
          seed = (i * 37) + 5;
          profile = fst (List.nth profiles (i mod List.length profiles));
          length = 20 + (i * 2);
        })
  in
  let serial = List.map differential cases in
  let parallel =
    Pool.with_pool ~size:4 (fun pool -> Pool.map pool differential cases)
  in
  List.iteri
    (fun i (s, p) ->
      let case = List.nth cases i in
      if not (C.ok s) then
        Alcotest.failf "case %d inconsistent:\n%s" i (pp_case case);
      Alcotest.(check bool)
        (Printf.sprintf "case %d: parallel report = serial" i)
        true (s = p))
    (List.combine serial parallel)

let test_machine_space_through_pool () =
  (* Machine_gen.check_many: the machine-space BMC sweep over the
     pool, bit-identical to the serial sweep and all Ok. *)
  let seeds = List.init 12 (fun i -> i + 1) in
  let serial = Proof_engine.Machine_gen.check_many ~program_length:20 seeds in
  let parallel =
    Pool.with_pool ~size:4 (fun pool ->
        Proof_engine.Machine_gen.check_many ~pool ~program_length:20 seeds)
  in
  Alcotest.(check bool) "parallel = serial" true (serial = parallel);
  List.iter
    (fun (seed, result) ->
      match result with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "machine seed %d: %s" seed msg)
    parallel

let test_bmc_through_pool () =
  (* The exhaustive program sweep: failures must come back in
     enumeration order at any pool size.  The sabotaged build raises on
     a deterministic subset of programs, so both runs must report the
     same programs in the same order. *)
  let alphabet =
    [
      Core.Toy.encode ~dst:1 ~src1:1 ~src2:2;
      Core.Toy.encode ~dst:2 ~src1:1 ~src2:1;
      Core.Toy.encode ~dst:1 ~src1:2 ~src2:2;
    ]
  in
  let build program =
    if List.fold_left ( + ) 0 program mod 3 = 0 then failwith "injected";
    Core.Toy.transform ~program ()
  in
  let run ?pool () =
    Proof_engine.Bmc.exhaustive ?pool ~max_failures:5 ~build ~alphabet
      ~length:3 ()
  in
  let serial = run () in
  let parallel = Pool.with_pool ~size:4 (fun pool -> run ~pool ()) in
  Alcotest.(check int) "27 programs" 27 serial.Proof_engine.Bmc.programs;
  Alcotest.(check bool) "failures found" true
    (List.length serial.Proof_engine.Bmc.failures > 0);
  Alcotest.(check bool) "parallel outcome = serial" true (serial = parallel)

let test_bmc_batched_equals_rebuild () =
  (* The compile-once BMC path ([exhaustive ~load]) must be
     observationally identical to the rebuild-per-program path — same
     outcome record, same failure enumeration order — on machines it
     was not written against, serial and through a pool.  The
     deterministic work counters (the WORK class) must also agree: the batched
     path changes how plans are bound and sessions cached, never how
     much semantic work each program costs. *)
  let module G = Proof_engine.Machine_gen in
  let counted f =
    Obs.Counters.reset ();
    let r = f () in
    (r, Obs.Counters.work_snapshot ())
  in
  let work = Alcotest.(list (pair string int)) in
  List.iter
    (fun seed ->
      let p = G.sample_params ~seed in
      let build program =
        Pipeline.Transform.run ~hints:(G.hints p) (G.machine p ~program)
      in
      let load program = G.image p ~program in
      let alphabet =
        [
          G.encode p ~late:false ~dst:1 ~src1:1 ~src2:2;
          G.encode p ~late:true ~dst:2 ~src1:1 ~src2:1;
          G.encode p ~late:false ~dst:1 ~src1:2 ~src2:1;
        ]
      in
      let run ?pool ?load () =
        Proof_engine.Bmc.exhaustive ?pool ?load ~build ~alphabet ~length:2 ()
      in
      let rebuild, w_rebuild = counted (fun () -> run ()) in
      let batched, w_batched = counted (fun () -> run ~load ()) in
      let pooled, w_pooled =
        counted (fun () ->
            Pool.with_pool ~size:4 (fun pool -> run ~pool ~load ()))
      in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: programs" seed)
        9 rebuild.Proof_engine.Bmc.programs;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: batched = rebuild" seed)
        true (batched = rebuild);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: pooled batched = rebuild" seed)
        true (pooled = rebuild);
      Alcotest.check work
        (Printf.sprintf "seed %d: WORK batched = rebuild" seed)
        w_rebuild w_batched;
      Alcotest.check work
        (Printf.sprintf "seed %d: WORK pooled batched = rebuild" seed)
        w_rebuild w_pooled)
    [ 11; 222; 3333 ]

let test_bmc_opt_equals_noopt () =
  (* The plan optimizer is a pure compile-time transformation: BMC
     outcomes (verdicts, failure enumeration order) and the semantic
     WORK counters must be bit-identical with it on or off, on the
     scalar batched path and the lane path, serial and pooled.  Only
     [plan_ops] may differ — shrinking it is the optimizer's entire
     point — so it is excluded from the comparison. *)
  let module G = Proof_engine.Machine_gen in
  let work_sans_plan_ops () =
    List.filter (fun (n, _) -> n <> "plan_ops") (Obs.Counters.work_snapshot ())
  in
  let work = Alcotest.(list (pair string int)) in
  List.iter
    (fun seed ->
      let p = G.sample_params ~seed in
      let build program =
        Pipeline.Transform.run ~hints:(G.hints p) (G.machine p ~program)
      in
      let load program = G.image p ~program in
      let alphabet =
        [
          G.encode p ~late:false ~dst:1 ~src1:1 ~src2:2;
          G.encode p ~late:true ~dst:2 ~src1:1 ~src2:1;
          G.encode p ~late:false ~dst:1 ~src1:2 ~src2:1;
        ]
      in
      let run ?pool ~lanes ~optimize () =
        Obs.Counters.reset ();
        let r =
          Proof_engine.Bmc.exhaustive ?pool ~lanes ~optimize ~load ~build
            ~alphabet ~length:2 ()
        in
        (r, work_sans_plan_ops ())
      in
      List.iter
        (fun lanes ->
          let tag msg =
            Printf.sprintf "seed %d lanes=%b: %s" seed lanes msg
          in
          let o, w = run ~lanes ~optimize:true () in
          let o', w' = run ~lanes ~optimize:false () in
          let op, wp =
            Pool.with_pool ~size:4 (fun pool ->
                run ~pool ~lanes ~optimize:true ())
          in
          let op', wp' =
            Pool.with_pool ~size:4 (fun pool ->
                run ~pool ~lanes ~optimize:false ())
          in
          Alcotest.(check bool) (tag "outcome opt = no-opt") true (o = o');
          Alcotest.check work (tag "WORK opt = no-opt") w' w;
          Alcotest.(check bool)
            (tag "pooled outcome opt = no-opt")
            true
            (op = op' && op = o);
          Alcotest.check work (tag "pooled WORK opt = no-opt") w' wp;
          Alcotest.check work (tag "pooled WORK no-opt = serial") w' wp')
        [ false; true ])
    [ 11; 222; 3333 ]

(* ------------------------------------------------------------------ *)
(* The machine space itself, seeded                                    *)
(* ------------------------------------------------------------------ *)

let prop_random_machines_consistent =
  QCheck.Test.make ~name:"random machines: pipelined = sequential" ~count:12
    (QCheck.make
       ~print:(fun seed ->
         Printf.sprintf
           "QCHECK_SEED=%d machine seed=%d (replay: Machine_gen.check_one \
            ~seed:%d ~program_length:25)"
           qcheck_seed seed seed)
       QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      match Proof_engine.Machine_gen.check_one ~seed ~program_length:25 with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let () =
  Alcotest.run "fuzz"
    [
      ( "pool sweeps",
        [
          Alcotest.test_case "program fuzz through pool" `Quick
            test_fuzz_sweep_through_pool;
          Alcotest.test_case "machine space through pool" `Quick
            test_machine_space_through_pool;
          Alcotest.test_case "bmc failure order through pool" `Quick
            test_bmc_through_pool;
          Alcotest.test_case "bmc batched = rebuild" `Quick
            test_bmc_batched_equals_rebuild;
          Alcotest.test_case "bmc optimized = unoptimized" `Quick
            test_bmc_opt_equals_noopt;
        ] );
      ( "properties",
        List.map to_alcotest
          [
            prop_random_programs_consistent;
            prop_random_programs_consistent_bp;
            prop_random_machines_consistent;
          ] );
    ]
