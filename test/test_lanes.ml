(* The lane-aware differential battery: the bit-parallel 62-lane BMC
   path (Bmc.exhaustive ~lanes / Consistency.check_lanes) must be
   observationally identical to the scalar batched path — verdicts,
   failure enumeration order, evidence strings, per-program statistics
   and the deterministic WORK counters — on random machines and random
   packings, serially and through the domain pool.  Failures print the
   qcheck seed so they replay with `QCHECK_SEED=<n> dune runtest`. *)

module Pool = Exec.Pool
module C = Proof_engine.Consistency
module G = Proof_engine.Machine_gen
module Bmc = Proof_engine.Bmc
module Mutate = Fault.Mutate

let qcheck_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some n -> n
  | None -> 421_337

let to_alcotest test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| qcheck_seed |]) test

let counted f =
  Obs.Counters.reset ();
  let r = f () in
  (r, Obs.Counters.work_snapshot ())

let work = Alcotest.(list (pair string int))

(* ------------------------------------------------------------------ *)
(* Property: lanes = scalar on random machines and random packings     *)
(* ------------------------------------------------------------------ *)

(* One case: a sampled machine, an alphabet of [width] distinct
   encodings and a program length — so the pack holds width^length
   programs (1..64, crossing the 62-lane chunk boundary at 64). *)
type case = { mseed : int; width : int; length : int }

let pp_lane_case { mseed; width; length } =
  Printf.sprintf
    "QCHECK_SEED=%d machine seed=%d alphabet=%d length=%d (%d programs)"
    qcheck_seed mseed width length
    (int_of_float (float_of_int width ** float_of_int length))

let arb_lane_case =
  QCheck.make ~print:pp_lane_case
    QCheck.Gen.(
      let* mseed = int_bound 10_000 in
      let* width = int_range 1 4 in
      let+ length = int_range 1 3 in
      { mseed; width; length })

let bmc_setup { mseed; width; _ } =
  let p = G.sample_params ~seed:mseed in
  let build program =
    Pipeline.Transform.run ~hints:(G.hints p) (G.machine p ~program)
  in
  let load program = G.image p ~program in
  let alphabet =
    List.init width (fun i ->
        G.encode p ~late:(i land 1 = 1)
          ~dst:((i mod 3) + 1)
          ~src1:1 ~src2:((i mod 2) + 1))
  in
  (build, load, alphabet)

let check_lane_case case =
  let build, load, alphabet = bmc_setup case in
  let run ?pool ?lanes () =
    Bmc.exhaustive ?pool ?lanes ~load ~build ~alphabet ~length:case.length ()
  in
  let scalar, w_scalar = counted (fun () -> run ()) in
  let lanes, w_lanes = counted (fun () -> run ~lanes:true ()) in
  let pooled, w_pooled =
    counted (fun () ->
        Pool.with_pool ~size:4 (fun pool -> run ~pool ~lanes:true ()))
  in
  if lanes <> scalar then
    QCheck.Test.fail_reportf "lane outcome <> scalar:@.%s" (pp_lane_case case);
  if pooled <> scalar then
    QCheck.Test.fail_reportf "pooled lane outcome <> scalar:@.%s"
      (pp_lane_case case);
  if w_lanes <> w_scalar then
    QCheck.Test.fail_reportf "lane WORK <> scalar:@.%s" (pp_lane_case case);
  if w_pooled <> w_scalar then
    QCheck.Test.fail_reportf "pooled lane WORK <> scalar:@.%s"
      (pp_lane_case case);
  true

let prop_lanes_equal_scalar =
  QCheck.Test.make
    ~name:"lane BMC = scalar BMC (outcome + WORK), serial and -j 4" ~count:12
    arb_lane_case check_lane_case

(* ------------------------------------------------------------------ *)
(* Partial packs: lane counts 1, 2, 62 must not read garbage           *)
(* ------------------------------------------------------------------ *)

(* check_lanes verdicts against per-program scalar reports: outcome,
   ok and the full per-run statistics must agree lane by lane.  Any
   garbage bit leaking from an unused lane shows up as a stats or
   verdict difference. *)
let test_partial_packs () =
  let p = G.sample_params ~seed:42 in
  let t = Pipeline.Transform.run ~hints:(G.hints p) (G.machine p ~program:[]) in
  let shape = C.shape t in
  let max_instructions = 8 in
  List.iter
    (fun count ->
      (* distinct programs, deterministic in the lane index *)
      let programs =
        List.init count (fun i ->
            List.init 4 (fun j ->
                G.encode p ~late:((i + j) land 1 = 1)
                  ~dst:(((i * 7) + j) mod 3 + 1)
                  ~src1:((i + j) mod 2 + 1)
                  ~src2:((i mod 2) + 1)))
      in
      let inits = Array.of_list (List.map (fun pr -> G.image p ~program:pr) programs) in
      let verdicts = C.check_lanes ~max_instructions ~inits shape in
      List.iteri
        (fun l pr ->
          match
            C.check_batched_result ~max_instructions
              ~init:(G.image p ~program:pr) shape
          with
          | Error _ -> Alcotest.failf "count %d lane %d: scalar check errored" count l
          | Ok report ->
            let v = verdicts.(l) in
            Alcotest.(check bool)
              (Printf.sprintf "count %d lane %d: ok" count l)
              (C.ok report) v.C.lv_ok;
            Alcotest.(check bool)
              (Printf.sprintf "count %d lane %d: outcome" count l)
              true
              (v.C.lv_outcome = report.C.outcome);
            Alcotest.(check bool)
              (Printf.sprintf "count %d lane %d: stats" count l)
              true
              (v.C.lv_stats = report.C.stats))
        programs)
    [ 1; 2; 61; 62 ]

(* 63 and 64 programs cross the 62-lane chunk boundary inside the BMC
   driver: a full pack plus a 1- or 2-lane remainder pack. *)
let test_chunk_boundaries () =
  let p = G.sample_params ~seed:7 in
  let build program =
    Pipeline.Transform.run ~hints:(G.hints p) (G.machine p ~program)
  in
  let load program = G.image p ~program in
  List.iter
    (fun n_programs ->
      let alphabet, length =
        if n_programs = 64 then
          ( List.init 4 (fun i ->
                G.encode p ~late:(i land 1 = 1) ~dst:((i mod 3) + 1) ~src1:1
                  ~src2:2),
            3 )
        else
          ( List.init n_programs (fun i ->
                G.encode p
                  ~late:(i land 1 = 1)
                  ~dst:((i mod 3) + 1)
                  ~src1:((i / 3) mod 3 + 1)
                  ~src2:((i / 9) mod 3 + 1)),
            1 )
      in
      let run ?lanes () = Bmc.exhaustive ?lanes ~load ~build ~alphabet ~length () in
      let scalar, w_scalar = counted (fun () -> run ()) in
      let lanes, w_lanes = counted (fun () -> run ~lanes:true ()) in
      Alcotest.(check int)
        (Printf.sprintf "%d programs enumerated" n_programs)
        n_programs scalar.Bmc.programs;
      Alcotest.(check bool)
        (Printf.sprintf "%d programs: lanes = scalar" n_programs)
        true (lanes = scalar);
      Alcotest.check work
        (Printf.sprintf "%d programs: WORK lanes = scalar" n_programs)
        w_scalar w_lanes)
    [ 63; 64 ]

(* ------------------------------------------------------------------ *)
(* Directed divergence: one lane stalls differently                    *)
(* ------------------------------------------------------------------ *)

(* Pack three copies of a hazard-free program with one program whose
   late-unit dependency forces an interlock stall.  The divergence
   mask must flag exactly the odd lane, at the first cycle its scalar
   stall/rollback vectors leave the pack's majority — computed here
   from the scalar per-cycle traces, independently of the lane
   engine. *)
let test_directed_divergence () =
  let p =
    {
      G.n_stages = 6;
      data_width = 16;
      addr_bits = 3;
      late_stage = Some 3;
      has_accumulator = true;
      seed = 5;
    }
  in
  let t = Pipeline.Transform.run ~hints:(G.hints p) (G.machine p ~program:[]) in
  let shape = C.shape t in
  (* A: independent non-late ops; B: a late op immediately consumed. *)
  let prog_a =
    [
      G.encode p ~late:false ~dst:1 ~src1:2 ~src2:3;
      G.encode p ~late:false ~dst:4 ~src1:5 ~src2:6;
      G.encode p ~late:false ~dst:2 ~src1:5 ~src2:3;
    ]
  in
  let prog_b =
    [
      G.encode p ~late:true ~dst:1 ~src1:2 ~src2:3;
      G.encode p ~late:false ~dst:4 ~src1:1 ~src2:1;
      G.encode p ~late:false ~dst:2 ~src1:5 ~src2:3;
    ]
  in
  let max_instructions = List.length prog_a + 4 in
  let trace_of pr =
    match
      C.check_batched_result ~max_instructions ~init:(G.image p ~program:pr)
        shape
    with
    | Ok report ->
      Alcotest.(check bool) "scalar run consistent" true (C.ok report);
      List.map
        (fun (r : Pipeline.Pipesem.cycle_record) ->
          (Array.to_list r.Pipeline.Pipesem.stall,
           Array.to_list r.Pipeline.Pipesem.rollback))
        report.C.trace
    | Error _ -> Alcotest.fail "scalar trace failed"
  in
  let ta = trace_of prog_a and tb = trace_of prog_b in
  let rec first_diff i = function
    | a :: ar, b :: br -> if a <> b then i else first_diff (i + 1) (ar, br)
    | _ -> Alcotest.fail "programs never diverge; pick different programs"
  in
  let expected = first_diff 0 (ta, tb) in
  let inits =
    Array.of_list
      (List.map
         (fun pr -> G.image p ~program:pr)
         [ prog_a; prog_a; prog_a; prog_b ])
  in
  let verdicts = C.check_lanes ~max_instructions ~inits shape in
  Array.iteri
    (fun l (v : C.lane_verdict) ->
      Alcotest.(check bool) (Printf.sprintf "lane %d ok" l) true v.C.lv_ok;
      if l < 3 then
        Alcotest.(check int)
          (Printf.sprintf "majority lane %d never flagged" l)
          (-1) v.C.lv_divergence
      else
        Alcotest.(check int) "odd lane flagged at the scalar divergence cycle"
          expected v.C.lv_divergence)
    verdicts

(* ------------------------------------------------------------------ *)
(* Evidence: a faulty machine's lane sweep = scalar sweep              *)
(* ------------------------------------------------------------------ *)

(* Structural mutants of the toy machine, swept exhaustively with and
   without lanes: the outcome records — including the enumeration
   order and evidence strings extracted by the peeled lanes' scalar
   replays — must be identical.  This is the lane path's
   counterexample-extraction contract. *)
let test_faulty_evidence_equality () =
  let alphabet =
    [
      Core.Toy.encode ~dst:1 ~src1:1 ~src2:2;
      Core.Toy.encode ~dst:2 ~src1:1 ~src2:1;
      Core.Toy.encode ~dst:1 ~src1:2 ~src2:2;
    ]
  in
  let structurals =
    List.filter
      (fun (m : Mutate.mutant) -> m.Mutate.mut_structural)
      (Mutate.enumerate ~transients:0
         (Core.Toy.transform ~program:Core.Toy.default_program ()))
  in
  Alcotest.(check bool) "structural mutants found" true (structurals <> []);
  let detected = ref 0 in
  List.iteri
    (fun i (m : Mutate.mutant) ->
      if i < 6 then begin
        let build program =
          Mutate.rewrite m.Mutate.mut_fault (Core.Toy.transform ~program ())
        in
        let run ?lanes () =
          Bmc.exhaustive ?lanes ~inject:Pipeline.Pipesem.no_injection
            ~load:(fun program -> Core.Toy.image ~program)
            ~build ~alphabet ~length:3 ()
        in
        let scalar = run () in
        let lanes = run ~lanes:true () in
        if scalar.Bmc.failures <> [] then incr detected;
        Alcotest.(check bool)
          (Printf.sprintf "mutant %s: lanes = scalar" m.Mutate.mut_id)
          true (lanes = scalar)
      end)
    structurals;
  Alcotest.(check bool) "some mutants produced counterexamples" true
    (!detected > 0)

(* ------------------------------------------------------------------ *)
(* DLX: register files, hazards and speculation through the lanes      *)
(* ------------------------------------------------------------------ *)

let test_dlx_bmc_lanes () =
  (* The benchmark's DLX BMC row: 64 programs over the ALU alphabet,
     through both paths, serial and pooled. *)
  let alphabet =
    Dlx.Isa.
      [
        encode (Add (1, 1, 2));
        encode (Addi (2, 1, 1));
        encode (Sub (1, 2, 1));
        encode (Xor (3, 1, 2));
      ]
  in
  let build program = Dlx.Seq_dlx.transform Dlx.Seq_dlx.Base ~program in
  let load program = Dlx.Seq_dlx.image ~program () in
  let run ?pool ?lanes () =
    Bmc.exhaustive ?pool ?lanes ~load ~build ~alphabet ~length:3 ()
  in
  let scalar, w_scalar = counted (fun () -> run ()) in
  let lanes, w_lanes = counted (fun () -> run ~lanes:true ()) in
  let pooled, w_pooled =
    counted (fun () ->
        Pool.with_pool ~size:4 (fun pool -> run ~pool ~lanes:true ()))
  in
  Alcotest.(check int) "64 programs" 64 scalar.Bmc.programs;
  Alcotest.(check bool) "no counterexamples" true (Bmc.ok scalar);
  Alcotest.(check bool) "lanes = scalar" true (lanes = scalar);
  Alcotest.(check bool) "pooled lanes = scalar" true (pooled = scalar);
  Alcotest.check work "WORK lanes = scalar" w_scalar w_lanes;
  Alcotest.check work "WORK pooled lanes = scalar" w_scalar w_pooled

let test_dlx_speculating_sweep_lanes () =
  (* Branch-predicting sweeps roll back and squash: the lane engine's
     rollback commit order, Via_rollback retirement checks and squash
     accounting must reproduce the scalar rows (which embed the
     per-point stats) exactly. *)
  let config =
    {
      Workload.Sweep.default with
      Workload.Sweep.variant = Dlx.Seq_dlx.Branch_predict;
    }
  in
  let run ?lanes () =
    Workload.Sweep.branch_sweep ~config ?lanes
      ~taken_fracs:[ 0.0; 0.3; 0.6; 1.0 ]
      ~length:40 ~seed:11 ()
  in
  let scalar, w_scalar = counted (fun () -> run ()) in
  (* WORK equality alone cannot tell a genuine lane run from the
     scalar fallback (the fallback is WORK-identical by construction).
     The span trace can: a lane run records [pipesem.run_lanes] and no
     scalar [pipesem.run]; a fallback would record one [pipesem.run]
     per lane. *)
  Obs.Span.set_enabled true;
  let lanes, w_lanes = counted (fun () -> run ~lanes:true ()) in
  let spans = List.map (fun r -> r.Obs.Span.span_name) (Obs.Span.records ()) in
  Obs.Span.set_enabled false;
  Alcotest.(check bool)
    "lane engine ran" true
    (List.mem "pipesem.run_lanes" spans);
  Alcotest.(check bool)
    "no scalar fallback" false (List.mem "pipesem.run" spans);
  Alcotest.(check bool) "rows lanes = scalar" true (lanes = scalar);
  Alcotest.check work "WORK lanes = scalar" w_scalar w_lanes;
  (* The base-variant dependency sweep, for the stall-only profile. *)
  let run ?lanes () =
    Workload.Sweep.dependency_sweep ?lanes ~biases:[ 0.0; 0.5; 1.0 ]
      ~length:40 ~seed:7 ()
  in
  let scalar, w_scalar = counted (fun () -> run ()) in
  let lanes, w_lanes = counted (fun () -> run ~lanes:true ()) in
  Alcotest.(check bool) "dependency rows lanes = scalar" true (lanes = scalar);
  Alcotest.check work "dependency WORK lanes = scalar" w_scalar w_lanes

let () =
  Alcotest.run "lanes"
    [
      ( "differential",
        [
          Alcotest.test_case "partial packs 1/2/61/62" `Quick
            test_partial_packs;
          Alcotest.test_case "chunk boundaries 63/64" `Quick
            test_chunk_boundaries;
          Alcotest.test_case "directed one-lane divergence" `Quick
            test_directed_divergence;
          Alcotest.test_case "faulty sweeps: evidence equality" `Quick
            test_faulty_evidence_equality;
          Alcotest.test_case "dlx bmc row" `Quick test_dlx_bmc_lanes;
          Alcotest.test_case "dlx speculating sweeps" `Quick
            test_dlx_speculating_sweep_lanes;
        ] );
      ("properties", List.map to_alcotest [ prop_lanes_equal_scalar ]);
    ]
