(* Precise interrupts via speculation (paper §5): the machine
   speculates that no interrupt occurs; the truth is known in the
   write-back stage at the latest.  A misspeculation clears the
   pipeline through the rollback mechanism and the rollback writes
   perform the JISR updates (EPC/EDPC/ECA/SR, jump to the service
   routine).  The guessed value has no influence on correctness — only
   on performance. *)

let () =
  let sisr = 8 in
  let p = Dlx.Progs.overflow_trap in
  let program = Dlx.Progs.program p in
  let variant = Dlx.Seq_dlx.With_interrupts { sisr } in
  let tr = Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data variant ~program in
  Format.printf "== machine ==@.%a@." Machine.Spec.pp_summary
    tr.Pipeline.Transform.base;
  Format.printf "speculations: %s@."
    (String.concat ", "
       (List.map
          (fun (s : Pipeline.Fwd_spec.speculation) ->
            Printf.sprintf "%s (resolved in stage %d)"
              s.Pipeline.Fwd_spec.spec_label s.Pipeline.Fwd_spec.resolve_stage)
          tr.Pipeline.Transform.speculations));

  let n = p.Dlx.Progs.dyn_instructions in
  let reference =
    Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data variant ~program
      ~instructions:n
  in
  let rollbacks = ref 0 in
  let callbacks =
    {
      Pipeline.Pipesem.no_callbacks with
      Pipeline.Pipesem.on_retire =
        (fun ~tag ~kind _ ->
          match kind with
          | Pipeline.Pipesem.Via_rollback label ->
            incr rollbacks;
            Format.printf "  instruction %d retired via rollback (%s)@." tag
              label
          | Pipeline.Pipesem.Normal -> ());
    }
  in
  let result = Pipeline.Pipesem.run ~callbacks ~stop_after:n tr in
  Format.printf "run: %d instructions, %d cycles, %d rollbacks, %d squashed@."
    result.Pipeline.Pipesem.stats.Pipeline.Pipesem.retired
    result.Pipeline.Pipesem.stats.Pipeline.Pipesem.cycles
    result.Pipeline.Pipesem.stats.Pipeline.Pipesem.rollbacks
    result.Pipeline.Pipesem.stats.Pipeline.Pipesem.squashed;

  (* Verify against the golden model. *)
  let report =
    Proof_engine.Consistency.check ~max_instructions:n ~reference tr
  in
  Format.printf "%a" Proof_engine.Consistency.pp_report report;
  if not (Proof_engine.Consistency.ok report) then exit 1;

  (* The ISR counted one interrupt per overflow/trap at data word 100. *)
  let count =
    Machine.State.read_file result.Pipeline.Pipesem.state "MEM"
      (Hw.Bitvec.make ~width:Dlx.Seq_dlx.mem_addr_bits 100)
  in
  Format.printf "interrupts serviced (data word 100): %d@."
    (Hw.Bitvec.to_int count);
  assert (Hw.Bitvec.to_int count = 3);
  Format.printf "precise interrupts verified.@."
