(* Larger pipelines (paper §4.2): the generated forwarding hardware as
   the pipeline gets deeper.

   The depth-parametric machine family (Core.Elastic) keeps the ISA
   fixed while the number of stages between operand fetch and
   write-back grows.  The tool synthesizes one forwarding source per
   intervening stage, so the hit/valid/mux structure — and the paper's
   concern about its delay — scales with depth.  A "late" operation
   produces its result only in the second-to-last stage, generalizing
   the load-use interlock: a dependent late op stalls n-4 cycles. *)

let run ~n program =
  let tr = Core.Elastic.transform ~n ~program () in
  let report =
    Proof_engine.Consistency.check ~max_instructions:(List.length program) tr
  in
  if not (Proof_engine.Consistency.ok report) then begin
    Format.printf "n=%d INCONSISTENT@." n;
    Proof_engine.Consistency.pp_report Format.std_formatter report;
    exit 1
  end;
  report

let () =
  Format.printf
    "depth  fwd sources  g-network depth   fast-chain  late-chain  independent@.";
  Format.printf
    "       (per operand) (chain / tree)      CPI         CPI         CPI@.";
  List.iter
    (fun n ->
      let program = Core.Elastic.chain_program ~late:false ~length:24 in
      let tr = Core.Elastic.transform ~n ~program () in
      let rule =
        match
          Pipeline.Transform.find_rule tr ~stage:1
            ~operand:(Pipeline.Fwd_spec.File_port ("REG", 0))
        with
        | Some r -> r
        | None -> assert false
      in
      let sources = List.length rule.Pipeline.Transform.sources in
      let g_depth impl =
        (Hw.Cost.of_expr
           (Pipeline.Mux_impl.build_network ~impl ~sources ~data_width:16))
          .Hw.Cost.depth
      in
      let cpi p =
        Pipeline.Pipesem.cpi
          (run ~n p).Proof_engine.Consistency.stats
      in
      Format.printf "%5d  %11d  %8d / %d     %8.2f    %8.2f    %8.2f@." n
        sources
        (g_depth Hw.Circuits.Chain)
        (g_depth Hw.Circuits.Tree)
        (cpi (Core.Elastic.chain_program ~late:false ~length:24))
        (cpi (Core.Elastic.chain_program ~late:true ~length:24))
        (cpi (Core.Elastic.independent_program ~length:24)))
    [ 3; 4; 5; 6; 8; 10 ];
  Format.printf
    "@.forwarding keeps dependent fast chains at CPI ~1 at every depth;@.";
  Format.printf
    "late-result dependencies stall (n-4) cycles each, like a load-use@.";
  Format.printf
    "hazard generalized; the chain-mux depth grows linearly with the@.";
  Format.printf "source count while the tree stays logarithmic (section 4.2).@."
