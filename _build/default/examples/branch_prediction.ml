(* Branch prediction via speculation (paper §5): the fetch stage
   guesses the next fetch address sequentially (SPC := SPC + 4) instead
   of waiting for the forwarded DPC.  The tool adds a comparator
   against the true fetch address and squashes a wrongly fetched
   instruction through the rollback mechanism.  A wrong guess costs a
   cycle; it can never produce a wrong result. *)

let run_with variant (p : Dlx.Progs.t) =
  let program = Dlx.Progs.program p in
  let tr = Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data variant ~program in
  let n = p.Dlx.Progs.dyn_instructions in
  let reference =
    Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data variant ~program
      ~instructions:n
  in
  let report =
    Proof_engine.Consistency.check ~max_instructions:n ~reference tr
  in
  if not (Proof_engine.Consistency.ok report) then begin
    Format.printf "INCONSISTENT:@.%a" Proof_engine.Consistency.pp_report report;
    exit 1
  end;
  report.Proof_engine.Consistency.stats

let () =
  Format.printf
    "kernel            |   base (forwarded fetch) | predicted fetch (SPC+4)@.";
  Format.printf
    "                  |  cycles  CPI             |  cycles  CPI  rollbacks@.";
  List.iter
    (fun p ->
      let base = run_with Dlx.Seq_dlx.Base p in
      let bp = run_with Dlx.Seq_dlx.Branch_predict p in
      Format.printf "%-18s|  %6d  %.2f            |  %6d  %.2f  %d@."
        p.Dlx.Progs.prog_name base.Pipeline.Pipesem.cycles
        (Pipeline.Pipesem.cpi base)
        bp.Pipeline.Pipesem.cycles
        (Pipeline.Pipesem.cpi bp)
        bp.Pipeline.Pipesem.rollbacks)
    Dlx.Progs.all_kernels;
  Format.printf
    "@.both machines are data consistent: the guessed value affects@.";
  Format.printf "performance only (paper section 5).@."
