examples/quickstart.mli:
