examples/precise_interrupts.mli:
