examples/verification_tour.ml: Dlx Format Hw List Option Pipeline Printf Proof_engine String
