examples/quickstart.ml: Format Hw List Machine Pipeline Proof_engine
