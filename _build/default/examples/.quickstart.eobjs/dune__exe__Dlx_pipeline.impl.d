examples/dlx_pipeline.ml: Dlx Format List Pipeline Proof_engine
