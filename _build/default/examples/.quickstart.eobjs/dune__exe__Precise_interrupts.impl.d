examples/precise_interrupts.ml: Dlx Format Hw List Machine Pipeline Printf Proof_engine String
