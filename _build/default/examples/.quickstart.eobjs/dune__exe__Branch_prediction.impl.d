examples/branch_prediction.ml: Dlx Format List Pipeline Proof_engine
