examples/deep_pipeline.ml: Core Format Hw List Pipeline Proof_engine
