examples/deep_pipeline.mli:
