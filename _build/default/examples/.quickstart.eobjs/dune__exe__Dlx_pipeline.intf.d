examples/dlx_pipeline.mli:
