(* Quickstart: pipeline a 3-stage accumulator machine.

   The machine executes a tiny "triadic add" ISA: every instruction is
   [op dst src1 src2] and computes REG[dst] := REG[src1] + REG[src2].
   Stage 0 fetches, stage 1 reads operands and adds, stage 2 writes the
   register file.  The prepared sequential machine reads REG in stage 1
   but writes it in stage 2 — a classic data hazard.  The
   transformation tool synthesizes the forwarding network (one hit
   signal, one equality tester, one multiplexer per operand), after
   which the pipeline sustains CPI = 1 even on back-to-back dependent
   instructions. *)

let bv ~width v = Hw.Bitvec.make ~width v
let e_input = Hw.Expr.input
let e_slice = Hw.Expr.slice

(* Instruction layout: [15:12] unused opcode, [11:8] dst, [7:4] src1,
   [3:0] src2. *)
let encode ~dst ~src1 ~src2 = (dst lsl 8) lor (src1 lsl 4) lor src2

let machine ~program : Machine.Spec.t =
  let reg name width stage ?prev ?(visible = false) kind =
    {
      Machine.Spec.reg_name = name;
      width;
      stage;
      kind;
      visible;
      prev_instance = prev;
    }
  in
  let imem_init =
    Machine.Value.file_of_list ~width:16 ~addr_bits:8
      (List.map (bv ~width:16) program)
  in
  let ir = e_input "IR.1" 16 in
  let read_reg field_hi field_lo =
    Hw.Expr.File_read
      {
        file = "REG";
        data_width = 16;
        addr = e_slice ir ~hi:field_hi ~lo:field_lo;
      }
  in
  {
    Machine.Spec.machine_name = "toy3";
    n_stages = 3;
    registers =
      [
        reg "PC" 8 0 ~visible:true Machine.Spec.Simple;
        reg "IMEM" 16 0 (Machine.Spec.File { addr_bits = 8 });
        reg "IR.1" 16 0 Machine.Spec.Simple;
        reg "C.2" 16 1 Machine.Spec.Simple;
        reg "D.2" 4 1 Machine.Spec.Simple;
        reg "REG" 16 2 ~visible:true (Machine.Spec.File { addr_bits = 4 });
      ];
    stages =
      [
        {
          Machine.Spec.index = 0;
          stage_name = "FETCH";
          writes =
            [
              {
                Machine.Spec.dst = "IR.1";
                value =
                  Hw.Expr.File_read
                    { file = "IMEM"; data_width = 16; addr = e_input "PC" 8 };
                guard = None;
                wr_addr = None;
              };
              {
                Machine.Spec.dst = "PC";
                value = Hw.Expr.( +: ) (e_input "PC" 8) (Hw.Expr.const_int ~width:8 1);
                guard = None;
                wr_addr = None;
              };
            ];
        };
        {
          Machine.Spec.index = 1;
          stage_name = "EX";
          writes =
            [
              {
                Machine.Spec.dst = "C.2";
                value = Hw.Expr.( +: ) (read_reg 7 4) (read_reg 3 0);
                guard = None;
                wr_addr = None;
              };
              {
                Machine.Spec.dst = "D.2";
                value = e_slice ir ~hi:11 ~lo:8;
                guard = None;
                wr_addr = None;
              };
            ];
        };
        {
          Machine.Spec.index = 2;
          stage_name = "WB";
          writes =
            [
              {
                Machine.Spec.dst = "REG";
                value = e_input "C.2" 16;
                guard = None;
                wr_addr = Some (e_input "D.2" 4);
              };
            ];
        };
      ];
    init =
      [
        ("IMEM", imem_init);
        ( "REG",
          Machine.Value.file_of_list ~width:16 ~addr_bits:4
            [ bv ~width:16 0; bv ~width:16 1; bv ~width:16 2 ] );
      ];
  }

let () =
  (* A dependency chain: r3 = r1+r2; r4 = r3+r3; r5 = r4+r1; ... *)
  let program =
    [
      encode ~dst:3 ~src1:1 ~src2:2;
      encode ~dst:4 ~src1:3 ~src2:3;
      encode ~dst:5 ~src1:4 ~src2:1;
      encode ~dst:6 ~src1:5 ~src2:4;
      encode ~dst:7 ~src1:6 ~src2:6;
      encode ~dst:1 ~src1:7 ~src2:2;
    ]
  in
  let n_instructions = List.length program in
  let m = machine ~program in
  Machine.Validate.check_exn m;
  Format.printf "== prepared sequential machine ==@.%a@." Machine.Spec.pp_summary m;

  (* Reference: the sequential machine (round-robin ue, Table 1). *)
  let seq_trace, seq_state =
    Machine.Seqsem.run_state ~max_instructions:n_instructions m
  in
  Format.printf "sequential run: %d instructions in %d cycles (CPI %.2f)@."
    seq_trace.Machine.Seqsem.instructions
    (seq_trace.Machine.Seqsem.instructions * 3)
    3.0;

  (* Transform: synthesize forwarding + interlock + stall engine. *)
  let hints =
    [
      Pipeline.Fwd_spec.hint ~stage:1 ~label:"srcA" (Pipeline.Fwd_spec.File_port ("REG", 0));
      Pipeline.Fwd_spec.hint ~stage:1 ~label:"srcB" (Pipeline.Fwd_spec.File_port ("REG", 1));
    ]
  in
  let tr = Pipeline.Transform.run ~hints m in
  Format.printf "@.== generated hardware ==@.%a@." Pipeline.Report.pp_inventory tr;

  (* Run the pipelined machine and compare final visible state. *)
  let result = Pipeline.Pipesem.run ~stop_after:n_instructions tr in
  Format.printf "pipelined run: %d instructions in %d cycles (CPI %.2f)@."
    result.Pipeline.Pipesem.stats.Pipeline.Pipesem.retired
    result.Pipeline.Pipesem.stats.Pipeline.Pipesem.cycles
    (Pipeline.Pipesem.cpi result.Pipeline.Pipesem.stats);

  (* Verify: the paper's data-consistency criterion (section 6.2) and
     liveness (6.3), checked by co-simulation against the sequential
     reference. *)
  let report = Proof_engine.Consistency.check tr in
  Format.printf "@.== verification ==@.%a" Proof_engine.Consistency.pp_report
    report;
  let live = Proof_engine.Liveness.check ~stop_after:n_instructions tr in
  Format.printf "%a" Proof_engine.Liveness.pp_report live;
  if not (Proof_engine.Consistency.ok report && Proof_engine.Liveness.ok live)
  then exit 1;

  (* The register file is written by the last stage, so it also matches
     as a final state. *)
  Format.printf "@.final register file:@.";
  (match Machine.State.get result.Pipeline.Pipesem.state "REG" with
  | v -> Format.printf "  REG = %a@." Machine.Value.pp v);
  let seq_reg = Machine.State.get seq_state "REG" in
  assert (
    Machine.Value.equal seq_reg
      (Machine.State.get result.Pipeline.Pipesem.state "REG"));
  Format.printf "matches the sequential reference. Done.@."
