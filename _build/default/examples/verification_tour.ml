(* A tour of the verification machinery (paper §6 and the substitution
   described in DESIGN.md), on the paper's case study:

   1. the generated proof obligations, discharged automatically;
   2. symbolic BDD equivalence of the selection-network variants;
   3. symbolic co-simulation: data consistency for all initial GPR
      contents at once;
   4. fault injection: the checkers catching a sabotaged bypass, with
      a concrete counterexample;
   5. verification coverage of the kernel suite. *)

let dlx ?options (p : Dlx.Progs.t) =
  Dlx.Seq_dlx.transform ?options ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
    ~program:(Dlx.Progs.program p)

let () =
  let p = Dlx.Progs.fib 10 in
  let tr = dlx p in
  let n = p.Dlx.Progs.dyn_instructions in

  Format.printf "== 1. generated obligations (pipegen verify) ==@.";
  let reference =
    Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p) ~instructions:n
  in
  let obs =
    Proof_engine.Obligation.discharge_all ~max_instructions:n ~reference tr
  in
  Format.printf "%a  -> all discharged: %b@.@." Proof_engine.Obligation.pp obs
    (Proof_engine.Obligation.all_discharged obs);

  Format.printf "== 2. symbolic equivalence of the network variants ==@.";
  let g impl =
    let tr =
      dlx ~options:{ Pipeline.Fwd_spec.mode = Pipeline.Fwd_spec.Full; impl } p
    in
    List.assoc "$g_1_GPRa" tr.Pipeline.Transform.signals
  in
  Format.printf "  chain vs tree: %a@." Proof_engine.Equiv.pp_result
    (Proof_engine.Equiv.check (g Hw.Circuits.Chain) (g Hw.Circuits.Tree));
  Format.printf "  tree  vs bus:  %a@.@." Proof_engine.Equiv.pp_result
    (Proof_engine.Equiv.check (g Hw.Circuits.Tree) (g Hw.Circuits.Bus));

  Format.printf "== 3. symbolic co-simulation (all 2^1024 GPR states) ==@.";
  let k = Dlx.Progs.hazard_load_use 5 in
  Format.printf "  %s: %a@.@." k.Dlx.Progs.prog_name
    Proof_engine.Symsim.pp_outcome
    (Proof_engine.Symsim.check ~symbolic:[ "GPR" ]
       ~instructions:k.Dlx.Progs.dyn_instructions (dlx k));

  Format.printf "== 4. fault injection ==@.";
  let sabotage =
    {
      tr with
      Pipeline.Transform.signals =
        List.map
          (fun (name, e) ->
            if name = "$g_1_GPRa" then
              ( name,
                Hw.Expr.File_read
                  {
                    file = "GPR";
                    data_width = 32;
                    addr = Hw.Expr.slice (Hw.Expr.input "IR.1" 32) ~hi:25 ~lo:21;
                  } )
            else (name, e))
          tr.Pipeline.Transform.signals;
    }
  in
  let report =
    Proof_engine.Consistency.check ~max_instructions:n ~reference sabotage
  in
  Format.printf "  bypass removed -> %d violations found by co-simulation@."
    (List.length report.Proof_engine.Consistency.violations);
  let kd = Dlx.Progs.hazard_dependent_chain 6 in
  (match
     Proof_engine.Symsim.check ~symbolic:[ "GPR" ]
       ~instructions:kd.Dlx.Progs.dyn_instructions
       {
         (dlx kd) with
         Pipeline.Transform.signals =
           List.map
             (fun (name, e) ->
               if name = "$g_1_GPRa" then
                 ( name,
                   Hw.Expr.File_read
                     {
                       file = "GPR";
                       data_width = 32;
                       addr =
                         Hw.Expr.slice (Hw.Expr.input "IR.1" 32) ~hi:25 ~lo:21;
                     } )
               else (name, e))
             (dlx kd).Pipeline.Transform.signals;
       }
   with
  | Proof_engine.Symsim.Mismatch { register; assignment; _ } ->
    Format.printf "  symbolically: mismatch in %s, witness {%s}@.@." register
      (String.concat ", "
         (List.filter_map
            (fun (n, v) ->
              if v <> 0 then Some (Printf.sprintf "%s=%d" n v) else None)
            assignment))
  | o -> Format.printf "  unexpected: %a@.@." Proof_engine.Symsim.pp_outcome o);

  Format.printf "== 5. verification coverage of the kernel suite ==@.";
  let cov =
    List.fold_left
      (fun acc (p : Dlx.Progs.t) ->
        let c =
          Pipeline.Coverage.measure ~stop_after:p.Dlx.Progs.dyn_instructions
            (dlx p)
        in
        match acc with
        | None -> Some c
        | Some a -> Some (Pipeline.Coverage.merge a c))
      None Dlx.Progs.all_kernels
    |> Option.get
  in
  Format.printf "%a" Pipeline.Coverage.pp cov;
  (match Pipeline.Coverage.holes cov with
  | [] -> Format.printf "  full coverage: every bypass path exercised.@."
  | hs -> List.iter (Format.printf "  HOLE: %s@.") hs);
  Format.printf "@.done.@."
