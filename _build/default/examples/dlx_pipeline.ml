(* The paper's case study (§4.2): transform the prepared sequential
   five-stage DLX into a pipelined machine, inspect the generated
   forwarding hardware (figure 2), run the benchmark kernels on both
   machines, and verify data consistency and liveness. *)

let run_kernel (p : Dlx.Progs.t) =
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  let n = p.Dlx.Progs.dyn_instructions in
  let reference =
    Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p) ~instructions:n
  in
  let report = Proof_engine.Consistency.check ~max_instructions:n ~reference tr in
  let cpi = Pipeline.Pipesem.cpi report.Proof_engine.Consistency.stats in
  Format.printf "  %-16s %5d instr  %6d cycles  CPI %.2f  %s@."
    p.Dlx.Progs.prog_name n
    report.Proof_engine.Consistency.stats.Pipeline.Pipesem.cycles cpi
    (if Proof_engine.Consistency.ok report then "consistent"
     else "INCONSISTENT");
  if not (Proof_engine.Consistency.ok report) then begin
    Proof_engine.Consistency.pp_report Format.std_formatter report;
    exit 1
  end

let () =
  let p = Dlx.Progs.fib 10 in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  Format.printf "== generated hardware (figure 2) ==@.%a@."
    Pipeline.Report.pp_inventory tr;

  Format.printf "== kernels on the pipelined DLX ==@.";
  List.iter run_kernel Dlx.Progs.all_kernels;

  (* Sequential machine for comparison: n_stages cycles per instruction. *)
  Format.printf
    "@.(the prepared sequential machine needs %d cycles per instruction)@." 5;

  (* Liveness. *)
  let p = Dlx.Progs.memcpy 8 in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  let live =
    Proof_engine.Liveness.check ~stop_after:p.Dlx.Progs.dyn_instructions tr
  in
  Format.printf "%a" Proof_engine.Liveness.pp_report live;
  if not (Proof_engine.Liveness.ok live) then exit 1;
  Format.printf "done.@."
