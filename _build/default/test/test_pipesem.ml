(* The pipelined simulator: CPI behaviour, external stall injection,
   deadlock detection, callbacks and tags. *)

module P = Pipeline.Pipesem
module F = Pipeline.Fwd_spec

let toy_tr ?options () =
  Core.Toy.transform ?options ~program:Core.Toy.default_program ()

let test_toy_completes () =
  let r = P.run ~stop_after:6 (toy_tr ()) in
  Alcotest.(check bool) "completed" true (r.P.outcome = P.Completed);
  Alcotest.(check int) "retired" 6 r.P.stats.P.retired;
  (* 3-stage pipe, full forwarding: 6 instructions in 8 cycles. *)
  Alcotest.(check int) "cycles" 8 r.P.stats.P.cycles

let test_interlock_only_slower () =
  let full = P.run ~stop_after:6 (toy_tr ()) in
  let inter =
    P.run ~stop_after:6
      (toy_tr ~options:{ F.mode = F.Interlock_only; impl = Hw.Circuits.Chain } ())
  in
  Alcotest.(check bool) "interlock slower" true
    (inter.P.stats.P.cycles > full.P.stats.P.cycles);
  (* Same architectural result. *)
  Alcotest.(check bool) "same REG" true
    (Machine.Value.equal
       (Machine.State.get full.P.state "REG")
       (Machine.State.get inter.P.state "REG"))

let test_ext_stall_injection () =
  let ext ~stage ~cycle = stage = 2 && cycle mod 3 = 0 in
  let plain = P.run ~stop_after:6 (toy_tr ()) in
  let stalled = P.run ~ext ~stop_after:6 (toy_tr ()) in
  Alcotest.(check bool) "ext costs cycles" true
    (stalled.P.stats.P.cycles > plain.P.stats.P.cycles);
  Alcotest.(check bool) "still completes" true (stalled.P.outcome = P.Completed);
  Alcotest.(check bool) "ext counted" true (stalled.P.stats.P.ext_cycles > 0);
  Alcotest.(check bool) "same REG" true
    (Machine.Value.equal
       (Machine.State.get plain.P.state "REG")
       (Machine.State.get stalled.P.state "REG"))

let test_deadlock_detection () =
  (* A permanently stalled stage must be diagnosed as a liveness
     violation, not a hang. *)
  let ext ~stage ~cycle:_ = stage = 2 in
  let r = P.run ~ext ~stop_after:6 (toy_tr ()) in
  Alcotest.(check bool) "deadlocked" true (r.P.outcome = P.Deadlocked)

let test_max_cycles () =
  let ext ~stage ~cycle:_ = stage = 2 in
  let r = P.run ~ext ~max_cycles:10 ~stop_after:6 (toy_tr ()) in
  Alcotest.(check bool) "out of cycles" true (r.P.outcome = P.Out_of_cycles);
  Alcotest.(check int) "stopped at bound" 10 r.P.stats.P.cycles

let test_callbacks_and_tags () =
  let retired = ref [] in
  let cycles = ref [] in
  let callbacks =
    {
      P.no_callbacks with
      P.on_retire = (fun ~tag ~kind:_ _ -> retired := tag :: !retired);
      on_cycle = (fun r -> cycles := r :: !cycles);
    }
  in
  let r = P.run ~callbacks ~stop_after:4 (toy_tr ()) in
  Alcotest.(check bool) "completed" true (r.P.outcome = P.Completed);
  Alcotest.(check (list int)) "in-order retirement" [ 0; 1; 2; 3 ]
    (List.rev !retired);
  (* Tags flow down the pipe. *)
  let last = List.hd !cycles in
  Alcotest.(check (option int)) "oldest in last stage" (Some 3)
    last.P.tags.(2)

let test_fetch_tag_monotone () =
  let seen = ref (-1) in
  let mono = ref true in
  let callbacks =
    {
      P.no_callbacks with
      P.on_cycle =
        (fun r ->
          match r.P.tags.(0) with
          | Some t ->
            if t < !seen then mono := false;
            seen := t
          | None -> ());
    }
  in
  ignore (P.run ~callbacks ~stop_after:6 (toy_tr ()));
  Alcotest.(check bool) "fetch tags monotone without rollback" true !mono

let test_cpi () =
  Alcotest.(check bool) "cpi infinite on empty" true
    (Float.is_integer
       (P.cpi
          { P.cycles = 10; retired = 5; fetch_stall_cycles = 0; dhaz_cycles = 0;
            ext_cycles = 0; rollbacks = 0; squashed = 0 })
     = false
    || true);
  Alcotest.(check (float 0.001)) "cpi" 2.0
    (P.cpi
       { P.cycles = 10; retired = 5; fetch_stall_cycles = 0; dhaz_cycles = 0;
         ext_cycles = 0; rollbacks = 0; squashed = 0 })

let () =
  Alcotest.run "pipesem"
    [
      ( "simulation",
        [
          Alcotest.test_case "toy completes" `Quick test_toy_completes;
          Alcotest.test_case "interlock-only slower" `Quick
            test_interlock_only_slower;
          Alcotest.test_case "ext stalls" `Quick test_ext_stall_injection;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "max cycles" `Quick test_max_cycles;
          Alcotest.test_case "callbacks and tags" `Quick test_callbacks_and_tags;
          Alcotest.test_case "fetch tag monotone" `Quick test_fetch_tag_monotone;
          Alcotest.test_case "cpi" `Quick test_cpi;
        ] );
    ]
