test/test_build.ml: Alcotest Array Core Hw List Machine Pipeline Printf Proof_engine String
