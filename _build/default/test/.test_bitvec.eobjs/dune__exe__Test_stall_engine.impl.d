test/test_stall_engine.ml: Alcotest Array Hashtbl Hw List Pipeline Printf QCheck QCheck_alcotest
