test/test_bitvec.ml: Alcotest Hw List Printf QCheck QCheck_alcotest
