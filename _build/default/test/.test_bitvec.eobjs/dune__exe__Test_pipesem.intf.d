test/test_pipesem.mli:
