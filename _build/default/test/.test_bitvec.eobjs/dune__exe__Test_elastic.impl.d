test/test_elastic.ml: Alcotest Core Format Hw List Machine Pipeline Printf Proof_engine String
