test/test_dlx.mli:
