test/test_vcd.mli:
