test/test_machine_gen.ml: Alcotest Format List Machine Pipeline Proof_engine
