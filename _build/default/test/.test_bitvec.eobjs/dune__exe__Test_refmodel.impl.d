test/test_refmodel.ml: Alcotest Array Dlx List Printf String
