test/test_cost.ml: Alcotest Hw QCheck QCheck_alcotest
