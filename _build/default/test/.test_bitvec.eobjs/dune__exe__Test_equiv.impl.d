test/test_equiv.ml: Alcotest Dlx Hw List Pipeline Printf Proof_engine QCheck QCheck_alcotest String
