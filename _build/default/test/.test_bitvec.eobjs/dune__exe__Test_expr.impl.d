test/test_expr.ml: Alcotest Hw List Printf QCheck QCheck_alcotest
