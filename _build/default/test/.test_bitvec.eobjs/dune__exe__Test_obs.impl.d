test/test_obs.ml: Alcotest Dlx Float Hw List Obs Pipeline String Workload
