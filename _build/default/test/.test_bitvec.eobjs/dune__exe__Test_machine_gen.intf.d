test/test_machine_gen.mli:
