test/test_proof.ml: Alcotest Array Core Dlx Hw List Pipeline Proof_engine String
