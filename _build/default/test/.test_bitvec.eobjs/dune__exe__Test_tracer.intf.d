test/test_tracer.mli:
