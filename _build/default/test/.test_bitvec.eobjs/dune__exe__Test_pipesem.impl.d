test/test_pipesem.ml: Alcotest Array Core Float Hw List Machine Pipeline
