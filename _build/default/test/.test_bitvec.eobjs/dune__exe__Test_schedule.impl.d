test/test_schedule.ml: Alcotest Array Core Dlx List Pipeline Printf String
