test/test_elastic.mli:
