test/test_report.ml: Alcotest Dlx Hw List Pipeline String
