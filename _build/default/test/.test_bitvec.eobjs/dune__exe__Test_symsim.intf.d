test/test_symsim.mli:
