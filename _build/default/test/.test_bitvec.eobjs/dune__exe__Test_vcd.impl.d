test/test_vcd.ml: Alcotest Core Dlx Hw List Pipeline Printf String
