test/test_verilog.ml: Alcotest Dlx Format Hw Pipeline String
