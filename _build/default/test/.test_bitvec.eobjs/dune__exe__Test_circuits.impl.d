test/test_circuits.ml: Alcotest Hw List Pipeline Printf QCheck QCheck_alcotest
