test/test_asm_parser.ml: Alcotest Array Dlx List Proof_engine
