test/test_isa.ml: Alcotest Dlx List Printf QCheck QCheck_alcotest
