test/test_coverage.ml: Alcotest Core Dlx List Option Pipeline String
