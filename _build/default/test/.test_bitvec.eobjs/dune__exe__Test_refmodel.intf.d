test/test_refmodel.mli:
