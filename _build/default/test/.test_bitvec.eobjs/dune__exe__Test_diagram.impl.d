test/test_diagram.ml: Alcotest Dlx List Pipeline String
