test/test_transform.ml: Alcotest Core Dlx Hashtbl Hw List Machine Pipeline String
