test/test_netlist.ml: Alcotest Dlx Hw Pipeline
