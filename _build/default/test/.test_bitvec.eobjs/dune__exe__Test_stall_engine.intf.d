test/test_stall_engine.mli:
