test/test_opt.ml: Alcotest Dlx Hw List Pipeline Printf Proof_engine QCheck QCheck_alcotest
