test/test_dlx.ml: Alcotest Array Dlx Format Hw List Machine Pipeline Printf Proof_engine Workload
