test/test_symsim.ml: Alcotest Core Dlx Format Hw List Pipeline Printf Proof_engine
