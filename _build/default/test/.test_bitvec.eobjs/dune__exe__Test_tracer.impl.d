test/test_tracer.ml: Alcotest Dlx Hw List Pipeline Printf String
