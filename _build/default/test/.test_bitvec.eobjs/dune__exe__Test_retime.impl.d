test/test_retime.ml: Alcotest Core Dlx Format Hw List Machine Pipeline Proof_engine
