test/test_workload.ml: Alcotest Dlx Float Format Hw List Pipeline String Workload
