test/test_machine.ml: Alcotest Array Core Dlx Hw List Machine Printf String
