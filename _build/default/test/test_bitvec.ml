(* Unit and property tests for Hw.Bitvec. *)

module B = Hw.Bitvec

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_make_truncates () =
  check "mask to width" 3 (B.to_int (B.make ~width:4 0x13));
  check "negative two's complement" 0xF (B.to_int (B.make ~width:4 (-1)));
  check "full width" 0 (B.to_int (B.make ~width:8 256))

let test_bounds () =
  Alcotest.check_raises "width 0" (Invalid_argument "Bitvec.make: width 0 not in 1..62")
    (fun () -> ignore (B.make ~width:0 1));
  check "max width ones" B.max_width (B.width (B.ones B.max_width))

let test_signed () =
  check "positive" 3 (B.to_signed_int (B.make ~width:4 3));
  check "negative" (-1) (B.to_signed_int (B.make ~width:4 15));
  check "min" (-8) (B.to_signed_int (B.make ~width:4 8))

let test_arith () =
  let a = B.make ~width:8 200 and b = B.make ~width:8 100 in
  check "add wraps" 44 (B.to_int (B.add a b));
  check "sub" 100 (B.to_int (B.sub a b));
  check "neg" 56 (B.to_int (B.neg a));
  check "mul wraps" ((200 * 100) land 255) (B.to_int (B.mul a b))

let test_width_mismatch () =
  let a = B.make ~width:8 1 and b = B.make ~width:4 1 in
  Alcotest.check_raises "add" (B.Width_mismatch "add: 8 vs 4 bits") (fun () ->
      ignore (B.add a b))

let test_logic () =
  let a = B.make ~width:4 0b1100 and b = B.make ~width:4 0b1010 in
  check "and" 0b1000 (B.to_int (B.logand a b));
  check "or" 0b1110 (B.to_int (B.logor a b));
  check "xor" 0b0110 (B.to_int (B.logxor a b));
  check "not" 0b0011 (B.to_int (B.lognot a))

let test_shifts () =
  let a = B.make ~width:8 0b10010110 in
  check "shl" 0b01011000 (B.to_int (B.shift_left a 2));
  check "shl overflow" 0 (B.to_int (B.shift_left a 8));
  check "shr" 0b00100101 (B.to_int (B.shift_right_logical a 2));
  check "sra keeps sign" 0b11100101 (B.to_int (B.shift_right_arith a 2));
  check "sra saturates" 0xFF (B.to_int (B.shift_right_arith a 20))

let test_compare () =
  let a = B.make ~width:4 0xF and b = B.make ~width:4 1 in
  check_bool "ltu" false (B.to_bool (B.lt_unsigned a b));
  check_bool "lts (-1 < 1)" true (B.to_bool (B.lt_signed a b));
  check_bool "eq" true (B.to_bool (B.eq a a))

let test_structure () =
  let hi = B.make ~width:4 0xA and lo = B.make ~width:4 0x5 in
  let c = B.concat hi lo in
  check "concat" 0xA5 (B.to_int c);
  check "concat width" 8 (B.width c);
  check "slice hi" 0xA (B.to_int (B.slice c ~hi:7 ~lo:4));
  check "slice lo" 0x5 (B.to_int (B.slice c ~hi:3 ~lo:0));
  check "zero_extend" 0xA5 (B.to_int (B.zero_extend c 12));
  check "sign_extend" 0xFA5 (B.to_int (B.sign_extend c 12));
  check "truncate" 0x5 (B.to_int (B.truncate c 4))

let test_bits () =
  let v = B.make ~width:4 0b1010 in
  check_bool "bit 0" false (B.bit v 0);
  check_bool "bit 1" true (B.bit v 1);
  check_bool "bit 3" true (B.bit v 3)

let test_pp () =
  Alcotest.(check string) "pp" "8'd42" (B.to_string (B.make ~width:8 42))

(* Properties. *)

let arb_pair_same_width =
  QCheck.make
    ~print:(fun (w, a, b) -> Printf.sprintf "w=%d a=%d b=%d" w a b)
    QCheck.Gen.(
      int_range 1 30 >>= fun w ->
      int_bound ((1 lsl w) - 1) >>= fun a ->
      int_bound ((1 lsl w) - 1) >>= fun b -> return (w, a, b))

let prop_add_commutes =
  QCheck.Test.make ~name:"add commutes" ~count:500 arb_pair_same_width
    (fun (w, a, b) ->
      let x = B.make ~width:w a and y = B.make ~width:w b in
      B.equal (B.add x y) (B.add y x))

let prop_add_neg_is_sub =
  QCheck.Test.make ~name:"a + (-b) = a - b" ~count:500 arb_pair_same_width
    (fun (w, a, b) ->
      let x = B.make ~width:w a and y = B.make ~width:w b in
      B.equal (B.add x (B.neg y)) (B.sub x y))

let prop_concat_slice_roundtrip =
  QCheck.Test.make ~name:"concat then slice round-trips" ~count:500
    arb_pair_same_width (fun (w, a, b) ->
      QCheck.assume (2 * w <= B.max_width);
      let x = B.make ~width:w a and y = B.make ~width:w b in
      let c = B.concat x y in
      B.equal (B.slice c ~hi:((2 * w) - 1) ~lo:w) x
      && B.equal (B.slice c ~hi:(w - 1) ~lo:0) y)

let prop_signed_unsigned_agree =
  QCheck.Test.make ~name:"to_signed_int mod 2^w = to_int" ~count:500
    arb_pair_same_width (fun (w, a, _) ->
      let x = B.make ~width:w a in
      (B.to_signed_int x land ((1 lsl w) - 1)) = B.to_int x)

let prop_lognot_involution =
  QCheck.Test.make ~name:"double complement" ~count:500 arb_pair_same_width
    (fun (w, a, _) ->
      let x = B.make ~width:w a in
      B.equal (B.lognot (B.lognot x)) x)

let prop_shift_left_is_mul =
  QCheck.Test.make ~name:"shl k = mul by 2^k" ~count:500
    QCheck.(pair arb_pair_same_width (int_bound 5))
    (fun ((w, a, _), k) ->
      QCheck.assume (k < w);
      let x = B.make ~width:w a in
      B.equal (B.shift_left x k) (B.mul x (B.make ~width:w (1 lsl k))))

let () =
  Alcotest.run "bitvec"
    [
      ( "unit",
        [
          Alcotest.test_case "make truncates" `Quick test_make_truncates;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "signed" `Quick test_signed;
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
          Alcotest.test_case "logic" `Quick test_logic;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "bits" `Quick test_bits;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add_commutes;
            prop_add_neg_is_sub;
            prop_concat_slice_roundtrip;
            prop_signed_unsigned_agree;
            prop_lognot_involution;
            prop_shift_left_is_mul;
          ] );
    ]
