(* Symbolic co-simulation: data consistency proved for all initial
   data values at once. *)

module S = Proof_engine.Symsim

let proved = function S.Proved _ -> true | S.Mismatch _ | S.Control_depends_on_data _ -> false

let check_proved name outcome =
  if not (proved outcome) then
    Alcotest.failf "%s: %s" name (Format.asprintf "%a" S.pp_outcome outcome)

let test_toy_all_data () =
  let tr = Core.Toy.transform ~program:Core.Toy.default_program () in
  check_proved "toy chain" (S.check ~symbolic:[ "REG" ] ~instructions:6 tr);
  let tree =
    Core.Toy.transform
      ~options:{ Pipeline.Fwd_spec.mode = Pipeline.Fwd_spec.Full; impl = Hw.Circuits.Tree }
      ~program:Core.Toy.default_program ()
  in
  check_proved "toy tree" (S.check ~symbolic:[ "REG" ] ~instructions:6 tree)

let test_toy_interlock_only () =
  let tr =
    Core.Toy.transform
      ~options:{ Pipeline.Fwd_spec.mode = Pipeline.Fwd_spec.Interlock_only;
                 impl = Hw.Circuits.Chain }
      ~program:Core.Toy.default_program ()
  in
  check_proved "interlock" (S.check ~symbolic:[ "REG" ] ~instructions:6 tr)

let test_default_symbolic_set () =
  (* Default: visible register files are symbolic. *)
  let tr = Core.Toy.transform ~program:Core.Toy.default_program () in
  check_proved "defaults" (S.check ~instructions:4 tr)

let test_elastic_depths () =
  List.iter
    (fun n ->
      let tr =
        Core.Elastic.transform ~n
          ~program:(Core.Elastic.chain_program ~late:true ~length:8)
          ()
      in
      check_proved
        (Printf.sprintf "elastic %d" n)
        (S.check ~symbolic:[ "REG" ] ~instructions:8 tr))
    [ 3; 5; 7 ]

let test_dlx_kernels () =
  List.iter
    (fun (p : Dlx.Progs.t) ->
      let tr =
        Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
          ~program:(Dlx.Progs.program p)
      in
      check_proved p.Dlx.Progs.prog_name
        (S.check ~symbolic:[ "GPR" ]
           ~instructions:(min 10 p.Dlx.Progs.dyn_instructions)
           tr))
    [
      Dlx.Progs.hazard_dependent_chain 8;
      Dlx.Progs.hazard_load_use 4;
      Dlx.Progs.hazard_independent 8;
    ]

let test_catches_sabotage () =
  let tr = Core.Toy.transform ~program:Core.Toy.default_program () in
  let bad =
    {
      tr with
      Pipeline.Transform.signals =
        List.map
          (fun (n, e) ->
            if n = "$g_1_srcA" then
              ( n,
                Hw.Expr.File_read
                  {
                    file = "REG";
                    data_width = 16;
                    addr = Hw.Expr.slice (Hw.Expr.input "IR.1" 16) ~hi:7 ~lo:4;
                  } )
            else (n, e))
          tr.Pipeline.Transform.signals;
    }
  in
  match S.check ~symbolic:[ "REG" ] ~instructions:6 bad with
  | S.Mismatch { register = "REG"; assignment; _ } ->
    (* The counterexample mentions concrete initial file entries. *)
    Alcotest.(check bool) "nonempty witness" true (assignment <> [])
  | o -> Alcotest.failf "expected a mismatch, got %a" S.pp_outcome o

let test_symbolic_branch_proved () =
  (* A branch on a symbolic register is fine as long as the stall
     logic stays data-independent: the case split flows through the
     (symbolic) fetch stream and both paths are proved at once. *)
  let open Dlx.Asm in
  let open Dlx.Isa in
  let p =
    Dlx.Progs.make "symbolic_branch"
      [ Insn (Addi (1, 0, 0)); Bnez_l (2, "skip"); Insn Nop;
        Insn (Addi (3, 0, 1)); Label "skip" ]
  in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  check_proved "symbolic branch" (S.check ~symbolic:[ "GPR" ] ~instructions:5 tr)

let symbolic_hazard_program () =
  (* Whether a load-use stall happens depends on a symbolic branch. *)
  let open Dlx.Asm in
  let open Dlx.Isa in
  Dlx.Progs.make ~data:[ (64, 7) ] "symbolic_hazard"
    [ Insn (Addi (1, 0, 256));
      Bnez_l (2, "skip");
      Insn Nop;
      Insn (Lw (5, 1, 0));       (* fall-through path only *)
      Label "skip";
      Insn (Add (6, 5, 5)) ]     (* load-use iff not taken *)

let test_data_dependent_interlock_split () =
  (* The checker forks Burch-Dill style on the stall decision and
     proves both paths. *)
  let p = symbolic_hazard_program () in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  check_proved "split interlock" (S.check ~symbolic:[ "GPR" ] ~instructions:5 tr)

let test_path_budget_rejection () =
  (* With the path budget forced to one, the same program must be
     rejected explicitly instead of silently concretized. *)
  let p = symbolic_hazard_program () in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  match S.check ~symbolic:[ "GPR" ] ~max_paths:1 ~instructions:5 tr with
  | S.Control_depends_on_data _ -> ()
  | o -> Alcotest.failf "expected budget rejection, got %a" S.pp_outcome o

let test_unknown_symbolic_register () =
  let tr = Core.Toy.transform ~program:[] () in
  match S.check ~symbolic:[ "nope" ] ~instructions:1 tr with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown register accepted"

let () =
  Alcotest.run "symsim"
    [
      ( "proofs",
        [
          Alcotest.test_case "toy for all data" `Quick test_toy_all_data;
          Alcotest.test_case "interlock-only" `Quick test_toy_interlock_only;
          Alcotest.test_case "default symbolic set" `Quick
            test_default_symbolic_set;
          Alcotest.test_case "elastic depths" `Quick test_elastic_depths;
          Alcotest.test_case "dlx kernels" `Slow test_dlx_kernels;
        ] );
      ( "detection",
        [
          Alcotest.test_case "sabotage caught" `Quick test_catches_sabotage;
          Alcotest.test_case "symbolic branch proved" `Quick
            test_symbolic_branch_proved;
          Alcotest.test_case "symbolic interlock split" `Slow
            test_data_dependent_interlock_split;
          Alcotest.test_case "path budget rejection" `Quick
            test_path_budget_rejection;
          Alcotest.test_case "unknown register" `Quick
            test_unknown_symbolic_register;
        ] );
    ]
