(* The scheduling function I(k,T) and Lemma 1 (paper §6.1). *)

module P = Pipeline.Pipesem
module S = Pipeline.Schedule

let record_trace tr ~stop_after =
  let records = ref [] in
  let callbacks =
    { P.no_callbacks with P.on_cycle = (fun r -> records := r :: !records) }
  in
  ignore (P.run ~callbacks ~stop_after tr);
  List.rev !records

let toy_trace () =
  record_trace (Core.Toy.transform ~program:Core.Toy.default_program ())
    ~stop_after:6

let test_table_shape () =
  let trace = toy_trace () in
  let table = S.of_trace ~n_stages:3 trace in
  Alcotest.(check int) "rows" (List.length trace + 1) (Array.length table);
  Alcotest.(check (array int)) "starts at zero" [| 0; 0; 0 |] table.(0)

let test_inductive_definition () =
  let trace = toy_trace () in
  let table = S.of_trace ~n_stages:3 trace in
  (* In a toy run with no stalls the schedule is the textbook diagonal:
     I(k, T) = max 0 (T - k) until the drain. *)
  List.iteri
    (fun t (r : P.cycle_record) ->
      ignore r;
      if t <= 3 then
        for k = 0 to 2 do
          Alcotest.(check int)
            (Printf.sprintf "I(%d,%d)" k t)
            (max 0 (t - k))
            table.(t).(k)
        done)
    trace

let test_lemma1_holds () =
  let trace = toy_trace () in
  match S.check_lemma1 ~n_stages:3 trace with
  | Ok () -> ()
  | Error es -> Alcotest.failf "lemma 1 failed: %s" (String.concat "; " es)

let test_lemma1_on_dlx_with_stalls () =
  let p = Dlx.Progs.hazard_load_use 8 in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  let trace = record_trace tr ~stop_after:p.Dlx.Progs.dyn_instructions in
  (* Some stalls definitely happened... *)
  Alcotest.(check bool) "stalls occurred" true
    (List.exists (fun (r : P.cycle_record) -> r.P.stall.(0)) trace);
  (* ...and the lemma still holds. *)
  match S.check_lemma1 ~n_stages:5 trace with
  | Ok () -> ()
  | Error es -> Alcotest.failf "lemma 1 failed: %s" (String.concat "; " es)

let test_rollback_trace_rejected () =
  let p = Dlx.Progs.overflow_trap in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data
      (Dlx.Seq_dlx.With_interrupts { sisr = 8 })
      ~program:(Dlx.Progs.program p)
  in
  let trace = record_trace tr ~stop_after:p.Dlx.Progs.dyn_instructions in
  Alcotest.(check bool) "has rollback" true (S.has_rollback trace);
  match S.check_lemma1 ~n_stages:5 trace with
  | Error [ _ ] -> ()
  | Ok () -> Alcotest.fail "should refuse rollback traces"
  | Error _ -> Alcotest.fail "single explanatory message expected"

let test_detects_corrupt_trace () =
  (* Damage a recorded trace: claim a ue in an empty stage. *)
  let trace = toy_trace () in
  let damaged =
    List.mapi
      (fun i (r : P.cycle_record) ->
        if i = 1 then begin
          let ue = Array.copy r.P.ue in
          ue.(2) <- true;
          (* stage 2 is empty in cycle 1 *)
          { r with P.ue }
        end
        else r)
      trace
  in
  match S.check_lemma1 ~n_stages:3 damaged with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "corruption not detected"

let () =
  Alcotest.run "schedule"
    [
      ( "scheduling function",
        [
          Alcotest.test_case "table shape" `Quick test_table_shape;
          Alcotest.test_case "inductive definition" `Quick
            test_inductive_definition;
          Alcotest.test_case "lemma 1 (toy)" `Quick test_lemma1_holds;
          Alcotest.test_case "lemma 1 (dlx with stalls)" `Quick
            test_lemma1_on_dlx_with_stalls;
          Alcotest.test_case "rollback traces rejected" `Quick
            test_rollback_trace_rejected;
          Alcotest.test_case "detects corruption" `Quick
            test_detects_corrupt_trace;
        ] );
    ]
