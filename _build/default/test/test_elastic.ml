(* The depth-parametric machine family: forwarding chains longer than
   the DLX's, consistency at every depth, and the generalized load-use
   interlock. *)

module El = Core.Elastic
module T = Pipeline.Transform
module F = Pipeline.Fwd_spec

let check ~n ?options program =
  let tr = El.transform ?options ~n ~program () in
  let report =
    Proof_engine.Consistency.check ~max_instructions:(List.length program) tr
  in
  if not (Proof_engine.Consistency.ok report) then
    Alcotest.failf "n=%d inconsistent: %s" n
      (Format.asprintf "%a" Proof_engine.Consistency.pp_report report);
  report

let depths = [ 3; 4; 5; 6; 7; 8; 10 ]

let test_consistent_all_depths () =
  List.iter
    (fun n ->
      ignore (check ~n (El.chain_program ~late:false ~length:20));
      ignore (check ~n (El.chain_program ~late:true ~length:20));
      ignore (check ~n (El.independent_program ~length:20)))
    depths

let test_consistent_tree_impl () =
  let options = { F.mode = F.Full; impl = Hw.Circuits.Tree } in
  List.iter
    (fun n -> ignore (check ~n ~options (El.chain_program ~late:true ~length:12)))
    [ 4; 6; 8 ]

let test_consistent_interlock_only () =
  let options = { F.mode = F.Interlock_only; impl = Hw.Circuits.Chain } in
  List.iter
    (fun n -> ignore (check ~n ~options (El.chain_program ~late:false ~length:12)))
    [ 3; 5; 7 ]

let test_source_count_scales () =
  List.iter
    (fun n ->
      let tr = El.transform ~n ~program:[] () in
      match T.find_rule tr ~stage:1 ~operand:(F.File_port ("REG", 0)) with
      | Some r ->
        Alcotest.(check int)
          (Printf.sprintf "sources at n=%d" n)
          (n - 2)
          (List.length r.T.sources)
      | None -> Alcotest.fail "rule missing")
    depths

let test_valid_bit_count_scales () =
  (* One Qv register per chain stage: the chain spans stages 1..n-2. *)
  List.iter
    (fun n ->
      let tr = El.transform ~n ~program:[] () in
      let qv =
        List.filter
          (fun (r : Machine.Spec.register) ->
            String.length r.Machine.Spec.reg_name >= 4
            && String.sub r.Machine.Spec.reg_name 0 4 = "$Qv_")
          tr.T.machine.Machine.Spec.registers
      in
      Alcotest.(check int)
        (Printf.sprintf "Qv count at n=%d" n)
        (n - 2) (List.length qv))
    depths

let cycles ~n program =
  (check ~n program).Proof_engine.Consistency.stats.Pipeline.Pipesem.cycles

let test_fast_chain_never_stalls () =
  List.iter
    (fun n ->
      let len = 20 in
      Alcotest.(check int)
        (Printf.sprintf "n=%d" n)
        (len + n - 1)
        (cycles ~n (El.chain_program ~late:false ~length:len)))
    depths

let test_late_chain_stalls_linearly () =
  (* A dependent late op waits until the producer is *in* stage n-2
     (where the result is forwardable as it is computed): n-4 stall
     cycles per dependent instruction, for n >= 5. *)
  List.iter
    (fun n ->
      let len = 20 in
      let expected = len + n - 1 + ((n - 4) * (len - 1)) in
      Alcotest.(check int)
        (Printf.sprintf "n=%d" n)
        expected
        (cycles ~n (El.chain_program ~late:true ~length:len)))
    [ 5; 6; 8 ]

let test_late_distance_sweep () =
  (* Padding the dependency with independent instructions absorbs the
     stalls one by one. *)
  let n = 6 in
  let mk gap =
    [ El.encode ~late:true ~dst:1 ~src1:2 ~src2:3 ]
    @ List.init gap (fun i -> El.encode ~late:false ~dst:(8 + i) ~src1:9 ~src2:10)
    @ [ El.encode ~late:false ~dst:4 ~src1:1 ~src2:1 ]
  in
  let baseline gap = List.length (mk gap) + n - 1 in
  List.iter
    (fun gap ->
      let stalls = max 0 (n - 4 - gap) in
      Alcotest.(check int)
        (Printf.sprintf "gap %d" gap)
        (baseline gap + stalls)
        (cycles ~n (mk gap)))
    [ 0; 1; 2; 3; 4 ]

let test_bad_depth_rejected () =
  match El.machine ~n:2 ~program:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "depth 2 accepted"

let () =
  Alcotest.run "elastic"
    [
      ( "consistency",
        [
          Alcotest.test_case "all depths" `Slow test_consistent_all_depths;
          Alcotest.test_case "tree impl" `Quick test_consistent_tree_impl;
          Alcotest.test_case "interlock only" `Quick
            test_consistent_interlock_only;
        ] );
      ( "structure",
        [
          Alcotest.test_case "source count" `Quick test_source_count_scales;
          Alcotest.test_case "valid bits" `Quick test_valid_bit_count_scales;
          Alcotest.test_case "bad depth" `Quick test_bad_depth_rejected;
        ] );
      ( "timing",
        [
          Alcotest.test_case "fast chains CPI 1" `Quick
            test_fast_chain_never_stalls;
          Alcotest.test_case "late chains stall linearly" `Quick
            test_late_chain_stalls_linearly;
          Alcotest.test_case "distance sweep" `Quick test_late_distance_sweep;
        ] );
    ]
