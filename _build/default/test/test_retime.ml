(* Stage insertion (Machine.Retime): validation, composition with the
   forwarding synthesis, and the performance cost of each split. *)

module R = Machine.Retime
module Spec = Machine.Spec

let dlx (p : Dlx.Progs.t) =
  Dlx.Seq_dlx.machine ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
    ~program:(Dlx.Progs.program p)

let check_deepened ?(times = 1) ~at (p : Dlx.Progs.t) =
  let m = R.deepen (dlx p) ~at ~times in
  (match Machine.Validate.run m with
  | [] -> ()
  | issues ->
    Alcotest.failf "at=%d: %d validation issues" at (List.length issues));
  let tr =
    Pipeline.Transform.run ~hints:(Dlx.Seq_dlx.hints Dlx.Seq_dlx.Base) m
  in
  let report =
    Proof_engine.Consistency.check
      ~max_instructions:p.Dlx.Progs.dyn_instructions tr
  in
  if not (Proof_engine.Consistency.ok report) then
    Alcotest.failf "at=%d inconsistent: %s" at
      (Format.asprintf "%a" Proof_engine.Consistency.pp_report report);
  (tr, report)

let test_shift_stage () =
  Alcotest.(check int) "below" 2 (R.shift_stage ~at:3 2);
  Alcotest.(check int) "at" 4 (R.shift_stage ~at:3 3);
  Alcotest.(check int) "above" 5 (R.shift_stage ~at:3 4)

let test_structure () =
  let p = Dlx.Progs.fib 5 in
  let m = R.insert_passthrough (dlx p) ~at:4 in
  Alcotest.(check int) "six stages" 6 m.Spec.n_stages;
  Alcotest.(check string) "pass stage" "P4" (Spec.stage_of m 4).Spec.stage_name;
  Alcotest.(check int) "pass stage has no writes" 0
    (List.length (Spec.stage_of m 4).Spec.writes);
  (* GPR moved to the new last stage. *)
  Alcotest.(check int) "GPR stage" 5 (Spec.find_register m "GPR").Spec.stage;
  (* The boundary registers grew bridges. *)
  Alcotest.(check bool) "C.4 bridge" true (Spec.register_exists m "C.4@4");
  Alcotest.(check (option string)) "bridge links from C.4" (Some "C.4")
    (Spec.find_register m "C.4@4").Spec.prev_instance;
  (* The C chain now spans three instances. *)
  Alcotest.(check (list string)) "chain" [ "C.4@4"; "C.4"; "C.3" ]
    (Spec.instance_chain m "C.4@4")

let test_all_single_splits_consistent () =
  let p = Dlx.Progs.bubble_sort [ 4; 1; 3; 2 ] in
  List.iter (fun at -> ignore (check_deepened ~at p)) [ 1; 2; 3; 4 ]

let test_repeated_split_consistent () =
  let p = Dlx.Progs.memcpy 5 in
  ignore (check_deepened ~at:3 ~times:2 p);
  ignore (check_deepened ~at:4 ~times:3 p)

let test_forwarding_sources_grow () =
  (* Splitting EX/MEM adds one forwarding source to the GPR rules. *)
  let p = Dlx.Progs.fib 5 in
  let tr, _ = check_deepened ~at:3 p in
  match
    Pipeline.Transform.find_rule tr ~stage:1
      ~operand:(Pipeline.Fwd_spec.File_port ("GPR", 0))
  with
  | Some r ->
    Alcotest.(check int) "four sources" 4
      (List.length r.Pipeline.Transform.sources)
  | None -> Alcotest.fail "rule missing"

let test_split_costs () =
  (* Splitting MEM/WB is nearly free; splitting EX/MEM costs an extra
     load-use stall per dependent load. *)
  let p = Dlx.Progs.hazard_load_use 8 in
  let base =
    let tr =
      Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
        ~program:(Dlx.Progs.program p)
    in
    (Pipeline.Pipesem.run ~stop_after:p.Dlx.Progs.dyn_instructions tr)
      .Pipeline.Pipesem.stats.Pipeline.Pipesem.cycles
  in
  let _, r_memwb = check_deepened ~at:4 p in
  let _, r_exmem = check_deepened ~at:3 p in
  let c_memwb = r_memwb.Proof_engine.Consistency.stats.Pipeline.Pipesem.cycles in
  let c_exmem = r_exmem.Proof_engine.Consistency.stats.Pipeline.Pipesem.cycles in
  (* One extra fill cycle for the longer pipe in both cases... *)
  Alcotest.(check int) "MEM/WB split: fill only" (base + 1) c_memwb;
  (* ...plus one extra stall per load-use pair for the EX/MEM split. *)
  Alcotest.(check int) "EX/MEM split: stalls grow" (base + 1 + 8) c_exmem

let test_elastic_vs_retimed_toy () =
  (* Deepening the 3-stage toy machine must keep its semantics. *)
  let m = Core.Toy.machine ~program:Core.Toy.default_program in
  let m' = R.deepen m ~at:2 ~times:2 in
  Alcotest.(check int) "five stages" 5 m'.Spec.n_stages;
  let tr = Pipeline.Transform.run ~hints:Core.Toy.hints m' in
  let report = Proof_engine.Consistency.check ~max_instructions:6 tr in
  Alcotest.(check bool) "consistent" true (Proof_engine.Consistency.ok report)

let test_bad_positions () =
  let m = Core.Toy.machine ~program:[] in
  (match R.insert_passthrough m ~at:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "at=0 accepted");
  match R.insert_passthrough m ~at:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "at=n accepted"

let test_written_file_rejected () =
  (* Splitting between MEM's write and a same-stage read of the data
     memory is fine (both shift); but a machine where a written file
     crosses the boundary must be rejected.  Construct one: the toy
     writes REG in stage 2 and reads it in stage 1 — inserting between
     them is fine (forwarding) — so craft a machine where stage at
     reads a file written by stage at-1. *)
  let module E = Hw.Expr in
  let m = Core.Toy.machine ~program:[] in
  (* Make stage 2 read REG (written by itself: stage 2).  Insert at 2:
     the boundary producer would be stage 1 — not the file — so this
     stays legal; instead shift REG's ownership to stage 1 to force the
     illegal case. *)
  let m =
    {
      m with
      Spec.registers =
        List.map
          (fun (r : Spec.register) ->
            if r.Spec.reg_name = "IMEM" then { r with Spec.stage = 0 } else r)
          m.Spec.registers;
    }
  in
  ignore m;
  (* IMEM is never written, so splitting at 1 re-assigns it (legal). *)
  let m' = R.insert_passthrough m ~at:1 in
  Alcotest.(check bool) "imem reassigned or kept local" true
    ((Spec.find_register m' "IMEM").Spec.stage <= 2)

let () =
  Alcotest.run "retime"
    [
      ( "structure",
        [
          Alcotest.test_case "shift_stage" `Quick test_shift_stage;
          Alcotest.test_case "inserted stage" `Quick test_structure;
          Alcotest.test_case "bad positions" `Quick test_bad_positions;
          Alcotest.test_case "rom crossing" `Quick test_written_file_rejected;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "all single splits" `Slow
            test_all_single_splits_consistent;
          Alcotest.test_case "repeated splits" `Slow
            test_repeated_split_consistent;
          Alcotest.test_case "toy deepened" `Quick test_elastic_vs_retimed_toy;
        ] );
      ( "effects",
        [
          Alcotest.test_case "forwarding grows" `Quick
            test_forwarding_sources_grow;
          Alcotest.test_case "split costs" `Quick test_split_costs;
        ] );
    ]
