(* Tests for the combinational expression IR: width checking,
   evaluation, traversal and substitution. *)

module E = Hw.Expr
module B = Hw.Bitvec

let bv ~width v = B.make ~width v
let env bindings = Hw.Eval.env_of_assoc bindings
let eval_int e bindings = B.to_int (Hw.Eval.eval (env bindings) e)

let test_widths () =
  Alcotest.(check int) "const" 8 (E.width (E.const_int ~width:8 5));
  Alcotest.(check int) "add" 8
    (E.width (E.( +: ) (E.input "a" 8) (E.input "b" 8)));
  Alcotest.(check int) "eq is 1 bit" 1
    (E.width (E.( ==: ) (E.input "a" 8) (E.input "b" 8)));
  Alcotest.(check int) "concat" 12
    (E.width (E.Concat (E.input "a" 8, E.input "b" 4)));
  Alcotest.(check int) "slice" 3
    (E.width (E.slice (E.input "a" 8) ~hi:4 ~lo:2));
  Alcotest.(check int) "mux" 8
    (E.width (E.Mux (E.input "s" 1, E.input "a" 8, E.input "b" 8)))

let test_ill_typed () =
  let bad = E.( +: ) (E.input "a" 8) (E.input "b" 4) in
  (match E.check bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected width error");
  let bad_mux = E.Mux (E.input "s" 2, E.input "a" 8, E.input "b" 8) in
  (match E.check bad_mux with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected mux select error");
  match E.check (E.Slice (E.input "a" 8, 9, 0)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected slice range error"

let test_eval_basic () =
  let a = E.input "a" 8 and b = E.input "b" 8 in
  let bindings = [ ("a", bv ~width:8 12); ("b", bv ~width:8 200) ] in
  Alcotest.(check int) "add" 212 (eval_int (E.( +: ) a b) bindings);
  Alcotest.(check int) "sub wraps" ((12 - 200) land 255)
    (eval_int (E.( -: ) a b) bindings);
  Alcotest.(check int) "mux true" 12
    (eval_int (E.mux E.tru a b) bindings);
  Alcotest.(check int) "slice" 3 (eval_int (E.slice a ~hi:3 ~lo:2) bindings);
  Alcotest.(check int) "sext" 0xFC8
    (eval_int (E.Sext (E.input "b" 8, 12)) bindings)

let test_eval_reductions () =
  let a = E.input "a" 4 in
  Alcotest.(check int) "reduce_or nonzero" 1
    (eval_int (E.reduce_or a) [ ("a", bv ~width:4 2) ]);
  Alcotest.(check int) "reduce_or zero" 0
    (eval_int (E.reduce_or a) [ ("a", bv ~width:4 0) ]);
  Alcotest.(check int) "reduce_and ones" 1
    (eval_int (E.reduce_and a) [ ("a", bv ~width:4 15) ]);
  Alcotest.(check int) "reduce_and partial" 0
    (eval_int (E.reduce_and a) [ ("a", bv ~width:4 7) ])

let test_eval_shifts () =
  let a = E.input "a" 8 and sh = E.input "sh" 3 in
  let bindings = [ ("a", bv ~width:8 0b10010110); ("sh", bv ~width:3 2) ] in
  Alcotest.(check int) "shl" 0b01011000
    (eval_int (E.Binop (E.Shl, a, sh)) bindings);
  Alcotest.(check int) "sra" 0b11100101
    (eval_int (E.Binop (E.Sra, a, sh)) bindings)

let test_file_read () =
  let e =
    E.File_read { file = "RF"; data_width = 8; addr = E.input "a" 2 }
  in
  let files = [ ("RF", fun addr -> bv ~width:8 (10 + B.to_int addr)) ] in
  let env = Hw.Eval.env_of_assoc ~files [ ("a", bv ~width:2 3) ] in
  Alcotest.(check int) "file read" 13 (B.to_int (Hw.Eval.eval env e))

let test_unknown_input () =
  Alcotest.check_raises "unknown" (Hw.Eval.Eval_error "unknown input nope")
    (fun () -> ignore (Hw.Eval.eval (env []) (E.input "nope" 4)))

let test_inputs_and_files () =
  let e =
    E.( +: )
      (E.input "x" 8)
      (E.mux (E.input "s" 1)
         (E.File_read { file = "RF"; data_width = 8; addr = E.input "x" 8 })
         (E.input "y" 8))
  in
  Alcotest.(check (list (pair string int)))
    "inputs once, in order"
    [ ("x", 8); ("s", 1); ("y", 8) ]
    (E.inputs e);
  Alcotest.(check (list (pair string int))) "files" [ ("RF", 8) ] (E.file_reads e)

let test_subst () =
  let e = E.( +: ) (E.input "x" 8) (E.input "y" 8) in
  let e' = E.subst (fun n -> if n = "x" then Some (E.const_int ~width:8 7) else None) e in
  Alcotest.(check int) "substituted" 9 (eval_int e' [ ("y", bv ~width:8 2) ]);
  Alcotest.check_raises "width mismatch"
    (E.Ill_typed "subst for y: width 4, want 8") (fun () ->
      ignore (E.subst (fun _ -> Some (E.const_int ~width:4 0)) e))

let test_subst_file_read () =
  let e = E.File_read { file = "RF"; data_width = 8; addr = E.input "a" 2 } in
  let e' =
    E.subst_file_read
      (fun ~file ~addr:_ ->
        if file = "RF" then Some (E.const_int ~width:8 99) else None)
      e
  in
  Alcotest.(check int) "replaced" 99 (eval_int e' [])

let test_smart_constructors () =
  Alcotest.(check bool) "true && e = e" true
    (E.equal (E.( &&: ) E.tru (E.input "x" 1)) (E.input "x" 1));
  Alcotest.(check bool) "false && e = false" true
    (E.equal (E.( &&: ) E.fls (E.input "x" 1)) E.fls);
  Alcotest.(check bool) "false || e = e" true
    (E.equal (E.( ||: ) E.fls (E.input "x" 1)) (E.input "x" 1));
  Alcotest.(check bool) "not not" true
    (E.equal (E.not_ (E.not_ (E.input "x" 1))) (E.input "x" 1));
  Alcotest.(check bool) "const mux folds" true
    (E.equal (E.mux E.tru (E.input "a" 4) (E.input "b" 4)) (E.input "a" 4))

let test_size () =
  Alcotest.(check int) "size" 3
    (E.size (E.( +: ) (E.input "a" 4) (E.input "b" 4)))

(* Property: mux_cases behaves as a priority chain. *)
let prop_mux_cases =
  QCheck.Test.make ~name:"mux_cases priority" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 0 6) (pair bool (int_bound 255)))
    (fun cases ->
      let exprs =
        List.map
          (fun (c, v) -> (E.bool_of c, E.const_int ~width:8 v))
          cases
      in
      let e = E.mux_cases ~default:(E.const_int ~width:8 111) exprs in
      let expected =
        match List.find_opt fst cases with
        | Some (_, v) -> v
        | None -> 111
      in
      eval_int e [] = expected)

(* Property: evaluation width always matches the static width. *)
let arb_expr =
  let open QCheck.Gen in
  let rec gen depth w =
    if depth = 0 then
      oneof
        [
          (int_bound 1000 >|= fun v -> E.const_int ~width:w v);
          return (E.input (Printf.sprintf "v%d" w) w);
        ]
    else
      frequency
        [
          (2, gen 0 w);
          ( 3,
            oneofl [ E.Add; E.Sub; E.And; E.Or; E.Xor ] >>= fun op ->
            gen (depth - 1) w >>= fun a ->
            gen (depth - 1) w >|= fun b -> E.Binop (op, a, b) );
          ( 1,
            gen (depth - 1) 1 >>= fun s ->
            gen (depth - 1) w >>= fun a ->
            gen (depth - 1) w >|= fun b -> E.Mux (s, a, b) );
          (1, gen (depth - 1) w >|= fun a -> E.Unop (E.Not, a));
        ]
  in
  QCheck.make
    ~print:E.to_string
    (int_range 1 16 >>= fun w -> gen 3 w >|= fun e -> e)

let prop_eval_width =
  QCheck.Test.make ~name:"evaluation width = static width" ~count:300 arb_expr
    (fun e ->
      let bindings =
        List.map (fun (n, w) -> (n, bv ~width:w 3)) (E.inputs e)
      in
      B.width (Hw.Eval.eval (env bindings) e) = E.width e)

let () =
  Alcotest.run "expr"
    [
      ( "unit",
        [
          Alcotest.test_case "widths" `Quick test_widths;
          Alcotest.test_case "ill-typed" `Quick test_ill_typed;
          Alcotest.test_case "eval basic" `Quick test_eval_basic;
          Alcotest.test_case "eval reductions" `Quick test_eval_reductions;
          Alcotest.test_case "eval shifts" `Quick test_eval_shifts;
          Alcotest.test_case "file read" `Quick test_file_read;
          Alcotest.test_case "unknown input" `Quick test_unknown_input;
          Alcotest.test_case "inputs / files" `Quick test_inputs_and_files;
          Alcotest.test_case "subst" `Quick test_subst;
          Alcotest.test_case "subst file read" `Quick test_subst_file_read;
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "size" `Quick test_size;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_mux_cases; prop_eval_width ]
      );
    ]
