(* The hardware inventory (paper figure 2) and signal costing. *)

let fib = Dlx.Progs.fib 5

let dlx_transform () =
  Dlx.Seq_dlx.transform ~data:fib.Dlx.Progs.data Dlx.Seq_dlx.Base
    ~program:(Dlx.Progs.program fib)

let test_figure2_inventory () =
  let tr = dlx_transform () in
  let inv = Pipeline.Report.inventory tr in
  let gpr_rules =
    (* sum_operand carries the port: "GPR (port 0)" / "GPR (port 1)". *)
    List.filter
      (fun (r : Pipeline.Report.rule_summary) ->
        String.starts_with ~prefix:"GPR" r.Pipeline.Report.sum_operand)
      inv
  in
  (* Two GPR read ports, each figure 2's structure exactly: hit
     signals for stages 2..4, one =? tester each, a 3-deep mux chain
     over C.3 / C.4 / Din before the register read. *)
  Alcotest.(check int) "two GPR operands" 2 (List.length gpr_rules);
  List.iter
    (fun (r : Pipeline.Report.rule_summary) ->
      Alcotest.(check int) "hit signals" 3 r.Pipeline.Report.sum_hit_signals;
      Alcotest.(check int) "eq testers" 3 r.Pipeline.Report.sum_eq_testers;
      Alcotest.(check int) "muxes" 3 r.Pipeline.Report.sum_mux_count;
      Alcotest.(check int) "consumer stage" 1 r.Pipeline.Report.sum_consumer;
      Alcotest.(check int) "writer stage" 4 r.Pipeline.Report.sum_writer)
    gpr_rules

let test_signal_cost () =
  let tr = dlx_transform () in
  let cost = Pipeline.Report.signal_cost tr "$g_1_GPRa" in
  Alcotest.(check bool) "positive gate count" true (cost.Hw.Cost.gates > 0);
  Alcotest.check_raises "unknown signal" Not_found (fun () ->
      ignore (Pipeline.Report.signal_cost tr "$no_such_signal"))

let () =
  Alcotest.run "report"
    [
      ( "report",
        [
          Alcotest.test_case "figure 2 inventory" `Quick
            test_figure2_inventory;
          Alcotest.test_case "signal cost" `Quick test_signal_cost;
        ] );
    ]
