(* Shared-netlist costing. *)

module E = Hw.Expr
module N = Hw.Netlist

let x = E.input "x" 8
let y = E.input "y" 8

let test_no_sharing () =
  let e = E.( +: ) x y in
  let n = N.of_expr e in
  Alcotest.(check int) "shared = tree" (N.tree_gates n) (N.shared_gates n);
  Alcotest.(check (float 0.001)) "ratio 1" 1.0 (N.sharing_ratio n)

let test_shared_subterm () =
  (* (x+y) used twice: the adder is paid once in the shared count. *)
  let sum = E.( +: ) x y in
  let e = E.Binop (E.And, sum, E.Binop (E.Or, sum, y)) in
  let n = N.of_expr e in
  let adder = (Hw.Cost.of_expr sum).Hw.Cost.gates in
  Alcotest.(check int) "tree double-counts"
    (N.shared_gates n + adder)
    (N.tree_gates n);
  Alcotest.(check bool) "ratio < 1" true (N.sharing_ratio n < 1.0)

let test_across_signals () =
  (* The same expression appearing in two signals is shared. *)
  let sum = E.( +: ) x y in
  let n = N.of_signals [ ("a", sum); ("b", E.Unop (E.Not, sum)) ] in
  let adder = (Hw.Cost.of_expr sum).Hw.Cost.gates in
  Alcotest.(check int) "one adder + one inverter" (adder + 8)
    (N.shared_gates n)

let test_tree_network_shares_prefixes () =
  (* The find-first-one network reuses its prefix OR terms: sharing
     must find substantial reuse in the Tree selection network. *)
  let e =
    Pipeline.Mux_impl.build_network ~impl:Hw.Circuits.Tree ~sources:16
      ~data_width:32
  in
  let n = N.of_expr e in
  Alcotest.(check bool) "strict reuse" true (N.shared_gates n < N.tree_gates n)

let test_dlx_signals () =
  let p = Dlx.Progs.fib 5 in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  let n = N.of_signals tr.Pipeline.Transform.signals in
  Alcotest.(check bool) "nonempty" true (N.node_count n > 100);
  Alcotest.(check bool) "sharing found" true (N.sharing_ratio n <= 1.0);
  Alcotest.(check bool) "shared <= tree" true
    (N.shared_gates n <= N.tree_gates n)

let () =
  Alcotest.run "netlist"
    [
      ( "sharing",
        [
          Alcotest.test_case "no sharing" `Quick test_no_sharing;
          Alcotest.test_case "shared subterm" `Quick test_shared_subterm;
          Alcotest.test_case "across signals" `Quick test_across_signals;
          Alcotest.test_case "tree network prefixes" `Quick
            test_tree_network_shares_prefixes;
          Alcotest.test_case "dlx control logic" `Quick test_dlx_signals;
        ] );
    ]
