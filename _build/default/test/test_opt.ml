(* The combinational simplifier: identities, folding, and the
   soundness contract (simplify preserves semantics and width). *)

module E = Hw.Expr
module O = Hw.Opt
module B = Hw.Bitvec

let x = E.input "x" 8
let s = E.input "s" 1

let check_simplifies msg expected e =
  Alcotest.(check string) msg (E.to_string expected) (E.to_string (O.simplify e))

let test_constant_folding () =
  check_simplifies "add" (E.const_int ~width:8 7)
    (E.( +: ) (E.const_int ~width:8 3) (E.const_int ~width:8 4));
  check_simplifies "nested"
    (E.const_int ~width:8 12)
    (E.Binop
       (E.And, E.const_int ~width:8 0xFC,
        E.( +: ) (E.const_int ~width:8 6) (E.const_int ~width:8 6)));
  check_simplifies "slice of const" (E.const_int ~width:4 0xA)
    (E.slice (E.const_int ~width:8 0xA5) ~hi:7 ~lo:4)

let test_identities () =
  check_simplifies "x & 0" (E.const_int ~width:8 0)
    (E.Binop (E.And, x, E.const_int ~width:8 0));
  check_simplifies "x & ones" x (E.Binop (E.And, x, E.Const (B.ones 8)));
  check_simplifies "x | 0" x (E.Binop (E.Or, x, E.const_int ~width:8 0));
  check_simplifies "x ^ x" (E.const_int ~width:8 0) (E.( ^: ) x x);
  check_simplifies "x & x" x (E.Binop (E.And, x, x));
  check_simplifies "x + 0" x (E.( +: ) x (E.const_int ~width:8 0));
  check_simplifies "x - 0" x (E.( -: ) x (E.const_int ~width:8 0));
  check_simplifies "x == x" E.tru (E.( ==: ) x x);
  check_simplifies "x != x" E.fls (E.( <>: ) x x);
  check_simplifies "not not" s (E.Unop (E.Not, E.Unop (E.Not, s)));
  check_simplifies "shift by 0" x
    (E.Binop (E.Shl, x, E.const_int ~width:3 0))

let test_mux () =
  check_simplifies "same branches" x (E.Mux (s, x, x));
  check_simplifies "select itself" s
    (E.Mux (s, E.tru, E.fls));
  check_simplifies "inverted select" (E.not_ s)
    (E.Mux (s, E.fls, E.tru));
  check_simplifies "const select" x
    (E.Mux (E.tru, x, E.input "y" 8))

let test_extensions () =
  check_simplifies "zext same width" x (E.Zext (x, 8));
  check_simplifies "full slice" x (E.Slice (x, 7, 0));
  check_simplifies "slice under zext" (E.Slice (x, 3, 1))
    (E.Slice (E.Zext (x, 16), 3, 1))

let test_stats () =
  let e = E.( +: ) (E.const_int ~width:8 1) (E.const_int ~width:8 2) in
  let st = O.measure e in
  Alcotest.(check int) "before" 3 st.O.nodes_before;
  Alcotest.(check int) "after" 1 st.O.nodes_after;
  Alcotest.(check bool) "gates drop" true (st.O.gates_after < st.O.gates_before)

(* Soundness: simplify preserves evaluation and width on random
   expressions over a fixed environment shape. *)
let arb_expr =
  let open QCheck.Gen in
  let rec gen depth w =
    if depth = 0 then
      oneof
        [
          (int_bound 300 >|= fun v -> E.const_int ~width:w v);
          return (E.input (Printf.sprintf "v%d" w) w);
          return (E.const_int ~width:w 0);
          return (E.Const (B.ones w));
        ]
    else
      frequency
        [
          (2, gen 0 w);
          ( 4,
            oneofl [ E.Add; E.Sub; E.And; E.Or; E.Xor; E.Shl; E.Shr ]
            >>= fun op ->
            gen (depth - 1) w >>= fun a ->
            gen (depth - 1) w >|= fun b -> E.Binop (op, a, b) );
          ( 2,
            oneofl [ E.Eq; E.Ne; E.Ltu; E.Lts ] >>= fun op ->
            gen (depth - 1) w >>= fun a ->
            gen (depth - 1) w >|= fun b ->
            E.Zext (E.Binop (op, a, b), w) );
          ( 2,
            gen (depth - 1) 1 >>= fun sel ->
            gen (depth - 1) w >>= fun a ->
            gen (depth - 1) w >|= fun b -> E.Mux (sel, a, b) );
          (1, gen (depth - 1) w >|= fun a -> E.Unop (E.Not, a));
          ( 1,
            gen (depth - 1) w >|= fun a ->
            if w + 4 <= B.max_width then E.Slice (E.Zext (a, w + 4), w - 1, 0)
            else a );
        ]
  in
  QCheck.make ~print:E.to_string
    (int_range 1 12 >>= fun w -> gen 4 w)

let prop_sound =
  QCheck.Test.make ~name:"simplify preserves semantics" ~count:1000 arb_expr
    (fun e ->
      let e' = O.simplify e in
      if E.width e' <> E.width e then false
      else
        (* Try several environments. *)
        List.for_all
          (fun salt ->
            let env =
              Hw.Eval.env_of_assoc
                (List.map
                   (fun (n, w) -> (n, B.make ~width:w (salt * 37)))
                   (E.inputs e))
            in
            B.equal (Hw.Eval.eval env e) (Hw.Eval.eval env e'))
          [ 0; 1; 2; 5; 255 ])

let prop_never_grows =
  QCheck.Test.make ~name:"simplify never grows the tree" ~count:500 arb_expr
    (fun e -> E.size (O.simplify e) <= E.size e)

(* The optimized transform stays consistent. *)
let test_optimized_machine_consistent () =
  let p = Dlx.Progs.bubble_sort [ 3; 1; 2 ] in
  let tr =
    Pipeline.Transform.optimize
      (Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
         ~program:(Dlx.Progs.program p))
  in
  let n = p.Dlx.Progs.dyn_instructions in
  let reference =
    Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p) ~instructions:n
  in
  let report = Proof_engine.Consistency.check ~max_instructions:n ~reference tr in
  Alcotest.(check bool) "consistent" true (Proof_engine.Consistency.ok report)

let () =
  Alcotest.run "opt"
    [
      ( "rewrites",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "identities" `Quick test_identities;
          Alcotest.test_case "mux" `Quick test_mux;
          Alcotest.test_case "extensions" `Quick test_extensions;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "soundness",
        List.map QCheck_alcotest.to_alcotest [ prop_sound; prop_never_grows ]
      );
      ( "integration",
        [
          Alcotest.test_case "optimized machine" `Quick
            test_optimized_machine_consistent;
        ] );
    ]
