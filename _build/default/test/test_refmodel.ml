(* The ISA golden model: kernel results, delay-slot semantics, subword
   loads and the interrupt machinery. *)

module R = Dlx.Refmodel
module I = Dlx.Isa
module P = Dlx.Progs

let run_prog (p : P.t) =
  let s = R.create ~data:p.P.data ~program:(P.program p) () in
  R.run s ~steps:p.P.dyn_instructions;
  s

let fib n =
  let rec go a b n = if n = 0 then a else go b (a + b) (n - 1) in
  go 0 1 n

let test_fib () =
  let s = run_prog (P.fib 10) in
  (* The loop leaves f(n+1) in r3. *)
  Alcotest.(check int) "fib" (fib 11) s.R.gpr.(3)

let test_memcpy () =
  let p = P.memcpy 8 in
  let s = run_prog p in
  for i = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "word %d" i)
      ((i * 37) + 11)
      s.R.mem.(128 + i)
  done

let test_dot_product () =
  let p = P.dot_product 6 in
  let s = run_prog p in
  let expected = ref 0 in
  for i = 0 to 5 do
    expected := !expected + (i * 7 mod 251 * (i * 13 mod 239))
  done;
  Alcotest.(check int) "dot" !expected s.R.gpr.(10)

let test_bubble_sort () =
  let values = [ 9; 3; 7; 1; 8; 2 ] in
  let s = run_prog (P.bubble_sort values) in
  let sorted = List.sort compare values in
  List.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) v s.R.mem.(64 + i))
    sorted

let test_delay_slot () =
  (* The instruction after a taken branch executes. *)
  let program =
    List.map I.encode
      [
        I.Addi (1, 0, 1);
        I.J 8;              (* at 4: target 4+4+8 = 16 *)
        I.Addi (2, 0, 2);   (* delay slot at 8: executes *)
        I.Addi (3, 0, 3);   (* at 12: skipped *)
        I.Addi (4, 0, 4);   (* at 16: target *)
      ]
  in
  let s = R.create ~program () in
  R.run s ~steps:4;
  Alcotest.(check int) "r1" 1 s.R.gpr.(1);
  Alcotest.(check int) "delay slot ran" 2 s.R.gpr.(2);
  Alcotest.(check int) "skipped" 0 s.R.gpr.(3);
  Alcotest.(check int) "target ran" 4 s.R.gpr.(4)

let test_jal_link () =
  let program = List.map I.encode [ I.Jal 8; I.Nop; I.Nop; I.Nop; I.Nop ] in
  let s = R.create ~program () in
  R.step s;
  (* Link = pc + 4 = address after the delay slot = 8. *)
  Alcotest.(check int) "r31" 8 s.R.gpr.(31)

let test_r0_immutable () =
  let program = List.map I.encode [ I.Addi (0, 0, 5); I.Add (0, 1, 1) ] in
  let s = R.create ~program () in
  R.run s ~steps:2;
  Alcotest.(check int) "r0" 0 s.R.gpr.(0)

let test_subword_loads () =
  let p = P.subword_loads in
  let s = run_prog p in
  (* Cross-check against direct extraction. *)
  let word = 0x807F01FF in
  let b0 = word land 0xFF and b1 = (word lsr 8) land 0xFF in
  let b2 = (word lsr 16) land 0xFF and b3 = (word lsr 24) land 0xFF in
  let sext8 v = if v land 0x80 <> 0 then (v - 0x100) land 0xFFFFFFFF else v in
  let sext16 v = if v land 0x8000 <> 0 then (v - 0x10000) land 0xFFFFFFFF else v in
  let h0 = word land 0xFFFF and h1 = (word lsr 16) land 0xFFFF in
  let word2 = 0x12345678 in
  let expected =
    List.fold_left ( lxor ) 0
      [ sext8 b0; b1; sext8 b2; b3; sext16 h0; h1;
        sext16 (word2 land 0xFFFF); (word2 lsr 16) land 0xFFFF ]
  in
  Alcotest.(check int) "xor of subword loads" expected s.R.gpr.(10);
  Alcotest.(check int) "stored" expected s.R.mem.(68)

let test_strlen () =
  let text = "automated pipeline design" in
  let s = run_prog (P.strlen text) in
  Alcotest.(check int) "length" (String.length text) s.R.gpr.(10)

let test_checksum () =
  let n = 8 in
  let s = run_prog (P.checksum n) in
  let rotl3 x = ((x lsl 3) lor (x lsr 29)) land 0xFFFFFFFF in
  let expected = ref 0 in
  for i = 0 to n - 1 do
    expected := rotl3 (!expected lxor ((i * 2654435761) land 0xFFFFFF))
  done;
  Alcotest.(check int) "checksum" !expected s.R.gpr.(10);
  Alcotest.(check int) "stored" !expected s.R.mem.(108)

let test_overflow_interrupt () =
  let config = { R.with_interrupts = true; sisr = 8 } in
  let p = P.overflow_trap in
  let s = R.create ~data:p.P.data ~program:(P.program p) () in
  R.run ~config s ~steps:p.P.dyn_instructions;
  Alcotest.(check int) "isr count" 3 s.R.mem.(100);
  (* The overflowing adds were aborted. *)
  Alcotest.(check int) "r3 untouched" 0 s.R.gpr.(3);
  Alcotest.(check int) "r6 untouched" 0 s.R.gpr.(6);
  (* The non-faulting instructions completed. *)
  Alcotest.(check int) "r2" 7 s.R.gpr.(2);
  Alcotest.(check int) "r4" 9 s.R.gpr.(4);
  Alcotest.(check int) "r5" 11 s.R.gpr.(5);
  Alcotest.(check int) "r7" 13 s.R.gpr.(7);
  Alcotest.(check int) "sr re-enabled" 1 s.R.sr

let test_trap_cause () =
  let config = { R.with_interrupts = true; sisr = 8 } in
  let program = List.map I.encode [ I.Nop; I.Nop; I.Nop; I.Trap 5 ] in
  let s = R.create ~program () in
  (* skip to the trap at index 3 *)
  R.run ~config s ~steps:4;
  Alcotest.(check int) "cause" (0x20 lor 5) s.R.eca;
  Alcotest.(check int) "sr masked" 0 s.R.sr;
  Alcotest.(check int) "edpc = successor" 16 s.R.edpc;
  Alcotest.(check int) "dpc at handler" 8 s.R.dpc

let test_interrupts_off_by_config () =
  let program = List.map I.encode [ I.Trap 1; I.Addi (1, 0, 9) ] in
  let s = R.create ~program () in
  R.run s ~steps:2;
  Alcotest.(check int) "trap was a nop" 9 s.R.gpr.(1)

let test_wraparound_without_interrupts () =
  let program =
    List.map I.encode
      [ I.Lhi (1, 0x7FFF); I.Ori (1, 1, 0xFFFF); I.Addi (2, 1, 1) ]
  in
  let s = R.create ~program () in
  R.run s ~steps:3;
  Alcotest.(check int) "wraps" 0x80000000 s.R.gpr.(2)

let () =
  Alcotest.run "refmodel"
    [
      ( "kernels",
        [
          Alcotest.test_case "fib" `Quick test_fib;
          Alcotest.test_case "memcpy" `Quick test_memcpy;
          Alcotest.test_case "dot product" `Quick test_dot_product;
          Alcotest.test_case "bubble sort" `Quick test_bubble_sort;
          Alcotest.test_case "subword loads" `Quick test_subword_loads;
          Alcotest.test_case "strlen" `Quick test_strlen;
          Alcotest.test_case "checksum" `Quick test_checksum;
        ] );
      ( "control",
        [
          Alcotest.test_case "delay slot" `Quick test_delay_slot;
          Alcotest.test_case "jal link" `Quick test_jal_link;
          Alcotest.test_case "r0 immutable" `Quick test_r0_immutable;
        ] );
      ( "interrupts",
        [
          Alcotest.test_case "overflow + trap" `Quick test_overflow_interrupt;
          Alcotest.test_case "trap cause" `Quick test_trap_cause;
          Alcotest.test_case "config off" `Quick test_interrupts_off_by_config;
          Alcotest.test_case "wraparound" `Quick
            test_wraparound_without_interrupts;
        ] );
    ]
