(* Integration tests of the DLX case study (paper §4.2): the prepared
   sequential machine against the golden model, and the transformed
   pipeline against both, across kernels, random programs, operating
   modes, external stalls and the speculation variants. *)

module P = Pipeline.Pipesem
module F = Pipeline.Fwd_spec
module Progs = Dlx.Progs
module SD = Dlx.Seq_dlx

let transform ?options ?(variant = SD.Base) (p : Progs.t) =
  SD.transform ?options ~data:p.Progs.data variant
    ~program:(Progs.program p)

let check_consistent ?ext ?options ?(variant = SD.Base) (p : Progs.t) =
  let tr = transform ?options ~variant p in
  let n = p.Progs.dyn_instructions in
  let reference =
    SD.ref_trace ~data:p.Progs.data variant ~program:(Progs.program p)
      ~instructions:n
  in
  let report = Proof_engine.Consistency.check ?ext ~max_instructions:n ~reference tr in
  if not (Proof_engine.Consistency.ok report) then
    Alcotest.failf "%s inconsistent: %s" p.Progs.prog_name
      (Format.asprintf "%a" Proof_engine.Consistency.pp_report report);
  report

(* ---------------- sequential machine vs golden model ---------------- *)

let test_seqsem_matches_refmodel () =
  List.iter
    (fun (p : Progs.t) ->
      let program = Progs.program p in
      let m = SD.machine ~data:p.Progs.data SD.Base ~program in
      let n = p.Progs.dyn_instructions in
      let seq = Machine.Seqsem.run ~max_instructions:n m in
      let refr = SD.ref_trace ~data:p.Progs.data SD.Base ~program ~instructions:n in
      for i = 0 to n do
        List.iter
          (fun (name, v) ->
            match List.assoc_opt name refr.Machine.Seqsem.spec_before.(i) with
            | Some v' ->
              if not (Machine.Value.equal v v') then
                Alcotest.failf "%s: instr %d register %s differs"
                  p.Progs.prog_name i name
            | None -> ())
          seq.Machine.Seqsem.spec_before.(i)
      done)
    Progs.all_kernels

(* ---------------- pipelined consistency ---------------- *)

let test_kernels_consistent () =
  List.iter (fun p -> ignore (check_consistent p)) Progs.all_kernels

let test_kernels_consistent_tree_impl () =
  let options = { F.mode = F.Full; impl = Hw.Circuits.Tree } in
  List.iter
    (fun p -> ignore (check_consistent ~options p))
    [ Progs.fib 8; Progs.hazard_load_use 6; Progs.bubble_sort [ 3; 1; 2 ] ]

let test_kernels_consistent_interlock_only () =
  let options = { F.mode = F.Interlock_only; impl = Hw.Circuits.Chain } in
  List.iter
    (fun p -> ignore (check_consistent ~options p))
    [ Progs.fib 8; Progs.hazard_dependent_chain 10; Progs.memcpy 4 ]

let test_random_programs_consistent () =
  List.iter
    (fun seed ->
      let p = Workload.Gen.generate ~seed ~length:60 Workload.Gen.typical in
      ignore (check_consistent p))
    [ 1; 2; 3; 42; 99 ]

let test_random_memory_heavy_consistent () =
  List.iter
    (fun seed ->
      let p = Workload.Gen.generate ~seed ~length:60 Workload.Gen.memory_heavy in
      ignore (check_consistent p))
    [ 7; 8 ]

let test_ext_stalls_consistent () =
  let ext = Workload.Sweep.memory_wait_states ~every:5 ~wait:2 in
  List.iter
    (fun p -> ignore (check_consistent ~ext p))
    [ Progs.memcpy 6; Progs.hazard_load_use 6 ]

(* ---------------- performance shape ---------------- *)

let cycles ?options ?ext (p : Progs.t) =
  let tr = transform ?options p in
  let r = P.run ?ext ~stop_after:p.Progs.dyn_instructions tr in
  Alcotest.(check bool) "completed" true (r.P.outcome = P.Completed);
  r.P.stats.P.cycles

let test_dependent_chain_no_stalls () =
  (* Back-to-back ALU dependencies: forwarding sustains CPI 1 —
     n instructions need n + (pipeline fill) cycles. *)
  let p = Progs.hazard_dependent_chain 24 in
  Alcotest.(check int) "n + 4 cycles" (p.Progs.dyn_instructions + 4) (cycles p)

let test_load_use_one_stall_each () =
  (* Each load-use pair costs exactly one interlock cycle. *)
  let p = Progs.hazard_load_use 12 in
  Alcotest.(check int) "n + pairs + 4"
    (p.Progs.dyn_instructions + 12 + 4)
    (cycles p)

let test_interlock_only_much_slower () =
  let p = Progs.hazard_dependent_chain 24 in
  let full = cycles p in
  let inter =
    cycles ~options:{ F.mode = F.Interlock_only; impl = Hw.Circuits.Chain } p
  in
  Alcotest.(check bool) "at least 2x slower" true (inter >= 2 * full)

let test_needed_gating_avoids_phantom_stall () =
  (* The I-type destination field occupies the rs2 slot: without the
     operand-usage gating, [lw r2; addi r2, r1, 7] would stall on a
     phantom read of r2. *)
  let open Dlx.Asm in
  let open Dlx.Isa in
  let mk second =
    Progs.
      {
        prog_name = "phantom";
        items =
          [ Insn (Addi (1, 0, 256)); Insn (Lw (2, 1, 0)); Insn second ]
          @ Dlx.Asm.halt;
        data = [ (64, 5) ];
        dyn_instructions = 3;
      }
  in
  let phantom = cycles (mk (Addi (2, 1, 7))) in
  let neutral = cycles (mk (Addi (9, 1, 7))) in
  Alcotest.(check int) "no phantom stall" neutral phantom

let test_real_load_use_still_stalls () =
  let open Dlx.Asm in
  let open Dlx.Isa in
  let mk second =
    Progs.
      {
        prog_name = "real";
        items =
          [ Insn (Addi (1, 0, 256)); Insn (Lw (2, 1, 0)); Insn second ]
          @ Dlx.Asm.halt;
        data = [ (64, 5) ];
        dyn_instructions = 3;
      }
  in
  let dependent = cycles (mk (Add (3, 2, 2))) in
  let independent = cycles (mk (Add (3, 1, 1))) in
  Alcotest.(check int) "one stall" (independent + 1) dependent

(* ---------------- speculation variants ---------------- *)

let test_interrupt_variant_consistent () =
  let p = Progs.overflow_trap in
  let report =
    check_consistent ~variant:(SD.With_interrupts { sisr = 8 }) p
  in
  Alcotest.(check bool) "rollbacks happened" true
    (report.Proof_engine.Consistency.stats.P.rollbacks >= 3)

let test_interrupt_variant_plain_programs () =
  (* Programs without interrupts behave identically on the variant. *)
  List.iter
    (fun p ->
      ignore (check_consistent ~variant:(SD.With_interrupts { sisr = 8 }) p))
    [ Progs.fib 8; Progs.memcpy 4 ]

let test_bp_variant_consistent () =
  List.iter
    (fun p -> ignore (check_consistent ~variant:SD.Branch_predict p))
    [ Progs.fib 8; Progs.branch_heavy 6; Progs.bubble_sort [ 2; 1; 3 ] ]

let test_bp_costs_only_performance () =
  let p = Progs.branch_heavy 8 in
  let base = check_consistent ~variant:SD.Base p in
  let bp = check_consistent ~variant:SD.Branch_predict p in
  Alcotest.(check bool) "bp not faster" true
    (bp.Proof_engine.Consistency.stats.P.cycles
    >= base.Proof_engine.Consistency.stats.P.cycles);
  Alcotest.(check bool) "bp rolled back" true
    (bp.Proof_engine.Consistency.stats.P.rollbacks > 0)

let test_bp_random_consistent () =
  List.iter
    (fun seed ->
      let p =
        Workload.Gen.generate ~seed ~length:50
          (Workload.Gen.branch_heavy ~taken_frac:0.7)
      in
      ignore (check_consistent ~variant:SD.Branch_predict p))
    [ 11; 12 ]

(* ---------------- directed edge cases ---------------- *)

let directed ?(data = []) name items =
  Dlx.Progs.make ~data name items

let test_jal_link_forwarding () =
  (* jal writes r31 via the link path through C; using r31 in the very
     next instructions must forward correctly. *)
  let open Dlx.Asm in
  let open Dlx.Isa in
  let p =
    directed "jal_fwd"
      [
        Jal_l "sub";
        Insn Nop;
        (* the return lands here (link = 8) and skips the subroutine *)
        J_l "end";
        Insn (Addi (10, 0, 99));
        Label "sub";
        Insn (Addi (4, 31, 0));   (* r4 := link, forwarded *)
        Insn (Add (5, 31, 31));
        Insn (Jr 31);
        Insn Nop;
        Label "end";
      ]
  in
  ignore (check_consistent p)

let test_call_return () =
  let open Dlx.Asm in
  let open Dlx.Isa in
  let p =
    directed "call_ret"
      [
        Insn (Addi (1, 0, 3));
        Jal_l "double";
        Insn Nop;
        Insn (Addi (2, 1, 0));  (* after return: r2 := 6 *)
        J_l "end";
        Insn Nop;
        Label "double";
        Insn (Add (1, 1, 1));
        Insn (Jr 31);
        Insn Nop;
        Label "end";
      ]
  in
  let report = check_consistent p in
  ignore report

let test_branch_on_loaded_value () =
  (* beqz on a just-loaded register: the branch condition is a
     forwarded operand with a load-use interlock. *)
  let open Dlx.Asm in
  let open Dlx.Isa in
  let p =
    directed ~data:[ (64, 0); (65, 7) ] "beqz_on_load"
      [
        Insn (Addi (1, 0, 256));
        Insn (Lw (2, 1, 0));   (* 0 *)
        Bnez_l (2, "wrong");
        Insn Nop;
        Insn (Lw (3, 1, 4));   (* 7 *)
        Bnez_l (3, "right");
        Insn Nop;
        Label "wrong";
        Insn (Addi (9, 0, 1)); (* must not execute *)
        Label "right";
        Insn (Addi (10, 0, 2));
      ]
  in
  ignore (check_consistent p)

let test_store_data_forwarding () =
  (* The stored value and the store address are both forwarded
     operands. *)
  let open Dlx.Asm in
  let open Dlx.Isa in
  let p =
    directed "store_fwd"
      [
        Insn (Addi (1, 0, 256));
        Insn (Addi (2, 0, 1234));
        Insn (Sw (1, 2, 0));        (* data forwarded from EX *)
        Insn (Addi (3, 1, 4));
        Insn (Sw (3, 2, 0));        (* address forwarded *)
        Insn (Lw (4, 1, 4));
      ]
  in
  ignore (check_consistent p)

let test_ext_stall_during_forwarding () =
  (* Memory wait states while a load result is being forwarded: the
     taint term must hold the consumer until the stage can complete. *)
  let ext = Workload.Sweep.memory_wait_states ~every:3 ~wait:1 in
  List.iter
    (fun p -> ignore (check_consistent ~ext p))
    [ Progs.hazard_load_use 8; Progs.bubble_sort [ 5; 2; 4; 1 ] ]

let test_random_interrupt_programs () =
  List.iter
    (fun seed ->
      let p =
        Workload.Gen.generate_with_interrupts ~seed ~length:60 ~sisr:8
          Workload.Gen.typical
      in
      let report =
        check_consistent ~variant:(SD.With_interrupts { sisr = 8 }) p
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d rolled back" seed)
        true
        (report.Proof_engine.Consistency.stats.P.rollbacks > 0))
    [ 1; 2; 3; 4; 5 ]

let test_interrupt_during_hazard () =
  (* An overflow retiring while a younger load-use pair is stalled. *)
  let open Dlx.Asm in
  let open Dlx.Isa in
  let p =
    Dlx.Progs.make
      ~config:{ Dlx.Refmodel.with_interrupts = true; sisr = 8 }
      ~data:[ (64, 5) ]
      "intr_during_stall"
      [
        J_l "main";
        Insn Nop;
        Label "isr";
        Insn Rfe;
        Label "main";
        Insn (Lhi (1, 0x7FFF));
        Insn (Ori (1, 1, 0xFFFF));
        Insn (Addi (9, 0, 256));
        Insn (Add (2, 1, 1));   (* overflow resolving in WB... *)
        Insn (Lw (3, 9, 0));    (* ...while this load-use pair *)
        Insn (Add (4, 3, 3));   (* stalls in decode *)
        Insn (Addi (5, 0, 7));
      ]
  in
  ignore (check_consistent ~variant:(SD.With_interrupts { sisr = 8 }) p)

let () =
  Alcotest.run "dlx"
    [
      ( "sequential machine",
        [
          Alcotest.test_case "seqsem = refmodel on kernels" `Slow
            test_seqsem_matches_refmodel;
        ] );
      ( "pipelined consistency",
        [
          Alcotest.test_case "kernels" `Slow test_kernels_consistent;
          Alcotest.test_case "tree impl" `Quick test_kernels_consistent_tree_impl;
          Alcotest.test_case "interlock only" `Quick
            test_kernels_consistent_interlock_only;
          Alcotest.test_case "random programs" `Slow
            test_random_programs_consistent;
          Alcotest.test_case "memory heavy" `Quick
            test_random_memory_heavy_consistent;
          Alcotest.test_case "external stalls" `Quick test_ext_stalls_consistent;
        ] );
      ( "performance shape",
        [
          Alcotest.test_case "dependent chain CPI 1" `Quick
            test_dependent_chain_no_stalls;
          Alcotest.test_case "load-use stalls once" `Quick
            test_load_use_one_stall_each;
          Alcotest.test_case "interlock-only slowdown" `Quick
            test_interlock_only_much_slower;
          Alcotest.test_case "needed gating" `Quick
            test_needed_gating_avoids_phantom_stall;
          Alcotest.test_case "real load-use stalls" `Quick
            test_real_load_use_still_stalls;
        ] );
      ( "directed edge cases",
        [
          Alcotest.test_case "jal link forwarding" `Quick
            test_jal_link_forwarding;
          Alcotest.test_case "call / return" `Quick test_call_return;
          Alcotest.test_case "branch on load" `Quick
            test_branch_on_loaded_value;
          Alcotest.test_case "store forwarding" `Quick
            test_store_data_forwarding;
          Alcotest.test_case "ext during forwarding" `Quick
            test_ext_stall_during_forwarding;
        ] );
      ( "speculation",
        [
          Alcotest.test_case "interrupts consistent" `Quick
            test_interrupt_variant_consistent;
          Alcotest.test_case "random interrupt programs" `Slow
            test_random_interrupt_programs;
          Alcotest.test_case "interrupt during stall" `Quick
            test_interrupt_during_hazard;
          Alcotest.test_case "variant on plain programs" `Quick
            test_interrupt_variant_plain_programs;
          Alcotest.test_case "branch prediction consistent" `Quick
            test_bp_variant_consistent;
          Alcotest.test_case "bp performance only" `Quick
            test_bp_costs_only_performance;
          Alcotest.test_case "bp random programs" `Slow test_bp_random_consistent;
        ] );
    ]
