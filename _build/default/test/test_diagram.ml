(* The instruction/cycle pipeline diagram. *)

let capture (p : Dlx.Progs.t) =
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  fst (Pipeline.Diagram.capture ~stop_after:p.Dlx.Progs.dyn_instructions tr)

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let cells_of_row row =
  String.split_on_char ' ' row |> List.filter (fun c -> c <> "") |> List.tl

let test_smooth_flow () =
  let d = capture (Dlx.Progs.hazard_independent 6) in
  match lines d with
  | _header :: i0 :: i1 :: _ ->
    Alcotest.(check (list string)) "I0 stages"
      [ "IF"; "ID"; "EX"; "ME"; "WB" ]
      (cells_of_row i0);
    (* I1 enters one cycle later, no stalls. *)
    Alcotest.(check (list string)) "I1 stages"
      [ "IF"; "ID"; "EX"; "ME"; "WB" ]
      (cells_of_row i1)
  | _ -> Alcotest.fail "diagram shape"

let test_stall_repeats_stage () =
  let d = capture (Dlx.Progs.hazard_load_use 2) in
  (* The dependent add (I2) repeats ID while the load is in EX. *)
  match lines d with
  | _ :: _ :: _ :: i2 :: _ ->
    let cells = cells_of_row i2 in
    Alcotest.(check (list string)) "load-use stall visible"
      [ "IF"; "ID"; "ID"; "EX"; "ME"; "WB" ]
      cells
  | _ -> Alcotest.fail "diagram shape"

let test_rollback_marked () =
  let p = Dlx.Progs.overflow_trap in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data
      (Dlx.Seq_dlx.With_interrupts { sisr = 8 })
      ~program:(Dlx.Progs.program p)
  in
  let d, _ = Pipeline.Diagram.capture ~stop_after:p.Dlx.Progs.dyn_instructions tr in
  Alcotest.(check bool) "squash marker present" true
    (String.split_on_char 'x' d |> List.length > 1)

let test_row_count () =
  let d = capture (Dlx.Progs.hazard_independent 4) in
  (* Header + one row per fetched instruction (incl. over-fetch). *)
  Alcotest.(check bool) "several rows" true (List.length (lines d) >= 5)

let () =
  Alcotest.run "diagram"
    [
      ( "render",
        [
          Alcotest.test_case "smooth flow" `Quick test_smooth_flow;
          Alcotest.test_case "stalls repeat stages" `Quick
            test_stall_repeats_stage;
          Alcotest.test_case "rollback marker" `Quick test_rollback_marked;
          Alcotest.test_case "row count" `Quick test_row_count;
        ] );
    ]
