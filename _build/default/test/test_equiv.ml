(* The BDD engine and the symbolic equivalence checker. *)

module B = Hw.Bdd
module E = Hw.Expr
module Q = Proof_engine.Equiv

(* ---------------- BDD basics ---------------- *)

let test_bdd_basics () =
  let m = B.manager () in
  let a = B.var m 0 and b = B.var m 1 in
  Alcotest.(check bool) "a&b = b&a" true
    (B.equal (B.conj m a b) (B.conj m b a));
  Alcotest.(check bool) "a|~a = true" true
    (B.is_tru (B.disj m a (B.neg m a)));
  Alcotest.(check bool) "a&~a = false" true
    (B.is_fls (B.conj m a (B.neg m a)));
  Alcotest.(check bool) "xor assoc" true
    (B.equal
       (B.xor m (B.xor m a b) a)
       b);
  Alcotest.(check bool) "demorgan" true
    (B.equal
       (B.neg m (B.conj m a b))
       (B.disj m (B.neg m a) (B.neg m b)))

let test_bdd_sat () =
  let m = B.manager () in
  let a = B.var m 0 and b = B.var m 1 in
  let f = B.conj m a (B.neg m b) in
  (match B.any_sat m f with
  | Some assign ->
    let get v = List.assoc_opt v assign = Some true in
    Alcotest.(check bool) "satisfies" true (B.eval m f get)
  | None -> Alcotest.fail "satisfiable function reported unsat");
  Alcotest.(check bool) "false unsat" true (B.any_sat m B.fls = None)

(* ---------------- blaster vs evaluator ---------------- *)

let arb_expr =
  let open QCheck.Gen in
  let rec gen depth w =
    if depth = 0 then
      oneof
        [
          (int_bound 500 >|= fun v -> E.const_int ~width:w v);
          return (E.input (Printf.sprintf "p%d" w) w);
          return (E.input (Printf.sprintf "q%d" w) w);
        ]
    else
      frequency
        [
          (2, gen 0 w);
          ( 5,
            oneofl
              [ E.Add; E.Sub; E.And; E.Or; E.Xor; E.Shl; E.Shr; E.Sra ]
            >>= fun op ->
            gen (depth - 1) w >>= fun a ->
            gen (depth - 1) w >|= fun b -> E.Binop (op, a, b) );
          ( 2,
            oneofl [ E.Eq; E.Ne; E.Ltu; E.Lts ] >>= fun op ->
            gen (depth - 1) w >>= fun a ->
            gen (depth - 1) w >|= fun b -> E.Zext (E.Binop (op, a, b), w) );
          ( 2,
            gen (depth - 1) 1 >>= fun s ->
            gen (depth - 1) w >>= fun a ->
            gen (depth - 1) w >|= fun b -> E.Mux (s, a, b) );
          (1, gen (depth - 1) w >|= fun a -> E.Unop (E.Not, a));
          (1, gen (depth - 1) w >|= fun a -> E.Unop (E.Neg, a));
        ]
  in
  QCheck.make ~print:E.to_string (int_range 1 8 >>= fun w -> gen 3 w)

(* The checker against itself: e is always equivalent to e, and the
   blast semantics agree with the evaluator (via a self-equivalence
   through a syntactically different form). *)
let prop_self_equivalent =
  QCheck.Test.make ~name:"e === e" ~count:300 arb_expr (fun e ->
      match Q.check e e with Q.Equivalent _ -> true | _ -> false)

let prop_simplify_equivalent =
  QCheck.Test.make ~name:"simplify e === e (symbolic proof per sample)"
    ~count:300 arb_expr (fun e ->
      match Q.check e (Hw.Opt.simplify e) with
      | Q.Equivalent _ -> true
      | Q.Different c ->
        QCheck.Test.fail_reportf "differs at %s"
          (String.concat ","
             (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v)
                c.Q.cex_inputs))
      | Q.Width_mismatch _ -> false)

let prop_counterexamples_are_real =
  QCheck.Test.make ~name:"counterexamples evaluate to different values"
    ~count:200
    QCheck.(pair arb_expr arb_expr)
    (fun (a, b) ->
      QCheck.assume (E.width a = E.width b);
      match Q.check a b with
      | Q.Equivalent _ -> true
      | Q.Width_mismatch _ -> false
      | Q.Different c ->
        (* Re-evaluate both sides with the concrete inputs. *)
        let env =
          Hw.Eval.env_of_assoc
            (List.map
               (fun (n, v) ->
                 let w = List.assoc n (E.inputs a @ E.inputs b) in
                 (n, Hw.Bitvec.make ~width:w v))
               c.Q.cex_inputs)
        in
        let va = Hw.Eval.eval env a and vb = Hw.Eval.eval env b in
        Hw.Bitvec.equal va c.Q.cex_left
        && Hw.Bitvec.equal vb c.Q.cex_right
        && not (Hw.Bitvec.equal va vb))

(* ---------------- selection networks ---------------- *)

let test_chain_tree_bus_equivalent () =
  List.iter
    (fun (sources, width) ->
      let net impl =
        Pipeline.Mux_impl.build_network ~impl ~sources ~data_width:width
      in
      (match Q.check (net Hw.Circuits.Chain) (net Hw.Circuits.Tree) with
      | Q.Equivalent _ -> ()
      | r -> Alcotest.failf "chain/tree %d: %a" sources Q.pp_result r);
      match Q.check (net Hw.Circuits.Tree) (net Hw.Circuits.Bus) with
      | Q.Equivalent _ -> ()
      | r -> Alcotest.failf "tree/bus %d: %a" sources Q.pp_result r)
    [ (1, 4); (2, 8); (4, 8); (6, 8); (8, 4) ]

let test_dlx_g_networks_equivalent () =
  (* The actual generated GPR forwarding networks of the DLX, chain vs
     tree, proven equal for every hit/candidate/register valuation
     (file reads uninterpreted). *)
  let p = Dlx.Progs.fib 5 in
  let build impl =
    let tr =
      Dlx.Seq_dlx.transform
        ~options:{ Pipeline.Fwd_spec.mode = Pipeline.Fwd_spec.Full; impl }
        ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
        ~program:(Dlx.Progs.program p)
    in
    List.assoc "$g_1_GPRa" tr.Pipeline.Transform.signals
  in
  match Q.check (build Hw.Circuits.Chain) (build Hw.Circuits.Tree) with
  | Q.Equivalent { variables; _ } ->
    Alcotest.(check bool) "nontrivial" true (variables > 50)
  | r -> Alcotest.failf "%a" Q.pp_result r

(* ---------------- tautologies ---------------- *)

let test_tautology () =
  let x = E.input "x" 8 in
  Alcotest.(check bool) "x = x" true (Q.tautology (E.( ==: ) x x));
  Alcotest.(check bool) "s or not s" true
    (Q.tautology (E.( ||: ) (E.input "s" 1) (E.not_ (E.input "s" 1))));
  Alcotest.(check bool) "x = 0 not valid" false
    (Q.tautology (E.( ==: ) x (E.const_int ~width:8 0)));
  (* De Morgan at width 8. *)
  let y = E.input "y" 8 in
  Alcotest.(check bool) "de morgan" true
    (Q.tautology
       (E.( ==: )
          (E.Unop (E.Not, E.Binop (E.And, x, y)))
          (E.Binop (E.Or, E.Unop (E.Not, x), E.Unop (E.Not, y)))))

let test_arithmetic_facts () =
  let x = E.input "x" 6 and y = E.input "y" 6 in
  (* Commutativity of addition, symbolically. *)
  Q.check_exn (E.( +: ) x y) (E.( +: ) y x);
  (* x - y = x + (-y). *)
  Q.check_exn (E.( -: ) x y) (E.( +: ) x (E.Unop (E.Neg, y)));
  (* Shift-left by 1 doubles. *)
  Q.check_exn
    (E.Binop (E.Shl, x, E.const_int ~width:3 1))
    (E.( +: ) x x);
  (* Multiplication by 3. *)
  Q.check_exn
    (E.Binop (E.Mul, x, E.const_int ~width:6 3))
    (E.( +: ) (E.( +: ) x x) x)

let test_width_mismatch () =
  match Q.check (E.input "x" 4) (E.input "x" 8) with
  | Q.Width_mismatch (4, 8) -> ()
  | _ -> Alcotest.fail "expected width mismatch"

(* BDD-level properties: random boolean formulas agree with a direct
   truth-table evaluation. *)
let arb_formula =
  let open QCheck.Gen in
  let rec gen depth =
    if depth = 0 then int_range 0 4 >|= fun v -> `Var v
    else
      frequency
        [
          (1, gen 0);
          (2, map2 (fun a b -> `And (a, b)) (gen (depth - 1)) (gen (depth - 1)));
          (2, map2 (fun a b -> `Or (a, b)) (gen (depth - 1)) (gen (depth - 1)));
          (2, map2 (fun a b -> `Xor (a, b)) (gen (depth - 1)) (gen (depth - 1)));
          (1, map (fun a -> `Not a) (gen (depth - 1)));
          ( 1,
            map3 (fun a b c -> `Ite (a, b, c)) (gen (depth - 1))
              (gen (depth - 1)) (gen (depth - 1)) );
        ]
  in
  let rec print = function
    | `Var v -> Printf.sprintf "x%d" v
    | `And (a, b) -> Printf.sprintf "(%s & %s)" (print a) (print b)
    | `Or (a, b) -> Printf.sprintf "(%s | %s)" (print a) (print b)
    | `Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (print a) (print b)
    | `Not a -> Printf.sprintf "~%s" (print a)
    | `Ite (a, b, c) ->
      Printf.sprintf "(%s ? %s : %s)" (print a) (print b) (print c)
  in
  QCheck.make ~print (gen 5)

let rec formula_to_bdd m = function
  | `Var v -> B.var m v
  | `And (a, b) -> B.conj m (formula_to_bdd m a) (formula_to_bdd m b)
  | `Or (a, b) -> B.disj m (formula_to_bdd m a) (formula_to_bdd m b)
  | `Xor (a, b) -> B.xor m (formula_to_bdd m a) (formula_to_bdd m b)
  | `Not a -> B.neg m (formula_to_bdd m a)
  | `Ite (a, b, c) ->
    B.ite m (formula_to_bdd m a) (formula_to_bdd m b) (formula_to_bdd m c)

let rec formula_eval env = function
  | `Var v -> env v
  | `And (a, b) -> formula_eval env a && formula_eval env b
  | `Or (a, b) -> formula_eval env a || formula_eval env b
  | `Xor (a, b) -> formula_eval env a <> formula_eval env b
  | `Not a -> not (formula_eval env a)
  | `Ite (a, b, c) ->
    if formula_eval env a then formula_eval env b else formula_eval env c

let prop_bdd_truth_table =
  QCheck.Test.make ~name:"BDD agrees with the truth table over 5 variables"
    ~count:300 arb_formula (fun f ->
      let m = B.manager () in
      let bdd = formula_to_bdd m f in
      let ok = ref true in
      for bits = 0 to 31 do
        let env v = (bits lsr v) land 1 = 1 in
        if B.eval m bdd env <> formula_eval env f then ok := false
      done;
      !ok)

let prop_bdd_canonical =
  QCheck.Test.make
    ~name:"semantically equal formulas share one BDD node" ~count:300
    QCheck.(pair arb_formula arb_formula)
    (fun (f, g) ->
      let m = B.manager () in
      let bf = formula_to_bdd m f and bg = formula_to_bdd m g in
      let same_semantics =
        let ok = ref true in
        for bits = 0 to 31 do
          let env v = (bits lsr v) land 1 = 1 in
          if formula_eval env f <> formula_eval env g then ok := false
        done;
        !ok
      in
      B.equal bf bg = same_semantics)

let () =
  Alcotest.run "equiv"
    [
      ( "bdd",
        [
          Alcotest.test_case "basics" `Quick test_bdd_basics;
          Alcotest.test_case "sat" `Quick test_bdd_sat;
          QCheck_alcotest.to_alcotest prop_bdd_truth_table;
          QCheck_alcotest.to_alcotest prop_bdd_canonical;
        ] );
      ( "checker",
        [
          Alcotest.test_case "tautologies" `Quick test_tautology;
          Alcotest.test_case "arithmetic facts" `Quick test_arithmetic_facts;
          Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
        ] );
      ( "networks",
        [
          Alcotest.test_case "chain = tree = bus" `Quick
            test_chain_tree_bus_equivalent;
          Alcotest.test_case "dlx g networks" `Quick
            test_dlx_g_networks_equivalent;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_self_equivalent;
            prop_simplify_equivalent;
            prop_counterexamples_are_real;
          ] );
    ]
