(* Verification coverage: the kernel suite must exercise every
   generated forwarding path and interlock. *)

module C = Pipeline.Coverage

let dlx_cov (p : Dlx.Progs.t) =
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  C.measure ~stop_after:p.Dlx.Progs.dyn_instructions tr

let test_kernels_full_coverage () =
  let acc =
    List.fold_left
      (fun acc p ->
        let c = dlx_cov p in
        match acc with None -> Some c | Some a -> Some (C.merge a c))
      None Dlx.Progs.all_kernels
  in
  let c = Option.get acc in
  (match C.holes c with
  | [] -> ()
  | hs -> Alcotest.failf "coverage holes: %s" (String.concat "; " hs));
  Alcotest.(check bool) "full" true (C.full c)

let test_single_kernel_has_holes () =
  (* Independent instructions never forward: the collector must report
     the unexercised sources. *)
  let c = dlx_cov (Dlx.Progs.hazard_independent 12) in
  Alcotest.(check bool) "not full" false (C.full c);
  Alcotest.(check bool) "mentions sources" true
    (List.exists
       (fun h ->
         let sub = "forwarding sources" in
         let n = String.length sub and l = String.length h in
         let rec go i = i + n <= l && (String.sub h i n = sub || go (i + 1)) in
         go 0)
       (C.holes c))

let test_forwarding_sources_identified () =
  (* A dependent ALU chain exercises exactly the stage-2 bypass. *)
  let c = dlx_cov (Dlx.Progs.hazard_dependent_chain 10) in
  let gpra = List.find (fun r -> r.C.cov_label = "1_GPRa") c.C.rules in
  Alcotest.(check bool) "stage 2 won" true (List.mem 2 gpra.C.sources_hit);
  (* And the load-use kernel additionally fires the interlock and the
     stage-3 bypass. *)
  let c2 = dlx_cov (Dlx.Progs.hazard_load_use 6) in
  let gpra2 = List.find (fun r -> r.C.cov_label = "1_GPRa") c2.C.rules in
  Alcotest.(check bool) "dhaz fired" true gpra2.C.dhaz_fired;
  Alcotest.(check bool) "stage 3 won" true (List.mem 3 gpra2.C.sources_hit)

let test_stage_observations () =
  let c = dlx_cov (Dlx.Progs.hazard_load_use 6) in
  let s1 = List.find (fun s -> s.C.cov_stage = 1) c.C.stages in
  Alcotest.(check bool) "decode stalled" true s1.C.stalled;
  let s2 = List.find (fun s -> s.C.cov_stage = 2) c.C.stages in
  Alcotest.(check bool) "bubble behind the stall" true s2.C.bubbled

let test_merge_validation () =
  let a = dlx_cov (Dlx.Progs.fib 5) in
  let b =
    C.measure ~stop_after:6
      (Core.Toy.transform ~program:Core.Toy.default_program ())
  in
  match C.merge a b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shape mismatch accepted"

let () =
  Alcotest.run "coverage"
    [
      ( "collection",
        [
          Alcotest.test_case "kernels reach full coverage" `Slow
            test_kernels_full_coverage;
          Alcotest.test_case "holes reported" `Quick
            test_single_kernel_has_holes;
          Alcotest.test_case "sources identified" `Quick
            test_forwarding_sources_identified;
          Alcotest.test_case "stage observations" `Quick
            test_stage_observations;
          Alcotest.test_case "merge validation" `Quick test_merge_validation;
        ] );
    ]
