(* The proof engine: obligation generation and discharge, fault
   injection (the checkers must catch a sabotaged machine), exhaustive
   bounded checking, and PVS emission. *)

module O = Proof_engine.Obligation
module C = Proof_engine.Consistency
module T = Pipeline.Transform

let toy_tr () = Core.Toy.transform ~program:Core.Toy.default_program ()

let dlx_tr (p : Dlx.Progs.t) =
  Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
    ~program:(Dlx.Progs.program p)

let test_generate_counts () =
  let tr = dlx_tr (Dlx.Progs.fib 5) in
  let obs = O.generate tr in
  let with_prefix p =
    List.length
      (List.filter
         (fun (o : O.obligation) ->
           String.length o.O.ob_id >= String.length p
           && String.sub o.O.ob_id 0 (String.length p) = p)
         obs)
  in
  Alcotest.(check int) "lemma 1" 3 (with_prefix "L1.");
  Alcotest.(check int) "engine" 3 (with_prefix "SE.");
  (* 3 rules (GPRa, GPRb, DPC) x 3 obligations each. *)
  Alcotest.(check int) "lemma 2" 3 (with_prefix "L2.");
  Alcotest.(check int) "lemma 3" 3 (with_prefix "L3.");
  Alcotest.(check int) "top" 3 (with_prefix "TOP.");
  (* 4 visible registers. *)
  Alcotest.(check int) "consistency" 4 (with_prefix "DC.");
  Alcotest.(check int) "liveness" 1 (with_prefix "LV")

let test_discharge_toy () =
  let obs = O.discharge_all (toy_tr ()) in
  Alcotest.(check bool) "all discharged" true (O.all_discharged obs);
  (* The small machine additionally earns symbolic all-data evidence on
     its data-consistency obligations. *)
  let dc_reg =
    List.find (fun (o : O.obligation) -> o.O.ob_id = "DC.REG") obs
  in
  match dc_reg.O.ob_status with
  | O.Discharged msg ->
    let has sub =
      let n = String.length sub and h = String.length msg in
      let rec go i = i + n <= h && (String.sub msg i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "symbolic evidence" true (has "ALL initial data")
  | O.Pending | O.Failed _ -> Alcotest.fail "DC.REG not discharged"

let test_discharge_dlx () =
  let p = Dlx.Progs.fib 8 in
  let reference =
    Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p) ~instructions:p.Dlx.Progs.dyn_instructions
  in
  let obs =
    O.discharge_all ~max_instructions:p.Dlx.Progs.dyn_instructions ~reference
      (dlx_tr p)
  in
  Alcotest.(check bool) "all discharged" true (O.all_discharged obs)

(* ---------------- fault injection ---------------- *)

(* Sabotage the forwarding: replace a g network by the plain register
   read (no bypass) while leaving the interlock alone.  Dependent
   instructions then read stale values — the checker must notice. *)
let sabotage_g (tr : T.t) g_name default =
  {
    tr with
    T.signals =
      List.map
        (fun (n, e) -> if String.equal n g_name then (n, default) else (n, e))
        tr.T.signals;
  }

let test_detects_broken_forwarding () =
  let p = Dlx.Progs.hazard_dependent_chain 10 in
  let tr = dlx_tr p in
  let rs1 = Hw.Expr.slice (Hw.Expr.input "IR.1" 32) ~hi:25 ~lo:21 in
  let stale =
    Hw.Expr.File_read { file = "GPR"; data_width = 32; addr = rs1 }
  in
  let bad = sabotage_g tr "$g_1_GPRa" stale in
  let reference =
    Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p) ~instructions:p.Dlx.Progs.dyn_instructions
  in
  let report =
    C.check ~max_instructions:p.Dlx.Progs.dyn_instructions ~reference bad
  in
  Alcotest.(check bool) "violations found" true
    (List.length report.C.violations > 0)

let test_detects_broken_interlock () =
  (* Disable the load-use hazard: the consumer reads a stale value. *)
  let p = Dlx.Progs.hazard_load_use 6 in
  let tr = dlx_tr p in
  let bad =
    {
      tr with
      T.signals =
        List.map
          (fun (n, e) ->
            if String.equal n "$dhaz_stage_1" then (n, Hw.Expr.fls) else (n, e))
          tr.T.signals;
    }
  in
  let reference =
    Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p) ~instructions:p.Dlx.Progs.dyn_instructions
  in
  let report =
    C.check ~max_instructions:p.Dlx.Progs.dyn_instructions ~reference bad
  in
  Alcotest.(check bool) "violations found" true
    (List.length report.C.violations > 0)

let test_liveness_negative () =
  let ext ~stage ~cycle:_ = stage = 2 in
  let live = Proof_engine.Liveness.check ~ext ~stop_after:6 (toy_tr ()) in
  Alcotest.(check bool) "not ok" false (Proof_engine.Liveness.ok live)

(* ---------------- exhaustive bounded checking ---------------- *)

let test_bmc_toy () =
  (* All programs of length 3 over a 2-register alphabet: every
     forwarding/hazard interleaving at that bound. *)
  let alphabet =
    [
      Core.Toy.encode ~dst:1 ~src1:1 ~src2:2;
      Core.Toy.encode ~dst:2 ~src1:1 ~src2:1;
      Core.Toy.encode ~dst:1 ~src1:2 ~src2:2;
      Core.Toy.encode ~dst:3 ~src1:1 ~src2:3;
    ]
  in
  let outcome =
    Proof_engine.Bmc.exhaustive
      ~build:(fun program -> Core.Toy.transform ~program ())
      ~alphabet ~length:3 ()
  in
  Alcotest.(check int) "64 programs" 64 outcome.Proof_engine.Bmc.programs;
  if not (Proof_engine.Bmc.ok outcome) then
    Alcotest.failf "%a" (fun ppf -> Proof_engine.Bmc.pp ppf) outcome

let test_bmc_catches_injected_bug () =
  let alphabet =
    [ Core.Toy.encode ~dst:1 ~src1:1 ~src2:2; Core.Toy.encode ~dst:2 ~src1:1 ~src2:1 ]
  in
  let build program =
    let tr = Core.Toy.transform ~program () in
    (* Break srcA forwarding. *)
    let rs1 = Hw.Expr.slice (Hw.Expr.input "IR.1" 16) ~hi:7 ~lo:4 in
    sabotage_g tr "$g_1_srcA"
      (Hw.Expr.File_read { file = "REG"; data_width = 16; addr = rs1 })
  in
  let outcome = Proof_engine.Bmc.exhaustive ~build ~alphabet ~length:3 () in
  Alcotest.(check bool) "bug found" false (Proof_engine.Bmc.ok outcome)

(* ---------------- trace invariants ---------------- *)

let test_trace_invariants_pass () =
  let records = ref [] in
  let callbacks =
    {
      Pipeline.Pipesem.no_callbacks with
      Pipeline.Pipesem.on_cycle = (fun r -> records := r :: !records);
    }
  in
  ignore (Pipeline.Pipesem.run ~callbacks ~stop_after:6 (toy_tr ()));
  match Proof_engine.Trace_invariants.check ~n_stages:3 (List.rev !records) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "%s" (String.concat "; " es)

let test_trace_invariants_negative () =
  let records = ref [] in
  let callbacks =
    {
      Pipeline.Pipesem.no_callbacks with
      Pipeline.Pipesem.on_cycle = (fun r -> records := r :: !records);
    }
  in
  ignore (Pipeline.Pipesem.run ~callbacks ~stop_after:6 (toy_tr ()));
  let damaged =
    List.mapi
      (fun i (r : Pipeline.Pipesem.cycle_record) ->
        if i = 2 then begin
          let stall = Array.copy r.Pipeline.Pipesem.stall in
          stall.(1) <- true;
          { r with Pipeline.Pipesem.stall }
        end
        else r)
      (List.rev !records)
  in
  match Proof_engine.Trace_invariants.check ~n_stages:3 damaged with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "corruption not detected"

(* ---------------- PVS emission ---------------- *)

let test_pvs_theory () =
  let tr = toy_tr () in
  let obs = O.discharge_all tr in
  let s = Proof_engine.Pvs_gen.theory tr obs in
  let has sub =
    let n = String.length sub and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "theory header" true (has "toy3_pipeline: THEORY");
  Alcotest.(check bool) "scheduling function" true (has "RECURSIVE nat");
  Alcotest.(check bool) "lemma 1" true (has "[L1.1]");
  Alcotest.(check bool) "per-operand lemma" true (has "[L3.1_srcA]");
  Alcotest.(check bool) "discharge note" true (has "discharged:");
  Alcotest.(check bool) "closes" true (has "END toy3_pipeline")

let () =
  Alcotest.run "proof"
    [
      ( "obligations",
        [
          Alcotest.test_case "generation" `Quick test_generate_counts;
          Alcotest.test_case "discharge toy" `Quick test_discharge_toy;
          Alcotest.test_case "discharge dlx" `Quick test_discharge_dlx;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "broken forwarding caught" `Quick
            test_detects_broken_forwarding;
          Alcotest.test_case "broken interlock caught" `Quick
            test_detects_broken_interlock;
          Alcotest.test_case "liveness violation caught" `Quick
            test_liveness_negative;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "toy BMC" `Slow test_bmc_toy;
          Alcotest.test_case "BMC catches bugs" `Slow
            test_bmc_catches_injected_bug;
        ] );
      ( "trace invariants",
        [
          Alcotest.test_case "pass" `Quick test_trace_invariants_pass;
          Alcotest.test_case "negative" `Quick test_trace_invariants_negative;
        ] );
      ("pvs", [ Alcotest.test_case "theory" `Quick test_pvs_theory ]);
    ]
