(* The machine builder DSL: it must produce exactly the machines one
   writes by hand. *)

module B = Machine.Build
module E = Hw.Expr

let bv ~width v = Hw.Bitvec.make ~width v

(* toy3 rebuilt with the DSL. *)
let toy_via_dsl program =
  let ir = E.input "IR.1" 16 in
  let read hi lo =
    E.File_read { file = "REG"; data_width = 16; addr = E.slice ir ~hi ~lo }
  in
  B.start ~name:"toy3" ~stages:[ "FETCH"; "EX"; "WB" ]
  |> B.simple "PC" ~width:8 ~stage:0 ~visible:true
  |> B.file "IMEM" ~width:16 ~addr_bits:8 ~stage:0
       ~init:(List.map (bv ~width:16) program)
  |> B.simple "IR.1" ~width:16 ~stage:0
  |> B.simple "C.2" ~width:16 ~stage:1
  |> B.simple "D.2" ~width:4 ~stage:1
  |> B.file "REG" ~width:16 ~addr_bits:4 ~stage:2 ~visible:true
       ~init:[ bv ~width:16 0; bv ~width:16 1; bv ~width:16 2 ]
  |> B.write ~stage:0 "IR.1"
       (E.File_read { file = "IMEM"; data_width = 16; addr = E.input "PC" 8 })
  |> B.write ~stage:0 "PC" (E.( +: ) (E.input "PC" 8) (E.const_int ~width:8 1))
  |> B.write ~stage:1 "C.2" (E.( +: ) (read 7 4) (read 3 0))
  |> B.write ~stage:1 "D.2" (E.slice ir ~hi:11 ~lo:8)
  |> B.write ~stage:2 ~addr:(E.input "D.2" 4) "REG" (E.input "C.2" 16)
  |> B.spec

let test_matches_handwritten () =
  let dsl = toy_via_dsl Core.Toy.default_program in
  let hand = Core.Toy.machine ~program:Core.Toy.default_program in
  Alcotest.(check int) "stages" hand.Machine.Spec.n_stages dsl.Machine.Spec.n_stages;
  Alcotest.(check (list string)) "register names"
    (List.map (fun (r : Machine.Spec.register) -> r.Machine.Spec.reg_name)
       hand.Machine.Spec.registers
    |> List.sort String.compare)
    (List.map (fun (r : Machine.Spec.register) -> r.Machine.Spec.reg_name)
       dsl.Machine.Spec.registers
    |> List.sort String.compare);
  (* Behaviourally identical: same sequential trace. *)
  let t1 = Machine.Seqsem.run ~max_instructions:6 dsl in
  let t2 = Machine.Seqsem.run ~max_instructions:6 hand in
  for i = 0 to 6 do
    List.iter2
      (fun (n1, v1) (n2, v2) ->
        Alcotest.(check string) "name" n1 n2;
        Alcotest.(check bool) (Printf.sprintf "instr %d %s" i n1) true
          (Machine.Value.equal v1 v2))
      t1.Machine.Seqsem.spec_before.(i)
      t2.Machine.Seqsem.spec_before.(i)
  done

let test_dsl_machine_pipelines () =
  let m = toy_via_dsl Core.Toy.default_program in
  let tr = Pipeline.Transform.run ~hints:Core.Toy.hints m in
  let report = Proof_engine.Consistency.check ~max_instructions:6 tr in
  Alcotest.(check bool) "consistent" true (Proof_engine.Consistency.ok report)

let test_pipe_combinator () =
  let b =
    B.start ~name:"p" ~stages:[ "A"; "B"; "C"; "D" ]
    |> B.simple "ctl.1" ~width:4 ~stage:0
    |> B.pipe "ctl.1" ~through:3
    |> B.write ~stage:0 "ctl.1" (E.const_int ~width:4 5)
  in
  let m = B.spec b in
  Alcotest.(check bool) "ctl.2" true (Machine.Spec.register_exists m "ctl.2");
  Alcotest.(check bool) "ctl.4" true (Machine.Spec.register_exists m "ctl.4");
  Alcotest.(check (option string)) "linked" (Some "ctl.3")
    (Machine.Spec.find_register m "ctl.4").Machine.Spec.prev_instance;
  Alcotest.(check int) "stage of ctl.4" 3
    (Machine.Spec.find_register m "ctl.4").Machine.Spec.stage;
  (* Undotted names get suffixes from their stage. *)
  let m2 =
    B.start ~name:"q" ~stages:[ "A"; "B"; "C" ]
    |> B.simple "v" ~width:8 ~stage:0
    |> B.pipe "v" ~through:2
    |> B.write ~stage:0 "v" (E.const_int ~width:8 1)
    |> B.spec
  in
  Alcotest.(check bool) "v.2" true (Machine.Spec.register_exists m2 "v.2");
  Alcotest.(check bool) "v.3" true (Machine.Spec.register_exists m2 "v.3")

let test_validation_raises () =
  (* A width clash must be rejected at [spec]. *)
  let b =
    B.start ~name:"bad" ~stages:[ "A"; "B" ]
    |> B.simple "x" ~width:8 ~stage:0
    |> B.write ~stage:0 "x" (E.const_int ~width:4 0)
  in
  match B.spec b with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "accepted ill-typed write"

let test_bad_stage_rejected () =
  match
    B.start ~name:"bad" ~stages:[ "A" ] |> B.simple "x" ~width:8 ~stage:3
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted out-of-range stage"

let () =
  Alcotest.run "build"
    [
      ( "dsl",
        [
          Alcotest.test_case "matches handwritten toy" `Quick
            test_matches_handwritten;
          Alcotest.test_case "pipelines" `Quick test_dsl_machine_pipelines;
          Alcotest.test_case "pipe combinator" `Quick test_pipe_combinator;
          Alcotest.test_case "validation" `Quick test_validation_raises;
          Alcotest.test_case "stage range" `Quick test_bad_stage_rejected;
        ] );
    ]
