(* The machine-space property: every sampled prepared sequential
   machine, once transformed, is data consistent with its own
   sequential semantics on random programs. *)

module MG = Proof_engine.Machine_gen

let test_params_deterministic () =
  let p1 = MG.sample_params ~seed:7 and p2 = MG.sample_params ~seed:7 in
  Alcotest.(check string) "same params"
    (Format.asprintf "%a" MG.pp_params p1)
    (Format.asprintf "%a" MG.pp_params p2);
  let p3 = MG.sample_params ~seed:8 in
  Alcotest.(check bool) "different seeds vary" true
    (Format.asprintf "%a" MG.pp_params p1
    <> Format.asprintf "%a" MG.pp_params p3
    ||
    let p4 = MG.sample_params ~seed:9 in
    Format.asprintf "%a" MG.pp_params p1
    <> Format.asprintf "%a" MG.pp_params p4)

let test_machines_validate () =
  List.iter
    (fun seed ->
      let p = MG.sample_params ~seed in
      let program = MG.random_program p ~length:10 in
      match Machine.Validate.run (MG.machine p ~program) with
      | [] -> ()
      | issues ->
        Alcotest.failf "%a: %d validation issues"
          (fun ppf -> MG.pp_params ppf)
          p (List.length issues))
    (List.init 40 (fun i -> i + 1))

let test_property_sweep () =
  List.iter
    (fun seed ->
      match MG.check_one ~seed ~program_length:30 with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    (List.init 60 (fun i -> i + 1))

let test_symbolic_proofs_on_random_machines () =
  (* For sampled machines, prove data consistency for all initial
     register-file contents at once (skipping any machine whose control
     would depend on symbolic data, which this family never has). *)
  List.iter
    (fun seed ->
      let p = MG.sample_params ~seed in
      let program = MG.random_program p ~length:12 in
      let tr =
        Pipeline.Transform.run ~hints:(MG.hints p) (MG.machine p ~program)
      in
      match
        Proof_engine.Symsim.check ~symbolic:[ "RF" ] ~instructions:12 tr
      with
      | Proof_engine.Symsim.Proved _ -> ()
      | o ->
        Alcotest.failf "%a: %a"
          (fun ppf -> MG.pp_params ppf)
          p Proof_engine.Symsim.pp_outcome o)
    [ 2; 5; 9; 14; 23; 31 ]

let test_longer_programs () =
  List.iter
    (fun seed ->
      match MG.check_one ~seed ~program_length:120 with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    [ 3; 17; 42 ]

let () =
  Alcotest.run "machine_gen"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_params_deterministic;
          Alcotest.test_case "well-formed" `Quick test_machines_validate;
        ] );
      ( "property",
        [
          Alcotest.test_case "60 random machines" `Slow test_property_sweep;
          Alcotest.test_case "longer programs" `Slow test_longer_programs;
          Alcotest.test_case "symbolic proofs on random machines" `Slow
            test_symbolic_proofs_on_random_machines;
        ] );
    ]
