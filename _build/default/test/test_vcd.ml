(* VCD emission and the pipeline tracer. *)

let bv ~width v = Hw.Bitvec.make ~width v

let has ~sub s =
  let n = String.length sub and h = String.length s in
  let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_document_structure () =
  let vcd = Hw.Vcd.create [ ("clk_like", 1); ("bus", 8) ] in
  Hw.Vcd.sample vcd [ ("clk_like", bv ~width:1 1); ("bus", bv ~width:8 0xA5) ];
  Hw.Vcd.sample vcd [ ("clk_like", bv ~width:1 0) ];
  Hw.Vcd.sample vcd [ ("clk_like", bv ~width:1 0); ("bus", bv ~width:8 0xA5) ];
  let s = Hw.Vcd.to_string vcd in
  Alcotest.(check bool) "timescale" true (has ~sub:"$timescale 1 ns $end" s);
  Alcotest.(check bool) "var decl" true
    (has ~sub:"$var wire 8" s && has ~sub:"bus $end" s);
  Alcotest.(check bool) "enddefinitions" true (has ~sub:"$enddefinitions" s);
  Alcotest.(check bool) "initial x" true (has ~sub:"bxxxxxxxx" s);
  Alcotest.(check bool) "binary value" true (has ~sub:"b10100101" s);
  Alcotest.(check bool) "timestamps" true
    (has ~sub:"#0" s && has ~sub:"#1" s && has ~sub:"#2" s)

let test_change_compression () =
  (* An unchanged value must not be re-emitted. *)
  let vcd = Hw.Vcd.create [ ("x", 4) ] in
  Hw.Vcd.sample vcd [ ("x", bv ~width:4 7) ];
  Hw.Vcd.sample vcd [ ("x", bv ~width:4 7) ];
  Hw.Vcd.sample vcd [ ("x", bv ~width:4 8) ];
  let s = Hw.Vcd.to_string vcd in
  let count_sub sub =
    let n = String.length sub in
    let rec go i acc =
      if i + n > String.length s then acc
      else go (i + 1) (acc + if String.sub s i n = sub then 1 else 0)
    in
    go 0 0
  in
  Alcotest.(check int) "0111 once" 1 (count_sub "b0111");
  Alcotest.(check int) "1000 once" 1 (count_sub "b1000")

let test_many_signals_unique_ids () =
  (* More signals than single-character VCD identifiers: ids must stay
     unique and the document parseable. *)
  let signals = List.init 200 (fun i -> (Printf.sprintf "s%d" i, 1)) in
  let vcd = Hw.Vcd.create signals in
  Hw.Vcd.sample vcd
    (List.mapi (fun i (n, _) -> (n, bv ~width:1 (i land 1))) signals);
  let s = Hw.Vcd.to_string vcd in
  (* Extract the identifier of each $var line and check uniqueness. *)
  let ids =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           match String.split_on_char ' ' line with
           | [ "$var"; "wire"; _; id; _; "$end" ] -> Some id
           | _ -> None)
  in
  Alcotest.(check int) "200 declarations" 200 (List.length ids);
  Alcotest.(check int) "unique ids" 200
    (List.length (List.sort_uniq String.compare ids))

let test_sample_validation () =
  let vcd = Hw.Vcd.create [ ("x", 4) ] in
  (match Hw.Vcd.sample vcd [ ("y", bv ~width:4 0) ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unknown signal accepted");
  match Hw.Vcd.sample vcd [ ("x", bv ~width:8 0) ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "wrong width accepted"

let test_tracer_on_dlx () =
  let p = Dlx.Progs.hazard_load_use 4 in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  let vcd, result =
    Pipeline.Tracer.trace ~registers:[ "PC"; "IR.1" ]
      ~signals:[ "$dhaz_stage_1"; "$g_1_GPRa" ]
      ~stop_after:p.Dlx.Progs.dyn_instructions tr
  in
  Alcotest.(check bool) "completed" true
    (result.Pipeline.Pipesem.outcome = Pipeline.Pipesem.Completed);
  Alcotest.(check int) "one sample per cycle"
    result.Pipeline.Pipesem.stats.Pipeline.Pipesem.cycles
    (Hw.Vcd.cycles vcd);
  let s = Hw.Vcd.to_string vcd in
  Alcotest.(check bool) "engine signals" true (has ~sub:"stall_1 $end" s);
  Alcotest.(check bool) "register traced" true (has ~sub:" PC $end" s);
  Alcotest.(check bool) "g network traced" true (has ~sub:"_g_1_GPRa $end" s);
  (* The load-use program must show dhaz_1 pulsing. *)
  Alcotest.(check bool) "hazard visible" true (has ~sub:"1(" s || has ~sub:"1" s)

let test_tracer_rejects_unknown () =
  let tr = Core.Toy.transform ~program:Core.Toy.default_program () in
  match Pipeline.Tracer.trace ~registers:[ "nope" ] ~stop_after:2 tr with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown register accepted"

let () =
  Alcotest.run "vcd"
    [
      ( "document",
        [
          Alcotest.test_case "structure" `Quick test_document_structure;
          Alcotest.test_case "change compression" `Quick test_change_compression;
          Alcotest.test_case "many signals" `Quick test_many_signals_unique_ids;
          Alcotest.test_case "validation" `Quick test_sample_validation;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "dlx waveform" `Quick test_tracer_on_dlx;
          Alcotest.test_case "unknown names" `Quick test_tracer_rejects_unknown;
        ] );
    ]
