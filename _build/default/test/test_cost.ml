(* The gate-level cost model. *)

module E = Hw.Expr
module C = Hw.Cost

let test_clog2 () =
  Alcotest.(check int) "1" 0 (C.clog2 1);
  Alcotest.(check int) "2" 1 (C.clog2 2);
  Alcotest.(check int) "3" 2 (C.clog2 3);
  Alcotest.(check int) "8" 3 (C.clog2 8);
  Alcotest.(check int) "9" 4 (C.clog2 9)

let test_leaves_free () =
  Alcotest.(check int) "const" 0 (C.of_expr (E.const_int ~width:32 5)).C.gates;
  Alcotest.(check int) "input" 0 (C.of_expr (E.input "x" 32)).C.gates;
  Alcotest.(check int) "slice free" 0
    (C.of_expr (E.slice (E.input "x" 32) ~hi:7 ~lo:0)).C.gates

let test_adder () =
  let add = E.( +: ) (E.input "a" 32) (E.input "b" 32) in
  let c = C.of_expr add in
  Alcotest.(check int) "area 5w" 160 c.C.gates;
  Alcotest.(check int) "log depth" (C.clog2 32 + 2) c.C.depth

let test_series_composition () =
  let a = E.input "a" 8 and b = E.input "b" 8 in
  let two_adds = E.( +: ) (E.( +: ) a b) b in
  let one_add = E.( +: ) a b in
  let c2 = C.of_expr two_adds and c1 = C.of_expr one_add in
  Alcotest.(check int) "area doubles" (2 * c1.C.gates) c2.C.gates;
  Alcotest.(check int) "depth doubles" (2 * c1.C.depth) c2.C.depth

let test_parallel_composition () =
  (* mux of two adds: depth = add + mux, not 2*add. *)
  let a = E.input "a" 8 and b = E.input "b" 8 in
  let e = E.Mux (E.input "s" 1, E.( +: ) a b, E.( -: ) a b) in
  let c = C.of_expr e in
  let add_depth = (C.of_expr (E.( +: ) a b)).C.depth in
  Alcotest.(check int) "depth = add + mux levels" (add_depth + 2) c.C.depth

let test_constant_shift_free () =
  let e = E.Binop (E.Shl, E.input "a" 32, E.const_int ~width:5 3) in
  Alcotest.(check int) "constant shift" 0 (C.of_expr e).C.gates;
  let v = E.Binop (E.Shl, E.input "a" 32, E.input "sh" 5) in
  Alcotest.(check bool) "variable shift costs" true ((C.of_expr v).C.gates > 0)

let test_eq_tester () =
  let e = E.( ==: ) (E.input "a" 5) (E.input "b" 5) in
  let c = C.of_expr e in
  Alcotest.(check int) "w XNOR + AND tree" (5 + 4) c.C.gates;
  Alcotest.(check int) "depth" (1 + C.clog2 5) c.C.depth

let test_combine () =
  let a = { C.gates = 5; depth = 3 } and b = { C.gates = 7; depth = 2 } in
  Alcotest.(check int) "add gates" 12 (C.add a b).C.gates;
  Alcotest.(check int) "add depth is max" 3 (C.add a b).C.depth;
  Alcotest.(check int) "seq depth sums" 5 (C.seq a b).C.depth

let prop_cost_nonnegative =
  QCheck.Test.make ~name:"costs are nonnegative and monotone in size"
    ~count:200
    QCheck.(int_range 1 24)
    (fun w ->
      let e = E.( +: ) (E.input "a" w) (E.input "b" w) in
      let c = C.of_expr e in
      c.C.gates >= 0 && c.C.depth >= 0)

let () =
  Alcotest.run "cost"
    [
      ( "unit",
        [
          Alcotest.test_case "clog2" `Quick test_clog2;
          Alcotest.test_case "leaves free" `Quick test_leaves_free;
          Alcotest.test_case "adder" `Quick test_adder;
          Alcotest.test_case "series" `Quick test_series_composition;
          Alcotest.test_case "parallel" `Quick test_parallel_composition;
          Alcotest.test_case "constant shift" `Quick test_constant_shift_free;
          Alcotest.test_case "eq tester" `Quick test_eq_tester;
          Alcotest.test_case "combinators" `Quick test_combine;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_cost_nonnegative ]);
    ]
