(* Workload generation and the sweep drivers. *)

module G = Workload.Gen
module S = Workload.Sweep

let test_determinism () =
  let p1 = G.generate ~seed:5 ~length:40 G.typical in
  let p2 = G.generate ~seed:5 ~length:40 G.typical in
  Alcotest.(check (list int)) "same program"
    (Dlx.Progs.program p1) (Dlx.Progs.program p2);
  let p3 = G.generate ~seed:6 ~length:40 G.typical in
  Alcotest.(check bool) "different seed differs" true
    (Dlx.Progs.program p1 <> Dlx.Progs.program p3)

let test_terminates () =
  List.iter
    (fun seed ->
      let p = G.generate ~seed ~length:80 (G.branch_heavy ~taken_frac:0.9) in
      Alcotest.(check bool) "positive dynamic count" true
        (p.Dlx.Progs.dyn_instructions > 0);
      Alcotest.(check bool) "bounded" true
        (p.Dlx.Progs.dyn_instructions < 100_000))
    [ 1; 2; 3 ]

let test_run_program_verifies () =
  let p = G.generate ~seed:17 ~length:50 G.typical in
  let row = S.run_program p in
  Alcotest.(check bool) "ran" true (row.Workload.Stats.cycles > 0);
  Alcotest.(check bool) "cpi sane" true
    (row.Workload.Stats.cpi >= 1.0 && row.Workload.Stats.cpi < 5.0)

let test_run_program_catches_sabotage () =
  (* An interlock-only machine claiming to be verified still passes (it
     is correct); this is the positive control for the negative test in
     test_proof. *)
  let p = G.generate ~seed:18 ~length:30 G.typical in
  let config =
    {
      S.default with
      S.options =
        { Pipeline.Fwd_spec.mode = Pipeline.Fwd_spec.Interlock_only;
          impl = Hw.Circuits.Chain };
    }
  in
  let row = S.run_program ~config p in
  Alcotest.(check bool) "slower but correct" true
    (row.Workload.Stats.cpi > 1.0)

let test_dependency_sweep_monotone_without_forwarding () =
  let config =
    {
      S.default with
      S.options =
        { Pipeline.Fwd_spec.mode = Pipeline.Fwd_spec.Interlock_only;
          impl = Hw.Circuits.Chain };
    }
  in
  let rows =
    S.dependency_sweep ~config ~biases:[ 0.0; 1.0 ] ~length:60 ~seed:3 ()
  in
  match rows with
  | [ (_, low); (_, high) ] ->
    Alcotest.(check bool) "more dependencies, more stalls" true
      (high.Workload.Stats.cpi > low.Workload.Stats.cpi)
  | _ -> Alcotest.fail "two rows expected"

let test_forwarding_flattens_dependency_sweep () =
  let rows = S.dependency_sweep ~biases:[ 0.0; 1.0 ] ~length:60 ~seed:3 () in
  match rows with
  | [ (_, low); (_, high) ] ->
    (* With forwarding, dependent ALU chains cost nothing. *)
    Alcotest.(check bool) "flat" true
      (Float.abs (high.Workload.Stats.cpi -. low.Workload.Stats.cpi) < 0.2)
  | _ -> Alcotest.fail "two rows expected"

let test_memory_wait_states () =
  let p = Dlx.Progs.memcpy 6 in
  let fast = S.run_program p in
  let slow =
    S.run_program
      ~config:
        { S.default with S.ext = Some (S.memory_wait_states ~every:4 ~wait:2) }
      p
  in
  Alcotest.(check bool) "wait states cost cycles" true
    (slow.Workload.Stats.cycles > fast.Workload.Stats.cycles)

let test_calls_generated_and_verified () =
  (* The typical profile emits jal/jr subroutine calls; the programs
     must still verify (link-register forwarding in random testing). *)
  let p = Workload.Gen.generate ~seed:21 ~length:80 Workload.Gen.typical in
  let words = Dlx.Progs.program p in
  let has_jal =
    List.exists
      (fun w ->
        match Dlx.Isa.decode w with Some (Dlx.Isa.Jal _) -> true | _ -> false)
      words
  in
  let has_jr =
    List.exists
      (fun w ->
        match Dlx.Isa.decode w with Some (Dlx.Isa.Jr _) -> true | _ -> false)
      words
  in
  Alcotest.(check bool) "jal present" true has_jal;
  Alcotest.(check bool) "jr present" true has_jr;
  let row = S.run_program p in
  Alcotest.(check bool) "functions executed" true
    (row.Workload.Stats.instructions > 80)

let test_stats_table () =
  let p = Dlx.Progs.fib 8 in
  let row = S.run_program p in
  let s = Format.asprintf "%a" Workload.Stats.pp_table [ row ] in
  Alcotest.(check bool) "prints" true (String.length s > 40);
  Alcotest.(check (float 0.0001)) "geomean of singleton"
    row.Workload.Stats.cpi
    (Workload.Stats.geomean_cpi [ row ])

let () =
  Alcotest.run "workload"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "terminates" `Quick test_terminates;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "run and verify" `Quick test_run_program_verifies;
          Alcotest.test_case "interlock-only control" `Quick
            test_run_program_catches_sabotage;
          Alcotest.test_case "dependency sweep (no fwd)" `Slow
            test_dependency_sweep_monotone_without_forwarding;
          Alcotest.test_case "dependency sweep (fwd)" `Slow
            test_forwarding_flattens_dependency_sweep;
          Alcotest.test_case "memory wait states" `Quick test_memory_wait_states;
          Alcotest.test_case "subroutine calls" `Quick
            test_calls_generated_and_verified;
          Alcotest.test_case "stats table" `Quick test_stats_table;
        ] );
    ]
