(* The machine substrate: values, state, spec lookups, validation and
   sequential semantics (Table 1). *)

module Spec = Machine.Spec
module E = Hw.Expr
module B = Hw.Bitvec

let bv ~width v = B.make ~width v

let toy = Core.Toy.machine ~program:Core.Toy.default_program

(* ---------------- Value / State ---------------- *)

let test_value_file () =
  let f = Machine.Value.zero_file ~width:8 ~addr_bits:2 in
  Machine.Value.write_file f (bv ~width:2 3) (bv ~width:8 42);
  Alcotest.(check int) "written" 42
    (B.to_int (Machine.Value.read_file f (bv ~width:2 3)));
  let g = Machine.Value.copy f in
  Machine.Value.write_file f (bv ~width:2 3) (bv ~width:8 0);
  Alcotest.(check int) "copy isolated" 42
    (B.to_int (Machine.Value.read_file g (bv ~width:2 3)));
  Alcotest.(check bool) "not equal" false (Machine.Value.equal f g)

let test_value_of_list () =
  let f =
    Machine.Value.file_of_list ~width:8 ~addr_bits:2
      [ bv ~width:8 1; bv ~width:8 2 ]
  in
  Alcotest.(check int) "entry 1" 2
    (B.to_int (Machine.Value.read_file f (bv ~width:2 1)));
  Alcotest.(check int) "beyond list" 0
    (B.to_int (Machine.Value.read_file f (bv ~width:2 3)));
  Alcotest.check_raises "too long"
    (Invalid_argument "Value.file_of_list: too many entries") (fun () ->
      ignore
        (Machine.Value.file_of_list ~width:8 ~addr_bits:1
           [ bv ~width:8 1; bv ~width:8 2; bv ~width:8 3 ]))

let test_state () =
  let st = Machine.State.create toy in
  Alcotest.(check int) "PC initial" 0 (B.to_int (Machine.State.get_scalar st "PC"));
  Alcotest.(check int) "REG r2 initial" 2
    (B.to_int (Machine.State.read_file st "REG" (bv ~width:4 2)));
  Machine.State.set_scalar st "PC" (bv ~width:8 9);
  let snap = Machine.State.snapshot st in
  Machine.State.set_scalar st "PC" (bv ~width:8 0);
  Machine.State.restore st snap;
  Alcotest.(check int) "restored" 9 (B.to_int (Machine.State.get_scalar st "PC"))

let test_snapshot_diff () =
  let st = Machine.State.create toy in
  let a = Machine.State.snapshot_visible toy st in
  Machine.State.write_file st "REG" ~addr:(bv ~width:4 5) ~data:(bv ~width:16 7);
  let b = Machine.State.snapshot_visible toy st in
  Alcotest.(check (list string)) "diff" [ "REG" ] (Machine.State.diff a b);
  Alcotest.(check bool) "equal_on" false (Machine.State.equal_on a b)

(* ---------------- Spec lookups ---------------- *)

let test_spec_lookup () =
  Alcotest.(check int) "REG stage" 2 (Spec.find_register toy "REG").Spec.stage;
  Alcotest.(check bool) "exists" true (Spec.register_exists toy "PC");
  Alcotest.(check bool) "missing" false (Spec.register_exists toy "nope");
  match Spec.write_to toy "REG" with
  | Some (2, _) -> ()
  | Some (k, _) -> Alcotest.failf "REG written by stage %d" k
  | None -> Alcotest.fail "no write to REG"

let test_stage_inputs () =
  let ins = Spec.stage_inputs toy 1 in
  Alcotest.(check bool) "reads IR.1" true (List.mem_assoc "IR.1" ins);
  let files = Spec.stage_file_reads toy 1 in
  Alcotest.(check int) "two REG ports" 2 (List.length files)

let test_instance_chain () =
  let dlx = Dlx.Seq_dlx.machine Dlx.Seq_dlx.Base ~program:[] in
  Alcotest.(check (list string)) "C chain back" [ "C.4"; "C.3" ]
    (Spec.instance_chain dlx "C.4");
  Alcotest.(check (option string)) "next instance" (Some "C.4")
    (Spec.next_instance dlx "C.3");
  Alcotest.(check (option string)) "instance readable by stage 4"
    (Some "C.4")
    (Spec.instance_at_stage dlx "C.3" ~consumer_stage:4);
  Alcotest.(check (option string)) "gpr_we at stage 2" (Some "gpr_we.2")
    (Spec.instance_at_stage dlx "gpr_we.4" ~consumer_stage:2)

(* ---------------- Validation ---------------- *)

let break f =
  let m = toy in
  f m

let has_issue issues fragment =
  List.exists
    (fun (i : Machine.Validate.issue) ->
      let s = i.Machine.Validate.where ^ " " ^ i.Machine.Validate.what in
      let n = String.length fragment and h = String.length s in
      let rec go j = j + n <= h && (String.sub s j n = fragment || go (j + 1)) in
      go 0)
    issues

let test_validate_ok () =
  Alcotest.(check int) "toy is clean" 0
    (List.length (Machine.Validate.run toy));
  let dlx =
    Dlx.Seq_dlx.machine (Dlx.Seq_dlx.With_interrupts { sisr = 8 }) ~program:[]
  in
  Alcotest.(check int) "dlx_intr is clean" 0
    (List.length (Machine.Validate.run dlx))

let test_validate_double_writer () =
  let m =
    break (fun m ->
        let s0 = Spec.stage_of m 0 in
        let extra =
          { Spec.dst = "C.2"; value = E.const_int ~width:16 0; guard = None;
            wr_addr = None }
        in
        { m with Spec.stages =
            List.map (fun (s : Spec.stage) ->
                if s.Spec.index = 0 then { s with Spec.writes = extra :: s0.Spec.writes }
                else s)
              m.Spec.stages })
  in
  let issues = Machine.Validate.run m in
  Alcotest.(check bool) "flags wrong stage" true
    (has_issue issues "belongs to stage 1")

let test_validate_undeclared_read () =
  let m =
    break (fun m ->
        { m with Spec.stages =
            List.map (fun (s : Spec.stage) ->
                if s.Spec.index = 1 then
                  { s with Spec.writes =
                      { Spec.dst = "C.2"; value = E.input "ghost" 16;
                        guard = None; wr_addr = None }
                      :: List.tl s.Spec.writes }
                else s)
              m.Spec.stages })
  in
  Alcotest.(check bool) "flags undeclared" true
    (has_issue (Machine.Validate.run m) "undeclared register ghost")

let test_validate_width () =
  let m =
    break (fun m ->
        { m with Spec.stages =
            List.map (fun (s : Spec.stage) ->
                if s.Spec.index = 1 then
                  { s with Spec.writes =
                      { Spec.dst = "C.2"; value = E.const_int ~width:8 0;
                        guard = None; wr_addr = None }
                      :: List.tl s.Spec.writes }
                else s)
              m.Spec.stages })
  in
  Alcotest.(check bool) "flags width" true
    (has_issue (Machine.Validate.run m) "value width 8, register width 16")

let test_validate_file_addr () =
  let m =
    break (fun m ->
        { m with Spec.stages =
            List.map (fun (s : Spec.stage) ->
                if s.Spec.index = 2 then
                  { s with Spec.writes =
                      [ { Spec.dst = "REG"; value = E.input "C.2" 16;
                          guard = None; wr_addr = None } ] }
                else s)
              m.Spec.stages })
  in
  Alcotest.(check bool) "flags missing address" true
    (has_issue (Machine.Validate.run m) "without an address")

let test_reads_needing_forwarding () =
  let needs = Machine.Validate.reads_needing_forwarding toy in
  Alcotest.(check (list (pair int string))) "REG at stage 1" [ (1, "REG") ] needs;
  let dlx = Dlx.Seq_dlx.machine Dlx.Seq_dlx.Base ~program:[] in
  let needs = Machine.Validate.reads_needing_forwarding dlx in
  Alcotest.(check bool) "DPC at fetch" true (List.mem (0, "DPC") needs);
  Alcotest.(check bool) "GPR at decode" true (List.mem (1, "GPR") needs);
  Alcotest.(check bool) "MEM is local" false (List.mem (3, "MEM") needs)

(* ---------------- Sequential semantics ---------------- *)

let test_table1 () =
  (* The paper's Table 1: ue round robin for a 3-stage machine. *)
  let w = Machine.Seqsem.ue_table ~n_stages:3 ~cycles:9 in
  let cell t c = Hw.Wave.cell w ~cycle:t ~column:(Printf.sprintf "ue_%d" c) in
  for t = 0 to 8 do
    for k = 0 to 2 do
      Alcotest.(check (option string))
        (Printf.sprintf "cycle %d ue_%d" t k)
        (Some (if t mod 3 = k then "1" else "0"))
        (cell t k)
    done
  done

let test_seq_run () =
  let trace, st =
    Machine.Seqsem.run_state ~max_instructions:3 toy
  in
  Alcotest.(check int) "count" 3 trace.Machine.Seqsem.instructions;
  Alcotest.(check int) "snapshots" 4 (Array.length trace.Machine.Seqsem.spec_before);
  (* After the first program instruction r3 := r1 + r2 = 3. *)
  Alcotest.(check int) "r3" 3
    (B.to_int (Machine.State.read_file st "REG" (bv ~width:4 3)));
  (* spec_before.(1) reflects it too. *)
  let snap1 = trace.Machine.Seqsem.spec_before.(1) in
  match List.assoc "REG" snap1 with
  | v ->
    Alcotest.(check int) "spec r3" 3
      (B.to_int (Machine.Value.read_file v (bv ~width:4 3)))

let test_seq_halt () =
  let trace =
    Machine.Seqsem.run
      ~halt:(fun st -> B.to_int (Machine.State.get_scalar st "PC") >= 2)
      ~max_instructions:100 toy
  in
  Alcotest.(check bool) "halted" true trace.Machine.Seqsem.halted;
  Alcotest.(check int) "two instructions" 2 trace.Machine.Seqsem.instructions

(* Commit: instance pass-through. *)
let test_commit_passthrough () =
  let dlx = Dlx.Seq_dlx.machine Dlx.Seq_dlx.Base ~program:[] in
  let st = Machine.State.create dlx in
  Machine.State.set_scalar st "gpr_we.2" (B.one 1);
  (* Stage 2 has no explicit write to gpr_we.3: it must shift. *)
  Machine.Seqsem.step_stage dlx st ~stage:2;
  Alcotest.(check int) "shifted" 1
    (B.to_int (Machine.State.get_scalar st "gpr_we.3"))

let () =
  Alcotest.run "machine"
    [
      ( "values and state",
        [
          Alcotest.test_case "file values" `Quick test_value_file;
          Alcotest.test_case "file of list" `Quick test_value_of_list;
          Alcotest.test_case "state" `Quick test_state;
          Alcotest.test_case "snapshots" `Quick test_snapshot_diff;
        ] );
      ( "spec",
        [
          Alcotest.test_case "lookups" `Quick test_spec_lookup;
          Alcotest.test_case "stage inputs" `Quick test_stage_inputs;
          Alcotest.test_case "instance chains" `Quick test_instance_chain;
        ] );
      ( "validation",
        [
          Alcotest.test_case "clean machines" `Quick test_validate_ok;
          Alcotest.test_case "wrong-stage write" `Quick test_validate_double_writer;
          Alcotest.test_case "undeclared read" `Quick test_validate_undeclared_read;
          Alcotest.test_case "width mismatch" `Quick test_validate_width;
          Alcotest.test_case "file address" `Quick test_validate_file_addr;
          Alcotest.test_case "forwarding analysis" `Quick
            test_reads_needing_forwarding;
        ] );
      ( "sequential semantics",
        [
          Alcotest.test_case "table 1" `Quick test_table1;
          Alcotest.test_case "run" `Quick test_seq_run;
          Alcotest.test_case "halt" `Quick test_seq_halt;
          Alcotest.test_case "instance pass-through" `Quick
            test_commit_passthrough;
        ] );
    ]
