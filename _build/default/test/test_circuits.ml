(* The circuit generators: prefix networks, find-first-one, one-hot
   muxes and the two priority-selection implementations (paper §4.2's
   mux chain vs find-first-one + balanced tree). *)

module E = Hw.Expr
module B = Hw.Bitvec
module C = Hw.Circuits

let bv1 b = B.of_bool b

let env_of_bools bools values =
  Hw.Eval.env_of_assoc
    (List.mapi (fun i b -> (Printf.sprintf "x%d" i, bv1 b)) bools
    @ List.mapi
        (fun i v -> (Printf.sprintf "v%d" i, B.make ~width:8 v))
        values
    @ [ ("def", B.make ~width:8 222) ])

let bit_inputs n = List.init n (fun i -> E.input (Printf.sprintf "x%d" i) 1)

let eval_bits env es = List.map (fun e -> B.to_bool (Hw.Eval.eval env e)) es

let test_prefix_or () =
  let inputs = bit_inputs 5 in
  let prefixes = C.prefix_or inputs in
  let bools = [ false; true; false; false; true ] in
  let env = env_of_bools bools [] in
  Alcotest.(check (list bool))
    "prefix values"
    [ false; true; true; true; true ]
    (eval_bits env prefixes)

let test_find_first_one () =
  let inputs = bit_inputs 5 in
  let ffo = C.find_first_one inputs in
  let env = env_of_bools [ false; true; false; true; true ] [] in
  Alcotest.(check (list bool))
    "one-hot first"
    [ false; true; false; false; false ]
    (eval_bits env ffo)

let test_find_first_one_empty_and_single () =
  Alcotest.(check int) "empty" 0 (List.length (C.find_first_one []));
  let single = C.find_first_one [ E.input "x0" 1 ] in
  let env = env_of_bools [ true ] [] in
  Alcotest.(check (list bool)) "single" [ true ] (eval_bits env single)

let test_onehot_mux () =
  let cases =
    List.init 3 (fun i ->
        (E.input (Printf.sprintf "x%d" i) 1, E.input (Printf.sprintf "v%d" i) 8))
  in
  let e = C.onehot_mux cases in
  let env = env_of_bools [ false; true; false ] [ 10; 20; 30 ] in
  Alcotest.(check int) "selected" 20 (B.to_int (Hw.Eval.eval env e));
  let env0 = env_of_bools [ false; false; false ] [ 10; 20; 30 ] in
  Alcotest.(check int) "none = zero" 0 (B.to_int (Hw.Eval.eval env0 e))

let select_with impl n_cases bools values =
  let cases =
    List.init n_cases (fun i ->
        (E.input (Printf.sprintf "x%d" i) 1, E.input (Printf.sprintf "v%d" i) 8))
  in
  let e = C.priority_select ~impl cases ~default:(E.input "def" 8) in
  B.to_int (Hw.Eval.eval (env_of_bools bools values) e)

let test_priority_chain () =
  Alcotest.(check int) "first hit"
    20
    (select_with C.Chain 3 [ false; true; true ] [ 10; 20; 30 ]);
  Alcotest.(check int) "default"
    222
    (select_with C.Chain 3 [ false; false; false ] [ 10; 20; 30 ])

let test_priority_tree () =
  Alcotest.(check int) "first hit"
    20
    (select_with C.Tree 3 [ false; true; true ] [ 10; 20; 30 ]);
  Alcotest.(check int) "default"
    222
    (select_with C.Tree 3 [ false; false; false ] [ 10; 20; 30 ])

(* Property: the two implementations compute the same function. *)
let prop_chain_eq_tree =
  QCheck.Test.make ~name:"chain = tree (priority select)" ~count:500
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 0 7) bool)
        (list_of_size (QCheck.Gen.int_range 0 7) (int_bound 255)))
    (fun (bools, vals) ->
      let n = min (List.length bools) (List.length vals) in
      let bools = List.filteri (fun i _ -> i < n) bools in
      let vals = List.filteri (fun i _ -> i < n) vals in
      select_with C.Chain n bools vals = select_with C.Tree n bools vals)

(* Property: find-first-one output is one-hot and marks the first. *)
let prop_ffo_onehot =
  QCheck.Test.make ~name:"find_first_one is one-hot" ~count:500
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10) bool)
    (fun bools ->
      let n = List.length bools in
      let outs =
        eval_bits (env_of_bools bools [])
          (C.find_first_one (bit_inputs n))
      in
      let actives = List.filter (fun b -> b) outs in
      let expected_index =
        let rec go i = function
          | [] -> None
          | true :: _ -> Some i
          | false :: rest -> go (i + 1) rest
        in
        go 0 bools
      in
      match expected_index with
      | None -> actives = []
      | Some i -> List.length actives = 1 && List.nth outs i)

(* Property: the tree network has logarithmic depth, the chain linear
   (the paper's asymptotic claim, experiment E3). *)
let test_depth_asymptotics () =
  let depth impl sources =
    (Hw.Cost.of_expr (Pipeline.Mux_impl.build_network ~impl ~sources ~data_width:32)).Hw.Cost.depth
  in
  let chain_32 = depth C.Chain 32 and chain_4 = depth C.Chain 4 in
  let tree_32 = depth C.Tree 32 and tree_4 = depth C.Tree 4 in
  Alcotest.(check bool) "chain grows linearly" true (chain_32 >= chain_4 + 28 * 2 / 2);
  Alcotest.(check bool) "tree grows slowly" true (tree_32 <= tree_4 + 16);
  Alcotest.(check bool) "tree beats chain at 32" true (tree_32 < chain_32)

let () =
  Alcotest.run "circuits"
    [
      ( "unit",
        [
          Alcotest.test_case "prefix_or" `Quick test_prefix_or;
          Alcotest.test_case "find_first_one" `Quick test_find_first_one;
          Alcotest.test_case "ffo edge cases" `Quick
            test_find_first_one_empty_and_single;
          Alcotest.test_case "onehot_mux" `Quick test_onehot_mux;
          Alcotest.test_case "priority chain" `Quick test_priority_chain;
          Alcotest.test_case "priority tree" `Quick test_priority_tree;
          Alcotest.test_case "depth asymptotics" `Quick test_depth_asymptotics;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_chain_eq_tree; prop_ffo_onehot ] );
    ]
