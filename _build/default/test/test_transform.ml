(* The transformation tool: generated rule structure, signal
   namespaces, operating modes and error handling. *)

module T = Pipeline.Transform
module F = Pipeline.Fwd_spec
module Spec = Machine.Spec
module E = Hw.Expr

let toy_tr ?options () =
  Core.Toy.transform ?options ~program:Core.Toy.default_program ()

let dlx_tr ?options variant =
  let p = Dlx.Progs.fib 5 in
  Dlx.Seq_dlx.transform ?options ~data:p.Dlx.Progs.data variant
    ~program:(Dlx.Progs.program p)

let test_toy_rules () =
  let tr = toy_tr () in
  Alcotest.(check int) "two rules" 2 (List.length tr.T.rules);
  List.iter
    (fun (r : T.rule) ->
      Alcotest.(check int) "consumer" 1 r.T.consumer_stage;
      Alcotest.(check int) "writer" 2 r.T.writer_stage;
      Alcotest.(check int) "one source" 1 (List.length r.T.sources);
      match r.T.sources with
      | [ s ] ->
        Alcotest.(check bool) "writer source" true (s.T.src_kind = T.From_writer);
        Alcotest.(check bool) "eq tester" true s.T.has_addr_compare;
        Alcotest.(check bool) "not conservative" false s.T.conservative
      | _ -> Alcotest.fail "source shape")
    tr.T.rules

let test_dlx_figure2_structure () =
  (* The paper's figure 2: the GPR operand read in decode has hits in
     stages 2, 3 (via the C chain) and 4 (the writer). *)
  let tr = dlx_tr Dlx.Seq_dlx.Base in
  let rule =
    match T.find_rule tr ~stage:1 ~operand:(F.File_port ("GPR", 0)) with
    | Some r -> r
    | None -> Alcotest.fail "GPRa rule missing"
  in
  Alcotest.(check int) "writer stage" 4 rule.T.writer_stage;
  Alcotest.(check (list int)) "source stages" [ 2; 3; 4 ]
    (List.map (fun (s : T.source) -> s.T.src_stage) rule.T.sources);
  Alcotest.(check int) "three equality testers" 3
    (List.length
       (List.filter (fun (s : T.source) -> s.T.has_addr_compare) rule.T.sources));
  (match rule.T.sources with
  | [ s2; s3; s4 ] ->
    Alcotest.(check bool) "stage 2 via C.3" true (s2.T.src_kind = T.From_chain "C.3");
    Alcotest.(check bool) "stage 3 via C.3" true (s3.T.src_kind = T.From_chain "C.3");
    Alcotest.(check bool) "stage 4 writer" true (s4.T.src_kind = T.From_writer)
  | _ -> Alcotest.fail "sources");
  (* And the DPC forwarding of the fetch stage. *)
  match T.find_rule tr ~stage:0 ~operand:(F.Reg "DPC") with
  | Some r ->
    Alcotest.(check (list int)) "DPC source" [ 1 ]
      (List.map (fun (s : T.source) -> s.T.src_stage) r.T.sources)
  | None -> Alcotest.fail "DPC rule missing"

let test_qv_registers () =
  (* The valid-bit pipeline: one Qv register per chain stage. *)
  let tr = dlx_tr Dlx.Seq_dlx.Base in
  let qv =
    List.filter
      (fun (r : Spec.register) ->
        String.length r.Spec.reg_name > 3
        && String.sub r.Spec.reg_name 0 4 = "$Qv_")
      tr.T.machine.Spec.registers
  in
  Alcotest.(check (list string)) "Qv registers" [ "$Qv_C.3.3"; "$Qv_C.3.4" ]
    (List.sort String.compare
       (List.map (fun (r : Spec.register) -> r.Spec.reg_name) qv))

let test_signal_order () =
  (* Every signal definition only references registers, free inputs or
     earlier signals. *)
  let tr = dlx_tr Dlx.Seq_dlx.Base in
  let defined = Hashtbl.create 64 in
  List.iter
    (fun (name, e) ->
      List.iter
        (fun (n, _) ->
          if String.length n > 0 && n.[0] = '$' then begin
            let starts p =
              String.length n >= String.length p
              && String.sub n 0 (String.length p) = p
            in
            let free = starts "$full" || starts "$ext" || starts "$Qv_" in
            if not (free || Hashtbl.mem defined n) then
              Alcotest.failf "signal %s references %s before definition" name n
          end)
        (Hw.Expr.inputs e);
      Hashtbl.replace defined name ())
    tr.T.signals

let test_interlock_only () =
  let options = { F.mode = F.Interlock_only; impl = Hw.Circuits.Chain } in
  let tr = dlx_tr ~options Dlx.Seq_dlx.Base in
  List.iter
    (fun (r : T.rule) ->
      Alcotest.(check (option string)) "no g network" None r.T.g_signal)
    tr.T.rules;
  (* The stage functions still read the register file directly. *)
  let s1 = Spec.stage_of tr.T.machine 1 in
  let reads_gpr =
    List.exists
      (fun (w : Spec.write) ->
        List.mem_assoc "GPR" (Hw.Expr.file_reads w.Spec.value))
      s1.Spec.writes
  in
  Alcotest.(check bool) "direct file reads remain" true reads_gpr

let test_full_mode_substitutes () =
  let tr = dlx_tr Dlx.Seq_dlx.Base in
  let s1 = Spec.stage_of tr.T.machine 1 in
  let a2 =
    List.find (fun (w : Spec.write) -> w.Spec.dst = "A.2") s1.Spec.writes
  in
  match a2.Spec.value with
  | Hw.Expr.Input (name, 32) ->
    Alcotest.(check bool) "g signal" true
      (String.length name > 3 && String.sub name 0 3 = "$g_")
  | _ -> Alcotest.fail "A.2 should be a g signal reference"

let test_tree_impl_equivalent () =
  (* Chain and tree implementations give the same pipelined behaviour. *)
  let p = Dlx.Progs.bubble_sort [ 4; 1; 3; 2 ] in
  let run options =
    let tr =
      Dlx.Seq_dlx.transform ~options ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
        ~program:(Dlx.Progs.program p)
    in
    let r = Pipeline.Pipesem.run ~stop_after:p.Dlx.Progs.dyn_instructions tr in
    ( r.Pipeline.Pipesem.stats.Pipeline.Pipesem.cycles,
      Machine.State.get r.Pipeline.Pipesem.state "MEM" )
  in
  let c1, m1 = run { F.mode = F.Full; impl = Hw.Circuits.Chain } in
  let c2, m2 = run { F.mode = F.Full; impl = Hw.Circuits.Tree } in
  Alcotest.(check int) "same cycles" c1 c2;
  Alcotest.(check bool) "same memory" true (Machine.Value.equal m1 m2)

let test_rejects_malformed () =
  let m = Core.Toy.machine ~program:[] in
  let broken =
    {
      m with
      Spec.registers =
        List.map
          (fun (r : Spec.register) ->
            if r.Spec.reg_name = "C.2" then { r with Spec.width = 8 } else r)
          m.Spec.registers;
    }
  in
  match T.run broken with
  | exception T.Transform_error _ -> ()
  | _ -> Alcotest.fail "expected Transform_error"

let test_rejects_backward_read () =
  (* A later stage reading a register written by an earlier one must be
     rejected (the designer should add pipelined instances). *)
  let m = Core.Toy.machine ~program:[] in
  let broken =
    {
      m with
      Spec.stages =
        List.map
          (fun (s : Spec.stage) ->
            if s.Spec.index = 2 then
              {
                s with
                Spec.writes =
                  [
                    {
                      Spec.dst = "REG";
                      value = E.input "IR.1" 16;
                      guard = None;
                      wr_addr = Some (E.input "D.2" 4);
                    };
                  ];
              }
            else s)
          m.Spec.stages;
    }
  in
  match T.run broken with
  | exception T.Transform_error msg ->
    Alcotest.(check bool) "mentions instances" true
      (let sub = "pipelined instances" in
       let n = String.length sub and h = String.length msg in
       let rec go i = i + n <= h && (String.sub msg i n = sub || go (i + 1)) in
       go 0)
  | _ -> Alcotest.fail "expected Transform_error"

let test_speculation_validation () =
  let m = Core.Toy.machine ~program:[] in
  let bad_spec =
    {
      F.spec_label = "bad";
      resolve_stage = 9;
      mispredict = E.fls;
      rollback_writes = [];
      retires = false;
    }
  in
  match T.run ~speculations:[ bad_spec ] m with
  | exception T.Transform_error _ -> ()
  | _ -> Alcotest.fail "expected resolve-stage error"

let test_conservative_no_writer () =
  (* EPC is written only by the rollback: its read sources must be
     fully conservative. *)
  let tr = dlx_tr (Dlx.Seq_dlx.With_interrupts { sisr = 8 }) in
  match T.find_rule tr ~stage:1 ~operand:(F.Reg "EPC") with
  | Some r ->
    List.iter
      (fun (s : T.source) ->
        Alcotest.(check bool) "conservative" true s.T.conservative;
        Alcotest.(check bool) "no candidate" true (s.T.cand_signal = None))
      r.T.sources
  | None -> Alcotest.fail "EPC rule missing"

let test_inventory_and_cost () =
  let tr = dlx_tr Dlx.Seq_dlx.Base in
  let inv = Pipeline.Report.inventory tr in
  let gpra = List.find (fun r -> r.Pipeline.Report.sum_label = "1_GPRa") inv in
  Alcotest.(check int) "3 muxes" 3 gpra.Pipeline.Report.sum_mux_count;
  Alcotest.(check int) "3 hits" 3 gpra.Pipeline.Report.sum_hit_signals;
  Alcotest.(check bool) "positive cost" true
    (gpra.Pipeline.Report.sum_cost.Hw.Cost.gates > 0)

let () =
  Alcotest.run "transform"
    [
      ( "structure",
        [
          Alcotest.test_case "toy rules" `Quick test_toy_rules;
          Alcotest.test_case "figure 2 structure" `Quick
            test_dlx_figure2_structure;
          Alcotest.test_case "Qv registers" `Quick test_qv_registers;
          Alcotest.test_case "signal dependency order" `Quick test_signal_order;
          Alcotest.test_case "inventory" `Quick test_inventory_and_cost;
        ] );
      ( "modes",
        [
          Alcotest.test_case "interlock only" `Quick test_interlock_only;
          Alcotest.test_case "full substitutes reads" `Quick
            test_full_mode_substitutes;
          Alcotest.test_case "tree = chain behaviour" `Quick
            test_tree_impl_equivalent;
          Alcotest.test_case "conservative sources" `Quick
            test_conservative_no_writer;
        ] );
      ( "errors",
        [
          Alcotest.test_case "malformed machine" `Quick test_rejects_malformed;
          Alcotest.test_case "backward read" `Quick test_rejects_backward_read;
          Alcotest.test_case "bad speculation" `Quick test_speculation_validation;
        ] );
    ]
