(* The stall engine (paper §3): the pure per-cycle equations, the
   full-bit update, and the HDL export of the same equations. *)

module SE = Pipeline.Stall_engine

let no_mispredict ~stage:_ ~stalled:_ = false

let compute ?(dhaz = [||]) ?(ext = [||]) ?(mispredict = no_mispredict) fullb =
  let n = Array.length fullb in
  let pad a = if Array.length a = n then a else Array.make n false in
  SE.compute ~fullb ~dhaz:(pad dhaz) ~ext:(pad ext) ~mispredict

let test_all_flowing () =
  let s = compute [| true; true; true; true |] in
  Alcotest.(check (array bool)) "all full" [| true; true; true; true |] s.SE.full;
  Alcotest.(check (array bool)) "no stalls" [| false; false; false; false |] s.SE.stall;
  Alcotest.(check (array bool)) "all ue" [| true; true; true; true |] s.SE.ue;
  Alcotest.(check (array bool)) "next full" [| true; true; true; true |]
    (SE.next_fullb s)

let test_stage0_always_full () =
  let s = compute [| false; false; false; false |] in
  Alcotest.(check bool) "full_0" true s.SE.full.(0);
  Alcotest.(check bool) "ue_0" true s.SE.ue.(0)

let test_dhaz_stalls_above () =
  (* dhaz in stage 1: stages 0 and 1 stall, stages 2,3 proceed. *)
  let s = compute ~dhaz:[| false; true; false; false |] [| true; true; true; true |] in
  Alcotest.(check (array bool)) "stalls" [| true; true; false; false |] s.SE.stall;
  Alcotest.(check (array bool)) "ue" [| false; false; true; true |] s.SE.ue;
  (* Stage 2 empties (bubble), stage 1 keeps its instruction. *)
  Alcotest.(check (array bool)) "next full" [| true; true; false; true |]
    (SE.next_fullb s)

let test_bubble_does_not_stall () =
  (* Stage 1 stalled, stage 2 empty: the bubble absorbs the stall. *)
  let s =
    compute ~dhaz:[| false; true; false; false |]
      [| true; true; false; true |]
  in
  Alcotest.(check bool) "stage 2 no stall" false s.SE.stall.(2);
  Alcotest.(check bool) "stage 3 proceeds" true s.SE.ue.(3);
  (* An empty stage never stalls nor updates. *)
  Alcotest.(check bool) "stage 2 no ue" false s.SE.ue.(2)

let test_bubble_removal () =
  (* Stage 2 empty, stage 1 full and flowing: bubble filled next cycle. *)
  let s = compute [| true; true; false; true |] in
  Alcotest.(check bool) "stage 1 flows into bubble" true (SE.next_fullb s).(2)

let test_ext_stall () =
  let s = compute ~ext:[| false; false; false; true |] [| true; true; true; true |] in
  Alcotest.(check (array bool)) "everything stalls"
    [| true; true; true; true |] s.SE.stall;
  Alcotest.(check (array bool)) "nothing moves"
    [| false; false; false; false |] s.SE.ue

let test_rollback_squash () =
  (* Misspeculation detected in stage 2: stages 0..2 squashed, stage 3
     proceeds. *)
  let mispredict ~stage ~stalled:_ = stage = 2 in
  let s = compute ~mispredict [| true; true; true; true |] in
  Alcotest.(check (array bool)) "rollback" [| false; false; true; false |] s.SE.rollback;
  Alcotest.(check (array bool)) "rollback'" [| true; true; true; false |] s.SE.rollback_up;
  Alcotest.(check (array bool)) "ue" [| false; false; false; true |] s.SE.ue;
  (* Stage 3's instruction retires and nothing refills it: the whole
     pipe behind the rollback is empty. *)
  Alcotest.(check (array bool)) "squashed" [| true; false; false; false |]
    (SE.next_fullb s)

let test_rollback_not_when_stalled () =
  (* The comparison fires only in a full, unstalled stage. *)
  let mispredict ~stage ~stalled = stage = 2 && not stalled in
  let s =
    compute ~mispredict ~ext:[| false; false; false; true |]
      [| true; true; true; true |]
  in
  Alcotest.(check (array bool)) "no rollback under stall"
    [| false; false; false; false |] s.SE.rollback

let test_rollback_squashes_stalled_stage () =
  (* A stalled stage above the rollback point is squashed anyway. *)
  let mispredict ~stage ~stalled:_ = stage = 3 in
  let s =
    compute ~mispredict ~dhaz:[| false; true; false; false |]
      [| true; true; true; true |]
  in
  Alcotest.(check bool) "stage 1 was stalled" true s.SE.stall.(1);
  Alcotest.(check bool) "stage 1 still squashed" false (SE.next_fullb s).(1)

(* Property: the invariants of Trace_invariants hold for arbitrary
   dhaz/ext/full combinations. *)
let prop_engine_invariants =
  QCheck.Test.make ~name:"engine invariants" ~count:1000
    QCheck.(triple (list_of_size (QCheck.Gen.return 5) bool)
              (list_of_size (QCheck.Gen.return 5) bool)
              (list_of_size (QCheck.Gen.return 5) bool))
    (fun (fl, dh, ex) ->
      let fullb = Array.of_list fl
      and dhaz = Array.of_list dh
      and ext = Array.of_list ex in
      let s = SE.compute ~fullb ~dhaz ~ext ~mispredict:no_mispredict in
      let n = 5 in
      let ok = ref true in
      for k = 0 to n - 1 do
        if s.SE.ue.(k) && (s.SE.stall.(k) || not s.SE.full.(k)) then ok := false;
        if s.SE.stall.(k) && not s.SE.full.(k) then ok := false;
        if
          k < n - 1 && s.SE.stall.(k + 1) && s.SE.full.(k)
          && not s.SE.stall.(k)
        then ok := false
      done;
      !ok)

(* The HDL export computes the same functions as the OCaml engine. *)
let prop_exprs_match =
  let module E = Hw.Expr in
  QCheck.Test.make ~name:"HDL stall engine = reference" ~count:500
    QCheck.(triple (list_of_size (QCheck.Gen.return 4) bool)
              (list_of_size (QCheck.Gen.return 4) bool)
              (list_of_size (QCheck.Gen.return 4) bool))
    (fun (fl, dh, ex) ->
      let n = 4 in
      let fullb = Array.of_list fl
      and dhaz = Array.of_list dh
      and ext = Array.of_list ex in
      let reference = SE.compute ~fullb ~dhaz ~ext ~mispredict:no_mispredict in
      let defs =
        SE.exprs ~n_stages:n
          ~dhaz:(fun k -> E.input (Printf.sprintf "$dh_%d" k) 1)
          ~mispredict:(fun _ -> E.fls)
      in
      let tbl = Hashtbl.create 32 in
      for k = 0 to n - 1 do
        Hashtbl.replace tbl (Pipeline.Transform.full_signal k)
          (Hw.Bitvec.of_bool (k = 0 || fullb.(k)));
        Hashtbl.replace tbl (Pipeline.Transform.ext_signal k)
          (Hw.Bitvec.of_bool ext.(k));
        Hashtbl.replace tbl (Printf.sprintf "$dh_%d" k)
          (Hw.Bitvec.of_bool dhaz.(k))
      done;
      let env =
        {
          Hw.Eval.lookup_input = (fun name -> Hashtbl.find tbl name);
          lookup_file = (fun _ _ -> Hw.Bitvec.zero 1);
        }
      in
      List.iter
        (fun (name, e) -> Hashtbl.replace tbl name (Hw.Eval.eval env e))
        defs;
      let get name = Hw.Bitvec.to_bool (Hashtbl.find tbl name) in
      let ok = ref true in
      for k = 0 to n - 1 do
        if get (Printf.sprintf "$stall_%d" k) <> reference.SE.stall.(k) then
          ok := false;
        if get (Printf.sprintf "$ue_%d" k) <> reference.SE.ue.(k) then
          ok := false
      done;
      for s = 1 to n - 1 do
        if get (Printf.sprintf "$fullb_next_%d" s) <> (SE.next_fullb reference).(s)
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "stall_engine"
    [
      ( "unit",
        [
          Alcotest.test_case "all flowing" `Quick test_all_flowing;
          Alcotest.test_case "stage 0 always full" `Quick test_stage0_always_full;
          Alcotest.test_case "dhaz stalls above" `Quick test_dhaz_stalls_above;
          Alcotest.test_case "bubble absorbs stall" `Quick test_bubble_does_not_stall;
          Alcotest.test_case "bubble removal" `Quick test_bubble_removal;
          Alcotest.test_case "ext stall" `Quick test_ext_stall;
          Alcotest.test_case "rollback squash" `Quick test_rollback_squash;
          Alcotest.test_case "no rollback when stalled" `Quick
            test_rollback_not_when_stalled;
          Alcotest.test_case "rollback beats stall" `Quick
            test_rollback_squashes_stalled_stage;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_engine_invariants; prop_exprs_match ] );
    ]
