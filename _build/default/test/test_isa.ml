(* ISA encode/decode and the assembler. *)

module I = Dlx.Isa
module A = Dlx.Asm

let test_roundtrip_examples () =
  let cases =
    [
      I.Add (3, 1, 2);
      I.Sub (31, 30, 29);
      I.Sll (4, 5, 6);
      I.Slt (7, 8, 9);
      I.Addi (3, 1, -5);
      I.Addi (3, 1, 32767);
      I.Andi (2, 2, 0xFFFF);
      I.Lhi (10, 0xABCD);
      I.Slli (4, 4, 31);
      I.Lw (5, 1, -8);
      I.Lb (5, 1, 3);
      I.Lbu (5, 1, 3);
      I.Lh (5, 1, 2);
      I.Lhu (5, 1, 2);
      I.Sw (1, 9, 100);
      I.Beqz (7, -12);
      I.Bnez (7, 16);
      I.J 1024;
      I.J (-4);
      I.Jal 2048;
      I.Jr 31;
      I.Jalr 4;
      I.Trap 5;
      I.Rfe;
      I.Nop;
    ]
  in
  List.iter
    (fun i ->
      match I.decode (I.encode i) with
      | Some i' ->
        Alcotest.(check string) (I.to_string i) (I.to_string i) (I.to_string i')
      | None -> Alcotest.failf "%s decodes to illegal" (I.to_string i))
    cases

let test_illegal () =
  Alcotest.(check bool) "opcode 0x3F illegal" false (I.is_legal (0x3F lsl 26));
  Alcotest.(check bool) "rtype bad func" false
    (I.is_legal ((1 lsl 21) lor 0x3F));
  Alcotest.(check bool) "nop legal" true (I.is_legal I.nop_word)

let prop_roundtrip =
  let arb =
    QCheck.make
      ~print:(fun w -> Printf.sprintf "0x%08x" w)
      QCheck.Gen.(int_bound ((1 lsl 30) - 1) >|= fun v -> v * 4)
  in
  QCheck.Test.make ~name:"decode-encode-decode stable" ~count:2000 arb
    (fun word ->
      let word = word land 0xFFFFFFFF in
      match I.decode word with
      | None -> true
      | Some i -> (
        match I.decode (I.encode i) with
        | Some i' -> i = i' || I.to_string i = I.to_string i'
        | None -> false))

let test_assemble_labels () =
  let items =
    [
      A.Insn (I.Addi (1, 0, 3));
      A.Label "loop";
      A.Insn (I.Addi (1, 1, -1));
      A.Bnez_l (1, "loop");
      A.Insn I.Nop;
    ]
  in
  let words = A.assemble items in
  Alcotest.(check int) "4 words" 4 (List.length words);
  (* The branch sits at byte 8; target "loop" is byte 4; offset =
     4 - (8 + 4) = -8. *)
  match I.decode (List.nth words 2) with
  | Some (I.Bnez (1, -8)) -> ()
  | Some i -> Alcotest.failf "branch decoded as %s" (I.to_string i)
  | None -> Alcotest.fail "branch illegal"

let test_assemble_forward_label () =
  let items =
    [ A.J_l "end"; A.Insn I.Nop; A.Insn (I.Addi (1, 0, 1)); A.Label "end" ]
  in
  match I.decode (List.nth (A.assemble items) 0) with
  | Some (I.J 8) -> ()
  | Some i -> Alcotest.failf "jump decoded as %s" (I.to_string i)
  | None -> Alcotest.fail "illegal"

let test_assemble_errors () =
  (match A.assemble [ A.J_l "nowhere" ] with
  | exception A.Asm_error _ -> ()
  | _ -> Alcotest.fail "unknown label accepted");
  match A.assemble [ A.Label "x"; A.Label "x" ] with
  | exception A.Asm_error _ -> ()
  | _ -> Alcotest.fail "duplicate label accepted"

let test_halt_idiom () =
  let words = A.assemble A.halt in
  Alcotest.(check int) "two words" 2 (List.length words);
  match I.decode (List.nth words 0) with
  | Some (I.J (-4)) -> ()
  | Some i -> Alcotest.failf "halt jump decoded as %s" (I.to_string i)
  | None -> Alcotest.fail "illegal"

let () =
  Alcotest.run "isa"
    [
      ( "encoding",
        [
          Alcotest.test_case "round trips" `Quick test_roundtrip_examples;
          Alcotest.test_case "illegal encodings" `Quick test_illegal;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
      ( "assembler",
        [
          Alcotest.test_case "backward label" `Quick test_assemble_labels;
          Alcotest.test_case "forward label" `Quick test_assemble_forward_label;
          Alcotest.test_case "errors" `Quick test_assemble_errors;
          Alcotest.test_case "halt idiom" `Quick test_halt_idiom;
        ] );
    ]
