(* HDL emission: concrete syntax of expressions and module structure,
   plus the Wave trace tables. *)

module E = Hw.Expr
module V = Hw.Verilog

let expr_str e = Format.asprintf "%a" V.pp_expr e

let test_sanitize () =
  Alcotest.(check string) "dots" "C_3" (V.sanitize "C.3");
  Alcotest.(check string) "dollar" "_g_1_GPRa" (V.sanitize "$g_1_GPRa")

let test_exprs () =
  Alcotest.(check string) "const" "8'd42" (expr_str (E.const_int ~width:8 42));
  Alcotest.(check string) "add" "(a + b)"
    (expr_str (E.( +: ) (E.input "a" 8) (E.input "b" 8)));
  Alcotest.(check string) "mux" "(s ? a : b)"
    (expr_str (E.Mux (E.input "s" 1, E.input "a" 8, E.input "b" 8)));
  Alcotest.(check string) "slice" "a[4:2]"
    (expr_str (E.slice (E.input "a" 8) ~hi:4 ~lo:2));
  Alcotest.(check string) "single bit" "a[3]"
    (expr_str (E.slice (E.input "a" 8) ~hi:3 ~lo:3));
  Alcotest.(check string) "signed compare"
    "($signed(a) < $signed(b))"
    (expr_str (E.Binop (E.Lts, E.input "a" 8, E.input "b" 8)));
  Alcotest.(check string) "zext" "{4'd0, a}"
    (expr_str (E.Zext (E.input "a" 4, 8)));
  Alcotest.(check string) "sext" "{{4{a[3]}}, a}"
    (expr_str (E.Sext (E.input "a" 4, 8)));
  Alcotest.(check string) "file read" "GPR[a]"
    (expr_str (E.File_read { file = "GPR"; data_width = 32; addr = E.input "a" 5 }))

let test_module () =
  let m =
    {
      V.module_name = "demo";
      ports = [ { V.port_name = "x"; port_width = 8; dir = V.In } ];
      items =
        [
          V.Comment "hello";
          V.Wire ("y", 8, E.( +: ) (E.input "x" 8) (E.const_int ~width:8 1));
          V.Reg_decl ("q", 8, Some (E.input "y" 8));
        ];
    }
  in
  let s = V.to_string m in
  let has sub =
    let n = String.length sub and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "module header" true (has "module demo (");
  Alcotest.(check bool) "clk port" true (has "input clk");
  Alcotest.(check bool) "input port" true (has "input [7:0] x");
  Alcotest.(check bool) "wire" true (has "wire [7:0] y = (x + 8'd1);");
  Alcotest.(check bool) "reg" true (has "reg [7:0] q;");
  Alcotest.(check bool) "always" true (has "always @(posedge clk) q <= y;");
  Alcotest.(check bool) "endmodule" true (has "endmodule")

let test_dlx_verilog_emits () =
  (* The generated control logic of the DLX prints without raising and
     mentions the key synthesized signals. *)
  let p = Dlx.Progs.fib 5 in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  let s = Hw.Verilog.to_string (Pipeline.Report.verilog tr) in
  let has sub =
    let n = String.length sub and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "g network" true (has "_g_1_GPRa");
  Alcotest.(check bool) "hit signal" true (has "_hit_1_GPRa_2");
  Alcotest.(check bool) "stall engine" true (has "_stall_0");
  Alcotest.(check bool) "ue" true (has "_ue_4");
  Alcotest.(check bool) "valid pipe" true (has "_Qv_C_3");
  Alcotest.(check bool) "dhaz" true (has "_dhaz_stage_1")

let test_wave () =
  let w = Hw.Wave.create ~columns:[ "a"; "b" ] in
  Hw.Wave.record_bits w [ ("a", true); ("b", false) ];
  Hw.Wave.record w [ ("a", "7") ];
  Alcotest.(check int) "cycles" 2 (Hw.Wave.cycles w);
  Alcotest.(check (option string)) "cell" (Some "1")
    (Hw.Wave.cell w ~cycle:0 ~column:"a");
  Alcotest.(check (option string)) "missing cell" None
    (Hw.Wave.cell w ~cycle:1 ~column:"b");
  let s = Hw.Wave.to_string w in
  Alcotest.(check bool) "renders" true (String.length s > 10)

let test_dot_graph () =
  let p = Dlx.Progs.fib 5 in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  let s = Pipeline.Dot.forwarding_graph tr in
  let has sub =
    let n = String.length sub and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (has "digraph dlx5");
  Alcotest.(check bool) "stage clusters" true (has "cluster_stage4");
  Alcotest.(check bool) "g node" true (has "g 1_GPRa");
  Alcotest.(check bool) "hit edges" true (has "hit[2]");
  Alcotest.(check bool) "chain edge from C.3" true (has "r_C_3 -> g_1_GPRa");
  Alcotest.(check bool) "instance flow" true (has "r_C_3 -> r_C_4");
  (* Balanced braces: crude well-formedness. *)
  let count c = String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 s in
  Alcotest.(check int) "braces balance" (count '{') (count '}')

let () =
  Alcotest.run "verilog"
    [
      ( "unit",
        [
          Alcotest.test_case "sanitize" `Quick test_sanitize;
          Alcotest.test_case "expressions" `Quick test_exprs;
          Alcotest.test_case "module" `Quick test_module;
          Alcotest.test_case "dlx control logic" `Quick test_dlx_verilog_emits;
          Alcotest.test_case "wave tables" `Quick test_wave;
          Alcotest.test_case "dot graph" `Quick test_dot_graph;
        ] );
    ]
