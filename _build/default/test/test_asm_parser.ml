(* The textual assembler. *)

module P = Dlx.Asm_parser
module I = Dlx.Isa
module A = Dlx.Asm

let parse_one s =
  match P.parse s with
  | [ A.Insn i ] -> i
  | items -> Alcotest.failf "expected one instruction, got %d items" (List.length items)

let check_insn msg expected s =
  Alcotest.(check string) msg (I.to_string expected) (I.to_string (parse_one s))

let test_alu () =
  check_insn "add" (I.Add (3, 1, 2)) "add r3, r1, r2";
  check_insn "case insensitive" (I.Sub (3, 1, 2)) "SUB R3, R1, R2";
  check_insn "addi negative" (I.Addi (1, 1, -5)) "addi r1, r1, -5";
  check_insn "hex" (I.Ori (2, 2, 0xFF)) "ori r2, r2, 0xff";
  check_insn "lhi" (I.Lhi (4, 0x7FFF)) "lhi r4, 0x7fff";
  check_insn "slli" (I.Slli (4, 5, 3)) "slli r4, r5, 3"

let test_memory () =
  check_insn "lw" (I.Lw (4, 1, 8)) "lw r4, 8(r1)";
  check_insn "lw no offset" (I.Lw (4, 1, 0)) "lw r4, (r1)";
  check_insn "lb negative" (I.Lb (4, 1, -3)) "lb r4, -3(r1)";
  check_insn "sw" (I.Sw (2, 7, 12)) "sw 12(r2), r7"

let test_control_and_system () =
  (match P.parse "beqz r1, done" with
  | [ A.Beqz_l (1, "done") ] -> ()
  | _ -> Alcotest.fail "beqz");
  (match P.parse "j loop" with
  | [ A.J_l "loop" ] -> ()
  | _ -> Alcotest.fail "j");
  check_insn "jr" (I.Jr 31) "jr r31";
  check_insn "trap" (I.Trap 5) "trap 5";
  check_insn "rfe" I.Rfe "rfe";
  check_insn "nop" I.Nop "nop"

let test_labels_and_comments () =
  let items =
    P.parse
      "; leading comment\nstart:  addi r1, r0, 3 ; trailing\n  # another\n\
       loop: bnez r1, loop // slashes\n  nop\n"
  in
  match items with
  | [ A.Label "start"; A.Insn _; A.Label "loop"; A.Bnez_l (1, "loop");
      A.Insn I.Nop ] -> ()
  | _ -> Alcotest.failf "unexpected shape (%d items)" (List.length items)

let test_halt_expansion () =
  match P.parse "halt" with
  | [ A.Label "$halt"; A.J_l "$halt"; A.Insn I.Nop ] -> ()
  | _ -> Alcotest.fail "halt expansion"

let test_errors () =
  let expect_error s =
    match P.parse s with
    | exception P.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" s
  in
  expect_error "frobnicate r1";
  expect_error "add r1, r2";
  expect_error "add r1, r2, 5";
  expect_error "addi r1, r2, banana";
  expect_error "lw r1, r2";
  expect_error "add r32, r1, r2"

let test_error_line_numbers () =
  match P.parse "nop\nnop\nbogus r1\n" with
  | exception P.Parse_error { line = 3; _ } -> ()
  | exception P.Parse_error { line; _ } ->
    Alcotest.failf "wrong line %d" line
  | _ -> Alcotest.fail "accepted"

let test_roundtrip_through_machine () =
  (* Assemble a program textually, run it on the golden model. *)
  let text =
    "        addi r1, r0, 5\n\
     \        addi r10, r0, 0\n\
     loop:   add  r10, r10, r1\n\
     \        addi r1, r1, -1\n\
     \        bnez r1, loop\n\
     \        nop\n\
     \        sw 0(r0), r10\n\
     \        halt\n"
  in
  let program = P.parse_program text in
  let s = Dlx.Refmodel.create ~program () in
  Dlx.Refmodel.run s ~steps:30;
  Alcotest.(check int) "sum 1..5" 15 s.Dlx.Refmodel.mem.(0)

let test_parsed_program_pipelines_consistently () =
  let text =
    "        addi r1, r0, 256\n\
     \        lw   r2, 0(r1)\n\
     \        add  r3, r2, r2\n\
     \        sw   4(r1), r3\n\
     \        halt\n"
  in
  let body =
    List.filter
      (fun item -> match item with A.Label "$halt" -> false | _ -> true)
      (P.parse text)
  in
  (* Progs.make re-appends the halt idiom; drop the parsed one. *)
  let rec drop_tail = function
    | [ A.J_l "$halt"; A.Insn I.Nop ] -> []
    | x :: rest -> x :: drop_tail rest
    | [] -> []
  in
  let p = Dlx.Progs.make ~data:[ (64, 21) ] "parsed" (drop_tail body) in
  let tr =
    Dlx.Seq_dlx.transform ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p)
  in
  let report =
    Proof_engine.Consistency.check ~max_instructions:p.Dlx.Progs.dyn_instructions
      tr
  in
  Alcotest.(check bool) "consistent" true (Proof_engine.Consistency.ok report)

let () =
  Alcotest.run "asm_parser"
    [
      ( "syntax",
        [
          Alcotest.test_case "alu" `Quick test_alu;
          Alcotest.test_case "memory" `Quick test_memory;
          Alcotest.test_case "control / system" `Quick test_control_and_system;
          Alcotest.test_case "labels and comments" `Quick
            test_labels_and_comments;
          Alcotest.test_case "halt" `Quick test_halt_expansion;
        ] );
      ( "errors",
        [
          Alcotest.test_case "rejections" `Quick test_errors;
          Alcotest.test_case "line numbers" `Quick test_error_line_numbers;
        ] );
      ( "integration",
        [
          Alcotest.test_case "golden model" `Quick test_roundtrip_through_machine;
          Alcotest.test_case "pipelined" `Quick
            test_parsed_program_pipelines_consistently;
        ] );
    ]
