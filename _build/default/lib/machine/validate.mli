(** Well-formedness of prepared sequential machines.

    The transformation assumes the designer already performed steps 1)
    and 2) of the textbook recipe (stage partitioning and structural-
    hazard resolution).  [run] checks that the description is
    consistent with the paper's machine model:

    - stage indices are [0 .. n-1], in order, with no gaps;
    - every register's writing stage is in range;
    - each register is written by at most one stage — a register
      written by two stages would be a structural hazard (step 2
      violated) — and by no stage other than its declared one;
    - instance chains are consistent: [prev_instance] exists, has the
      same width and kind, and belongs to the previous stage;
    - every expression is well-typed and only reads declared registers
      with matching widths;
    - file writes carry a write address of the right width, scalar
      writes carry none; file reads use the right address width;
    - initial values have the right shape. *)

type issue = { where : string; what : string }

val run : Spec.t -> issue list
(** Empty iff the machine is well-formed. *)

val check_exn : Spec.t -> unit
(** @raise Failure listing all issues, if any. *)

val reads_needing_forwarding : Spec.t -> (int * string) list
(** Pairs [(stage k, register R)] such that stage [k] reads [R] but no
    instance of [R] is an output of stage [k-1] or [k] — exactly the
    reads for which the paper's §4 says forwarding logic is required.
    File reads are reported by file name. *)
