type t =
  | Scalar of Hw.Bitvec.t
  | File of Hw.Bitvec.t array

let scalar v = Scalar v
let zero_scalar ~width = Scalar (Hw.Bitvec.zero width)

let zero_file ~width ~addr_bits =
  File (Array.make (1 lsl addr_bits) (Hw.Bitvec.zero width))

let file_of_list ~width ~addr_bits entries =
  let n = 1 lsl addr_bits in
  if List.length entries > n then
    invalid_arg "Value.file_of_list: too many entries";
  List.iter
    (fun e ->
      if Hw.Bitvec.width e <> width then
        invalid_arg "Value.file_of_list: width mismatch")
    entries;
  let arr = Array.make n (Hw.Bitvec.zero width) in
  List.iteri (fun i e -> arr.(i) <- e) entries;
  File arr

let copy = function
  | Scalar _ as v -> v
  | File arr -> File (Array.copy arr)

let equal a b =
  match (a, b) with
  | Scalar x, Scalar y -> Hw.Bitvec.equal x y
  | File x, File y ->
    Array.length x = Array.length y
    && (let ok = ref true in
        Array.iteri (fun i xi -> if not (Hw.Bitvec.equal xi y.(i)) then ok := false) x;
        !ok)
  | Scalar _, File _ | File _, Scalar _ -> false

let read_scalar = function
  | Scalar v -> v
  | File _ -> invalid_arg "Value.read_scalar: register file"

let read_file t addr =
  match t with
  | Scalar _ -> invalid_arg "Value.read_file: scalar"
  | File arr -> arr.(Hw.Bitvec.to_int addr land (Array.length arr - 1))

let write_file t addr data =
  match t with
  | Scalar _ -> invalid_arg "Value.write_file: scalar"
  | File arr -> arr.(Hw.Bitvec.to_int addr land (Array.length arr - 1)) <- data

let pp ppf = function
  | Scalar v -> Hw.Bitvec.pp ppf v
  | File arr ->
    Format.fprintf ppf "[|";
    Array.iteri
      (fun i v ->
        if i > 0 then Format.fprintf ppf "; ";
        Hw.Bitvec.pp ppf v)
      arr;
    Format.fprintf ppf "|]"
