(** A combinator layer for writing prepared sequential machines.

    {!Spec.t} is a plain record; describing a machine by hand means a
    lot of record boilerplate.  This builder keeps descriptions close
    to how a designer thinks — declare registers, pipe them, write them
    from stages — while producing exactly a {!Spec.t} (validated on
    {!spec}).

    {[
      let m =
        Build.start ~name:"toy3" ~stages:[ "FETCH"; "EX"; "WB" ]
        |> Build.simple "PC" ~width:8 ~stage:0 ~visible:true
        |> Build.file "IMEM" ~width:16 ~addr_bits:8 ~stage:0
        |> Build.simple "IR.1" ~width:16 ~stage:0
        |> Build.simple "C.2" ~width:16 ~stage:1
        |> Build.simple "D.2" ~width:4 ~stage:1
        |> Build.file "REG" ~width:16 ~addr_bits:4 ~stage:2 ~visible:true
        |> Build.write ~stage:0 "IR.1" Expr.(file_read "IMEM" ...)
        |> ...
        |> Build.spec
    ]} *)

type t

val start : name:string -> stages:string list -> t
(** Stage names in pipeline order (their count fixes [n_stages]). *)

val simple :
  ?visible:bool -> ?prev:string -> ?init:Hw.Bitvec.t ->
  string -> width:int -> stage:int -> t -> t
(** Declare a scalar register.  [prev] links a pipelined instance. *)

val file :
  ?visible:bool -> ?init:Hw.Bitvec.t list ->
  string -> width:int -> addr_bits:int -> stage:int -> t -> t

val pipe : string -> through:int -> t -> t
(** [pipe r ~through b] creates pass-through instances of [r] in every
    stage after [r]'s up to [through]: a register named ["X.k"] (for
    any prefix [X]) written by stage [s] yields ["X.k+1"] ... each
    linked via [prev_instance] — the boilerplate of a forwarding or
    control chain in one line.  Registers without the dotted-suffix
    convention get ["<name>.k"] suffixes starting at their stage + 2.
    @raise Invalid_argument if [through] is not beyond [r]'s stage. *)

val write :
  ?guard:Hw.Expr.t -> ?addr:Hw.Expr.t ->
  stage:int -> string -> Hw.Expr.t -> t -> t

val spec : t -> Spec.t
(** Assemble and validate.
    @raise Failure (from {!Validate.check_exn}) if ill-formed. *)
