(** Stage insertion (a mechanized piece of step 1 of the textbook
    recipe).

    The paper assumes the partitioning into stages is done manually.
    [insert_passthrough] automates a common re-partitioning: splitting
    the pipeline by inserting an empty stage at a given position — the
    way a designer deepens a machine when a stage's logic no longer
    fits the cycle time (e.g. giving the memory access two stages).

    Inserting a stage at position [at] (the new stage takes index
    [at]; old stages [at..n-1] shift to [at+1..n]):

    - registers written by the shifted stages move with them;
    - a register produced right before the insertion point and consumed
      right after it must now cross the new stage, so a {e bridge
      instance} is created in the inserted stage (named
      ["<reg>@<at>"]), the consumer's expressions are rewritten to read
      the bridge, and instance links are re-threaded through it —
      which means existing forwarding-register chains simply grow by
      one pass-through member and the transformation tool synthesizes
      the extra forwarding source and valid bit without any new hints;
    - register files cannot be piped: a never-written file (a ROM,
      e.g. instruction memory) that the split stage reads is simply
      re-assigned to the reader so the read stays local; a {e written}
      file crossing the boundary is rejected (that split would create a
      write-after-read hazard no forwarding can fix — re-partition
      differently).

    The sequential semantics per instruction is unchanged (the new
    stage only shifts values), so the machine remains its own
    specification.  Stage indices in forwarding hints and speculations
    refer to the {e new} numbering; use {!shift_stage} to adjust
    existing ones. *)

val insert_passthrough : Spec.t -> at:int -> Spec.t
(** @raise Invalid_argument unless [1 <= at <= n_stages - 1]. *)

val deepen : Spec.t -> at:int -> times:int -> Spec.t
(** Insert [times] consecutive pass-through stages at [at]. *)

val shift_stage : at:int -> int -> int
(** [shift_stage ~at k] is the new index of old stage [k]. *)
