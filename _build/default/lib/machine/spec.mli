(** Prepared sequential machine descriptions (paper §2).

    A machine is a set of pipeline stages [0 .. n-1], a set of
    registers each assigned to the stage that writes it, and per-stage
    data-path functions.  Steps 1) and 2) of the textbook pipelining
    recipe — partitioning into stages and resolving structural hazards
    — are assumed done by the designer (and checked by
    {!Validate.run}); the transformation tool in [Pipeline.Transform]
    performs steps 3) and 4), forwarding and interlock.

    Naming conventions follow the paper: the pipelined instance of
    register [R] written by stage [k-1] is called [R.k]; instance
    registers are linked through {!field-register.prev_instance} so the
    clock-enable rule of §2 applies (an instance receives [f_k]'s value
    when the write enable is active and the previous instance's value
    otherwise). *)

type reg_kind =
  | Simple
  | File of { addr_bits : int }
      (** register file with [2^addr_bits] entries (paper figure 1) *)

type register = {
  reg_name : string;
  width : int;  (** data width; for files, the entry width *)
  stage : int;  (** the stage that writes this register: [R ∈ out(stage)] *)
  kind : reg_kind;
  visible : bool;
      (** programmer-visible: subject to the data-consistency criterion *)
  prev_instance : string option;
      (** [Some r]: this register is the pipelined instance following
          [r]; when its stage updates without an active write enable it
          receives [r]'s current value. *)
}

(** One register update performed by a stage: the paper's [f_k_R]
    (value), [f_k_Rwe] (write enable) and [f_k_Rwa] (write address for
    register files). *)
type write = {
  dst : string;
  value : Hw.Expr.t;   (** over the stage's input registers *)
  guard : Hw.Expr.t option;  (** [None] means always enabled *)
  wr_addr : Hw.Expr.t option;  (** required iff [dst] is a [File] *)
}

type stage = {
  index : int;
  stage_name : string;  (** e.g. ["IF"], ["ID"], ... *)
  writes : write list;
}

type t = {
  machine_name : string;
  n_stages : int;
  registers : register list;
  stages : stage list;  (** indexed [0 .. n_stages-1], in order *)
  init : (string * Value.t) list;
      (** initial register contents; unlisted registers start at zero *)
}

(** {1 Lookup} *)

val find_register : t -> string -> register
(** @raise Not_found *)

val register_exists : t -> string -> bool

val stage_of : t -> int -> stage
(** @raise Invalid_argument if out of range *)

val writes_to : t -> string -> (int * write) list
(** All [(stage index, write)] pairs targeting a register.  A
    well-formed machine has at most one. *)

val write_to : t -> string -> (int * write) option
(** The unique write to a register, if any. *)

val stage_inputs : t -> int -> (string * int) list
(** [in(k)]: registers read by stage [k]'s expressions (including
    write-enable and address expressions), with widths, each once. *)

val stage_file_reads : t -> int -> (string * Hw.Expr.t) list
(** Distinct register-file read ports of stage [k]: [(file, address
    expression)] pairs, each distinct pair once. *)

val instance_chain : t -> string -> string list
(** [instance_chain m r] follows [prev_instance] links backwards from
    [r]: [[r; prev; prev-prev; ...]], ending at the chain's head. *)

val instance_at_stage : t -> string -> consumer_stage:int -> string option
(** Walk the chain of [r] to find the instance written by stage
    [consumer_stage - 1] (hence readable by stage [consumer_stage]),
    searching both directions from [r]. *)

val next_instance : t -> string -> string option
(** The instance (if any) whose [prev_instance] is the given register. *)

val visible_registers : t -> register list

val initial_value : t -> register -> Value.t
(** From [init], or all-zeros. *)

val pp_summary : Format.formatter -> t -> unit
(** One-paragraph structural summary (stages, registers, writes). *)
