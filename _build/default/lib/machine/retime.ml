let shift_stage ~at k = if k >= at then k + 1 else k

(* Bridge names must be fresh even when the same position is split
   repeatedly. *)
let bridge_name (m : Spec.t) p ~at =
  let rec fresh candidate =
    if Spec.register_exists m candidate then fresh (candidate ^ "'")
    else candidate
  in
  fresh (Printf.sprintf "%s@%d" p at)

let insert_passthrough (m : Spec.t) ~at =
  if at < 1 || at > m.Spec.n_stages - 1 then
    invalid_arg
      (Printf.sprintf "Retime.insert_passthrough: at=%d not in 1..%d" at
         (m.Spec.n_stages - 1));
  let old_split_stage = Spec.stage_of m at in
  (* Which producers of stage at-1 must cross the new stage? *)
  let read_names =
    let names = ref [] in
    let add n = if not (List.mem n !names) then names := n :: !names in
    List.iter
      (fun (w : Spec.write) ->
        List.iter
          (fun e -> List.iter (fun (n, _) -> add n) (Hw.Expr.inputs e))
          ((w.Spec.value :: Option.to_list w.Spec.guard)
          @ Option.to_list w.Spec.wr_addr))
      old_split_stage.Spec.writes;
    !names
  in
  let produced_at_boundary n =
    Spec.register_exists m n
    && (Spec.find_register m n).Spec.stage = at - 1
  in
  let needs_bridge_for_read =
    List.filter produced_at_boundary read_names
    |> List.filter (fun n ->
           match (Spec.find_register m n).Spec.kind with
           | Spec.Simple -> true
           | Spec.File _ ->
             invalid_arg
               (Printf.sprintf
                  "Retime: register file %s is written by stage %d and read \
                   by stage %d; files cannot be piped across the inserted \
                   stage"
                  n (at - 1) at))
  in
  (* Instance links crossing the boundary: X written by old stage [at]
     with prev_instance in stage at-1. *)
  let needs_bridge_for_link =
    List.filter_map
      (fun (r : Spec.register) ->
        match r.Spec.prev_instance with
        | Some p when r.Spec.stage = at && produced_at_boundary p -> Some p
        | Some _ | None -> None)
      m.Spec.registers
  in
  let bridged =
    List.sort_uniq String.compare (needs_bridge_for_read @ needs_bridge_for_link)
  in
  let bridge_of p = bridge_name m p ~at in
  (* File reads of files owned by stage at-1 that are never written:
     re-assign ownership to the reader so the read stays local. *)
  let orphan_files =
    List.filter_map
      (fun (f, _) ->
        if
          produced_at_boundary f
          && Spec.writes_to m f = []
          && (match (Spec.find_register m f).Spec.kind with
             | Spec.File _ -> true
             | Spec.Simple -> false)
        then Some f
        else None)
      (Spec.stage_file_reads m at)
  in
  let registers =
    List.map
      (fun (r : Spec.register) ->
        let stage =
          if List.mem r.Spec.reg_name orphan_files then at + 1
          else shift_stage ~at r.Spec.stage
        in
        let prev_instance =
          match r.Spec.prev_instance with
          | Some p when r.Spec.stage = at && List.mem p bridged ->
            Some (bridge_of p)
          | other -> other
        in
        { r with Spec.stage; prev_instance })
      m.Spec.registers
    @ List.map
        (fun p ->
          let pr = Spec.find_register m p in
          {
            Spec.reg_name = bridge_of p;
            width = pr.Spec.width;
            stage = at;
            kind = Spec.Simple;
            visible = false;
            prev_instance = Some p;
          })
        bridged
  in
  let subst_bridges e =
    Hw.Expr.subst
      (fun n ->
        if List.mem n bridged then
          Some (Hw.Expr.input (bridge_of n) (Spec.find_register m n).Spec.width)
        else None)
      e
  in
  let rewrite_write (w : Spec.write) =
    {
      w with
      Spec.value = subst_bridges w.Spec.value;
      guard = Option.map subst_bridges w.Spec.guard;
      wr_addr = Option.map subst_bridges w.Spec.wr_addr;
    }
  in
  let stages =
    List.concat_map
      (fun (s : Spec.stage) ->
        if s.Spec.index < at then [ s ]
        else if s.Spec.index = at then
          [
            {
              Spec.index = at;
              stage_name = Printf.sprintf "P%d" at;
              writes = [];
            };
            {
              s with
              Spec.index = at + 1;
              writes = List.map rewrite_write s.Spec.writes;
            };
          ]
        else [ { s with Spec.index = s.Spec.index + 1 } ])
      m.Spec.stages
  in
  {
    m with
    Spec.machine_name = m.Spec.machine_name ^ "+";
    n_stages = m.Spec.n_stages + 1;
    registers;
    stages;
  }

let rec deepen m ~at ~times =
  if times <= 0 then m else deepen (insert_passthrough m ~at) ~at ~times:(times - 1)
