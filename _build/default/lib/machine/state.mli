(** Mutable register state of a machine, shared by the sequential and
    pipelined simulators. *)

type t

val create : Spec.t -> t
(** All registers at their initial values ({!Spec.initial_value}). *)

val get : t -> string -> Value.t
(** @raise Invalid_argument for unknown registers. *)

val set : t -> string -> Value.t -> unit

val get_scalar : t -> string -> Hw.Bitvec.t

val set_scalar : t -> string -> Hw.Bitvec.t -> unit

val read_file : t -> string -> Hw.Bitvec.t -> Hw.Bitvec.t

val write_file : t -> string -> addr:Hw.Bitvec.t -> data:Hw.Bitvec.t -> unit

val eval_env : t -> Hw.Eval.env
(** Environment reading registers by name (scalars as inputs, files
    through [lookup_file]). *)

val snapshot : t -> (string * Value.t) list
(** Deep copy of all registers, for later comparison. *)

val snapshot_visible : Spec.t -> t -> (string * Value.t) list
(** Deep copy of the programmer-visible registers only. *)

val restore : t -> (string * Value.t) list -> unit

val equal_on : (string * Value.t) list -> (string * Value.t) list -> bool
(** Pointwise equality of two snapshots over their common names (both
    snapshots must have the same name set; extra names are an error). *)

val diff : (string * Value.t) list -> (string * Value.t) list -> string list
(** Names whose values differ between two same-shaped snapshots. *)
