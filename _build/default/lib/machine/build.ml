type t = {
  name : string;
  stage_names : string list;
  registers : Spec.register list;  (* reverse order *)
  writes : (int * Spec.write) list;  (* reverse order *)
  init : (string * Value.t) list;
}

let start ~name ~stages =
  if stages = [] then invalid_arg "Build.start: no stages";
  { name; stage_names = stages; registers = []; writes = []; init = [] }

let check_stage b stage =
  if stage < 0 || stage >= List.length b.stage_names then
    invalid_arg (Printf.sprintf "Build: stage %d out of range" stage)

let simple ?(visible = false) ?prev ?init name ~width ~stage b =
  check_stage b stage;
  let r =
    {
      Spec.reg_name = name;
      width;
      stage;
      kind = Spec.Simple;
      visible;
      prev_instance = prev;
    }
  in
  {
    b with
    registers = r :: b.registers;
    init =
      (match init with
      | Some v -> (name, Value.scalar v) :: b.init
      | None -> b.init);
  }

let file ?(visible = false) ?init name ~width ~addr_bits ~stage b =
  check_stage b stage;
  let r =
    {
      Spec.reg_name = name;
      width;
      stage;
      kind = Spec.File { addr_bits };
      visible;
      prev_instance = None;
    }
  in
  {
    b with
    registers = r :: b.registers;
    init =
      (match init with
      | Some entries ->
        (name, Value.file_of_list ~width ~addr_bits entries) :: b.init
      | None -> b.init);
  }

(* "X.k" -> ("X", Some k); "PC" -> ("PC", None) *)
let split_dotted name =
  match String.rindex_opt name '.' with
  | None -> (name, None)
  | Some i -> (
    let prefix = String.sub name 0 i in
    let suffix = String.sub name (i + 1) (String.length name - i - 1) in
    match int_of_string_opt suffix with
    | Some k -> (prefix, Some k)
    | None -> (name, None))

let pipe name ~through b =
  let r =
    match
      List.find_opt (fun (r : Spec.register) -> r.Spec.reg_name = name) b.registers
    with
    | Some r -> r
    | None -> invalid_arg (Printf.sprintf "Build.pipe: unknown register %s" name)
  in
  if through <= r.Spec.stage then
    invalid_arg
      (Printf.sprintf "Build.pipe: %s is already in stage %d" name r.Spec.stage);
  check_stage b through;
  let prefix, base_k = split_dotted name in
  let instance_name k =
    match base_k with
    | Some k0 -> Printf.sprintf "%s.%d" prefix (k0 + k)
    | None -> Printf.sprintf "%s.%d" prefix (r.Spec.stage + 1 + k)
  in
  let rec go b prev stage k =
    if stage > through then b
    else
      let nm = instance_name k in
      let reg =
        { r with Spec.reg_name = nm; stage; prev_instance = Some prev }
      in
      go { b with registers = reg :: b.registers } nm (stage + 1) (k + 1)
  in
  go b name (r.Spec.stage + 1) 1

let write ?guard ?addr ~stage dst value b =
  check_stage b stage;
  { b with writes = (stage, { Spec.dst; value; guard; wr_addr = addr }) :: b.writes }

let spec b =
  let stages =
    List.mapi
      (fun index stage_name ->
        {
          Spec.index;
          stage_name;
          writes =
            List.rev
              (List.filter_map
                 (fun (k, w) -> if k = index then Some w else None)
                 b.writes);
        })
      b.stage_names
  in
  let m =
    {
      Spec.machine_name = b.name;
      n_stages = List.length b.stage_names;
      registers = List.rev b.registers;
      stages;
      init = List.rev b.init;
    }
  in
  Validate.check_exn m;
  m
