type issue = { where : string; what : string }

let issue where fmt = Format.kasprintf (fun what -> { where; what }) fmt

let check_stage_indices (m : Spec.t) =
  let indices = List.map (fun (s : Spec.stage) -> s.index) m.stages in
  if indices <> List.init m.n_stages (fun i -> i) then
    [ issue "stages" "stage indices must be 0..%d in order" (m.n_stages - 1) ]
  else []

let check_register (m : Spec.t) (r : Spec.register) =
  let where = Printf.sprintf "register %s" r.reg_name in
  let range =
    if r.stage < 0 || r.stage >= m.n_stages then
      [ issue where "writing stage %d out of range" r.stage ]
    else []
  in
  let width =
    if r.width < 1 || r.width > Hw.Bitvec.max_width then
      [ issue where "width %d out of range" r.width ]
    else []
  in
  let kind =
    match r.kind with
    | Spec.Simple -> []
    | Spec.File { addr_bits } ->
      if addr_bits < 1 || addr_bits > 20 then
        [ issue where "addr_bits %d out of range" addr_bits ]
      else []
  in
  let chain =
    match r.prev_instance with
    | None -> []
    | Some p ->
      if not (Spec.register_exists m p) then
        [ issue where "prev_instance %s does not exist" p ]
      else
        let pr = Spec.find_register m p in
        let e1 =
          if pr.width <> r.width then
            [ issue where "prev_instance %s has width %d, expected %d" p
                pr.width r.width ]
          else []
        in
        let e2 =
          if pr.stage <> r.stage - 1 then
            [ issue where "prev_instance %s written by stage %d, expected %d" p
                pr.stage (r.stage - 1) ]
          else []
        in
        let e3 =
          if pr.kind <> r.kind then
            [ issue where "prev_instance %s has a different kind" p ]
          else []
        in
        e1 @ e2 @ e3
  in
  range @ width @ kind @ chain

let check_expr (m : Spec.t) ~where e =
  let typing =
    match Hw.Expr.check e with
    | Ok _ -> []
    | Error msg -> [ issue where "ill-typed expression: %s" msg ]
  in
  let reads =
    List.concat_map
      (fun (n, w) ->
        if not (Spec.register_exists m n) then
          [ issue where "reads undeclared register %s" n ]
        else
          let r = Spec.find_register m n in
          match r.kind with
          | Spec.File _ ->
            [ issue where "reads register file %s as a scalar" n ]
          | Spec.Simple ->
            if r.width <> w then
              [ issue where "reads %s at width %d, declared %d" n w r.width ]
            else [])
      (Hw.Expr.inputs e)
  in
  let file_reads =
    List.concat_map
      (fun (f, w) ->
        if not (Spec.register_exists m f) then
          [ issue where "reads undeclared register file %s" f ]
        else
          let r = Spec.find_register m f in
          match r.kind with
          | Spec.Simple -> [ issue where "file-reads scalar register %s" f ]
          | Spec.File _ ->
            if r.width <> w then
              [ issue where "file-reads %s at width %d, declared %d" f w r.width ]
            else [])
      (Hw.Expr.file_reads e)
  in
  typing @ reads @ file_reads

let check_file_read_addr_widths (m : Spec.t) ~where e =
  let check acc node =
    match node with
    | Hw.Expr.File_read { file; addr; _ } when Spec.register_exists m file -> (
      let r = Spec.find_register m file in
      match r.kind with
      | Spec.File { addr_bits } -> (
        match Hw.Expr.check addr with
        | Ok w when w <> addr_bits ->
          issue where "file %s read address has width %d, expected %d" file w
            addr_bits
          :: acc
        | Ok _ | Error _ -> acc)
      | Spec.Simple -> acc)
    | Hw.Expr.File_read _ | Hw.Expr.Const _ | Hw.Expr.Input _ | Hw.Expr.Unop _
    | Hw.Expr.Binop _ | Hw.Expr.Mux _ | Hw.Expr.Concat _ | Hw.Expr.Slice _
    | Hw.Expr.Zext _ | Hw.Expr.Sext _ -> acc
  in
  Hw.Expr.fold check [] e

let check_write (m : Spec.t) (s : Spec.stage) (w : Spec.write) =
  let where = Printf.sprintf "stage %d write to %s" s.index w.dst in
  if not (Spec.register_exists m w.dst) then
    [ issue where "target register is undeclared" ]
  else
    let r = Spec.find_register m w.dst in
    let owner =
      if r.stage <> s.index then
        [ issue where "register belongs to stage %d" r.stage ]
      else []
    in
    let addr =
      match (r.kind, w.wr_addr) with
      | Spec.Simple, Some _ ->
        [ issue where "scalar register written with an address" ]
      | Spec.File _, None ->
        [ issue where "register file written without an address" ]
      | Spec.File { addr_bits }, Some a -> (
        match Hw.Expr.check a with
        | Ok wa when wa <> addr_bits ->
          [ issue where "write address width %d, expected %d" wa addr_bits ]
        | Ok _ -> []
        | Error msg -> [ issue where "ill-typed write address: %s" msg ])
      | Spec.Simple, None -> []
    in
    let value_width =
      match Hw.Expr.check w.value with
      | Ok wv when wv <> r.width ->
        [ issue where "value width %d, register width %d" wv r.width ]
      | Ok _ | Error _ -> []
    in
    let guard_width =
      match w.guard with
      | None -> []
      | Some g -> (
        match Hw.Expr.check g with
        | Ok 1 -> []
        | Ok wg -> [ issue where "guard width %d, expected 1" wg ]
        | Error msg -> [ issue where "ill-typed guard: %s" msg ])
    in
    let exprs = (w.value :: Option.to_list w.guard) @ Option.to_list w.wr_addr in
    let expr_issues = List.concat_map (check_expr m ~where) exprs in
    let addr_issues =
      List.concat_map (check_file_read_addr_widths m ~where) exprs
    in
    owner @ addr @ value_width @ guard_width @ expr_issues @ addr_issues

let check_unique_writer (m : Spec.t) =
  List.concat_map
    (fun (r : Spec.register) ->
      match Spec.writes_to m r.reg_name with
      | [] | [ _ ] -> []
      | ws ->
        [ issue
            (Printf.sprintf "register %s" r.reg_name)
            "written by %d stages (structural hazard): %s" (List.length ws)
            (String.concat ", "
               (List.map (fun (k, _) -> string_of_int k) ws)) ])
    m.registers

let check_init (m : Spec.t) =
  List.concat_map
    (fun (name, v) ->
      let where = Printf.sprintf "init of %s" name in
      if not (Spec.register_exists m name) then
        [ issue where "undeclared register" ]
      else
        let r = Spec.find_register m name in
        match (r.kind, v) with
        | Spec.Simple, Value.Scalar bv ->
          if Hw.Bitvec.width bv <> r.width then
            [ issue where "width %d, expected %d" (Hw.Bitvec.width bv) r.width ]
          else []
        | Spec.File { addr_bits }, Value.File arr ->
          if Array.length arr <> 1 lsl addr_bits then
            [ issue where "file size %d, expected %d" (Array.length arr)
                (1 lsl addr_bits) ]
          else if
            Array.exists (fun e -> Hw.Bitvec.width e <> r.width) arr
          then [ issue where "entry width mismatch" ]
          else []
        | Spec.Simple, Value.File _ -> [ issue where "file value for scalar" ]
        | Spec.File _, Value.Scalar _ -> [ issue where "scalar value for file" ])
    m.init

let run (m : Spec.t) =
  let dup_regs =
    let names = List.map (fun (r : Spec.register) -> r.reg_name) m.registers in
    let sorted = List.sort String.compare names in
    let rec dups = function
      | a :: b :: rest ->
        if String.equal a b then
          issue (Printf.sprintf "register %s" a) "declared twice" :: dups rest
        else dups (b :: rest)
      | [ _ ] | [] -> []
    in
    dups sorted
  in
  check_stage_indices m @ dup_regs
  @ List.concat_map (check_register m) m.registers
  @ List.concat_map
      (fun (s : Spec.stage) -> List.concat_map (check_write m s) s.writes)
      m.stages
  @ check_unique_writer m @ check_init m

let check_exn m =
  match run m with
  | [] -> ()
  | issues ->
    let msg =
      issues
      |> List.map (fun i -> Printf.sprintf "%s: %s" i.where i.what)
      |> String.concat "\n"
    in
    failwith
      (Printf.sprintf "machine %s is not well-formed:\n%s" m.machine_name msg)

let reads_needing_forwarding (m : Spec.t) =
  let local r ~stage:k =
    (* An instance of [r] is an output of stage k-1 or stage k. *)
    let chain_member n =
      let reg = Spec.find_register m n in
      reg.stage = k - 1 || reg.stage = k
    in
    let rec walk_back n =
      chain_member n
      ||
      match (Spec.find_register m n).prev_instance with
      | Some p -> walk_back p
      | None -> false
    in
    let rec walk_fwd n =
      chain_member n
      ||
      match Spec.next_instance m n with
      | Some nx -> walk_fwd nx
      | None -> false
    in
    walk_back r || walk_fwd r
  in
  List.concat_map
    (fun (s : Spec.stage) ->
      let k = s.index in
      let scalar_reads = List.map fst (Spec.stage_inputs m k) in
      let file_reads = List.map fst (Spec.stage_file_reads m k) in
      List.filter_map
        (fun r ->
          if Spec.register_exists m r && not (local r ~stage:k) then Some (k, r)
          else None)
        (scalar_reads @ file_reads))
    m.stages
  |> List.sort_uniq compare
