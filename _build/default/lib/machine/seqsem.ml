type trace = {
  spec_before : (string * Value.t) list array;
  instructions : int;
  halted : bool;
}

let step_stage m state ~stage =
  let env = State.eval_env state in
  let updates = Commit.stage_updates m ~stage ~env state in
  Commit.apply state updates

let run_instruction (m : Spec.t) state =
  for k = 0 to m.n_stages - 1 do
    step_stage m state ~stage:k
  done

let run_state ?(halt = fun _ -> false) ~max_instructions (m : Spec.t) =
  let state = State.create m in
  let snaps = ref [] in
  let count = ref 0 in
  let halted = ref false in
  (try
     while !count < max_instructions do
       if halt state then begin
         halted := true;
         raise Exit
       end;
       snaps := State.snapshot_visible m state :: !snaps;
       run_instruction m state;
       incr count
     done
   with Exit -> ());
  snaps := State.snapshot_visible m state :: !snaps;
  ( {
      spec_before = Array.of_list (List.rev !snaps);
      instructions = !count;
      halted = !halted;
    },
    state )

let run ?halt ~max_instructions m =
  fst (run_state ?halt ~max_instructions m)

let ue_table ~n_stages ~cycles =
  let columns = List.init n_stages (fun k -> Printf.sprintf "ue_%d" k) in
  let wave = Hw.Wave.create ~columns in
  for t = 0 to cycles - 1 do
    Hw.Wave.record_bits wave
      (List.mapi (fun k c -> (c, t mod n_stages = k)) columns)
  done;
  wave
