lib/machine/state.ml: Hashtbl Hw List Printf Spec String Value
