lib/machine/state.mli: Hw Spec Value
