lib/machine/seqsem.mli: Hw Spec State Value
