lib/machine/spec.mli: Format Hw Value
