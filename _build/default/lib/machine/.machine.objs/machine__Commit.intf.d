lib/machine/commit.mli: Format Hw Spec State
