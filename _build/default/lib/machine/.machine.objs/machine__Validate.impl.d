lib/machine/validate.ml: Array Format Hw List Option Printf Spec String Value
