lib/machine/commit.ml: Format Hw List Spec State Value
