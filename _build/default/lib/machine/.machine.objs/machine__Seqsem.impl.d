lib/machine/seqsem.ml: Array Commit Hw List Printf Spec State Value
