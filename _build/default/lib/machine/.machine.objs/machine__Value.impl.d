lib/machine/value.ml: Array Format Hw List
