lib/machine/build.mli: Hw Spec
