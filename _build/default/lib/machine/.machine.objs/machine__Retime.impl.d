lib/machine/retime.ml: Hw List Option Printf Spec String
