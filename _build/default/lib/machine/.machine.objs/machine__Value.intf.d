lib/machine/value.mli: Format Hw
