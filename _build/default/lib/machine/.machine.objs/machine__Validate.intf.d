lib/machine/validate.mli: Spec
