lib/machine/build.ml: List Printf Spec String Validate Value
