lib/machine/retime.mli: Spec
