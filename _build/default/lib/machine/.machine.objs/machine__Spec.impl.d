lib/machine/spec.ml: Format Hw List Option Printf String Value
