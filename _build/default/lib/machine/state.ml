type t = (string, Value.t) Hashtbl.t

let create (m : Spec.t) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Spec.register) ->
      Hashtbl.replace tbl r.reg_name (Spec.initial_value m r))
    m.registers;
  tbl

let get t name =
  match Hashtbl.find_opt t name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "State.get: unknown register %s" name)

let set t name v = Hashtbl.replace t name v
let get_scalar t name = Value.read_scalar (get t name)
let set_scalar t name v = set t name (Value.Scalar v)
let read_file t name addr = Value.read_file (get t name) addr

let write_file t name ~addr ~data =
  Value.write_file (get t name) addr data

let eval_env t =
  {
    Hw.Eval.lookup_input =
      (fun n ->
        match Hashtbl.find_opt t n with
        | Some (Value.Scalar v) -> v
        | Some (Value.File _) ->
          raise (Hw.Eval.Eval_error (n ^ " is a register file, not a scalar"))
        | None -> raise Not_found);
    Hw.Eval.lookup_file =
      (fun f addr ->
        match Hashtbl.find_opt t f with
        | Some (Value.File _ as v) -> Value.read_file v addr
        | Some (Value.Scalar _) ->
          raise (Hw.Eval.Eval_error (f ^ " is a scalar, not a register file"))
        | None -> raise Not_found);
  }

let snapshot t =
  Hashtbl.fold (fun n v acc -> (n, Value.copy v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot_visible (m : Spec.t) t =
  Spec.visible_registers m
  |> List.map (fun (r : Spec.register) -> (r.reg_name, Value.copy (get t r.reg_name)))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let restore t snap = List.iter (fun (n, v) -> set t n (Value.copy v)) snap

let diff a b =
  let names = List.map fst a in
  let names_b = List.map fst b in
  if List.sort String.compare names <> List.sort String.compare names_b then
    invalid_arg "State.diff: snapshots have different shapes";
  List.filter_map
    (fun (n, va) ->
      let vb = List.assoc n b in
      if Value.equal va vb then None else Some n)
    a

let equal_on a b = diff a b = []
