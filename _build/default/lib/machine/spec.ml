type reg_kind =
  | Simple
  | File of { addr_bits : int }

type register = {
  reg_name : string;
  width : int;
  stage : int;
  kind : reg_kind;
  visible : bool;
  prev_instance : string option;
}

type write = {
  dst : string;
  value : Hw.Expr.t;
  guard : Hw.Expr.t option;
  wr_addr : Hw.Expr.t option;
}

type stage = {
  index : int;
  stage_name : string;
  writes : write list;
}

type t = {
  machine_name : string;
  n_stages : int;
  registers : register list;
  stages : stage list;
  init : (string * Value.t) list;
}

let find_register m name =
  List.find (fun r -> String.equal r.reg_name name) m.registers

let register_exists m name =
  List.exists (fun r -> String.equal r.reg_name name) m.registers

let stage_of m k =
  match List.find_opt (fun s -> s.index = k) m.stages with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Spec.stage_of: no stage %d" k)

let writes_to m name =
  List.concat_map
    (fun s ->
      List.filter_map
        (fun w -> if String.equal w.dst name then Some (s.index, w) else None)
        s.writes)
    m.stages

let write_to m name =
  match writes_to m name with [] -> None | (k, w) :: _ -> Some (k, w)

let write_exprs w =
  (w.value :: Option.to_list w.guard) @ Option.to_list w.wr_addr

let stage_inputs m k =
  let s = stage_of m k in
  let add acc (n, w) = if List.mem_assoc n acc then acc else (n, w) :: acc in
  let exprs = List.concat_map write_exprs s.writes in
  List.rev
    (List.fold_left
       (fun acc e -> List.fold_left add acc (Hw.Expr.inputs e))
       [] exprs)

let stage_file_reads m k =
  let s = stage_of m k in
  let acc = ref [] in
  let visit e =
    let collect seen node =
      match node with
      | Hw.Expr.File_read { file; addr; _ } ->
        if List.exists (fun (f, a) -> String.equal f file && Hw.Expr.equal a addr) seen
        then seen
        else (file, addr) :: seen
      | Hw.Expr.Const _ | Hw.Expr.Input _ | Hw.Expr.Unop _ | Hw.Expr.Binop _
      | Hw.Expr.Mux _ | Hw.Expr.Concat _ | Hw.Expr.Slice _ | Hw.Expr.Zext _
      | Hw.Expr.Sext _ -> seen
    in
    acc := Hw.Expr.fold collect !acc e
  in
  List.iter (fun w -> List.iter visit (write_exprs w)) s.writes;
  List.rev !acc

let instance_chain m name =
  let rec back acc n =
    match (find_register m n).prev_instance with
    | None -> List.rev (n :: acc)
    | Some p -> back (n :: acc) p
  in
  back [] name

let next_instance m name =
  List.find_map
    (fun r ->
      match r.prev_instance with
      | Some p when String.equal p name -> Some r.reg_name
      | Some _ | None -> None)
    m.registers

let instance_at_stage m name ~consumer_stage =
  let target = consumer_stage - 1 in
  (* Walk backwards then forwards along the chain to the instance
     written by [target]. *)
  let rec back n =
    let r = find_register m n in
    if r.stage = target then Some n
    else if r.stage > target then
      match r.prev_instance with None -> None | Some p -> back p
    else None
  in
  let rec fwd n =
    let r = find_register m n in
    if r.stage = target then Some n
    else if r.stage < target then
      match next_instance m n with None -> None | Some nx -> fwd nx
    else None
  in
  let r = find_register m name in
  if r.stage >= target then back name else fwd name

let visible_registers m = List.filter (fun r -> r.visible) m.registers

let initial_value m r =
  match List.assoc_opt r.reg_name m.init with
  | Some v -> Value.copy v
  | None -> (
    match r.kind with
    | Simple -> Value.zero_scalar ~width:r.width
    | File { addr_bits } -> Value.zero_file ~width:r.width ~addr_bits)

let pp_summary ppf m =
  Format.fprintf ppf "machine %s: %d stages, %d registers@." m.machine_name
    m.n_stages (List.length m.registers);
  List.iter
    (fun s ->
      Format.fprintf ppf "  stage %d (%s): writes %s@." s.index s.stage_name
        (String.concat ", " (List.map (fun w -> w.dst) s.writes)))
    m.stages
