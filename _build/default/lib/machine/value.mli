(** Runtime values of machine registers.

    A register holds either a scalar bit vector or, for register files
    (paper §2, figure 1), an array of [2^addr_bits] entries. *)

type t =
  | Scalar of Hw.Bitvec.t
  | File of Hw.Bitvec.t array  (** index = unsigned address *)

val scalar : Hw.Bitvec.t -> t

val zero_scalar : width:int -> t

val zero_file : width:int -> addr_bits:int -> t

val file_of_list : width:int -> addr_bits:int -> Hw.Bitvec.t list -> t
(** Entries beyond the list are zero.
    @raise Invalid_argument if the list is too long or widths differ. *)

val copy : t -> t
(** Deep copy (snapshot isolation for [File]). *)

val equal : t -> t -> bool

val read_scalar : t -> Hw.Bitvec.t
(** @raise Invalid_argument on a [File]. *)

val read_file : t -> Hw.Bitvec.t -> Hw.Bitvec.t
(** [read_file v addr]. @raise Invalid_argument on a [Scalar]. *)

val write_file : t -> Hw.Bitvec.t -> Hw.Bitvec.t -> unit
(** [write_file v addr data] mutates the entry. *)

val pp : Format.formatter -> t -> unit
