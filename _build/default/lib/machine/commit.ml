type update =
  | Set_scalar of string * Hw.Bitvec.t
  | Write_file of string * Hw.Bitvec.t * Hw.Bitvec.t

let eval_guard env g =
  match g with None -> true | Some g -> Hw.Eval.eval_bool env g

let eval_write (m : Spec.t) ~env (w : Spec.write) =
  let r = Spec.find_register m w.dst in
  let enabled = eval_guard env w.guard in
  match r.kind with
  | Spec.File _ ->
    if enabled then
      let addr =
        match w.wr_addr with
        | Some a -> Hw.Eval.eval env a
        | None -> invalid_arg "Commit: file write without address"
      in
      [ Write_file (w.dst, addr, Hw.Eval.eval env w.value) ]
    else []
  | Spec.Simple -> (
    match r.prev_instance with
    | None -> if enabled then [ Set_scalar (w.dst, Hw.Eval.eval env w.value) ] else []
    | Some p ->
      let v =
        if enabled then Hw.Eval.eval env w.value
        else
          (* Pass-through from the previous instance. *)
          Hw.Eval.eval env (Hw.Expr.input p r.width)
      in
      [ Set_scalar (w.dst, v) ])

let stage_updates (m : Spec.t) ~stage ~env state =
  let s = Spec.stage_of m stage in
  let explicit = List.concat_map (eval_write m ~env) s.writes in
  (* Instance registers of this stage without an explicit write still
     shift from their previous instance. *)
  let written = List.map (fun (w : Spec.write) -> w.dst) s.writes in
  let shifts =
    List.filter_map
      (fun (r : Spec.register) ->
        match r.prev_instance with
        | Some p
          when r.stage = stage && not (List.mem r.reg_name written) ->
          Some (Set_scalar (r.reg_name, Value.read_scalar (State.get state p)))
        | Some _ | None -> None)
      m.registers
  in
  explicit @ shifts

let writes_updates (m : Spec.t) ~writes ~env _state =
  List.concat_map
    (fun (w : Spec.write) ->
      let r = Spec.find_register m w.dst in
      let enabled = eval_guard env w.guard in
      if not enabled then []
      else
        match r.kind with
        | Spec.File _ ->
          let addr =
            match w.wr_addr with
            | Some a -> Hw.Eval.eval env a
            | None -> invalid_arg "Commit: file write without address"
          in
          [ Write_file (w.dst, addr, Hw.Eval.eval env w.value) ]
        | Spec.Simple -> [ Set_scalar (w.dst, Hw.Eval.eval env w.value) ])
    writes

let apply state updates =
  List.iter
    (fun u ->
      match u with
      | Set_scalar (n, v) -> State.set_scalar state n v
      | Write_file (f, addr, data) -> State.write_file state f ~addr ~data)
    updates

let pp_update ppf = function
  | Set_scalar (n, v) -> Format.fprintf ppf "%s := %a" n Hw.Bitvec.pp v
  | Write_file (f, a, d) ->
    Format.fprintf ppf "%s[%a] := %a" f Hw.Bitvec.pp a Hw.Bitvec.pp d
