type reg = int

type t =
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Sll of reg * reg * reg
  | Srl of reg * reg * reg
  | Sra of reg * reg * reg
  | Slt of reg * reg * reg
  | Sltu of reg * reg * reg
  | Addi of reg * reg * int
  | Andi of reg * reg * int
  | Ori of reg * reg * int
  | Xori of reg * reg * int
  | Slti of reg * reg * int
  | Lhi of reg * int
  | Slli of reg * reg * int
  | Srli of reg * reg * int
  | Srai of reg * reg * int
  | Lw of reg * reg * int
  | Lb of reg * reg * int
  | Lbu of reg * reg * int
  | Lh of reg * reg * int
  | Lhu of reg * reg * int
  | Sw of reg * reg * int
  | Beqz of reg * int
  | Bnez of reg * int
  | J of int
  | Jal of int
  | Jr of reg
  | Jalr of reg
  | Trap of int
  | Rfe
  | Nop

module Op = struct
  let rtype = 0x00
  let addi = 0x08
  let andi = 0x0C
  let ori = 0x0D
  let xori = 0x0E
  let slti = 0x0A
  let lhi = 0x0F
  let slli = 0x14
  let srli = 0x16
  let srai = 0x17
  let lw = 0x23
  let lb = 0x20
  let lbu = 0x24
  let lh = 0x21
  let lhu = 0x25
  let sw = 0x2B
  let beqz = 0x04
  let bnez = 0x05
  let j = 0x02
  let jal = 0x03
  let jr = 0x12
  let jalr = 0x13
  let trap = 0x11
  let rfe = 0x10
end

module Func = struct
  let add = 0x20
  let sub = 0x22
  let and_ = 0x24
  let or_ = 0x25
  let xor = 0x26
  let sll = 0x04
  let srl = 0x06
  let sra = 0x07
  let slt = 0x2A
  let sltu = 0x2B
end

let opcode_bits = (31, 26)
let rs1_bits = (25, 21)
let rs2_bits = (20, 16)
let rd_r_bits = (15, 11)
let imm_bits = (15, 0)
let func_bits = (5, 0)

let mask16 v = v land 0xFFFF
let mask26 v = v land 0x3FFFFFF

let check_reg r =
  if r < 0 || r > 31 then invalid_arg (Printf.sprintf "bad register r%d" r)

let rtype func ~rd ~rs1 ~rs2 =
  check_reg rd;
  check_reg rs1;
  check_reg rs2;
  (Op.rtype lsl 26) lor (rs1 lsl 21) lor (rs2 lsl 16) lor (rd lsl 11) lor func

let itype op ~rd ~rs1 imm =
  check_reg rd;
  check_reg rs1;
  (op lsl 26) lor (rs1 lsl 21) lor (rd lsl 16) lor mask16 imm

let jtype op off = (op lsl 26) lor mask26 off

let encode = function
  | Add (rd, rs1, rs2) -> rtype Func.add ~rd ~rs1 ~rs2
  | Sub (rd, rs1, rs2) -> rtype Func.sub ~rd ~rs1 ~rs2
  | And (rd, rs1, rs2) -> rtype Func.and_ ~rd ~rs1 ~rs2
  | Or (rd, rs1, rs2) -> rtype Func.or_ ~rd ~rs1 ~rs2
  | Xor (rd, rs1, rs2) -> rtype Func.xor ~rd ~rs1 ~rs2
  | Sll (rd, rs1, rs2) -> rtype Func.sll ~rd ~rs1 ~rs2
  | Srl (rd, rs1, rs2) -> rtype Func.srl ~rd ~rs1 ~rs2
  | Sra (rd, rs1, rs2) -> rtype Func.sra ~rd ~rs1 ~rs2
  | Slt (rd, rs1, rs2) -> rtype Func.slt ~rd ~rs1 ~rs2
  | Sltu (rd, rs1, rs2) -> rtype Func.sltu ~rd ~rs1 ~rs2
  | Addi (rd, rs1, imm) -> itype Op.addi ~rd ~rs1 imm
  | Andi (rd, rs1, imm) -> itype Op.andi ~rd ~rs1 imm
  | Ori (rd, rs1, imm) -> itype Op.ori ~rd ~rs1 imm
  | Xori (rd, rs1, imm) -> itype Op.xori ~rd ~rs1 imm
  | Slti (rd, rs1, imm) -> itype Op.slti ~rd ~rs1 imm
  | Lhi (rd, imm) -> itype Op.lhi ~rd ~rs1:0 imm
  | Slli (rd, rs1, sh) -> itype Op.slli ~rd ~rs1 (sh land 31)
  | Srli (rd, rs1, sh) -> itype Op.srli ~rd ~rs1 (sh land 31)
  | Srai (rd, rs1, sh) -> itype Op.srai ~rd ~rs1 (sh land 31)
  | Lw (rd, rs1, off) -> itype Op.lw ~rd ~rs1 off
  | Lb (rd, rs1, off) -> itype Op.lb ~rd ~rs1 off
  | Lbu (rd, rs1, off) -> itype Op.lbu ~rd ~rs1 off
  | Lh (rd, rs1, off) -> itype Op.lh ~rd ~rs1 off
  | Lhu (rd, rs1, off) -> itype Op.lhu ~rd ~rs1 off
  | Sw (rs1, rs2, off) -> itype Op.sw ~rd:rs2 ~rs1 off
  | Beqz (rs1, off) -> itype Op.beqz ~rd:0 ~rs1 off
  | Bnez (rs1, off) -> itype Op.bnez ~rd:0 ~rs1 off
  | J off -> jtype Op.j off
  | Jal off -> jtype Op.jal off
  | Jr rs1 -> itype Op.jr ~rd:0 ~rs1 0
  | Jalr rs1 -> itype Op.jalr ~rd:31 ~rs1 0
  | Trap code -> jtype Op.trap (code land 0x3F)
  | Rfe -> jtype Op.rfe 0
  | Nop -> rtype Func.sll ~rd:0 ~rs1:0 ~rs2:0

let nop_word = encode Nop

let sext16 v = if v land 0x8000 <> 0 then v - 0x10000 else v
let sext26 v = if v land 0x2000000 <> 0 then v - 0x4000000 else v

let decode word =
  let op = (word lsr 26) land 0x3F in
  let rs1 = (word lsr 21) land 0x1F in
  let rs2 = (word lsr 16) land 0x1F in
  let rd_r = (word lsr 11) land 0x1F in
  let func = word land 0x3F in
  let imm = word land 0xFFFF in
  let simm = sext16 imm in
  if op = Op.rtype then
    if rd_r = 0 && rs1 = 0 && rs2 = 0 && func = Func.sll then Some Nop
    else if func = Func.add then Some (Add (rd_r, rs1, rs2))
    else if func = Func.sub then Some (Sub (rd_r, rs1, rs2))
    else if func = Func.and_ then Some (And (rd_r, rs1, rs2))
    else if func = Func.or_ then Some (Or (rd_r, rs1, rs2))
    else if func = Func.xor then Some (Xor (rd_r, rs1, rs2))
    else if func = Func.sll then Some (Sll (rd_r, rs1, rs2))
    else if func = Func.srl then Some (Srl (rd_r, rs1, rs2))
    else if func = Func.sra then Some (Sra (rd_r, rs1, rs2))
    else if func = Func.slt then Some (Slt (rd_r, rs1, rs2))
    else if func = Func.sltu then Some (Sltu (rd_r, rs1, rs2))
    else None
  else if op = Op.addi then Some (Addi (rs2, rs1, simm))
  else if op = Op.andi then Some (Andi (rs2, rs1, imm))
  else if op = Op.ori then Some (Ori (rs2, rs1, imm))
  else if op = Op.xori then Some (Xori (rs2, rs1, imm))
  else if op = Op.slti then Some (Slti (rs2, rs1, simm))
  else if op = Op.lhi then Some (Lhi (rs2, imm))
  else if op = Op.slli then Some (Slli (rs2, rs1, imm land 31))
  else if op = Op.srli then Some (Srli (rs2, rs1, imm land 31))
  else if op = Op.srai then Some (Srai (rs2, rs1, imm land 31))
  else if op = Op.lw then Some (Lw (rs2, rs1, simm))
  else if op = Op.lb then Some (Lb (rs2, rs1, simm))
  else if op = Op.lbu then Some (Lbu (rs2, rs1, simm))
  else if op = Op.lh then Some (Lh (rs2, rs1, simm))
  else if op = Op.lhu then Some (Lhu (rs2, rs1, simm))
  else if op = Op.sw then Some (Sw (rs1, rs2, simm))
  else if op = Op.beqz then Some (Beqz (rs1, simm))
  else if op = Op.bnez then Some (Bnez (rs1, simm))
  else if op = Op.j then Some (J (sext26 (word land 0x3FFFFFF)))
  else if op = Op.jal then Some (Jal (sext26 (word land 0x3FFFFFF)))
  else if op = Op.jr then Some (Jr rs1)
  else if op = Op.jalr then Some (Jalr rs1)
  else if op = Op.trap then Some (Trap (word land 0x3F))
  else if op = Op.rfe then Some Rfe
  else None

let is_legal word = Option.is_some (decode word)

let pp ppf i =
  let r = Printf.sprintf "r%d" in
  let p fmt = Format.fprintf ppf fmt in
  match i with
  | Add (d, a, b) -> p "add %s, %s, %s" (r d) (r a) (r b)
  | Sub (d, a, b) -> p "sub %s, %s, %s" (r d) (r a) (r b)
  | And (d, a, b) -> p "and %s, %s, %s" (r d) (r a) (r b)
  | Or (d, a, b) -> p "or %s, %s, %s" (r d) (r a) (r b)
  | Xor (d, a, b) -> p "xor %s, %s, %s" (r d) (r a) (r b)
  | Sll (d, a, b) -> p "sll %s, %s, %s" (r d) (r a) (r b)
  | Srl (d, a, b) -> p "srl %s, %s, %s" (r d) (r a) (r b)
  | Sra (d, a, b) -> p "sra %s, %s, %s" (r d) (r a) (r b)
  | Slt (d, a, b) -> p "slt %s, %s, %s" (r d) (r a) (r b)
  | Sltu (d, a, b) -> p "sltu %s, %s, %s" (r d) (r a) (r b)
  | Addi (d, a, i) -> p "addi %s, %s, %d" (r d) (r a) i
  | Andi (d, a, i) -> p "andi %s, %s, %d" (r d) (r a) i
  | Ori (d, a, i) -> p "ori %s, %s, %d" (r d) (r a) i
  | Xori (d, a, i) -> p "xori %s, %s, %d" (r d) (r a) i
  | Slti (d, a, i) -> p "slti %s, %s, %d" (r d) (r a) i
  | Lhi (d, i) -> p "lhi %s, %d" (r d) i
  | Slli (d, a, s) -> p "slli %s, %s, %d" (r d) (r a) s
  | Srli (d, a, s) -> p "srli %s, %s, %d" (r d) (r a) s
  | Srai (d, a, s) -> p "srai %s, %s, %d" (r d) (r a) s
  | Lw (d, a, o) -> p "lw %s, %d(%s)" (r d) o (r a)
  | Lb (d, a, o) -> p "lb %s, %d(%s)" (r d) o (r a)
  | Lbu (d, a, o) -> p "lbu %s, %d(%s)" (r d) o (r a)
  | Lh (d, a, o) -> p "lh %s, %d(%s)" (r d) o (r a)
  | Lhu (d, a, o) -> p "lhu %s, %d(%s)" (r d) o (r a)
  | Sw (a, s, o) -> p "sw %d(%s), %s" o (r a) (r s)
  | Beqz (a, o) -> p "beqz %s, %d" (r a) o
  | Bnez (a, o) -> p "bnez %s, %d" (r a) o
  | J o -> p "j %d" o
  | Jal o -> p "jal %d" o
  | Jr a -> p "jr %s" (r a)
  | Jalr a -> p "jalr %s" (r a)
  | Trap c -> p "trap %d" c
  | Rfe -> p "rfe"
  | Nop -> p "nop"

let to_string i = Format.asprintf "%a" pp i
