(** Textual DLX assembly.

    A line-based parser for the mnemonics of {!Isa}, producing
    {!Asm.item} lists.  Syntax:

    {v
    ; comments run to end of line (also "#" and "//")
    start:                 ; labels end with a colon
        addi r1, r0, 10
        lhi  r2, 0x7fff    ; immediates are decimal, hex (0x) or negative
    loop:
        lw   r4, 8(r1)     ; memory operands are offset(base)
        sw   0(r2), r4     ; store: address first, source second
        add  r5, r4, r4
        beqz r1, done      ; control flow targets are labels
        nop                ;   (each branch needs its delay slot)
        j    loop
        nop
    done:
        halt               ; expands to the jump-to-self + nop idiom
    v}

    Register names are [r0]..[r31] (case-insensitive).  [trap] takes a
    code; [rfe], [nop] and [halt] take nothing; [jr]/[jalr] take one
    register. *)

exception Parse_error of { line : int; message : string }

val parse : string -> Asm.item list
(** @raise Parse_error with a 1-based line number. *)

val parse_program : string -> int list
(** [parse] then {!Asm.assemble}.
    @raise Parse_error or [Asm.Asm_error]. *)

val parse_file : string -> Asm.item list
(** Reads the file and {!parse}s it. *)
