type t = {
  prog_name : string;
  items : Asm.item list;
  data : (int * int) list;
  dyn_instructions : int;
}

let program t = Asm.assemble t.items

(* Dynamic instruction count: run the golden model until it reaches the
   halt loop (the "$halt" label sits right after the body). *)
let dyn_count ?(config = Refmodel.default_config) ~items ~data () =
  (* Instruction words before the "$halt" label. *)
  let rec body_words acc = function
    | [] -> acc
    | Asm.Label "$halt" :: _ -> acc
    | Asm.Label _ :: rest -> body_words acc rest
    | (Asm.Insn _ | Asm.Beqz_l _ | Asm.Bnez_l _ | Asm.J_l _ | Asm.Jal_l _)
      :: rest -> body_words (acc + 1) rest
  in
  let halt_addr = body_words 0 items * 4 in
  let s = Refmodel.create ~data ~program:(Asm.assemble items) () in
  let limit = 200_000 in
  let rec go () =
    if s.Refmodel.dpc = halt_addr then s.Refmodel.instret
    else if s.Refmodel.instret >= limit then
      failwith
        "Progs: the program did not reach the halt loop within 200k          instructions (runaway control flow?)"
    else begin
      Refmodel.step ~config s;
      go ()
    end
  in
  go ()

let make ?(config = Refmodel.default_config) ?(data = []) prog_name body =
  let items = body @ Asm.halt in
  {
    prog_name;
    items;
    data;
    dyn_instructions = dyn_count ~config ~items ~data ();
  }

open Asm
open Isa

let fib n =
  make (Printf.sprintf "fib_%d" n)
    ([
       Insn (Addi (1, 0, n));
       Insn (Addi (2, 0, 0));
       Insn (Addi (3, 0, 1));
       Beqz_l (1, "done");
       Insn Nop;
       Label "loop";
       Insn (Add (4, 2, 3));
       Insn (Addi (2, 3, 0));
       Insn (Addi (3, 4, 0));
       Insn (Addi (1, 1, -1));
       Bnez_l (1, "loop");
       Insn Nop;
       Label "done";
     ])

let memcpy n =
  let data = List.init n (fun i -> (64 + i, (i * 37) + 11)) in
  make ~data
    (Printf.sprintf "memcpy_%d" n)
    [
      Insn (Addi (1, 0, 256));
      Insn (Addi (2, 0, 512));
      Insn (Addi (3, 0, n));
      Label "loop";
      Insn (Lw (4, 1, 0));
      Insn (Sw (2, 4, 0));
      Insn (Addi (1, 1, 4));
      Insn (Addi (2, 2, 4));
      Insn (Addi (3, 3, -1));
      Bnez_l (3, "loop");
      Insn Nop;
    ]

(* Dot product with a software shift-and-add multiply (the ISA has no
   multiplier): r10 accumulates a[i]*b[i] for 8-bit elements. *)
let dot_product n =
  let data =
    List.init n (fun i -> (64 + i, (i * 7) mod 251))
    @ List.init n (fun i -> (128 + i, (i * 13) mod 239))
  in
  make ~data
    (Printf.sprintf "dot_%d" n)
    [
      Insn (Addi (1, 0, 256));   (* a ptr *)
      Insn (Addi (2, 0, 512));   (* b ptr *)
      Insn (Addi (3, 0, n));     (* count *)
      Insn (Addi (10, 0, 0));    (* accumulator *)
      Label "loop";
      Insn (Lw (4, 1, 0));       (* multiplicand *)
      Insn (Lw (5, 2, 0));       (* multiplier *)
      Insn (Addi (6, 0, 0));     (* product *)
      Beqz_l (5, "mul_done");
      Insn Nop;
      Label "mul_loop";
      Insn (Andi (7, 5, 1));
      Beqz_l (7, "mul_skip");
      Insn Nop;
      Insn (Add (6, 6, 4));
      Label "mul_skip";
      Insn (Slli (4, 4, 1));
      Insn (Srli (5, 5, 1));
      Bnez_l (5, "mul_loop");
      Insn Nop;
      Label "mul_done";
      Insn (Add (10, 10, 6));
      Insn (Addi (1, 1, 4));
      Insn (Addi (2, 2, 4));
      Insn (Addi (3, 3, -1));
      Bnez_l (3, "loop");
      Insn Nop;
    ]

let bubble_sort values =
  let n = List.length values in
  let data = List.mapi (fun i v -> (64 + i, v land 0xFFFF)) values in
  make ~data
    (Printf.sprintf "bsort_%d" n)
    [
      Insn (Addi (1, 0, n));
      Insn (Addi (9, 0, 256));
      Label "outer";
      Insn (Addi (2, 0, 0));       (* swapped flag *)
      Insn (Addi (3, 9, 0));       (* ptr *)
      Insn (Addi (4, 1, -1));      (* inner count *)
      Beqz_l (4, "done");
      Insn Nop;
      Label "inner";
      Insn (Lw (5, 3, 0));
      Insn (Lw (6, 3, 4));
      Insn (Slt (7, 6, 5));
      Beqz_l (7, "noswap");
      Insn Nop;
      Insn (Sw (3, 6, 0));
      Insn (Sw (3, 5, 4));
      Insn (Addi (2, 0, 1));
      Label "noswap";
      Insn (Addi (3, 3, 4));
      Insn (Addi (4, 4, -1));
      Bnez_l (4, "inner");
      Insn Nop;
      Bnez_l (2, "outer");
      Insn Nop;
      Label "done";
    ]

let hazard_dependent_chain n =
  make
    (Printf.sprintf "dep_chain_%d" n)
    (Insn (Addi (1, 0, 1))
    :: List.concat
         (List.init n (fun i ->
              [ Insn (Xori (1, 1, 1 + (i land 7))) ])))

let hazard_load_use n =
  let data = List.init 8 (fun i -> (64 + i, i + 3)) in
  make ~data
    (Printf.sprintf "load_use_%d" n)
    (Insn (Addi (1, 0, 256))
    :: List.concat
         (List.init n (fun i ->
              [
                Insn (Lw (2, 1, 4 * (i land 7)));
                Insn (Add (3, 2, 2));
              ])))

let hazard_independent n =
  make
    (Printf.sprintf "independent_%d" n)
    (List.init n (fun i -> Insn (Addi (1 + (i mod 8), 0, i land 0xFF))))

let branch_heavy n =
  make
    (Printf.sprintf "branches_%d" n)
    [
      Insn (Addi (1, 0, n));
      Label "loop";
      Bnez_l (1, "l2");
      Insn Nop;
      Label "l2";
      Insn (Addi (1, 1, -1));
      Bnez_l (1, "loop");
      Insn Nop;
    ]

let subword_loads =
  let data = [ (64, 0x807F01FF); (65, 0x12345678) ] in
  make ~data "subword_loads"
    [
      Insn (Addi (1, 0, 256));
      Insn (Addi (10, 0, 0));
      Insn (Lb (2, 1, 0));
      Insn (Xor (10, 10, 2));
      Insn (Lbu (2, 1, 1));
      Insn (Xor (10, 10, 2));
      Insn (Lb (2, 1, 2));
      Insn (Xor (10, 10, 2));
      Insn (Lbu (2, 1, 3));
      Insn (Xor (10, 10, 2));
      Insn (Lh (3, 1, 0));
      Insn (Xor (10, 10, 3));
      Insn (Lhu (3, 1, 2));
      Insn (Xor (10, 10, 3));
      Insn (Lh (3, 1, 4));
      Insn (Xor (10, 10, 3));
      Insn (Lhu (3, 1, 6));
      Insn (Xor (10, 10, 3));
      Insn (Sw (1, 10, 16));
    ]

let strlen text =
  (* Pack the string into little-endian words at word 64. *)
  let n = String.length text in
  let data =
    List.init ((n / 4) + 1) (fun w ->
        let byte i = if i < n then Char.code text.[i] else 0 in
        ( 64 + w,
          byte (4 * w)
          lor (byte ((4 * w) + 1) lsl 8)
          lor (byte ((4 * w) + 2) lsl 16)
          lor (byte ((4 * w) + 3) lsl 24) ))
  in
  make ~data
    (Printf.sprintf "strlen_%d" n)
    [
      Insn (Addi (1, 0, 256));
      Insn (Addi (10, 0, 0));
      Label "loop";
      Insn (Lbu (2, 1, 0));
      Beqz_l (2, "done");
      Insn Nop;
      Insn (Addi (10, 10, 1));
      Insn (Addi (1, 1, 1));
      J_l "loop";
      Insn Nop;
      Label "done";
    ]

let checksum n =
  let data = List.init n (fun i -> (64 + i, (i * 2654435761) land 0xFFFFFF)) in
  make ~data
    (Printf.sprintf "checksum_%d" n)
    [
      Insn (Addi (1, 0, 256));
      Insn (Addi (3, 0, n));
      Insn (Addi (10, 0, 0));
      Label "loop";
      Insn (Lw (4, 1, 0));
      Insn (Xor (10, 10, 4));
      (* rotate left by 3: (x << 3) | (x >> 29) *)
      Insn (Slli (5, 10, 3));
      Insn (Srli (6, 10, 29));
      Insn (Or (10, 5, 6));
      Insn (Addi (1, 1, 4));
      Insn (Addi (3, 3, -1));
      Bnez_l (3, "loop");
      Insn Nop;
      Insn (Sw (0, 10, 432));
    ]

let overflow_trap =
  let config = { Refmodel.with_interrupts = true; sisr = 8 } in
  make ~config ~data:[ (100, 0) ] "overflow_trap"
    [
      J_l "main";
      Insn Nop;
      Label "isr";
      (* Count interrupts at data word 100. *)
      Insn (Lw (20, 0, 400));
      Insn (Addi (20, 20, 1));
      Insn (Sw (0, 20, 400));
      Insn Rfe;
      Label "main";
      Insn (Lhi (1, 0x7FFF));
      Insn (Ori (1, 1, 0xFFFF));   (* r1 = max_int *)
      Insn (Addi (2, 0, 7));
      Insn (Addi (3, 1, 1));       (* overflow: aborted, ISR runs *)
      Insn (Addi (4, 0, 9));
      Insn (Trap 5);               (* trap: ISR runs *)
      Insn (Addi (5, 0, 11));
      Insn (Add (6, 1, 1));        (* overflow again *)
      Insn (Addi (7, 0, 13));
    ]

let all_kernels =
  [
    fib 10;
    memcpy 8;
    dot_product 6;
    bubble_sort [ 9; 3; 7; 1; 8; 2 ];
    hazard_dependent_chain 24;
    hazard_load_use 12;
    hazard_independent 24;
    branch_heavy 8;
    subword_loads;
    strlen "automated pipeline design";
    checksum 8;
  ]
