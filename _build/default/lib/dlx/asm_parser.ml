exception Parse_error of { line : int; message : string }

let err ~line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let strip_comment s =
  let cut_at idx s = String.sub s 0 idx in
  let s =
    match String.index_opt s ';' with Some i -> cut_at i s | None -> s
  in
  let s =
    match String.index_opt s '#' with Some i -> cut_at i s | None -> s
  in
  let rec find_slashes i =
    if i + 1 >= String.length s then None
    else if s.[i] = '/' && s.[i + 1] = '/' then Some i
    else find_slashes (i + 1)
  in
  match find_slashes 0 with Some i -> cut_at i s | None -> s

let tokenize s =
  (* Split on whitespace and commas; keep "off(rN)" together. *)
  let buf = Buffer.create 8 in
  let tokens = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | ',' -> flush ()
      | _ -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !tokens

let parse_reg ~line tok =
  let tok = String.lowercase_ascii tok in
  if String.length tok < 2 || tok.[0] <> 'r' then
    err ~line "expected a register, got %S" tok
  else
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some r when r >= 0 && r <= 31 -> r
    | Some r -> err ~line "register r%d out of range" r
    | None -> err ~line "expected a register, got %S" tok

let parse_imm ~line tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> err ~line "expected an immediate, got %S" tok

(* "off(rN)" *)
let parse_mem ~line tok =
  match String.index_opt tok '(' with
  | None -> err ~line "expected offset(base), got %S" tok
  | Some i ->
    if String.length tok < i + 3 || tok.[String.length tok - 1] <> ')' then
      err ~line "expected offset(base), got %S" tok
    else
      let off = if i = 0 then 0 else parse_imm ~line (String.sub tok 0 i) in
      let base =
        parse_reg ~line (String.sub tok (i + 1) (String.length tok - i - 2))
      in
      (off, base)

let rec parse_line ~line s =
  match tokenize s with
  | [] -> []
  | mnemonic :: args -> (
    let m = String.lowercase_ascii mnemonic in
    (* A label? *)
    if String.length m > 1 && m.[String.length m - 1] = ':' then
      let label = String.sub mnemonic 0 (String.length mnemonic - 1) in
      Asm.Label label :: parse_line ~line (String.concat " " args)
    else
      let reg = parse_reg ~line in
      let imm = parse_imm ~line in
      let mem = parse_mem ~line in
      let rrr mk = function
        | [ d; a; b ] -> [ Asm.Insn (mk (reg d) (reg a) (reg b)) ]
        | args -> err ~line "%s takes rd, rs1, rs2 (got %d operands)" m (List.length args)
      in
      let rri mk = function
        | [ d; a; i ] -> [ Asm.Insn (mk (reg d) (reg a) (imm i)) ]
        | args -> err ~line "%s takes rd, rs1, imm (got %d operands)" m (List.length args)
      in
      let load mk = function
        | [ d; addr ] ->
          let off, base = mem addr in
          [ Asm.Insn (mk (reg d) base off) ]
        | args -> err ~line "%s takes rd, off(base) (got %d operands)" m (List.length args)
      in
      match (m, args) with
      | "add", a -> rrr (fun d x y -> Isa.Add (d, x, y)) a
      | "sub", a -> rrr (fun d x y -> Isa.Sub (d, x, y)) a
      | "and", a -> rrr (fun d x y -> Isa.And (d, x, y)) a
      | "or", a -> rrr (fun d x y -> Isa.Or (d, x, y)) a
      | "xor", a -> rrr (fun d x y -> Isa.Xor (d, x, y)) a
      | "sll", a -> rrr (fun d x y -> Isa.Sll (d, x, y)) a
      | "srl", a -> rrr (fun d x y -> Isa.Srl (d, x, y)) a
      | "sra", a -> rrr (fun d x y -> Isa.Sra (d, x, y)) a
      | "slt", a -> rrr (fun d x y -> Isa.Slt (d, x, y)) a
      | "sltu", a -> rrr (fun d x y -> Isa.Sltu (d, x, y)) a
      | "addi", a -> rri (fun d x i -> Isa.Addi (d, x, i)) a
      | "andi", a -> rri (fun d x i -> Isa.Andi (d, x, i)) a
      | "ori", a -> rri (fun d x i -> Isa.Ori (d, x, i)) a
      | "xori", a -> rri (fun d x i -> Isa.Xori (d, x, i)) a
      | "slti", a -> rri (fun d x i -> Isa.Slti (d, x, i)) a
      | "slli", a -> rri (fun d x i -> Isa.Slli (d, x, i)) a
      | "srli", a -> rri (fun d x i -> Isa.Srli (d, x, i)) a
      | "srai", a -> rri (fun d x i -> Isa.Srai (d, x, i)) a
      | "lhi", [ d; i ] -> [ Asm.Insn (Isa.Lhi (reg d, imm i)) ]
      | "lw", a -> load (fun d b o -> Isa.Lw (d, b, o)) a
      | "lb", a -> load (fun d b o -> Isa.Lb (d, b, o)) a
      | "lbu", a -> load (fun d b o -> Isa.Lbu (d, b, o)) a
      | "lh", a -> load (fun d b o -> Isa.Lh (d, b, o)) a
      | "lhu", a -> load (fun d b o -> Isa.Lhu (d, b, o)) a
      | "sw", [ addr; src ] ->
        let off, base = mem addr in
        [ Asm.Insn (Isa.Sw (base, reg src, off)) ]
      | "beqz", [ r; target ] -> [ Asm.Beqz_l (reg r, target) ]
      | "bnez", [ r; target ] -> [ Asm.Bnez_l (reg r, target) ]
      | "j", [ target ] -> [ Asm.J_l target ]
      | "jal", [ target ] -> [ Asm.Jal_l target ]
      | "jr", [ r ] -> [ Asm.Insn (Isa.Jr (reg r)) ]
      | "jalr", [ r ] -> [ Asm.Insn (Isa.Jalr (reg r)) ]
      | "trap", [ c ] -> [ Asm.Insn (Isa.Trap (imm c land 0x3F)) ]
      | "rfe", [] -> [ Asm.Insn Isa.Rfe ]
      | "nop", [] -> [ Asm.Insn Isa.Nop ]
      | "halt", [] -> Asm.halt
      | _, _ -> err ~line "unknown or malformed instruction %S" s)

let parse text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i l -> parse_line ~line:(i + 1) (String.trim (strip_comment l)))
       lines)

let parse_program text = Asm.assemble (parse text)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text
