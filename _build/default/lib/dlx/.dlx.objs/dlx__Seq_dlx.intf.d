lib/dlx/seq_dlx.mli: Machine Pipeline
