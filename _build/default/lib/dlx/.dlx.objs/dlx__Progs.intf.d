lib/dlx/progs.mli: Asm Refmodel
