lib/dlx/seq_dlx.ml: Array Func Hw Isa List Machine Op Pipeline Refmodel String
