lib/dlx/asm_parser.mli: Asm
