lib/dlx/asm.ml: Format Hashtbl Isa List
