lib/dlx/refmodel.ml: Array Isa List
