lib/dlx/isa.ml: Format Option Printf
