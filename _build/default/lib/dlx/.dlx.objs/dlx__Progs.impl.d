lib/dlx/progs.ml: Asm Char Isa List Printf Refmodel String
