lib/dlx/asm.mli: Isa
