lib/dlx/asm_parser.ml: Asm Buffer Format Isa List String
