lib/dlx/refmodel.mli:
