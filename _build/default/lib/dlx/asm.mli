(** A small two-pass assembler for DLX programs.

    Programs are lists of items: labels, concrete instructions, and
    label-relative control transfers; [assemble] resolves labels to the
    byte offsets the delayed-branch semantics expect
    ([target - (branch_address + 4)]) and returns instruction words.

    The delay slot is architectural: the instruction written after a
    branch executes unconditionally.  The [halt] idiom — a jump to
    itself plus a [nop] delay slot — parks the machine in a tight loop
    so that pipelined over-fetch past the end of a program is
    harmless. *)

type item =
  | Label of string
  | Insn of Isa.t
  | Beqz_l of Isa.reg * string  (** branch to label, delay slot follows *)
  | Bnez_l of Isa.reg * string
  | J_l of string
  | Jal_l of string

exception Asm_error of string

val assemble : ?origin:int -> item list -> int list
(** Instruction words in order.  [origin] is the byte address of the
    first instruction (default 0); labels are resolved against it.
    @raise Asm_error on duplicate or unknown labels or out-of-range
    offsets. *)

val halt : item list
(** [J_l self; Nop] — append to park the machine. *)

val instructions_until_halt : item list -> int
(** Number of instruction words up to and including the halt jump's
    delay slot; convenient as a [stop_after] bound for straight-line
    programs (loops need an explicit dynamic count). *)

val words_of : item list -> int
(** Instruction words the item list assembles to. *)
