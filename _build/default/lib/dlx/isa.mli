(** The DLX instruction set (paper §4.2 case study).

    A standard in-order RISC ISA in the style of Hennessy & Patterson's
    DLX, restricted as in the paper: no floating point unit, one branch
    delay slot (so the instruction fetch needs no speculation), plus
    the precise-interrupt extension of §5 (TRAP / RFE / overflow).

    {2 Architectural conventions}

    - 32 general-purpose registers; [r0] reads as zero and is never
      written.
    - Byte addresses; instruction and data memories are word-organized
      ([2^12] words each); subword loads go through the [shift4load]
      aligner of figure 2.  Subword stores are not implemented (the
      data memory has a word-wide write port; read-modify-write would
      be a structural change out of the paper's scope).
    - Delayed-PC semantics with one delay slot.  The machine keeps two
      program counters: [dpc] (address of the executing instruction)
      and [pc] (address of the next, already committed, instruction).
      Every instruction performs [dpc' = pc] and
      [pc' = taken ? target : pc + 4].  The instruction at [pc] when a
      branch executes is the delay slot; branch targets are relative to
      the branch's own address + 4 ([target = dpc + 4 + offset]).
    - [jal]/[jalr] link [r31 := pc + 4] — the address following the
      delay slot. *)

type reg = int
(** 0..31 *)

type t =
  (* R-type ALU *)
  | Add of reg * reg * reg  (** [Add (rd, rs1, rs2)] *)
  | Sub of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Sll of reg * reg * reg  (** shift amount = rs2 mod 32 *)
  | Srl of reg * reg * reg
  | Sra of reg * reg * reg
  | Slt of reg * reg * reg  (** signed set-less-than *)
  | Sltu of reg * reg * reg
  (* I-type ALU (immediate sign-extended unless noted) *)
  | Addi of reg * reg * int  (** [Addi (rd, rs1, imm)] *)
  | Andi of reg * reg * int  (** zero-extended immediate *)
  | Ori of reg * reg * int   (** zero-extended *)
  | Xori of reg * reg * int  (** zero-extended *)
  | Slti of reg * reg * int
  | Lhi of reg * int         (** [rd := imm << 16] *)
  | Slli of reg * reg * int
  | Srli of reg * reg * int
  | Srai of reg * reg * int
  (* memory *)
  | Lw of reg * reg * int  (** [Lw (rd, rs1, offset)] *)
  | Lb of reg * reg * int
  | Lbu of reg * reg * int
  | Lh of reg * reg * int
  | Lhu of reg * reg * int
  | Sw of reg * reg * int  (** [Sw (rs1, rs2, offset)]: MEM[rs1+off] := rs2 *)
  (* control, one delay slot each *)
  | Beqz of reg * int  (** byte offset relative to branch address + 4 *)
  | Bnez of reg * int
  | J of int
  | Jal of int
  | Jr of reg
  | Jalr of reg
  (* system (precise-interrupt variant, paper §5) *)
  | Trap of int  (** raises an interrupt with the given 6-bit cause *)
  | Rfe          (** return from exception: restores pc/dpc, re-enables *)
  | Nop

val encode : t -> int
(** 32-bit instruction word. *)

val decode : int -> t option
(** [None] for illegal encodings (an illegal opcode raises an
    interrupt in the variant machine; the base machine treats it as
    [Nop]). *)

val is_legal : int -> bool

val nop_word : int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** {1 Field accessors used by the machine descriptions} *)

val opcode_bits : int * int
(** (hi, lo) = (31, 26) *)

val rs1_bits : int * int
(** (25, 21) *)

val rs2_bits : int * int
(** (20, 16) — also the I-type rd field *)

val rd_r_bits : int * int
(** (15, 11) *)

val imm_bits : int * int
(** (15, 0) *)

val func_bits : int * int
(** (5, 0) *)

(** Opcode values (6 bits). *)
module Op : sig
  val rtype : int
  val addi : int
  val andi : int
  val ori : int
  val xori : int
  val slti : int
  val lhi : int
  val slli : int
  val srli : int
  val srai : int
  val lw : int
  val lb : int
  val lbu : int
  val lh : int
  val lhu : int
  val sw : int
  val beqz : int
  val bnez : int
  val j : int
  val jal : int
  val jr : int
  val jalr : int
  val trap : int
  val rfe : int
end

(** R-type function codes (6 bits). *)
module Func : sig
  val add : int
  val sub : int
  val and_ : int
  val or_ : int
  val xor : int
  val sll : int
  val srl : int
  val sra : int
  val slt : int
  val sltu : int
end
