(** Benchmark and test programs for the DLX.

    Each program ends with the halt idiom (a self-jump with a [nop]
    delay slot) so that pipelined over-fetch past its end is harmless.
    [dyn_instructions] is the dynamic instruction count up to the point
    where the program parks in the halt loop, measured on the golden
    model — the natural [stop_after] for simulations. *)

type t = {
  prog_name : string;
  items : Asm.item list;
  data : (int * int) list;     (** initial data memory (word, value) *)
  dyn_instructions : int;
}

val program : t -> int list
(** Assembled instruction words. *)

val make :
  ?config:Refmodel.config -> ?data:(int * int) list -> string ->
  Asm.item list -> t
(** [make name body] appends the halt idiom and measures the dynamic
    instruction count on the golden model ([config] selects the
    interrupt behaviour).  The body must not already contain the
    ["$halt"] label. *)

val fib : int -> t
(** Iterative Fibonacci of [n]; result in r3. *)

val memcpy : int -> t
(** Copy [n] words from word 64 to word 128 via a load/store loop. *)

val dot_product : int -> t
(** Dot product of two [n]-vectors at words 64 and 128; result in r10. *)

val bubble_sort : int list -> t
(** Sorts the list (stored from word 64) in place. *)

val hazard_dependent_chain : int -> t
(** [n] back-to-back dependent ALU instructions: maximal forwarding
    pressure, zero stalls with forwarding, heavy stalls without. *)

val hazard_load_use : int -> t
(** [n] load-use pairs: one interlock stall each even with
    forwarding. *)

val hazard_independent : int -> t
(** [n] independent ALU instructions: CPI 1 even without forwarding
    once the pipe is full. *)

val branch_heavy : int -> t
(** A loop whose body is almost only (taken) branches; stresses the
    delay-slot fetch path and branch prediction. *)

val subword_loads : t
(** Exercises the shift4load aligner: lb/lbu/lh/lhu at all offsets. *)

val strlen : string -> t
(** C-style string length over byte loads; the count ends in r10.
    The string lives at byte address 256. *)

val checksum : int -> t
(** A rotating XOR/ADD checksum over [n] words; result in r10.
    Mixes loads, shifts and ALU dependencies. *)

val overflow_trap : t
(** For the interrupt variant: arithmetic overflow and a TRAP, with an
    ISR that records causes and returns via RFE. *)

val all_kernels : t list
(** The kernels used by the benchmark harness (no interrupt
    programs). *)
