type item =
  | Label of string
  | Insn of Isa.t
  | Beqz_l of Isa.reg * string
  | Bnez_l of Isa.reg * string
  | J_l of string
  | Jal_l of string

exception Asm_error of string

let err fmt = Format.kasprintf (fun s -> raise (Asm_error s)) fmt

let is_insn = function
  | Label _ -> false
  | Insn _ | Beqz_l _ | Bnez_l _ | J_l _ | Jal_l _ -> true

let assemble ?(origin = 0) items =
  (* Pass 1: label addresses. *)
  let table = Hashtbl.create 16 in
  let addr = ref origin in
  List.iter
    (fun item ->
      match item with
      | Label l ->
        if Hashtbl.mem table l then err "duplicate label %s" l;
        Hashtbl.replace table l !addr
      | Insn _ | Beqz_l _ | Bnez_l _ | J_l _ | Jal_l _ -> addr := !addr + 4)
    items;
  let resolve ~at l =
    match Hashtbl.find_opt table l with
    | None -> err "unknown label %s" l
    | Some target ->
      let off = target - (at + 4) in
      if off < -32768 || off > 32767 then err "branch to %s out of range" l;
      off
  in
  let resolve26 ~at l =
    match Hashtbl.find_opt table l with
    | None -> err "unknown label %s" l
    | Some target -> target - (at + 4)
  in
  (* Pass 2. *)
  let addr = ref origin in
  List.filter_map
    (fun item ->
      let at = !addr in
      let emit i =
        addr := !addr + 4;
        Some (Isa.encode i)
      in
      match item with
      | Label _ -> None
      | Insn i -> emit i
      | Beqz_l (r, l) -> emit (Isa.Beqz (r, resolve ~at l))
      | Bnez_l (r, l) -> emit (Isa.Bnez (r, resolve ~at l))
      | J_l l -> emit (Isa.J (resolve26 ~at l))
      | Jal_l l -> emit (Isa.Jal (resolve26 ~at l)))
    items

let halt = [ Label "$halt"; J_l "$halt"; Insn Isa.Nop ]

let instructions_until_halt items =
  List.length (List.filter is_insn items)

let words_of items = List.length (List.filter is_insn items)
