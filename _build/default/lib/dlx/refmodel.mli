(** ISA-level golden model.

    An interpreter of the DLX ISA written independently of the machine
    IR, used to validate the prepared sequential machine description
    itself ("automated verification of sequential machines is
    considered state-of-the-art", paper §7 — here it is testing against
    an independent interpreter).  The interrupt behaviour matches the
    variant machine: overflow / trap / illegal opcode perform JISR when
    interrupts are implemented and enabled. *)

type config = {
  with_interrupts : bool;
  sisr : int;  (** byte address of the interrupt service routine *)
}

val default_config : config
(** No interrupts (the paper's base DLX). *)

type state = {
  mutable pc : int;
  mutable dpc : int;
  gpr : int array;          (** 32 entries, [gpr.(0)] stays 0 *)
  mem : int array;          (** data memory, word-organized *)
  imem : int array;         (** instruction memory, word-organized *)
  mutable sr : int;         (** status register bit 0: interrupts enabled *)
  mutable epc : int;
  mutable edpc : int;
  mutable eca : int;
  mutable instret : int;    (** instructions executed *)
}

val mem_words : int
(** [2^12]: size of each memory. *)

val create : ?data:(int * int) list -> program:int list -> unit -> state
(** Program loaded at word 0; [data] is [(word_index, value)]. *)

val step : ?config:config -> state -> unit
(** Execute one instruction (the one at [dpc]). *)

val run : ?config:config -> state -> steps:int -> unit

val word_index : int -> int
(** Byte address to memory word index (mod memory size). *)
