type config = {
  with_interrupts : bool;
  sisr : int;
}

let default_config = { with_interrupts = false; sisr = 0 }

type state = {
  mutable pc : int;
  mutable dpc : int;
  gpr : int array;
  mem : int array;
  imem : int array;
  mutable sr : int;
  mutable epc : int;
  mutable edpc : int;
  mutable eca : int;
  mutable instret : int;
}

let mem_words = 1 lsl 12
let mask32 v = v land 0xFFFFFFFF
let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v
let word_index addr = (addr lsr 2) land (mem_words - 1)

let create ?(data = []) ~program () =
  let imem = Array.make mem_words Isa.nop_word in
  List.iteri (fun i w -> if i < mem_words then imem.(i) <- mask32 w) program;
  let mem = Array.make mem_words 0 in
  List.iter (fun (i, v) -> mem.(i land (mem_words - 1)) <- mask32 v) data;
  {
    pc = 4;
    dpc = 0;
    gpr = Array.make 32 0;
    mem;
    imem;
    sr = 1;
    epc = 0;
    edpc = 0;
    eca = 0;
    instret = 0;
  }

let add_overflows a b =
  let s = signed a + signed b in
  s < -0x80000000 || s > 0x7FFFFFFF

let sub_overflows a b =
  let s = signed a - signed b in
  s < -0x80000000 || s > 0x7FFFFFFF

let load s ~addr ~size ~signed:sgn =
  let word = s.mem.(word_index addr) in
  match size with
  | `Word -> word
  | `Byte ->
    let b = (word lsr (8 * (addr land 3))) land 0xFF in
    if sgn && b land 0x80 <> 0 then mask32 (b - 0x100) else b
  | `Half ->
    let h = (word lsr (16 * ((addr lsr 1) land 1))) land 0xFFFF in
    if sgn && h land 0x8000 <> 0 then mask32 (h - 0x10000) else h

let step ?(config = default_config) s =
  let ir = s.imem.(word_index s.dpc) in
  let insn = Isa.decode ir in
  let old_pc = s.pc and old_dpc = s.dpc in
  let set_gpr r v = if r <> 0 then s.gpr.(r) <- mask32 v in
  let g r = s.gpr.(r) in
  (* "Continue"-type interrupts: the faulting instruction is aborted
     and RFE resumes at its successor (old_pc / old_pc+4). *)
  let jisr cause =
    s.epc <- mask32 (old_pc + 4);
    s.edpc <- old_pc;
    s.eca <- cause;
    s.sr <- 0;
    s.pc <- mask32 (config.sisr + 4);
    s.dpc <- mask32 config.sisr
  in
  let interrupts_on = config.with_interrupts && s.sr land 1 = 1 in
  let normal ?(taken = false) ?(target = 0) () =
    s.dpc <- old_pc;
    s.pc <- (if taken then mask32 target else mask32 (old_pc + 4))
  in
  let alu_op r f a b = set_gpr r (f a b); normal () in
  let alu_ovf r sum ovf =
    if ovf && interrupts_on then jisr 2
    else begin
      set_gpr r sum;
      normal ()
    end
  in
  (match insn with
  | None -> if interrupts_on then jisr 1 else normal ()
  | Some i -> (
    match i with
    | Isa.Nop -> normal ()
    | Isa.Add (d, a, b) -> alu_ovf d (g a + g b) (add_overflows (g a) (g b))
    | Isa.Sub (d, a, b) -> alu_ovf d (g a - g b) (sub_overflows (g a) (g b))
    | Isa.And (d, a, b) -> alu_op d ( land ) (g a) (g b)
    | Isa.Or (d, a, b) -> alu_op d ( lor ) (g a) (g b)
    | Isa.Xor (d, a, b) -> alu_op d ( lxor ) (g a) (g b)
    | Isa.Sll (d, a, b) -> alu_op d (fun x y -> x lsl (y land 31)) (g a) (g b)
    | Isa.Srl (d, a, b) -> alu_op d (fun x y -> x lsr (y land 31)) (g a) (g b)
    | Isa.Sra (d, a, b) ->
      alu_op d (fun x y -> signed x asr (y land 31)) (g a) (g b)
    | Isa.Slt (d, a, b) ->
      alu_op d (fun x y -> if signed x < signed y then 1 else 0) (g a) (g b)
    | Isa.Sltu (d, a, b) -> alu_op d (fun x y -> if x < y then 1 else 0) (g a) (g b)
    | Isa.Addi (d, a, imm) ->
      alu_ovf d (g a + mask32 imm) (add_overflows (g a) (mask32 imm))
    | Isa.Andi (d, a, imm) -> alu_op d ( land ) (g a) (imm land 0xFFFF)
    | Isa.Ori (d, a, imm) -> alu_op d ( lor ) (g a) (imm land 0xFFFF)
    | Isa.Xori (d, a, imm) -> alu_op d ( lxor ) (g a) (imm land 0xFFFF)
    | Isa.Slti (d, a, imm) ->
      alu_op d (fun x y -> if signed x < signed y then 1 else 0) (g a) (mask32 imm)
    | Isa.Lhi (d, imm) -> alu_op d (fun _ y -> (y land 0xFFFF) lsl 16) 0 imm
    | Isa.Slli (d, a, sh) -> alu_op d (fun x y -> x lsl y) (g a) sh
    | Isa.Srli (d, a, sh) -> alu_op d (fun x y -> x lsr y) (g a) sh
    | Isa.Srai (d, a, sh) -> alu_op d (fun x y -> signed x asr y) (g a) sh
    | Isa.Lw (d, a, off) ->
      set_gpr d (load s ~addr:(mask32 (g a + mask32 off)) ~size:`Word ~signed:false);
      normal ()
    | Isa.Lb (d, a, off) ->
      set_gpr d (load s ~addr:(mask32 (g a + mask32 off)) ~size:`Byte ~signed:true);
      normal ()
    | Isa.Lbu (d, a, off) ->
      set_gpr d (load s ~addr:(mask32 (g a + mask32 off)) ~size:`Byte ~signed:false);
      normal ()
    | Isa.Lh (d, a, off) ->
      set_gpr d (load s ~addr:(mask32 (g a + mask32 off)) ~size:`Half ~signed:true);
      normal ()
    | Isa.Lhu (d, a, off) ->
      set_gpr d (load s ~addr:(mask32 (g a + mask32 off)) ~size:`Half ~signed:false);
      normal ()
    | Isa.Sw (a, src, off) ->
      s.mem.(word_index (mask32 (g a + mask32 off))) <- g src;
      normal ()
    | Isa.Beqz (a, off) ->
      normal ~taken:(g a = 0) ~target:(old_dpc + 4 + off) ()
    | Isa.Bnez (a, off) ->
      normal ~taken:(g a <> 0) ~target:(old_dpc + 4 + off) ()
    | Isa.J off -> normal ~taken:true ~target:(old_dpc + 4 + off) ()
    | Isa.Jal off ->
      set_gpr 31 (old_pc + 4);
      normal ~taken:true ~target:(old_dpc + 4 + off) ()
    | Isa.Jr a -> normal ~taken:true ~target:(g a) ()
    | Isa.Jalr a ->
      let target = g a in
      set_gpr 31 (old_pc + 4);
      normal ~taken:true ~target ()
    | Isa.Trap code -> if interrupts_on then jisr (0x20 lor code) else normal ()
    | Isa.Rfe ->
      if config.with_interrupts then begin
        s.sr <- 1;
        s.pc <- s.epc;
        s.dpc <- s.edpc
      end
      else normal ()));
  s.instret <- s.instret + 1

let run ?config s ~steps =
  for _ = 1 to steps do
    step ?config s
  done
