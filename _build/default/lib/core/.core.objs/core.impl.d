lib/core/core.ml: Elastic Format Hw Pipeline Proof_engine Toy
