lib/core/toy.ml: Hw List Machine Pipeline
