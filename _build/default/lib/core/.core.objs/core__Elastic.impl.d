lib/core/elastic.ml: Hw List Machine Pipeline Printf
