lib/core/core.mli: Elastic Machine Pipeline Proof_engine Toy
