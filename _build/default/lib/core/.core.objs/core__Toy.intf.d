lib/core/toy.mli: Machine Pipeline
