lib/core/elastic.mli: Machine Pipeline
