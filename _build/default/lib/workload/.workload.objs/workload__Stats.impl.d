lib/workload/stats.ml: Format List Obs Pipeline
