lib/workload/sweep.mli: Dlx Pipeline Stats
