lib/workload/sweep.ml: Dlx Format Gen List Pipeline Proof_engine Stats
