lib/workload/gen.mli: Dlx
