lib/workload/stats.mli: Format Pipeline
