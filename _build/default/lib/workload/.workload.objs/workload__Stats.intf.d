lib/workload/stats.mli: Format Obs Pipeline
