lib/workload/gen.ml: Dlx List Printf
