module Isa = Dlx.Isa
module Asm = Dlx.Asm
module Progs = Dlx.Progs
module Refmodel = Dlx.Refmodel

type profile = {
  alu_frac : float;
  load_frac : float;
  store_frac : float;
  branch_frac : float;
  taken_frac : float;
  dependency_bias : float;
  call_frac : float;
}

let typical =
  {
    alu_frac = 0.50;
    load_frac = 0.20;
    store_frac = 0.10;
    branch_frac = 0.15;
    taken_frac = 0.6;
    dependency_bias = 0.4;
    call_frac = 0.05;
  }

let alu_only ~dependency_bias =
  {
    alu_frac = 1.0;
    load_frac = 0.0;
    store_frac = 0.0;
    branch_frac = 0.0;
    taken_frac = 0.0;
    dependency_bias;
    call_frac = 0.0;
  }

let memory_heavy =
  {
    alu_frac = 0.30;
    load_frac = 0.40;
    store_frac = 0.20;
    branch_frac = 0.10;
    taken_frac = 0.5;
    dependency_bias = 0.6;
    call_frac = 0.0;
  }

let branch_heavy ~taken_frac =
  {
    alu_frac = 0.45;
    load_frac = 0.10;
    store_frac = 0.05;
    branch_frac = 0.40;
    taken_frac;
    dependency_bias = 0.3;
    call_frac = 0.0;
  }

let with_branch_frac p f =
  let rest = 1.0 -. f in
  let scale = rest /. (p.alu_frac +. p.load_frac +. p.store_frac) in
  {
    p with
    alu_frac = p.alu_frac *. scale;
    load_frac = p.load_frac *. scale;
    store_frac = p.store_frac *. scale;
    branch_frac = f;
  }

(* A small deterministic PRNG (xorshift), independent of the stdlib
   Random state. *)
type rng = { mutable s : int }

let rng_make seed = { s = (seed * 2654435761) lor 1 }

let rng_bits r =
  let s = r.s in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  r.s <- s land max_int;
  r.s

let rng_float r = float_of_int (rng_bits r land 0xFFFFFF) /. 16777216.0
let rng_int r n = if n <= 0 then 0 else rng_bits r mod n

let generate ~seed ~length profile =
  let rng = rng_make seed in
  let last_dest = ref 2 in
  let pick_src () =
    if rng_float rng < profile.dependency_bias then !last_dest
    else 2 + rng_int rng 13
  in
  let pick_dest () =
    let d = 2 + rng_int rng 13 in
    last_dest := d;
    d
  in
  let alu () =
    (* Sources first: the bias refers to the previous instruction's
       destination, not this one's. *)
    let a = pick_src () in
    let b = pick_src () in
    let d = pick_dest () in
    match rng_int rng 8 with
    | 0 -> Isa.Add (d, a, b)
    | 1 -> Isa.Sub (d, a, b)
    | 2 -> Isa.And (d, a, b)
    | 3 -> Isa.Or (d, a, b)
    | 4 -> Isa.Xor (d, a, b)
    | 5 -> Isa.Slt (d, a, b)
    | 6 -> Isa.Addi (d, a, rng_int rng 64)
    | _ -> Isa.Xori (d, a, rng_int rng 256)
  in
  let items = ref [] in
  let label_counter = ref 0 in
  let emit i = items := Asm.Insn i :: !items in
  let count = ref 0 in
  (* A few leaf subroutines, placed after the halt, returning via jr. *)
  let n_funcs = if profile.call_frac > 0.0 then 3 else 0 in
  while !count < length do
    let x = rng_float rng in
    let p = profile in
    if n_funcs > 0 && x < p.call_frac && length - !count > 2 then begin
      items := Asm.Jal_l (Printf.sprintf "F%d" (rng_int rng n_funcs)) :: !items;
      emit Isa.Nop;
      count := !count + 2
    end
    else if
      x < p.call_frac +. p.branch_frac
      && p.branch_frac > 0.0 && length - !count > 4
    then begin
      (* A forward skip over 1..2 instructions; taken-ness is chosen by
         branching on r0 (known zero) one way or the other, with an
         occasional data-dependent branch. *)
      incr label_counter;
      let l = Printf.sprintf "L%d" !label_counter in
      let taken = rng_float rng < p.taken_frac in
      let data_dep = rng_float rng < 0.25 in
      let branch =
        if data_dep then
          if taken then Asm.Beqz_l (0, l)  (* r0 = 0: taken *)
          else Asm.Bnez_l (pick_src (), l) (* may or may not be taken *)
        else if taken then Asm.Beqz_l (0, l)
        else Asm.Bnez_l (0, l)
      in
      items := branch :: !items;
      emit Isa.Nop;  (* delay slot *)
      let skipped = 1 + rng_int rng 2 in
      for _ = 1 to skipped do
        emit (alu ())
      done;
      items := Asm.Label l :: !items;
      count := !count + 2 + skipped
    end
    else if x < p.call_frac +. p.branch_frac +. p.load_frac then begin
      let d = pick_dest () in
      let kind = rng_int rng 4 in
      let off = 4 * rng_int rng 48 in
      emit
        (match kind with
        | 0 -> Isa.Lw (d, 1, off)
        | 1 -> Isa.Lb (d, 1, off + rng_int rng 4)
        | 2 -> Isa.Lbu (d, 1, off + rng_int rng 4)
        | _ -> Isa.Lh (d, 1, off + (2 * rng_int rng 2)));
      incr count
    end
    else if
      x < p.call_frac +. p.branch_frac +. p.load_frac +. p.store_frac
    then begin
      emit (Isa.Sw (1, pick_src (), 4 * rng_int rng 48));
      incr count
    end
    else begin
      emit (alu ());
      incr count
    end
  done;
  let funcs =
    List.concat
      (List.init n_funcs (fun f ->
           Asm.Label (Printf.sprintf "F%d" f)
           :: (List.init (1 + (f mod 2)) (fun _ -> Asm.Insn (alu ()))
              @ [ Asm.Insn (Isa.Jr 31); Asm.Insn Isa.Nop ])))
  in
  let body = Asm.Insn (Isa.Addi (1, 0, 256)) :: List.rev !items in
  let data = List.init 64 (fun i -> (64 + i, (i * 97) land 0xFFF)) in
  Progs.
    {
      prog_name = Printf.sprintf "rand_s%d_n%d" seed length;
      (* Leaf functions live after the halt so straight-line execution
         never falls into them. *)
      items = body @ Asm.halt @ funcs;
      data;
      dyn_instructions = 0;  (* filled below *)
    }
  |> fun p ->
  (* Measure the dynamic instruction count on the golden model. *)
  let s = Refmodel.create ~data:p.Progs.data ~program:(Progs.program p) () in
  let halt_addr =
    4
    * List.length
        (List.filter
           (fun i -> match i with Asm.Label _ -> false | _ -> true)
           (body))
  in
  let rec measure () =
    if s.Refmodel.dpc = halt_addr || s.Refmodel.instret > 100_000 then
      s.Refmodel.instret
    else begin
      Refmodel.step s;
      measure ()
    end
  in
  { p with Progs.dyn_instructions = measure () }

(* Interrupt-stress generation: the same body generator, wrapped in an
   ISR template, with traps and overflow-prone arithmetic mixed in. *)
let generate_with_interrupts ~seed ~length ~sisr profile =
  assert (sisr = 8);
  let rng = rng_make (seed lxor 0x5EED) in
  (* Calls are disabled here: the body is re-wrapped around an ISR, and
     the leaf functions would be separated from their call sites. *)
  let base = generate ~seed ~length { profile with call_frac = 0.0 } in
  (* Strip the prologue-less body: take base.items up to the halt. *)
  let rec body = function
    | [] -> []
    | Asm.Label "$halt" :: _ -> []
    | item :: rest -> item :: body rest
  in
  let spiced =
    List.concat_map
      (fun item ->
        match item with
        | Asm.Insn (Isa.Addi (d, _, _)) when d >= 2 && rng_float rng < 0.10 ->
          (* Replace with guaranteed-overflow arithmetic: max_int +
             max_int.  The add is aborted by the interrupt, so [d]
             keeps the large value and may overflow again later. *)
          [
            Asm.Insn (Isa.Lhi (d, 0x7FFF));
            Asm.Insn (Isa.Ori (d, d, 0xFFFF));
            Asm.Insn (Isa.Add (d, d, d));
          ]
        | Asm.Insn _ when rng_float rng < 0.05 ->
          [ item; Asm.Insn (Isa.Trap (rng_int rng 8)) ]
        | _ -> [ item ])
      (body base.Progs.items)
  in
  let items =
    [ Asm.J_l "$main"; Asm.Insn Isa.Nop; Asm.Label "$isr";
      Asm.Insn (Isa.Lw (20, 0, 400)); Asm.Insn (Isa.Addi (20, 20, 1));
      Asm.Insn (Isa.Sw (0, 20, 400)); Asm.Insn Isa.Rfe; Asm.Label "$main" ]
    @ spiced
  in
  let config = { Refmodel.with_interrupts = true; sisr } in
  Progs.make ~config ~data:base.Progs.data
    (Printf.sprintf "rand_intr_s%d_n%d" seed length)
    items
