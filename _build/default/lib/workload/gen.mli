(** Random DLX program generation with controllable hazard structure.

    Programs are straight-line with forward skips only, so they always
    terminate; control flow mixes always-taken and never-taken branches
    (on [r0]) with data-dependent branches on computed registers.  The
    dependency bias controls how often an operand is the most recently
    written register — the knob that turns forwarding hits and load-use
    interlocks on and off. *)

type profile = {
  alu_frac : float;      (** fraction of plain ALU instructions *)
  load_frac : float;
  store_frac : float;
  branch_frac : float;   (** remainder is filled with ALU ops *)
  taken_frac : float;    (** fraction of branches that are taken *)
  dependency_bias : float;
      (** probability that a source operand is the previous
          instruction's destination (1.0 = a dependent chain) *)
  call_frac : float;
      (** fraction of instructions that become subroutine calls
          ([jal] to one of a few generated leaf functions returning via
          [jr r31]) — exercises the link-register forwarding path *)
}

val typical : profile
(** A SPEC-flavoured mix: 55 % ALU, 20 % loads, 10 % stores, 15 %
    branches (60 % taken), dependency bias 0.4. *)

val alu_only : dependency_bias:float -> profile

val memory_heavy : profile

val branch_heavy : taken_frac:float -> profile

val with_branch_frac : profile -> float -> profile

val generate : seed:int -> length:int -> profile -> Dlx.Progs.t
(** A deterministic program of roughly [length] instructions (plus a
    short prologue and the halt idiom).  The same seed always yields
    the same program. *)

val generate_with_interrupts :
  seed:int -> length:int -> sisr:int -> profile -> Dlx.Progs.t
(** Like {!generate}, but for the precise-interrupt machine: the
    program starts with a jump over an interrupt service routine at
    [sisr] (which counts interrupts in data word 100 and returns via
    RFE), and the body is seeded with TRAP instructions and
    overflow-prone arithmetic (operands near [max_int]) so the
    rollback path fires many times.  The dynamic instruction count is
    measured with interrupts enabled. *)
