type row = {
  label : string;
  instructions : int;
  cycles : int;
  cpi : float;
  speedup_vs_sequential : float;
  fetch_stall_cycles : int;
  rollbacks : int;
}

let of_stats ~label ~n_stages (s : Pipeline.Pipesem.stats) =
  let cpi = Pipeline.Pipesem.cpi s in
  {
    label;
    instructions = s.Pipeline.Pipesem.retired;
    cycles = s.Pipeline.Pipesem.cycles;
    cpi;
    speedup_vs_sequential = float_of_int n_stages /. cpi;
    fetch_stall_cycles = s.Pipeline.Pipesem.fetch_stall_cycles;
    rollbacks = s.Pipeline.Pipesem.rollbacks;
  }

let pp_table ppf rows =
  Format.fprintf ppf "%-22s %8s %8s %6s %8s %7s %9s@." "workload" "instr"
    "cycles" "CPI" "speedup" "stalls" "rollbacks";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-22s %8d %8d %6.2f %8.2f %7d %9d@." r.label
        r.instructions r.cycles r.cpi r.speedup_vs_sequential
        r.fetch_stall_cycles r.rollbacks)
    rows

let geomean_cpi rows =
  match rows with
  | [] -> nan
  | _ ->
    let log_sum = List.fold_left (fun acc r -> acc +. log r.cpi) 0.0 rows in
    exp (log_sum /. float_of_int (List.length rows))
