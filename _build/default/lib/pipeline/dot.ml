module Spec = Machine.Spec

let node_id name = "r_" ^ Hw.Verilog.sanitize name

let forwarding_graph (t : Transform.t) =
  let m = t.Transform.base in
  let b = Buffer.create 4096 in
  let pr fmt = Format.kasprintf (Buffer.add_string b) fmt in
  pr "digraph %s {\n" (Hw.Verilog.sanitize m.Spec.machine_name);
  pr "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  pr "  fontsize=11;\n";
  (* Stage clusters with their output registers. *)
  List.iter
    (fun (s : Spec.stage) ->
      pr "  subgraph cluster_stage%d {\n" s.Spec.index;
      pr "    label=\"stage %d (%s)\";\n" s.Spec.index s.Spec.stage_name;
      pr "    style=rounded;\n";
      List.iter
        (fun (r : Spec.register) ->
          if r.Spec.stage = s.Spec.index then begin
            let shape =
              match r.Spec.kind with
              | Spec.File _ -> "box3d"
              | Spec.Simple -> "box"
            in
            pr "    %s [label=\"%s\\n%d bit%s\", shape=%s%s];\n"
              (node_id r.Spec.reg_name) r.Spec.reg_name r.Spec.width
              (match r.Spec.kind with
              | Spec.File { addr_bits } ->
                Printf.sprintf " x 2^%d" addr_bits
              | Spec.Simple -> "")
              shape
              (if r.Spec.visible then ", penwidth=2" else "")
          end)
        m.Spec.registers;
      pr "  }\n")
    m.Spec.stages;
  (* Instance-chain flow. *)
  List.iter
    (fun (r : Spec.register) ->
      match r.Spec.prev_instance with
      | Some p ->
        pr "  %s -> %s [color=gray40];\n" (node_id p) (node_id r.Spec.reg_name)
      | None -> ())
    m.Spec.registers;
  (* Forwarding edges: source stage -> consumer's operand register. *)
  List.iter
    (fun (r : Transform.rule) ->
      let consumer = Printf.sprintf "g_%s" r.Transform.rule_label in
      pr
        "  %s [label=\"g %s\\n(stage %d operand)\", shape=trapezium, \
         style=filled, fillcolor=lightyellow];\n"
        consumer r.Transform.rule_label r.Transform.consumer_stage;
      (* Default: the architectural register. *)
      pr "  %s -> %s [style=dashed, color=gray, label=\"no hit\"];\n"
        (node_id r.Transform.operand_reg)
        consumer;
      List.iter
        (fun (s : Transform.source) ->
          match s.Transform.src_kind with
          | Transform.From_writer ->
            pr
              "  f%d -> %s [style=dashed, color=blue, label=\"hit[%d] (Din)\"];\n"
              s.Transform.src_stage consumer s.Transform.src_stage;
            pr "  f%d [label=\"f_%d output\", shape=ellipse];\n"
              s.Transform.src_stage s.Transform.src_stage
          | Transform.From_chain c -> (
            match
              Spec.instance_at_stage m c
                ~consumer_stage:(s.Transform.src_stage + 1)
            with
            | Some inst ->
              pr "  %s -> %s [style=dashed, color=blue, label=\"hit[%d]\"];\n"
                (node_id inst) consumer s.Transform.src_stage
            | None ->
              pr
                "  f%d -> %s [style=dashed, color=blue, label=\"hit[%d]\"];\n"
                s.Transform.src_stage consumer s.Transform.src_stage)
          | Transform.No_source ->
            pr
              "  stall%d_%s [label=\"stall\", shape=plaintext, \
               fontcolor=red];\n"
              s.Transform.src_stage r.Transform.rule_label;
            pr "  stall%d_%s -> %s [style=dotted, color=red];\n"
              s.Transform.src_stage r.Transform.rule_label consumer)
        r.Transform.sources)
    t.Transform.rules;
  pr "}\n";
  Buffer.contents b

let write_file ~path t =
  let oc = open_out path in
  output_string oc (forwarding_graph t);
  close_out oc
