lib/pipeline/stall_engine.ml: Array Hw List Obs Printf Transform
