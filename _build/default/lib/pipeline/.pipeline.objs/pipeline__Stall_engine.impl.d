lib/pipeline/stall_engine.ml: Array Hw List Printf Transform
