lib/pipeline/fwd_spec.mli: Hw Machine
