lib/pipeline/transform.mli: Fwd_spec Hw Machine
