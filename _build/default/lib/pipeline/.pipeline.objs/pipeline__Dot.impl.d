lib/pipeline/dot.ml: Buffer Format Hw List Machine Printf Transform
