lib/pipeline/schedule.ml: Array Format List Pipesem
