lib/pipeline/stall_engine.mli: Hw
