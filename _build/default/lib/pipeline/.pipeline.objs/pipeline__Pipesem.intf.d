lib/pipeline/pipesem.mli: Hw Machine Transform
