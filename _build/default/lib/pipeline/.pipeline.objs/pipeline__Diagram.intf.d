lib/pipeline/diagram.mli: Hw Pipesem Transform
