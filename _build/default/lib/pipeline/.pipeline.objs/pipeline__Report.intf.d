lib/pipeline/report.mli: Format Hw Transform
