lib/pipeline/transform.ml: Array Format Fwd_spec Hashtbl Hw List Machine Option Printf String
