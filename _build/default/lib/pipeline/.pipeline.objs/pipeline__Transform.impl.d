lib/pipeline/transform.ml: Array Format Fwd_spec Hashtbl Hw List Machine Obs Option Printf String
