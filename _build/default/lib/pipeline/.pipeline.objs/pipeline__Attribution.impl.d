lib/pipeline/attribution.ml: Array Hw List Machine Obs Pipesem Printf Transform
