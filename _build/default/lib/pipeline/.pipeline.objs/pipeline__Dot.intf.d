lib/pipeline/dot.mli: Transform
