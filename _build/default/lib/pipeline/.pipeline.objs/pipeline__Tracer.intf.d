lib/pipeline/tracer.mli: Hw Pipesem Transform
