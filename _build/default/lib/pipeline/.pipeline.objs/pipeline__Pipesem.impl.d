lib/pipeline/pipesem.ml: Array Fwd_spec Hashtbl Hw List Machine Obs Stall_engine Transform
