lib/pipeline/pipesem.ml: Array Fwd_spec Hashtbl Hw List Machine Stall_engine Transform
