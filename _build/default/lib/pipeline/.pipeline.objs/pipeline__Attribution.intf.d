lib/pipeline/attribution.mli: Obs Pipesem Transform
