lib/pipeline/report.ml: Array Format Fwd_spec Hashtbl Hw List Machine Option Printf Stall_engine String Transform
