lib/pipeline/coverage.ml: Array Format Hw List Machine Pipesem Printf String Transform
