lib/pipeline/fwd_spec.ml: Hw Machine
