lib/pipeline/tracer.ml: Array Hw List Machine Option Pipesem Printf Transform
