lib/pipeline/mux_impl.ml: Format Hw List Printf
