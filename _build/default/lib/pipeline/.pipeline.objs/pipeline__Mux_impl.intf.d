lib/pipeline/mux_impl.mli: Format Hw
