lib/pipeline/schedule.mli: Pipesem
