lib/pipeline/diagram.ml: Array Buffer Hw List Machine Option Pipesem Printf String Transform
