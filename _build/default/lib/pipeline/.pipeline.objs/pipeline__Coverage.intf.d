lib/pipeline/coverage.mli: Format Pipesem Transform
