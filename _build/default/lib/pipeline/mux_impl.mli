(** Experiment E3: forwarding multiplexer implementations.

    The paper (§4.2) notes of the generated linear mux chain: "this
    hardware gets slow with larger pipelines.  With larger pipelines,
    one can use a find first one circuit and a balanced tree of
    multiplexers".  This module builds the [top]-selection network for
    a parametric number of forwarding sources with both structures and
    prices them, reproducing the asymptotic claim: linear depth for the
    chain, logarithmic for the tree. *)

type point = {
  sources : int;  (** forwarding sources = pipeline depth - 2 roughly *)
  data_width : int;
  chain : Hw.Cost.t;
  tree : Hw.Cost.t;
  bus : Hw.Cost.t;
      (** tri-state operand bus: find-first-one enables plus one driver
          per source bit and a single bus settling level (priced
          analytically — the simulated network is the [Tree]
          equivalent) *)
}

val build_network :
  impl:Hw.Circuits.priority_impl -> sources:int -> data_width:int -> Hw.Expr.t
(** The priority-selection network over fresh hit/candidate inputs. *)

val measure : sources:int -> data_width:int -> point

val sweep : depths:int list -> data_width:int -> point list

val bus_cost : sources:int -> data_width:int -> Hw.Cost.t

val pp_sweep : Format.formatter -> point list -> unit
(** Table: sources, chain/tree/bus gates and depth. *)
