module Spec = Machine.Spec

let stage_abbrev (t : Transform.t) k =
  let s = Spec.stage_of t.Transform.base k in
  let name = s.Spec.stage_name in
  if String.length name >= 2 then String.sub name 0 2
  else name ^ string_of_int k

let of_trace (t : Transform.t) records =
  let max_tag =
    List.fold_left
      (fun acc (r : Pipesem.cycle_record) ->
        Array.fold_left
          (fun acc tag -> match tag with Some i -> max acc i | None -> acc)
          acc r.Pipesem.tags)
      0 records
  in
  let columns = List.init (max_tag + 1) (fun i -> Printf.sprintf "I%d" i) in
  let wave = Hw.Wave.create ~columns in
  List.iter
    (fun (r : Pipesem.cycle_record) ->
      let row = ref [] in
      Array.iteri
        (fun k tag ->
          match tag with
          | Some i when r.Pipesem.full.(k) || k = 0 ->
            let cell =
              if r.Pipesem.rollback.(k) then "x"
              else stage_abbrev t k
            in
            row := (Printf.sprintf "I%d" i, cell) :: !row
          | Some _ | None -> ())
        r.Pipesem.tags;
      Hw.Wave.record wave !row)
    records;
  wave

let render ?max_instructions (t : Transform.t) records =
  let wave = of_trace t records in
  let cycles = List.length records in
  let max_tag =
    List.fold_left
      (fun acc (r : Pipesem.cycle_record) ->
        Array.fold_left
          (fun acc tag -> match tag with Some i -> max acc i | None -> acc)
          acc r.Pipesem.tags)
      0 records
  in
  let shown =
    match max_instructions with
    | Some m -> min (max_tag + 1) m
    | None -> max_tag + 1
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "instr";
  for c = 0 to cycles - 1 do
    Buffer.add_string buf (Printf.sprintf " %3d" c)
  done;
  Buffer.add_char buf '\n';
  for i = 0 to shown - 1 do
    Buffer.add_string buf (Printf.sprintf "I%-4d" i);
    for c = 0 to cycles - 1 do
      let cell =
        Option.value ~default:""
          (Hw.Wave.cell wave ~cycle:c ~column:(Printf.sprintf "I%d" i))
      in
      Buffer.add_string buf (Printf.sprintf " %3s" cell)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let capture ?ext ~stop_after t =
  let records = ref [] in
  let callbacks =
    {
      Pipesem.no_callbacks with
      Pipesem.on_cycle = (fun r -> records := r :: !records);
    }
  in
  let result = Pipesem.run ?ext ~callbacks ~stop_after t in
  (render t (List.rev !records), result)
