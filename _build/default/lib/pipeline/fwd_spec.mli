(** Designer input to the transformation tool.

    The paper keeps the manual effort deliberately low: besides the
    prepared sequential machine itself, the designer only names, per
    forwarded operand, the registers holding intermediate results (the
    *forwarding registers*, §4.1 — e.g. [C.3]/[C.4] for the DLX GPR
    operands) and, for speculative inputs, which value is speculated on
    and where the truth is detected (§5).  Everything else — hit
    signals, valid bits, multiplexers, interlock, the stall engine and
    the rollback machinery — is synthesized. *)

(** Which operand of a consumer stage a hint applies to. *)
type operand_sel =
  | Reg of string
      (** a plain register read by the stage (e.g. [DPC] in fetch) *)
  | File_port of string * int
      (** [File_port (file, i)]: the [i]-th distinct read port of
          register file [file] in the stage, in order of appearance in
          the stage's expressions (e.g. the DLX decode stage reads
          [GPR] twice: port 0 is operand A, port 1 is operand B) *)

type hint = {
  h_stage : int;  (** the consumer stage [k] *)
  h_operand : operand_sel;
  h_label : string option;
      (** display label, e.g. ["GPRa"]; defaults to a generated one *)
  h_chain : string option;
      (** name of any register of the forwarding-register chain (e.g.
          ["C.3"]); the tool walks the instance links to find the
          instance relevant at each stage.  [None] means no forwarding
          registers are designated: every hit raises a data hazard
          (pure interlock for this operand). *)
  h_we_override : (int * Hw.Expr.t) list;
      (** per-stage replacements for the auto-derived precomputed write
          enable [Rwe.j] (rarely needed) *)
  h_wa_override : (int * Hw.Expr.t) list;
      (** per-stage replacements for the precomputed write address
          [Rwa.j] *)
  h_needed : Hw.Expr.t option;
      (** 1-bit condition over the consumer stage's inputs: the operand
          is actually used only when it holds (e.g. a jump does not
          read its register fields).  Gates the rule's data-hazard
          signal — never the forwarding muxes — so a wrong condition
          can cost stalls or, if too narrow, break consistency; the
          checkers will catch the latter.  [None] means always
          needed. *)
}

val hint :
  ?label:string ->
  ?chain:string ->
  ?we_override:(int * Hw.Expr.t) list ->
  ?wa_override:(int * Hw.Expr.t) list ->
  ?needed:Hw.Expr.t ->
  stage:int ->
  operand_sel ->
  hint

(** Speculation (paper §5): the designer states which input value is
    speculative.  The tool adds a comparator on the actual value and
    wires the rollback. *)
type speculation = {
  spec_label : string;
  resolve_stage : int;
      (** stage [k] where the truth is known; the comparison fires only
          when the stage is full and not stalled *)
  mispredict : Hw.Expr.t;
      (** 1-bit: guessed value differs from the actual value.  Reads
          the resolve stage's inputs (forwarded operands are used, like
          any stage input). *)
  rollback_writes : Machine.Spec.write list;
      (** corrective updates committed when the rollback fires (e.g.
          the JISR updates for precise interrupts); normal [ue]-gated
          writes of the squashed stages are suppressed *)
  retires : bool;
      (** [true]: the rollback writes realize the squashed
          instruction's sequential semantics, so it counts as executed
          (precise interrupts).  [false]: the squashed instructions
          were wrongly fetched and are re-fetched (branch
          misprediction). *)
}

(** Transformation options. *)
type mode =
  | Full            (** forwarding + interlock (the paper's result) *)
  | Interlock_only
      (** no bypass paths: every hit raises a data hazard and stalls
          until the producer has written the register.  Used as the
          baseline in experiment E5. *)

type options = {
  mode : mode;
  impl : Hw.Circuits.priority_impl;
      (** multiplexer structure for the [top] selection (experiment
          E3): [Chain] is figure 2's linear chain, [Tree] the
          find-first-one + balanced tree of §4.2 *)
}

val default_options : options
(** [Full] with [Chain] (the paper's figure 2 construction). *)
