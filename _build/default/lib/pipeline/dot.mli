(** Graphviz rendering of the pipeline and its generated forwarding
    paths — the figure-2 view as a diagram.

    One cluster per stage containing its output registers; solid edges
    for the pipeline register flow (instance chains); dashed, labelled
    edges for every synthesized forwarding source into its consumer
    stage; dotted edges for the interlock-only (stall) sources.
    Render with [dot -Tsvg]. *)

val forwarding_graph : Transform.t -> string

val write_file : path:string -> Transform.t -> unit
