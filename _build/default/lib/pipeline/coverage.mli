(** Verification coverage of the generated hardware.

    Trace-based checking is only as good as what the traces exercise.
    This collector watches a pipelined run and records, per forwarding
    rule, which sources actually won the priority selection ([top =
    j]), whether the data hazard fired, and per stage whether stalls,
    bubbles and rollbacks occurred — then reports the holes, so a test
    suite can assert that its programs drive every bypass path and
    interlock the tool generated. *)

type rule_coverage = {
  cov_label : string;
  sources_total : int;
  sources_hit : int list;  (** stages whose hit won at least once *)
  default_taken : bool;    (** the no-hit register read occurred *)
  dhaz_fired : bool;
}

type stage_coverage = {
  cov_stage : int;
  stalled : bool;
  bubbled : bool;          (** observed empty while a later stage was full *)
  rolled_back : bool;
}

type t = {
  rules : rule_coverage list;
  stages : stage_coverage list;
  cycles_observed : int;
}

val collector : Transform.t -> Pipesem.callbacks * (unit -> t)
(** Returns callbacks to pass to {!Pipesem.run} (compose with your own
    if needed) and a function to read the collected coverage. *)

val measure :
  ?ext:Pipesem.ext_model -> stop_after:int -> Transform.t -> t
(** Run the machine and collect. *)

val merge : t -> t -> t
(** Pointwise union (for accumulating over several programs).
    @raise Invalid_argument if the shapes differ. *)

val holes : t -> string list
(** Human-readable descriptions of everything not yet exercised.
    Empty means full coverage. *)

val full : t -> bool

val pp : Format.formatter -> t -> unit
