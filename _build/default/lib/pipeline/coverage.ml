type rule_coverage = {
  cov_label : string;
  sources_total : int;
  sources_hit : int list;
  default_taken : bool;
  dhaz_fired : bool;
}

type stage_coverage = {
  cov_stage : int;
  stalled : bool;
  bubbled : bool;
  rolled_back : bool;
}

type t = {
  rules : rule_coverage list;
  stages : stage_coverage list;
  cycles_observed : int;
}

type rule_acc = {
  mutable hit_stages : int list;
  mutable default_seen : bool;
  mutable dhaz_seen : bool;
}

let collector (tr : Transform.t) =
  let n = tr.Transform.base.Machine.Spec.n_stages in
  let rule_accs =
    List.map
      (fun (r : Transform.rule) ->
        (r, { hit_stages = []; default_seen = false; dhaz_seen = false }))
      tr.Transform.rules
  in
  let stalled = Array.make n false in
  let bubbled = Array.make n false in
  let rolled = Array.make n false in
  let cycles = ref 0 in
  let on_signals ~cycle:_ lookup =
    let bit name =
      match lookup name with
      | Some v -> Hw.Bitvec.to_bool v
      | None -> false
    in
    List.iter
      (fun ((r : Transform.rule), acc) ->
        if bit (Transform.full_signal r.Transform.consumer_stage) then begin
          let top =
            List.find_opt
              (fun (s : Transform.source) -> bit s.Transform.hit_signal)
              r.Transform.sources
          in
          (match top with
          | Some s ->
            if not (List.mem s.Transform.src_stage acc.hit_stages) then
              acc.hit_stages <- s.Transform.src_stage :: acc.hit_stages
          | None -> acc.default_seen <- true);
          if bit r.Transform.dhaz_signal then acc.dhaz_seen <- true
        end)
      rule_accs
  in
  let on_cycle (rec_ : Pipesem.cycle_record) =
    incr cycles;
    for k = 0 to n - 1 do
      if rec_.Pipesem.stall.(k) then stalled.(k) <- true;
      if rec_.Pipesem.rollback.(k) then rolled.(k) <- true;
      if
        (not rec_.Pipesem.full.(k))
        && k > 0
        && Array.exists (fun b -> b)
             (Array.sub rec_.Pipesem.full (k + 1) (n - k - 1))
      then bubbled.(k) <- true
    done
  in
  let callbacks =
    { Pipesem.no_callbacks with Pipesem.on_signals; on_cycle }
  in
  let read () =
    {
      rules =
        List.map
          (fun ((r : Transform.rule), acc) ->
            {
              cov_label = r.Transform.rule_label;
              sources_total = List.length r.Transform.sources;
              sources_hit = List.sort compare acc.hit_stages;
              default_taken = acc.default_seen;
              dhaz_fired = acc.dhaz_seen;
            })
          rule_accs;
      stages =
        List.init n (fun k ->
            {
              cov_stage = k;
              stalled = stalled.(k);
              bubbled = bubbled.(k);
              rolled_back = rolled.(k);
            });
      cycles_observed = !cycles;
    }
  in
  (callbacks, read)

let measure ?ext ~stop_after tr =
  let callbacks, read = collector tr in
  ignore (Pipesem.run ?ext ~callbacks ~stop_after tr);
  read ()

let merge a b =
  if
    List.length a.rules <> List.length b.rules
    || List.length a.stages <> List.length b.stages
  then invalid_arg "Coverage.merge: different shapes";
  {
    rules =
      List.map2
        (fun ra rb ->
          if ra.cov_label <> rb.cov_label then
            invalid_arg "Coverage.merge: different rules"
          else
            {
              ra with
              sources_hit =
                List.sort_uniq compare (ra.sources_hit @ rb.sources_hit);
              default_taken = ra.default_taken || rb.default_taken;
              dhaz_fired = ra.dhaz_fired || rb.dhaz_fired;
            })
        a.rules b.rules;
    stages =
      List.map2
        (fun sa sb ->
          {
            sa with
            stalled = sa.stalled || sb.stalled;
            bubbled = sa.bubbled || sb.bubbled;
            rolled_back = sa.rolled_back || sb.rolled_back;
          })
        a.stages b.stages;
    cycles_observed = a.cycles_observed + b.cycles_observed;
  }

let holes t =
  List.concat_map
    (fun r ->
      (if List.length r.sources_hit < r.sources_total then
         [
           Printf.sprintf
             "operand %s: only %d of %d forwarding sources exercised (%s)"
             r.cov_label
             (List.length r.sources_hit)
             r.sources_total
             (String.concat ","
                (List.map string_of_int r.sources_hit));
         ]
       else [])
      @ (if not r.default_taken then
           [ Printf.sprintf "operand %s: the no-hit register read never occurred" r.cov_label ]
         else [])
      @
      if not r.dhaz_fired then
        [ Printf.sprintf "operand %s: the data-hazard interlock never fired" r.cov_label ]
      else [])
    t.rules

let full t = holes t = []

let pp ppf t =
  Format.fprintf ppf "coverage over %d cycles:@." t.cycles_observed;
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  operand %-10s sources %d/%d (%s)  default %b  dhaz %b@."
        r.cov_label
        (List.length r.sources_hit)
        r.sources_total
        (String.concat "," (List.map string_of_int r.sources_hit))
        r.default_taken r.dhaz_fired)
    t.rules;
  List.iter
    (fun s ->
      Format.fprintf ppf
        "  stage %d: stalled %b  bubbled %b  rolled back %b@." s.cov_stage
        s.stalled s.bubbled s.rolled_back)
    t.stages
