type point = {
  sources : int;
  data_width : int;
  chain : Hw.Cost.t;
  tree : Hw.Cost.t;
  bus : Hw.Cost.t;
}

let build_network ~impl ~sources ~data_width =
  let cases =
    List.init sources (fun j ->
        ( Hw.Expr.input (Printf.sprintf "hit_%d" j) 1,
          Hw.Expr.input (Printf.sprintf "cand_%d" j) data_width ))
  in
  let default = Hw.Expr.input "reg_value" data_width in
  Hw.Circuits.priority_select ~impl cases ~default

(* The bus: the find-first-one enables (priced on the real network),
   plus one tri-state driver per source bit (~1 gate equivalent each,
   including the default's driver) and one settling level. *)
let bus_cost ~sources ~data_width =
  (* The enables are produced in parallel: gates add, depth is the
     deepest output. *)
  let enables =
    List.fold_left
      (fun acc e -> Hw.Cost.add acc (Hw.Cost.of_expr e))
      Hw.Cost.zero
      (Hw.Circuits.find_first_one
         (List.init sources (fun j ->
              Hw.Expr.input (Printf.sprintf "hit_%d" j) 1)))
  in
  Hw.Cost.seq enables
    { Hw.Cost.gates = (sources + 1) * data_width; depth = 1 }

let measure ~sources ~data_width =
  let cost impl =
    Hw.Cost.of_expr (build_network ~impl ~sources ~data_width)
  in
  {
    sources;
    data_width;
    chain = cost Hw.Circuits.Chain;
    tree = cost Hw.Circuits.Tree;
    bus = bus_cost ~sources ~data_width;
  }

let sweep ~depths ~data_width =
  List.map (fun sources -> measure ~sources ~data_width) depths

let pp_sweep ppf points =
  Format.fprintf ppf "%8s  %11s %11s  %11s %10s  %10s %9s@." "sources"
    "chain gates" "chain depth" "tree gates" "tree depth" "bus gates"
    "bus depth";
  List.iter
    (fun p ->
      Format.fprintf ppf "%8d  %11d %11d  %11d %10d  %10d %9d@." p.sources
        p.chain.Hw.Cost.gates p.chain.Hw.Cost.depth p.tree.Hw.Cost.gates
        p.tree.Hw.Cost.depth p.bus.Hw.Cost.gates p.bus.Hw.Cost.depth)
    points
