type table = int array array

let of_trace ~n_stages records =
  let cycles = List.length records in
  let table = Array.make_matrix (cycles + 1) n_stages 0 in
  List.iteri
    (fun t (r : Pipesem.cycle_record) ->
      for k = 0 to n_stages - 1 do
        table.(t + 1).(k) <-
          (if not r.ue.(k) then table.(t).(k)
           else if k = 0 then table.(t).(0) + 1
           else table.(t).(k - 1))
      done)
    records;
  table

let has_rollback records =
  List.exists
    (fun (r : Pipesem.cycle_record) -> Array.exists (fun b -> b) r.rollback)
    records

let check_lemma1 ~n_stages records =
  if has_rollback records then
    Error
      [ "trace contains rollbacks; the scheduling-function lemmas apply to \
         rollback-free execution (paper §6.1)" ]
  else begin
    let table = of_trace ~n_stages records in
    let errors = ref [] in
    let fail fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
    List.iteri
      (fun t (r : Pipesem.cycle_record) ->
        for k = 0 to n_stages - 1 do
          (* Property 1: the table was built by the inductive
             definition (I(k,T) = I(k-1,T-1) on ue for k>0); the lemma
             claims that equals I(k,T-1)+1, and no change otherwise. *)
          let expected =
            if r.ue.(k) then table.(t).(k) + 1 else table.(t).(k)
          in
          if table.(t + 1).(k) <> expected then
            fail "cycle %d stage %d: property 1 violated (I went %d -> %d, ue=%b)"
              t k table.(t).(k) table.(t + 1).(k) r.ue.(k)
        done;
        (* Properties 2 and 3 are about the state *during* cycle t. *)
        for k = 1 to n_stages - 1 do
          let d = table.(t).(k - 1) - table.(t).(k) in
          if d <> 0 && d <> 1 then
            fail "cycle %d: I(%d)=%d and I(%d)=%d differ by %d" t (k - 1)
              table.(t).(k - 1)
              k
              table.(t).(k)
              d;
          let empty = not r.full.(k) in
          if empty <> (d = 0) then
            fail "cycle %d stage %d: full=%b but I-difference is %d" t k
              r.full.(k) d
        done;
        (* Tag cross-validation. *)
        for k = 0 to n_stages - 1 do
          match r.tags.(k) with
          | Some tag when r.full.(k) ->
            if tag <> table.(t).(k) then
              fail "cycle %d stage %d: tag %d but I(k,T)=%d" t k tag
                table.(t).(k)
          | Some _ | None -> ()
        done)
      records;
    match !errors with [] -> Ok () | es -> Error (List.rev es)
  end
