type operand_sel =
  | Reg of string
  | File_port of string * int

type hint = {
  h_stage : int;
  h_operand : operand_sel;
  h_label : string option;
  h_chain : string option;
  h_we_override : (int * Hw.Expr.t) list;
  h_wa_override : (int * Hw.Expr.t) list;
  h_needed : Hw.Expr.t option;
}

let hint ?label ?chain ?(we_override = []) ?(wa_override = []) ?needed ~stage
    operand =
  {
    h_stage = stage;
    h_operand = operand;
    h_label = label;
    h_chain = chain;
    h_we_override = we_override;
    h_wa_override = wa_override;
    h_needed = needed;
  }

type speculation = {
  spec_label : string;
  resolve_stage : int;
  mispredict : Hw.Expr.t;
  rollback_writes : Machine.Spec.write list;
  retires : bool;
}

type mode =
  | Full
  | Interlock_only

type options = {
  mode : mode;
  impl : Hw.Circuits.priority_impl;
}

let default_options = { mode = Full; impl = Hw.Circuits.Chain }
