type source_summary = {
  sum_stage : int;
  sum_kind : string;
  sum_eq_tester : bool;
  sum_conservative : bool;
}

type rule_summary = {
  sum_label : string;
  sum_consumer : int;
  sum_operand : string;
  sum_writer : int;
  sum_sources : source_summary list;
  sum_eq_testers : int;
  sum_hit_signals : int;
  sum_mux_count : int;
  sum_cost : Hw.Cost.t;
}

let count_muxes e =
  Hw.Expr.fold
    (fun n node -> match node with Hw.Expr.Mux _ -> n + 1 | _ -> n)
    0 e

let signal_def (t : Transform.t) name = List.assoc name t.Transform.signals

let signal_cost t name = Hw.Cost.of_expr (signal_def t name)

let inventory (t : Transform.t) =
  List.map
    (fun (r : Transform.rule) ->
      let sources =
        List.map
          (fun (s : Transform.source) ->
            {
              sum_stage = s.Transform.src_stage;
              sum_kind =
                (match s.Transform.src_kind with
                | Transform.From_writer -> "f_w (writer)"
                | Transform.From_chain c -> "via " ^ c
                | Transform.No_source -> "(stall only)");
              sum_eq_tester = s.Transform.has_addr_compare;
              sum_conservative = s.Transform.conservative;
            })
          r.Transform.sources
      in
      let g_cost, muxes =
        match r.Transform.g_signal with
        | None -> (Hw.Cost.zero, 0)
        | Some g ->
          let e = signal_def t g in
          (Hw.Cost.of_expr e, count_muxes e)
      in
      {
        sum_label = r.Transform.rule_label;
        sum_consumer = r.Transform.consumer_stage;
        sum_operand =
          (match r.Transform.operand_port with
          | None -> r.Transform.operand_reg
          | Some p -> Printf.sprintf "%s (port %d)" r.Transform.operand_reg p);
        sum_writer = r.Transform.writer_stage;
        sum_sources = sources;
        sum_eq_testers =
          List.length (List.filter (fun s -> s.sum_eq_tester) sources);
        sum_hit_signals = List.length sources;
        sum_mux_count = muxes;
        sum_cost = g_cost;
      })
    t.Transform.rules

let pp_inventory ppf (t : Transform.t) =
  let inv = inventory t in
  Format.fprintf ppf "generated forwarding/interlock hardware for %s:@."
    t.Transform.base.Machine.Spec.machine_name;
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  operand %s: read in stage %d, written by stage %d@." r.sum_operand
        r.sum_consumer r.sum_writer;
      List.iter
        (fun s ->
          Format.fprintf ppf "    stage %d: hit%s -> %s%s@." s.sum_stage
            (if s.sum_eq_tester then " (=? tester)" else "")
            s.sum_kind
            (if s.sum_conservative then " [conservative]" else ""))
        r.sum_sources;
      Format.fprintf ppf
        "    totals: %d hit signals, %d equality testers, %d muxes, %a@."
        r.sum_hit_signals r.sum_eq_testers r.sum_mux_count Hw.Cost.pp
        r.sum_cost)
    inv

let verilog (t : Transform.t) =
  let m = t.Transform.machine in
  let n = m.Machine.Spec.n_stages in
  (* Free inputs: designer registers referenced by the signal
     definitions, plus ext per stage. *)
  let referenced = Hashtbl.create 64 in
  List.iter
    (fun (_, e) ->
      List.iter
        (fun (name, w) ->
          if String.length name > 0 && name.[0] <> '$' then
            Hashtbl.replace referenced name w)
        (Hw.Expr.inputs e))
    t.Transform.signals;
  let ports =
    Hashtbl.fold
      (fun name w acc ->
        { Hw.Verilog.port_name = name; port_width = w; dir = Hw.Verilog.In }
        :: acc)
      referenced []
    |> List.sort compare
  in
  let ext_ports =
    List.init n (fun k ->
        {
          Hw.Verilog.port_name = Transform.ext_signal k;
          port_width = 1;
          dir = Hw.Verilog.In;
        })
  in
  let qv_regs =
    List.filter_map
      (fun (r : Machine.Spec.register) ->
        if
          String.length r.Machine.Spec.reg_name > 0
          && r.Machine.Spec.reg_name.[0] = '$'
        then
          let wr = Machine.Spec.write_to m r.Machine.Spec.reg_name in
          Some
            (Hw.Verilog.Reg_decl
               ( r.Machine.Spec.reg_name,
                 r.Machine.Spec.width,
                 Option.map (fun (_, w) -> w.Machine.Spec.value) wr ))
        else None)
      m.Machine.Spec.registers
  in
  let full_regs =
    List.init (n - 1) (fun i ->
        let s = i + 1 in
        Hw.Verilog.Reg_decl
          ( Transform.full_signal s,
            1,
            Some (Hw.Expr.input (Printf.sprintf "$fullb_next_%d" s) 1) ))
  in
  let sig_wires =
    List.map
      (fun (name, e) -> Hw.Verilog.Wire (name, Hw.Expr.width e, e))
      t.Transform.signals
  in
  let mispredict k =
    List.fold_left
      (fun acc (sp : Fwd_spec.speculation) ->
        if sp.Fwd_spec.resolve_stage = k then
          Hw.Expr.( ||: ) acc sp.Fwd_spec.mispredict
        else acc)
      Hw.Expr.fls t.Transform.speculations
  in
  let engine =
    Stall_engine.exprs ~n_stages:n
      ~dhaz:(fun k -> Hw.Expr.input t.Transform.stage_dhaz.(k) 1)
      ~mispredict
    |> List.map (fun (name, e) -> Hw.Verilog.Wire (name, Hw.Expr.width e, e))
  in
  {
    Hw.Verilog.module_name =
      t.Transform.base.Machine.Spec.machine_name ^ "_pipeline_control";
    ports = ports @ ext_ports;
    items =
      (Hw.Verilog.Comment "synthesized forwarding / interlock signals"
       :: sig_wires)
      @ (Hw.Verilog.Comment "valid-bit pipeline (Qv registers)" :: qv_regs)
      @ (Hw.Verilog.Comment "stall engine (paper section 3)" :: engine)
      @ (Hw.Verilog.Comment "full bits" :: full_regs);
  }
