(** Textbook pipeline diagrams.

    Renders a recorded execution as the classical instruction/cycle
    grid: one row per instruction, one column per cycle, each cell the
    stage the instruction occupied — stalls show as repeated stage
    names, squashes as [x].

    {v
    instr  0    1    2    3    4    5    6
    I0     IF   ID   EX   ME   WB
    I1          IF   ID   ID   EX   ME   WB
    I2               IF   IF   ID   EX   ...
    v} *)

val of_trace :
  Transform.t -> Pipesem.cycle_record list -> Hw.Wave.t
(** Columns are instruction labels [I<n>]; the wave's "cycles" are the
    recorded cycles.  (Use {!render} for the transposed, textbook
    orientation.) *)

val render :
  ?max_instructions:int ->
  Transform.t ->
  Pipesem.cycle_record list ->
  string
(** The instruction-major grid shown above.  Stage names come from the
    machine description (first two characters). *)

val capture :
  ?ext:Pipesem.ext_model ->
  stop_after:int ->
  Transform.t ->
  string * Pipesem.result
(** Run and render in one step. *)
