(** Reporting of the generated hardware.

    [inventory] reproduces the structural content of the paper's
    figure 2: for every synthesized forwarding network, the equality
    testers, hit signals, forwarding registers, valid bits and the
    multiplexer chain, plus gate/depth costs from {!Hw.Cost}.
    [verilog] emits the full generated logic — forwarding networks,
    interlock, valid-bit pipeline and stall engine — as one HDL
    module. *)

type source_summary = {
  sum_stage : int;
  sum_kind : string;   (** ["f_w (writer)"], ["via C.3"], ["(stall only)"] *)
  sum_eq_tester : bool;
  sum_conservative : bool;
}

type rule_summary = {
  sum_label : string;
  sum_consumer : int;
  sum_operand : string;
  sum_writer : int;
  sum_sources : source_summary list;
  sum_eq_testers : int;
  sum_hit_signals : int;
  sum_mux_count : int;   (** data multiplexers in the g network *)
  sum_cost : Hw.Cost.t;  (** of the g network (zero in interlock mode) *)
}

val inventory : Transform.t -> rule_summary list

val pp_inventory : Format.formatter -> Transform.t -> unit
(** Figure-2-style textual rendering. *)

val count_muxes : Hw.Expr.t -> int
(** Number of [Mux] nodes in an expression. *)

val verilog : Transform.t -> Hw.Verilog.modul
(** The generated forwarding + interlock + stall-engine logic as a
    module.  Register state (pipeline registers, [Qv] bits, full bits)
    appears as clocked [reg]s; designer registers read by the logic
    appear as input ports. *)

val signal_cost : Transform.t -> string -> Hw.Cost.t
(** Cost of one named synthesized signal ({!Hw.Cost.of_expr} of its
    definition). @raise Not_found for unknown signals. *)
