(** The scheduling function [I(k,T)] (paper §6.1) and Lemma 1.

    [I(k,T) = i] states that instruction [I_i] is in stage [k] during
    cycle [T].  The paper makes the function total by anticipating the
    next instruction while a stage is empty, and defines it inductively
    from the update-enable trace:

    {[ I(k,0) = 0
       I(k,T) = I(k,T-1)       if ¬ue_k^{T-1}
       I(0,T) = I(0,T-1) + 1   if  ue_0^{T-1}
       I(k,T) = I(k-1,T-1)     if  ue_k^{T-1}, k ≠ 0 ]}

    Lemma 1 properties (valid in the absence of rollback):

    + [I(k,·)] increases by exactly one on [ue_k], else is unchanged;
    + adjoining stages satisfy [I(k-1,T) - I(k,T) ∈ {0, 1}];
    + [full_k^T = 0  ⟺  I(k-1,T) = I(k,T)].

    The checker also cross-validates [I(k,T)] against the simulator's
    ground-truth instruction tags: whenever stage [k] is full in cycle
    [T], the tag equals [I(k,T)]. *)

type table = int array array
(** [table.(t).(k)] is [I(k, t)]; row 0 is all zeros. *)

val of_trace : n_stages:int -> Pipesem.cycle_record list -> table
(** Build [I] from the recorded [ue] signals (records must be in cycle
    order, starting at cycle 0).  The table has one more row than there
    are records. *)

val check_lemma1 :
  n_stages:int -> Pipesem.cycle_record list -> (unit, string list) result
(** Check all three Lemma 1 properties plus the tag cross-validation on
    a rollback-free trace.  Traces containing rollbacks are rejected
    with an explanatory message (the paper's proofs "omit rollback"). *)

val has_rollback : Pipesem.cycle_record list -> bool
