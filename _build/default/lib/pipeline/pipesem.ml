module State = Machine.State

type ext_model = stage:int -> cycle:int -> bool

type retire_kind =
  | Normal
  | Via_rollback of string

type cycle_record = {
  cycle : int;
  full : bool array;
  stall : bool array;
  dhaz : bool array;
  ext : bool array;
  rollback : bool array;
  ue : bool array;
  tags : int option array;
}

type callbacks = {
  on_signals : cycle:int -> (string -> Hw.Bitvec.t option) -> unit;
  on_cycle : cycle_record -> unit;
  on_edge : cycle_record -> Machine.State.t -> unit;
  on_retire : tag:int -> kind:retire_kind -> Machine.State.t -> unit;
}

let no_callbacks =
  {
    on_signals = (fun ~cycle:_ _ -> ());
    on_cycle = (fun _ -> ());
    on_edge = (fun _ _ -> ());
    on_retire = (fun ~tag:_ ~kind:_ _ -> ());
  }

type outcome =
  | Completed
  | Deadlocked
  | Out_of_cycles

type stats = {
  cycles : int;
  retired : int;
  fetch_stall_cycles : int;
  dhaz_cycles : int;
  ext_cycles : int;
  rollbacks : int;
  squashed : int;
}

type result = {
  outcome : outcome;
  stats : stats;
  state : Machine.State.t;
}

let bool_bv b = Hw.Bitvec.of_bool b

let run ?(ext = fun ~stage:_ ~cycle:_ -> false) ?(callbacks = no_callbacks)
    ?max_cycles ~stop_after (t : Transform.t) =
  Obs.Span.with_span "pipesem.run" @@ fun () ->
  let m = t.Transform.machine in
  let n = m.Machine.Spec.n_stages in
  let max_cycles =
    match max_cycles with
    | Some c -> c
    | None -> (stop_after * 4 * n) + 10_000
  in
  let deadlock_window = (4 * n) + 64 in
  let state = State.create m in
  let fullb = Array.make n false in
  let tags = Array.make n None in
  tags.(0) <- Some 0;
  let retired = ref 0 in
  let cycle = ref 0 in
  let idle = ref 0 in
  let outcome = ref Out_of_cycles in
  let fetch_stall_cycles = ref 0 in
  let dhaz_cycles = ref 0 in
  let ext_cycles = ref 0 in
  let rollbacks = ref 0 in
  let squashed = ref 0 in
  let base_env = State.eval_env state in
  (while !retired < stop_after && !cycle < max_cycles && !outcome <> Deadlocked
   do
     let overlay : (string, Hw.Bitvec.t) Hashtbl.t = Hashtbl.create 64 in
     let env =
       {
         Hw.Eval.lookup_input =
           (fun name ->
             match Hashtbl.find_opt overlay name with
             | Some v -> v
             | None -> base_env.Hw.Eval.lookup_input name);
         lookup_file = base_env.Hw.Eval.lookup_file;
       }
     in
     (* Bind the free inputs: full and ext per stage. *)
     let ext_now = Array.init n (fun k -> ext ~stage:k ~cycle:!cycle) in
     for k = 0 to n - 1 do
       Hashtbl.replace overlay (Transform.full_signal k)
         (bool_bv (k = 0 || fullb.(k)));
       Hashtbl.replace overlay (Transform.ext_signal k) (bool_bv ext_now.(k))
     done;
     (* Evaluate the synthesized signals in definition order. *)
     List.iter
       (fun (name, e) -> Hashtbl.replace overlay name (Hw.Eval.eval env e))
       t.Transform.signals;
     callbacks.on_signals ~cycle:!cycle (fun name ->
         match Hashtbl.find_opt overlay name with
         | Some v -> Some v
         | None -> (
           match Machine.State.get state name with
           | Machine.Value.Scalar v -> Some v
           | Machine.Value.File _ -> None
           | exception Invalid_argument _ -> None));
     let dhaz =
       Array.init n (fun k ->
           Hw.Bitvec.to_bool (Hashtbl.find overlay t.Transform.stage_dhaz.(k)))
     in
     (* Stall engine. *)
     let mispredict ~stage ~stalled =
       (not stalled)
       && List.exists
            (fun (sp : Fwd_spec.speculation) ->
              sp.Fwd_spec.resolve_stage = stage
              && Hw.Eval.eval_bool env sp.Fwd_spec.mispredict)
            t.Transform.speculations
     in
     let s = Stall_engine.compute ~fullb ~dhaz ~ext:ext_now ~mispredict in
     let record =
       {
         cycle = !cycle;
         full = Array.copy s.Stall_engine.full;
         stall = Array.copy s.Stall_engine.stall;
         dhaz = Array.copy dhaz;
         ext = Array.copy ext_now;
         rollback = Array.copy s.Stall_engine.rollback;
         ue = Array.copy s.Stall_engine.ue;
         tags = Array.copy tags;
       }
     in
     callbacks.on_cycle record;
     (* Which speculation fires?  Only the deepest rollback commits its
        corrective writes; everything at or above it is squashed. *)
     let deepest_rollback =
       let rec find k = if k < 0 then None else if s.rollback.(k) then Some k else find (k - 1) in
       find (n - 1)
     in
     let firing_spec =
       match deepest_rollback with
       | None -> None
       | Some k ->
         List.find_opt
           (fun (sp : Fwd_spec.speculation) ->
             sp.Fwd_spec.resolve_stage = k
             && Hw.Eval.eval_bool env sp.Fwd_spec.mispredict)
           t.Transform.speculations
     in
     (* Collect all register updates against the pre-edge state. *)
     let updates = ref [] in
     for k = 0 to n - 1 do
       if s.ue.(k) then
         updates :=
           Machine.Commit.stage_updates m ~stage:k ~env state :: !updates
     done;
     (match firing_spec with
     | None -> ()
     | Some sp ->
       updates :=
         Machine.Commit.writes_updates m ~writes:sp.Fwd_spec.rollback_writes
           ~env state
         :: !updates);
     (* Clock edge: registers, tags, full bits. *)
     List.iter (Machine.Commit.apply state) (List.rev !updates);
     callbacks.on_edge record state;
     let retirements = ref [] in
     if s.ue.(n - 1) then (
       match tags.(n - 1) with
       | Some tag -> retirements := (tag, Normal) :: !retirements
       | None -> assert false);
     (match (deepest_rollback, firing_spec) with
     | Some k, Some sp when sp.Fwd_spec.retires -> (
       match tags.(k) with
       | Some tag -> retirements := (tag, Via_rollback sp.Fwd_spec.spec_label) :: !retirements
       | None -> assert false)
     | Some _, Some _ | Some _, None | None, _ -> ());
     (* Count evicted (non-retiring) instructions. *)
     (match deepest_rollback with
     | None -> ()
     | Some k ->
       incr rollbacks;
       for j = 0 to k do
         match tags.(j) with
         | Some tag
           when not (List.exists (fun (t', _) -> t' = tag) !retirements) ->
           if s.full.(j) then incr squashed
         | Some _ | None -> ()
       done);
     (* Tag shift. *)
     let old_tags = Array.copy tags in
     for st = n - 1 downto 1 do
       tags.(st) <-
         (if s.rollback_up.(st) then None
          else if s.ue.(st - 1) then old_tags.(st - 1)
          else if s.stall.(st) && s.full.(st) then old_tags.(st)
          else None)
     done;
     (match (deepest_rollback, firing_spec) with
     | Some k, Some sp ->
       let base = match old_tags.(k) with Some tag -> tag | None -> 0 in
       tags.(0) <- Some (base + if sp.Fwd_spec.retires then 1 else 0)
     | Some k, None ->
       (* A rollback with no matching speculation cannot happen: the
          mispredict test selected one.  Keep the fetch tag. *)
       ignore k
     | None, _ ->
       if s.ue.(0) then
         tags.(0) <-
           Some ((match old_tags.(0) with Some tag -> tag | None -> 0) + 1));
     let fullb' = Stall_engine.next_fullb s in
     Array.blit fullb' 0 fullb 0 n;
     (* Statistics and liveness. *)
     if s.stall.(0) then incr fetch_stall_cycles;
     if Array.exists (fun b -> b) dhaz then incr dhaz_cycles;
     if Array.exists (fun b -> b) ext_now then incr ext_cycles;
     List.iter
       (fun (tag, kind) ->
         incr retired;
         callbacks.on_retire ~tag ~kind state)
       (List.sort compare !retirements);
     if Array.exists (fun b -> b) s.ue || !retirements <> [] then idle := 0
     else begin
       incr idle;
       if !idle > deadlock_window then outcome := Deadlocked
     end;
     incr cycle
   done);
  if !retired >= stop_after then outcome := Completed;
  {
    outcome = !outcome;
    stats =
      {
        cycles = !cycle;
        retired = !retired;
        fetch_stall_cycles = !fetch_stall_cycles;
        dhaz_cycles = !dhaz_cycles;
        ext_cycles = !ext_cycles;
        rollbacks = !rollbacks;
        squashed = !squashed;
      };
    state;
  }

let cpi s = if s.retired = 0 then infinity else float_of_int s.cycles /. float_of_int s.retired
