(** Symbolic co-simulation.

    The trace checkers validate one initial state at a time.  This
    module runs both machines {e symbolically}: chosen registers (and
    register files) start with universally quantified contents, every
    data path is evaluated over BDD vectors, and the visible states are
    compared canonically after each instruction — establishing data
    consistency {e for all data values at once}, the symbolic-
    simulation style of the paper's related work ([24] Velev & Bryant).

    Scope: the {e stall-engine} inputs — the data-hazard signals and
    the misspeculation comparisons — must evaluate to constants each
    cycle; everything else, including program counters, branch
    conditions and hence the fetched instruction stream, may be fully
    symbolic (the case split flows through the BDD vectors and both
    paths are proved at once).  When a {e stall} decision itself
    becomes data-dependent — e.g. whether a load-use interlock fires
    depends on a symbolic branch — the checker forks the execution
    Burch-Dill style: each side proceeds under the corresponding path
    constraint and all paths must prove.  [max_paths] (default 64)
    bounds the case explosion; exhausting it yields
    [Control_depends_on_data] — fall back to the trace checkers.

    State spaces: a symbolic register file with [2^a] entries of [w]
    bits costs [2^a * w] BDD variables; keep [a] and [w] small (the
    3-stage toy: 16 x 16 bits = 256 variables, well within reach). *)

type outcome =
  | Proved of { instructions : int; variables : int; bdd_nodes : int }
  | Mismatch of {
      instruction : int;   (** first instruction whose visible state differs *)
      register : string;
      assignment : (string * int) list;
          (** per symbolic scalar register: a concrete initial value
              exhibiting the difference (symbolic files are reported as
              ["file[index]"] entries) *)
    }
  | Control_depends_on_data of { cycle : int; what : string }

val check :
  ?symbolic:string list ->
  ?max_paths:int ->
  instructions:int ->
  Pipeline.Transform.t ->
  outcome
(** [symbolic] names the registers whose initial contents are
    universally quantified (default: every programmer-visible register
    file small enough to encode — at most 2048 bits of state; a DLX
    data memory stays concrete unless requested).  Both machines start from the same symbolic state; all other
    registers take their declared initial values.  The comparison is
    the per-retirement criterion of {!Consistency}, done on canonical
    BDD vectors. *)

val pp_outcome : Format.formatter -> outcome -> unit
