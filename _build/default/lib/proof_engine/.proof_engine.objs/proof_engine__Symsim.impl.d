lib/proof_engine/symsim.ml: Array Equiv Format Hashtbl Hw List Machine Obs Option Pipeline Printf String
