lib/proof_engine/symsim.ml: Array Equiv Format Hashtbl Hw List Machine Option Pipeline Printf String
