lib/proof_engine/liveness.mli: Format Pipeline
