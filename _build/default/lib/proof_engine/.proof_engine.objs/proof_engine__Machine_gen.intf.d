lib/proof_engine/machine_gen.mli: Format Machine Pipeline
