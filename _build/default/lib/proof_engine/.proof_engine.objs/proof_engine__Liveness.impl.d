lib/proof_engine/liveness.ml: Format Machine Obs Pipeline
