lib/proof_engine/equiv.ml: Array Format Hashtbl Hw Lazy List Obs Option Printf String
