lib/proof_engine/equiv.ml: Array Format Hashtbl Hw Lazy List Option Printf String
