lib/proof_engine/obligation.mli: Format Machine Pipeline
