lib/proof_engine/trace_invariants.mli: Pipeline
