lib/proof_engine/pvs_gen.ml: Buffer Format Hw List Machine Obligation Pipeline String
