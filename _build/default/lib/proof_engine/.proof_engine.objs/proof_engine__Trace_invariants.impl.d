lib/proof_engine/trace_invariants.ml: Array Format List Pipeline Printf String
