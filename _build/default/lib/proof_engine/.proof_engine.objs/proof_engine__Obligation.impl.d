lib/proof_engine/obligation.ml: Consistency Equiv Format Hw List Liveness Machine Obs Option Pipeline Printf String Symsim Trace_invariants
