lib/proof_engine/obligation.ml: Consistency Equiv Format Hw List Liveness Machine Option Pipeline Printf String Symsim Trace_invariants
