lib/proof_engine/consistency.mli: Format Machine Pipeline
