lib/proof_engine/bmc.mli: Format Pipeline
