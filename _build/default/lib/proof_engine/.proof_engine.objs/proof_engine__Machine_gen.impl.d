lib/proof_engine/machine_gen.ml: Array Consistency Format Hw List Machine Pipeline Printexc Printf
