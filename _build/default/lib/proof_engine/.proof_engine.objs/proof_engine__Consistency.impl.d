lib/proof_engine/consistency.ml: Array Format List Machine Obs Pipeline Printf
