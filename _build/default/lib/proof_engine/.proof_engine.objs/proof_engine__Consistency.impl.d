lib/proof_engine/consistency.ml: Array Format List Machine Pipeline Printf
