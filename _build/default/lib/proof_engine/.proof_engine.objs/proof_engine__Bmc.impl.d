lib/proof_engine/bmc.ml: Consistency Format List Pipeline Printexc Printf String
