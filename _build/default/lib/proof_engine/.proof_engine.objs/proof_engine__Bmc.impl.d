lib/proof_engine/bmc.ml: Consistency Format List Obs Pipeline Printexc Printf String
