lib/proof_engine/pvs_gen.mli: Obligation Pipeline
