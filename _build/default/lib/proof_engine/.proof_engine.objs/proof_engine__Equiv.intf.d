lib/proof_engine/equiv.mli: Format Hw
