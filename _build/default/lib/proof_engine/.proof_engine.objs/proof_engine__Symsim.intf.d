lib/proof_engine/symsim.mli: Format Pipeline
