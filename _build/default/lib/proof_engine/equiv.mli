(** Symbolic equivalence of combinational expressions.

    Bit-blasts expressions into {!Hw.Bdd} vectors and compares them
    canonically: equality holds for {e all} input valuations, not just
    sampled ones — the BDD-based checking of the related work the paper
    cites ([4] Bryant; [17] McMillan).  Used to prove the selection
    networks interchangeable (chain ≡ tree ≡ bus for every hit
    pattern), the simplifier sound on concrete expressions, and the
    HDL-exported stall engine equal to the executable one.

    Register-file reads are treated as uninterpreted: two reads of the
    same file whose address vectors are (symbolically) identical map to
    the same fresh variable vector; reads with differing addresses get
    independent vectors.  This is sound for equivalence (it
    under-approximates equality of reads, never over-approximates), and
    exact when both sides read files at syntactically corresponding
    addresses.

    Multiplication blasts via shift-and-add; keep operand widths modest
    (≤ 16 bits) or BDD sizes explode. *)

type counterexample = {
  cex_inputs : (string * int) list;  (** one value per named input *)
  cex_left : Hw.Bitvec.t;
  cex_right : Hw.Bitvec.t;
}

type result =
  | Equivalent of { variables : int; bdd_nodes : int }
  | Different of counterexample
  | Width_mismatch of int * int

val check : Hw.Expr.t -> Hw.Expr.t -> result
(** Both expressions see the same variable for the same input name (at
    the same width; differing widths for one name are an error). *)

val check_exn : Hw.Expr.t -> Hw.Expr.t -> unit
(** @raise Failure with a description on any non-[Equivalent] result. *)

val tautology : Hw.Expr.t -> bool
(** A 1-bit expression that is true under every valuation. *)

val pp_result : Format.formatter -> result -> unit

(** Low-level access to the bit-blaster with custom leaf resolution
    (used by the symbolic co-simulator, which resolves inputs from a
    symbolic machine state instead of allocating free variables). *)
module Blast : sig
  type ctx

  val create :
    Hw.Bdd.man ->
    resolve_input:(string -> int -> Hw.Bdd.t array) ->
    resolve_file:(string -> Hw.Bdd.t array -> int -> Hw.Bdd.t array) ->
    ctx
  (** [resolve_file file addr_bits data_width] returns the read value
      (LSB first). *)

  val expr : ctx -> Hw.Expr.t -> Hw.Bdd.t array
end
