(** PVS-style proof script emission.

    The paper's tool generates, besides the hardware, "the proofs
    necessary in order to verify the forwarding and interlock
    hardware".  This module renders the generated obligations as a
    PVS-flavoured theory: the scheduling function, Lemma 1, the
    per-operand Lemma 2/3 instances with the machine's concrete
    register and stage names, the data-consistency theorem and the
    liveness theorem, each annotated with how this repository
    discharges it (see DESIGN.md for the theorem-prover substitution).
    The output is a faithful template of the paper's §6 proof
    structure, suitable as the starting point for a real PVS run. *)

val theory : Pipeline.Transform.t -> Obligation.obligation list -> string
(** Render the machine's proof theory. *)

val write_file : path:string -> Pipeline.Transform.t -> Obligation.obligation list -> unit
