module Pipesem = Pipeline.Pipesem

let rollback_up (r : Pipesem.cycle_record) k =
  let n = Array.length r.Pipesem.rollback in
  let rec go i = i < n && (r.Pipesem.rollback.(i) || go (i + 1)) in
  go k

let check ~n_stages records =
  let errors = ref [] in
  let fail fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let arr = Array.of_list records in
  Array.iteri
    (fun t (r : Pipesem.cycle_record) ->
      if not r.Pipesem.full.(0) then fail "cycle %d: full_0 is low" t;
      for k = 0 to n_stages - 1 do
        if r.Pipesem.ue.(k) && not r.Pipesem.full.(k) then
          fail "cycle %d: ue_%d in an empty stage" t k;
        if r.Pipesem.ue.(k) && r.Pipesem.stall.(k) then
          fail "cycle %d: ue_%d in a stalled stage" t k;
        if r.Pipesem.rollback.(k) && not r.Pipesem.full.(k) then
          fail "cycle %d: rollback_%d in an empty stage" t k;
        if r.Pipesem.rollback.(k) && r.Pipesem.stall.(k) then
          fail "cycle %d: rollback_%d in a stalled stage" t k;
        if
          k < n_stages - 1
          && r.Pipesem.stall.(k + 1)
          && r.Pipesem.full.(k)
          && not r.Pipesem.stall.(k)
        then fail "cycle %d: stall_%d does not propagate to stage %d" t (k + 1) k
      done;
      if t + 1 < Array.length arr then begin
        let nxt = arr.(t + 1) in
        for s = 1 to n_stages - 1 do
          let expected =
            (r.Pipesem.ue.(s - 1) || r.Pipesem.stall.(s))
            && not (rollback_up r s)
          in
          if nxt.Pipesem.full.(s) <> expected then
            fail "cycle %d: full_%d^%d is %b, the engine equation gives %b" t s
              (t + 1)
              nxt.Pipesem.full.(s)
              expected;
          (* Tag discipline. *)
          if r.Pipesem.stall.(s) && r.Pipesem.full.(s) && not (rollback_up r s)
          then begin
            match (r.Pipesem.tags.(s), nxt.Pipesem.tags.(s)) with
            | Some a, Some b when a <> b ->
              fail "cycle %d: stalled stage %d changed instruction %d -> %d" t
                s a b
            | Some _, None ->
              fail "cycle %d: stalled stage %d lost its instruction" t s
            | Some _, Some _ | None, _ -> ()
          end;
          if r.Pipesem.ue.(s - 1) && not (rollback_up r s) then
            match (r.Pipesem.tags.(s - 1), nxt.Pipesem.tags.(s)) with
            | Some a, Some b when a <> b ->
              fail "cycle %d: instruction %d left stage %d but %d arrived in %d"
                t a (s - 1) b s
            | Some _, None ->
              fail "cycle %d: instruction from stage %d vanished" t (s - 1)
            | None, _ | Some _, Some _ -> ()
        done
      end)
    arr;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let check_exn ~n_stages records =
  match check ~n_stages records with
  | Ok () -> ()
  | Error es ->
    failwith
      (Printf.sprintf "stall-engine invariants violated:\n%s"
         (String.concat "\n" es))
