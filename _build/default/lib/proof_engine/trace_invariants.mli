(** Stall-engine invariants (paper §3), re-checked on recorded traces.

    Independently of the simulator's own computation, these re-derive
    the paper's equations from the recorded per-cycle signals:

    - [ue_k ⟹ full_k ∧ ¬stall_k];
    - [stall_{k+1} ∧ full_k ⟹ stall_k] (stall propagation);
    - [rollback_k ⟹ full_k ∧ ¬stall_k] (the misspeculation comparison
      fires only with valid operands);
    - [full_0 = 1];
    - across cycles: [full_s^{T+1} = (ue_{s-1}^T ∨ stall_s^T) ∧
      ¬rollback'^T_s] — in particular bubbles are removed when
      possible;
    - a stalled stage keeps its instruction: tags are stable under
      [stall] and shift under [ue]. *)

val check :
  n_stages:int ->
  Pipeline.Pipesem.cycle_record list ->
  (unit, string list) result

val check_exn : n_stages:int -> Pipeline.Pipesem.cycle_record list -> unit
(** @raise Failure with the violation list. *)
