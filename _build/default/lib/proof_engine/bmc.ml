type outcome = {
  programs : int;
  failures : (int list * string) list;
}

let ok o = o.failures = []

let exhaustive ?(max_failures = 5) ?ext ~build ~alphabet ~length () =
  Obs.Span.with_span "verify.bmc" @@ fun () ->
  let programs = ref 0 in
  let failures = ref [] in
  let rec enumerate prefix remaining =
    if remaining = 0 then begin
      let program = List.rev prefix in
      incr programs;
      let reason =
        match build program with
        | exception e -> Some ("transform failed: " ^ Printexc.to_string e)
        | t -> (
          let report =
            Consistency.check ?ext ~max_instructions:(length + 4) t
          in
          if Consistency.ok report then None
          else
            Some
              (match report.Consistency.violations with
              | v :: _ ->
                Printf.sprintf "instr %d register %s: expected %s, got %s"
                  v.Consistency.tag v.Consistency.register
                  v.Consistency.expected v.Consistency.got
              | [] -> (
                match report.Consistency.outcome with
                | Pipeline.Pipesem.Deadlocked -> "deadlock"
                | Pipeline.Pipesem.Out_of_cycles -> "out of cycles"
                | Pipeline.Pipesem.Completed -> "lemma or final-state failure")))
      in
      match reason with
      | None -> ()
      | Some r ->
        if List.length !failures < max_failures then
          failures := (program, r) :: !failures
    end
    else
      List.iter (fun insn -> enumerate (insn :: prefix) (remaining - 1)) alphabet
  in
  enumerate [] length;
  { programs = !programs; failures = List.rev !failures }

let pp ppf o =
  Format.fprintf ppf "exhaustive check: %d programs, %d failures@." o.programs
    (List.length o.failures);
  List.iter
    (fun (prog, reason) ->
      Format.fprintf ppf "  program [%s]: %s@."
        (String.concat "; " (List.map string_of_int prog))
        reason)
    o.failures
