type t = {
  timescale : string;
  signals : (string * int) list;
  ids : (string, string) Hashtbl.t;
  mutable samples : (string * Bitvec.t) list list;  (* reversed *)
}

(* VCD identifier codes: printable ASCII 33..126, shortest first. *)
let id_of_index i =
  let base = 94 and first = 33 in
  let rec go acc i =
    let acc = String.make 1 (Char.chr (first + (i mod base))) ^ acc in
    if i < base then acc else go acc ((i / base) - 1)
  in
  go "" i

let create ?(timescale = "1 ns") signals =
  let ids = Hashtbl.create 16 in
  List.iteri (fun i (name, _) -> Hashtbl.replace ids name (id_of_index i)) signals;
  { timescale; signals; ids; samples = [] }

let sample t values =
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name t.signals with
      | None -> invalid_arg (Printf.sprintf "Vcd.sample: unknown signal %s" name)
      | Some w ->
        if Bitvec.width v <> w then
          invalid_arg
            (Printf.sprintf "Vcd.sample: %s has width %d, declared %d" name
               (Bitvec.width v) w))
    values;
  t.samples <- values :: t.samples

let cycles t = List.length t.samples

let binary_string v =
  let w = Bitvec.width v in
  String.init w (fun i -> if Bitvec.bit v (w - 1 - i) then '1' else '0')

let pp_change ppf ~id v =
  if Bitvec.width v = 1 then
    Format.fprintf ppf "%d%s@." (Bitvec.to_int v) id
  else Format.fprintf ppf "b%s %s@." (binary_string v) id

let output ppf t =
  Format.fprintf ppf "$version automated-pipeline-design $end@.";
  Format.fprintf ppf "$timescale %s $end@." t.timescale;
  Format.fprintf ppf "$scope module pipeline $end@.";
  List.iter
    (fun (name, w) ->
      Format.fprintf ppf "$var wire %d %s %s $end@." w
        (Hashtbl.find t.ids name)
        (Verilog.sanitize name))
    t.signals;
  Format.fprintf ppf "$upscope $end@.$enddefinitions $end@.";
  (* Initial values: everything unknown until first sampled. *)
  Format.fprintf ppf "$dumpvars@.";
  List.iter
    (fun (name, w) ->
      let id = Hashtbl.find t.ids name in
      if w = 1 then Format.fprintf ppf "x%s@." id
      else Format.fprintf ppf "b%s %s@." (String.make w 'x') id)
    t.signals;
  Format.fprintf ppf "$end@.";
  let last : (string, Bitvec.t) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun time values ->
      Format.fprintf ppf "#%d@." time;
      List.iter
        (fun (name, v) ->
          let changed =
            match Hashtbl.find_opt last name with
            | Some prev -> not (Bitvec.equal prev v)
            | None -> true
          in
          if changed then begin
            Hashtbl.replace last name v;
            pp_change ppf ~id:(Hashtbl.find t.ids name) v
          end)
        values)
    (List.rev t.samples);
  Format.fprintf ppf "#%d@." (cycles t)

let to_string t = Format.asprintf "%a" output t

let write_file ~path t =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  output ppf t;
  Format.pp_print_flush ppf ();
  close_out oc
