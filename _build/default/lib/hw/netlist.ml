type t = {
  distinct : (Expr.t, unit) Hashtbl.t;
  mutable shared : int;   (* gate count, each node once *)
  mutable tree : int;     (* gate count as priced on the trees *)
}

(* The incremental gate price of one node (children already priced). *)
let node_gates e =
  match e with
  | Expr.Const _ | Expr.Input _ | Expr.Concat _ | Expr.Slice _ | Expr.Zext _
  | Expr.Sext _ -> 0
  | Expr.Unop _ | Expr.Binop _ | Expr.Mux _ | Expr.File_read _ ->
    (* Price the node alone by subtracting the children's tree costs
       from the node's tree cost. *)
    let child_cost =
      match e with
      | Expr.Unop (_, a) -> (Cost.of_expr a).Cost.gates
      | Expr.Binop (_, a, b) ->
        (Cost.of_expr a).Cost.gates + (Cost.of_expr b).Cost.gates
      | Expr.Mux (s, a, b) ->
        (Cost.of_expr s).Cost.gates + (Cost.of_expr a).Cost.gates
        + (Cost.of_expr b).Cost.gates
      | Expr.File_read { addr; _ } -> (Cost.of_expr addr).Cost.gates
      | Expr.Const _ | Expr.Input _ | Expr.Concat _ | Expr.Slice _
      | Expr.Zext _ | Expr.Sext _ -> 0
    in
    (Cost.of_expr e).Cost.gates - child_cost

let create () = { distinct = Hashtbl.create 256; shared = 0; tree = 0 }

let rec visit t e =
  if not (Hashtbl.mem t.distinct e) then begin
    Hashtbl.replace t.distinct e ();
    t.shared <- t.shared + node_gates e;
    match e with
    | Expr.Const _ | Expr.Input _ -> ()
    | Expr.Unop (_, a) | Expr.Slice (a, _, _) | Expr.Zext (a, _)
    | Expr.Sext (a, _) -> visit t a
    | Expr.Binop (_, a, b) | Expr.Concat (a, b) ->
      visit t a;
      visit t b
    | Expr.Mux (s, a, b) ->
      visit t s;
      visit t a;
      visit t b
    | Expr.File_read { addr; _ } -> visit t addr
  end

let of_signals signals =
  let t = create () in
  List.iter
    (fun (_, e) ->
      t.tree <- t.tree + (Cost.of_expr e).Cost.gates;
      visit t e)
    signals;
  t

let of_expr e = of_signals [ ("", e) ]
let node_count t = Hashtbl.length t.distinct
let shared_gates t = t.shared
let tree_gates t = t.tree

let sharing_ratio t =
  if t.tree = 0 then 1.0 else float_of_int t.shared /. float_of_int t.tree

let pp_summary ppf t =
  Format.fprintf ppf "%d distinct nodes; %d gates shared (%d as trees, %.0f%%)"
    (node_count t) t.shared t.tree (100.0 *. sharing_ratio t)
