(** Fixed-width bit vectors.

    A bit vector pairs a width [1..62] with a value held in an OCaml
    [int]; all operations truncate their result to the width of their
    operands.  This is the value domain [W(R)] of the paper's register
    model: every register has a domain given by its width. *)

type t
(** A bit vector.  Structural equality ([=]) is value equality. *)

exception Width_mismatch of string
(** Raised by binary operations whose operands have different widths,
    with a description of the offending operation. *)

val max_width : int
(** Largest supported width (62). *)

val make : width:int -> int -> t
(** [make ~width v] is the bit vector of [width] bits holding [v]
    truncated to [width] bits.  [v] may be negative; it is interpreted
    in two's complement.  @raise Invalid_argument if [width] is outside
    [1..max_width]. *)

val zero : int -> t
(** [zero width] is the all-zeros vector. *)

val one : int -> t
(** [one width] is the vector holding 1. *)

val ones : int -> t
(** [ones width] is the all-ones vector. *)

val width : t -> int
(** Number of bits. *)

val to_int : t -> int
(** Unsigned value, in [0 .. 2^width - 1]. *)

val to_signed_int : t -> int
(** Two's-complement signed value. *)

val equal : t -> t -> bool
(** Value and width equality. *)

val compare : t -> t -> int
(** Total order: first by width, then by unsigned value. *)

val is_zero : t -> bool

val bit : t -> int -> bool
(** [bit v i] is bit [i] (0 = least significant).
    @raise Invalid_argument if [i] is out of range. *)

(** {1 Arithmetic} (modulo [2^width]) *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

(** {1 Bitwise logic} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

(** {1 Shifts} (shift amount is the unsigned value of the second
    operand; results saturate to zero / sign as usual) *)

val shift_left : t -> int -> t
val shift_right_logical : t -> int -> t
val shift_right_arith : t -> int -> t

(** {1 Comparisons} (producing 1-bit vectors) *)

val eq : t -> t -> t
val lt_unsigned : t -> t -> t
val lt_signed : t -> t -> t

(** {1 Structure} *)

val concat : t -> t -> t
(** [concat hi lo] has width [width hi + width lo], [hi] in the upper
    bits.  @raise Invalid_argument if the result exceeds [max_width]. *)

val slice : t -> hi:int -> lo:int -> t
(** [slice v ~hi ~lo] extracts bits [hi..lo] inclusive.
    @raise Invalid_argument unless [width v > hi >= lo >= 0]. *)

val zero_extend : t -> int -> t
(** [zero_extend v w] widens [v] to [w] bits with zeros.
    @raise Invalid_argument if [w < width v]. *)

val sign_extend : t -> int -> t
(** [sign_extend v w] widens [v] to [w] bits replicating the sign bit. *)

val truncate : t -> int -> t
(** [truncate v w] keeps the low [w] bits of [v]. *)

val of_bool : bool -> t
(** 1-bit vector: [true] is 1. *)

val to_bool : t -> bool
(** [true] iff nonzero (any width). *)

val pp : Format.formatter -> t -> unit
(** Prints as [width'dvalue], e.g. [32'd42]. *)

val to_string : t -> string

val pp_hex : Format.formatter -> t -> unit
(** Prints as [width'hvalue] in hexadecimal. *)
