(** Gate-level cost model.

    Prices an expression in equivalent 2-input gates (area) and logic
    levels (depth).  The model follows the textbook conventions of
    Mueller & Paul ("Computer Architecture: Complexity and
    Correctness"), the paper's reference [20]: conditional-sum adders
    with logarithmic depth, balanced AND/OR trees for reductions and
    equality testers, 3-gate multiplexers.

    Only relative comparisons matter for the reproduction: the paper's
    §4.2 remark that the linear forwarding mux chain "gets slow with
    larger pipelines" while a find-first-one circuit with a balanced
    mux tree has logarithmic depth (experiment E3). *)

type t = { gates : int;  (** equivalent 2-input gate count *)
           depth : int   (** logic levels on the critical path *) }

val zero : t
val add : t -> t -> t
(** Parallel composition: gates add, depth is the maximum. *)

val seq : t -> t -> t
(** Series composition: gates add, depths add. *)

val of_expr : Expr.t -> t
(** Cost of an expression tree (no common-subexpression sharing:
    expressions are priced as written, the way a naive synthesis
    would build them). *)

val clog2 : int -> int
(** [clog2 n] is [ceil (log2 n)] for [n >= 1] ([clog2 1 = 0]). *)

val pp : Format.formatter -> t -> unit
