let check_bit e =
  if Expr.width e <> 1 then
    invalid_arg "Circuits: expected a 1-bit expression"

let prefix_or xs =
  List.iter check_bit xs;
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let d = ref 1 in
  while !d < n do
    (* Recursive doubling: combine from high index down so each round
       reads the previous round's values. *)
    for i = n - 1 downto !d do
      arr.(i) <- Expr.( ||: ) arr.(i - !d) arr.(i)
    done;
    d := !d * 2
  done;
  Array.to_list arr

let find_first_one xs =
  match xs with
  | [] -> []
  | first :: rest ->
    (* prefixes.(i) = x_0 | ... | x_i; the output for x_{i+1} masks
       with prefixes.(i), so the list aligns with [rest]. *)
    let prefixes = prefix_or xs in
    let rec go rest prefixes =
      match (rest, prefixes) with
      | [], _ -> []
      | x :: rest', p :: prefixes' ->
        Expr.( &&: ) x (Expr.not_ p) :: go rest' prefixes'
      | _ :: _, [] -> assert false
    in
    first :: go rest prefixes

let onehot_mux cases =
  match cases with
  | [] -> invalid_arg "Circuits.onehot_mux: empty"
  | (_, v0) :: _ ->
    let w = Expr.width v0 in
    let mask (s, v) =
      check_bit s;
      if w = 1 then Expr.( &&: ) s v
      else Expr.Binop (Expr.And, Expr.Sext (s, w), v)
    in
    let masked = List.map mask cases in
    (* Balanced OR tree. *)
    let rec pairwise acc = function
      | a :: b :: rest -> pairwise (Expr.Binop (Expr.Or, a, b) :: acc) rest
      | [a] -> List.rev (a :: acc)
      | [] -> List.rev acc
    in
    let rec tree = function
      | [] -> assert false
      | [x] -> x
      | xs -> tree (pairwise [] xs)
    in
    tree masked

type priority_impl = Chain | Tree | Bus

let priority_select ~impl cases ~default =
  match impl with
  | Chain -> Expr.mux_cases ~default cases
  | Tree | Bus -> (
    match cases with
    | [] -> default
    | _ ->
      let conds = List.map fst cases in
      let vals = List.map snd cases in
      let onehot = find_first_one conds in
      (* The "no hit" detector reuses the logarithmic-depth prefix
         network (its last output is the OR of all hits). *)
      let any =
        match List.rev (prefix_or conds) with
        | last :: _ -> last
        | [] -> Expr.fls
      in
      let none = Expr.not_ any in
      onehot_mux ((none, default) :: List.combine onehot vals))

let equality_tester a b = Expr.( ==: ) a b
