(** Per-cycle trace tables.

    A lightweight recorder for simulator traces: named columns, one row
    per cycle, rendered as an ASCII table.  Used by the examples and by
    the Table 1 reproduction (the round-robin [ue] schedule). *)

type t

val create : columns:string list -> t
(** Column order is the display order. *)

val record : t -> (string * string) list -> unit
(** Append one cycle; missing columns display as ["."]. *)

val record_bits : t -> (string * bool) list -> unit
(** Convenience: booleans are shown as ["1"] / ["0"]. *)

val cycles : t -> int

val cell : t -> cycle:int -> column:string -> string option
(** Look up a recorded value. *)

val pp : Format.formatter -> t -> unit
(** Render: a header row then one row per cycle, first column is the
    cycle number. *)

val to_string : t -> string
