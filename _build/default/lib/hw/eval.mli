(** Evaluation of combinational expressions.

    The cycle simulators evaluate the stage functions [f_k] (and the
    synthesized forwarding, interlock and stall-engine expressions)
    against the current register contents. *)

type env = {
  lookup_input : string -> Bitvec.t;
      (** Value of a named register or signal.  Should raise
          [Not_found] (or any exception) for unknown names. *)
  lookup_file : string -> Bitvec.t -> Bitvec.t;
      (** [lookup_file file addr] reads a register-file entry. *)
}

exception Eval_error of string
(** Raised when a lookup fails or a value has an unexpected width. *)

val eval : env -> Expr.t -> Bitvec.t
(** Evaluate; the result width equals [Expr.width] of the expression. *)

val eval_bool : env -> Expr.t -> bool
(** Evaluate a 1-bit expression to a boolean. *)

val env_of_assoc :
  ?files:(string * (Bitvec.t -> Bitvec.t)) list ->
  (string * Bitvec.t) list ->
  env
(** Convenience environment over association lists (for tests). *)
