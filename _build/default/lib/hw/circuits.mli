(** Generic circuit generators.

    The forwarding synthesis (paper §4) needs a priority selector: take
    the value of the *smallest* stage index with an active hit signal
    ([top = min {j | hit[j]}]).  The paper's figure 2 realizes this
    with a linear chain of multiplexers and notes that "this hardware
    gets slow with larger pipelines.  With larger pipelines, one can
    use a find first one circuit and a balanced tree of multiplexers".
    Both implementations are provided here and compared in experiment
    E3. *)

val prefix_or : Expr.t list -> Expr.t list
(** [prefix_or [x0; x1; ...]] is [[x0; x0|x1; x0|x1|x2; ...]] built as
    a logarithmic-depth parallel-prefix (recursive-doubling) network.
    All inputs must be 1 bit wide. *)

val find_first_one : Expr.t list -> Expr.t list
(** One-hot "find first one": output [i] is active iff input [i] is
    active and no earlier input is.  Logarithmic depth. *)

val onehot_mux : (Expr.t * Expr.t) list -> Expr.t
(** [onehot_mux [(s0, v0); ...]]: assuming at most one select is
    active, returns the selected value (all-zeros when none is).
    Built as AND-masking plus a balanced OR tree: logarithmic depth.
    @raise Invalid_argument on the empty list. *)

type priority_impl =
  | Chain  (** linear multiplexer chain, as in the paper's figure 2 *)
  | Tree   (** find-first-one + balanced multiplexer tree (§4.2) *)
  | Bus
      (** operand bus with tri-state drivers (§4.2's other alternative):
          find-first-one enables drive the sources onto a shared wire.
          Logically this is the same one-hot selection as [Tree] (and is
          simulated as such); it differs in the implementation cost —
          constant selection depth after the enables, one driver per
          source bit — which {!Pipeline.Mux_impl} prices analytically. *)

val priority_select :
  impl:priority_impl -> (Expr.t * Expr.t) list -> default:Expr.t -> Expr.t
(** [priority_select ~impl cases ~default] returns the value of the
    first case whose (1-bit) condition holds, or [default] when none
    does.  Both implementations compute the same function; they differ
    in gate count and depth (see {!Cost}). *)

val equality_tester : Expr.t -> Expr.t -> Expr.t
(** The address comparator of the hit signals ([=?] in figure 2). *)
