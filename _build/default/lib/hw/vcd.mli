(** Value Change Dump (IEEE 1364 §18) emission.

    Records per-cycle samples of named signals and renders a [.vcd]
    file readable by GTKWave and friends — the practical way to inspect
    the stall engine and forwarding behaviour of a simulated pipeline
    (see [Pipeline.Tracer]). *)

type t

val create : ?timescale:string -> (string * int) list -> t
(** The argument lists the signals as [(name, width)]; [timescale]
    defaults to ["1 ns"] (one simulation cycle = one timescale
    unit). *)

val sample : t -> (string * Bitvec.t) list -> unit
(** Append one cycle.  Signals missing from the list keep their
    previous value; unknown names are rejected.
    @raise Invalid_argument on an unknown name or wrong width. *)

val cycles : t -> int

val output : Format.formatter -> t -> unit
(** The complete VCD document: header, declarations, initial dump and
    one [#t] section per cycle with the changed signals. *)

val to_string : t -> string

val write_file : path:string -> t -> unit
