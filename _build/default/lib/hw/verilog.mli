(** Emission of generated hardware as Verilog-flavoured HDL.

    The paper's tool inserts forwarding and interlock hardware into an
    existing HDL design; our tool emits the synthesized logic (stall
    engine, forwarding networks, hit/valid/dhaz signals, speculation
    comparators) as a self-contained module so a designer can inspect
    or integrate it.  The dialect is standard structural Verilog minus
    vendor pragmas; [File_read] nodes print as memory indexing. *)

type port_dir = In | Out

type port = { port_name : string; port_width : int; dir : port_dir }

type item =
  | Wire of string * int * Expr.t   (** [wire [w-1:0] name = expr;] *)
  | Reg_decl of string * int * Expr.t option
      (** registered signal with optional next-state expression,
          printed as a declaration plus a clocked always block *)
  | Comment of string

type modul = {
  module_name : string;
  ports : port list;
  items : item list;
}

val pp_expr : Format.formatter -> Expr.t -> unit
(** Expression in Verilog concrete syntax. *)

val pp_module : Format.formatter -> modul -> unit

val to_string : modul -> string

val sanitize : string -> string
(** Map a register name like ["C.3"] or ["GPRa'"] to a valid Verilog
    identifier (dots and primes become underscores). *)
