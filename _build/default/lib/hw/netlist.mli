(** Hash-consed combinational netlists.

    {!Cost.of_expr} prices an expression {e tree}: a subexpression used
    twice is paid for twice, the way naive synthesis would duplicate
    it.  Real synthesis shares common subexpressions.  This module
    builds the shared DAG for a set of named signals (hash-consing
    structurally equal nodes, with named signals acting as explicit
    sharing points) and prices each gate once — the number a synthesis
    tool would report for the generated control logic.

    Depth is unchanged by sharing; the interesting delta is area. *)

type t

val of_signals : (string * Expr.t) list -> t
(** Build the DAG for an ordered signal list (later definitions may
    reference earlier ones by name, as in [Pipeline.Transform.signals];
    named references are sharing points and are not inlined). *)

val of_expr : Expr.t -> t
(** Single-expression convenience. *)

val node_count : t -> int
(** Distinct structural nodes (inputs and constants included). *)

val shared_gates : t -> int
(** Total equivalent gate count with each distinct node priced once. *)

val tree_gates : t -> int
(** The unshared (expression-tree) count, for comparison. *)

val sharing_ratio : t -> float
(** [shared / tree], in (0, 1]; lower means more reuse was found. *)

val pp_summary : Format.formatter -> t -> unit
