type env = {
  lookup_input : string -> Bitvec.t;
  lookup_file : string -> Bitvec.t -> Bitvec.t;
}

exception Eval_error of string

let err fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let eval_unop op a =
  match op with
  | Expr.Not -> Bitvec.lognot a
  | Expr.Neg -> Bitvec.neg a
  | Expr.Reduce_or -> Bitvec.of_bool (not (Bitvec.is_zero a))
  | Expr.Reduce_and -> Bitvec.of_bool (Bitvec.equal a (Bitvec.ones (Bitvec.width a)))

let eval_binop op a b =
  match op with
  | Expr.Add -> Bitvec.add a b
  | Expr.Sub -> Bitvec.sub a b
  | Expr.Mul -> Bitvec.mul a b
  | Expr.And -> Bitvec.logand a b
  | Expr.Or -> Bitvec.logor a b
  | Expr.Xor -> Bitvec.logxor a b
  | Expr.Eq -> Bitvec.eq a b
  | Expr.Ne -> Bitvec.lognot (Bitvec.eq a b)
  | Expr.Ltu -> Bitvec.lt_unsigned a b
  | Expr.Lts -> Bitvec.lt_signed a b
  | Expr.Shl -> Bitvec.shift_left a (Bitvec.to_int b)
  | Expr.Shr -> Bitvec.shift_right_logical a (Bitvec.to_int b)
  | Expr.Sra -> Bitvec.shift_right_arith a (Bitvec.to_int b)

let rec eval env e =
  match e with
  | Expr.Const v -> v
  | Expr.Input (n, w) ->
    let v = try env.lookup_input n with Not_found -> err "unknown input %s" n in
    if Bitvec.width v <> w then
      err "input %s: stored width %d, expression expects %d" n (Bitvec.width v) w
    else v
  | Expr.Unop (op, a) -> eval_unop op (eval env a)
  | Expr.Binop (op, a, b) -> eval_binop op (eval env a) (eval env b)
  | Expr.Mux (s, a, b) ->
    if Bitvec.to_bool (eval env s) then eval env a else eval env b
  | Expr.Concat (a, b) -> Bitvec.concat (eval env a) (eval env b)
  | Expr.Slice (a, hi, lo) -> Bitvec.slice (eval env a) ~hi ~lo
  | Expr.Zext (a, w) -> Bitvec.zero_extend (eval env a) w
  | Expr.Sext (a, w) -> Bitvec.sign_extend (eval env a) w
  | Expr.File_read { file; data_width; addr } ->
    let v =
      try env.lookup_file file (eval env addr)
      with Not_found -> err "unknown register file %s" file
    in
    if Bitvec.width v <> data_width then
      err "file %s: stored width %d, expression expects %d" file
        (Bitvec.width v) data_width
    else v

let eval_bool env e = Bitvec.to_bool (eval env e)

let env_of_assoc ?(files = []) bindings =
  {
    lookup_input = (fun n -> List.assoc n bindings);
    lookup_file = (fun f addr -> (List.assoc f files) addr);
  }
