let const_env =
  {
    Eval.lookup_input = (fun _ -> raise Not_found);
    lookup_file = (fun _ _ -> raise Not_found);
  }

let is_const = function Expr.Const _ -> true | _ -> false

let as_const e =
  match e with Expr.Const v -> Some v | _ -> None

let zero_of w = Expr.const_int ~width:w 0
let ones_of w = Expr.Const (Bitvec.ones w)

let is_zero e =
  match as_const e with Some v -> Bitvec.is_zero v | None -> false

let is_ones e =
  match as_const e with
  | Some v -> Bitvec.equal v (Bitvec.ones (Bitvec.width v))
  | None -> false

(* One bottom-up pass. *)
let rec pass e =
  let e =
    match e with
    | Expr.Const _ | Expr.Input _ -> e
    | Expr.Unop (op, a) -> Expr.Unop (op, pass a)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, pass a, pass b)
    | Expr.Mux (s, a, b) -> Expr.Mux (pass s, pass a, pass b)
    | Expr.Concat (a, b) -> Expr.Concat (pass a, pass b)
    | Expr.Slice (a, hi, lo) -> Expr.Slice (pass a, hi, lo)
    | Expr.Zext (a, w) -> Expr.Zext (pass a, w)
    | Expr.Sext (a, w) -> Expr.Sext (pass a, w)
    | Expr.File_read { file; data_width; addr } ->
      Expr.File_read { file; data_width; addr = pass addr }
  in
  rewrite e

and rewrite e =
  let w = Expr.width e in
  match e with
  (* Full constant folding (no free inputs below this node). *)
  | Expr.Unop (_, a) when is_const a -> Expr.Const (Eval.eval const_env e)
  | Expr.Binop (_, a, b) when is_const a && is_const b ->
    Expr.Const (Eval.eval const_env e)
  | Expr.Slice (a, _, _) when is_const a -> Expr.Const (Eval.eval const_env e)
  | (Expr.Zext (a, _) | Expr.Sext (a, _)) when is_const a ->
    Expr.Const (Eval.eval const_env e)
  | Expr.Concat (a, b) when is_const a && is_const b ->
    Expr.Const (Eval.eval const_env e)
  (* Double complement. *)
  | Expr.Unop (Expr.Not, Expr.Unop (Expr.Not, a)) -> a
  (* Boolean / bitwise identities. *)
  | Expr.Binop (Expr.And, a, b) when is_zero a || is_zero b -> zero_of w
  | Expr.Binop (Expr.And, a, b) when is_ones b -> a
  | Expr.Binop (Expr.And, a, b) when is_ones a -> b
  | Expr.Binop (Expr.And, a, b) when Expr.equal a b -> a
  | Expr.Binop (Expr.Or, a, b) when is_ones a || is_ones b -> ones_of w
  | Expr.Binop (Expr.Or, a, b) when is_zero b -> a
  | Expr.Binop (Expr.Or, a, b) when is_zero a -> b
  | Expr.Binop (Expr.Or, a, b) when Expr.equal a b -> a
  | Expr.Binop (Expr.Xor, a, b) when is_zero b -> a
  | Expr.Binop (Expr.Xor, a, b) when is_zero a -> b
  | Expr.Binop (Expr.Xor, a, b) when Expr.equal a b -> zero_of w
  (* Arithmetic identities. *)
  | Expr.Binop (Expr.Add, a, b) when is_zero b -> a
  | Expr.Binop (Expr.Add, a, b) when is_zero a -> b
  | Expr.Binop (Expr.Sub, a, b) when is_zero b -> a
  | Expr.Binop ((Expr.Shl | Expr.Shr | Expr.Sra), a, b) when is_zero b -> a
  (* Comparisons of an expression with itself (expressions are pure). *)
  | Expr.Binop (Expr.Eq, a, b) when Expr.equal a b -> Expr.tru
  | Expr.Binop (Expr.Ne, a, b) when Expr.equal a b -> Expr.fls
  | Expr.Binop (Expr.Ltu, a, b) when Expr.equal a b -> Expr.fls
  | Expr.Binop (Expr.Lts, a, b) when Expr.equal a b -> Expr.fls
  (* Mux collapsing. *)
  | Expr.Mux (s, a, b) when is_const s ->
    if Bitvec.to_bool (Eval.eval const_env s) then a else b
  | Expr.Mux (_, a, b) when Expr.equal a b -> a
  | Expr.Mux (s, a, b) when w = 1 && is_ones a && is_zero b -> s
  | Expr.Mux (s, a, b) when w = 1 && is_zero a && is_ones b -> Expr.not_ s
  (* Extensions and slices that do nothing. *)
  | Expr.Zext (a, wz) when Expr.width a = wz -> a
  | Expr.Sext (a, ws) when Expr.width a = ws -> a
  | Expr.Slice (a, hi, 0) when hi = Expr.width a - 1 -> a
  (* Slice of a zero-extension entirely within the low part. *)
  | Expr.Slice (Expr.Zext (a, _), hi, lo) when hi < Expr.width a ->
    rewrite (Expr.Slice (a, hi, lo))
  | _ -> e

let simplify e =
  let rec go e n =
    let e' = pass e in
    if n = 0 || Expr.equal e' e then e' else go e' (n - 1)
  in
  go e 4

type stats = {
  nodes_before : int;
  nodes_after : int;
  gates_before : int;
  gates_after : int;
}

let measure e =
  let e' = simplify e in
  {
    nodes_before = Expr.size e;
    nodes_after = Expr.size e';
    gates_before = (Cost.of_expr e).Cost.gates;
    gates_after = (Cost.of_expr e').Cost.gates;
  }

let pp_stats ppf s =
  Format.fprintf ppf "%d -> %d nodes, %d -> %d gates" s.nodes_before
    s.nodes_after s.gates_before s.gates_after
