type port_dir = In | Out

type port = { port_name : string; port_width : int; dir : port_dir }

type item =
  | Wire of string * int * Expr.t
  | Reg_decl of string * int * Expr.t option
  | Comment of string

type modul = {
  module_name : string;
  ports : port list;
  items : item list;
}

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    s

let unop_sym = function
  | Expr.Not -> "~"
  | Expr.Neg -> "-"
  | Expr.Reduce_or -> "|"
  | Expr.Reduce_and -> "&"

let binop_sym = function
  | Expr.Add -> "+"
  | Expr.Sub -> "-"
  | Expr.Mul -> "*"
  | Expr.And -> "&"
  | Expr.Or -> "|"
  | Expr.Xor -> "^"
  | Expr.Eq -> "=="
  | Expr.Ne -> "!="
  | Expr.Ltu -> "<"
  | Expr.Lts -> "<"  (* operands are $signed-wrapped below *)
  | Expr.Shl -> "<<"
  | Expr.Shr -> ">>"
  | Expr.Sra -> ">>>"

let rec pp_expr ppf e =
  match e with
  | Expr.Const v ->
    Format.fprintf ppf "%d'd%d" (Bitvec.width v) (Bitvec.to_int v)
  | Expr.Input (n, _) -> Format.pp_print_string ppf (sanitize n)
  | Expr.Unop (op, a) -> Format.fprintf ppf "%s(%a)" (unop_sym op) pp_expr a
  | Expr.Binop (Expr.Lts, a, b) ->
    Format.fprintf ppf "($signed(%a) < $signed(%a))" pp_expr a pp_expr b
  | Expr.Binop (Expr.Sra, a, b) ->
    Format.fprintf ppf "($signed(%a) >>> (%a))" pp_expr a pp_expr b
  | Expr.Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_sym op) pp_expr b
  | Expr.Mux (s, a, b) ->
    Format.fprintf ppf "(%a ? %a : %a)" pp_expr s pp_expr a pp_expr b
  | Expr.Concat (a, b) -> Format.fprintf ppf "{%a, %a}" pp_expr a pp_expr b
  | Expr.Slice (a, hi, lo) ->
    if hi = lo then Format.fprintf ppf "%a[%d]" pp_expr a hi
    else Format.fprintf ppf "%a[%d:%d]" pp_expr a hi lo
  | Expr.Zext (a, w) ->
    let wa = Expr.width a in
    Format.fprintf ppf "{%d'd0, %a}" (w - wa) pp_expr a
  | Expr.Sext (a, w) ->
    let wa = Expr.width a in
    Format.fprintf ppf "{{%d{%a[%d]}}, %a}" (w - wa) pp_expr a (wa - 1) pp_expr a
  | Expr.File_read { file; addr; _ } ->
    Format.fprintf ppf "%s[%a]" (sanitize file) pp_expr addr

let pp_range ppf w =
  if w > 1 then Format.fprintf ppf "[%d:0] " (w - 1) else ()

let pp_port ppf p =
  let dir = match p.dir with In -> "input" | Out -> "output" in
  Format.fprintf ppf "%s %a%s" dir pp_range p.port_width (sanitize p.port_name)

let pp_item ppf = function
  | Comment c -> Format.fprintf ppf "  // %s@." c
  | Wire (n, w, e) ->
    Format.fprintf ppf "  wire %a%s = %a;@." pp_range w (sanitize n) pp_expr e
  | Reg_decl (n, w, next) -> (
    Format.fprintf ppf "  reg %a%s;@." pp_range w (sanitize n);
    match next with
    | None -> ()
    | Some e ->
      Format.fprintf ppf "  always @@(posedge clk) %s <= %a;@." (sanitize n)
        pp_expr e)

let pp_module ppf m =
  Format.fprintf ppf "module %s (@." (sanitize m.module_name);
  Format.fprintf ppf "  input clk%s@."
    (if m.ports = [] then "" else ",");
  List.iteri
    (fun i p ->
      let sep = if i = List.length m.ports - 1 then "" else "," in
      Format.fprintf ppf "  %a%s@." pp_port p sep)
    m.ports;
  Format.fprintf ppf ");@.";
  List.iter (pp_item ppf) m.items;
  Format.fprintf ppf "endmodule@."

let to_string m = Format.asprintf "%a" pp_module m
