(** Reduced ordered binary decision diagrams.

    A small hash-consed ROBDD package (the classical structure of the
    paper's reference [4], Bryant 1986), used by the symbolic
    equivalence checker: canonical form means two functions are equal
    iff their node handles are equal, and a differing pair yields a
    concrete counterexample by walking one path.

    Variables are non-negative integers ordered by value (smaller =
    closer to the root).  All operations are memoized. *)

type man
(** A manager owns the unique and operation caches. *)

type t
(** A node handle, canonical within its manager. *)

val manager : unit -> man

val tru : t
val fls : t
val var : man -> int -> t
val nvar : man -> int -> t
(** Complemented variable. *)

val neg : man -> t -> t
val conj : man -> t -> t -> t
val disj : man -> t -> t -> t
val xor : man -> t -> t -> t
val xnor : man -> t -> t -> t
val ite : man -> t -> t -> t -> t

val equal : t -> t -> bool
(** Function equality (canonical handles). *)

val is_tru : t -> bool
val is_fls : t -> bool

val node_count : man -> int
(** Live unique-table size (diagnostics). *)

val any_sat : man -> t -> (int * bool) list option
(** A satisfying assignment (variables not mentioned are don't-care),
    or [None] for the constant-false function. *)

val eval : man -> t -> (int -> bool) -> bool
(** Evaluate under a full assignment. *)
