(* Nodes are indices into growable arrays; 0 = false, 1 = true. *)

type t = int

type man = {
  mutable var_of : int array;   (* node -> variable *)
  mutable lo_of : int array;    (* node -> low child (var = 0 branch) *)
  mutable hi_of : int array;
  mutable size : int;
  unique : (int * int * int, int) Hashtbl.t;  (* (var, lo, hi) -> node *)
  cache : (int * int * int, int) Hashtbl.t;   (* ite memo *)
}

let fls : t = 0
let tru : t = 1

let manager () =
  let cap = 1024 in
  let m =
    {
      var_of = Array.make cap max_int;
      lo_of = Array.make cap 0;
      hi_of = Array.make cap 0;
      size = 2;
      unique = Hashtbl.create 1024;
      cache = Hashtbl.create 4096;
    }
  in
  (* Terminals carry an infinite variable so they sort last. *)
  m.var_of.(0) <- max_int;
  m.var_of.(1) <- max_int;
  m

let grow m =
  let cap = Array.length m.var_of in
  if m.size >= cap then begin
    let ncap = cap * 2 in
    let extend a d =
      let b = Array.make ncap d in
      Array.blit a 0 b 0 cap;
      b
    in
    m.var_of <- extend m.var_of max_int;
    m.lo_of <- extend m.lo_of 0;
    m.hi_of <- extend m.hi_of 0
  end

let mk m v lo hi =
  if lo = hi then lo
  else
    match Hashtbl.find_opt m.unique (v, lo, hi) with
    | Some n -> n
    | None ->
      grow m;
      let n = m.size in
      m.size <- n + 1;
      m.var_of.(n) <- v;
      m.lo_of.(n) <- lo;
      m.hi_of.(n) <- hi;
      Hashtbl.replace m.unique (v, lo, hi) n;
      n

let var m v = mk m v fls tru
let nvar m v = mk m v tru fls

let rec ite m f g h =
  if f = tru then g
  else if f = fls then h
  else if g = h then g
  else if g = tru && h = fls then f
  else
    let key = (f, g, h) in
    match Hashtbl.find_opt m.cache key with
    | Some r -> r
    | None ->
      let v =
        min m.var_of.(f) (min m.var_of.(g) m.var_of.(h))
      in
      let branch node side =
        if m.var_of.(node) = v then
          if side then m.hi_of.(node) else m.lo_of.(node)
        else node
      in
      let hi = ite m (branch f true) (branch g true) (branch h true) in
      let lo = ite m (branch f false) (branch g false) (branch h false) in
      let r = mk m v lo hi in
      Hashtbl.replace m.cache key r;
      r

let neg m f = ite m f fls tru
let conj m a b = ite m a b fls
let disj m a b = ite m a tru b
let xor m a b = ite m a (neg m b) b
let xnor m a b = ite m a b (neg m b)

let equal (a : t) (b : t) = a = b
let is_tru t = t = tru
let is_fls t = t = fls
let node_count m = m.size

let any_sat m f =
  if f = fls then None
  else
    let rec walk f acc =
      if f = tru then acc
      else if m.hi_of.(f) <> fls then
        walk m.hi_of.(f) ((m.var_of.(f), true) :: acc)
      else walk m.lo_of.(f) ((m.var_of.(f), false) :: acc)
    in
    Some (List.rev (walk f []))

let rec eval m f assign =
  if f = tru then true
  else if f = fls then false
  else if assign m.var_of.(f) then eval m m.hi_of.(f) assign
  else eval m m.lo_of.(f) assign
