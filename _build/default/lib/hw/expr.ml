type unop = Not | Neg | Reduce_or | Reduce_and

type binop =
  | Add | Sub | Mul
  | And | Or | Xor
  | Eq | Ne
  | Ltu | Lts
  | Shl | Shr | Sra

type t =
  | Const of Bitvec.t
  | Input of string * int
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t
  | Concat of t * t
  | Slice of t * int * int
  | Zext of t * int
  | Sext of t * int
  | File_read of { file : string; data_width : int; addr : t }

exception Ill_typed of string

let ill fmt = Format.kasprintf (fun s -> raise (Ill_typed s)) fmt

let rec width e =
  match e with
  | Const v -> Bitvec.width v
  | Input (_, w) ->
    if w < 1 || w > Bitvec.max_width then ill "input width %d" w else w
  | Unop ((Not | Neg), a) -> width a
  | Unop ((Reduce_or | Reduce_and), a) ->
    let _ = width a in
    1
  | Binop ((Add | Sub | Mul | And | Or | Xor), a, b) ->
    let wa = width a and wb = width b in
    if wa <> wb then ill "binop operand widths %d vs %d" wa wb else wa
  | Binop ((Eq | Ne | Ltu | Lts), a, b) ->
    let wa = width a and wb = width b in
    if wa <> wb then ill "comparison operand widths %d vs %d" wa wb else 1
  | Binop ((Shl | Shr | Sra), a, b) ->
    let wa = width a in
    let _ = width b in
    wa
  | Mux (sel, a, b) ->
    let ws = width sel in
    if ws <> 1 then ill "mux select width %d (want 1)" ws;
    let wa = width a and wb = width b in
    if wa <> wb then ill "mux branch widths %d vs %d" wa wb else wa
  | Concat (hi, lo) ->
    let w = width hi + width lo in
    if w > Bitvec.max_width then ill "concat result width %d too large" w else w
  | Slice (a, hi, lo) ->
    let wa = width a in
    if lo < 0 || hi < lo || hi >= wa then
      ill "slice [%d:%d] of %d-bit expression" hi lo wa
    else hi - lo + 1
  | Zext (a, w) | Sext (a, w) ->
    let wa = width a in
    if w < wa || w > Bitvec.max_width then ill "extend %d-bit to %d bits" wa w
    else w
  | File_read { data_width; addr; _ } ->
    let _ = width addr in
    if data_width < 1 || data_width > Bitvec.max_width then
      ill "file read width %d" data_width
    else data_width

let check e = match width e with w -> Ok w | exception Ill_typed m -> Error m

let const v = Const v
let const_int ~width v = Const (Bitvec.make ~width v)
let input n w = Input (n, w)
let tru = const_int ~width:1 1
let fls = const_int ~width:1 0
let bool_of b = if b then tru else fls

let not_ = function
  | Unop (Not, a) -> a
  | e -> Unop (Not, e)

let ( &&: ) a b =
  match (a, b) with
  | Const c, e when Bitvec.width c = 1 -> if Bitvec.to_bool c then e else fls
  | e, Const c when Bitvec.width c = 1 -> if Bitvec.to_bool c then e else fls
  | _ -> Binop (And, a, b)

let ( ||: ) a b =
  match (a, b) with
  | Const c, e when Bitvec.width c = 1 -> if Bitvec.to_bool c then tru else e
  | e, Const c when Bitvec.width c = 1 -> if Bitvec.to_bool c then tru else e
  | _ -> Binop (Or, a, b)

let ( ^: ) a b = Binop (Xor, a, b)
let ( ==: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)

let mux sel a b =
  match sel with
  | Const c when Bitvec.width c = 1 -> if Bitvec.to_bool c then a else b
  | _ -> Mux (sel, a, b)

let mux_cases ~default cases =
  List.fold_right (fun (c, v) rest -> mux c v rest) cases default

let slice e ~hi ~lo = Slice (e, hi, lo)
let bit e i = slice e ~hi:i ~lo:i

let concat_list = function
  | [] -> invalid_arg "Expr.concat_list: empty"
  | e :: es -> List.fold_left (fun acc x -> Concat (acc, x)) e es

let reduce_or e = if width e = 1 then e else Unop (Reduce_or, e)
let reduce_and e = if width e = 1 then e else Unop (Reduce_and, e)

let rec fold f acc e =
  let acc = f acc e in
  match e with
  | Const _ | Input _ -> acc
  | Unop (_, a) | Slice (a, _, _) | Zext (a, _) | Sext (a, _) -> fold f acc a
  | Binop (_, a, b) | Concat (a, b) -> fold f (fold f acc a) b
  | Mux (s, a, b) -> fold f (fold f (fold f acc s) a) b
  | File_read { addr; _ } -> fold f acc addr

let inputs e =
  let add acc = function
    | Input (n, w) -> if List.mem_assoc n acc then acc else (n, w) :: acc
    | Const _ | Unop _ | Binop _ | Mux _ | Concat _ | Slice _ | Zext _
    | Sext _ | File_read _ -> acc
  in
  List.rev (fold add [] e)

let file_reads e =
  let add acc = function
    | File_read { file; data_width; _ } ->
      if List.mem_assoc file acc then acc else (file, data_width) :: acc
    | Const _ | Input _ | Unop _ | Binop _ | Mux _ | Concat _ | Slice _
    | Zext _ | Sext _ -> acc
  in
  List.rev (fold add [] e)

let rec subst f e =
  match e with
  | Const _ -> e
  | Input (n, w) -> (
    match f n with
    | None -> e
    | Some v ->
      let wv = width v in
      if wv <> w then ill "subst for %s: width %d, want %d" n wv w else v)
  | Unop (op, a) -> Unop (op, subst f a)
  | Binop (op, a, b) -> Binop (op, subst f a, subst f b)
  | Mux (s, a, b) -> Mux (subst f s, subst f a, subst f b)
  | Concat (a, b) -> Concat (subst f a, subst f b)
  | Slice (a, hi, lo) -> Slice (subst f a, hi, lo)
  | Zext (a, w) -> Zext (subst f a, w)
  | Sext (a, w) -> Sext (subst f a, w)
  | File_read { file; data_width; addr } ->
    File_read { file; data_width; addr = subst f addr }

let rec subst_file_read f e =
  match e with
  | Const _ | Input _ -> e
  | Unop (op, a) -> Unop (op, subst_file_read f a)
  | Binop (op, a, b) -> Binop (op, subst_file_read f a, subst_file_read f b)
  | Mux (s, a, b) ->
    Mux (subst_file_read f s, subst_file_read f a, subst_file_read f b)
  | Concat (a, b) -> Concat (subst_file_read f a, subst_file_read f b)
  | Slice (a, hi, lo) -> Slice (subst_file_read f a, hi, lo)
  | Zext (a, w) -> Zext (subst_file_read f a, w)
  | Sext (a, w) -> Sext (subst_file_read f a, w)
  | File_read { file; data_width; addr } -> (
    let addr = subst_file_read f addr in
    match f ~file ~addr with
    | None -> File_read { file; data_width; addr }
    | Some v ->
      let wv = width v in
      if wv <> data_width then
        ill "file-read subst for %s: width %d, want %d" file wv data_width
      else v)

let size e = fold (fun n _ -> n + 1) 0 e

let equal a b = a = b

let unop_name = function
  | Not -> "~"
  | Neg -> "-"
  | Reduce_or -> "|"
  | Reduce_and -> "&"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Eq -> "=="
  | Ne -> "!="
  | Ltu -> "<u"
  | Lts -> "<s"
  | Shl -> "<<"
  | Shr -> ">>"
  | Sra -> ">>>"

let rec pp ppf = function
  | Const v -> Bitvec.pp ppf v
  | Input (n, _) -> Format.pp_print_string ppf n
  | Unop (op, a) -> Format.fprintf ppf "%s(%a)" (unop_name op) pp a
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Mux (s, a, b) -> Format.fprintf ppf "(%a ? %a : %a)" pp s pp a pp b
  | Concat (a, b) -> Format.fprintf ppf "{%a, %a}" pp a pp b
  | Slice (a, hi, lo) -> Format.fprintf ppf "%a[%d:%d]" pp a hi lo
  | Zext (a, w) -> Format.fprintf ppf "zext%d(%a)" w pp a
  | Sext (a, w) -> Format.fprintf ppf "sext%d(%a)" w pp a
  | File_read { file; addr; _ } -> Format.fprintf ppf "%s[%a]" file pp addr

let to_string e = Format.asprintf "%a" pp e
