(** Combinational simplification.

    A conservative, semantics-preserving rewriter: constant folding,
    boolean/arithmetic identities, mux and extension collapsing.
    The synthesis path already folds constants through the smart
    constructors of {!Expr}, so on tool-generated logic this mostly
    mops up what machine descriptions written by hand leave behind;
    [Pipeline.Transform.optimize] applies it to a whole transformed
    machine.

    Soundness contract: for every environment, [eval (simplify e) =
    eval e], and [width (simplify e) = width e].  Checked by property
    tests against random expressions. *)

val simplify : Expr.t -> Expr.t
(** Bottom-up rewrite to a fixpoint (bounded). *)

type stats = {
  nodes_before : int;
  nodes_after : int;
  gates_before : int;
  gates_after : int;
}

val measure : Expr.t -> stats

val pp_stats : Format.formatter -> stats -> unit
