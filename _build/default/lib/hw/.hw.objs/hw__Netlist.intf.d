lib/hw/netlist.mli: Expr Format
