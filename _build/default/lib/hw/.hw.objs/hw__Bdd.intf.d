lib/hw/bdd.mli:
