lib/hw/vcd.ml: Bitvec Char Format Hashtbl List Printf String Verilog
