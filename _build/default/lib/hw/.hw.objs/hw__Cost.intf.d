lib/hw/cost.mli: Expr Format
