lib/hw/wave.ml: Format List Option String
