lib/hw/bitvec.ml: Format Int Printf
