lib/hw/cost.ml: Expr Format
