lib/hw/opt.ml: Bitvec Cost Eval Expr Format
