lib/hw/expr.mli: Bitvec Format
