lib/hw/wave.mli: Format
