lib/hw/eval.mli: Bitvec Expr
