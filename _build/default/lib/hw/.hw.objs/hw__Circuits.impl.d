lib/hw/circuits.ml: Array Expr List
