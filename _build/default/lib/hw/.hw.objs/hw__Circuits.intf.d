lib/hw/circuits.mli: Expr
