lib/hw/vcd.mli: Bitvec Format
