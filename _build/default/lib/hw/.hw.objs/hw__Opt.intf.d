lib/hw/opt.mli: Expr Format
