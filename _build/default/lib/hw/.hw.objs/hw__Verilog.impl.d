lib/hw/verilog.ml: Bitvec Expr Format List String
