lib/hw/eval.ml: Bitvec Expr Format List
