lib/hw/bitvec.mli: Format
