lib/hw/verilog.mli: Expr Format
