lib/hw/bdd.ml: Array Hashtbl List
