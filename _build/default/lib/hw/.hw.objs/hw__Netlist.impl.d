lib/hw/netlist.ml: Cost Expr Format Hashtbl List
