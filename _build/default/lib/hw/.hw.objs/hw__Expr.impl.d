lib/hw/expr.ml: Bitvec Format List
