type t = { columns : string list; mutable rows : (string * string) list list }

let create ~columns = { columns; rows = [] }
let record t row = t.rows <- row :: t.rows
let record_bits t row =
  record t (List.map (fun (n, b) -> (n, if b then "1" else "0")) row)

let cycles t = List.length t.rows
let rows_in_order t = List.rev t.rows

let cell t ~cycle ~column =
  match List.nth_opt (rows_in_order t) cycle with
  | None -> None
  | Some row -> List.assoc_opt column row

let pp ppf t =
  let rows = rows_in_order t in
  let col_width c =
    List.fold_left
      (fun acc row ->
        match List.assoc_opt c row with
        | None -> acc
        | Some v -> max acc (String.length v))
      (String.length c) rows
  in
  let widths = List.map (fun c -> (c, col_width c)) t.columns in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  Format.fprintf ppf "%s" (pad "cycle" 5);
  List.iter (fun (c, w) -> Format.fprintf ppf "  %s" (pad c w)) widths;
  Format.fprintf ppf "@.";
  List.iteri
    (fun i row ->
      Format.fprintf ppf "%s" (pad (string_of_int i) 5);
      List.iter
        (fun (c, w) ->
          let v = Option.value ~default:"." (List.assoc_opt c row) in
          Format.fprintf ppf "  %s" (pad v w))
        widths;
      Format.fprintf ppf "@.")
    rows

let to_string t = Format.asprintf "%a" pp t
