type t = { gates : int; depth : int }

let zero = { gates = 0; depth = 0 }
let add a b = { gates = a.gates + b.gates; depth = max a.depth b.depth }
let seq a b = { gates = a.gates + b.gates; depth = a.depth + b.depth }

let clog2 n =
  if n < 1 then invalid_arg "Cost.clog2";
  let rec go acc p = if p >= n then acc else go (acc + 1) (p * 2) in
  go 0 1

(* Per-operator prices; [w] is the operand width. *)

let inverter w = { gates = w; depth = 1 }
let gate2 w = { gates = w; depth = 1 }
let adder w = { gates = 5 * w; depth = clog2 (max 2 w) + 2 }
let multiplier w = { gates = 5 * w * w; depth = (2 * clog2 (max 2 w)) + 4 }
let comparator_eq w = { gates = w + (w - 1); depth = 1 + clog2 (max 2 w) }
let comparator_lt w = adder w
let mux_gate w = { gates = 3 * w; depth = 2 }
let reduction w = { gates = w - 1; depth = clog2 (max 2 w) }
let barrel_shifter w =
  let l = clog2 (max 2 w) in
  { gates = 3 * w * l; depth = 2 * l }

(* A register-file read port: address decoder plus output mux tree. *)
let file_read_port ~addr_bits ~data_width =
  let entries = 1 lsl addr_bits in
  { gates = ((entries - 1) * 3 * data_width) + (entries * addr_bits);
    depth = addr_bits + 2 }

let rec of_expr e =
  match e with
  | Expr.Const _ | Expr.Input _ -> zero
  | Expr.Unop (op, a) ->
    let w = Expr.width a in
    let price =
      match op with
      | Expr.Not -> inverter w
      | Expr.Neg -> adder w
      | Expr.Reduce_or | Expr.Reduce_and -> reduction w
    in
    seq (of_expr a) price
  | Expr.Binop (op, a, b) ->
    let w = Expr.width a in
    let price =
      match op with
      | Expr.Add | Expr.Sub -> adder w
      | Expr.Mul -> multiplier w
      | Expr.And | Expr.Or | Expr.Xor -> gate2 w
      | Expr.Eq | Expr.Ne -> comparator_eq w
      | Expr.Ltu | Expr.Lts -> comparator_lt w
      | Expr.Shl | Expr.Shr | Expr.Sra -> (
        match b with
        | Expr.Const _ -> zero  (* constant shift is wiring *)
        | _ -> barrel_shifter w)
    in
    seq (add (of_expr a) (of_expr b)) price
  | Expr.Mux (s, a, b) ->
    let w = Expr.width a in
    seq (add (of_expr s) (add (of_expr a) (of_expr b))) (mux_gate w)
  | Expr.Concat (a, b) -> add (of_expr a) (of_expr b)
  | Expr.Slice (a, _, _) | Expr.Zext (a, _) | Expr.Sext (a, _) -> of_expr a
  | Expr.File_read { data_width; addr; _ } ->
    let addr_bits = Expr.width addr in
    seq (of_expr addr) (file_read_port ~addr_bits ~data_width)

let pp ppf t = Format.fprintf ppf "%d gates / %d levels" t.gates t.depth
