(** Combinational expression IR.

    The paper models the data paths of stage [k] as a function [f_k]
    from input-register values to output-register values.  We represent
    such functions as width-annotated combinational expressions over
    named inputs.  The transformation tool rewrites these expressions
    (e.g. substituting the forwarding network [g_k_R] for a plain
    register read), evaluates them in the cycle simulators, prices them
    with the gate-level cost model, and prints them as HDL. *)

type unop =
  | Not          (** bitwise complement *)
  | Neg          (** two's-complement negation *)
  | Reduce_or    (** 1-bit OR of all bits *)
  | Reduce_and   (** 1-bit AND of all bits *)

type binop =
  | Add | Sub | Mul
  | And | Or | Xor
  | Eq | Ne                   (** 1-bit results *)
  | Ltu | Lts                 (** unsigned / signed less-than, 1-bit *)
  | Shl | Shr | Sra           (** shift left / logical right / arithmetic
                                  right; the right operand is the shift
                                  amount, any width *)

type t =
  | Const of Bitvec.t
  | Input of string * int
      (** [Input (name, width)]: the value of register or signal
          [name].  Width is recorded at construction so expressions are
          self-contained. *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t
      (** [Mux (sel, a, b)]: [a] if [sel] is nonzero, else [b].  [sel]
          must be 1 bit wide. *)
  | Concat of t * t            (** [Concat (hi, lo)] *)
  | Slice of t * int * int     (** [Slice (e, hi, lo)] *)
  | Zext of t * int
  | Sext of t * int
  | File_read of { file : string; data_width : int; addr : t }
      (** Read port of register file [file] at address [addr]; the
          paper's [f_k_Rra] signal feeds [addr]. *)

exception Ill_typed of string

val width : t -> int
(** Width of the expression's result.  @raise Ill_typed on malformed
    expressions (mismatched operand widths, non-1-bit mux select,
    out-of-range slice, ...).  [width] fully checks the expression. *)

val check : t -> (int, string) result
(** Like {!width} but returning [Error] instead of raising. *)

(** {1 Smart constructors} *)

val const : Bitvec.t -> t
val const_int : width:int -> int -> t
val input : string -> int -> t
val tru : t
val fls : t
val bool_of : bool -> t
val not_ : t -> t
val ( &&: ) : t -> t -> t
val ( ||: ) : t -> t -> t
val ( ^: ) : t -> t -> t
val ( ==: ) : t -> t -> t
val ( <>: ) : t -> t -> t
val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val mux : t -> t -> t -> t
val mux_cases : default:t -> (t * t) list -> t
(** [mux_cases ~default [(c1, v1); (c2, v2); ...]] is a priority
    chain: [v1] if [c1], else [v2] if [c2], ..., else [default]. *)

val slice : t -> hi:int -> lo:int -> t
val bit : t -> int -> t
(** [bit e i] is [slice e ~hi:i ~lo:i]. *)

val concat_list : t list -> t
(** Concatenation, head is most significant.
    @raise Invalid_argument on the empty list. *)

val reduce_or : t -> t
val reduce_and : t -> t

(** {1 Traversal and rewriting} *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** [fold f acc e] applies [f] to every subexpression of [e] (including
    [e] itself), top-down. *)

val inputs : t -> (string * int) list
(** Named inputs read by the expression, each listed once, in first-use
    order.  Register-file reads are reported via {!file_reads}. *)

val file_reads : t -> (string * int) list
(** Register files read by the expression: [(file, data_width)], each
    file listed once. *)

val subst : (string -> t option) -> t -> t
(** [subst f e] replaces every [Input (n, _)] with [v] when
    [f n = Some v].  Replacement values must have matching widths
    (checked). *)

val subst_file_read : (file:string -> addr:t -> t option) -> t -> t
(** Replaces [File_read] nodes; the callback sees the (already
    rewritten) address expression.  Used to splice the forwarding
    network in place of an operand fetch. *)

val size : t -> int
(** Number of nodes, a crude complexity measure. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Human-readable rendering (infix, Verilog-flavoured). *)

val to_string : t -> string
