(** Minimal zero-dependency JSON: a value type, a serializer and a
    recursive-descent parser.

    The observability subsystem must emit machine-readable artifacts
    ([BENCH_pipeline.json], Chrome trace events, metric dumps) and read
    them back for regression comparison, without adding an external
    JSON dependency.  Floats are printed with 17 significant digits so
    that serialize → parse round-trips losslessly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** member order is preserved *)

val to_string : ?minify:bool -> t -> string
(** [minify] defaults to [false] (2-space indentation). *)

val pp : Format.formatter -> t -> unit

exception Parse_error of { pos : int; msg : string }

val parse_exn : string -> t
(** @raise Parse_error on malformed input (including trailing junk).
    Numbers without [.], [e] or [E] parse as [Int], all others as
    [Float].  [\uXXXX] escapes are decoded to UTF-8. *)

val parse : string -> (t, string) result

val write_file : path:string -> t -> unit
val read_file : path:string -> (t, string) result

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member key (Obj _)]; [None] on missing key or non-object. *)

val to_int_opt : t -> int option
(** [Int n] and integral [Float]s. *)

val to_float_opt : t -> float option
(** [Float f] and [Int n] (as [float_of_int n]). *)

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
val to_obj_opt : t -> (string * t) list option
val to_bool_opt : t -> bool option
