type entry = {
  experiment : string;
  ns_per_run : float option;
  cpi : float option;
  instructions : int option;
  cycles : int option;
  breakdown : (string * float) list;
}

let entry ?ns_per_run ?cpi ?instructions ?cycles ?(breakdown = []) experiment =
  { experiment; ns_per_run; cpi; instructions; cycles; breakdown }

let schema_version = "pipeline-bench/1"

let entry_json e =
  let opt name f v = Option.map (fun v -> (name, f v)) v in
  Json.Obj
    (List.filter_map Fun.id
       [
         opt "ns_per_run" (fun f -> Json.Float f) e.ns_per_run;
         opt "cpi" (fun f -> Json.Float f) e.cpi;
         opt "instructions" (fun n -> Json.Int n) e.instructions;
         opt "cycles" (fun n -> Json.Int n) e.cycles;
         (match e.breakdown with
         | [] -> None
         | b ->
           Some
             ( "breakdown",
               Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) b) ));
       ])

let to_json entries =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ( "experiments",
        Json.Obj (List.map (fun e -> (e.experiment, entry_json e)) entries) );
    ]

let ( let* ) r f = Result.bind r f

let entry_of_json name j =
  match Json.to_obj_opt j with
  | None -> Error (Printf.sprintf "experiment %s: not an object" name)
  | Some members ->
    let num key =
      match List.assoc_opt key members with
      | None -> Ok None
      | Some v -> (
        match Json.to_float_opt v with
        | Some f -> Ok (Some f)
        | None -> Error (Printf.sprintf "experiment %s: %s not a number" name key))
    in
    let int_field key =
      match List.assoc_opt key members with
      | None -> Ok None
      | Some v -> (
        match Json.to_int_opt v with
        | Some n -> Ok (Some n)
        | None ->
          Error (Printf.sprintf "experiment %s: %s not an integer" name key))
    in
    let* ns_per_run = num "ns_per_run" in
    let* cpi = num "cpi" in
    let* instructions = int_field "instructions" in
    let* cycles = int_field "cycles" in
    let* breakdown =
      match List.assoc_opt "breakdown" members with
      | None -> Ok []
      | Some (Json.Obj b) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match Json.to_float_opt v with
            | Some f -> Ok ((k, f) :: acc)
            | None ->
              Error
                (Printf.sprintf "experiment %s: breakdown %s not a number" name
                   k))
          (Ok []) b
        |> Result.map List.rev
      | Some _ -> Error (Printf.sprintf "experiment %s: breakdown not an object" name)
    in
    Ok { experiment = name; ns_per_run; cpi; instructions; cycles; breakdown }

let of_json j =
  match Json.member "schema" j with
  | Some (Json.String v) when v = schema_version -> (
    match Json.member "experiments" j with
    | Some (Json.Obj experiments) ->
      List.fold_left
        (fun acc (name, ej) ->
          let* acc = acc in
          let* e = entry_of_json name ej in
          Ok (e :: acc))
        (Ok []) experiments
      |> Result.map List.rev
    | Some _ | None -> Error "missing or malformed \"experiments\" object")
  | Some (Json.String v) ->
    Error (Printf.sprintf "unknown schema version %S (expected %S)" v schema_version)
  | Some _ | None -> Error "missing \"schema\" field"

let write_file ~path entries = Json.write_file ~path (to_json entries)

let read_file ~path =
  let* j = Json.read_file ~path in
  of_json j
