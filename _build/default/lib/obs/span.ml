type record = {
  span_name : string;
  start_us : float;
  dur_us : float;
  depth : int;
  args : (string * string) list;
}

let flag = ref false
let origin = ref 0.0
let depth_now = ref 0
let completed : record list ref = ref []

let set_enabled b =
  flag := b;
  if b then begin
    origin := Unix.gettimeofday ();
    depth_now := 0;
    completed := []
  end

let enabled () = !flag
let reset () = completed := []

let with_span ?(args = []) span_name f =
  if not !flag then f ()
  else begin
    let start = Unix.gettimeofday () in
    let depth = !depth_now in
    incr depth_now;
    Fun.protect
      ~finally:(fun () ->
        decr depth_now;
        let stop = Unix.gettimeofday () in
        completed :=
          {
            span_name;
            start_us = (start -. !origin) *. 1e6;
            dur_us = (stop -. start) *. 1e6;
            depth;
            args;
          }
          :: !completed)
      f
  end

let records () = List.rev !completed
