lib/obs/metrics.ml: Array Buffer Float Fun Hashtbl Json List Printf String Unix
