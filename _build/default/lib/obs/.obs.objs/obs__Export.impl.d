lib/obs/export.ml: Fun Json List Option Printf Result
