lib/obs/hazard.mli: Format Json
