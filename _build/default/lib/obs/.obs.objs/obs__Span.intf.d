lib/obs/span.mli:
