lib/obs/hazard.ml: Array Format Hashtbl Json List Map Option Printf
