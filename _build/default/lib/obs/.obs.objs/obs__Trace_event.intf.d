lib/obs/trace_event.mli: Json Span
