lib/obs/trace_event.ml: Json List Span
