lib/obs/export.mli: Json
