lib/obs/span.ml: Fun List Unix
