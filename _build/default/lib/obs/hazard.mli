(** Hazard attribution: classify every non-retiring cycle of a
    pipelined simulation and decompose the measured CPI into exact
    integer stall components.

    The engine consumes the per-cycle stall-engine signals (full,
    stall, dhaz, ext, rollback, ue — the arrays of
    [Pipeline.Pipesem.cycle_record]) and is deliberately independent of
    the pipeline library so it can be unit-tested on hand-written
    signal sequences.  Two attributions are maintained:

    - {b retirement-slot attribution}: each cycle in which no
      instruction retires is charged to the {e origin} of the bubble or
      stall observed at the last stage.  Bubbles are tracked from their
      creation site down the pipe with the same shift discipline the
      simulator applies to instruction tags, so a data hazard in the
      decode stage is charged as [Dhaz {stage = 1; _}] when its bubble
      reaches writeback three cycles later.  This yields the exact
      accounting [cycles = retiring_cycles + Σ lost(cause)] and hence
      [CPI = 1 + Σ components] (see {!decompose});

    - {b per-stage attribution}: for every stage and cycle with
      [¬ue_k], why that stage did no useful work — its own data hazard,
      its own external stall, a stall propagated from deeper stages
      (at stage 0: the fetch stall), a squash, or an inherited bubble.

    In addition, per-source forwarding-hit counters record which bypass
    source (forwarding register instance or the writer's [Din])
    actually fed each operand on each consuming cycle. *)

type cause =
  | Startup  (** pipeline fill: the bubble existed at reset *)
  | Dhaz of { stage : int; operand : string }
      (** interlock: stage [stage] stalled on a data hazard of the
          named operand rule *)
  | Ext_stall  (** external stall condition ([ext_k], e.g. slow memory) *)
  | Rollback_squash  (** bubble injected by a speculation rollback *)
  | Fetch_stall_propagated
      (** the stage was stalled only because a deeper stage stalled
          (per-stage attribution; at creation sites the local cause is
          always known, so this never reaches the retirement slot) *)

val cause_label : cause -> string
(** Stable machine-readable label, e.g. ["dhaz:stage1:1_GPRa"]. *)

type t

val create : n_stages:int -> t

val observe :
  t ->
  full:bool array ->
  stall:bool array ->
  dhaz:bool array ->
  ext:bool array ->
  rollback:bool array ->
  ue:bool array ->
  operand:(int -> string option) ->
  retired:int ->
  unit
(** Feed one simulated cycle, pre-edge signals plus the number of
    instructions that retired at that cycle's clock edge.  [operand]
    names the rule whose data hazard raised [dhaz.(k)], when known.
    Cycles must be fed in order. *)

val record_hit : t -> rule:string -> source:string -> unit
(** One operand consumption fed by [source] (a forwarding register
    name, ["Din"], or ["reg"] for the architectural read). *)

type component = { cause : cause; cycles : int }

type summary = {
  n_stages : int;
  total_cycles : int;
  retired : int;
  retiring_cycles : int;  (** cycles with ≥ 1 retirement *)
  multi_retire_extra : int;
      (** retirements beyond the first in their cycle (a rollback that
          retires in the same cycle as a normal writeback) *)
  lost : component list;
      (** retirement-slot attribution; [Σ cycles = total_cycles -
          retiring_cycles] exactly *)
  stage_stalls : (int * component list) list;
      (** per-stage attribution of [¬ue_k] cycles *)
  hits : ((string * string) * int) list;
      (** [(rule, source)] consumption counts *)
}

val summary : t -> summary

val cpi : summary -> float

type decomposition = {
  base : float;  (** 1.0: each retired instruction's own cycle *)
  terms : (string * float) list;
      (** labelled CPI components; negative [multi_retire] credit when
          rollback retirements coincide with normal ones *)
  cpi_total : float;
}

val decompose : summary -> decomposition
(** [base +. Σ terms = cpi_total] up to floating-point rounding; the
    underlying integer identity is exact (see {!summary}). *)

val pp_decomposition : Format.formatter -> decomposition -> unit
val pp_summary : Format.formatter -> summary -> unit

val summary_to_json : summary -> Json.t
