(** The machine-readable performance trajectory: [BENCH_pipeline.json].

    The benchmark harness writes one entry per experiment (kernel CPI
    rows, micro-benchmark timings); future sessions read the file back
    and regress against it.  The schema is versioned and round-trips
    through {!Json} exactly — a property the test suite and the bench
    smoke mode both assert. *)

type entry = {
  experiment : string;   (** e.g. ["C1.fib_10"], ["TIMING.F2_dlx_transformation"] *)
  ns_per_run : float option;  (** micro-benchmark wall time *)
  cpi : float option;
  instructions : int option;
  cycles : int option;
  breakdown : (string * float) list;
      (** CPI components by {!Hazard.cause_label} *)
}

val entry :
  ?ns_per_run:float ->
  ?cpi:float ->
  ?instructions:int ->
  ?cycles:int ->
  ?breakdown:(string * float) list ->
  string ->
  entry

val schema_version : string

val to_json : entry list -> Json.t
val of_json : Json.t -> (entry list, string) result
(** Rejects unknown schema versions and malformed entries. *)

val write_file : path:string -> entry list -> unit
val read_file : path:string -> (entry list, string) result
