(** Chrome trace-event JSON (the ["traceEvents"] object format), from
    collected {!Span} records.

    The output loads in Perfetto (ui.perfetto.dev) and chrome://tracing
    and complements the VCD view of [Pipeline.Tracer]: the VCD shows
    the simulated machine's cycles, the trace shows where the tool
    itself spends wall-clock time. *)

val to_json : ?process_name:string -> Span.record list -> Json.t
(** Complete ["X"] (duration) events on one pid/tid; span args become
    event args. *)

val to_string : ?process_name:string -> Span.record list -> string

val write_file : path:string -> ?process_name:string -> Span.record list -> unit
