(** Automated pipeline design — one-call facade.

    The full API lives in the underlying libraries:

    - [Hw] — bit vectors, the combinational expression IR, cost model,
      circuit generators, HDL emission;
    - [Machine] — prepared sequential machine descriptions, validation,
      sequential (round-robin) semantics;
    - [Pipeline] — the transformation tool: stall engine, forwarding,
      interlock, speculation, pipelined simulation, reports;
    - [Proof_engine] — obligation generation and the checkers (data
      consistency, liveness, trace invariants, exhaustive sweeps),
      PVS-style proof emission;
    - [Dlx] — the paper's case study: ISA, assembler, golden model,
      prepared sequential DLX and its speculation variants;
    - [Workload] — program generators, metrics, parameter sweeps.

    This module packages the common flow: take a prepared sequential
    machine, pipeline it, verify it, report on it. *)

val pipeline_of_sequential :
  ?options:Pipeline.Fwd_spec.options ->
  ?hints:Pipeline.Fwd_spec.hint list ->
  ?speculations:Pipeline.Fwd_spec.speculation list ->
  Machine.Spec.t ->
  Pipeline.Transform.t
(** Validate and transform (paper steps 3 and 4). *)

type verification = {
  consistency : Proof_engine.Consistency.report;
  liveness : Proof_engine.Liveness.report;
  obligations : Proof_engine.Obligation.obligation list;
}

val verify :
  ?ext:Pipeline.Pipesem.ext_model ->
  ?max_instructions:int ->
  ?reference:Machine.Seqsem.trace ->
  ?compiled:Pipeline.Pipesem.compiled ->
  ?pool:Exec.Pool.t ->
  ?inject:Pipeline.Pipesem.injection ->
  ?cancel:Exec.Cancel.token ->
  ?disasm:(int -> string option) ->
  Pipeline.Transform.t ->
  verification
(** Generate and discharge the proof obligations; run the
    data-consistency and liveness checkers.

    With [pool], the top-level consistency run and the obligation suite
    are discharged concurrently, and the obligation checkers fan out
    over the same pool (see {!Proof_engine.Obligation.discharge_all}).
    The result is identical to the serial run at any pool size.

    [inject] runs the behavioural checkers against a faulted machine
    (see {!Pipeline.Pipesem.injection}); [cancel] aborts by raising
    {!Exec.Cancel.Cancelled}; [disasm] renders instruction tags in
    failure evidence. *)

val verified : verification -> bool

type verify_error = { phase : string; message : string }

val verify_result :
  ?ext:Pipeline.Pipesem.ext_model ->
  ?max_instructions:int ->
  ?reference:Machine.Seqsem.trace ->
  ?compiled:Pipeline.Pipesem.compiled ->
  ?pool:Exec.Pool.t ->
  ?inject:Pipeline.Pipesem.injection ->
  ?cancel:Exec.Cancel.token ->
  ?disasm:(int -> string option) ->
  Pipeline.Transform.t ->
  (verification, verify_error) result
(** [verify] with no escaping checker exception: a machine broken
    badly enough to abort verification (a fault-campaign mutant whose
    plan no longer evaluates, say) yields [Error] with the failing
    phase.  Only {!Exec.Cancel.Cancelled} propagates. *)

val report : Pipeline.Transform.t -> string
(** The generated-hardware inventory (figure 2 style). *)

val verilog : Pipeline.Transform.t -> string
(** The generated control logic as an HDL module. *)

val proof_script : Pipeline.Transform.t -> verification -> string
(** The PVS-style proof theory with discharge annotations. *)

(** The 3-stage demo machine (see {!module:Toy}). *)
module Toy : module type of Toy

(** The depth-parametric machine family (see {!module:Elastic}). *)
module Elastic : module type of Elastic
