module Spec = Machine.Spec
module E = Hw.Expr

let encode ~dst ~src1 ~src2 =
  ((dst land 15) lsl 8) lor ((src1 land 15) lsl 4) lor (src2 land 15)

let bv ~width v = Hw.Bitvec.make ~width v

let machine ~program =
  let reg name width stage ?prev ?(visible = false) kind =
    { Spec.reg_name = name; width; stage; kind; visible; prev_instance = prev }
  in
  let ir = E.input "IR.1" 16 in
  let read_reg hi lo =
    E.File_read { file = "REG"; data_width = 16; addr = E.slice ir ~hi ~lo }
  in
  let w ?guard ?addr dst value = { Spec.dst; value; guard; wr_addr = addr } in
  {
    Spec.machine_name = "toy3";
    n_stages = 3;
    registers =
      [
        reg "PC" 8 0 ~visible:true Spec.Simple;
        reg "IMEM" 16 0 (Spec.File { addr_bits = 8 });
        reg "IR.1" 16 0 Spec.Simple;
        reg "C.2" 16 1 Spec.Simple;
        reg "D.2" 4 1 Spec.Simple;
        reg "REG" 16 2 ~visible:true (Spec.File { addr_bits = 4 });
      ];
    stages =
      [
        {
          Spec.index = 0;
          stage_name = "FETCH";
          writes =
            [
              w "IR.1"
                (E.File_read
                   { file = "IMEM"; data_width = 16; addr = E.input "PC" 8 });
              w "PC" (E.( +: ) (E.input "PC" 8) (E.const_int ~width:8 1));
            ];
        };
        {
          Spec.index = 1;
          stage_name = "EX";
          writes =
            [
              w "C.2" (E.( +: ) (read_reg 7 4) (read_reg 3 0));
              w "D.2" (E.slice ir ~hi:11 ~lo:8);
            ];
        };
        {
          Spec.index = 2;
          stage_name = "WB";
          writes = [ w ~addr:(E.input "D.2" 4) "REG" (E.input "C.2" 16) ];
        };
      ];
    init =
      [
        ( "IMEM",
          Machine.Value.file_of_list ~width:16 ~addr_bits:8
            (List.map (bv ~width:16) program) );
        ( "REG",
          Machine.Value.file_of_list ~width:16 ~addr_bits:4
            [ bv ~width:16 0; bv ~width:16 1; bv ~width:16 2 ] );
      ];
  }

(* The program-dependent part of [machine]'s init: everything else in
   the spec is identical for every program, which is what lets the
   batched checkers treat the program as data over one compiled
   shape. *)
let image ~program =
  [
    ( "IMEM",
      Machine.Value.file_of_list ~width:16 ~addr_bits:8
        (List.map (bv ~width:16) program) );
  ]

let hints =
  [
    Pipeline.Fwd_spec.hint ~stage:1 ~label:"srcA"
      (Pipeline.Fwd_spec.File_port ("REG", 0));
    Pipeline.Fwd_spec.hint ~stage:1 ~label:"srcB"
      (Pipeline.Fwd_spec.File_port ("REG", 1));
  ]

let transform ?options ~program () =
  Pipeline.Transform.run ?options ~hints (machine ~program)

let default_program =
  [
    encode ~dst:3 ~src1:1 ~src2:2;
    encode ~dst:4 ~src1:3 ~src2:3;
    encode ~dst:5 ~src1:4 ~src2:1;
    encode ~dst:6 ~src1:5 ~src2:4;
    encode ~dst:7 ~src1:6 ~src2:6;
    encode ~dst:1 ~src1:7 ~src2:2;
  ]
