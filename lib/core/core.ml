let pipeline_of_sequential ?options ?hints ?speculations m =
  Pipeline.Transform.run ?options ?hints ?speculations m

type verification = {
  consistency : Proof_engine.Consistency.report;
  liveness : Proof_engine.Liveness.report;
  obligations : Proof_engine.Obligation.obligation list;
}

let verify ?ext ?max_instructions ?reference ?compiled ?pool ?inject ?cancel
    ?disasm tr =
  (* One evaluation plan serves every co-simulation below: the compiled
     plan is immutable after [compile], so sharing it across pool
     domains is safe (each run builds its own state and plan instance —
     see {!Pipeline.Pipesem}). *)
  let compiled =
    match compiled with Some c -> c | None -> Pipeline.Pipesem.compile tr
  in
  (* The top-level consistency run and the obligation suite are
     independent; discharge them concurrently.  The obligation task
     nests its own [Pool.map] — the caller-helping pool makes that safe
     at any size.  Liveness depends on the consistency run's
     instruction count, so it stays after the join. *)
  let results =
    Exec.Pool.map_opt pool
      (fun task -> task ())
      [
        (fun () ->
          `Consistency
            (Proof_engine.Consistency.check ?ext ?max_instructions ?reference
               ~compiled ?inject ?cancel tr));
        (fun () ->
          `Obligations
            (Proof_engine.Obligation.discharge_all ?ext ?max_instructions
               ?reference ~compiled ?pool ?inject ?cancel ?disasm tr));
      ]
  in
  let consistency =
    List.find_map (function `Consistency r -> Some r | _ -> None) results
    |> Option.get
  and obligations =
    List.find_map (function `Obligations o -> Some o | _ -> None) results
    |> Option.get
  in
  let liveness =
    Proof_engine.Liveness.check ?ext ~compiled ?inject ?cancel
      ~stop_after:consistency.Proof_engine.Consistency.instructions tr
  in
  { consistency; liveness; obligations }

type verify_error = { phase : string; message : string }

let verify_result ?ext ?max_instructions ?reference ?compiled ?pool ?inject
    ?cancel ?disasm tr =
  match
    verify ?ext ?max_instructions ?reference ?compiled ?pool ?inject ?cancel
      ?disasm tr
  with
  | v -> Ok v
  | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
  | exception e ->
    (* The top-level consistency run is not routed through
       [check_result] (the obligation suite's copy is), so a mutant
       that breaks plan evaluation can still surface here as an
       exception.  Classify it the same way. *)
    let phase, message =
      match e with
      | Hw.Plan.Compile_error m -> ("plan compilation", m)
      | Hw.Plan.Run_error m -> ("plan evaluation", m)
      | Hw.Eval.Eval_error m -> ("expression evaluation", m)
      | Hw.Expr.Ill_typed m -> ("expression typing", m)
      | Invalid_argument m -> ("state access", m)
      | e -> ("verification", Printexc.to_string e)
    in
    Error { phase; message }

let verified v =
  Proof_engine.Consistency.ok v.consistency
  && Proof_engine.Liveness.ok v.liveness
  && Proof_engine.Obligation.all_discharged v.obligations

let report tr = Format.asprintf "%a" Pipeline.Report.pp_inventory tr
let verilog tr = Hw.Verilog.to_string (Pipeline.Report.verilog tr)
let proof_script tr v = Proof_engine.Pvs_gen.theory tr v.obligations

module Toy = Toy
module Elastic = Elastic
