let pipeline_of_sequential ?options ?hints ?speculations m =
  Pipeline.Transform.run ?options ?hints ?speculations m

type verification = {
  consistency : Proof_engine.Consistency.report;
  liveness : Proof_engine.Liveness.report;
  obligations : Proof_engine.Obligation.obligation list;
}

let verify ?ext ?max_instructions ?reference ?compiled tr =
  (* One evaluation plan serves every co-simulation below. *)
  let compiled =
    match compiled with Some c -> c | None -> Pipeline.Pipesem.compile tr
  in
  let consistency =
    Proof_engine.Consistency.check ?ext ?max_instructions ?reference ~compiled
      tr
  in
  let liveness =
    Proof_engine.Liveness.check ?ext ~compiled
      ~stop_after:consistency.Proof_engine.Consistency.instructions tr
  in
  let obligations =
    Proof_engine.Obligation.discharge_all ?ext ?max_instructions ?reference
      ~compiled tr
  in
  { consistency; liveness; obligations }

let verified v =
  Proof_engine.Consistency.ok v.consistency
  && Proof_engine.Liveness.ok v.liveness
  && Proof_engine.Obligation.all_discharged v.obligations

let report tr = Format.asprintf "%a" Pipeline.Report.pp_inventory tr
let verilog tr = Hw.Verilog.to_string (Pipeline.Report.verilog tr)
let proof_script tr v = Proof_engine.Pvs_gen.theory tr v.obligations

module Toy = Toy
module Elastic = Elastic
