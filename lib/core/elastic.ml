module Spec = Machine.Spec
module E = Hw.Expr

let min_stages = 3

let encode ~late ~dst ~src1 ~src2 =
  ((if late then 1 else 0) lsl 12)
  lor ((dst land 15) lsl 8)
  lor ((src1 land 15) lsl 4)
  lor (src2 land 15)

let reg ?prev ?(visible = false) name width stage kind =
  { Spec.reg_name = name; width; stage; kind; visible; prev_instance = prev }

let w ?guard ?addr dst value = { Spec.dst; value; guard; wr_addr = addr }
let inst name k = Printf.sprintf "%s.%d" name k

let machine ~n ~program =
  if n < min_stages then invalid_arg "Elastic.machine: need at least 3 stages";
  let lat = n - 2 in
  let ir = E.input "IR.1" 16 in
  let is_late = E.( ==: ) (E.slice ir ~hi:15 ~lo:12) (E.const_int ~width:4 1) in
  let read_reg hi lo =
    E.File_read { file = "REG"; data_width = 16; addr = E.slice ir ~hi ~lo }
  in
  (* Instance chains: C/D span stages 1..n-2 (instances .2 .. .(n-1));
     A/B/opl are needed up to the late unit (instances .2 .. .lat). *)
  let chain name width ~first ~last =
    List.init (last - first + 1) (fun i ->
        let k = first + i in
        let prev = if k = first then None else Some (inst name (k - 1)) in
        reg ?prev (inst name k) width (k - 1) Spec.Simple)
  in
  let registers =
    [
      reg "PC" 8 0 ~visible:true Spec.Simple;
      reg "IMEM" 16 0 (Spec.File { addr_bits = 8 });
      reg "IR.1" 16 0 Spec.Simple;
      reg "REG" 16 (n - 1) ~visible:true (Spec.File { addr_bits = 4 });
    ]
    @ chain "C" 16 ~first:2 ~last:(n - 1)
    @ chain "D" 4 ~first:2 ~last:(n - 1)
    @ (if lat >= 2 then
         chain "A" 16 ~first:2 ~last:lat
         @ chain "B" 16 ~first:2 ~last:lat
         @ chain "opl" 1 ~first:2 ~last:lat
       else [])
  in
  let stage0 =
    {
      Spec.index = 0;
      stage_name = "IF";
      writes =
        [
          w "IR.1"
            (E.File_read
               { file = "IMEM"; data_width = 16; addr = E.input "PC" 8 });
          w "PC" (E.( +: ) (E.input "PC" 8) (E.const_int ~width:8 1));
        ];
    }
  in
  let ga = read_reg 7 4 and gb = read_reg 3 0 in
  let stage1_writes =
    [
      (* The fast unit: result valid unless the operation is late. *)
      w ~guard:(E.not_ is_late) "C.2" (E.( +: ) ga gb);
      w "D.2" (E.slice ir ~hi:11 ~lo:8);
    ]
    @
    if lat >= 2 then
      [ w "A.2" ga; w "B.2" gb; w "opl.2" is_late ]
    else []
  in
  let stage1 = { Spec.index = 1; stage_name = "RD"; writes = stage1_writes } in
  let mid_stages =
    (* Stages 2 .. n-3 are pure pass-through (instance auto-shift). *)
    List.init (max 0 (lat - 2)) (fun i ->
        { Spec.index = 2 + i; stage_name = Printf.sprintf "P%d" (2 + i);
          writes = [] })
  in
  let late_stage =
    if lat >= 2 then
      [
        {
          Spec.index = lat;
          stage_name = "LT";
          writes =
            [
              (* The late unit: produce the xor for late operations,
                 pass the fast result through otherwise. *)
              w
                (inst "C" (lat + 1))
                (E.mux
                   (E.input (inst "opl" lat) 1)
                   (E.( ^: ) (E.input (inst "A" lat) 16) (E.input (inst "B" lat) 16))
                   (E.input (inst "C" lat) 16));
            ];
        };
      ]
    else []
  in
  let wb =
    {
      Spec.index = n - 1;
      stage_name = "WB";
      writes =
        [
          w
            ~addr:(E.input (inst "D" (n - 1)) 4)
            "REG"
            (E.input (inst "C" (n - 1)) 16);
        ];
    }
  in
  let stage1' =
    (* For n = 3 the late unit coincides with stage 1: resolve both ops
       there (no late hazard in the shallowest machine). *)
    if lat >= 2 then stage1
    else
      {
        stage1 with
        Spec.writes =
          [
            w "C.2" (E.mux is_late (E.( ^: ) ga gb) (E.( +: ) ga gb));
            w "D.2" (E.slice ir ~hi:11 ~lo:8);
          ];
      }
  in
  {
    Spec.machine_name = Printf.sprintf "elastic%d" n;
    n_stages = n;
    registers;
    stages = (stage0 :: stage1' :: mid_stages) @ late_stage @ [ wb ];
    init =
      [
        ( "IMEM",
          Machine.Value.file_of_list ~width:16 ~addr_bits:8
            (List.map (fun v -> Hw.Bitvec.make ~width:16 v) program) );
        ( "REG",
          Machine.Value.file_of_list ~width:16 ~addr_bits:4
            (List.init 5 (fun i -> Hw.Bitvec.make ~width:16 i)) );
      ];
  }

(* The program-dependent part of [machine]'s init (the IMEM contents):
   depth and register-file seeding are fixed per [n], so this is the
   [?init] override for batched checking over one compiled shape. *)
let image ~program =
  [
    ( "IMEM",
      Machine.Value.file_of_list ~width:16 ~addr_bits:8
        (List.map (fun v -> Hw.Bitvec.make ~width:16 v) program) );
  ]

let hints ~n =
  ignore n;
  [
    Pipeline.Fwd_spec.hint ~stage:1 ~label:"srcA" ~chain:"C.2"
      (Pipeline.Fwd_spec.File_port ("REG", 0));
    Pipeline.Fwd_spec.hint ~stage:1 ~label:"srcB" ~chain:"C.2"
      (Pipeline.Fwd_spec.File_port ("REG", 1));
  ]

let transform ?options ~n ~program () =
  Pipeline.Transform.run ?options ~hints:(hints ~n) (machine ~n ~program)

let chain_program ~late ~length =
  List.init length (fun i ->
      encode ~late ~dst:1 ~src1:1 ~src2:(2 + (i land 1)))

let independent_program ~length =
  List.init length (fun i ->
      encode ~late:false ~dst:(1 + (i mod 8)) ~src1:(9 + (i mod 4)) ~src2:13)
