(** A 3-stage "triadic add" machine, the smallest interesting input to
    the transformation tool.

    Every instruction is [dst src1 src2] packed into 16 bits and
    computes [REG[dst] := REG[src1] + REG[src2]].  Stage 0 fetches,
    stage 1 reads the two operands (the forwarded reads), stage 2
    writes the 16-entry register file.  Used by the quickstart, the
    exhaustive (BMC) checks and the test suite. *)

val encode : dst:int -> src1:int -> src2:int -> int
(** Fields are 4 bits each. *)

val machine : program:int list -> Machine.Spec.t
(** Registers r1 and r2 start as 1 and 2; everything else is zero. *)

val image : program:int list -> (string * Machine.Value.t) list
(** The program-dependent initial values only (the IMEM contents):
    the [?init] override that makes [machine ~program] out of any
    other program's machine of the same shape.  Feed to
    {!Proof_engine.Consistency.check_batched} /
    {!Proof_engine.Bmc.exhaustive}'s [load]. *)

val hints : Pipeline.Fwd_spec.hint list

val transform :
  ?options:Pipeline.Fwd_spec.options -> program:int list -> unit ->
  Pipeline.Transform.t

val default_program : int list
(** A 6-instruction dependent chain. *)
