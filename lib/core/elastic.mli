(** A depth-parametric prepared sequential machine.

    The paper's remark that the generated forwarding hardware "gets
    slow with larger pipelines" (§4.2) concerns machines with more
    stages between operand fetch and write-back.  This family makes the
    depth a parameter: an [n]-stage machine ([n ≥ 3]) with

    - stage 0: fetch ([IR.1 := IMEM[PC]], [PC := PC+1]);
    - stage 1: operand fetch + the {e fast} unit: [C.2 := A + B]
      (invalid for late operations);
    - stages 2 .. n-3: pass-through pipeline stages (the result and
      control shift along the [C] / [D] instance chains);
    - stage n-2: the {e late} unit: [C.(n-1) := A xor B] for late
      operations (emulating a multi-cycle functional unit), pass-through
      otherwise;
    - stage n-1: write-back into the 16-entry register file.

    The forwarding chain for the register-file operands is the full [C]
    instance chain, so the transformation synthesizes [n-2] forwarding
    sources and [n-3] valid bits per operand — the paper's "larger
    pipeline" in the flesh.  A dependent fast op never stalls; a
    dependent late op stalls until the producer reaches stage [n-2],
    the generalized load-use interlock.

    Instructions are 16 bits: [op(4) dst(4) src1(4) src2(4)] with
    [op = 0] fast (add) and [op = 1] late (xor). *)

val min_stages : int
(** 3. *)

val encode : late:bool -> dst:int -> src1:int -> src2:int -> int

val machine : n:int -> program:int list -> Machine.Spec.t
(** Registers r1..r4 start as 1..4.
    @raise Invalid_argument if [n < min_stages]. *)

val image : program:int list -> (string * Machine.Value.t) list
(** The program-dependent initial values only (the IMEM contents); the
    machine structure, depth and register-file seeding are fixed by
    [n], so this is the [?init] override for batched checking
    ({!Proof_engine.Bmc.exhaustive}'s [load],
    {!Proof_engine.Consistency.check_batched}). *)

val hints : n:int -> Pipeline.Fwd_spec.hint list

val transform :
  ?options:Pipeline.Fwd_spec.options -> n:int -> program:int list -> unit ->
  Pipeline.Transform.t

val chain_program : late:bool -> length:int -> int list
(** A fully dependent chain of [length] operations on r1 (fast or
    late): the stress input for depth sweeps. *)

val independent_program : length:int -> int list
(** Round-robin independent fast ops. *)
