(** The prepared sequential five-stage DLX (paper §4.2).

    Stages: 0 IF, 1 ID, 2 EX, 3 MEM, 4 WB.  The machine reads its two
    GPR operands in the decode stage; the result register [C] has
    pipelined instances [C.3] (written by EX) and [C.4] (written by
    MEM) which serve as the designated forwarding registers — the
    paper's [C:2]/[C:3] under its stage-of-residence naming.  The
    machine uses one branch delay slot, so instruction fetch needs no
    speculation: the fetch address is obtained by ordinary forwarding
    of the [DPC] register from the decode stage.

    Three variants:

    - {!Base} — the paper's case-study machine;
    - {!With_interrupts} — precise interrupts via speculation (§5):
      the machine speculates that no interrupt occurs; the truth is
      known in stage 4, where a misspeculation performs the JISR
      updates through the rollback mechanism;
    - {!Branch_predict} — fetch speculation (§5): the fetch stage
      predicts the next fetch address sequentially ([SPC := SPC + 4])
      instead of using the forwarded [DPC]; the comparison against the
      true address squashes a wrong fetch.  Architecturally identical
      to [Base]. *)

type variant =
  | Base
  | With_interrupts of { sisr : int }
  | Branch_predict

val mem_addr_bits : int
(** 12: both memories hold [2^12] words. *)

val machine :
  ?data:(int * int) list -> variant -> program:int list -> Machine.Spec.t
(** The prepared sequential machine with the program in instruction
    memory (word 0 onward) and optional data-memory initialization. *)

val hints : variant -> Pipeline.Fwd_spec.hint list
(** The designer input of §4.2: forwarding-register designations
    ([C.3] chain for both GPR operands) plus operand-usage gating. *)

val speculations : variant -> Pipeline.Fwd_spec.speculation list
(** Empty for [Base]; the no-interrupt speculation for
    [With_interrupts]; the next-fetch-address speculation for
    [Branch_predict]. *)

val image :
  ?data:(int * int) list -> program:int list -> unit ->
  (string * Machine.Value.t) list
(** The point-dependent initial values only — IMEM from [program] and
    MEM from [data], exactly as {!machine} initializes them.  The
    [?init] override that drives one compiled machine shape (fixed
    variant and options) across many programs in batched sweeps.
    Treat the result as read-only: consumers copy out of it
    ({!Machine.State.reset}), and the empty-[data] MEM table is one
    shared array. *)

val transform :
  ?options:Pipeline.Fwd_spec.options ->
  ?data:(int * int) list ->
  variant ->
  program:int list ->
  Pipeline.Transform.t
(** [machine] + [hints] + [speculations] + [Pipeline.Transform.run]. *)

val ref_trace :
  ?data:(int * int) list ->
  variant ->
  program:int list ->
  instructions:int ->
  Machine.Seqsem.trace
(** The specification trace [R_S^i] produced by the ISA golden model
    ({!Refmodel}), in the shape {!Proof_engine.Consistency} consumes.
    Required for the speculation variants, valid for all three. *)

val disasm :
  reference:Machine.Seqsem.trace -> program:int list -> int -> string option
(** Render instruction tag [i] of the reference run: the word the
    instruction's [DPC] addresses, decoded ({!Isa.to_string}).  Used
    to put disassembly into verification-failure evidence. *)

val visible_names : variant -> string list
