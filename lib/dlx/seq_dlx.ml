module Spec = Machine.Spec
module E = Hw.Expr

type variant =
  | Base
  | With_interrupts of { sisr : int }
  | Branch_predict

let mem_addr_bits = 12

(* ------------------------------------------------------------------ *)
(* Expression helpers                                                  *)
(* ------------------------------------------------------------------ *)

let c32 v = E.const_int ~width:32 v
let c6 v = E.const_int ~width:6 v
let ( &&: ) = E.( &&: )
let ( ||: ) = E.( ||: )
let ( ==: ) = E.( ==: )
let ( +: ) = E.( +: )

let widx addr = E.slice addr ~hi:(mem_addr_bits + 1) ~lo:2

let imem_read addr =
  E.File_read { file = "IMEM"; data_width = 32; addr = widx addr }

let mem_read addr =
  E.File_read { file = "MEM"; data_width = 32; addr = widx addr }

let gpr_read addr = E.File_read { file = "GPR"; data_width = 32; addr }

(* ------------------------------------------------------------------ *)
(* Decode (over IR.1)                                                  *)
(* ------------------------------------------------------------------ *)

let ir = E.input "IR.1" 32
let opcode = E.slice ir ~hi:31 ~lo:26
let func = E.slice ir ~hi:5 ~lo:0
let rs1_field = E.slice ir ~hi:25 ~lo:21
let rs2_field = E.slice ir ~hi:20 ~lo:16
let rd_r_field = E.slice ir ~hi:15 ~lo:11
let imm16 = E.slice ir ~hi:15 ~lo:0
let sext_imm = E.Sext (imm16, 32)
let zext_imm = E.Zext (imm16, 32)
let imm26 = E.Sext (E.slice ir ~hi:25 ~lo:0, 32)
let shamt = E.Zext (E.slice ir ~hi:4 ~lo:0, 32)
let is_op v = opcode ==: c6 v
let is_func v = func ==: c6 v
let is_rtype = is_op Isa.Op.rtype

let rtype_funcs =
  Isa.Func.[ add; sub; and_; or_; xor; sll; srl; sra; slt; sltu ]

let is_rtype_legal =
  is_rtype &&: List.fold_left (fun acc f -> acc ||: is_func f) E.fls rtype_funcs

let is_load =
  Isa.Op.(List.fold_left (fun acc o -> acc ||: is_op o) E.fls [ lw; lb; lbu; lh; lhu ])

let is_store = is_op Isa.Op.sw
let is_beqz = is_op Isa.Op.beqz
let is_bnez = is_op Isa.Op.bnez
let is_branch = is_beqz ||: is_bnez
let is_j = is_op Isa.Op.j
let is_jal = is_op Isa.Op.jal
let is_jr = is_op Isa.Op.jr
let is_jalr = is_op Isa.Op.jalr
let is_jump = is_j ||: is_jal ||: is_jr ||: is_jalr
let is_lhi = is_op Isa.Op.lhi
let is_trap = is_op Isa.Op.trap
let is_rfe = is_op Isa.Op.rfe

let is_itype_alu =
  Isa.Op.(
    List.fold_left
      (fun acc o -> acc ||: is_op o)
      E.fls
      [ addi; andi; ori; xori; slti; lhi; slli; srli; srai ])

let is_legal_insn =
  is_rtype_legal ||: is_itype_alu ||: is_load ||: is_store ||: is_branch
  ||: is_jump ||: is_trap ||: is_rfe

let is_illegal = E.not_ is_legal_insn
let writes_gpr = is_rtype_legal ||: is_itype_alu ||: is_load ||: is_jal ||: is_jalr

let dest =
  E.mux is_rtype rd_r_field
    (E.mux (is_jal ||: is_jalr) (E.const_int ~width:5 31) rs2_field)

let gpr_we_val = writes_gpr &&: E.( <>: ) dest (E.const_int ~width:5 0)

(* ALU operation encoding: 0 add, 1 sub, 2 and, 3 or, 4 xor, 5 sll,
   6 srl, 7 sra, 8 slt, 9 sltu, 10 lhi. *)
let alu_code v = E.const_int ~width:4 v

let alu_op_val =
  let rt f v = (is_rtype &&: is_func f, alu_code v) in
  let it o v = (is_op o, alu_code v) in
  E.mux_cases ~default:(alu_code 0)
    Isa.
      [
        rt Func.sub 1;
        rt Func.and_ 2;
        rt Func.or_ 3;
        rt Func.xor 4;
        rt Func.sll 5;
        rt Func.srl 6;
        rt Func.sra 7;
        rt Func.slt 8;
        rt Func.sltu 9;
        it Op.andi 2;
        it Op.ori 3;
        it Op.xori 4;
        it Op.slti 8;
        it Op.lhi 10;
        it Op.slli 5;
        it Op.srli 6;
        it Op.srai 7;
      ]

let imm_val =
  E.mux_cases ~default:sext_imm
    [
      (is_op Isa.Op.andi ||: is_op Isa.Op.ori ||: is_op Isa.Op.xori, zext_imm);
      (is_op Isa.Op.slli ||: is_op Isa.Op.srli ||: is_op Isa.Op.srai, shamt);
      (is_lhi, zext_imm);
    ]

let ls_size_val =
  E.mux_cases
    ~default:(E.const_int ~width:2 0)
    [
      (is_op Isa.Op.lb ||: is_op Isa.Op.lbu, E.const_int ~width:2 1);
      (is_op Isa.Op.lh ||: is_op Isa.Op.lhu, E.const_int ~width:2 2);
    ]

let ls_signed_val = is_op Isa.Op.lb ||: is_op Isa.Op.lh

(* Arithmetic instructions that can raise overflow: add, addi, sub. *)
let ovf_en_val =
  (is_rtype &&: (is_func Isa.Func.add ||: is_func Isa.Func.sub))
  ||: is_op Isa.Op.addi

(* ------------------------------------------------------------------ *)
(* The machine description                                             *)
(* ------------------------------------------------------------------ *)

let reg ?prev ?(visible = false) name width stage kind =
  {
    Spec.reg_name = name;
    width;
    stage;
    kind;
    visible;
    prev_instance = prev;
  }

let w ?guard ?addr dst value =
  { Spec.dst; value; guard; wr_addr = addr }

let pc = E.input "PC" 32
let dpc = E.input "DPC" 32

let machine ?(data = []) variant ~program =
  let with_intr = match variant with With_interrupts _ -> true | Base | Branch_predict -> false in
  let bp = variant = Branch_predict in
  let ga = gpr_read rs1_field in
  let gb = gpr_read rs2_field in
  (* Next-PC computation (decode).  Branch targets are relative to the
     branch's own address (DPC) + 4. *)
  let cond_taken =
    (is_beqz &&: (ga ==: c32 0)) ||: (is_bnez &&: E.( <>: ) ga (c32 0))
  in
  let taken = cond_taken ||: is_jump in
  let target =
    E.mux (is_jr ||: is_jalr) ga
      (E.mux (is_j ||: is_jal) (dpc +: c32 4 +: imm26) (dpc +: c32 4 +: sext_imm))
  in
  let next_pc = E.mux taken target (pc +: c32 4) in
  let pc_val =
    if with_intr then E.mux is_rfe (E.input "EPC" 32) next_pc else next_pc
  in
  let dpc_val =
    if with_intr then E.mux is_rfe (E.input "EDPC" 32) pc else pc
  in
  (* Execute. *)
  let a = E.input "A.2" 32 in
  let b2 = E.input "B.2" 32 in
  let bsel = E.mux (E.input "alu_src_imm.2" 1) (E.input "imm.2" 32) b2 in
  let aluop = E.input "alu_op.2" 4 in
  let alu_is v = aluop ==: alu_code v in
  let sh5 = E.slice bsel ~hi:4 ~lo:0 in
  let alu_result =
    E.mux_cases
      ~default:(a +: bsel)
      [
        (alu_is 1, E.( -: ) a bsel);
        (alu_is 2, E.Binop (E.And, a, bsel));
        (alu_is 3, E.Binop (E.Or, a, bsel));
        (alu_is 4, E.Binop (E.Xor, a, bsel));
        (alu_is 5, E.Binop (E.Shl, a, sh5));
        (alu_is 6, E.Binop (E.Shr, a, sh5));
        (alu_is 7, E.Binop (E.Sra, a, sh5));
        (alu_is 8, E.Zext (E.Binop (E.Lts, a, bsel), 32));
        (alu_is 9, E.Zext (E.Binop (E.Ltu, a, bsel), 32));
        (alu_is 10, E.Binop (E.Shl, bsel, E.const_int ~width:5 16));
      ]
  in
  let c3_val = E.mux (E.input "sel_link.2" 1) (E.input "link.2" 32) alu_result in
  let sign32 e = E.bit e 31 in
  let sum = a +: bsel in
  let diff = E.( -: ) a bsel in
  let ovf_val =
    let add_ovf =
      (sign32 a ==: sign32 bsel) &&: E.( <>: ) (sign32 sum) (sign32 a)
    in
    let sub_ovf =
      E.( <>: ) (sign32 a) (sign32 bsel) &&: E.( <>: ) (sign32 diff) (sign32 a)
    in
    E.input "ovf_en.2" 1 &&: E.mux (alu_is 1) sub_ovf add_ovf
  in
  (* Memory: shift4load aligner (figure 2). *)
  let mar = E.input "MAR.3" 32 in
  let mem_word = mem_read mar in
  let byte_shift = E.Concat (E.slice mar ~hi:1 ~lo:0, E.const_int ~width:3 0) in
  let half_shift = E.Concat (E.slice mar ~hi:1 ~lo:1, E.const_int ~width:4 0) in
  let byte_raw = E.slice (E.Binop (E.Shr, mem_word, byte_shift)) ~hi:7 ~lo:0 in
  let half_raw = E.slice (E.Binop (E.Shr, mem_word, half_shift)) ~hi:15 ~lo:0 in
  let lsg = E.input "ls_signed.3" 1 in
  let byte_val = E.mux lsg (E.Sext (byte_raw, 32)) (E.Zext (byte_raw, 32)) in
  let half_val = E.mux lsg (E.Sext (half_raw, 32)) (E.Zext (half_raw, 32)) in
  let size = E.input "ls_size.3" 2 in
  let shift4load =
    E.mux_cases ~default:mem_word
      [
        (size ==: E.const_int ~width:2 1, byte_val);
        (size ==: E.const_int ~width:2 2, half_val);
      ]
  in
  let c4_val = E.mux (E.input "is_load.3" 1) shift4load (E.input "C.3" 32) in
  (* Register declarations. *)
  let fetch_addr = if bp then E.input "SPC" 32 else dpc in
  let base_regs =
    [
      reg "IMEM" 32 0 (Spec.File { addr_bits = mem_addr_bits });
      reg "IR.1" 32 0 Spec.Simple;
      reg "PC" 32 1 ~visible:true Spec.Simple;
      reg "DPC" 32 1 ~visible:true Spec.Simple;
      reg "A.2" 32 1 Spec.Simple;
      reg "B.2" 32 1 Spec.Simple;
      reg "imm.2" 32 1 Spec.Simple;
      reg "link.2" 32 1 Spec.Simple;
      reg "alu_op.2" 4 1 Spec.Simple;
      reg "alu_src_imm.2" 1 1 Spec.Simple;
      reg "sel_link.2" 1 1 Spec.Simple;
      reg "is_load.2" 1 1 Spec.Simple;
      reg "is_store.2" 1 1 Spec.Simple;
      reg "ls_size.2" 2 1 Spec.Simple;
      reg "ls_signed.2" 1 1 Spec.Simple;
      reg "gpr_we.2" 1 1 Spec.Simple;
      reg "gpr_wa.2" 5 1 Spec.Simple;
      reg "C.3" 32 2 Spec.Simple;
      reg "MAR.3" 32 2 Spec.Simple;
      reg "smdr.3" 32 2 Spec.Simple;
      reg ~prev:"is_load.2" "is_load.3" 1 2 Spec.Simple;
      reg ~prev:"is_store.2" "is_store.3" 1 2 Spec.Simple;
      reg ~prev:"ls_size.2" "ls_size.3" 2 2 Spec.Simple;
      reg ~prev:"ls_signed.2" "ls_signed.3" 1 2 Spec.Simple;
      reg ~prev:"gpr_we.2" "gpr_we.3" 1 2 Spec.Simple;
      reg ~prev:"gpr_wa.2" "gpr_wa.3" 5 2 Spec.Simple;
      reg ~prev:"C.3" "C.4" 32 3 Spec.Simple;
      reg ~prev:"gpr_we.3" "gpr_we.4" 1 3 Spec.Simple;
      reg ~prev:"gpr_wa.3" "gpr_wa.4" 5 3 Spec.Simple;
      reg "MEM" 32 3 ~visible:true (Spec.File { addr_bits = mem_addr_bits });
      reg "GPR" 32 4 ~visible:true (Spec.File { addr_bits = 5 });
    ]
  in
  let bp_regs = if bp then [ reg "SPC" 32 0 Spec.Simple ] else [] in
  let intr_regs =
    if with_intr then
      [
        reg "pcp.2" 32 1 Spec.Simple;
        reg "intr_id.2" 1 1 Spec.Simple;
        reg "cause_id.2" 6 1 Spec.Simple;
        reg "ovf_en.2" 1 1 Spec.Simple;
        reg "is_rfe.2" 1 1 Spec.Simple;
        reg ~prev:"pcp.2" "pcp.3" 32 2 Spec.Simple;
        reg ~prev:"intr_id.2" "intr_id.3" 1 2 Spec.Simple;
        reg ~prev:"cause_id.2" "cause_id.3" 6 2 Spec.Simple;
        reg ~prev:"is_rfe.2" "is_rfe.3" 1 2 Spec.Simple;
        reg "ovf.3" 1 2 Spec.Simple;
        reg ~prev:"pcp.3" "pcp.4" 32 3 Spec.Simple;
        reg ~prev:"intr_id.3" "intr_id.4" 1 3 Spec.Simple;
        reg ~prev:"cause_id.3" "cause_id.4" 6 3 Spec.Simple;
        reg ~prev:"is_rfe.3" "is_rfe.4" 1 3 Spec.Simple;
        reg ~prev:"ovf.3" "ovf.4" 1 3 Spec.Simple;
        reg "SR" 1 4 ~visible:true Spec.Simple;
        reg "EPC" 32 4 ~visible:true Spec.Simple;
        reg "EDPC" 32 4 ~visible:true Spec.Simple;
        reg "ECA" 32 4 ~visible:true Spec.Simple;
      ]
    else []
  in
  (* The ovf_en.2 control must exist whenever ovf.3 reads it. *)
  let stage0 =
    {
      Spec.index = 0;
      stage_name = "IF";
      writes =
        (w "IR.1" (imem_read fetch_addr)
        :: (if bp then [ w "SPC" (E.input "SPC" 32 +: c32 4) ] else []));
    }
  in
  let stage1 =
    {
      Spec.index = 1;
      stage_name = "ID";
      writes =
        [
          w "A.2" ga;
          w "B.2" gb;
          w "PC" pc_val;
          w "DPC" dpc_val;
          w "imm.2" imm_val;
          w "link.2" (pc +: c32 4);
          w "alu_op.2" alu_op_val;
          w "alu_src_imm.2" is_itype_alu;
          w "sel_link.2" (is_jal ||: is_jalr);
          w "is_load.2" is_load;
          w "is_store.2" is_store;
          w "ls_size.2" ls_size_val;
          w "ls_signed.2" ls_signed_val;
          w "gpr_we.2" gpr_we_val;
          w "gpr_wa.2" dest;
        ]
        @ (if with_intr then
             [
               w "pcp.2" pc;
               w "intr_id.2" (is_illegal ||: is_trap);
               w "cause_id.2"
                 (E.mux is_illegal (c6 1)
                    (E.Binop (E.Or, c6 0x20, E.slice ir ~hi:5 ~lo:0)));
               w "ovf_en.2" ovf_en_val;
               w "is_rfe.2" is_rfe;
             ]
           else []);
    }
  in
  let stage2 =
    {
      Spec.index = 2;
      stage_name = "EX";
      writes =
        [
          w ~guard:(E.not_ (E.input "is_load.2" 1)) "C.3" c3_val;
          w "MAR.3" (a +: E.input "imm.2" 32);
          w "smdr.3" b2;
        ]
        @ (if with_intr then [ w "ovf.3" ovf_val ] else []);
    }
  in
  let stage3 =
    {
      Spec.index = 3;
      stage_name = "MEM";
      writes =
        [
          w "C.4" c4_val;
          w
            ~guard:(E.input "is_store.3" 1)
            ~addr:(widx mar) "MEM" (E.input "smdr.3" 32);
        ];
    }
  in
  let stage4 =
    {
      Spec.index = 4;
      stage_name = "WB";
      writes =
        [
          w
            ~guard:(E.input "gpr_we.4" 1)
            ~addr:(E.input "gpr_wa.4" 5)
            "GPR" (E.input "C.4" 32);
        ]
        @ (if with_intr then
             [ w ~guard:(E.input "is_rfe.4" 1) "SR" E.tru ]
           else []);
    }
  in
  let imem_init =
    Machine.Value.file_of_list ~width:32 ~addr_bits:mem_addr_bits
      (List.map (fun v -> Hw.Bitvec.make ~width:32 v) program)
  in
  let mem_init =
    let arr = Array.make (1 lsl mem_addr_bits) (Hw.Bitvec.zero 32) in
    List.iter
      (fun (i, v) ->
        arr.(i land ((1 lsl mem_addr_bits) - 1)) <- Hw.Bitvec.make ~width:32 v)
      data;
    Machine.Value.File arr
  in
  {
    Spec.machine_name =
      (match variant with
      | Base -> "dlx5"
      | With_interrupts _ -> "dlx5_intr"
      | Branch_predict -> "dlx5_bp");
    n_stages = 5;
    registers = base_regs @ bp_regs @ intr_regs;
    stages = [ stage0; stage1; stage2; stage3; stage4 ];
    init =
      [
        ("IMEM", imem_init);
        ("MEM", mem_init);
        ("PC", Machine.Value.scalar (Hw.Bitvec.make ~width:32 4));
        ("DPC", Machine.Value.scalar (Hw.Bitvec.make ~width:32 0));
      ]
      @ (if with_intr then
           [ ("SR", Machine.Value.scalar (Hw.Bitvec.one 1)) ]
         else [])
      @
      if bp then [ ("SPC", Machine.Value.scalar (Hw.Bitvec.make ~width:32 0)) ]
      else [];
  }

(* ------------------------------------------------------------------ *)
(* Designer input: forwarding hints and speculations                   *)
(* ------------------------------------------------------------------ *)

let reads_gpr_a = E.not_ (is_j ||: is_jal ||: is_lhi ||: is_trap ||: is_rfe)
let reads_gpr_b = is_rtype ||: is_store

let hints variant =
  let gpr_hints =
    [
      Pipeline.Fwd_spec.hint ~stage:1 ~label:"GPRa" ~chain:"C.3"
        ~needed:reads_gpr_a
        (Pipeline.Fwd_spec.File_port ("GPR", 0));
      Pipeline.Fwd_spec.hint ~stage:1 ~label:"GPRb" ~chain:"C.3"
        ~needed:reads_gpr_b
        (Pipeline.Fwd_spec.File_port ("GPR", 1));
    ]
  in
  match variant with
  | Base | Branch_predict -> gpr_hints
  | With_interrupts _ ->
    gpr_hints
    @ [
        Pipeline.Fwd_spec.hint ~stage:1 ~needed:is_rfe
          (Pipeline.Fwd_spec.Reg "EPC");
        Pipeline.Fwd_spec.hint ~stage:1 ~needed:is_rfe
          (Pipeline.Fwd_spec.Reg "EDPC");
      ]

let speculations variant =
  match variant with
  | Base -> []
  | With_interrupts { sisr } ->
    [
      {
        Pipeline.Fwd_spec.spec_label = "no_interrupt";
        resolve_stage = 4;
        mispredict =
          E.input "SR" 1
          &&: (E.input "intr_id.4" 1 ||: E.input "ovf.4" 1);
        rollback_writes =
          [
            (* "Continue" semantics: RFE resumes at the faulter's
               successor. *)
            w "EPC" (E.input "pcp.4" 32 +: c32 4);
            w "EDPC" (E.input "pcp.4" 32);
            w "ECA"
              (E.mux (E.input "intr_id.4" 1)
                 (E.Zext (E.input "cause_id.4" 6, 32))
                 (c32 2));
            w "SR" E.fls;
            w "PC" (c32 (sisr + 4));
            w "DPC" (c32 sisr);
          ];
        retires = true;
      };
    ]
  | Branch_predict ->
    [
      {
        Pipeline.Fwd_spec.spec_label = "next_fetch_addr";
        resolve_stage = 0;
        mispredict = E.( <>: ) (E.input "SPC" 32) dpc;
        rollback_writes = [ w "SPC" dpc ];
        retires = false;
      };
    ]

(* The point-dependent part of [machine]'s init — IMEM (the program)
   and MEM (the data image).  Everything else (PC/DPC/SR/SPC and the
   machine structure) depends only on the variant, so sweeps compile
   one shape per variant and rebind these per point. *)
(* The all-zero MEM table, shared by every empty-[data] image: images
   are read-only initial values ([State.reset] copies out of them), so
   one 4096-entry array serves the whole batched sweep instead of
   being reallocated per program.  Eager, not [lazy] — [image] runs on
   pool workers and OCaml lazy is not domain-safe. *)
let zero_mem =
  Machine.Value.File (Array.make (1 lsl mem_addr_bits) (Hw.Bitvec.zero 32))

(* Per-domain IMEM memo: an exhaustive sweep asks for the same few
   dozen programs on every query, and downstream reset paths skip
   refill work when they see the {e same physical} image array again
   ([State.reset]'s pointer-equal entry skip, [State.reset_lanes]'s
   per-lane source tracking).  Like [zero_mem], cached images are
   read-only by convention.  Per-domain (not global) so no locking is
   needed and pointer stability lands where the per-domain session
   caches live.  Bounded: wiped when it outgrows a sweep's alphabet. *)
let imem_memo : (int list, Machine.Value.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let imem_of_program program =
  let memo = Domain.DLS.get imem_memo in
  match Hashtbl.find_opt memo program with
  | Some v -> v
  | None ->
    let v =
      Machine.Value.file_of_list ~width:32 ~addr_bits:mem_addr_bits
        (List.map (fun v -> Hw.Bitvec.make ~width:32 v) program)
    in
    if Hashtbl.length memo >= 512 then Hashtbl.reset memo;
    Hashtbl.add memo program v;
    v

let image ?(data = []) ~program () =
  let imem = imem_of_program program in
  let mem =
    match data with
    | [] -> zero_mem
    | data ->
      let arr = Array.make (1 lsl mem_addr_bits) (Hw.Bitvec.zero 32) in
      List.iter
        (fun (i, v) ->
          arr.(i land ((1 lsl mem_addr_bits) - 1)) <- Hw.Bitvec.make ~width:32 v)
        data;
      Machine.Value.File arr
  in
  [ ("IMEM", imem); ("MEM", mem) ]

let transform ?options ?data variant ~program =
  Pipeline.Transform.run ?options ~hints:(hints variant)
    ~speculations:(speculations variant)
    (machine ?data variant ~program)

(* ------------------------------------------------------------------ *)
(* Specification trace from the golden model                           *)
(* ------------------------------------------------------------------ *)

let visible_names variant =
  match variant with
  | Base | Branch_predict -> [ "DPC"; "GPR"; "MEM"; "PC" ]
  | With_interrupts _ ->
    [ "DPC"; "ECA"; "EDPC"; "EPC"; "GPR"; "MEM"; "PC"; "SR" ]

let snapshot_of_ref variant (s : Refmodel.state) =
  let bv32 v = Hw.Bitvec.make ~width:32 v in
  let file arr =
    Machine.Value.File (Array.map bv32 arr)
  in
  let base =
    [
      ("DPC", Machine.Value.scalar (bv32 s.Refmodel.dpc));
      ("GPR", file s.Refmodel.gpr);
      ("MEM", file s.Refmodel.mem);
      ("PC", Machine.Value.scalar (bv32 s.Refmodel.pc));
    ]
  in
  match variant with
  | Base | Branch_predict -> base
  | With_interrupts _ ->
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (base
      @ [
          ("SR", Machine.Value.scalar (Hw.Bitvec.make ~width:1 s.Refmodel.sr));
          ("EPC", Machine.Value.scalar (bv32 s.Refmodel.epc));
          ("EDPC", Machine.Value.scalar (bv32 s.Refmodel.edpc));
          ("ECA", Machine.Value.scalar (bv32 s.Refmodel.eca));
        ])

let ref_trace ?(data = []) variant ~program ~instructions =
  let config =
    match variant with
    | With_interrupts { sisr } -> { Refmodel.with_interrupts = true; sisr }
    | Base | Branch_predict -> Refmodel.default_config
  in
  let s = Refmodel.create ~data ~program () in
  let snaps = Array.make (instructions + 1) [] in
  for i = 0 to instructions - 1 do
    snaps.(i) <- snapshot_of_ref variant s;
    Refmodel.step ~config s
  done;
  snaps.(instructions) <- snapshot_of_ref variant s;
  { Machine.Seqsem.spec_before = snaps; instructions; halted = false }

let disasm ~(reference : Machine.Seqsem.trace) ~program tag =
  let snaps = reference.Machine.Seqsem.spec_before in
  if tag < 0 || tag >= Array.length snaps then None
  else
    match List.assoc_opt "DPC" snaps.(tag) with
    | Some (Machine.Value.Scalar pc) -> (
      match List.nth_opt program (Hw.Bitvec.to_int pc lsr 2) with
      | Some word -> Option.map Isa.to_string (Isa.decode word)
      | None -> None)
    | Some (Machine.Value.File _) | None -> None
