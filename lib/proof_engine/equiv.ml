module E = Hw.Expr
module B = Hw.Bdd

type counterexample = {
  cex_inputs : (string * int) list;
  cex_left : Hw.Bitvec.t;
  cex_right : Hw.Bitvec.t;
}

type result =
  | Equivalent of { variables : int; bdd_nodes : int }
  | Different of counterexample
  | Width_mismatch of int * int

type ctx = {
  man : B.man;
  resolve_input : string -> int -> B.t array;
  resolve_file : string -> B.t array -> int -> B.t array;
}

let input_vector ctx name width = ctx.resolve_input name width

(* Ripple-carry addition with an initial carry. *)
let add_vec ctx ?(carry = B.fls) a b =
  let m = ctx.man in
  let w = Array.length a in
  let out = Array.make w B.fls in
  let c = ref carry in
  for i = 0 to w - 1 do
    let axb = B.xor m a.(i) b.(i) in
    out.(i) <- B.xor m axb !c;
    c := B.disj m (B.conj m a.(i) b.(i)) (B.conj m axb !c)
  done;
  (out, !c)

let not_vec ctx a = Array.map (B.neg ctx.man) a

let const_vec v =
  Array.init (Hw.Bitvec.width v) (fun i ->
      if Hw.Bitvec.bit v i then B.tru else B.fls)

let mux_vec ctx s a b = Array.mapi (fun i ai -> B.ite ctx.man s ai b.(i)) a

(* Shift by a constant amount, saturating. *)
let shift_const ctx dir a k =
  let w = Array.length a in
  let fill =
    match dir with `Left | `Right_logical -> B.fls | `Right_arith -> a.(w - 1)
  in
  ignore ctx;
  Array.init w (fun i ->
      match dir with
      | `Left -> if i - k >= 0 then a.(i - k) else B.fls
      | `Right_logical | `Right_arith ->
        if i + k < w then a.(i + k) else fill)

let rec blast ctx e =
  let m = ctx.man in
  match e with
  | E.Const v -> const_vec v
  | E.Input (n, w) -> input_vector ctx n w
  | E.Unop (E.Not, a) -> not_vec ctx (blast ctx a)
  | E.Unop (E.Neg, a) ->
    fst (add_vec ctx ~carry:B.tru (not_vec ctx (blast ctx a))
           (Array.make (E.width a) B.fls))
  | E.Unop (E.Reduce_or, a) ->
    [| Array.fold_left (B.disj m) B.fls (blast ctx a) |]
  | E.Unop (E.Reduce_and, a) ->
    [| Array.fold_left (B.conj m) B.tru (blast ctx a) |]
  | E.Binop (op, a, b) -> blast_binop ctx op a b
  | E.Mux (s, a, b) ->
    let sv = (blast ctx s).(0) in
    mux_vec ctx sv (blast ctx a) (blast ctx b)
  | E.Concat (hi, lo) -> Array.append (blast ctx lo) (blast ctx hi)
  | E.Slice (a, hi, lo) -> Array.sub (blast ctx a) lo (hi - lo + 1)
  | E.Zext (a, w) ->
    let av = blast ctx a in
    Array.init w (fun i -> if i < Array.length av then av.(i) else B.fls)
  | E.Sext (a, w) ->
    let av = blast ctx a in
    let top = av.(Array.length av - 1) in
    Array.init w (fun i -> if i < Array.length av then av.(i) else top)
  | E.File_read { file; data_width; addr } ->
    ctx.resolve_file file (blast ctx addr) data_width

and blast_binop ctx op a b =
  let m = ctx.man in
  let av () = blast ctx a and bv () = blast ctx b in
  let map2 f = Array.map2 f (av ()) (bv ()) in
  let ltu a b =
    (* a < b iff no carry out of a + ~b + 1. *)
    let _, cout = add_vec ctx ~carry:B.tru a (not_vec ctx b) in
    B.neg m cout
  in
  match op with
  | E.And -> map2 (B.conj m)
  | E.Or -> map2 (B.disj m)
  | E.Xor -> map2 (B.xor m)
  | E.Add -> fst (add_vec ctx (av ()) (bv ()))
  | E.Sub -> fst (add_vec ctx ~carry:B.tru (av ()) (not_vec ctx (bv ())))
  | E.Mul ->
    let x = av () and y = bv () in
    let w = Array.length x in
    let acc = ref (Array.make w B.fls) in
    for i = 0 to w - 1 do
      let addend =
        Array.init w (fun j ->
            if j - i >= 0 then B.conj m y.(i) x.(j - i) else B.fls)
      in
      acc := fst (add_vec ctx !acc addend)
    done;
    !acc
  | E.Eq ->
    [| Array.fold_left (B.conj m) B.tru (map2 (B.xnor m)) |]
  | E.Ne ->
    [| B.neg m (Array.fold_left (B.conj m) B.tru (map2 (B.xnor m))) |]
  | E.Ltu -> [| ltu (av ()) (bv ()) |]
  | E.Lts ->
    let x = av () and y = bv () in
    let w = Array.length x in
    let sa = x.(w - 1) and sb = y.(w - 1) in
    (* sa=1, sb=0 -> true; same sign -> unsigned compare. *)
    [|
      B.disj m
        (B.conj m sa (B.neg m sb))
        (B.conj m (B.xnor m sa sb) (ltu x y));
    |]
  | E.Shl | E.Shr | E.Sra ->
    let dir =
      match op with
      | E.Shl -> `Left
      | E.Shr -> `Right_logical
      | E.Sra | E.Add | E.Sub | E.Mul | E.And | E.Or | E.Xor | E.Eq | E.Ne
      | E.Ltu | E.Lts -> `Right_arith
    in
    let x = av () and amt = bv () in
    let w = Array.length x in
    let cur = ref x in
    Array.iteri
      (fun j bit ->
        let k = if j >= 30 then w else min w (1 lsl j) in
        cur := mux_vec ctx bit (shift_const ctx dir !cur k) !cur)
      amt;
    !cur

(* The default leaf resolvers: each named input gets fresh variables,
   each distinct (file, address-vector) read gets a fresh vector. *)
type free_ctx = {
  fctx : ctx;
  mutable next_var : int;
  inputs : (string, int * int) Hashtbl.t;
  file_reads : (string * B.t list, B.t array) Hashtbl.t;
}

let new_ctx () =
  let man = B.manager () in
  let rec fc =
    lazy
      {
        fctx =
          {
            man;
            resolve_input =
              (fun name width ->
                let c = Lazy.force fc in
                match Hashtbl.find_opt c.inputs name with
                | Some (base, w) ->
                  if w <> width then
                    failwith
                      (Printf.sprintf
                         "Equiv: input %s used at widths %d and %d" name w
                         width)
                  else Array.init width (fun i -> B.var man (base + i))
                | None ->
                  let base = c.next_var in
                  c.next_var <- base + width;
                  Hashtbl.replace c.inputs name (base, width);
                  Array.init width (fun i -> B.var man (base + i)));
            resolve_file =
              (fun file av data_width ->
                let c = Lazy.force fc in
                let key = (file, Array.to_list av) in
                match Hashtbl.find_opt c.file_reads key with
                | Some v -> v
                | None ->
                  let base = c.next_var in
                  c.next_var <- base + data_width;
                  let v =
                    Array.init data_width (fun i -> B.var man (base + i))
                  in
                  Hashtbl.replace c.file_reads key v;
                  v);
          };
        next_var = 0;
        inputs = Hashtbl.create 16;
        file_reads = Hashtbl.create 16;
      }
  in
  Lazy.force fc

let value_of_assignment man assign vec =
  let w = Array.length vec in
  Hw.Bitvec.make ~width:w
    (Array.to_list vec
    |> List.mapi (fun i b -> if B.eval man b assign then 1 lsl i else 0)
    |> List.fold_left ( lor ) 0)

let check left right =
  Obs.Span.with_span "verify.equiv" @@ fun () ->
  let wl = E.width left and wr = E.width right in
  if wl <> wr then Width_mismatch (wl, wr)
  else
    let c = new_ctx () in
    let ctx = c.fctx in
    let lv = blast ctx left and rv = blast ctx right in
    let diff =
      Array.map2 (B.xor ctx.man) lv rv
      |> Array.fold_left (B.disj ctx.man) B.fls
    in
    if B.is_fls diff then
      Equivalent
        { variables = c.next_var; bdd_nodes = B.node_count ctx.man }
    else
      let sat = Option.get (B.any_sat ctx.man diff) in
      let assign v = List.assoc_opt v sat = Some true in
      let cex_inputs =
        Hashtbl.fold
          (fun name (base, w) acc ->
            let value =
              List.init w (fun i -> if assign (base + i) then 1 lsl i else 0)
              |> List.fold_left ( lor ) 0
            in
            (name, value) :: acc)
          c.inputs []
        |> List.sort compare
      in
      Different
        {
          cex_inputs;
          cex_left = value_of_assignment ctx.man assign lv;
          cex_right = value_of_assignment ctx.man assign rv;
        }

let tautology e =
  if E.width e <> 1 then invalid_arg "Equiv.tautology: not 1-bit";
  let c = new_ctx () in
  B.is_tru (blast c.fctx e).(0)

module Blast = struct
  type nonrec ctx = ctx

  let create man ~resolve_input ~resolve_file =
    { man; resolve_input; resolve_file }

  let expr = blast
end

let pp_result ppf = function
  | Equivalent { variables; bdd_nodes } ->
    Format.fprintf ppf "equivalent (%d variables, %d BDD nodes)" variables
      bdd_nodes
  | Width_mismatch (a, b) -> Format.fprintf ppf "width mismatch: %d vs %d" a b
  | Different c ->
    Format.fprintf ppf "DIFFER at {%s}: left %a, right %a"
      (String.concat ", "
         (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) c.cex_inputs))
      Hw.Bitvec.pp c.cex_left Hw.Bitvec.pp c.cex_right

let check_exn left right =
  match check left right with
  | Equivalent _ -> ()
  | other -> failwith (Format.asprintf "%a" pp_result other)
