module Spec = Machine.Spec
module E = Hw.Expr

type params = {
  n_stages : int;
  data_width : int;
  addr_bits : int;
  late_stage : int option;
  has_accumulator : bool;
  seed : int;
}

(* Deterministic xorshift, as in Workload.Gen but independent. *)
type rng = { mutable s : int }

let rng_make seed = { s = (seed * 0x9E3779B1) lor 1 }

let rng_bits r =
  let s = r.s in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  r.s <- s land max_int;
  r.s

let rng_int r n = if n <= 0 then 0 else rng_bits r mod n
let rng_bool r = rng_bits r land 1 = 1

let sample_params ~seed =
  let rng = rng_make seed in
  let n_stages = 3 + rng_int rng 4 in
  let late_stage =
    if n_stages >= 4 && rng_bool rng then Some (2 + rng_int rng (n_stages - 3))
    else None
  in
  {
    n_stages;
    data_width = [| 8; 12; 16 |].(rng_int rng 3);
    addr_bits = 2 + rng_int rng 3;
    late_stage;
    has_accumulator = rng_bool rng;
    seed;
  }

let pp_params ppf p =
  Format.fprintf ppf
    "machine(seed=%d): %d stages, %d-bit data, 2^%d registers, late unit %s, \
     accumulator %b"
    p.seed p.n_stages p.data_width p.addr_bits
    (match p.late_stage with None -> "none" | Some l -> string_of_int l)
    p.has_accumulator

(* Instruction fields: [15] late, [3a-1:2a] dst, [2a-1:a] src1,
   [a-1:0] src2. *)
let encode p ~late ~dst ~src1 ~src2 =
  let a = p.addr_bits in
  let mask = (1 lsl a) - 1 in
  ((if late then 1 else 0) lsl 15)
  lor ((dst land mask) lsl (2 * a))
  lor ((src1 land mask) lsl a)
  lor (src2 land mask)

let inst name k = Printf.sprintf "%s.%d" name k

(* A random combinational expression of the data width over the two
   operands and an instruction-derived immediate. *)
let random_expr rng ~width ~a ~b ~ir =
  let imm =
    let bits = min width 8 in
    let sl = E.slice ir ~hi:(bits - 1) ~lo:0 in
    if width = bits then sl else E.Zext (sl, width)
  in
  let leaf () =
    match rng_int rng 3 with 0 -> a | 1 -> b | _ -> imm
  in
  let rec go depth =
    if depth = 0 then leaf ()
    else
      match rng_int rng 6 with
      | 0 -> E.( +: ) (go (depth - 1)) (go (depth - 1))
      | 1 -> E.( -: ) (go (depth - 1)) (go (depth - 1))
      | 2 -> E.Binop (E.And, go (depth - 1), go (depth - 1))
      | 3 -> E.Binop (E.Or, go (depth - 1), go (depth - 1))
      | 4 -> E.( ^: ) (go (depth - 1)) (go (depth - 1))
      | _ -> E.Mux (E.bit ir 14, go (depth - 1), go (depth - 1))
  in
  go (1 + rng_int rng 2)

let reg ?prev ?(visible = false) name width stage kind =
  { Spec.reg_name = name; width; stage; kind; visible; prev_instance = prev }

let w_ ?guard ?addr dst value = { Spec.dst; value; guard; wr_addr = addr }

let machine p ~program =
  let rng = rng_make (p.seed lxor 0xABCD) in
  let n = p.n_stages in
  let wd = p.data_width in
  let a = p.addr_bits in
  let ir = E.input "IR.1" 16 in
  let is_late = E.bit ir 15 in
  let ga =
    E.File_read
      { file = "RF"; data_width = wd;
        addr = E.slice ir ~hi:((2 * a) - 1) ~lo:a }
  in
  let gb =
    E.File_read
      { file = "RF"; data_width = wd; addr = E.slice ir ~hi:(a - 1) ~lo:0 }
  in
  let dest = E.slice ir ~hi:((3 * a) - 1) ~lo:(2 * a) in
  let fast_expr = random_expr rng ~width:wd ~a:ga ~b:gb ~ir in
  let chain name width ~first ~last =
    if last < first then []
    else
      List.init (last - first + 1) (fun i ->
          let k = first + i in
          let prev = if k = first then None else Some (inst name (k - 1)) in
          reg ?prev (inst name k) width (k - 1) Spec.Simple)
  in
  let late = p.late_stage in
  let registers =
    [
      reg "PC" 8 0 ~visible:true Spec.Simple;
      reg "IMEM" 16 0 (Spec.File { addr_bits = 8 });
      reg "IR.1" 16 0 Spec.Simple;
      reg "RF" wd (n - 1) ~visible:true (Spec.File { addr_bits = a });
    ]
    @ chain "C" wd ~first:2 ~last:(n - 1)
    @ chain "D" a ~first:2 ~last:(n - 1)
    @ (match late with
      | None -> []
      | Some l ->
        chain "A" wd ~first:2 ~last:l
        @ chain "B" wd ~first:2 ~last:l
        @ chain "opl" 1 ~first:2 ~last:l)
    @
    if p.has_accumulator then [ reg "ACC" wd (n - 1) ~visible:true Spec.Simple ]
    else []
  in
  let stage0 =
    {
      Spec.index = 0;
      stage_name = "IF";
      writes =
        [
          w_ "IR.1"
            (E.File_read
               { file = "IMEM"; data_width = 16; addr = E.input "PC" 8 });
          w_ "PC" (E.( +: ) (E.input "PC" 8) (E.const_int ~width:8 1));
        ];
    }
  in
  let stage1 =
    {
      Spec.index = 1;
      stage_name = "RD";
      writes =
        (match late with
        | None -> [ w_ "C.2" fast_expr ]
        | Some _ ->
          [
            w_ ~guard:(E.not_ is_late) "C.2" fast_expr;
            w_ "A.2" ga;
            w_ "B.2" gb;
            w_ "opl.2" is_late;
          ])
        @ [ w_ "D.2" dest ];
    }
  in
  let mids =
    List.init (n - 3) (fun i ->
        let k = 2 + i in
        let writes =
          match late with
          | Some l when l = k ->
            let la = E.input (inst "A" l) wd
            and lb = E.input (inst "B" l) wd in
            let late_expr = random_expr rng ~width:wd ~a:la ~b:lb ~ir:(E.Zext (E.input (inst "opl" l) 1, 16)) in
            [
              w_
                (inst "C" (l + 1))
                (E.mux (E.input (inst "opl" l) 1) late_expr
                   (E.input (inst "C" l) wd));
            ]
          | Some _ | None -> []
        in
        { Spec.index = k; stage_name = Printf.sprintf "S%d" k; writes })
  in
  let wb =
    {
      Spec.index = n - 1;
      stage_name = "WB";
      writes =
        w_
          ~addr:(E.input (inst "D" (n - 1)) a)
          "RF"
          (E.input (inst "C" (n - 1)) wd)
        ::
        (if p.has_accumulator then
           [
             w_ "ACC"
               (E.( ^: ) (E.input "ACC" wd) (E.input (inst "C" (n - 1)) wd));
           ]
         else []);
    }
  in
  {
    Spec.machine_name = Printf.sprintf "gen_%d" p.seed;
    n_stages = n;
    registers;
    stages = (stage0 :: stage1 :: mids) @ [ wb ];
    init =
      [
        ( "IMEM",
          Machine.Value.file_of_list ~width:16 ~addr_bits:8
            (List.map (fun v -> Hw.Bitvec.make ~width:16 v) program) );
        ( "RF",
          Machine.Value.file_of_list ~width:wd ~addr_bits:a
            (List.init (1 lsl a) (fun i ->
                 Hw.Bitvec.make ~width:wd ((i * 3) + 1))) );
      ];
  }

(* Everything in [machine] except the IMEM contents — structure,
   random expressions (seeded by [p.seed] only) and the RF preload —
   is independent of [program], so this override turns one compiled
   shape into any program's machine. *)
let image (_p : params) ~program =
  [
    ( "IMEM",
      Machine.Value.file_of_list ~width:16 ~addr_bits:8
        (List.map (fun v -> Hw.Bitvec.make ~width:16 v) program) );
  ]

let hints p =
  ignore p;
  [
    Pipeline.Fwd_spec.hint ~stage:1 ~label:"opA" ~chain:"C.2"
      (Pipeline.Fwd_spec.File_port ("RF", 0));
    Pipeline.Fwd_spec.hint ~stage:1 ~label:"opB" ~chain:"C.2"
      (Pipeline.Fwd_spec.File_port ("RF", 1));
  ]

let random_program p ~length =
  let rng = rng_make (p.seed lxor 0x1234) in
  let regs = 1 lsl p.addr_bits in
  let last = ref 1 in
  List.init length (fun _ ->
      let pick () = if rng_bool rng then !last else rng_int rng regs in
      let src1 = pick () and src2 = pick () in
      let dst = rng_int rng regs in
      last := dst;
      encode p ~late:(rng_int rng 4 = 0) ~dst ~src1 ~src2)

let check_one ~seed ~program_length =
  let p = sample_params ~seed in
  let program = random_program p ~length:program_length in
  match
    Pipeline.Transform.run ~hints:(hints p) (machine p ~program)
  with
  | exception e ->
    Error
      (Format.asprintf "%a: transform raised %s" pp_params p
         (Printexc.to_string e))
  | tr -> (
    let report = Consistency.check ~max_instructions:program_length tr in
    if Consistency.ok report then Ok ()
    else
      Error
        (Format.asprintf "%a: %a" pp_params p Consistency.pp_report report))

let check_many ?pool ?(program_length = 30) seeds =
  Exec.Pool.map_opt pool
    (fun seed -> (seed, check_one ~seed ~program_length))
    seeds
