module Spec = Machine.Spec
module Transform = Pipeline.Transform

type method_ =
  | Trace_invariant
  | Cosimulation
  | By_construction

type status =
  | Pending
  | Discharged of string
  | Failed of string

type obligation = {
  ob_id : string;
  ob_title : string;
  ob_statement : string;
  ob_method : method_;
  mutable ob_status : status;
}

let ob id title statement method_ =
  {
    ob_id = id;
    ob_title = title;
    ob_statement = statement;
    ob_method = method_;
    ob_status = Pending;
  }

let generate (t : Transform.t) =
  let m = t.Transform.base in
  let name = m.Spec.machine_name in
  let lemma1 =
    [
      ob "L1.1" "Scheduling function monotonicity"
        (Printf.sprintf
           "For %s: I(k,T) = I(k,T-1) + 1 if ue_k^(T-1), else I(k,T-1)." name)
        Trace_invariant;
      ob "L1.2" "Adjoining stages"
        "I(k-1,T) - I(k,T) is 0 or 1 for every stage k >= 1 and cycle T."
        Trace_invariant;
      ob "L1.3" "Full bits track the scheduling function"
        "full_k^T = 0 iff I(k-1,T) = I(k,T)." Trace_invariant;
    ]
  in
  let engine =
    [
      ob "SE.1" "Update enables"
        "ue_k = full_k AND NOT stall_k AND NOT rollback'_k." Trace_invariant;
      ob "SE.2" "Stall propagation"
        "stall_k = (dhaz_k OR ext_k OR stall_(k+1)) AND full_k; a full stage \
         below a stalled one stalls."
        Trace_invariant;
      ob "SE.3" "Full-bit update"
        "fullb.s := (ue_(s-1) OR stall_s) AND NOT rollback'_s; bubbles are \
         removed when possible."
        Trace_invariant;
    ]
  in
  let per_rule =
    List.concat_map
      (fun (r : Transform.rule) ->
        let who =
          Printf.sprintf "operand %s of stage %d (written by stage %d)"
            r.Transform.rule_label r.Transform.consumer_stage
            r.Transform.writer_stage
        in
        [
          ob
            (Printf.sprintf "L2.%s" r.Transform.rule_label)
            "No intervening writer (Lemma 2)"
            (Printf.sprintf
               "For %s: if hit signal R_hit[top] is active in cycle T, the \
                register entry is not modified between instruction \
                I(top,T)+1 and the consuming instruction."
               who)
            Cosimulation;
          ob
            (Printf.sprintf "L3.%s" r.Transform.rule_label)
            "Forwarded inputs are correct (Lemma 3)"
            (Printf.sprintf
               "For %s: with an active hit and no data hazard, the generated \
                input g equals the specification operand value R_S^i[x]."
               who)
            Cosimulation;
          ob
            (Printf.sprintf "TOP.%s" r.Transform.rule_label)
            "Top selection is a priority choice"
            (Printf.sprintf
               "For %s: the g network selects the source of the smallest \
                stage index with an active hit, and the register value when \
                no hit is active."
               who)
            By_construction;
        ])
      t.Transform.rules
  in
  let spec_obs =
    List.map
      (fun (sp : Pipeline.Fwd_spec.speculation) ->
        ob
          (Printf.sprintf "SP.%s" sp.Pipeline.Fwd_spec.spec_label)
          "Speculation affects performance only"
          (Printf.sprintf
             "Speculation %s (resolved in stage %d): a misprediction squashes \
              stages 0..%d and the machine still satisfies data consistency; \
              the guessed value has no influence on correctness."
             sp.Pipeline.Fwd_spec.spec_label sp.Pipeline.Fwd_spec.resolve_stage
             sp.Pipeline.Fwd_spec.resolve_stage)
          Cosimulation)
      t.Transform.speculations
  in
  let consistency =
    List.map
      (fun (r : Spec.register) ->
        ob
          (Printf.sprintf "DC.%s" r.Spec.reg_name)
          "Data consistency (paper 6.2)"
          (Printf.sprintf
             "For visible register %s in out(%d): when instruction i occupies \
              stage %d, the implementation value equals R_S^i."
             r.Spec.reg_name r.Spec.stage r.Spec.stage)
          Cosimulation)
      (Spec.visible_registers m)
  in
  let liveness =
    [
      ob "LV" "Liveness (paper 6.3)"
        "A finite upper bound exists such that any given instruction \
         terminates."
        Cosimulation;
    ]
  in
  lemma1 @ engine @ per_rule @ spec_obs @ consistency @ liveness

(* The TOP obligation is discharged symbolically: the generated
   network (whatever its implementation: chain, tree or bus) must be
   equivalent, for every valuation of the hit, candidate and register
   inputs, to the specification form — the canonical priority chain
   over the same hits and candidates with the architectural read as the
   default.  For the chain implementation this is near-syntactic; for
   the others it is a real theorem, proved by the BDD checker. *)
let check_top_structural (t : Transform.t) (r : Transform.rule) =
  match r.Transform.g_signal with
  | None -> Ok "interlock-only: no g network (trivially satisfied)"
  | Some g_name ->
    let g = List.assoc g_name t.Transform.signals in
    let cases =
      List.map
        (fun (s : Transform.source) ->
          let hit = Hw.Expr.input s.Transform.hit_signal 1 in
          let cand =
            match s.Transform.cand_signal with
            | Some c -> Hw.Expr.input c (Hw.Expr.width g)
            | None -> Hw.Expr.const_int ~width:(Hw.Expr.width g) 0
          in
          (hit, cand))
        r.Transform.sources
    in
    let spec = Hw.Expr.mux_cases ~default:r.Transform.g_default cases in
    (match Equiv.check g spec with
    | Equiv.Equivalent { variables; bdd_nodes } ->
      Ok
        (Printf.sprintf
           "proved equivalent to the priority specification (%d variables, \
            %d BDD nodes)"
           variables bdd_nodes)
    | Equiv.Different c ->
      Error
        (Format.asprintf "differs from the priority specification: %a"
           Equiv.pp_result (Equiv.Different c))
    | Equiv.Width_mismatch (a, b) ->
      Error (Printf.sprintf "width mismatch %d vs %d" a b))

let discharge_all ?ext ?max_instructions ?reference ?compiled ?pool ?inject
    ?cancel ?disasm (t : Transform.t) =
  Obs.Span.with_span "verify.obligations" @@ fun () ->
  let obs = generate t in
  Obs.Counters.add Obs.Counters.Obligations (List.length obs);
  let disassemble tag =
    match disasm with
    | None -> ""
    | Some f -> (
      match f tag with None -> "" | Some text -> Printf.sprintf " (%s)" text)
  in
  (* Discharge in two parallel waves.  Wave 1: the co-simulation run
     and the per-rule structural proofs are mutually independent (the
     BDD checker builds a private manager per rule; the co-simulation
     instantiates the shared immutable plan privately).  Wave 2:
     everything that consumes the recorded trace.  Results are
     assembled in the fixed obligation order, so the statuses are
     bit-identical to the serial discharge.

     Every task is hardened: a diverging or structurally broken
     machine (a campaign mutant) yields a [Failed] status on the
     obligations it was meant to discharge, never an exception that
     would mask the remaining obligations.  Only cancellation
     propagates. *)
  let top_structural r =
    match check_top_structural t r with
    | res -> res
    | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
    | exception e ->
      Error
        (Printf.sprintf "structural check aborted: %s" (Printexc.to_string e))
  in
  let wave1 =
    (fun () ->
      `Report
        (Consistency.check_result ?ext ?max_instructions ?reference ?compiled
           ?inject ?cancel t))
    :: List.map
         (fun (r : Transform.rule) () ->
           `Top (r.Transform.rule_label, top_structural r))
         t.Transform.rules
  in
  let wave1 = Exec.Pool.map_opt pool (fun task -> task ()) wave1 in
  let report =
    match wave1 with `Report r :: _ -> r | _ -> assert false
  in
  let top_results =
    List.filter_map
      (function `Top (label, res) -> Some (label, res) | `Report _ -> None)
      wave1
  in
  (* A short symbolic co-simulation strengthens the data-consistency
     evidence from "on this run" to "for all initial data" when the
     machine's symbolic state is small enough.  Only attempted without
     an external reference (the symbolic checker uses the machine's own
     sequential semantics), without ext stalls, and without fault
     injection (the symbolic checker replays the unfaulted semantics,
     so its verdict would not be about the machine under test). *)
  let symbolic_task (report : Consistency.report) =
    match (reference, ext, inject) with
    | None, None, None -> (
      let small =
        List.for_all
          (fun (r : Spec.register) ->
            match r.Spec.kind with
            | Spec.File { addr_bits } when r.Spec.visible ->
              (1 lsl addr_bits) * r.Spec.width <= 512
            | Spec.File _ | Spec.Simple -> true)
          t.Transform.base.Spec.registers
      in
      if not small then None
      else
        match
          Symsim.check ~max_paths:8
            ~instructions:(min 8 report.Consistency.instructions)
            t
        with
        | Symsim.Proved { instructions; variables; _ } ->
          Some
            (Printf.sprintf
               "; additionally proved for ALL initial data over %d                 instructions (%d symbolic variables)"
               instructions variables)
        | Symsim.Mismatch _ | Symsim.Control_depends_on_data _
        | (exception Exec.Cancel.Cancelled) -> raise Exec.Cancel.Cancelled
        | (exception _) -> None)
    | _ -> None
  in
  let n = t.Transform.base.Spec.n_stages in
  let wave2 report =
    Exec.Pool.map_opt pool
      (fun task -> task ())
      [
        (fun () -> `Sym (symbolic_task report));
        (fun () ->
          `Ti (Trace_invariants.check ~n_stages:n report.Consistency.trace));
        (fun () ->
          `Live
            (match
               Liveness.check ?ext ?compiled ?inject ?cancel
                 ~stop_after:report.Consistency.instructions t
             with
            | live -> Ok live
            | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
            | exception e -> Error (Printexc.to_string e)));
      ]
  in
  let statuses =
    match report with
    | Error (f : Consistency.failure) ->
      (* The co-simulation itself died: every obligation that depends
         on its trace fails with the same typed evidence, and the
         structural TOP proofs (wave 1) still stand on their own. *)
      let failed =
        Failed
          (Printf.sprintf "co-simulation aborted during %s: %s"
             f.Consistency.failing_phase f.Consistency.message)
      in
      `All_cosim_failed failed
    | Ok report ->
      let wave2 = wave2 report in
      let symbolic_evidence, ti, live =
        match wave2 with
        | [ `Sym s; `Ti ti; `Live l ] -> (s, ti, l)
        | _ -> assert false
      in
      `Statuses (report, symbolic_evidence, ti, live)
  in
  let lemma1_status, engine_status, consistency_status, cosim_global_status,
      lv_status =
    match statuses with
    | `All_cosim_failed failed ->
      (failed, failed, (fun _ -> failed), failed, failed)
    | `Statuses (report, symbolic_evidence, ti, live) ->
      let lemma1_status =
        match report.Consistency.lemma1 with
        | Consistency.Lemma_ok ->
          Discharged
            (Printf.sprintf "checked on a %d-cycle trace"
               (List.length report.Consistency.trace))
        | Consistency.Lemma_skipped_rollback ->
          Discharged "not applicable: the trace contains rollbacks (paper 6.1)"
        | Consistency.Lemma_failed es -> Failed (String.concat "; " es)
      in
      let engine_status =
        match ti with
        | Ok () ->
          Discharged
            (Printf.sprintf "re-derived on a %d-cycle trace"
               (List.length report.Consistency.trace))
        | Error es -> Failed (String.concat "; " es)
      in
      let consistency_status register =
        let mine =
          List.filter
            (fun (v : Consistency.violation) ->
              String.equal v.Consistency.register register)
            report.Consistency.violations
        in
        match mine with
        | [] ->
          if report.Consistency.outcome = Pipeline.Pipesem.Completed then
            Discharged
              (Printf.sprintf "co-simulated %d instructions, %d comparisons%s"
                 report.Consistency.instructions report.Consistency.edge_checks
                 (Option.value ~default:"" symbolic_evidence))
          else Failed "run did not complete"
        | v :: _ ->
          Failed
            (Printf.sprintf
               "cycle %d stage %d instr %d%s: register %s diverged, expected \
                %s, got %s"
               v.Consistency.at_cycle v.Consistency.at_stage v.Consistency.tag
               (disassemble v.Consistency.tag)
               v.Consistency.register v.Consistency.expected v.Consistency.got)
      in
      let cosim_global_status =
        if Consistency.ok report then
          Discharged
            (Printf.sprintf "co-simulated %d instructions with no violations"
               report.Consistency.instructions)
        else
          match report.Consistency.violations with
          | v :: _ ->
            Failed
              (Printf.sprintf
                 "data-consistency violation at cycle %d instr %d%s on \
                  register %s"
                 v.Consistency.at_cycle v.Consistency.tag
                 (disassemble v.Consistency.tag) v.Consistency.register)
          | [] -> Failed "data-consistency violations on the co-simulation"
      in
      let lv_status =
        match live with
        | Ok live ->
          if Liveness.ok live then
            Discharged
              (Printf.sprintf "max inter-retirement gap %d <= bound %d"
                 live.Liveness.max_gap live.Liveness.bound)
          else
            Failed
              (Printf.sprintf "liveness bound exceeded: max gap %d > bound %d"
                 live.Liveness.max_gap live.Liveness.bound)
        | Error msg -> Failed ("liveness check aborted: " ^ msg)
      in
      (lemma1_status, engine_status, consistency_status, cosim_global_status,
       lv_status)
  in
  List.iter
    (fun o ->
      let id = o.ob_id in
      let starts p =
        String.length id >= String.length p && String.sub id 0 (String.length p) = p
      in
      o.ob_status <-
        (if starts "L1." then lemma1_status
         else if starts "SE." then engine_status
         else if starts "DC." then
           consistency_status (String.sub id 3 (String.length id - 3))
         else if starts "TOP." then begin
           let label = String.sub id 4 (String.length id - 4) in
           match List.assoc_opt label top_results with
           | None -> Failed "rule not found"
           | Some (Ok msg) -> Discharged msg
           | Some (Error msg) -> Failed msg
         end
         else if starts "L2." || starts "L3." || starts "SP." then
           cosim_global_status
         else if String.equal id "LV" then lv_status
         else Pending))
    obs;
  obs

let all_discharged obs =
  List.for_all
    (fun o -> match o.ob_status with Discharged _ -> true | Pending | Failed _ -> false)
    obs

let pp ppf obs =
  List.iter
    (fun o ->
      let status, detail =
        match o.ob_status with
        | Pending -> ("PENDING", "")
        | Discharged d -> ("ok", d)
        | Failed f -> ("FAILED", f)
      in
      Format.fprintf ppf "  [%s] %-14s %s%s@." status o.ob_id o.ob_title
        (if detail = "" then "" else " -- " ^ detail))
    obs
