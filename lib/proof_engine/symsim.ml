module B = Hw.Bdd
module E = Hw.Expr
module Spec = Machine.Spec

type outcome =
  | Proved of { instructions : int; variables : int; bdd_nodes : int }
  | Mismatch of {
      instruction : int;
      register : string;
      assignment : (string * int) list;
    }
  | Control_depends_on_data of { cycle : int; what : string }

exception Symbolic_control of { cycle : int; what : string }

type svalue =
  | SScalar of B.t array
  | SFile of B.t array array  (* entries, each LSB-first *)

type sstate = (string, svalue) Hashtbl.t

let copy_svalue = function
  | SScalar v -> SScalar (Array.copy v)
  | SFile entries -> SFile (Array.map Array.copy entries)

(* ------------------------------------------------------------------ *)
(* Symbolic state construction                                         *)
(* ------------------------------------------------------------------ *)

type alloc = {
  man : B.man;
  mutable next : int;
  bit_names : (int, string * int) Hashtbl.t;  (* var -> (display, bit) *)
}

let fresh a ~name ~width =
  let base = a.next in
  a.next <- base + width;
  Array.init width (fun i ->
      Hashtbl.replace a.bit_names (base + i) (name, i);
      B.var a.man (base + i))

(* Symbolic file entries are allocated bit-interleaved (all entries'
   bit 0 first, then bit 1, ...): with that ordering the BDDs of sums
   and comparisons over several entries stay polynomial (the carry is
   resolved bit-plane by bit-plane), where an entry-major order would
   be exponential in the data width. *)
let fresh_file a ~name ~entries ~width =
  let base = a.next in
  a.next <- base + (entries * width);
  Array.init entries (fun e ->
      Array.init width (fun b ->
          let v = base + (b * entries) + e in
          Hashtbl.replace a.bit_names v (Printf.sprintf "%s[%d]" name e, b);
          B.var a.man v))

let const_vector v =
  Array.init (Hw.Bitvec.width v) (fun i ->
      if Hw.Bitvec.bit v i then B.tru else B.fls)

(* The symbolic initial values are allocated once and shared by the
   sequential and pipelined runs: both machines must start from the
   same universally quantified state (and disjoint allocations would
   also wreck the BDD variable ordering when the final states are
   compared). *)
let shared_symbolic a (m : Spec.t) ~symbolic =
  let tbl : (string, svalue) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun name ->
      match Spec.find_register m name with
      | r -> (
        match r.Spec.kind with
        | Spec.Simple ->
          Hashtbl.replace tbl name (SScalar (fresh a ~name ~width:r.Spec.width))
        | Spec.File { addr_bits } ->
          Hashtbl.replace tbl name
            (SFile
               (fresh_file a ~name ~entries:(1 lsl addr_bits)
                  ~width:r.Spec.width)))
      | exception Not_found ->
        invalid_arg (Printf.sprintf "Symsim: unknown symbolic register %s" name))
    symbolic;
  tbl

let initial_state shared (m : Spec.t) =
  let st : sstate = Hashtbl.create 32 in
  List.iter
    (fun (r : Spec.register) ->
      let name = r.Spec.reg_name in
      let v =
        match Hashtbl.find_opt shared name with
        | Some sv -> copy_svalue sv
        | None -> (
          match (r.Spec.kind, Spec.initial_value m r) with
          | Spec.Simple, Machine.Value.Scalar bv -> SScalar (const_vector bv)
          | Spec.File _, Machine.Value.File arr ->
            SFile (Array.map const_vector arr)
          | Spec.Simple, Machine.Value.File _
          | Spec.File _, Machine.Value.Scalar _ -> assert false)
      in
      Hashtbl.replace st name v)
    m.Spec.registers;
  st

(* ------------------------------------------------------------------ *)
(* Symbolic evaluation helpers                                         *)
(* ------------------------------------------------------------------ *)

let addr_equals man addr i =
  (* addr (LSB-first vector) == constant i *)
  let acc = ref B.tru in
  Array.iteri
    (fun b bit ->
      let want = (i lsr b) land 1 = 1 in
      acc := B.conj man !acc (if want then bit else B.neg man bit))
    addr;
  !acc

let file_read man entries addr =
  let n = Array.length entries in
  let acc = ref entries.(0) in
  for i = 1 to n - 1 do
    let sel = addr_equals man addr i in
    acc := Array.mapi (fun b cur -> B.ite man sel entries.(i).(b) cur) !acc
  done;
  !acc

let blaster a ~cycle (st : sstate) (overlay : (string, B.t array) Hashtbl.t) =
  Equiv.Blast.create a.man
    ~resolve_input:(fun name width ->
      match Hashtbl.find_opt overlay name with
      | Some v -> v
      | None -> (
        match Hashtbl.find_opt st name with
        | Some (SScalar v) ->
          if Array.length v <> width then
            failwith (Printf.sprintf "Symsim: %s width mismatch" name)
          else v
        | Some (SFile _) ->
          failwith (Printf.sprintf "Symsim: %s read as scalar" name)
        | None ->
          raise
            (Symbolic_control { cycle; what = "unknown input " ^ name })))
    ~resolve_file:(fun file addr _width ->
      match Hashtbl.find_opt st file with
      | Some (SFile entries) -> file_read a.man entries addr
      | Some (SScalar _) | None ->
        failwith (Printf.sprintf "Symsim: unknown file %s" file))

(* ------------------------------------------------------------------ *)
(* Symbolic commit (mirrors Machine.Commit)                            *)
(* ------------------------------------------------------------------ *)

type supdate =
  | USet of string * B.t array
  | UFile of string * B.t array * B.t array * B.t  (* file, addr, data, enable *)

let write_updates a ctx (m : Spec.t) st (w : Spec.write) =
  let man = a.man in
  let r = Spec.find_register m w.Spec.dst in
  let guard =
    match w.Spec.guard with
    | None -> B.tru
    | Some g -> (Equiv.Blast.expr ctx g).(0)
  in
  match r.Spec.kind with
  | Spec.File _ ->
    if B.is_fls guard then []
    else
      let addr =
        match w.Spec.wr_addr with
        | Some e -> Equiv.Blast.expr ctx e
        | None -> failwith "Symsim: file write without address"
      in
      [ UFile (w.Spec.dst, addr, Equiv.Blast.expr ctx w.Spec.value, guard) ]
  | Spec.Simple -> (
    let v = Equiv.Blast.expr ctx w.Spec.value in
    match r.Spec.prev_instance with
    | None ->
      if B.is_fls guard then []
      else if B.is_tru guard then [ USet (w.Spec.dst, v) ]
      else
        let cur =
          match Hashtbl.find_opt st w.Spec.dst with
          | Some (SScalar c) -> c
          | _ -> failwith "Symsim: scalar state missing"
        in
        [ USet (w.Spec.dst, Array.mapi (fun i vb -> B.ite man guard vb cur.(i)) v) ]
    | Some p ->
      let prev =
        match Hashtbl.find_opt st p with
        | Some (SScalar c) -> c
        | _ -> failwith "Symsim: prev instance missing"
      in
      [ USet (w.Spec.dst, Array.mapi (fun i vb -> B.ite man guard vb prev.(i)) v) ])

let stage_updates a ctx (m : Spec.t) st ~stage =
  let s = Spec.stage_of m stage in
  let explicit = List.concat_map (write_updates a ctx m st) s.Spec.writes in
  let written = List.map (fun (w : Spec.write) -> w.Spec.dst) s.Spec.writes in
  let shifts =
    List.filter_map
      (fun (r : Spec.register) ->
        match r.Spec.prev_instance with
        | Some p when r.Spec.stage = stage && not (List.mem r.Spec.reg_name written)
          -> (
          match Hashtbl.find_opt st p with
          | Some (SScalar v) -> Some (USet (r.Spec.reg_name, Array.copy v))
          | _ -> None)
        | Some _ | None -> None)
      m.Spec.registers
  in
  explicit @ shifts

let apply a st updates =
  let man = a.man in
  List.iter
    (fun u ->
      match u with
      | USet (n, v) -> Hashtbl.replace st n (SScalar v)
      | UFile (f, addr, data, enable) -> (
        match Hashtbl.find_opt st f with
        | Some (SFile entries) ->
          let entries' =
            Array.mapi
              (fun i entry ->
                let sel = B.conj man enable (addr_equals man addr i) in
                Array.mapi (fun b cur -> B.ite man sel data.(b) cur) entry)
              entries
          in
          Hashtbl.replace st f (SFile entries')
        | _ -> failwith "Symsim: file state missing"))
    updates

(* ------------------------------------------------------------------ *)
(* The two machines                                                    *)
(* ------------------------------------------------------------------ *)

let seq_spec_trace a shared (m : Spec.t) ~instructions =
  let st = initial_state shared m in
  let snaps = Array.make (instructions + 1) [] in
  let visible () =
    List.filter_map
      (fun (r : Spec.register) ->
        if r.Spec.visible then
          Some (r.Spec.reg_name, copy_svalue (Hashtbl.find st r.Spec.reg_name))
        else None)
      m.Spec.registers
  in
  for i = 0 to instructions - 1 do
    snaps.(i) <- visible ();
    for k = 0 to m.Spec.n_stages - 1 do
      let ctx = blaster a ~cycle:(-1) st (Hashtbl.create 1) in
      let ups = stage_updates a ctx m st ~stage:k in
      apply a st ups
    done
  done;
  snaps.(instructions) <- visible ();
  snaps

let svalue_diff man a b =
  match (a, b) with
  | SScalar x, SScalar y ->
    Array.map2 (B.xor man) x y |> Array.fold_left (B.disj man) B.fls
  | SFile x, SFile y ->
    let acc = ref B.fls in
    Array.iteri
      (fun i xi ->
        let d =
          Array.map2 (B.xor man) xi y.(i)
          |> Array.fold_left (B.disj man) B.fls
        in
        acc := B.disj man !acc d)
      x;
    !acc
  | SScalar _, SFile _ | SFile _, SScalar _ -> B.tru

exception Need_split of B.t

(* Decide a control bit under the current path constraint; [None]
   requests a case split (Burch-Dill style). *)
let decide man pathc bit =
  if B.is_tru bit then Some true
  else if B.is_fls bit then Some false
  else if B.is_fls (B.conj man pathc bit) then Some false
  else if B.is_fls (B.conj man pathc (B.neg man bit)) then Some true
  else None

type path_state = {
  ps_st : sstate;
  ps_fullb : bool array;
  ps_tags : int option array;
  mutable ps_retired : int;
  mutable ps_cycle : int;
}

let copy_path ps =
  let st = Hashtbl.create (Hashtbl.length ps.ps_st) in
  Hashtbl.iter (fun k v -> Hashtbl.replace st k (copy_svalue v)) ps.ps_st;
  {
    ps_st = st;
    ps_fullb = Array.copy ps.ps_fullb;
    ps_tags = Array.copy ps.ps_tags;
    ps_retired = ps.ps_retired;
    ps_cycle = ps.ps_cycle;
  }

let check ?symbolic ?(max_paths = 64) ~instructions (t : Pipeline.Transform.t) =
  Obs.Span.with_span "verify.symsim" @@ fun () ->
  let base = t.Pipeline.Transform.base in
  let machine = t.Pipeline.Transform.machine in
  let n = base.Spec.n_stages in
  let symbolic =
    match symbolic with
    | Some s -> s
    | None ->
      (* Default: visible register files whose symbolic encoding stays
         tractable (a 4096-entry memory would need 100k+ variables). *)
      List.filter_map
        (fun (r : Spec.register) ->
          match r.Spec.kind with
          | Spec.File { addr_bits } when r.Spec.visible ->
            if (1 lsl addr_bits) * r.Spec.width <= 2048 then
              Some r.Spec.reg_name
            else None
          | Spec.File _ | Spec.Simple -> None)
        base.Spec.registers
  in
  let a = { man = B.manager (); next = 0; bit_names = Hashtbl.create 256 } in
  let paths = ref 1 in
  try
    let shared = shared_symbolic a base ~symbolic in
    (* The specification: symbolic sequential run. *)
    let spec = seq_spec_trace a shared base ~instructions in
    let visible_of_stage =
      Array.init n (fun k ->
          List.filter
            (fun (r : Spec.register) -> r.Spec.visible && r.Spec.stage = k)
            base.Spec.registers)
    in
    let max_cycles = (instructions * 4 * n) + 200 in
    let mismatch = ref None in
    (* One cycle of the pipelined machine under a path constraint.
       [Need_split] is raised before any mutation, so the caller can
       fork from the same state. *)
    let run_cycle pathc ps =
      let overlay : (string, B.t array) Hashtbl.t = Hashtbl.create 64 in
      for k = 0 to n - 1 do
        Hashtbl.replace overlay
          (Pipeline.Transform.full_signal k)
          [| (if k = 0 || ps.ps_fullb.(k) then B.tru else B.fls) |];
        Hashtbl.replace overlay (Pipeline.Transform.ext_signal k) [| B.fls |]
      done;
      let ctx = blaster a ~cycle:ps.ps_cycle ps.ps_st overlay in
      List.iter
        (fun (name, e) ->
          Hashtbl.replace overlay name (Equiv.Blast.expr ctx e))
        t.Pipeline.Transform.signals;
      let control ~what bit =
        ignore what;
        match decide a.man pathc bit with
        | Some b -> b
        | None -> raise (Need_split bit)
      in
      let dhaz =
        Array.init n (fun k ->
            control
              ~what:(Printf.sprintf "dhaz_%d" k)
              (Hashtbl.find overlay t.Pipeline.Transform.stage_dhaz.(k)).(0))
      in
      let mispredict ~stage ~stalled =
        (not stalled)
        && List.exists
             (fun (sp : Pipeline.Fwd_spec.speculation) ->
               sp.Pipeline.Fwd_spec.resolve_stage = stage
               && control ~what:sp.Pipeline.Fwd_spec.spec_label
                    (Equiv.Blast.expr ctx sp.Pipeline.Fwd_spec.mispredict).(0))
             t.Pipeline.Transform.speculations
      in
      let ext = Array.make n false in
      let s = Pipeline.Stall_engine.compute ~fullb:ps.ps_fullb ~dhaz ~ext ~mispredict in
      (* From here on, no splits: mutate freely. *)
      let deepest_rollback =
        let rec find k =
          if k < 0 then None
          else if s.Pipeline.Stall_engine.rollback.(k) then Some k
          else find (k - 1)
        in
        find (n - 1)
      in
      let firing_spec =
        match deepest_rollback with
        | None -> None
        | Some k ->
          List.find_opt
            (fun (sp : Pipeline.Fwd_spec.speculation) ->
              sp.Pipeline.Fwd_spec.resolve_stage = k)
            t.Pipeline.Transform.speculations
      in
      let updates = ref [] in
      for k = 0 to n - 1 do
        if s.Pipeline.Stall_engine.ue.(k) then
          updates := stage_updates a ctx machine ps.ps_st ~stage:k :: !updates
      done;
      (match firing_spec with
      | Some sp ->
        updates :=
          List.concat_map
            (write_updates a ctx machine ps.ps_st)
            sp.Pipeline.Fwd_spec.rollback_writes
          :: !updates
      | None -> ());
      List.iter (apply a ps.ps_st) (List.rev !updates);
      (* Per-retirement comparisons (the Consistency criterion), under
         the path constraint. *)
      let compare_regs ~tag regs =
        if tag + 1 <= instructions && !mismatch = None then
          List.iter
            (fun (r : Spec.register) ->
              match
                ( List.assoc_opt r.Spec.reg_name spec.(tag + 1),
                  Hashtbl.find_opt ps.ps_st r.Spec.reg_name )
              with
              | Some expected, Some got ->
                let diff =
                  B.conj a.man pathc (svalue_diff a.man expected got)
                in
                if not (B.is_fls diff) then begin
                  let sat = Option.get (B.any_sat a.man diff) in
                  let grouped : (string, int) Hashtbl.t = Hashtbl.create 16 in
                  List.iter
                    (fun (v, value) ->
                      if value then
                        match Hashtbl.find_opt a.bit_names v with
                        | Some (display, bit) ->
                          let cur =
                            Option.value ~default:0
                              (Hashtbl.find_opt grouped display)
                          in
                          Hashtbl.replace grouped display (cur lor (1 lsl bit))
                        | None -> ())
                    sat;
                  let assignment =
                    Hashtbl.fold (fun k v acc -> (k, v) :: acc) grouped []
                    |> List.sort compare
                  in
                  mismatch :=
                    Some
                      (Mismatch
                         {
                           instruction = tag;
                           register = r.Spec.reg_name;
                           assignment;
                         })
                end
              | _ -> ())
            regs
      in
      for k = 0 to n - 1 do
        if s.Pipeline.Stall_engine.ue.(k) then
          match ps.ps_tags.(k) with
          | Some tag -> compare_regs ~tag visible_of_stage.(k)
          | None -> ()
      done;
      if s.Pipeline.Stall_engine.ue.(n - 1) then
        ps.ps_retired <- ps.ps_retired + 1;
      (match (deepest_rollback, firing_spec) with
      | Some k, Some sp when sp.Pipeline.Fwd_spec.retires ->
        (match ps.ps_tags.(k) with
        | Some tag ->
          compare_regs ~tag (Spec.visible_registers base);
          ps.ps_retired <- ps.ps_retired + 1
        | None -> ())
      | _ -> ());
      let old_tags = Array.copy ps.ps_tags in
      for stg = n - 1 downto 1 do
        ps.ps_tags.(stg) <-
          (if s.Pipeline.Stall_engine.rollback_up.(stg) then None
           else if s.Pipeline.Stall_engine.ue.(stg - 1) then old_tags.(stg - 1)
           else if
             s.Pipeline.Stall_engine.stall.(stg)
             && s.Pipeline.Stall_engine.full.(stg)
           then old_tags.(stg)
           else None)
      done;
      (match (deepest_rollback, firing_spec) with
      | Some k, Some sp ->
        let b = match old_tags.(k) with Some tag -> tag | None -> 0 in
        ps.ps_tags.(0) <-
          Some (b + if sp.Pipeline.Fwd_spec.retires then 1 else 0)
      | _ ->
        if s.Pipeline.Stall_engine.ue.(0) then
          ps.ps_tags.(0) <-
            Some ((match old_tags.(0) with Some tag -> tag | None -> 0) + 1));
      let fullb' = Pipeline.Stall_engine.next_fullb s in
      Array.blit fullb' 0 ps.ps_fullb 0 n;
      ps.ps_cycle <- ps.ps_cycle + 1
    in
    let rec run_path pathc ps =
      if !mismatch <> None then ()
      else if ps.ps_retired >= instructions || ps.ps_cycle >= max_cycles then ()
      else
        match run_cycle pathc ps with
        | () -> run_path pathc ps
        | exception Need_split bit ->
          if !paths >= max_paths then
            raise
              (Symbolic_control
                 { cycle = ps.ps_cycle; what = "path budget exhausted" })
          else begin
            incr paths;
            let other = copy_path ps in
            run_path (B.conj a.man pathc bit) ps;
            run_path (B.conj a.man pathc (B.neg a.man bit)) other
          end
    in
    let ps =
      {
        ps_st = initial_state shared machine;
        ps_fullb = Array.make n false;
        ps_tags = Array.make n None;
        ps_retired = 0;
        ps_cycle = 0;
      }
    in
    ps.ps_tags.(0) <- Some 0;
    run_path B.tru ps;
    match !mismatch with
    | Some m -> m
    | None ->
      Proved
        {
          instructions;
          variables = a.next;
          bdd_nodes = B.node_count a.man;
        }
  with Symbolic_control { cycle; what } ->
    Control_depends_on_data { cycle; what }

let pp_outcome ppf = function
  | Proved { instructions; variables; bdd_nodes } ->
    Format.fprintf ppf
      "proved for all data: %d instructions, %d symbolic variables, %d BDD \
       nodes"
      instructions variables bdd_nodes
  | Mismatch { instruction; register; assignment } ->
    Format.fprintf ppf "MISMATCH at instruction %d register %s under {%s}"
      instruction register
      (String.concat ", "
         (List.filter_map
            (fun (n, v) -> if v <> 0 then Some (Printf.sprintf "%s=%d" n v) else None)
            assignment))
  | Control_depends_on_data { cycle; what } ->
    Format.fprintf ppf "control depends on symbolic data at cycle %d (%s)"
      cycle what
