module Spec = Machine.Spec
module Pipesem = Pipeline.Pipesem

type violation = {
  at_cycle : int;
  at_stage : int;
  tag : int;
  register : string;
  expected : string;
  got : string;
}

type lemma1_status =
  | Lemma_ok
  | Lemma_skipped_rollback
  | Lemma_failed of string list

type report = {
  instructions : int;
  retirements : int;
  edge_checks : int;
  violations : violation list;
  lemma1 : lemma1_status;
  outcome : Pipesem.outcome;
  stats : Pipesem.stats;
  final_visible_match : bool option;
  trace : Pipesem.cycle_record list;
}

let ok r =
  r.violations = []
  && r.outcome = Pipesem.Completed
  && (match r.lemma1 with
     | Lemma_ok | Lemma_skipped_rollback -> true
     | Lemma_failed _ -> false)
  &&
  match r.final_visible_match with None | Some true -> true | Some false -> false

let value_at snapshot name = List.assoc_opt name snapshot

let check ?ext ?(max_instructions = 200) ?reference ?compiled ?inject ?cancel
    (t : Pipeline.Transform.t) =
  Obs.Span.with_span "verify.consistency" @@ fun () ->
  let base = t.Pipeline.Transform.base in
  let n = base.Spec.n_stages in
  let seq_trace =
    match reference with
    | Some trace -> trace
    | None -> Machine.Seqsem.run ~max_instructions base
  in
  let instructions = seq_trace.Machine.Seqsem.instructions in
  let spec = seq_trace.Machine.Seqsem.spec_before in
  let visible_of_stage =
    Array.init n (fun k ->
        List.filter (fun (r : Spec.register) -> r.Spec.stage = k)
          (Spec.visible_registers base))
  in
  (* Violations are buffered per instruction tag: writes by an
     instruction that is later squashed by a rollback are speculative
     and corrected by the rollback writes (paper §5 — "the guessed
     value has no influence on the correctness"), so its pending
     comparisons are cancelled when the squash happens. *)
  let violations = ref [] in
  let edge_checks = ref 0 in
  let retirements = ref 0 in
  let records = ref [] in
  let compare_reg ~cycle ~stage ~tag snapshot (r : Spec.register) state =
    incr edge_checks;
    let got = Machine.State.get state r.Spec.reg_name in
    match value_at snapshot r.Spec.reg_name with
    | None -> ()
    | Some expected ->
      if not (Machine.Value.equal expected got) then
        violations :=
          {
            at_cycle = cycle;
            at_stage = stage;
            tag;
            register = r.Spec.reg_name;
            expected = Format.asprintf "%a" Machine.Value.pp expected;
            got = Format.asprintf "%a" Machine.Value.pp got;
          }
          :: !violations
  in
  let on_edge (rec_ : Pipesem.cycle_record) state =
    for k = 0 to n - 1 do
      if rec_.Pipesem.ue.(k) then
        match rec_.Pipesem.tags.(k) with
        | Some i when i + 1 <= instructions ->
          List.iter
            (fun r ->
              compare_reg ~cycle:rec_.Pipesem.cycle ~stage:k ~tag:i spec.(i + 1)
                r state)
            visible_of_stage.(k)
        | Some _ | None -> ()
    done
  in
  let on_retire ~tag ~kind state =
    incr retirements;
    match kind with
    | Pipesem.Normal -> ()
    | Pipesem.Via_rollback _ when tag + 1 <= instructions ->
      (* The rollback writes realize the instruction's sequential
         semantics; compare the full visible state. *)
      List.iter
        (fun (r : Spec.register) ->
          compare_reg ~cycle:(-1) ~stage:(-1) ~tag spec.(tag + 1) r state)
        (Spec.visible_registers base)
    | Pipesem.Via_rollback _ -> ()
  in
  let on_cycle (r : Pipesem.cycle_record) =
    records := r :: !records;
    (* A rollback at stage k squashes the instructions in stages 0..k;
       cancel their buffered speculative-write comparisons.  The
       retiring instruction itself (if the speculation retires) is
       re-checked against the full visible state in [on_retire]. *)
    let deepest =
      let rec find k =
        if k < 0 then None
        else if r.Pipesem.rollback.(k) then Some k
        else find (k - 1)
      in
      find (n - 1)
    in
    match deepest with
    | None -> ()
    | Some k -> (
      match r.Pipesem.tags.(k) with
      | None -> ()
      | Some base ->
        violations := List.filter (fun v -> v.tag < base) !violations)
  in
  let callbacks =
    { Pipesem.no_callbacks with Pipesem.on_cycle; on_edge; on_retire }
  in
  let result =
    let c = match compiled with Some c -> c | None -> Pipesem.compile t in
    Pipesem.run_compiled ?ext ~callbacks ?inject ?cancel
      ~stop_after:instructions c
  in
  let trace = List.rev !records in
  let lemma1 =
    if Pipeline.Schedule.has_rollback trace then Lemma_skipped_rollback
    else
      match Pipeline.Schedule.check_lemma1 ~n_stages:n trace with
      | Ok () -> Lemma_ok
      | Error es -> Lemma_failed es
  in
  let final_visible_match =
    if
      Pipeline.Schedule.has_rollback trace
      || result.Pipesem.outcome <> Pipesem.Completed
    then None
    else begin
      (* Registers of the last stage see no over-fetch interference. *)
      let final_spec = spec.(instructions) in
      let last_stage_regs = visible_of_stage.(n - 1) in
      let all_match =
        List.for_all
          (fun (r : Spec.register) ->
            match value_at final_spec r.Spec.reg_name with
            | None -> true
            | Some expected ->
              Machine.Value.equal expected
                (Machine.State.get result.Pipesem.state r.Spec.reg_name))
          last_stage_regs
      in
      Some all_match
    end
  in
  {
    instructions;
    retirements = !retirements;
    edge_checks = !edge_checks;
    violations = List.rev !violations;
    lemma1;
    outcome = result.Pipesem.outcome;
    stats = result.Pipesem.stats;
    final_visible_match;
    trace;
  }

type failure = {
  failing_phase : string;
  message : string;
}

(* The hardened entry point: any exception the co-simulation raises —
   a plan width violation from a structurally mutated machine, an
   unknown-register access from a corrupted address, an interpreter
   Eval_error — becomes a typed [Error] instead of aborting the
   caller's batch.  Cancellation is not a failure of the machine under
   test and keeps propagating. *)
let check_result ?ext ?max_instructions ?reference ?compiled ?inject ?cancel t
    =
  match check ?ext ?max_instructions ?reference ?compiled ?inject ?cancel t
  with
  | report -> Ok report
  | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
  | exception e ->
    let failing_phase, message =
      match e with
      | Hw.Plan.Compile_error m -> ("plan compilation", m)
      | Hw.Plan.Run_error m -> ("plan evaluation", m)
      | Hw.Eval.Eval_error m -> ("expression evaluation", m)
      | Hw.Expr.Ill_typed m -> ("expression typing", m)
      | Invalid_argument m -> ("state access", m)
      | e -> ("co-simulation", Printexc.to_string e)
    in
    Error { failing_phase; message }

let pp_report ppf r =
  Format.fprintf ppf
    "data consistency: %d instructions, %d retirements, %d register \
     comparisons, %d violations; lemma 1: %s; outcome: %s@."
    r.instructions r.retirements r.edge_checks
    (List.length r.violations)
    (match r.lemma1 with
    | Lemma_ok -> "ok"
    | Lemma_skipped_rollback -> "skipped (rollbacks)"
    | Lemma_failed es -> Printf.sprintf "%d violations" (List.length es))
    (match r.outcome with
    | Pipesem.Completed -> "completed"
    | Pipesem.Deadlocked -> "DEADLOCK"
    | Pipesem.Out_of_cycles -> "out of cycles");
  List.iteri
    (fun i v ->
      if i < 10 then
        Format.fprintf ppf
          "  violation: cycle %d stage %d instr %d register %s: expected %s, \
           got %s@."
          v.at_cycle v.at_stage v.tag v.register v.expected v.got)
    r.violations
