module Spec = Machine.Spec
module Pipesem = Pipeline.Pipesem

type violation = {
  at_cycle : int;
  at_stage : int;
  tag : int;
  register : string;
  expected : string;
  got : string;
}

type lemma1_status =
  | Lemma_ok
  | Lemma_skipped_rollback
  | Lemma_failed of string list

type report = {
  instructions : int;
  retirements : int;
  edge_checks : int;
  violations : violation list;
  lemma1 : lemma1_status;
  outcome : Pipesem.outcome;
  stats : Pipesem.stats;
  final_visible_match : bool option;
  trace : Pipesem.cycle_record list;
}

let ok r =
  r.violations = []
  && r.outcome = Pipesem.Completed
  && (match r.lemma1 with
     | Lemma_ok | Lemma_skipped_rollback -> true
     | Lemma_failed _ -> false)
  &&
  match r.final_visible_match with None | Some true -> true | Some false -> false

let value_at snapshot name = List.assoc_opt name snapshot

(* The co-simulation core, generic over how the pipelined run is
   produced: [check] gives it a fresh per-call run, [check_batched] a
   per-domain session replay. *)
let check_core ~seq_trace ~run_pipe (t : Pipeline.Transform.t) =
  let base = t.Pipeline.Transform.base in
  let n = base.Spec.n_stages in
  let instructions = seq_trace.Machine.Seqsem.instructions in
  let spec = seq_trace.Machine.Seqsem.spec_before in
  let visible_of_stage =
    Array.init n (fun k ->
        List.filter (fun (r : Spec.register) -> r.Spec.stage = k)
          (Spec.visible_registers base))
  in
  (* Violations are buffered per instruction tag: writes by an
     instruction that is later squashed by a rollback are speculative
     and corrected by the rollback writes (paper §5 — "the guessed
     value has no influence on the correctness"), so its pending
     comparisons are cancelled when the squash happens. *)
  let violations = ref [] in
  let edge_checks = ref 0 in
  let retirements = ref 0 in
  let records = ref [] in
  let compare_reg ~cycle ~stage ~tag snapshot (r : Spec.register) state =
    incr edge_checks;
    let got = Machine.State.get state r.Spec.reg_name in
    match value_at snapshot r.Spec.reg_name with
    | None -> ()
    | Some expected ->
      if not (Machine.Value.equal expected got) then
        violations :=
          {
            at_cycle = cycle;
            at_stage = stage;
            tag;
            register = r.Spec.reg_name;
            expected = Format.asprintf "%a" Machine.Value.pp expected;
            got = Format.asprintf "%a" Machine.Value.pp got;
          }
          :: !violations
  in
  let on_edge (rec_ : Pipesem.cycle_record) state =
    for k = 0 to n - 1 do
      if rec_.Pipesem.ue.(k) then
        match rec_.Pipesem.tags.(k) with
        | Some i when i + 1 <= instructions ->
          List.iter
            (fun r ->
              compare_reg ~cycle:rec_.Pipesem.cycle ~stage:k ~tag:i spec.(i + 1)
                r state)
            visible_of_stage.(k)
        | Some _ | None -> ()
    done
  in
  let on_retire ~tag ~kind state =
    incr retirements;
    match kind with
    | Pipesem.Normal -> ()
    | Pipesem.Via_rollback _ when tag + 1 <= instructions ->
      (* The rollback writes realize the instruction's sequential
         semantics; compare the full visible state. *)
      List.iter
        (fun (r : Spec.register) ->
          compare_reg ~cycle:(-1) ~stage:(-1) ~tag spec.(tag + 1) r state)
        (Spec.visible_registers base)
    | Pipesem.Via_rollback _ -> ()
  in
  let on_cycle (r : Pipesem.cycle_record) =
    records := r :: !records;
    (* A rollback at stage k squashes the instructions in stages 0..k;
       cancel their buffered speculative-write comparisons.  The
       retiring instruction itself (if the speculation retires) is
       re-checked against the full visible state in [on_retire]. *)
    let deepest =
      let rec find k =
        if k < 0 then None
        else if r.Pipesem.rollback.(k) then Some k
        else find (k - 1)
      in
      find (n - 1)
    in
    match deepest with
    | None -> ()
    | Some k -> (
      match r.Pipesem.tags.(k) with
      | None -> ()
      | Some base ->
        violations := List.filter (fun v -> v.tag < base) !violations)
  in
  let callbacks =
    { Pipesem.no_callbacks with Pipesem.on_cycle; on_edge; on_retire }
  in
  let result = run_pipe ~callbacks ~stop_after:instructions in
  let trace = List.rev !records in
  let lemma1 =
    if Pipeline.Schedule.has_rollback trace then Lemma_skipped_rollback
    else
      match Pipeline.Schedule.check_lemma1 ~n_stages:n trace with
      | Ok () -> Lemma_ok
      | Error es -> Lemma_failed es
  in
  let final_visible_match =
    if
      Pipeline.Schedule.has_rollback trace
      || result.Pipesem.outcome <> Pipesem.Completed
    then None
    else begin
      (* Registers of the last stage see no over-fetch interference. *)
      let final_spec = spec.(instructions) in
      let last_stage_regs = visible_of_stage.(n - 1) in
      let all_match =
        List.for_all
          (fun (r : Spec.register) ->
            match value_at final_spec r.Spec.reg_name with
            | None -> true
            | Some expected ->
              Machine.Value.equal expected
                (Machine.State.get result.Pipesem.state r.Spec.reg_name))
          last_stage_regs
      in
      Some all_match
    end
  in
  {
    instructions;
    retirements = !retirements;
    edge_checks = !edge_checks;
    violations = List.rev !violations;
    lemma1;
    outcome = result.Pipesem.outcome;
    stats = result.Pipesem.stats;
    final_visible_match;
    trace;
  }

let check ?ext ?(max_instructions = 200) ?reference ?compiled ?optimize
    ?inject ?cancel (t : Pipeline.Transform.t) =
  Obs.Span.with_span "verify.consistency" @@ fun () ->
  let seq_trace =
    match reference with
    | Some trace -> trace
    | None -> Machine.Seqsem.run ~max_instructions t.Pipeline.Transform.base
  in
  let run_pipe ~callbacks ~stop_after =
    (* Self-compiled plans are hot-path plans: [check_core] never
       reads signals by name, so the unobserved signal forest may
       die.  A caller-supplied [compiled] keeps whatever observability
       it was built with. *)
    let c =
      match compiled with
      | Some c -> c
      | None -> Pipesem.compile ?optimize ~observe:false t
    in
    Pipesem.run_compiled ?ext ~callbacks ?inject ?cancel ~stop_after c
  in
  check_core ~seq_trace ~run_pipe t

(* A machine shape ready for batched checking: the transform plus both
   compiled machines, all immutable and freely shared across domains.
   Per-program mutable state lives in per-domain sessions created on
   demand ({!Pipesem.local_session} / {!Machine.Seqsem.local_session}),
   so a pool worker binds each plan exactly once. *)
type shape = {
  sh_tr : Pipeline.Transform.t;
  sh_pipe : Pipesem.compiled;
  sh_seq : Machine.Seqsem.compiled;
  mutable sh_digest : string option;
      (* memoized {!Pipeline.Transform.digest} of [sh_tr]: lets the
         lane-env cache recognise a freshly built but structurally
         identical shape and reuse its warmed sessions *)
}

let shape ?compiled ?optimize (t : Pipeline.Transform.t) =
  {
    sh_tr = t;
    sh_pipe =
      (match compiled with
      | Some c -> c
      | None -> Pipesem.compile ?optimize ~observe:false t);
    sh_seq = Machine.Seqsem.compile ?optimize t.Pipeline.Transform.base;
    sh_digest = None;
  }

let shape_digest s =
  match s.sh_digest with
  | Some d -> d
  | None ->
    (* The transform digest alone would conflate two shapes of the
       same machine compiled differently (optimized vs raw tape) and
       hand one of them the other's warmed sessions — so fold in the
       compiled plan's observable geometry, which the optimizer
       changes whenever it changes anything. *)
    let p = Pipesem.plan s.sh_pipe in
    let d =
      Printf.sprintf "%s#%d.%d.%d"
        (Pipeline.Transform.digest s.sh_tr)
        (Hw.Plan.n_instrs p) (Hw.Plan.n_slots p) (Hw.Plan.n_groups p)
    in
    s.sh_digest <- Some d;
    d

let shape_transform s = s.sh_tr
let shape_compiled s = s.sh_pipe

let check_batched ?ext ?(max_instructions = 200) ?reference ?inject ?cancel
    ?init (s : shape) =
  Obs.Span.with_span "verify.consistency" @@ fun () ->
  let seq_trace =
    match reference with
    | Some trace -> trace
    | None ->
      fst
        (Machine.Seqsem.run_session ?init ~max_instructions
           (Machine.Seqsem.local_session s.sh_seq))
  in
  let run_pipe ~callbacks ~stop_after =
    Pipesem.run_session ?ext ~callbacks ?inject ?cancel ?init ~stop_after
      (Pipesem.local_session s.sh_pipe)
  in
  check_core ~seq_trace ~run_pipe s.sh_tr

type failure = {
  failing_phase : string;
  message : string;
}

(* The hardened entry point: any exception the co-simulation raises —
   a plan width violation from a structurally mutated machine, an
   unknown-register access from a corrupted address, an interpreter
   Eval_error — becomes a typed [Error] instead of aborting the
   caller's batch.  Cancellation is not a failure of the machine under
   test and keeps propagating. *)
let failure_of_exn e =
  let failing_phase, message =
    match e with
    | Hw.Plan.Compile_error m -> ("plan compilation", m)
    | Hw.Plan.Run_error m -> ("plan evaluation", m)
    | Hw.Eval.Eval_error m -> ("expression evaluation", m)
    | Hw.Expr.Ill_typed m -> ("expression typing", m)
    | Invalid_argument m -> ("state access", m)
    | e -> ("co-simulation", Printexc.to_string e)
  in
  { failing_phase; message }

let check_result ?ext ?max_instructions ?reference ?compiled ?optimize ?inject
    ?cancel t =
  match
    check ?ext ?max_instructions ?reference ?compiled ?optimize ?inject ?cancel
      t
  with
  | report -> Ok report
  | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
  | exception e -> Error (failure_of_exn e)

let check_batched_result ?ext ?max_instructions ?reference ?inject ?cancel
    ?init s =
  match check_batched ?ext ?max_instructions ?reference ?inject ?cancel ?init s
  with
  | report -> Ok report
  | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
  | exception e -> Error (failure_of_exn e)

let pp_report ppf r =
  Format.fprintf ppf
    "data consistency: %d instructions, %d retirements, %d register \
     comparisons, %d violations; lemma 1: %s; outcome: %s@."
    r.instructions r.retirements r.edge_checks
    (List.length r.violations)
    (match r.lemma1 with
    | Lemma_ok -> "ok"
    | Lemma_skipped_rollback -> "skipped (rollbacks)"
    | Lemma_failed es -> Printf.sprintf "%d violations" (List.length es))
    (match r.outcome with
    | Pipesem.Completed -> "completed"
    | Pipesem.Deadlocked -> "DEADLOCK"
    | Pipesem.Out_of_cycles -> "out of cycles");
  List.iteri
    (fun i v ->
      if i < 10 then
        Format.fprintf ppf
          "  violation: cycle %d stage %d instr %d register %s: expected %s, \
           got %s@."
          v.at_cycle v.at_stage v.tag v.register v.expected v.got)
    r.violations

(* ------------------------------------------------------------------ *)
(* Lane-parallel checking: co-simulate up to 62 programs in one
   bit-parallel pipelined run against one bit-parallel sequential
   reference run.  Per lane, every decision the scalar checker makes
   is made here in the same order — buffered per-tag violations with
   rollback cancellation, the incremental scheduling-function lemma,
   the final visible-state comparison — so [lv_ok] matches the scalar
   [ok report] for the same program bit for bit.

   Work counters are staged in a ledger and flushed only if the whole
   pack succeeds; any exception discards the ledger and re-checks each
   lane through the scalar batched path (counters live), which keeps
   WORK totals and verdicts identical to a scalar sweep by
   construction. *)
(* ------------------------------------------------------------------ *)

module State = Machine.State

type lane_verdict = {
  lv_ok : bool;
  lv_outcome : Pipesem.outcome;
  lv_stats : Pipesem.stats;
  lv_divergence : int;
      (** first cycle the lane's control bits split from the pack's
          majority; -1 = never (see {!Pipeline.Pipesem.lane_result}) *)
}

(* Cell lists carry each register's position in the name-sorted
   visible order — the index of its value in a lane snapshot
   ([State.snapshot_visible_lanes] sorts the same way), so the
   per-cycle comparison can index the reference trace instead of
   walking an association list per lane. *)
type lane_env = {
  le_pipe : Pipesem.lane_session;
  le_seq : Machine.Seqsem.lanes_session;
  le_stage_cells : (Spec.register * int * State.lane_cell) list array;
  le_all_cells : (Spec.register * int * State.lane_cell) list;
  le_visible_names : string array;  (* name-sorted visible registers *)
}

let lane_env (s : shape) =
  let base = s.sh_tr.Pipeline.Transform.base in
  let n = base.Spec.n_stages in
  let pipe = Pipesem.lanes_session s.sh_pipe in
  let seq = Machine.Seqsem.lanes_session s.sh_seq in
  let st = Pipesem.lanes_state pipe in
  let visible = Spec.visible_registers base in
  let sorted_names =
    List.sort String.compare
      (List.map (fun (r : Spec.register) -> r.Spec.reg_name) visible)
  in
  let index name =
    let rec go i = function
      | [] -> invalid_arg "Consistency.lane_env: register not visible"
      | n :: tl -> if n = name then i else go (i + 1) tl
    in
    go 0 sorted_names
  in
  let cells regs =
    List.map
      (fun (r : Spec.register) ->
        (r, index r.Spec.reg_name, State.lanes_cell st r.Spec.reg_name))
      regs
  in
  {
    le_pipe = pipe;
    le_seq = seq;
    le_stage_cells =
      Array.init n (fun k ->
          cells (List.filter (fun (r : Spec.register) -> r.Spec.stage = k) visible));
    le_all_cells = cells visible;
    le_visible_names = Array.of_list sorted_names;
  }

(* Per-domain env cache, keyed by the shape's structural digest plus
   the pack's lane count.  Digest keying (not physical equality) lets a
   caller that rebuilds the same transform per query — the bench loop,
   a service handler — land back on warmed sessions instead of binding
   plans anew.  Keying by lane count as well gives every pack width its
   own sessions, so each session sees a constant [act] and its
   cross-run snapshot seed ({!Machine.Seqsem.lanes_session}) stays
   valid instead of being invalidated by alternating pack sizes (an
   exhaustive sweep ends with a partial pack every call). *)
let local_lane_envs : ((string * int) * lane_env) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let local_lane_env s ~act =
  let cache = Domain.DLS.get local_lane_envs in
  let key = (shape_digest s, act) in
  let rec find = function
    | [] -> None
    | (k, e) :: tl -> if k = key then Some e else find tl
  in
  match find !cache with
  | Some e -> e
  | None ->
    let e = lane_env s in
    let rec take n = function
      | [] -> []
      | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl
    in
    cache := take 8 ((key, e) :: !cache);
    e

(* Does the pipelined pack's cell match the reference value for one
   lane?  Width equality is a binding invariant; values are compared
   raw. *)
let soa_matches (cell : State.lane_cell) lane (expected : State.lane_value) =
  match (cell.State.lc_value, expected) with
  | State.Lbool got, State.Lbool exp ->
    Hw.Lanes.test got.State.word lane = Hw.Lanes.test exp.State.word lane
  | State.Lints got, State.Lints exp -> got.(lane) = exp.(lane)
  | State.Lfile got, State.Lfile exp ->
    let g = got.(lane) and e = exp.(lane) in
    Array.length g = Array.length e
    &&
    (let ok = ref true in
     for j = 0 to Array.length g - 1 do
       if g.(j) <> e.(j) then ok := false
     done;
     !ok)
  | _ -> false

let boxed_matches (cell : State.lane_cell) lane (expected : Machine.Value.t) =
  match (cell.State.lc_value, expected) with
  | State.Lbool got, Machine.Value.Scalar bv ->
    Hw.Lanes.test got.State.word lane = (Hw.Bitvec.to_int bv <> 0)
  | State.Lints got, Machine.Value.Scalar bv ->
    got.(lane) = Hw.Bitvec.to_int bv
  | State.Lfile got, Machine.Value.File arr ->
    let g = got.(lane) in
    Array.length g = Array.length arr
    &&
    (let ok = ref true in
     for j = 0 to Array.length g - 1 do
       if g.(j) <> Hw.Bitvec.to_int arr.(j) then ok := false
     done;
     !ok)
  | _ -> false

let check_lanes ?ext ?cancel ?(faulty = false) ?(max_instructions = 200)
    ?references ~inits (s : shape) =
  Obs.Span.with_span "verify.consistency_lanes" @@ fun () ->
  let act = Array.length inits in
  if act = 0 then invalid_arg "Consistency.check_lanes: empty pack";
  let base = s.sh_tr.Pipeline.Transform.base in
  let n = base.Spec.n_stages in
  let ledger = Obs.Counters.ledger () in
  match
    let env = local_lane_env s ~act in
    (* The reference: one SoA sequential run for uniform packs (BMC),
       or caller-supplied per-lane scalar traces (sweeps). *)
    let instr_of, expected_matches, stop_afters =
      match references with
      | Some (refs : Machine.Seqsem.trace array) ->
        if Array.length refs <> act then
          invalid_arg "Consistency.check_lanes: references/inits length mismatch";
        ( (fun l -> refs.(l).Machine.Seqsem.instructions),
          (fun ~lane ~snap _idx name cell ->
            match
              List.assoc_opt name
                refs.(lane).Machine.Seqsem.spec_before.(snap)
            with
            | None -> true
            | Some v -> boxed_matches cell lane v),
          Array.map
            (fun (r : Machine.Seqsem.trace) -> r.Machine.Seqsem.instructions)
            refs )
      | None ->
        let lt =
          Machine.Seqsem.run_lanes_session ~ledger ~inits ~max_instructions
            env.le_seq
        in
        (* Snapshot alists are name-sorted over exactly the visible
           registers, so the cell's precomputed index addresses its
           value directly — no per-lane list walk. *)
        let tbl =
          Array.map
            (fun snap -> Array.of_list (List.map snd snap))
            lt.Machine.Seqsem.lt_before
        in
        (* Provenance fast path for visible register files: if the
           reference lane's row was reset from image array [src] and
           never written during the whole run ([lc_srcs] still holds
           [src] now that the run is over), then every snapshot of that
           lane's row equals [src]'s contents; if the pipelined lane's
           live row carries the same physical [src] at compare time,
           the rows are equal without scanning them.  This is what
           keeps a 4k-entry data memory out of the per-retire compare
           when no store ever touches it. *)
        let seq_st = Machine.Seqsem.lanes_state env.le_seq in
        let seq_srcs =
          Array.map
            (fun name ->
              let cell = State.lanes_cell seq_st name in
              if Array.length cell.State.lc_srcs = 0 then [||]
              else Array.copy cell.State.lc_srcs)
            env.le_visible_names
        in
        ( (fun _ -> lt.Machine.Seqsem.lt_instructions),
          (fun ~lane ~snap idx _name cell ->
            let ss = seq_srcs.(idx) in
            (Array.length ss > 0
            &&
            match (ss.(lane), cell.State.lc_srcs.(lane)) with
            | Some s_seq, Some s_pipe -> s_seq == s_pipe
            | _ -> false)
            || soa_matches cell lane tbl.(snap).(idx)),
          Array.make act lt.Machine.Seqsem.lt_instructions )
    in
    (* Per-lane co-simulation state. *)
    let violations = Array.make act [] in
    let rolled_back = Array.make act false in
    let lemma_fail = Array.make act false in
    let itab = Array.make_matrix act n 0 in
    let lob_pre_edge ~cycle:_ (sg : Pipeline.Stall_engine.lane_signals) ~tags
        ~running =
      for l = 0 to act - 1 do
        if Hw.Lanes.test running l then begin
          (* rollback: remember it, and cancel the squashed
             instructions' buffered speculative-write comparisons *)
          let deepest = ref (-1) in
          for k = 0 to n - 1 do
            if Hw.Lanes.test sg.Pipeline.Stall_engine.l_rollback.(k) l then
              deepest := k
          done;
          if !deepest >= 0 then begin
            rolled_back.(l) <- true;
            let b = tags.(!deepest).(l) in
            if b >= 0 then
              violations.(l) <- List.filter (fun tag -> tag < b) violations.(l)
          end;
          (* incremental scheduling-function lemma (skipped for lanes
             that ever roll back, like the scalar checker) *)
          if not rolled_back.(l) then begin
            let it = itab.(l) in
            for k = 1 to n - 1 do
              let d = it.(k - 1) - it.(k) in
              if d <> 0 && d <> 1 then lemma_fail.(l) <- true;
              let empty =
                not (Hw.Lanes.test sg.Pipeline.Stall_engine.l_full.(k) l)
              in
              if empty <> (d = 0) then lemma_fail.(l) <- true
            done;
            for k = 0 to n - 1 do
              let tag = tags.(k).(l) in
              if
                tag >= 0
                && Hw.Lanes.test sg.Pipeline.Stall_engine.l_full.(k) l
                && tag <> it.(k)
              then lemma_fail.(l) <- true
            done;
            for k = n - 1 downto 1 do
              if Hw.Lanes.test sg.Pipeline.Stall_engine.l_ue.(k) l then begin
                if it.(k - 1) <> it.(k) + 1 then lemma_fail.(l) <- true;
                it.(k) <- it.(k - 1)
              end
            done;
            if Hw.Lanes.test sg.Pipeline.Stall_engine.l_ue.(0) l then
              it.(0) <- it.(0) + 1
          end
        end
      done
    in
    let lob_post_edge ~cycle:_ (sg : Pipeline.Stall_engine.lane_signals) ~tags
        ~running =
      for k = 0 to n - 1 do
        let ue = sg.Pipeline.Stall_engine.l_ue.(k) land running in
        if ue <> 0 then
          Hw.Lanes.iter ~mask:ue (fun l ->
              let i = tags.(k).(l) in
              if i >= 0 && i + 1 <= instr_of l then
                List.iter
                  (fun ((r : Spec.register), idx, cell) ->
                    if
                      not
                        (expected_matches ~lane:l ~snap:(i + 1) idx
                           r.Spec.reg_name cell)
                    then violations.(l) <- i :: violations.(l))
                  env.le_stage_cells.(k))
      done
    in
    let lob_retire ~cycle:_ ~lane ~tag ~rollback =
      match rollback with
      | None -> ()
      | Some _ when tag + 1 <= instr_of lane ->
        List.iter
          (fun ((r : Spec.register), idx, cell) ->
            if
              not
                (expected_matches ~lane ~snap:(tag + 1) idx r.Spec.reg_name
                   cell)
            then violations.(lane) <- tag :: violations.(lane))
          env.le_all_cells
      | Some _ -> ()
    in
    let obs = { Pipesem.lob_pre_edge; lob_post_edge; lob_retire } in
    let results =
      Pipesem.run_lanes_session ?ext ?cancel ~obs ~faulty ~ledger ~inits
        ~stop_afters env.le_pipe
    in
    Array.init act (fun l ->
        let r = results.(l) in
        let completed = r.Pipesem.lr_outcome = Pipesem.Completed in
        let final_ok =
          if rolled_back.(l) || not completed then true
          else
            List.for_all
              (fun ((reg : Spec.register), idx, cell) ->
                reg.Spec.stage <> n - 1
                || expected_matches ~lane:l ~snap:(instr_of l) idx
                     reg.Spec.reg_name cell)
              env.le_all_cells
        in
        {
          lv_ok =
            violations.(l) = []
            && completed
            && (rolled_back.(l) || not lemma_fail.(l))
            && final_ok;
          lv_outcome = r.Pipesem.lr_outcome;
          lv_stats = r.Pipesem.lr_stats;
          lv_divergence = r.Pipesem.lr_divergence;
        })
  with
  | verdicts ->
    Obs.Counters.ledger_flush ledger;
    verdicts
  | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
  | exception _ ->
    (* The lane engine could not represent this pack (or hit a machine
       defect mid-pack).  Drop all staged work and re-check every lane
       through the scalar path, counters live: behaviour and WORK
       totals are the scalar sweep's by construction. *)
    let inject = if faulty then Some Pipesem.no_injection else None in
    Array.init act (fun l ->
        let reference =
          match references with Some refs -> Some refs.(l) | None -> None
        in
        match
          check_batched_result ?ext ?reference ?inject ?cancel
            ~max_instructions ~init:inits.(l) s
        with
        | Ok report ->
          {
            lv_ok = ok report;
            lv_outcome = report.outcome;
            lv_stats = report.stats;
            lv_divergence = -1;
          }
        | Error _ ->
          {
            lv_ok = false;
            lv_outcome = Pipesem.Out_of_cycles;
            lv_stats =
              {
                Pipesem.cycles = 0;
                retired = 0;
                fetch_stall_cycles = 0;
                dhaz_cycles = 0;
                ext_cycles = 0;
                rollbacks = 0;
                squashed = 0;
              };
            lv_divergence = -1;
          })
