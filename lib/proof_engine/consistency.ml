module Spec = Machine.Spec
module Pipesem = Pipeline.Pipesem

type violation = {
  at_cycle : int;
  at_stage : int;
  tag : int;
  register : string;
  expected : string;
  got : string;
}

type lemma1_status =
  | Lemma_ok
  | Lemma_skipped_rollback
  | Lemma_failed of string list

type report = {
  instructions : int;
  retirements : int;
  edge_checks : int;
  violations : violation list;
  lemma1 : lemma1_status;
  outcome : Pipesem.outcome;
  stats : Pipesem.stats;
  final_visible_match : bool option;
  trace : Pipesem.cycle_record list;
}

let ok r =
  r.violations = []
  && r.outcome = Pipesem.Completed
  && (match r.lemma1 with
     | Lemma_ok | Lemma_skipped_rollback -> true
     | Lemma_failed _ -> false)
  &&
  match r.final_visible_match with None | Some true -> true | Some false -> false

let value_at snapshot name = List.assoc_opt name snapshot

(* The co-simulation core, generic over how the pipelined run is
   produced: [check] gives it a fresh per-call run, [check_batched] a
   per-domain session replay. *)
let check_core ~seq_trace ~run_pipe (t : Pipeline.Transform.t) =
  let base = t.Pipeline.Transform.base in
  let n = base.Spec.n_stages in
  let instructions = seq_trace.Machine.Seqsem.instructions in
  let spec = seq_trace.Machine.Seqsem.spec_before in
  let visible_of_stage =
    Array.init n (fun k ->
        List.filter (fun (r : Spec.register) -> r.Spec.stage = k)
          (Spec.visible_registers base))
  in
  (* Violations are buffered per instruction tag: writes by an
     instruction that is later squashed by a rollback are speculative
     and corrected by the rollback writes (paper §5 — "the guessed
     value has no influence on the correctness"), so its pending
     comparisons are cancelled when the squash happens. *)
  let violations = ref [] in
  let edge_checks = ref 0 in
  let retirements = ref 0 in
  let records = ref [] in
  let compare_reg ~cycle ~stage ~tag snapshot (r : Spec.register) state =
    incr edge_checks;
    let got = Machine.State.get state r.Spec.reg_name in
    match value_at snapshot r.Spec.reg_name with
    | None -> ()
    | Some expected ->
      if not (Machine.Value.equal expected got) then
        violations :=
          {
            at_cycle = cycle;
            at_stage = stage;
            tag;
            register = r.Spec.reg_name;
            expected = Format.asprintf "%a" Machine.Value.pp expected;
            got = Format.asprintf "%a" Machine.Value.pp got;
          }
          :: !violations
  in
  let on_edge (rec_ : Pipesem.cycle_record) state =
    for k = 0 to n - 1 do
      if rec_.Pipesem.ue.(k) then
        match rec_.Pipesem.tags.(k) with
        | Some i when i + 1 <= instructions ->
          List.iter
            (fun r ->
              compare_reg ~cycle:rec_.Pipesem.cycle ~stage:k ~tag:i spec.(i + 1)
                r state)
            visible_of_stage.(k)
        | Some _ | None -> ()
    done
  in
  let on_retire ~tag ~kind state =
    incr retirements;
    match kind with
    | Pipesem.Normal -> ()
    | Pipesem.Via_rollback _ when tag + 1 <= instructions ->
      (* The rollback writes realize the instruction's sequential
         semantics; compare the full visible state. *)
      List.iter
        (fun (r : Spec.register) ->
          compare_reg ~cycle:(-1) ~stage:(-1) ~tag spec.(tag + 1) r state)
        (Spec.visible_registers base)
    | Pipesem.Via_rollback _ -> ()
  in
  let on_cycle (r : Pipesem.cycle_record) =
    records := r :: !records;
    (* A rollback at stage k squashes the instructions in stages 0..k;
       cancel their buffered speculative-write comparisons.  The
       retiring instruction itself (if the speculation retires) is
       re-checked against the full visible state in [on_retire]. *)
    let deepest =
      let rec find k =
        if k < 0 then None
        else if r.Pipesem.rollback.(k) then Some k
        else find (k - 1)
      in
      find (n - 1)
    in
    match deepest with
    | None -> ()
    | Some k -> (
      match r.Pipesem.tags.(k) with
      | None -> ()
      | Some base ->
        violations := List.filter (fun v -> v.tag < base) !violations)
  in
  let callbacks =
    { Pipesem.no_callbacks with Pipesem.on_cycle; on_edge; on_retire }
  in
  let result = run_pipe ~callbacks ~stop_after:instructions in
  let trace = List.rev !records in
  let lemma1 =
    if Pipeline.Schedule.has_rollback trace then Lemma_skipped_rollback
    else
      match Pipeline.Schedule.check_lemma1 ~n_stages:n trace with
      | Ok () -> Lemma_ok
      | Error es -> Lemma_failed es
  in
  let final_visible_match =
    if
      Pipeline.Schedule.has_rollback trace
      || result.Pipesem.outcome <> Pipesem.Completed
    then None
    else begin
      (* Registers of the last stage see no over-fetch interference. *)
      let final_spec = spec.(instructions) in
      let last_stage_regs = visible_of_stage.(n - 1) in
      let all_match =
        List.for_all
          (fun (r : Spec.register) ->
            match value_at final_spec r.Spec.reg_name with
            | None -> true
            | Some expected ->
              Machine.Value.equal expected
                (Machine.State.get result.Pipesem.state r.Spec.reg_name))
          last_stage_regs
      in
      Some all_match
    end
  in
  {
    instructions;
    retirements = !retirements;
    edge_checks = !edge_checks;
    violations = List.rev !violations;
    lemma1;
    outcome = result.Pipesem.outcome;
    stats = result.Pipesem.stats;
    final_visible_match;
    trace;
  }

let check ?ext ?(max_instructions = 200) ?reference ?compiled ?inject ?cancel
    (t : Pipeline.Transform.t) =
  Obs.Span.with_span "verify.consistency" @@ fun () ->
  let seq_trace =
    match reference with
    | Some trace -> trace
    | None -> Machine.Seqsem.run ~max_instructions t.Pipeline.Transform.base
  in
  let run_pipe ~callbacks ~stop_after =
    let c = match compiled with Some c -> c | None -> Pipesem.compile t in
    Pipesem.run_compiled ?ext ~callbacks ?inject ?cancel ~stop_after c
  in
  check_core ~seq_trace ~run_pipe t

(* A machine shape ready for batched checking: the transform plus both
   compiled machines, all immutable and freely shared across domains.
   Per-program mutable state lives in per-domain sessions created on
   demand ({!Pipesem.local_session} / {!Machine.Seqsem.local_session}),
   so a pool worker binds each plan exactly once. *)
type shape = {
  sh_tr : Pipeline.Transform.t;
  sh_pipe : Pipesem.compiled;
  sh_seq : Machine.Seqsem.compiled;
}

let shape ?compiled (t : Pipeline.Transform.t) =
  {
    sh_tr = t;
    sh_pipe = (match compiled with Some c -> c | None -> Pipesem.compile t);
    sh_seq = Machine.Seqsem.compile t.Pipeline.Transform.base;
  }

let shape_transform s = s.sh_tr
let shape_compiled s = s.sh_pipe

let check_batched ?ext ?(max_instructions = 200) ?reference ?inject ?cancel
    ?init (s : shape) =
  Obs.Span.with_span "verify.consistency" @@ fun () ->
  let seq_trace =
    match reference with
    | Some trace -> trace
    | None ->
      fst
        (Machine.Seqsem.run_session ?init ~max_instructions
           (Machine.Seqsem.local_session s.sh_seq))
  in
  let run_pipe ~callbacks ~stop_after =
    Pipesem.run_session ?ext ~callbacks ?inject ?cancel ?init ~stop_after
      (Pipesem.local_session s.sh_pipe)
  in
  check_core ~seq_trace ~run_pipe s.sh_tr

type failure = {
  failing_phase : string;
  message : string;
}

(* The hardened entry point: any exception the co-simulation raises —
   a plan width violation from a structurally mutated machine, an
   unknown-register access from a corrupted address, an interpreter
   Eval_error — becomes a typed [Error] instead of aborting the
   caller's batch.  Cancellation is not a failure of the machine under
   test and keeps propagating. *)
let failure_of_exn e =
  let failing_phase, message =
    match e with
    | Hw.Plan.Compile_error m -> ("plan compilation", m)
    | Hw.Plan.Run_error m -> ("plan evaluation", m)
    | Hw.Eval.Eval_error m -> ("expression evaluation", m)
    | Hw.Expr.Ill_typed m -> ("expression typing", m)
    | Invalid_argument m -> ("state access", m)
    | e -> ("co-simulation", Printexc.to_string e)
  in
  { failing_phase; message }

let check_result ?ext ?max_instructions ?reference ?compiled ?inject ?cancel t
    =
  match check ?ext ?max_instructions ?reference ?compiled ?inject ?cancel t
  with
  | report -> Ok report
  | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
  | exception e -> Error (failure_of_exn e)

let check_batched_result ?ext ?max_instructions ?reference ?inject ?cancel
    ?init s =
  match check_batched ?ext ?max_instructions ?reference ?inject ?cancel ?init s
  with
  | report -> Ok report
  | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
  | exception e -> Error (failure_of_exn e)

let pp_report ppf r =
  Format.fprintf ppf
    "data consistency: %d instructions, %d retirements, %d register \
     comparisons, %d violations; lemma 1: %s; outcome: %s@."
    r.instructions r.retirements r.edge_checks
    (List.length r.violations)
    (match r.lemma1 with
    | Lemma_ok -> "ok"
    | Lemma_skipped_rollback -> "skipped (rollbacks)"
    | Lemma_failed es -> Printf.sprintf "%d violations" (List.length es))
    (match r.outcome with
    | Pipesem.Completed -> "completed"
    | Pipesem.Deadlocked -> "DEADLOCK"
    | Pipesem.Out_of_cycles -> "out of cycles");
  List.iteri
    (fun i v ->
      if i < 10 then
        Format.fprintf ppf
          "  violation: cycle %d stage %d instr %d register %s: expected %s, \
           got %s@."
          v.at_cycle v.at_stage v.tag v.register v.expected v.got)
    r.violations
