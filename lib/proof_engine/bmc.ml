type outcome = {
  programs : int;
  failures : (int list * string) list;
}

let ok o = o.failures = []

let reason_of_result = function
  | Error (f : Consistency.failure) ->
    Some
      (Printf.sprintf "%s failed: %s" f.Consistency.failing_phase
         f.Consistency.message)
  | Ok report ->
    if Consistency.ok report then None
    else
      Some
        (match report.Consistency.violations with
        | v :: _ ->
          Printf.sprintf "instr %d register %s: expected %s, got %s"
            v.Consistency.tag v.Consistency.register v.Consistency.expected
            v.Consistency.got
        | [] -> (
          match report.Consistency.outcome with
          | Pipeline.Pipesem.Deadlocked -> "deadlock"
          | Pipeline.Pipesem.Out_of_cycles -> "out of cycles"
          | Pipeline.Pipesem.Completed -> "lemma or final-state failure"))

let exhaustive ?(max_failures = 5) ?ext ?pool ?inject ?cancel ?load ~build
    ~alphabet ~length () =
  Obs.Span.with_span "verify.bmc" @@ fun () ->
  (* Materialize the program space in enumeration order, then check
     every program independently — the unit of pool fan-out.  Failures
     keep the enumeration order, so the outcome is identical to the
     serial sweep at any pool size. *)
  let rec enumerate prefix remaining =
    if remaining = 0 then [ List.rev prefix ]
    else
      List.concat_map
        (fun insn -> enumerate (insn :: prefix) (remaining - 1))
        alphabet
  in
  let programs = enumerate [] length in
  Obs.Counters.add Obs.Counters.Bmc_programs (List.length programs);
  let check =
    match load with
    | None ->
      (* Rebuild path: each program builds its own machine and plan. *)
      fun program ->
        (match build program with
        | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
        | exception e -> Some ("transform failed: " ^ Printexc.to_string e)
        | t ->
          reason_of_result
            (Consistency.check_result ?ext ?inject ?cancel
               ~max_instructions:(length + 4) t))
    | Some load ->
      (* Batched path: [build] runs once, on the first enumerated
         program, to fix the machine shape; every program (including
         the first) is then checked by rebinding [load program] over
         the compiled shape through per-domain sessions.  Requires the
         shape-invariance contract: [build p] differs from
         [build p'] only in the initial values that [load] covers. *)
      let shape =
        match programs with
        | [] -> Ok None
        | p0 :: _ -> (
          match build p0 with
          | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
          | exception e -> Error ("transform failed: " ^ Printexc.to_string e)
          | t -> (
            match Consistency.shape t with
            | s -> Ok (Some s)
            | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
            | exception Hw.Plan.Compile_error m ->
              Error ("plan compilation failed: " ^ m)
            | exception e ->
              Error ("shape compilation failed: " ^ Printexc.to_string e)))
      in
      fun program ->
        (match shape with
        | Error reason -> Some reason
        | Ok None -> None
        | Ok (Some shape) ->
          reason_of_result
            (Consistency.check_batched_result ?ext ?inject ?cancel
               ~max_instructions:(length + 4) ~init:(load program) shape))
  in
  let checked =
    Exec.Pool.map_opt pool (fun program -> (program, check program)) programs
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (program, Some reason) :: rest -> (program, reason) :: take (n - 1) rest
    | (_, None) :: rest -> take n rest
  in
  { programs = List.length programs; failures = take max_failures checked }

let pp ppf o =
  Format.fprintf ppf "exhaustive check: %d programs, %d failures@." o.programs
    (List.length o.failures);
  List.iter
    (fun (prog, reason) ->
      Format.fprintf ppf "  program [%s]: %s@."
        (String.concat "; " (List.map string_of_int prog))
        reason)
    o.failures
