type outcome = {
  programs : int;
  failures : (int list * string) list;
}

let ok o = o.failures = []

let reason_of_result = function
  | Error (f : Consistency.failure) ->
    Some
      (Printf.sprintf "%s failed: %s" f.Consistency.failing_phase
         f.Consistency.message)
  | Ok report ->
    if Consistency.ok report then None
    else
      Some
        (match report.Consistency.violations with
        | v :: _ ->
          Printf.sprintf "instr %d register %s: expected %s, got %s"
            v.Consistency.tag v.Consistency.register v.Consistency.expected
            v.Consistency.got
        | [] -> (
          match report.Consistency.outcome with
          | Pipeline.Pipesem.Deadlocked -> "deadlock"
          | Pipeline.Pipesem.Out_of_cycles -> "out of cycles"
          | Pipeline.Pipesem.Completed -> "lemma or final-state failure"))

let exhaustive ?(max_failures = 5) ?ext ?pool ?inject ?(lanes = false)
    ?optimize ?shape:precompiled ?cancel ?load ~build ~alphabet ~length () =
  Obs.Span.with_span "verify.bmc" @@ fun () ->
  (* Materialize the program space in enumeration order, then check
     every program independently — the unit of pool fan-out.  Failures
     keep the enumeration order, so the outcome is identical to the
     serial sweep at any pool size. *)
  let rec enumerate prefix remaining =
    if remaining = 0 then [ List.rev prefix ]
    else
      List.concat_map
        (fun insn -> enumerate (insn :: prefix) (remaining - 1))
        alphabet
  in
  let programs = enumerate [] length in
  Obs.Counters.add Obs.Counters.Bmc_programs (List.length programs);
  let max_instructions = length + 4 in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (program, Some reason) :: rest -> (program, reason) :: take (n - 1) rest
    | (_, None) :: rest -> take n rest
  in
  match load with
  | None ->
    (* Rebuild path: each program builds its own machine and plan. *)
    let check program =
      match build program with
      | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
      | exception e -> Some ("transform failed: " ^ Printexc.to_string e)
      | t ->
        reason_of_result
          (Consistency.check_result ?ext ?optimize ?inject ?cancel
             ~max_instructions t)
    in
    let checked =
      Exec.Pool.map_opt pool (fun program -> (program, check program)) programs
    in
    { programs = List.length programs; failures = take max_failures checked }
  | Some load -> (
    (* Batched path: [build] runs once, on the first enumerated
       program, to fix the machine shape; every program (including
       the first) is then checked by rebinding [load program] over
       the compiled shape through per-domain sessions.  Requires the
       shape-invariance contract: [build p] differs from
       [build p'] only in the initial values that [load] covers. *)
    let shape =
      match (precompiled, programs) with
      | Some s, _ :: _ -> Ok (Some s)
      | _, [] -> Ok None
      | None, p0 :: _ -> (
        match build p0 with
        | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
        | exception e -> Error ("transform failed: " ^ Printexc.to_string e)
        | t -> (
          match Consistency.shape ?optimize t with
          | s -> Ok (Some s)
          | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
          | exception Hw.Plan.Compile_error m ->
            Error ("plan compilation failed: " ^ m)
          | exception e ->
            Error ("shape compilation failed: " ^ Printexc.to_string e)))
    in
    (* Lane mode only drives runs the bit-parallel loop can represent:
       no injection hooks (the physical [no_injection] record of
       structural mutants is hook-free and allowed). *)
    let use_lanes =
      lanes
      &&
      match inject with
      | None -> true
      | Some i -> i == Pipeline.Pipesem.no_injection
    in
    if not use_lanes then begin
      let check program =
        match shape with
        | Error reason -> Some reason
        | Ok None -> None
        | Ok (Some shape) ->
          reason_of_result
            (Consistency.check_batched_result ?ext ?inject ?cancel
               ~max_instructions ~init:(load program) shape)
      in
      let checked =
        Exec.Pool.map_opt pool
          (fun program -> (program, check program))
          programs
      in
      { programs = List.length programs; failures = take max_failures checked }
    end
    else begin
      (* Pack consecutive programs (enumeration order preserved) into
         ≤62-lane word packs — the unit of pool fan-out.  A lane
         verdict carries no failure message; the losers are replayed
         through the scalar path below, outside the pool, with their
         counters discarded (the lane run already accounted the
         program's work). *)
      let faulty = inject <> None in
      let rec chunk = function
        | [] -> []
        | l ->
          let rec split n acc = function
            | rest when n = 0 -> (List.rev acc, rest)
            | [] -> (List.rev acc, [])
            | x :: tl -> split (n - 1) (x :: acc) tl
          in
          let pack, rest = split Hw.Lanes.max_lanes [] l in
          pack :: chunk rest
      in
      let packs = chunk programs in
      let check_pack pack =
        match shape with
        | Error reason -> List.map (fun p -> (p, `Fail reason)) pack
        | Ok None -> []
        | Ok (Some shape) ->
          let parr = Array.of_list pack in
          let inits = Array.map load parr in
          let verdicts =
            Consistency.check_lanes ?ext ?cancel ~faulty ~max_instructions
              ~inits shape
          in
          List.of_seq
            (Seq.mapi
               (fun l p ->
                 (p, if verdicts.(l).Consistency.lv_ok then `Pass else `Replay))
               (Array.to_seq parr))
      in
      let checked : (int list * [ `Pass | `Replay | `Fail of string ]) list =
        List.concat (Exec.Pool.map_opt pool check_pack packs)
      in
      let replay program =
        match shape with
        | Error reason -> reason
        | Ok None -> assert false
        | Ok (Some shape) ->
          Obs.Counters.with_discarded (fun () ->
              match
                reason_of_result
                  (Consistency.check_batched_result ?ext ?inject ?cancel
                     ~max_instructions ~init:(load program) shape)
              with
              | Some reason -> reason
              | None -> "lane/scalar divergence: scalar replay verified clean")
      in
      let rec take_lane n
          (l : (int list * [ `Pass | `Replay | `Fail of string ]) list) =
        match l with
        | [] -> []
        | _ when n = 0 -> []
        | (program, `Replay) :: rest ->
          (program, replay program) :: take_lane (n - 1) rest
        | (program, `Fail reason) :: rest ->
          (program, reason) :: take_lane (n - 1) rest
        | (_, `Pass) :: rest -> take_lane n rest
      in
      {
        programs = List.length programs;
        failures = take_lane max_failures checked;
      }
    end)

let pp ppf o =
  Format.fprintf ppf "exhaustive check: %d programs, %d failures@." o.programs
    (List.length o.failures);
  List.iter
    (fun (prog, reason) ->
      Format.fprintf ppf "  program [%s]: %s@."
        (String.concat "; " (List.map string_of_int prog))
        reason)
    o.failures
