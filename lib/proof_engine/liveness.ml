module Pipesem = Pipeline.Pipesem

type report = {
  checked : int;
  max_gap : int;
  bound : int;
  outcome : Pipesem.outcome;
}

let ok r = r.outcome = Pipesem.Completed && r.max_gap <= r.bound

let check ?ext ?bound ?compiled ?inject ?cancel ~stop_after
    (t : Pipeline.Transform.t) =
  Obs.Span.with_span "verify.liveness" @@ fun () ->
  let n = t.Pipeline.Transform.base.Machine.Spec.n_stages in
  let bound = match bound with Some b -> b | None -> (8 * n) + 64 in
  let last_retire_cycle = ref 0 in
  let current_cycle = ref 0 in
  let max_gap = ref 0 in
  let checked = ref 0 in
  let callbacks =
    {
      Pipesem.no_callbacks with
      Pipesem.on_cycle =
        (fun r -> current_cycle := r.Pipesem.cycle);
      on_retire =
        (fun ~tag:_ ~kind:_ _ ->
          incr checked;
          let gap = !current_cycle - !last_retire_cycle + 1 in
          if gap > !max_gap then max_gap := gap;
          last_retire_cycle := !current_cycle);
    }
  in
  let result =
    let c = match compiled with Some c -> c | None -> Pipesem.compile t in
    Pipesem.run_compiled ?ext ~callbacks ?inject ?cancel ~stop_after c
  in
  {
    checked = !checked;
    max_gap = !max_gap;
    bound;
    outcome = result.Pipesem.outcome;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "liveness: %d retirements, max inter-retirement gap %d cycles (bound %d): \
     %s@."
    r.checked r.max_gap r.bound
    (if ok r then "ok" else "VIOLATED")
