(** Proof obligations generated alongside the hardware (paper §1.1:
    "in addition to the forwarding and interlock hardware, our tool
    therefore also generates a proof of correctness for the new
    hardware").

    [generate] instantiates the paper's lemma structure with the
    machine-specific registers, stages and forwarding rules of one
    transformation.  [discharge_all] then checks each obligation by the
    stated method: trace invariants, co-simulation against the
    sequential reference, or (for small machines driven externally via
    {!Bmc}) exhaustively.  The PVS-style rendering of the same
    obligations is produced by {!Pvs_gen}. *)

type method_ =
  | Trace_invariant  (** checked on recorded pipeline traces *)
  | Cosimulation     (** checked against the sequential reference *)
  | By_construction  (** structural property of the generated netlist *)

type status =
  | Pending
  | Discharged of string  (** evidence summary *)
  | Failed of string

type obligation = {
  ob_id : string;
  ob_title : string;
  ob_statement : string;
  ob_method : method_;
  mutable ob_status : status;
}

val generate : Pipeline.Transform.t -> obligation list
(** Lemma 1 (three properties), Lemma 2 and Lemma 3 per forwarding
    rule, stall-engine invariants, speculation safety per speculation,
    the data-consistency theorem per visible register, and the
    liveness theorem. *)

val discharge_all :
  ?ext:Pipeline.Pipesem.ext_model ->
  ?max_instructions:int ->
  ?reference:Machine.Seqsem.trace ->
  ?compiled:Pipeline.Pipesem.compiled ->
  ?pool:Exec.Pool.t ->
  ?inject:Pipeline.Pipesem.injection ->
  ?cancel:Exec.Cancel.token ->
  ?disasm:(int -> string option) ->
  Pipeline.Transform.t ->
  obligation list
(** Generate and check.  Structural obligations are checked on the
    netlist; behavioural ones by one co-simulation run with full trace
    recording.  [compiled] reuses an existing evaluation plan for the
    co-simulations.

    With [pool], the independent checks fan out over the domain pool:
    first the co-simulation alongside every per-rule structural (BDD)
    proof, then the trace-invariant re-derivation, the liveness run
    and the symbolic strengthening concurrently.  Each task either
    builds private state (a BDD manager per rule) or instantiates the
    shared immutable plan privately, and the statuses are assembled in
    the fixed obligation order — the result is bit-identical to the
    serial discharge.

    No checker exception escapes as an exception: a co-simulation
    that diverges or dies (e.g. on a fault-campaign mutant) marks the
    obligations it was meant to discharge [Failed] with typed
    evidence — the diverging register, cycle, stage, instruction tag
    and (via [disasm], a tag-to-text hook) its disassembly — so one
    failing obligation never masks the others.  [inject] runs the
    behavioural checks against a faulted machine and disables the
    symbolic strengthening (which replays unfaulted semantics).
    Only {!Exec.Cancel.Cancelled} propagates, when [cancel] fires. *)

val all_discharged : obligation list -> bool

val pp : Format.formatter -> obligation list -> unit
