(** Random prepared sequential machines.

    The fixed case studies (toy, DLX, the depth-parametric family)
    exercise hand-picked structures.  This generator samples the
    machine space itself: random stage count, data width, register-file
    size, random combinational data paths, and a randomly placed "late"
    functional unit — then the property tests assert that
    {e every generated machine}, once transformed, is data consistent
    with its own sequential semantics on random programs.

    The family: an [n]-stage machine ([3..6]) fetching 16-bit
    instructions ([late(1) dst(a) src1(a) src2(a)] fields), reading two
    register-file operands in stage 1 (the forwarded reads), computing
    a random expression over them, passing the result down a forwarding
    chain, with write-back in the last stage; optionally a visible
    accumulator register in the last stage.  Late operations produce
    their (different, also random) expression only in a random later
    stage — randomized interlock structure. *)

type params = {
  n_stages : int;
  data_width : int;
  addr_bits : int;
  late_stage : int option;  (** stage of the late unit, in [2..n-2] *)
  has_accumulator : bool;
  seed : int;
}

val sample_params : seed:int -> params
(** Deterministic in the seed. *)

val machine : params -> program:int list -> Machine.Spec.t

val encode : params -> late:bool -> dst:int -> src1:int -> src2:int -> int
(** Pack one instruction in the machine's encoding. *)

val image : params -> program:int list -> (string * Machine.Value.t) list
(** The program-dependent initial values only (the IMEM contents); the
    machine structure and every other initial value are deterministic
    in [params], so this is the [?init] override for batched checking
    ({!Bmc.exhaustive}'s [load]). *)

val hints : params -> Pipeline.Fwd_spec.hint list

val random_program : params -> length:int -> int list
(** Random instructions with a dependency bias, in the machine's
    encoding. *)

val check_one : seed:int -> program_length:int -> (unit, string) result
(** Sample a machine and a program, transform, co-simulate against the
    sequential semantics, and report. *)

val check_many :
  ?pool:Exec.Pool.t -> ?program_length:int -> int list ->
  (int * (unit, string) result) list
(** {!check_one} for every seed (default [program_length] 30),
    fanned out over the pool when given: the machine-space BMC sweep.
    Each seed builds its own machine, plan and traces, so results are
    independent and returned in seed order. *)

val pp_params : Format.formatter -> params -> unit
