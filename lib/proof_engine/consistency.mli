(** Data consistency (paper §6.2), checked by co-simulation.

    The criterion: let [I(k,T) = i], let [R ∈ out(k)] be a
    programmer-visible register; then the implementation value of [R]
    relates to the specification value [R_S^i] (the correct value right
    before instruction [I_i] executes).  Equivalently, and as checked
    here: right after instruction [i] updates stage [k] ([ue_k] clock
    edge), every visible register of [out(k)] holds [R_S^{i+1}].

    The specification values come from running the prepared sequential
    machine ({!Machine.Seqsem.run}); the implementation values from the
    pipelined simulator, via its [on_edge] hook.  For a speculation
    with [retires = true] (precise interrupts) resolving in the last
    stage, the rollback commit is checked against the full visible
    state [R_S^{i+1}]. *)

type violation = {
  at_cycle : int;
  at_stage : int;
  tag : int;       (** instruction index *)
  register : string;
  expected : string;
  got : string;
}

type lemma1_status =
  | Lemma_ok
  | Lemma_skipped_rollback
      (** the trace contained rollbacks; the scheduling-function lemmas
          apply to rollback-free execution (paper §6.1) *)
  | Lemma_failed of string list

type report = {
  instructions : int;      (** instructions co-checked *)
  retirements : int;
  edge_checks : int;       (** individual register comparisons made *)
  violations : violation list;
  lemma1 : lemma1_status;
      (** scheduling-function properties on the same trace *)
  outcome : Pipeline.Pipesem.outcome;
  stats : Pipeline.Pipesem.stats;
  final_visible_match : bool option;
      (** [Some true/false] when the run was rollback-free and retired
          exactly the sequential instruction count: whether the visible
          registers of the last stage match at the end; [None] when the
          comparison does not apply *)
  trace : Pipeline.Pipesem.cycle_record list;
      (** the recorded per-cycle signals, for further invariant checks *)
}

val ok : report -> bool
(** No violations, completed, and Lemma 1 holds (or the trace had
    rollbacks, where Lemma 1 is out of scope). *)

val check :
  ?ext:Pipeline.Pipesem.ext_model ->
  ?max_instructions:int ->
  ?reference:Machine.Seqsem.trace ->
  ?compiled:Pipeline.Pipesem.compiled ->
  ?optimize:bool ->
  ?inject:Pipeline.Pipesem.injection ->
  ?cancel:Exec.Cancel.token ->
  Pipeline.Transform.t ->
  report
(** Run the sequential reference and the pipelined machine on the same
    initial state and compare.  [max_instructions] bounds the
    sequential run (default 200).  [optimize] is forwarded to
    {!Pipeline.Pipesem.compile} when no [compiled] plan is supplied.

    [compiled] supplies a precompiled evaluation plan for [t]
    (obtained from {!Pipeline.Pipesem.compile}), avoiding a
    recompilation when the caller already holds one — e.g.
    {!Workload.Sim} verifying the same machine it simulates.

    [reference] supplies the specification trace explicitly instead of
    running {!Machine.Seqsem} on the base machine.  This is required
    for machines whose sequential description is completed by a
    speculation declaration (paper §5): e.g. with precise interrupts,
    the JISR updates live in the speculation's rollback writes, so the
    plain round-robin sweep does not perform them — the reference is
    then the ISA-level golden model (see [Dlx.Refmodel]).

    [inject] threads a fault into the pipelined run (the sequential
    reference stays unfaulted — it is the specification); [cancel] is
    polled once per simulated cycle. *)

(** {1 Batched checking (compile once, check many programs)}

    BMC sweeps and workload sweeps check the {e same machine shape}
    over many programs: only the initial register-file contents (the
    program image) differ between points.  A {!shape} packages the
    transform together with both compiled machines — all immutable and
    shared across {!Exec.Pool} domains — and {!check_batched} replays
    them through per-domain cached sessions
    ({!Pipeline.Pipesem.local_session}), so each worker binds each
    plan exactly once for the whole sweep.  Results are bit-identical
    to {!check} on a freshly built machine of the same shape with the
    same initial values. *)

type shape
(** A transform plus its compiled pipelined and sequential machines,
    ready for batched checking.  Immutable; share freely. *)

val shape :
  ?compiled:Pipeline.Pipesem.compiled ->
  ?optimize:bool ->
  Pipeline.Transform.t ->
  shape
(** Compile both machines once ([compiled] reuses an existing
    pipelined plan; [optimize] is forwarded to both compiles). *)

val shape_transform : shape -> Pipeline.Transform.t
val shape_compiled : shape -> Pipeline.Pipesem.compiled

val check_batched :
  ?ext:Pipeline.Pipesem.ext_model ->
  ?max_instructions:int ->
  ?reference:Machine.Seqsem.trace ->
  ?inject:Pipeline.Pipesem.injection ->
  ?cancel:Exec.Cancel.token ->
  ?init:(string * Machine.Value.t) list ->
  shape ->
  report
(** {!check} over a prebuilt shape: [init] entries override the
    spec's initial register values (the per-program image — see
    {!Machine.State.reset}) in {e both} the pipelined machine and the
    sequential reference.  [reference] supplies the specification
    trace explicitly, as in {!check}. *)

(** {1 Hardened entry point} *)

type failure = {
  failing_phase : string;  (** e.g. ["plan compilation"] *)
  message : string;
}

val check_result :
  ?ext:Pipeline.Pipesem.ext_model ->
  ?max_instructions:int ->
  ?reference:Machine.Seqsem.trace ->
  ?compiled:Pipeline.Pipesem.compiled ->
  ?optimize:bool ->
  ?inject:Pipeline.Pipesem.injection ->
  ?cancel:Exec.Cancel.token ->
  Pipeline.Transform.t ->
  (report, failure) result
(** {!check}, but any exception the co-simulation raises (a mutated
    machine breaking plan compilation, a corrupted address escaping
    the state tables, ...) is returned as a typed [Error] instead of
    propagating — one broken mutant must not abort a campaign batch.
    {!Exec.Cancel.Cancelled} is {e not} caught: a tripped cancellation
    token is the caller's signal, not a property of the machine under
    test. *)

val check_batched_result :
  ?ext:Pipeline.Pipesem.ext_model ->
  ?max_instructions:int ->
  ?reference:Machine.Seqsem.trace ->
  ?inject:Pipeline.Pipesem.injection ->
  ?cancel:Exec.Cancel.token ->
  ?init:(string * Machine.Value.t) list ->
  shape ->
  (report, failure) result
(** {!check_batched} with the same exception hardening as
    {!check_result}.  The session reset recovers the per-domain state
    after a failure, so one broken program cannot poison the next
    task's run. *)

val pp_report : Format.formatter -> report -> unit

(** {1 Lane-parallel checking (up to 62 programs per co-simulation)}

    The bit-parallel mirror of {!check_batched}: one
    {!Pipeline.Pipesem.run_lanes_session} pipelined run checked
    against one SoA sequential reference run (or caller-supplied
    scalar traces), with the scalar checker's per-tag violation
    buffering, rollback cancellation, scheduling-function lemma and
    final-state comparison replicated per lane.  [lv_ok] equals the
    scalar [ok report] verdict for the same program.

    All work counters are staged in a {!Obs.Counters.ledger} and
    flushed only when the whole pack succeeds; any exception discards
    the staged work and silently re-checks every lane through the
    scalar batched path with counters live, so WORK totals stay
    bit-identical to a scalar sweep either way. *)

type lane_verdict = {
  lv_ok : bool;
  lv_outcome : Pipeline.Pipesem.outcome;
  lv_stats : Pipeline.Pipesem.stats;
  lv_divergence : int;
      (** first cycle the lane's stall/rollback bits split from the
          pack's majority; [-1] if never.  Informational: a diverged
          lane is still checked exactly. *)
}

val check_lanes :
  ?ext:Pipeline.Pipesem.ext_model ->
  ?cancel:Exec.Cancel.token ->
  ?faulty:bool ->
  ?max_instructions:int ->
  ?references:Machine.Seqsem.trace array ->
  inits:(string * Machine.Value.t) list array ->
  shape ->
  lane_verdict array
(** Check lane [l] initialized from [inits.(l)].  Without
    [references], one SoA sequential reference is run for the pack
    ([max_instructions] each, default 200, like {!check_batched}).
    With [references] (per-lane scalar traces, e.g. a sweep's), lane
    [l] runs [references.(l).instructions] instructions.  [faulty]
    relaxes the lane loop's retire-tag asserts and makes the fallback
    replay pass {!Pipeline.Pipesem.no_injection}, matching how fault
    campaigns drive structural mutants.  [lv_stats]/[lv_outcome] are
    unspecified for a lane whose scalar fallback errored ([lv_ok] is
    [false] there). *)
