(** Liveness (paper §6.3): a finite upper bound exists such that a
    given instruction terminates.

    For an [n]-stage machine whose external stall sources are bounded
    (each [ext_k] episode lasts at most [e] cycles) and whose
    speculations cannot livelock, every instruction retires within a
    bound linear in [n], [e] and the number of in-flight rollbacks.
    The checker runs the pipelined machine and measures the largest gap
    between consecutive retirements (and from reset to the first
    retirement), then compares it against the supplied bound. *)

type report = {
  checked : int;          (** retirements observed *)
  max_gap : int;          (** largest inter-retirement gap in cycles *)
  bound : int;
  outcome : Pipeline.Pipesem.outcome;
}

val ok : report -> bool
(** Completed within the bound. *)

val check :
  ?ext:Pipeline.Pipesem.ext_model ->
  ?bound:int ->
  ?compiled:Pipeline.Pipesem.compiled ->
  ?inject:Pipeline.Pipesem.injection ->
  ?cancel:Exec.Cancel.token ->
  stop_after:int ->
  Pipeline.Transform.t ->
  report
(** [bound] defaults to [8 * n_stages + 64], comfortably above any
    legitimate stall run for the machines in this repository;
    ext models that stall longer need an explicit bound.  [inject]
    runs the checker against a faulted machine; [cancel] is polled
    per cycle (see {!Pipeline.Pipesem.run_compiled}). *)

val pp_report : Format.formatter -> report -> unit
