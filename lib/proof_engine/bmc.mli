(** Exhaustive bounded checking for small machines.

    The paper discharges its lemmas in PVS; our substitute for the
    theorem prover (see DESIGN.md) combines the per-run checkers with
    an exhaustive sweep: for machines whose behaviour is determined by
    a short program over a small instruction alphabet, [exhaustive]
    co-simulates {e every} program of the given length and reports any
    counterexample.  This covers all interleavings of hazards,
    forwarding hits and stalls expressible at that bound — a
    bounded-model-checking argument rather than an inductive proof,
    exchanged for zero manual effort. *)

type outcome = {
  programs : int;           (** programs checked *)
  failures : (int list * string) list;
      (** failing programs (as encoding lists) with a reason, at most
          [max_failures] recorded *)
}

val ok : outcome -> bool

val exhaustive :
  ?max_failures:int ->
  ?ext:Pipeline.Pipesem.ext_model ->
  ?pool:Exec.Pool.t ->
  ?inject:Pipeline.Pipesem.injection ->
  ?cancel:Exec.Cancel.token ->
  build:(int list -> Pipeline.Transform.t) ->
  alphabet:int list ->
  length:int ->
  unit ->
  outcome
(** [exhaustive ~build ~alphabet ~length ()] enumerates all
    [|alphabet|^length] programs, builds the transformed machine for
    each (the program usually lands in instruction-memory init), and
    runs the full consistency check.  Keep [|alphabet|^length] modest:
    it is a product with the per-program simulation cost.

    With [pool], programs are checked concurrently (each check builds
    its own machine and plan); failures are reported in enumeration
    order, identically to the serial sweep.

    [inject] runs every program's co-simulation against the faulted
    machine (the fault-injection campaigns use this to let the
    exhaustive sweep hunt a mutant the loaded workload masks); a
    per-program exception is recorded as that program's failure
    instead of aborting the sweep.  [cancel] aborts the whole sweep
    by raising {!Exec.Cancel.Cancelled}. *)

val pp : Format.formatter -> outcome -> unit
