(** Exhaustive bounded checking for small machines.

    The paper discharges its lemmas in PVS; our substitute for the
    theorem prover (see DESIGN.md) combines the per-run checkers with
    an exhaustive sweep: for machines whose behaviour is determined by
    a short program over a small instruction alphabet, [exhaustive]
    co-simulates {e every} program of the given length and reports any
    counterexample.  This covers all interleavings of hazards,
    forwarding hits and stalls expressible at that bound — a
    bounded-model-checking argument rather than an inductive proof,
    exchanged for zero manual effort. *)

type outcome = {
  programs : int;           (** programs checked *)
  failures : (int list * string) list;
      (** failing programs (as encoding lists) with a reason, at most
          [max_failures] recorded *)
}

val ok : outcome -> bool

val exhaustive :
  ?max_failures:int ->
  ?ext:Pipeline.Pipesem.ext_model ->
  ?pool:Exec.Pool.t ->
  ?inject:Pipeline.Pipesem.injection ->
  ?lanes:bool ->
  ?optimize:bool ->
  ?shape:Consistency.shape ->
  ?cancel:Exec.Cancel.token ->
  ?load:(int list -> (string * Machine.Value.t) list) ->
  build:(int list -> Pipeline.Transform.t) ->
  alphabet:int list ->
  length:int ->
  unit ->
  outcome
(** [exhaustive ~build ~alphabet ~length ()] enumerates all
    [|alphabet|^length] programs and runs the full consistency check
    on each.  Keep [|alphabet|^length] modest: it is a product with
    the per-program simulation cost.

    Without [load] (the rebuild path), every program builds its own
    transformed machine and compiles its own plan — robust, but the
    build + compile cost is paid [|alphabet|^length] times for one
    machine shape.  With [load] (the batched, compile-once path),
    [build] runs {e once} — on the first enumerated program — to fix
    the shape; each program is then checked by overriding the initial
    register values with [load program] (typically the IMEM image —
    see [Core.Toy.image], [Machine_gen.image]) over the compiled
    shape, reusing per-domain cached sessions.  This requires the
    {e shape-invariance} contract: [build p] and [build p'] must
    differ only in initial values covered by [load].  Outcomes are
    then bit-identical to the rebuild path, at a fraction of the
    cost (regressed by the [PERF.bmc_*] bench entries).

    With [pool], programs are checked concurrently — the compiled
    shape is shared across domains, and each pool worker allocates
    its evaluation instances once per domain, not per program;
    failures are reported in enumeration order, identically to the
    serial sweep.

    [inject] runs every program's co-simulation against the faulted
    machine (the fault-injection campaigns use this to let the
    exhaustive sweep hunt a mutant the loaded workload masks); a
    per-program exception is recorded as that program's failure
    instead of aborting the sweep.  [cancel] aborts the whole sweep
    by raising {!Exec.Cancel.Cancelled}.

    [lanes] (with [load]) packs consecutive programs into ≤62-lane
    bit-parallel packs checked by {!Consistency.check_lanes}: one
    cycle loop advances the whole pack, with outcomes, failure order
    and WORK counters bit-identical to the scalar batched path.
    Failing lanes are peeled off and replayed through the scalar path
    (counters discarded) to extract the evidence string; a replay
    that comes back clean is reported as a lane/scalar divergence.
    Ignored without [load], or when [inject] carries real hooks
    (only the physical {!Pipeline.Pipesem.no_injection} record of
    structural mutants is lane-compatible).

    [optimize] (default {!Hw.Plan.optimize_default}) is forwarded to
    the plan compiles on both paths; outcomes are bit-identical with
    it on or off — the bench's [--no-opt] leg regresses exactly
    that.

    [shape] (with [load]) supplies a precompiled
    {!Consistency.shape}, skipping the per-call [build] + compile
    entirely: a caller that sweeps the same machine repeatedly — the
    bench's timing loops, a long-running service — pays the optimizer
    once and amortizes it across every sweep.  The shape must satisfy
    the same shape-invariance contract with [load]; [optimize] is
    ignored (the shape was compiled with its own setting). *)

val pp : Format.formatter -> outcome -> unit
