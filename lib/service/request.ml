module J = Obs.Json

type spec = {
  machine : Machine_spec.t;
  kernel : string option;
  program_file : string option;
  interlock_only : bool;
  impl : Hw.Circuits.priority_impl;
}

let default_spec =
  {
    machine = Machine_spec.Dlx5;
    kernel = None;
    program_file = None;
    interlock_only = false;
    impl = Hw.Circuits.Chain;
  }

type sweep_axis = Dependency | Branch

type kind =
  | Transform of { verilog : bool }
  | Verify
  | Proof
  | Stats
  | Campaign of {
      seed : int;
      mutants : int option;
      transients : int;
      hang : bool;
      timeout_s : float;
      bmc : bool;
    }
  | Sweep of {
      axis : sweep_axis;
      points : float list;
      length : int;
      seed : int;
      lanes : bool;
    }

type t = {
  id : string option;
  spec : spec;
  kind : kind;
  deadline_s : float option;
}

let make ?id ?deadline_s ?(spec = default_spec) kind =
  { id; spec; kind; deadline_s }

let kind_name t =
  match t.kind with
  | Transform _ -> "transform"
  | Verify -> "verify"
  | Proof -> "proof"
  | Stats -> "stats"
  | Campaign _ -> "campaign"
  | Sweep _ -> "sweep"

let version = 1

let impl_to_string = function
  | Hw.Circuits.Chain -> "chain"
  | Hw.Circuits.Tree -> "tree"
  | Hw.Circuits.Bus -> "bus"

let axis_to_string = function Dependency -> "dependency" | Branch -> "branch"

(* ------------------------------------------------------------------ *)
(* Encoding: canonical — fields at their default are omitted, so the  *)
(* emitted object is minimal and round-trips through [of_json].       *)
(* ------------------------------------------------------------------ *)

let to_json t =
  let fields = ref [] in
  let put k v = fields := (k, v) :: !fields in
  put "pipegen" (J.Int version);
  (match t.id with None -> () | Some id -> put "id" (J.String id));
  (match t.deadline_s with
  | None -> ()
  | Some d -> put "deadline_s" (J.Float d));
  put "kind" (J.String (kind_name t));
  put "machine" (J.String (Machine_spec.to_string t.spec.machine));
  (match t.spec.kernel with None -> () | Some k -> put "kernel" (J.String k));
  (match t.spec.program_file with
  | None -> ()
  | Some p -> put "program" (J.String p));
  if t.spec.interlock_only then put "interlock_only" (J.Bool true);
  if t.spec.impl <> Hw.Circuits.Chain then
    put "impl" (J.String (impl_to_string t.spec.impl));
  (match t.kind with
  | Transform { verilog } -> if verilog then put "verilog" (J.Bool true)
  | Verify | Proof | Stats -> ()
  | Campaign { seed; mutants; transients; hang; timeout_s; bmc } ->
    put "seed" (J.Int seed);
    (match mutants with None -> () | Some n -> put "mutants" (J.Int n));
    put "transients" (J.Int transients);
    if hang then put "hang" (J.Bool true);
    put "timeout_s" (J.Float timeout_s);
    if bmc then put "bmc" (J.Bool true)
  | Sweep { axis; points; length; seed; lanes } ->
    put "axis" (J.String (axis_to_string axis));
    put "points" (J.List (List.map (fun p -> J.Float p) points));
    put "length" (J.Int length);
    put "seed" (J.Int seed);
    if lanes then put "lanes" (J.Bool true));
  J.Obj (List.rev !fields)

(* ------------------------------------------------------------------ *)
(* Strict decoding                                                    *)
(* ------------------------------------------------------------------ *)

type decode_error = { path : string; message : string }

exception Reject of decode_error

let reject path fmt =
  Printf.ksprintf (fun message -> raise (Reject { path; message })) fmt

(* A field cursor: [take] consumes a member (an explicit [null] counts
   as absent); whatever remains unconsumed at the end is an unknown
   field and rejects the request. *)
type fields = { mutable remaining : (string * J.t) list }

let take fs key =
  match List.assoc_opt key fs.remaining with
  | None -> None
  | Some v ->
    fs.remaining <- List.remove_assoc key fs.remaining;
    if v = J.Null then None else Some v

let get_typed fs key what conv =
  match take fs key with
  | None -> None
  | Some v -> (
    match conv v with
    | Some x -> Some x
    | None -> reject ("$." ^ key) "expected %s" what)

let get_string fs key = get_typed fs key "a string" J.to_string_opt
let get_int fs key = get_typed fs key "an integer" J.to_int_opt
let get_bool fs key = get_typed fs key "a boolean" J.to_bool_opt
let get_float fs key = get_typed fs key "a number" J.to_float_opt

let get_float_list fs key =
  get_typed fs key "an array of numbers" (fun v ->
      match J.to_list_opt v with
      | None -> None
      | Some items ->
        let floats = List.filter_map J.to_float_opt items in
        if List.length floats = List.length items then Some floats else None)

let dflt d = function Some x -> x | None -> d

let decode_spec fs =
  let machine =
    match get_string fs "machine" with
    | None -> default_spec.machine
    | Some name -> (
      match Machine_spec.of_string name with
      | Ok m -> m
      | Error msg -> reject "$.machine" "%s" msg)
  in
  let kernel = get_string fs "kernel" in
  let program_file = get_string fs "program" in
  let interlock_only = dflt false (get_bool fs "interlock_only") in
  let impl =
    match get_string fs "impl" with
    | None -> Hw.Circuits.Chain
    | Some "chain" -> Hw.Circuits.Chain
    | Some "tree" -> Hw.Circuits.Tree
    | Some "bus" -> Hw.Circuits.Bus
    | Some other -> reject "$.impl" "unknown impl %s (chain, tree or bus)" other
  in
  { machine; kernel; program_file; interlock_only; impl }

let decode_kind fs = function
  | "transform" -> Transform { verilog = dflt false (get_bool fs "verilog") }
  | "verify" -> Verify
  | "proof" -> Proof
  | "stats" -> Stats
  | "campaign" ->
    Campaign
      {
        seed = dflt 0 (get_int fs "seed");
        mutants = get_int fs "mutants";
        transients = dflt 8 (get_int fs "transients");
        hang = dflt false (get_bool fs "hang");
        timeout_s = dflt 30.0 (get_float fs "timeout_s");
        bmc = dflt false (get_bool fs "bmc");
      }
  | "sweep" ->
    let axis =
      match get_string fs "axis" with
      | Some "dependency" -> Dependency
      | Some "branch" -> Branch
      | Some other ->
        reject "$.axis" "unknown axis %s (dependency or branch)" other
      | None -> reject "$.axis" "sweep requests require an axis"
    in
    let points =
      match get_float_list fs "points" with
      | Some [] -> reject "$.points" "points must be non-empty"
      | Some ps -> ps
      | None -> reject "$.points" "sweep requests require points"
    in
    Sweep
      {
        axis;
        points;
        length = dflt 32 (get_int fs "length");
        seed = dflt 0 (get_int fs "seed");
        lanes = dflt false (get_bool fs "lanes");
      }
  | other ->
    reject "$.kind"
      "unknown kind %s (transform, verify, proof, stats, campaign or sweep)"
      other

let of_json j =
  match j with
  | J.Obj members -> (
    try
      let fs = { remaining = members } in
      (match get_int fs "pipegen" with
      | None -> reject "$.pipegen" "missing protocol version (expected %d)" version
      | Some v when v <> version ->
        reject "$.pipegen" "unsupported protocol version %d (expected %d)" v
          version
      | Some _ -> ());
      let id = get_string fs "id" in
      let deadline_s =
        match get_float fs "deadline_s" with
        | Some d when d <= 0.0 -> reject "$.deadline_s" "deadline must be positive"
        | d -> d
      in
      let kind_s =
        match get_string fs "kind" with
        | Some k -> k
        | None -> reject "$.kind" "missing request kind"
      in
      let spec = decode_spec fs in
      let kind = decode_kind fs kind_s in
      (match fs.remaining with
      | [] -> ()
      | (key, _) :: _ ->
        reject ("$." ^ key) "unknown field %S for kind %s" key kind_s);
      Ok { id; spec; kind; deadline_s }
    with Reject e -> Error e)
  | _ -> Error { path = "$"; message = "expected a JSON object" }

let of_string s =
  match J.parse s with
  | Ok j -> of_json j
  | Error msg -> Error { path = "$"; message = msg }

let to_string t = J.to_string ~minify:true (to_json t)

let equal (a : t) (b : t) = a = b

let pp_decode_error ppf e =
  Format.fprintf ppf "invalid request at %s: %s" e.path e.message
