type t = {
  capacity : int;
  table : (string, Response.payload) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for FIFO eviction *)
  mutex : Mutex.t;
  mutable n_hits : int;
  mutable n_misses : int;
  m_hits : Obs.Metrics.counter option;
  m_misses : Obs.Metrics.counter option;
}

let create ?(capacity = 256) ?metrics () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  let m name =
    Option.map (fun r -> Obs.Metrics.counter r ("serve.cache_" ^ name)) metrics
  in
  {
    capacity;
    table = Hashtbl.create 64;
    order = Queue.create ();
    mutex = Mutex.create ();
    n_hits = 0;
    n_misses = 0;
    m_hits = m "hits";
    m_misses = m "misses";
  }

(* ------------------------------------------------------------------ *)
(* The content address.                                               *)
(*                                                                    *)
(* Everything that can influence a verdict is rendered into one       *)
(* buffer and digested: the request kind and parameters, the          *)
(* transform options, the machine structure (registers and their      *)
(* shapes, every stage write's expressions, the synthesized signal    *)
(* definitions in order) and the initial register contents — the      *)
(* program image, since instruction and data memory are init values   *)
(* of the pipelined machine.  The sequential reference trace needs no *)
(* separate component: it is derived deterministically from the same  *)
(* machine and image.                                                 *)
(* ------------------------------------------------------------------ *)

let add_expr buf e =
  Buffer.add_string buf (Hw.Expr.to_string e);
  Buffer.add_char buf '\n'

let add_expr_opt buf = function
  | None -> Buffer.add_string buf "-\n"
  | Some e -> add_expr buf e

let add_machine buf (m : Machine.Spec.t) =
  Buffer.add_string buf m.Machine.Spec.machine_name;
  Buffer.add_string buf (Printf.sprintf "/%d\n" m.Machine.Spec.n_stages);
  List.iter
    (fun (r : Machine.Spec.register) ->
      Buffer.add_string buf
        (Printf.sprintf "reg %s w%d s%d %s %b %s\n" r.Machine.Spec.reg_name
           r.Machine.Spec.width r.Machine.Spec.stage
           (match r.Machine.Spec.kind with
           | Machine.Spec.Simple -> "simple"
           | Machine.Spec.File { addr_bits } ->
             Printf.sprintf "file:%d" addr_bits)
           r.Machine.Spec.visible
           (Option.value ~default:"-" r.Machine.Spec.prev_instance)))
    m.Machine.Spec.registers;
  List.iter
    (fun (s : Machine.Spec.stage) ->
      Buffer.add_string buf
        (Printf.sprintf "stage %d %s\n" s.Machine.Spec.index
           s.Machine.Spec.stage_name);
      List.iter
        (fun (w : Machine.Spec.write) ->
          Buffer.add_string buf ("  -> " ^ w.Machine.Spec.dst ^ "\n");
          add_expr buf w.Machine.Spec.value;
          add_expr_opt buf w.Machine.Spec.guard;
          add_expr_opt buf w.Machine.Spec.wr_addr)
        s.Machine.Spec.writes)
    m.Machine.Spec.stages

let add_image buf (m : Machine.Spec.t) =
  (* Every register's effective initial value, in declaration order:
     the program image (IMEM/MEM contents) lives here. *)
  List.iter
    (fun (r : Machine.Spec.register) ->
      Buffer.add_string buf (r.Machine.Spec.reg_name ^ "=");
      Buffer.add_string buf
        (Format.asprintf "%a" Machine.Value.pp (Machine.Spec.initial_value m r));
      Buffer.add_char buf '\n')
    m.Machine.Spec.registers

let key ~kind ?(extra = []) (tr : Pipeline.Transform.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf ("kind " ^ kind ^ "\n");
  List.iter (fun e -> Buffer.add_string buf ("param " ^ e ^ "\n")) extra;
  Buffer.add_string buf
    (Printf.sprintf "options %s %s\n"
       (match tr.Pipeline.Transform.options.Pipeline.Fwd_spec.mode with
       | Pipeline.Fwd_spec.Full -> "full"
       | Pipeline.Fwd_spec.Interlock_only -> "interlock_only")
       (match tr.Pipeline.Transform.options.Pipeline.Fwd_spec.impl with
       | Hw.Circuits.Chain -> "chain"
       | Hw.Circuits.Tree -> "tree"
       | Hw.Circuits.Bus -> "bus"));
  add_machine buf tr.Pipeline.Transform.machine;
  List.iter
    (fun (name, e) ->
      Buffer.add_string buf ("sig " ^ name ^ " ");
      add_expr buf e)
    tr.Pipeline.Transform.signals;
  add_image buf tr.Pipeline.Transform.machine;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t k =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.table k with
  | Some payload ->
    t.n_hits <- t.n_hits + 1;
    Obs.Counters.bump Obs.Counters.Serve_cache_hits;
    Option.iter Obs.Metrics.incr t.m_hits;
    Some payload
  | None ->
    t.n_misses <- t.n_misses + 1;
    Obs.Counters.bump Obs.Counters.Serve_cache_misses;
    Option.iter Obs.Metrics.incr t.m_misses;
    None

let add t k payload =
  with_lock t @@ fun () ->
  if not (Hashtbl.mem t.table k) then begin
    while Queue.length t.order >= t.capacity do
      Hashtbl.remove t.table (Queue.pop t.order)
    done;
    Hashtbl.replace t.table k payload;
    Queue.push k t.order
  end

let hits t = with_lock t @@ fun () -> t.n_hits
let misses t = with_lock t @@ fun () -> t.n_misses
let length t = with_lock t @@ fun () -> Hashtbl.length t.table
