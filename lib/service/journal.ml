module J = Obs.Json

(* The write-ahead request journal: crash-only durability for serve.

   Append-only JSONL, two record shapes:

     {"journal":1,"op":"admit","seq":N,"line":"<raw request line>"}
     {"journal":1,"op":"done","seq":N,"response":"<raw response line>"}

   An admitted batch is journaled (one write, one fsync) *before*
   evaluation starts; each completed verdict is journaled after.  The
   raw wire lines are stored verbatim — not re-encoded — so replay can
   re-admit a request byte-identically and re-emit a completed
   response byte-identically without trusting any codec round-trip.

   Recovery reads the journal back tolerating a torn final line (the
   crash may have landed mid-write); [admit] records without a
   matching [done] are the unfinished requests.  The journal is
   truncated only on a *clean* end-of-input shutdown — a signal or a
   crash leaves it in place for the next process, which is the whole
   point. *)

let version = 1

type t = {
  fd : Unix.file_descr;
  mutable next_seq : int;
  mutex : Mutex.t;
}

type entry = {
  seq : int;
  line : string;  (* the admitted request, verbatim *)
  response : string option;  (* the completed response, verbatim *)
}

let record_of_line line =
  match J.parse line with
  | Error _ -> None
  | Ok j -> (
    let int_ k = Option.bind (J.member k j) J.to_int_opt in
    let str k = Option.bind (J.member k j) J.to_string_opt in
    match (int_ "journal", str "op", int_ "seq") with
    | Some v, Some "admit", Some seq when v = version ->
      Option.map (fun l -> `Admit (seq, l)) (str "line")
    | Some v, Some "done", Some seq when v = version ->
      Option.map (fun r -> `Done (seq, r)) (str "response")
    | _ -> None)

(* Read every intact record.  A torn trailing line (no '\n', or
   unparseable) is skipped: its write never completed, so the entry it
   was journaling is simply treated as absent. *)
let read_records path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let records = ref [] in
        (try
           while true do
             let line = input_line ic in
             match record_of_line line with
             | Some r -> records := r :: !records
             | None -> ()
           done
         with End_of_file -> ());
        List.rev !records)
  end

let read path =
  let records = read_records path in
  let tbl : (int, string * string option) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (function
      | `Admit (seq, line) ->
        if not (Hashtbl.mem tbl seq) then begin
          Hashtbl.add tbl seq (line, None);
          order := seq :: !order
        end
      | `Done (seq, response) -> (
        match Hashtbl.find_opt tbl seq with
        | Some (line, None) -> Hashtbl.replace tbl seq (line, Some response)
        | Some (_, Some _) | None -> ()))
    records;
  List.rev_map
    (fun seq ->
      let line, response = Hashtbl.find tbl seq in
      { seq; line; response })
    !order

let max_seq path =
  List.fold_left
    (fun acc -> function
      | `Admit (seq, _) | `Done (seq, _) -> max acc seq)
    (-1) (read_records path)

let open_ path =
  let next_seq = max_seq path + 1 in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  { fd; next_seq; mutex = Mutex.create () }

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let encode_admit seq line =
  J.to_string ~minify:true
    (J.Obj
       [
         ("journal", J.Int version);
         ("op", J.String "admit");
         ("seq", J.Int seq);
         ("line", J.String line);
       ])

let encode_done seq response =
  J.to_string ~minify:true
    (J.Obj
       [
         ("journal", J.Int version);
         ("op", J.String "done");
         ("seq", J.Int seq);
         ("response", J.String response);
       ])

(* One buffer, one write, one fsync for the whole batch: admission
   latency pays a single synchronous disk round-trip per batch, not
   per request. *)
let append_admits t lines =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let buf = Buffer.create 256 in
      let seqs =
        List.map
          (fun line ->
            let seq = t.next_seq in
            t.next_seq <- seq + 1;
            Buffer.add_string buf (encode_admit seq line);
            Buffer.add_char buf '\n';
            seq)
          lines
      in
      if seqs <> [] then begin
        write_all t.fd (Buffer.contents buf);
        Unix.fsync t.fd
      end;
      seqs)

let append_done t pairs =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match pairs with
      | [] -> ()
      | pairs ->
        let buf = Buffer.create 256 in
        List.iter
          (fun (seq, response) ->
            Buffer.add_string buf (encode_done seq response);
            Buffer.add_char buf '\n')
          pairs;
        write_all t.fd (Buffer.contents buf);
        Unix.fsync t.fd)

let truncate t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      Unix.ftruncate t.fd 0;
      t.next_seq <- 0)

let close t = Unix.close t.fd
