(** The write-ahead request journal behind [pipegen serve --journal].

    Crash-only durability for the serve loop: admitted request lines
    are journaled (and fsync'd, one batch per disk round-trip)
    {e before} evaluation starts, completed responses after.  A
    restarted server {!read}s the journal, re-emits the completed
    responses verbatim (and warm-starts the verdict cache from them),
    and re-evaluates the unfinished remainder — at-least-once delivery
    whose responses are byte-identical thanks to the content-addressed
    cache keys, so clients deduplicate by request id alone.

    The wire lines are stored {e verbatim} inside the journal records;
    replay never re-encodes, so it cannot drift from what the client
    actually sent or was sent.

    The format is append-only JSONL ([{"journal":1,"op":"admit",...}]
    / [{"op":"done",...}]); a torn final line from a mid-write crash
    is tolerated and simply dropped.  {!truncate} runs only on a clean
    end-of-input shutdown — SIGTERM and SIGKILL leave the journal for
    the next process, by design. *)

type t

val open_ : string -> t
(** Open (or create) a journal for appending.  Sequence numbering
    continues from the highest seq already present, so replayed-then-
    new workloads never collide. *)

val append_admits : t -> string list -> int list
(** Journal a batch of admitted raw request lines; returns their
    sequence numbers, in order.  One write + one [fsync] for the whole
    batch.  Thread-safe. *)

val append_done : t -> (int * string) list -> unit
(** Journal completed [(seq, raw response line)] pairs, then [fsync].
    Thread-safe. *)

val truncate : t -> unit
(** Empty the journal (clean-shutdown path only: every admitted
    request has been answered on the wire). *)

val close : t -> unit

(** {1 Recovery} *)

type entry = {
  seq : int;
  line : string;  (** the admitted request line, verbatim *)
  response : string option;
      (** the completed response line, verbatim; [None] = unfinished *)
}

val read : string -> entry list
(** Parse a journal file into entries ordered by admission.  Missing
    file = no entries; torn or foreign trailing lines are skipped. *)
