(** Typed responses of the verification service.

    A {!t} is the complete result of handling one {!Request.t}: a
    structured payload (or a typed error) plus the envelope the serve
    loop needs (the echoed request id, whether the verdict came from
    the content-addressed cache).  Payloads carry both machine-readable
    summaries and the {e exact} text the CLI has always printed, so
    the CLI adapter reduces to "print the text, exit by
    {!exit_code}" and a serve client sees byte-identical renderings.

    Exit-code policy (the one place it is defined):
    {ul
    {- [0] — success, including a [proof] whose obligations failed
       (the script itself is the deliverable);}
    {- [1] — internal error (a transform bug, an ill-typed expression,
       an I/O failure), a cancelled request, or a shed ([Overloaded])
       one — retryable, unlike everything else in this class;}
    {- [2] — usage error (unknown machine/kernel, malformed request);}
    {- [3] — a failed check: verification failed, a campaign missed a
       mutant, a simulation deadlocked, or the request timed out.}} *)

type verify_summary = {
  v_verified : bool;
  v_violations : int;  (** data-consistency violations *)
  v_edge_checks : int;
  v_liveness_ok : bool;
  v_max_gap : int;
  v_obligations : int;
  v_obligations_failed : string list;  (** ids of failed obligations *)
  v_coverage_holes : string list;
}

type payload =
  | Transformed of {
      summary : string;  (** {!Machine.Spec.pp_summary} of the base *)
      inventory : string;  (** {!Pipeline.Report.pp_inventory} *)
      verilog : string option;
    }
  | Verdict of { summary : verify_summary; text : string }
  | Proof_text of { verified : bool; text : string }
  | Stats_report of { summary : Obs.Json.t; text : string }
      (** [summary] is {!Obs.Hazard.summary_to_json} *)
  | Campaign_report of {
      summary : Fault.Campaign.summary;
      outcomes : Obs.Json.t;  (** {!Fault.Campaign.to_json} *)
      text : string;
    }
  | Sweep_rows of { rows : (float * Workload.Stats.row) list; text : string }

type error_code =
  | Usage
  | Failed_check
  | Timeout
  | Cancelled
  | Overloaded
      (** shed by admission control (queue full, deadline unmeetable,
          or cache-only degraded mode) — never evaluated; safe to
          retry after [retry_after_s] *)
  | Internal

type error = {
  code : error_code;
  message : string;
  phase : string option;  (** failing phase, when the taxonomy knows it *)
  retry_after_s : float option;
      (** [Overloaded] only: the server's backoff hint, derived from
          its recent per-request service time *)
}

type t = {
  id : string option;  (** echoed from the request *)
  cached : bool;  (** served from the content-addressed verdict cache *)
  result : (payload, error) result;
}

val ok : ?id:string -> ?cached:bool -> payload -> t

val fail :
  ?id:string -> ?phase:string -> ?retry_after_s:float -> error_code ->
  string -> t

val error_exit_code : error_code -> int
(** [Usage -> 2], [Failed_check | Timeout -> 3],
    [Internal | Cancelled | Overloaded -> 1]. *)

val exit_code : t -> int
(** The process exit status this response maps to: 0 for a clean
    payload, 3 for a payload carrying a failed verdict (an unverified
    {!Verdict}, a {!Campaign_report} with misses or aborts),
    {!error_exit_code} for errors. *)

val text : payload -> string
(** The CLI rendering: exactly what the pre-service [pipegen]
    subcommands printed on stdout. *)

val error_message : error -> string
(** The CLI error line (without the ["pipegen: "] prefix). *)

val failure_message : t -> string option
(** The stderr diagnostic for a response whose {!exit_code} is
    nonzero: {!error_message} for errors, ["verification failed"] for
    an unverified verdict, ["campaign failed: ..."] for a failed
    campaign — exactly the lines the pre-service CLI printed.  [None]
    when the response exits 0. *)

(** {1 Codec}

    Responses travel as one JSON object per line, versioned like
    requests ([{"pipegen": 1, ...}]).  The encoding contains no
    wall-clock data, so a response is bit-identical across runs and a
    cached replay equals the cold evaluation byte for byte (only the
    envelope's [cached] flag differs). *)

val to_json : t -> Obs.Json.t
val to_string : t -> string

val payload_to_json : payload -> Obs.Json.t
(** The payload alone — the unit of verdict caching and of the
    bit-identity tests. *)

val of_json : Obs.Json.t -> (t, string) result
val of_string : string -> (t, string) result

val equal : t -> t -> bool
