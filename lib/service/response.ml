module J = Obs.Json

type verify_summary = {
  v_verified : bool;
  v_violations : int;
  v_edge_checks : int;
  v_liveness_ok : bool;
  v_max_gap : int;
  v_obligations : int;
  v_obligations_failed : string list;
  v_coverage_holes : string list;
}

type payload =
  | Transformed of {
      summary : string;
      inventory : string;
      verilog : string option;
    }
  | Verdict of { summary : verify_summary; text : string }
  | Proof_text of { verified : bool; text : string }
  | Stats_report of { summary : J.t; text : string }
  | Campaign_report of {
      summary : Fault.Campaign.summary;
      outcomes : J.t;
      text : string;
    }
  | Sweep_rows of { rows : (float * Workload.Stats.row) list; text : string }

type error_code =
  | Usage
  | Failed_check
  | Timeout
  | Cancelled
  | Overloaded
  | Internal

type error = {
  code : error_code;
  message : string;
  phase : string option;
  retry_after_s : float option;
}

type t = {
  id : string option;
  cached : bool;
  result : (payload, error) result;
}

let ok ?id ?(cached = false) payload = { id; cached; result = Ok payload }

let fail ?id ?phase ?retry_after_s code message =
  { id; cached = false; result = Error { code; message; phase; retry_after_s } }

let error_exit_code = function
  | Usage -> 2
  | Failed_check | Timeout -> 3
  | Internal | Cancelled | Overloaded -> 1

let exit_code t =
  match t.result with
  | Error e -> error_exit_code e.code
  | Ok (Verdict { summary; _ }) -> if summary.v_verified then 0 else 3
  | Ok (Campaign_report { summary; _ }) ->
    if Fault.Campaign.ok summary then 0 else 3
  | Ok (Transformed _ | Proof_text _ | Stats_report _ | Sweep_rows _) -> 0

let text = function
  | Transformed { summary; inventory; verilog } -> (
    match verilog with
    | Some v -> v
    | None -> summary ^ inventory)
  | Verdict { text; _ }
  | Proof_text { text; _ }
  | Stats_report { text; _ }
  | Campaign_report { text; _ }
  | Sweep_rows { text; _ } ->
    text

let error_message e =
  match e.phase with
  | Some phase -> Printf.sprintf "%s: %s" phase e.message
  | None -> e.message

let failure_message t =
  match t.result with
  | Error e -> Some (error_message e)
  | Ok (Verdict { summary; _ }) ->
    if summary.v_verified then None else Some "verification failed"
  | Ok (Campaign_report { summary; _ }) ->
    if Fault.Campaign.ok summary then None
    else
      Some
        (Format.asprintf "campaign failed: %a" Fault.Campaign.pp_summary
           summary)
  | Ok (Transformed _ | Proof_text _ | Stats_report _ | Sweep_rows _) -> None

(* ------------------------------------------------------------------ *)
(* Codec                                                              *)
(* ------------------------------------------------------------------ *)

let code_label = function
  | Usage -> "usage"
  | Failed_check -> "failed_check"
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"
  | Overloaded -> "overloaded"
  | Internal -> "internal"

let code_of_label = function
  | "usage" -> Some Usage
  | "failed_check" -> Some Failed_check
  | "timeout" -> Some Timeout
  | "cancelled" -> Some Cancelled
  | "overloaded" -> Some Overloaded
  | "internal" -> Some Internal
  | _ -> None

let verify_summary_to_json s =
  J.Obj
    [
      ("verified", J.Bool s.v_verified);
      ("violations", J.Int s.v_violations);
      ("edge_checks", J.Int s.v_edge_checks);
      ("liveness_ok", J.Bool s.v_liveness_ok);
      ("max_gap", J.Int s.v_max_gap);
      ("obligations", J.Int s.v_obligations);
      ( "obligations_failed",
        J.List (List.map (fun i -> J.String i) s.v_obligations_failed) );
      ( "coverage_holes",
        J.List (List.map (fun h -> J.String h) s.v_coverage_holes) );
    ]

let campaign_summary_to_json (s : Fault.Campaign.summary) =
  J.Obj
    [
      ("mutants", J.Int s.Fault.Campaign.mutants);
      ("detected", J.Int s.Fault.Campaign.detected);
      ("masked", J.Int s.Fault.Campaign.masked);
      ("missed", J.Int s.Fault.Campaign.missed);
      ("timed_out", J.Int s.Fault.Campaign.timed_out);
      ("aborted", J.Int s.Fault.Campaign.aborted);
    ]

let row_to_json (point, row) =
  match Workload.Stats.row_to_json row with
  | J.Obj fields -> J.Obj (("point", J.Float point) :: fields)
  | other -> other

let payload_to_json = function
  | Transformed { summary; inventory; verilog } ->
    J.Obj
      ([
         ("payload", J.String "transformed");
         ("summary", J.String summary);
         ("inventory", J.String inventory);
       ]
      @ match verilog with None -> [] | Some v -> [ ("verilog", J.String v) ])
  | Verdict { summary; text } ->
    J.Obj
      [
        ("payload", J.String "verdict");
        ("verdict", verify_summary_to_json summary);
        ("text", J.String text);
      ]
  | Proof_text { verified; text } ->
    J.Obj
      [
        ("payload", J.String "proof");
        ("verified", J.Bool verified);
        ("text", J.String text);
      ]
  | Stats_report { summary; text } ->
    J.Obj
      [
        ("payload", J.String "stats");
        ("hazards", summary);
        ("text", J.String text);
      ]
  | Campaign_report { summary; outcomes; text } ->
    J.Obj
      [
        ("payload", J.String "campaign");
        ("summary", campaign_summary_to_json summary);
        ("outcomes", outcomes);
        ("text", J.String text);
      ]
  | Sweep_rows { rows; text } ->
    J.Obj
      [
        ("payload", J.String "sweep");
        ("rows", J.List (List.map row_to_json rows));
        ("text", J.String text);
      ]

let to_json t =
  let envelope =
    [ ("pipegen", J.Int Request.version); ("cached", J.Bool t.cached) ]
  in
  let envelope =
    match t.id with
    | None -> envelope
    | Some id -> envelope @ [ ("id", J.String id) ]
  in
  match t.result with
  | Ok payload -> (
    match payload_to_json payload with
    | J.Obj fields -> J.Obj ((envelope @ [ ("ok", J.Bool true) ]) @ fields)
    | other -> other)
  | Error e ->
    J.Obj
      (envelope
      @ [
          ("ok", J.Bool false);
          ("error", J.String (code_label e.code));
          ("message", J.String e.message);
        ]
      @ (match e.phase with None -> [] | Some p -> [ ("phase", J.String p) ])
      @
      match e.retry_after_s with
      | None -> []
      | Some r -> [ ("retry_after_s", J.Float r) ])

let to_string t = J.to_string ~minify:true (to_json t)

(* Decoding — lenient on envelope extras is not wanted either: the
   serve protocol is ours on both ends, so we only need the fields we
   emit.  Malformed input yields [Error msg]. *)

let mem k j = J.member k j
let str k j = Option.bind (mem k j) J.to_string_opt
let int_ k j = Option.bind (mem k j) J.to_int_opt
let bool_ k j = Option.bind (mem k j) J.to_bool_opt
let float_ k j = Option.bind (mem k j) J.to_float_opt

let ( let* ) o f = Option.bind o f

let verify_summary_of_json j =
  let strings k =
    let* l = Option.bind (mem k j) J.to_list_opt in
    let ss = List.filter_map J.to_string_opt l in
    if List.length ss = List.length l then Some ss else None
  in
  let* v_verified = bool_ "verified" j in
  let* v_violations = int_ "violations" j in
  let* v_edge_checks = int_ "edge_checks" j in
  let* v_liveness_ok = bool_ "liveness_ok" j in
  let* v_max_gap = int_ "max_gap" j in
  let* v_obligations = int_ "obligations" j in
  let* v_obligations_failed = strings "obligations_failed" in
  let* v_coverage_holes = strings "coverage_holes" in
  Some
    {
      v_verified;
      v_violations;
      v_edge_checks;
      v_liveness_ok;
      v_max_gap;
      v_obligations;
      v_obligations_failed;
      v_coverage_holes;
    }

let campaign_summary_of_json j : Fault.Campaign.summary option =
  let* mutants = int_ "mutants" j in
  let* detected = int_ "detected" j in
  let* masked = int_ "masked" j in
  let* missed = int_ "missed" j in
  let* timed_out = int_ "timed_out" j in
  let* aborted = int_ "aborted" j in
  Some
    {
      Fault.Campaign.mutants;
      detected;
      masked;
      missed;
      timed_out;
      aborted;
    }

let row_of_json j : (float * Workload.Stats.row) option =
  let* point = float_ "point" j in
  let* label = str "label" j in
  let* instructions = int_ "instructions" j in
  let* cycles = int_ "cycles" j in
  let* cpi = float_ "cpi" j in
  let* speedup_vs_sequential = float_ "speedup_vs_sequential" j in
  let* fetch_stall_cycles = int_ "fetch_stall_cycles" j in
  let* dhaz_cycles = int_ "dhaz_cycles" j in
  let* ext_cycles = int_ "ext_cycles" j in
  let* rollbacks = int_ "rollbacks" j in
  let* squashed = int_ "squashed" j in
  Some
    ( point,
      {
        Workload.Stats.label;
        instructions;
        cycles;
        cpi;
        speedup_vs_sequential;
        fetch_stall_cycles;
        dhaz_cycles;
        ext_cycles;
        rollbacks;
        squashed;
      } )

let payload_of_json j =
  match str "payload" j with
  | Some "transformed" ->
    let* summary = str "summary" j in
    let* inventory = str "inventory" j in
    Some (Transformed { summary; inventory; verilog = str "verilog" j })
  | Some "verdict" ->
    let* s = Option.bind (mem "verdict" j) verify_summary_of_json in
    let* text = str "text" j in
    Some (Verdict { summary = s; text })
  | Some "proof" ->
    let* verified = bool_ "verified" j in
    let* text = str "text" j in
    Some (Proof_text { verified; text })
  | Some "stats" ->
    let* summary = mem "hazards" j in
    let* text = str "text" j in
    Some (Stats_report { summary; text })
  | Some "campaign" ->
    let* summary = Option.bind (mem "summary" j) campaign_summary_of_json in
    let* outcomes = mem "outcomes" j in
    let* text = str "text" j in
    Some (Campaign_report { summary; outcomes; text })
  | Some "sweep" ->
    let* items = Option.bind (mem "rows" j) J.to_list_opt in
    let rows = List.filter_map row_of_json items in
    if List.length rows <> List.length items then None
    else
      let* text = str "text" j in
      Some (Sweep_rows { rows; text })
  | _ -> None

let of_json j =
  match (int_ "pipegen" j, bool_ "ok" j) with
  | Some v, _ when v <> Request.version ->
    Error (Printf.sprintf "unsupported response version %d" v)
  | None, _ -> Error "missing response version"
  | Some _, None -> Error "missing ok flag"
  | Some _, Some okf ->
    let id = str "id" j in
    let cached = match bool_ "cached" j with Some c -> c | None -> false in
    if okf then
      match payload_of_json j with
      | Some p -> Ok { id; cached; result = Ok p }
      | None -> Error "malformed response payload"
    else (
      match (Option.bind (str "error" j) code_of_label, str "message" j) with
      | Some code, Some message ->
        Ok
          {
            id;
            cached;
            result =
              Error
                {
                  code;
                  message;
                  phase = str "phase" j;
                  retry_after_s = float_ "retry_after_s" j;
                };
          }
      | _ -> Error "malformed error response")

let of_string s =
  match J.parse s with Ok j -> of_json j | Error msg -> Error msg

let equal (a : t) (b : t) = a = b
