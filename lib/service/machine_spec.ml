type t = Toy3 | Dlx5 | Dlx6 | Dlx5_intr | Dlx5_bp

let all = [ Toy3; Dlx5; Dlx6; Dlx5_intr; Dlx5_bp ]

let to_string = function
  | Toy3 -> "toy3"
  | Dlx5 -> "dlx5"
  | Dlx6 -> "dlx6"
  | Dlx5_intr -> "dlx5_intr"
  | Dlx5_bp -> "dlx5_bp"

let names = List.map to_string all

let of_string name =
  match List.find_opt (fun m -> to_string m = name) all with
  | Some m -> Ok m
  | None ->
    Error
      (Printf.sprintf "unknown machine %s; available: %s" name
         (String.concat ", " names))

let variant = function
  | Dlx5 -> Some Dlx.Seq_dlx.Base
  | Dlx5_intr -> Some (Dlx.Seq_dlx.With_interrupts { sisr = 8 })
  | Dlx5_bp -> Some Dlx.Seq_dlx.Branch_predict
  | Toy3 | Dlx6 -> None
