(** The typed request API of the verification service.

    A request is everything a [pipegen] subcommand needs to produce
    its result, minus presentation and operational concerns (output
    formatting, parallelism degree, checkpoint paths stay with the
    caller).  The CLI parses argv into a {!t} and the serve loop
    decodes one JSON object per input line into the same {!t}, so both
    front ends drive the identical {!Handler} code path.

    {2 Wire format}

    One flat JSON object per request, versioned:

    {v
    {"pipegen": 1, "id": "r42", "kind": "verify",
     "machine": "dlx5", "kernel": "fib_10"}
    v}

    [pipegen] (the protocol version) and [kind] are required;
    everything else is optional with the defaults of {!default_spec}
    and of each kind's record.  The decoder is {e strict}: an unknown
    field anywhere is an error naming the offending key (no silent
    defaulting), a field of the wrong type is an error naming the key
    and the expected type, and {!of_json} never guesses. *)

type spec = {
  machine : Machine_spec.t;
  kernel : string option;  (** DLX kernel name (exact or unique prefix) *)
  program_file : string option;  (** DLX assembly file to load *)
  interlock_only : bool;  (** no forwarding paths (baseline E5) *)
  impl : Hw.Circuits.priority_impl;  (** selection-network implementation *)
}

val default_spec : spec
(** [dlx5], no kernel or program, full forwarding, chain networks. *)

type sweep_axis = Dependency | Branch

type kind =
  | Transform of { verilog : bool }
      (** the generated hardware: machine summary and inventory, plus
          the HDL rendering when [verilog] is set *)
  | Verify  (** proof obligations + checkers, the [verify] subcommand *)
  | Proof  (** the PVS-style proof theory with discharge annotations *)
  | Stats  (** hazard attribution and the CPI decomposition *)
  | Campaign of {
      seed : int;
      mutants : int option;  (** sample size; [None] runs every mutant *)
      transients : int;
      hang : bool;
      timeout_s : float;  (** per-mutant budget *)
      bmc : bool;  (** exhaustive program sweep per mutant (toy3 only) *)
    }
  | Sweep of {
      axis : sweep_axis;
      points : float list;  (** dependency biases / taken fractions *)
      length : int;
      seed : int;
      lanes : bool;
          (** drive the verified points through the bit-parallel lane
              engine, up to 62 per machine word; rows are bit-identical
              to the scalar sweep *)
    }

type t = {
  id : string option;
  spec : spec;
  kind : kind;
  deadline_s : float option;
      (** client deadline, seconds from admission: the serve loop
          rejects the request [Overloaded] when the projected queue
          wait already exceeds it, and otherwise evaluates under a
          cancellation deadline of this budget (a trip is a [Timeout]
          response).  [None] = the server's [--timeout] policy alone.
          Note duplicate coalescing keys on the full canonical
          encoding, so requests differing only in deadline do not
          coalesce. *)
}

val make : ?id:string -> ?deadline_s:float -> ?spec:spec -> kind -> t

val kind_name : t -> string
(** The wire name of the request kind, e.g. ["verify"]. *)

val version : int
(** The protocol version this codec speaks (1). *)

(** {1 Codec} *)

val to_json : t -> Obs.Json.t
(** Canonical encoding: optional fields that hold their default are
    omitted, so [to_json] is injective on the semantic content and its
    output round-trips through {!of_json} exactly. *)

type decode_error = {
  path : string;  (** JSONPath-style location, e.g. ["$.kernel"] *)
  message : string;
}

val of_json : Obs.Json.t -> (t, decode_error) result
(** Strict decode; see the wire-format notes above. *)

val of_string : string -> (t, decode_error) result
(** Parse + {!of_json}; a JSON syntax error is reported at ["$"]. *)

val to_string : t -> string
(** Minified {!to_json}, the serve wire encoding. *)

val equal : t -> t -> bool

val pp_decode_error : Format.formatter -> decode_error -> unit
