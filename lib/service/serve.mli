(** The long-running verification service ([pipegen serve]).

    Protocol: newline-delimited JSON.  Each input line is one
    {!Request.t}; each output line is the matching {!Response.t}, in
    input order.  The loop reads stdin until EOF (or serves one client
    at a time on a Unix socket with [socket]) and admits requests in
    {e batches}: after a blocking read of the first pending line, every
    further line already available is drained into the same batch.

    Admission per batch:

    {ul
    {- {e Coalescing} — requests identical up to their [id] (same
       canonical {!Request.to_json}) collapse into one evaluation; the
       followers are answered with the leader's payload, marked
       [cached], and counted in [serve_coalesced].}
    {- {e Verdict cache} — each distinct request is answered from the
       environment's content-addressed {!Cache} when its key is
       present ([serve_cache_hits]); otherwise it is evaluated and the
       payload stored.}
    {- {e Isolation} — evaluations fan out over an {!Exec.Pool} via
       [map_result]: each request gets a cancellation token that is a
       child of the server's shutdown token, with [timeout_s] as its
       per-request budget.  A timeout or crash yields a typed error
       response; the loop and the other requests are unaffected.}}

    Observability: [serve_requests], [serve_cache_hits]/[_misses],
    [serve_coalesced] and [serve_queue_hwm] ({!Obs.Counters}, Sched
    class — never perf-gated), plus a per-run {!Obs.Metrics} registry
    (cache counters, queue-depth gauge, per-request latency histogram
    [serve.latency_ms]) written to [metrics_out] as JSON on exit. *)

type config = {
  jobs : int;  (** pool size for request evaluation (>= 1) *)
  timeout_s : float option;  (** per-request budget; [None] = unbounded *)
  capacity : int;  (** verdict-cache entries *)
  metrics_out : string option;  (** write the metrics JSON here on exit *)
  socket : string option;  (** serve on this Unix socket, not stdin *)
}

val default_config : config
(** Pool of {!Exec.Pool.default_size}, no timeout, 256 cache entries,
    no metrics file, stdin/stdout. *)

val run : ?config:config -> unit -> int
(** Serve until EOF (stdin mode) or SIGINT/SIGTERM; returns the
    process exit code (0 on clean shutdown, 1 on an I/O failure of the
    transport itself). *)

(**/**)

val process_batch :
  env:Handler.env ->
  pool:Exec.Pool.t ->
  ?timeout_s:float ->
  ?cancel:Exec.Cancel.token ->
  ?latency:Obs.Metrics.histogram ->
  string list ->
  Response.t list
(** One admission batch over raw input lines, exposed for the test
    suite: parse, coalesce, cache-check, evaluate, and return
    responses in input order. *)
