(** The long-running verification service ([pipegen serve]).

    Protocol: newline-delimited JSON.  Each input line is one
    {!Request.t}; each output line is the matching {!Response.t}, in
    input order.  The loop reads stdin until EOF (or serves one client
    at a time on a Unix socket with [socket]) and admits requests in
    {e batches}: after a blocking read of the first pending line, every
    further line already available is drained into the same batch.

    Admission per batch:

    {ul
    {- {e Coalescing} — requests identical up to their [id] (same
       canonical {!Request.to_json}) collapse into one evaluation; the
       followers are answered with the leader's payload, marked
       [cached], and counted in [serve_coalesced].}
    {- {e Backpressure} — leaders beyond [max_queue], and leaders
       whose projected queue wait (an EWMA of recent service time)
       already exceeds their request [deadline_s], are shed with typed
       [Overloaded] responses carrying [retry_after_s]
       ([serve_shed]).  Three consecutive shedding batches switch the
       server to cache-only degraded mode (misses answered
       [Overloaded] without evaluating); a half-empty queue switches
       back.}
    {- {e Verdict cache} — each distinct request is answered from the
       environment's content-addressed {!Cache} when its key is
       present ([serve_cache_hits]); otherwise it is evaluated and the
       payload stored.}
    {- {e Isolation} — evaluations fan out over an {!Exec.Pool} via
       [map_result]: each request gets a cancellation token that is a
       child of the server's shutdown token, with [timeout_s] as its
       per-request budget and the request's own [deadline_s] as one
       more child deadline.  A timeout, explicit cancellation or crash
       yields a typed error response; the loop and the other requests
       are unaffected.  [Failed] (transient) outcomes are retried up
       to [retries] times with exponential backoff ([serve_retries]) —
       safe because evaluation is pure.}}

    {2 Failure domains}

    With [journal], the loop is {e crash-only}: each admitted batch is
    appended to a write-ahead {!Journal} (one fsync) before evaluation
    and each completed response after, so a SIGKILL at any point loses
    nothing — the next [run] replays completed responses verbatim,
    warm-starts the verdict cache from them, and re-evaluates the
    unfinished remainder ([serve_journal_replayed]).  The journal is
    truncated only on a clean end-of-input shutdown.

    A client disconnect mid-response (EPIPE/ECONNRESET; SIGPIPE is
    ignored for the duration of [run]) fails only that connection.  A
    worker domain death is healed at batch boundaries
    ({!Exec.Pool.heal}, [pool_restarts]); wedged domains are surfaced
    through the [serve.wedged_domains] gauge.  [chaos] arms the
    seeded {!Exec.Chaos} injector on the evaluation pool so all of
    these paths are exercisable deterministically.

    Observability: [serve_requests], [serve_cache_hits]/[_misses],
    [serve_coalesced], [serve_queue_hwm], [serve_shed],
    [serve_retries], [serve_journal_replayed] and [pool_restarts]
    ({!Obs.Counters}, Sched class — never perf-gated), plus a per-run
    {!Obs.Metrics} registry (cache counters, queue-depth and
    restart/wedge gauges, per-request latency histogram
    [serve.latency_ms]) written to [metrics_out] as JSON on exit. *)

type config = {
  jobs : int;  (** pool size for request evaluation (>= 1) *)
  timeout_s : float option;  (** per-request budget; [None] = unbounded *)
  capacity : int;  (** verdict-cache entries *)
  metrics_out : string option;  (** write the metrics JSON here on exit *)
  socket : string option;  (** serve on this Unix socket, not stdin *)
  journal : string option;  (** write-ahead journal path ([--journal]) *)
  max_queue : int;  (** admission bound per batch ([--max-queue]) *)
  retries : int;  (** transient-failure retry budget ([--retries]) *)
  chaos : Exec.Chaos.config option;  (** arm the fault injector *)
}

val default_config : config
(** Pool of {!Exec.Pool.default_size}, no timeout, 256 cache entries,
    no metrics file, stdin/stdout; no journal, [max_queue] 256, 2
    retries, no chaos. *)

val run : ?config:config -> unit -> int
(** Serve until EOF (stdin mode) or SIGINT/SIGTERM; returns the
    process exit code (0 on clean shutdown, 1 on an I/O failure of the
    transport itself). *)

(**/**)

exception Client_gone
(** A client hung up mid-conversation (EPIPE/ECONNRESET on the
    response write).  Contained per connection by [run]. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string, retrying short writes; raises
    {!Client_gone} when the peer is gone.  Exposed for the EPIPE
    regression test. *)

type admission

val make_admission : ?max_queue:int -> ?retries:int -> unit -> admission
(** Fresh admission state (defaults: 256, 2).  One instance persists
    across every batch of a server run. *)

val degraded : admission -> bool

val process_batch :
  env:Handler.env ->
  pool:Exec.Pool.t ->
  ?timeout_s:float ->
  ?cancel:Exec.Cancel.token ->
  ?latency:Obs.Metrics.histogram ->
  ?admission:admission ->
  string list ->
  Response.t list
(** One admission batch over raw input lines, exposed for the test
    suite: parse, coalesce, shed (when [admission] is given),
    cache-check, evaluate with bounded retries, and return responses
    in input order.  Without [admission] there is no shedding, no
    deadline reject, no degraded mode and no retrying — the plain
    evaluation path. *)

val replay :
  env:Handler.env ->
  pool:Exec.Pool.t ->
  cfg:config ->
  shutdown:Exec.Cancel.token ->
  latency:Obs.Metrics.histogram ->
  admission:admission ->
  Journal.t ->
  (string -> unit) ->
  unit
(** Journal recovery, exposed for the bench robustness leg: re-emit
    completed entries verbatim (warming the verdict cache), re-admit
    the pending remainder as one batch whose done-records land on the
    original sequence numbers, bumping [serve_journal_replayed] per
    emitted response.  Reads the journal at [cfg.journal]; appends
    done-records through the handle. *)
