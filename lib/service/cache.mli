(** Content-addressed verdict cache.

    Verification is deterministic: the verdict for a machine is a pure
    function of the machine {e shape} (stages, registers, data paths,
    the synthesized control), the {e program image} (the initial
    register contents, including instruction and data memory) and the
    {e request kind} with its parameters.  The cache key is the MD5
    digest of exactly those three components — not of the request's
    surface syntax — so two requests that name the same work by
    different routes (a kernel name vs. the assembly file it came
    from) hit the same entry, while any change to the program bytes or
    the generated hardware misses.

    A hit returns the stored {!Response.payload} unchanged: replayed
    verdicts are bit-identical to the cold evaluation (the test suite
    asserts this on the JSON encoding).  Entries are evicted FIFO past
    [capacity].

    Thread safety: all operations take an internal mutex; the serve
    loop shares one cache across its {!Exec.Pool} workers.  Hits and
    misses are surfaced through {!Obs.Counters}
    ([serve_cache_hits]/[serve_cache_misses], Sched class) and through
    the optional per-cache {!Obs.Metrics} registry. *)

type t

val create : ?capacity:int -> ?metrics:Obs.Metrics.registry -> unit -> t
(** [capacity] defaults to 256 entries. *)

val key :
  kind:string -> ?extra:string list -> Pipeline.Transform.t -> string
(** The content address: a digest over [kind], the extra request
    parameters, the transform's structural shape (registers, stage
    writes, synthesized signals, options) and the program image (every
    initial register value of the pipelined machine). *)

val find : t -> string -> Response.payload option
(** Counter-bumping lookup. *)

val add : t -> string -> Response.payload -> unit

val hits : t -> int

val misses : t -> int

val length : t -> int
