(** The machines the tool ships with, as a closed enumeration.

    Every front end — the [pipegen] CLI, the [serve] request decoder
    and the benchmark harness — selects machines through this one
    module, so the set of names and the unknown-name error message
    exist in exactly one place. *)

type t =
  | Toy3  (** the 3-stage triadic-add demo machine *)
  | Dlx5  (** the paper's five-stage DLX case study *)
  | Dlx6  (** DLX with a two-stage memory (mechanical EX/MEM split) *)
  | Dlx5_intr  (** DLX with precise interrupts via speculation (§5) *)
  | Dlx5_bp  (** DLX with branch (next-fetch-address) speculation *)

val all : t list
(** Every machine, in the order the CLI documents them. *)

val names : string list
(** [List.map to_string all]. *)

val to_string : t -> string
(** The stable CLI/wire name, e.g. ["dlx5_intr"]. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; [Error] carries the unified unknown-name
    message (["unknown machine NAME; available: ..."]) used verbatim
    by the CLI, the serve decoder and the bench. *)

val variant : t -> Dlx.Seq_dlx.variant option
(** The DLX variant behind the five-stage machines; [None] for
    {!Toy3} and {!Dlx6} (which is derived by retiming, not a
    variant). *)
