type config = {
  jobs : int;
  timeout_s : float option;
  capacity : int;
  metrics_out : string option;
  socket : string option;
}

let default_config =
  {
    jobs = Exec.Pool.default_size ();
    timeout_s = None;
    capacity = 256;
    metrics_out = None;
    socket = None;
  }

(* ------------------------------------------------------------------ *)
(* Batch admission                                                    *)
(* ------------------------------------------------------------------ *)

type role =
  | Malformed of Request.decode_error
  | Leader of Request.t
  | Follower of int * Request.t  (* index of the leader *)

let process_batch ~env ~pool ?timeout_s ?cancel ?latency lines =
  let n = List.length lines in
  Obs.Counters.record_max Obs.Counters.Serve_queue_hwm n;
  let seen = Hashtbl.create 16 in
  let roles =
    List.mapi
      (fun i line ->
        match Request.of_string line with
        | Error e -> Malformed e
        | Ok req -> (
          let canonical = Request.to_string { req with Request.id = None } in
          match Hashtbl.find_opt seen canonical with
          | None ->
            Hashtbl.add seen canonical i;
            Leader req
          | Some j ->
            Obs.Counters.bump Obs.Counters.Serve_coalesced;
            Follower (j, req)))
      lines
  in
  let roles = Array.of_list roles in
  let leaders =
    Array.to_list roles
    |> List.mapi (fun i role -> (i, role))
    |> List.filter_map (function
         | i, Leader req -> Some (i, req)
         | _, (Malformed _ | Follower _) -> None)
  in
  let observe_latency f =
    match latency with
    | None -> f ()
    | Some h ->
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          Obs.Metrics.observe h ((Unix.gettimeofday () -. t0) *. 1000.0))
        f
  in
  let outcomes =
    Exec.Pool.map_result ?timeout_s ?cancel pool
      (fun ~cancel (_, req) ->
        observe_latency (fun () -> Handler.handle ~env ~pool ~cancel req))
      leaders
  in
  let responses = Array.make (Array.length roles) None in
  List.iter2
    (fun (i, (req : Request.t)) outcome ->
      let resp =
        match outcome with
        | Exec.Pool.Done resp -> resp
        | Exec.Pool.Failed (e, _) ->
          Response.fail ?id:req.Request.id Response.Internal
            (Printexc.to_string e)
        | Exec.Pool.Timed_out elapsed ->
          Response.fail ?id:req.Request.id Response.Timeout
            (Printf.sprintf "request timed out after %.2fs" elapsed)
      in
      responses.(i) <- Some resp)
    leaders outcomes;
  Array.iteri
    (fun i role ->
      match role with
      | Leader _ -> ()
      | Malformed err ->
        responses.(i) <-
          Some
            (Response.fail Response.Usage
               (Format.asprintf "%a" Request.pp_decode_error err))
      | Follower (j, req) ->
        let leader =
          match responses.(j) with Some r -> r | None -> assert false
        in
        let cached =
          match leader.Response.result with Ok _ -> true | Error _ -> false
        in
        responses.(i) <-
          Some { leader with Response.id = req.Request.id; cached })
    roles;
  Array.to_list responses
  |> List.map (function Some r -> r | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Line transport                                                     *)
(* ------------------------------------------------------------------ *)

(* A buffered fd reader that can both block for the next line and
   greedily drain whatever further complete lines have already
   arrived — the admission loop's batching primitive.  [Unix.read]
   is retried on EINTR with the shutdown token checked in between,
   so SIGINT lands even mid-read. *)
type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable eof : bool;
}

let reader fd = { fd; buf = Buffer.create 4096; eof = false }

let take_line r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear r.buf;
    Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
    Some (String.sub s 0 i)

let refill ~shutdown r =
  let bytes = Bytes.create 4096 in
  let rec read () =
    match Unix.read r.fd bytes 0 (Bytes.length bytes) with
    | 0 ->
      r.eof <- true;
      false
    | k ->
      Buffer.add_subbytes r.buf bytes 0 k;
      true
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if Exec.Cancel.cancelled shutdown then begin
        r.eof <- true;
        false
      end
      else read ()
  in
  read ()

(* Block until at least one line (or EOF). *)
let rec next_line ~shutdown r =
  if Exec.Cancel.cancelled shutdown then None
  else
    match take_line r with
    | Some l -> Some l
    | None ->
      if r.eof then None
      else if refill ~shutdown r then next_line ~shutdown r
      else if Buffer.length r.buf > 0 then begin
        (* trailing line without a newline *)
        let l = Buffer.contents r.buf in
        Buffer.clear r.buf;
        Some l
      end
      else None

(* Drain every further complete line that is already available,
   without blocking: buffered remainders first, then whatever
   [select] says is readable right now. *)
let drain_available ~shutdown r =
  let rec lines acc =
    match take_line r with
    | Some l -> lines (l :: acc)
    | None ->
      if r.eof then List.rev acc
      else (
        match Unix.select [ r.fd ] [] [] 0.0 with
        | [], _, _ -> List.rev acc
        | _ ->
          if refill ~shutdown r then lines acc
          else List.rev acc
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> List.rev acc)
  in
  lines []

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* ------------------------------------------------------------------ *)
(* The loop                                                           *)
(* ------------------------------------------------------------------ *)

let serve_fds ~env ~pool ~cfg ~shutdown ~latency ~depth in_fd out_fd =
  let r = reader in_fd in
  let rec loop () =
    match next_line ~shutdown r with
    | None -> ()
    | Some first ->
      let batch = first :: drain_available ~shutdown r in
      Obs.Metrics.set depth (float_of_int (List.length batch));
      let responses =
        process_batch ~env ~pool ?timeout_s:cfg.timeout_s ~cancel:shutdown
          ~latency batch
      in
      List.iter
        (fun resp -> write_all out_fd (Response.to_string resp ^ "\n"))
        responses;
      loop ()
  in
  loop ()

let write_metrics ~metrics path =
  let json =
    Obs.Json.Obj
      [
        ("metrics", Obs.Metrics.to_json metrics);
        ( "counters",
          Obs.Json.Obj
            (List.map
               (fun (k, v) -> (k, Obs.Json.Int v))
               (Obs.Counters.sched_snapshot ())) );
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string json ^ "\n"))

let run ?(config = default_config) () =
  if config.jobs < 1 then (
    prerr_endline "pipegen: serve: jobs must be at least 1";
    2)
  else begin
    let shutdown = Exec.Cancel.create () in
    let stop _ = Exec.Cancel.cancel shutdown in
    let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle stop) in
    let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle stop) in
    let metrics = Obs.Metrics.create () in
    let latency = Obs.Metrics.histogram metrics "serve.latency_ms" in
    let depth = Obs.Metrics.gauge metrics "serve.batch_depth" in
    let env = Handler.create_env ~capacity:config.capacity ~metrics () in
    let code =
      Fun.protect
        ~finally:(fun () ->
          Sys.set_signal Sys.sigint prev_int;
          Sys.set_signal Sys.sigterm prev_term;
          Option.iter
            (fun path -> write_metrics ~metrics path)
            config.metrics_out)
        (fun () ->
          try
            Exec.Pool.with_pool ~size:config.jobs (fun pool ->
                match config.socket with
                | None ->
                  serve_fds ~env ~pool ~cfg:config ~shutdown ~latency ~depth
                    Unix.stdin Unix.stdout;
                  0
                | Some path ->
                  if Sys.file_exists path then Sys.remove path;
                  let sock =
                    Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
                  in
                  Fun.protect
                    ~finally:(fun () ->
                      (try Unix.close sock with Unix.Unix_error _ -> ());
                      if Sys.file_exists path then Sys.remove path)
                    (fun () ->
                      Unix.bind sock (Unix.ADDR_UNIX path);
                      Unix.listen sock 8;
                      let rec accept_loop () =
                        if Exec.Cancel.cancelled shutdown then ()
                        else
                          match Unix.accept sock with
                          | client, _ ->
                            Fun.protect
                              ~finally:(fun () ->
                                try Unix.close client
                                with Unix.Unix_error _ -> ())
                              (fun () ->
                                serve_fds ~env ~pool ~cfg:config ~shutdown
                                  ~latency ~depth client client);
                            accept_loop ()
                          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                            accept_loop ()
                      in
                      accept_loop ();
                      0))
          with Unix.Unix_error (e, fn, _) ->
            Printf.eprintf "pipegen: serve: %s: %s\n%!" fn
              (Unix.error_message e);
            1)
    in
    code
  end
