type config = {
  jobs : int;
  timeout_s : float option;
  capacity : int;
  metrics_out : string option;
  socket : string option;
  journal : string option;
  max_queue : int;
  retries : int;
  chaos : Exec.Chaos.config option;
}

let default_config =
  {
    jobs = Exec.Pool.default_size ();
    timeout_s = None;
    capacity = 256;
    metrics_out = None;
    socket = None;
    journal = None;
    max_queue = 256;
    retries = 2;
    chaos = None;
  }

(* ------------------------------------------------------------------ *)
(* Admission control                                                  *)
(* ------------------------------------------------------------------ *)

(* Mutable across batches, touched only by the serve thread.  The
   EWMA of per-request service time drives both the [retry_after_s]
   hint on shed responses and the deadline-based early reject; the
   hot-batch counter is the degrade hysteresis (3 consecutive
   shedding batches switch evaluation to cache-only, a half-empty
   queue switches back). *)
type admission = {
  adm_max_queue : int;
  adm_retries : int;
  mutable degraded : bool;
  mutable hot_batches : int;
  mutable ewma_ms : float;
}

let make_admission ?(max_queue = 256) ?(retries = 2) () =
  {
    adm_max_queue = max_queue;
    adm_retries = retries;
    degraded = false;
    hot_batches = 0;
    ewma_ms = 50.0;
  }

let degraded a = a.degraded

(* ------------------------------------------------------------------ *)
(* Batch admission                                                    *)
(* ------------------------------------------------------------------ *)

type role =
  | Malformed of Request.decode_error
  | Leader of Request.t
  | Follower of int * Request.t  (* index of the leader *)

let process_batch ~env ~pool ?timeout_s ?cancel ?latency ?admission lines =
  let n = List.length lines in
  Obs.Counters.record_max Obs.Counters.Serve_queue_hwm n;
  let seen = Hashtbl.create 16 in
  let roles =
    List.mapi
      (fun i line ->
        match Request.of_string line with
        | Error e -> Malformed e
        | Ok req -> (
          let canonical = Request.to_string { req with Request.id = None } in
          match Hashtbl.find_opt seen canonical with
          | None ->
            Hashtbl.add seen canonical i;
            Leader req
          | Some j ->
            Obs.Counters.bump Obs.Counters.Serve_coalesced;
            Follower (j, req)))
      lines
  in
  let roles = Array.of_list roles in
  let leaders =
    Array.to_list roles
    |> List.mapi (fun i role -> (i, role))
    |> List.filter_map (function
         | i, Leader req -> Some (i, req)
         | _, (Malformed _ | Follower _) -> None)
  in
  let jobs = max 1 (Exec.Pool.size pool) in
  (* Admission: shed the leaders past the queue bound, then the ones
     whose projected queue wait already exceeds their own deadline.
     Both get typed [Overloaded] responses carrying a retry-after hint
     and never reach evaluation. *)
  let cache_only, kept, shed =
    match admission with
    | None -> (false, leaders, [])
    | Some a ->
      let ewma_s = a.ewma_ms /. 1000.0 in
      let retry_after =
        Float.max 0.01
          (ewma_s *. float_of_int (List.length leaders) /. float_of_int jobs)
      in
      let kept = ref [] and shed = ref [] in
      List.iteri
        (fun ord (i, (req : Request.t)) ->
          if ord >= a.adm_max_queue then
            shed := (i, req, "queue full (max-queue exceeded)") :: !shed
          else
            match req.Request.deadline_s with
            | Some d
              when ewma_s *. float_of_int ord /. float_of_int jobs > d ->
              shed :=
                (i, req, "projected queue wait exceeds request deadline")
                :: !shed
            | _ -> kept := (i, req) :: !kept)
        leaders;
      let kept = List.rev !kept and shed_l = List.rev !shed in
      if shed_l <> [] then a.hot_batches <- a.hot_batches + 1
      else if 2 * List.length leaders <= a.adm_max_queue then begin
        a.hot_batches <- 0;
        a.degraded <- false
      end;
      if a.hot_batches >= 3 then a.degraded <- true;
      ( a.degraded,
        kept,
        List.map (fun (i, req, msg) -> (i, req, msg, retry_after)) shed_l )
  in
  let observe_latency f =
    match latency with
    | None -> f ()
    | Some h ->
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          Obs.Metrics.observe h ((Unix.gettimeofday () -. t0) *. 1000.0))
        f
  in
  let eval_batch items =
    Exec.Pool.map_result ?timeout_s ?cancel pool
      (fun ~cancel (_, (req : Request.t)) ->
        (* The request's own deadline rides as one more child token:
           server timeout, client deadline and shutdown all trip the
           same cooperative chain, and [Cancel.reason] keeps Timeout
           vs Cancelled straight. *)
        let cancel =
          match req.Request.deadline_s with
          | None -> cancel
          | Some d -> Exec.Cancel.with_parent cancel ~timeout_s:d ()
        in
        observe_latency (fun () ->
            Handler.handle ~env ~pool ~cancel ~cache_only req))
      items
  in
  let t0 = Unix.gettimeofday () in
  let outcomes = Array.of_list (eval_batch kept) in
  let kept_arr = Array.of_list kept in
  (* Bounded retry with backoff for transient failures: evaluation is
     pure, so re-running a crashed task is safe.  Only [Failed]
     outcomes retry — timeouts and cancellations are answers. *)
  let retries =
    match admission with Some a -> a.adm_retries | None -> 0
  in
  let rec retry_round attempt =
    if attempt <= retries then begin
      let failed = ref [] in
      Array.iteri
        (fun j o ->
          match o with Exec.Pool.Failed _ -> failed := j :: !failed | _ -> ())
        outcomes;
      let failed = List.rev !failed in
      if failed <> [] then begin
        Unix.sleepf (0.001 *. float_of_int (1 lsl (attempt - 1)));
        List.iter
          (fun _ -> Obs.Counters.bump Obs.Counters.Serve_retries)
          failed;
        let redo = eval_batch (List.map (fun j -> kept_arr.(j)) failed) in
        List.iter2 (fun j o -> outcomes.(j) <- o) failed redo;
        retry_round (attempt + 1)
      end
    end
  in
  retry_round 1;
  (match admission with
  | Some a when kept <> [] ->
    let per_req_ms =
      (Unix.gettimeofday () -. t0)
      *. 1000.0
      /. float_of_int (List.length kept)
    in
    a.ewma_ms <- (0.8 *. a.ewma_ms) +. (0.2 *. per_req_ms)
  | _ -> ());
  let responses = Array.make (Array.length roles) None in
  Array.iteri
    (fun j (i, (req : Request.t)) ->
      let resp =
        match outcomes.(j) with
        | Exec.Pool.Done resp -> resp
        | Exec.Pool.Failed (e, _) ->
          Response.fail ?id:req.Request.id Response.Internal
            (Printexc.to_string e)
        | Exec.Pool.Timed_out elapsed ->
          Response.fail ?id:req.Request.id Response.Timeout
            (Printf.sprintf "request timed out after %.2fs" elapsed)
        | Exec.Pool.Cancelled elapsed ->
          Response.fail ?id:req.Request.id Response.Cancelled
            (Printf.sprintf "request cancelled after %.2fs" elapsed)
      in
      responses.(i) <- Some resp)
    kept_arr;
  List.iter
    (fun (i, (req : Request.t), msg, retry_after) ->
      Obs.Counters.bump Obs.Counters.Serve_shed;
      responses.(i) <-
        Some
          (Response.fail ?id:req.Request.id ~retry_after_s:retry_after
             Response.Overloaded msg))
    shed;
  Array.iteri
    (fun i role ->
      match role with
      | Leader _ -> ()
      | Malformed err ->
        responses.(i) <-
          Some
            (Response.fail Response.Usage
               (Format.asprintf "%a" Request.pp_decode_error err))
      | Follower (j, req) ->
        let leader =
          match responses.(j) with Some r -> r | None -> assert false
        in
        let cached =
          match leader.Response.result with Ok _ -> true | Error _ -> false
        in
        responses.(i) <-
          Some { leader with Response.id = req.Request.id; cached })
    roles;
  Array.to_list responses
  |> List.map (function Some r -> r | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Line transport                                                     *)
(* ------------------------------------------------------------------ *)

exception Client_gone
(* The peer vanished mid-conversation (EPIPE/ECONNRESET).  Fails this
   connection only: the socket accept loop moves to the next client,
   the daemon never dies.  SIGPIPE is ignored in [run] so the write
   error surfaces here instead of killing the process. *)

(* A buffered fd reader that can both block for the next line and
   greedily drain whatever further complete lines have already
   arrived — the admission loop's batching primitive.  [Unix.read]
   is retried on EINTR with the shutdown token checked in between,
   so SIGINT lands even mid-read. *)
type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable eof : bool;
}

let reader fd = { fd; buf = Buffer.create 4096; eof = false }

let take_line r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear r.buf;
    Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
    Some (String.sub s 0 i)

let refill ~shutdown r =
  let bytes = Bytes.create 4096 in
  let rec read () =
    match Unix.read r.fd bytes 0 (Bytes.length bytes) with
    | 0 ->
      r.eof <- true;
      false
    | k ->
      Buffer.add_subbytes r.buf bytes 0 k;
      true
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if Exec.Cancel.cancelled shutdown then begin
        r.eof <- true;
        false
      end
      else read ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
      (* a vanished client is EOF, not a daemon failure *)
      r.eof <- true;
      false
  in
  read ()

(* Block until at least one line (or EOF). *)
let rec next_line ~shutdown r =
  if Exec.Cancel.cancelled shutdown then None
  else
    match take_line r with
    | Some l -> Some l
    | None ->
      if r.eof then None
      else if refill ~shutdown r then next_line ~shutdown r
      else if Buffer.length r.buf > 0 then begin
        (* trailing line without a newline *)
        let l = Buffer.contents r.buf in
        Buffer.clear r.buf;
        Some l
      end
      else None

(* Drain every further complete line that is already available,
   without blocking: buffered remainders first, then whatever
   [select] says is readable right now. *)
let drain_available ~shutdown r =
  let rec lines acc =
    match take_line r with
    | Some l -> lines (l :: acc)
    | None ->
      if r.eof then List.rev acc
      else (
        match Unix.select [ r.fd ] [] [] 0.0 with
        | [], _, _ -> List.rev acc
        | _ ->
          if refill ~shutdown r then lines acc
          else List.rev acc
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> List.rev acc)
  in
  lines []

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Client_gone
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Journal replay                                                     *)
(* ------------------------------------------------------------------ *)

(* Recovery on restart: completed journal entries are re-emitted
   verbatim (and warm the verdict cache), unfinished ones are
   re-admitted as one batch whose done-records land on their original
   sequence numbers.  At-least-once overall; responses are
   byte-identical thanks to the journaled raw lines and the
   content-addressed evaluation, so clients dedup by id. *)
let replay ~env ~pool ~cfg ~shutdown ~latency ~admission journal emit =
  match cfg.journal with
  | None -> ()
  | Some path ->
    let entries = Journal.read path in
    List.iter
      (fun (e : Journal.entry) ->
        match e.Journal.response with
        | None -> ()
        | Some resp_line ->
          (match
             (Request.of_string e.Journal.line, Response.of_string resp_line)
           with
          | Ok req, Ok { Response.result = Ok payload; _ } ->
            Handler.warm ~env req payload
          | _ -> ());
          Obs.Counters.bump Obs.Counters.Serve_journal_replayed;
          emit resp_line)
      entries;
    let pending =
      List.filter (fun e -> e.Journal.response = None) entries
    in
    if pending <> [] && not (Exec.Cancel.cancelled shutdown) then begin
      let responses =
        process_batch ~env ~pool ?timeout_s:cfg.timeout_s ~cancel:shutdown
          ~latency ~admission
          (List.map (fun e -> e.Journal.line) pending)
      in
      let dones = ref [] in
      List.iter2
        (fun (e : Journal.entry) resp ->
          let line = Response.to_string resp in
          (match resp.Response.result with
          | Error { Response.code = Response.Cancelled | Response.Overloaded;
                    _ } ->
            (* still unanswered in substance: stays pending *)
            ()
          | _ -> dones := (e.Journal.seq, line) :: !dones);
          Obs.Counters.bump Obs.Counters.Serve_journal_replayed;
          emit line)
        pending responses;
      Journal.append_done journal (List.rev !dones)
    end

(* ------------------------------------------------------------------ *)
(* The loop                                                           *)
(* ------------------------------------------------------------------ *)

let serve_fds ~env ~pool ~cfg ~shutdown ~latency ~depth ~admission ~journal
    ~watchdog in_fd out_fd =
  let r = reader in_fd in
  let rec loop () =
    match next_line ~shutdown r with
    | None -> ()
    | Some first ->
      let batch = first :: drain_available ~shutdown r in
      Obs.Metrics.set depth (float_of_int (List.length batch));
      (* Write-ahead: the batch is journaled and fsync'd before any
         evaluation starts, so a crash from here on loses nothing. *)
      let seqs =
        match journal with
        | None -> []
        | Some j -> Journal.append_admits j batch
      in
      let responses =
        process_batch ~env ~pool ?timeout_s:cfg.timeout_s ~cancel:shutdown
          ~latency ~admission batch
      in
      let lines = List.map Response.to_string responses in
      (match journal with
      | None -> ()
      | Some j ->
        let dones =
          List.filter_map
            (fun (seq, (resp, line)) ->
              match resp.Response.result with
              | Error
                  { Response.code = Response.Cancelled | Response.Overloaded;
                    _ } ->
                None
              | _ -> Some (seq, line))
            (List.combine seqs (List.combine responses lines))
        in
        Journal.append_done j dones);
      watchdog ();
      List.iter (fun line -> write_all out_fd (line ^ "\n")) lines;
      loop ()
  in
  loop ()

let write_metrics ~metrics path =
  let json =
    Obs.Json.Obj
      [
        ("metrics", Obs.Metrics.to_json metrics);
        ( "counters",
          Obs.Json.Obj
            (List.map
               (fun (k, v) -> (k, Obs.Json.Int v))
               (Obs.Counters.sched_snapshot ())) );
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string json ^ "\n"))

let run ?(config = default_config) () =
  if config.jobs < 1 then (
    prerr_endline "pipegen: serve: jobs must be at least 1";
    2)
  else begin
    let shutdown = Exec.Cancel.create () in
    let stop _ = Exec.Cancel.cancel shutdown in
    let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle stop) in
    let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle stop) in
    (* A client that hangs up mid-response must surface as EPIPE on
       the write (handled per connection), not as a process kill. *)
    let prev_pipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let metrics = Obs.Metrics.create () in
    let latency = Obs.Metrics.histogram metrics "serve.latency_ms" in
    let depth = Obs.Metrics.gauge metrics "serve.batch_depth" in
    let restarts_g = Obs.Metrics.gauge metrics "serve.pool_restarts" in
    let wedged_g = Obs.Metrics.gauge metrics "serve.wedged_domains" in
    let env = Handler.create_env ~capacity:config.capacity ~metrics () in
    let admission =
      make_admission ~max_queue:config.max_queue ~retries:config.retries ()
    in
    let chaos = Option.map Exec.Chaos.create config.chaos in
    let journal = Option.map Journal.open_ config.journal in
    let code =
      Fun.protect
        ~finally:(fun () ->
          Sys.set_signal Sys.sigint prev_int;
          Sys.set_signal Sys.sigterm prev_term;
          Option.iter (Sys.set_signal Sys.sigpipe) prev_pipe;
          Option.iter Journal.close journal;
          Option.iter
            (fun path -> write_metrics ~metrics path)
            config.metrics_out)
        (fun () ->
          try
            Exec.Pool.with_pool ~size:config.jobs ?chaos (fun pool ->
                (* The self-healing watchdog: respawn dead workers,
                   surface restart and wedge counts, once per batch. *)
                let watchdog () =
                  ignore (Exec.Pool.heal pool : int);
                  Obs.Metrics.set restarts_g
                    (float_of_int
                       (Obs.Counters.get Obs.Counters.Pool_restarts));
                  Obs.Metrics.set wedged_g
                    (float_of_int
                       (List.length (Exec.Pool.wedged pool)))
                in
                match config.socket with
                | None ->
                  (* stdio: replayed responses go to the client too *)
                  (match journal with
                  | None -> ()
                  | Some j ->
                    replay ~env ~pool ~cfg:config ~shutdown ~latency
                      ~admission j (fun line ->
                        write_all Unix.stdout (line ^ "\n")));
                  serve_fds ~env ~pool ~cfg:config ~shutdown ~latency ~depth
                    ~admission ~journal ~watchdog Unix.stdin Unix.stdout;
                  (* Clean end-of-input shutdown: every admitted
                     request was answered on the wire, so the journal
                     is done.  A signal (or crash) skips this — the
                     journal stays for the next process. *)
                  if not (Exec.Cancel.cancelled shutdown) then
                    Option.iter Journal.truncate journal;
                  0
                | Some path ->
                  (* socket: no client to re-emit to; replay completes
                     unfinished work into journal + verdict cache *)
                  (match journal with
                  | None -> ()
                  | Some j ->
                    replay ~env ~pool ~cfg:config ~shutdown ~latency
                      ~admission j (fun _ -> ()));
                  if Sys.file_exists path then Sys.remove path;
                  let sock =
                    Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
                  in
                  Fun.protect
                    ~finally:(fun () ->
                      (try Unix.close sock with Unix.Unix_error _ -> ());
                      if Sys.file_exists path then Sys.remove path)
                    (fun () ->
                      Unix.bind sock (Unix.ADDR_UNIX path);
                      Unix.listen sock 8;
                      let rec accept_loop () =
                        if Exec.Cancel.cancelled shutdown then ()
                        else
                          match Unix.accept sock with
                          | client, _ ->
                            Fun.protect
                              ~finally:(fun () ->
                                try Unix.close client
                                with Unix.Unix_error _ -> ())
                              (fun () ->
                                try
                                  serve_fds ~env ~pool ~cfg:config ~shutdown
                                    ~latency ~depth ~admission ~journal
                                    ~watchdog client client
                                with Client_gone -> ());
                            accept_loop ()
                          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                            accept_loop ()
                      in
                      accept_loop ();
                      0))
          with
          | Unix.Unix_error (e, fn, _) ->
            Printf.eprintf "pipegen: serve: %s: %s\n%!" fn
              (Unix.error_message e);
            1
          | Client_gone ->
            (* stdout vanished under stdio mode: nothing left to say *)
            0)
    in
    code
  end
