(** The one code path behind every front end.

    [handle] turns a {!Request.t} into a {!Response.t}.  The [pipegen]
    subcommands build a request from argv and pretty-print the
    response; the serve loop decodes requests from JSON lines and
    encodes responses back — both call this module, so the CLI and the
    daemon are provably the same evaluation (the test suite asserts
    output equality request by request).

    {2 The environment}

    A long-running service amortizes two things across requests:

    {ul
    {- the {e shape cache} — one {!Pipeline.Pipesem.compile} per
       machine shape (machine x forwarding mode x network
       implementation); later requests for the same shape but a
       different program reuse the plan through
       {!Pipeline.Pipesem.rebind};}
    {- the {e verdict cache} — a content-addressed {!Cache} of
       finished payloads, keyed by machine shape + program image +
       request kind, so a repeated question is answered without
       evaluating anything.  Campaign requests are never cached: their
       timed-out classification depends on wall-clock budgets.}}

    Without an [env] (the one-shot CLI) both caches are skipped.

    Thread safety: an {!env} may be shared by concurrent [handle]
    calls (both caches take internal locks); the serve loop calls
    [handle] from {!Exec.Pool} workers. *)

type selection = {
  sim : Workload.Sim.t;
  reference : Machine.Seqsem.trace option;
  disasm : (int -> string option) option;
}
(** A selected machine: the compiled simulation handle, the sequential
    reference trace (DLX machines) and the disassembler for failure
    evidence. *)

type env

val create_env : ?capacity:int -> ?metrics:Obs.Metrics.registry -> unit -> env
(** [capacity] bounds the verdict cache (default 256 entries). *)

val verdicts : env -> Cache.t
(** The environment's verdict cache (for observability and tests). *)

exception Invalid_request of string
(** A semantically invalid request — unknown kernel, unparsable
    assembly file, a [bmc] campaign on a non-toy3 machine.  [handle]
    maps it to a [Usage] error response; the CLI's legacy subcommands
    map it to exit code 2. *)

val select : ?env:env -> Request.spec -> selection
(** Resolve a request's machine selection: load the kernel or assembly
    file, build the reference trace, transform, and compile (or rebind
    a cached same-shape plan when [env] is given).

    @raise Invalid_request on unknown machines/kernels or parse
    errors. *)

val handle :
  ?env:env ->
  ?pool:Exec.Pool.t ->
  ?cancel:Exec.Cancel.token ->
  ?cache_only:bool ->
  ?checkpoint:string ->
  ?resume:bool ->
  Request.t ->
  Response.t
(** Evaluate one request.  Never raises: usage errors become [Usage]
    responses, {!Exec.Cancel.Cancelled} becomes a [Timeout] error on a
    deadline trip and a [Cancelled] error on an explicit one (the
    token's {!Exec.Cancel.reason} decides — cooperative cancellation
    is a typed result, not an escape), and engine exceptions become
    [Internal] errors.  [cancel] is polled by the simulators and
    checkers; [pool] fans out the obligation suite and campaign
    mutants; [checkpoint]/[resume] are the campaign's operational
    knobs ({!Fault.Campaign.run}) — per the {!Request} contract they
    stay with the caller, not on the wire.

    With [cache_only] (the serve loop's degraded mode) a cache miss is
    answered [Overloaded] instead of evaluated. *)

val warm : env:env -> Request.t -> Response.payload -> unit
(** Install a journaled payload into the verdict cache under the key
    the ordinary path would compute for this request.  Campaigns (not
    cacheable) and requests whose selection no longer resolves are
    skipped silently — warming is an optimization, never a correctness
    dependency. *)
