exception Invalid_request of string

type selection = {
  sim : Workload.Sim.t;
  reference : Machine.Seqsem.trace option;
  disasm : (int -> string option) option;
}

type env = {
  shapes : (string, Pipeline.Pipesem.compiled) Hashtbl.t;
  shapes_mutex : Mutex.t;
  env_verdicts : Cache.t;
}

let create_env ?capacity ?metrics () =
  {
    shapes = Hashtbl.create 8;
    shapes_mutex = Mutex.create ();
    env_verdicts = Cache.create ?capacity ?metrics ();
  }

let verdicts env = env.env_verdicts

let invalid fmt = Format.kasprintf (fun msg -> raise (Invalid_request msg)) fmt

(* ------------------------------------------------------------------ *)
(* Machine selection (the CLI's former [select], verbatim semantics)  *)
(* ------------------------------------------------------------------ *)

let kernels () =
  List.map
    (fun (p : Dlx.Progs.t) -> (p.Dlx.Progs.prog_name, p))
    (Dlx.Progs.all_kernels @ [ Dlx.Progs.overflow_trap ])

let unknown ~what ~name ~available =
  invalid "unknown %s %s; available: %s" what name
    (String.concat ", " available)

(* Exact kernel name, or a unique prefix of one ("fib" -> "fib_10"). *)
let find_kernel name =
  let ks = kernels () in
  match List.assoc_opt name ks with
  | Some p -> p
  | None -> (
    match
      List.filter (fun (n, _) -> String.starts_with ~prefix:name n) ks
    with
    | [ (_, p) ] -> p
    | _ -> unknown ~what:"kernel" ~name ~available:(List.map fst ks))

let options_of_spec (spec : Request.spec) =
  {
    Pipeline.Fwd_spec.mode =
      (if spec.Request.interlock_only then Pipeline.Fwd_spec.Interlock_only
       else Pipeline.Fwd_spec.Full);
    impl = spec.Request.impl;
  }

let shape_key (spec : Request.spec) =
  Printf.sprintf "%s/%b/%s"
    (Machine_spec.to_string spec.Request.machine)
    spec.Request.interlock_only
    (match spec.Request.impl with
    | Hw.Circuits.Chain -> "chain"
    | Hw.Circuits.Tree -> "tree"
    | Hw.Circuits.Bus -> "bus")

(* One compile per machine shape: a cached plan is rebound to the
   request's transform (same shape, different program image).  The
   mutex is held across the compile — shapes are few and a compile is
   milliseconds, so serializing the occasional miss is cheaper than
   racing duplicate compiles.  A rebind rejection (the shape drifted,
   e.g. an IMEM sized by a longer program) falls back to a fresh
   compile that replaces the entry. *)
let shared_compiled env spec tr =
  let k = shape_key spec in
  Mutex.lock env.shapes_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock env.shapes_mutex)
    (fun () ->
      match Hashtbl.find_opt env.shapes k with
      | Some c -> (
        match Pipeline.Pipesem.rebind c tr with
        | c' -> c'
        | exception Invalid_argument _ ->
          let c' = Pipeline.Pipesem.compile tr in
          Hashtbl.replace env.shapes k c';
          c')
      | None ->
        let c = Pipeline.Pipesem.compile tr in
        Hashtbl.replace env.shapes k c;
        c)

let select ?env (spec : Request.spec) =
  let options = options_of_spec spec in
  let selection ?reference ?disasm ~instructions tr =
    let compiled = Option.map (fun e -> shared_compiled e spec tr) env in
    {
      sim = Workload.Sim.make ?compiled ?reference ~instructions tr;
      reference;
      disasm;
    }
  in
  let dlx variant =
    let p =
      match (spec.Request.program_file, spec.Request.kernel) with
      | Some path, _ -> (
        match Dlx.Asm_parser.parse_file path with
        | items ->
          (* The parser's "halt" already expanded to the idiom; strip it
             so Progs.make (which appends its own) measures the dynamic
             count correctly. *)
          let body =
            let rec drop_halt = function
              | [] -> []
              | Dlx.Asm.Label "$halt" :: _ -> []
              | item :: rest -> item :: drop_halt rest
            in
            drop_halt items
          in
          let config =
            match variant with
            | Dlx.Seq_dlx.With_interrupts { sisr } ->
              { Dlx.Refmodel.with_interrupts = true; sisr }
            | Dlx.Seq_dlx.Base | Dlx.Seq_dlx.Branch_predict ->
              Dlx.Refmodel.default_config
          in
          Dlx.Progs.make ~config (Filename.basename path) body
        | exception Dlx.Asm_parser.Parse_error { line; message } ->
          invalid "%s:%d: %s" path line message)
      | None, None -> Dlx.Progs.fib 10
      | None, Some name -> find_kernel name
    in
    let program = Dlx.Progs.program p in
    let n = p.Dlx.Progs.dyn_instructions in
    let reference =
      Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data variant ~program
        ~instructions:n
    in
    selection ~reference
      ~disasm:(Dlx.Seq_dlx.disasm ~reference ~program)
      ~instructions:n
      (Dlx.Seq_dlx.transform ~options ~data:p.Dlx.Progs.data variant ~program)
  in
  let dlx6 () =
    (* The DLX with a two-stage memory, derived mechanically by
       splitting EX/MEM (Machine.Retime). *)
    let p =
      match spec.Request.kernel with
      | None -> Dlx.Progs.fib 10
      | Some name -> find_kernel name
    in
    let m =
      Machine.Retime.insert_passthrough
        (Dlx.Seq_dlx.machine ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
           ~program:(Dlx.Progs.program p))
        ~at:3
    in
    let reference =
      Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
        ~program:(Dlx.Progs.program p)
        ~instructions:p.Dlx.Progs.dyn_instructions
    in
    selection ~reference
      ~disasm:(Dlx.Seq_dlx.disasm ~reference ~program:(Dlx.Progs.program p))
      ~instructions:p.Dlx.Progs.dyn_instructions
      (Pipeline.Transform.run ~options
         ~hints:(Dlx.Seq_dlx.hints Dlx.Seq_dlx.Base)
         m)
  in
  match spec.Request.machine with
  | Machine_spec.Dlx6 -> dlx6 ()
  | Machine_spec.Toy3 ->
    selection
      ~instructions:(List.length Core.Toy.default_program)
      (Core.Toy.transform ~options ~program:Core.Toy.default_program ())
  | (Machine_spec.Dlx5 | Machine_spec.Dlx5_intr | Machine_spec.Dlx5_bp) as m ->
    dlx (Option.get (Machine_spec.variant m))

(* ------------------------------------------------------------------ *)
(* Evaluation                                                         *)
(* ------------------------------------------------------------------ *)

let sel_tr s = Workload.Sim.transform s.sim
let sel_instructions s = Workload.Sim.instructions s.sim

(* Render through a buffer formatter so responses carry exactly the
   bytes the CLI used to [Format.printf]. *)
let render f =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let run_verification ?pool ?cancel s =
  match
    Core.verify_result ?reference:s.reference ?pool ?cancel
      ~max_instructions:(sel_instructions s)
      ~compiled:(Workload.Sim.compiled s.sim) ?disasm:s.disasm (sel_tr s)
  with
  | Ok v -> v
  | Error { Core.phase; message } ->
    raise (Failure (Printf.sprintf "%s: %s" phase message))

let eval_verify ?pool ?cancel s =
  let v = run_verification ?pool ?cancel s in
  let cov =
    Pipeline.Coverage.measure ~stop_after:(sel_instructions s) (sel_tr s)
  in
  let holes = Pipeline.Coverage.holes cov in
  let verified = Core.verified v in
  let text =
    render (fun fmt ->
        Format.fprintf fmt "%a" Proof_engine.Consistency.pp_report
          v.Core.consistency;
        Format.fprintf fmt "%a" Proof_engine.Liveness.pp_report v.Core.liveness;
        Format.fprintf fmt "%a" Pipeline.Coverage.pp cov;
        List.iter (Format.fprintf fmt "  coverage hole: %s@.") holes;
        Format.fprintf fmt "obligations:@.%a" Proof_engine.Obligation.pp
          v.Core.obligations;
        if verified then Format.fprintf fmt "VERIFIED@."
        else Format.fprintf fmt "VERIFICATION FAILED@.")
  in
  let summary =
    {
      Response.v_verified = verified;
      v_violations =
        List.length v.Core.consistency.Proof_engine.Consistency.violations;
      v_edge_checks = v.Core.consistency.Proof_engine.Consistency.edge_checks;
      v_liveness_ok = Proof_engine.Liveness.ok v.Core.liveness;
      v_max_gap = v.Core.liveness.Proof_engine.Liveness.max_gap;
      v_obligations = List.length v.Core.obligations;
      v_obligations_failed =
        List.filter_map
          (fun (o : Proof_engine.Obligation.obligation) ->
            match o.Proof_engine.Obligation.ob_status with
            | Proof_engine.Obligation.Failed _ ->
              Some o.Proof_engine.Obligation.ob_id
            | Proof_engine.Obligation.Pending
            | Proof_engine.Obligation.Discharged _ ->
              None)
          v.Core.obligations;
      v_coverage_holes = holes;
    }
  in
  Response.Verdict { summary; text }

let eval_proof ?pool ?cancel s =
  let v = run_verification ?pool ?cancel s in
  Response.Proof_text
    { verified = Core.verified v; text = Core.proof_script (sel_tr s) v }

let eval_transform ~verilog s =
  let tr = sel_tr s in
  Response.Transformed
    {
      summary =
        render (fun fmt ->
            Format.fprintf fmt "%a@." Machine.Spec.pp_summary
              tr.Pipeline.Transform.base);
      inventory =
        render (fun fmt ->
            Format.fprintf fmt "%a" Pipeline.Report.pp_inventory tr);
      verilog = (if verilog then Some (Core.verilog tr) else None);
    }

exception Check_failed of string

let eval_stats s =
  let result, summary = Workload.Sim.attribute s.sim in
  (match result.Pipeline.Pipesem.outcome with
  | Pipeline.Pipesem.Completed -> ()
  | Pipeline.Pipesem.Deadlocked -> raise (Check_failed "simulation deadlocked")
  | Pipeline.Pipesem.Out_of_cycles ->
    raise (Check_failed "simulation ran out of cycles"));
  let text =
    render (fun fmt ->
        Format.fprintf fmt "%a" Obs.Hazard.pp_summary summary;
        Format.fprintf fmt "%a" Obs.Hazard.pp_decomposition
          (Obs.Hazard.decompose summary))
  in
  Response.Stats_report { summary = Obs.Hazard.summary_to_json summary; text }

let eval_campaign ?pool ?checkpoint ?(resume = false) ~machine ~seed ~mutants
    ~transients ~hang ~timeout_s ~bmc s =
  let tr = sel_tr s in
  let all = Fault.Mutate.enumerate ~transients ~seed ~hang tr in
  let selected =
    match mutants with
    | None -> all
    | Some count ->
      if count < 1 then invalid "--mutants must be at least 1"
      else Fault.Mutate.sample ~seed ~count all
  in
  let bmc =
    if not bmc then None
    else if machine <> Machine_spec.Toy3 then
      invalid "--bmc is only available for toy3"
    else
      let alphabet =
        [
          Core.Toy.encode ~dst:1 ~src1:1 ~src2:2;
          Core.Toy.encode ~dst:2 ~src1:1 ~src2:1;
          Core.Toy.encode ~dst:1 ~src1:2 ~src2:2;
        ]
      in
      Some ((fun program -> Core.Toy.transform ~program ()), alphabet, 2)
  in
  let bmc_load program = Core.Toy.image ~program in
  let target =
    Fault.Campaign.make_target ?reference:s.reference
      ~instructions:(sel_instructions s) ?disasm:s.disasm ?bmc ~bmc_load tr
  in
  let outcomes, summary =
    Fault.Campaign.run ?pool ~timeout_s ?checkpoint ~resume target selected
  in
  let text =
    render (fun fmt ->
        List.iter
          (fun o -> Format.fprintf fmt "%a@." Fault.Campaign.pp_outcome o)
          outcomes;
        Format.fprintf fmt "%a@." Fault.Campaign.pp_summary summary)
  in
  Response.Campaign_report
    { summary; outcomes = Fault.Campaign.to_json outcomes; text }

let eval_sweep ?pool ~(spec : Request.spec) ~axis ~points ~length ~seed
    ~lanes () =
  let variant =
    match Machine_spec.variant spec.Request.machine with
    | Some v -> v
    | None ->
      invalid "sweep requires a five-stage DLX machine (%s)"
        (String.concat ", "
           (List.filter_map
              (fun m ->
                Option.map
                  (fun _ -> Machine_spec.to_string m)
                  (Machine_spec.variant m))
              Machine_spec.all))
  in
  let config =
    { Workload.Sweep.default with Workload.Sweep.variant;
      options = options_of_spec spec }
  in
  let rows =
    match (axis : Request.sweep_axis) with
    | Request.Dependency ->
      Workload.Sweep.dependency_sweep ~config ?pool ~lanes ~biases:points
        ~length ~seed ()
    | Request.Branch ->
      Workload.Sweep.branch_sweep ~config ?pool ~lanes ~taken_fracs:points
        ~length ~seed ()
  in
  let text =
    render (fun fmt ->
        Format.fprintf fmt "%a" Workload.Stats.pp_table (List.map snd rows))
  in
  Response.Sweep_rows { rows; text }

(* The verdict-cache key: machine shape + program image (both inside
   the transform digest) + request kind and its parameters.  Campaigns
   are not cached — their timed_out classification depends on
   wall-clock budgets, so a replay is not guaranteed bit-identical. *)
let cache_extra ~instructions (req : Request.t) =
  let f x = Printf.sprintf "%h" x in
  let common = [ Printf.sprintf "instructions=%d" instructions ] in
  match req.Request.kind with
  | Request.Transform { verilog } ->
    Some (common @ [ Printf.sprintf "verilog=%b" verilog ])
  | Request.Verify | Request.Proof | Request.Stats -> Some common
  | Request.Campaign _ -> None
  | Request.Sweep { axis; points; length; seed; lanes = _ } ->
    (* [lanes] is an execution strategy, not a semantic parameter: the
       rows are bit-identical either way, so both modes share the
       cached verdict. *)
    Some
      (common
      @ [
          (match axis with
          | Request.Dependency -> "axis=dependency"
          | Request.Branch -> "axis=branch");
          "points=" ^ String.concat "," (List.map f points);
          Printf.sprintf "length=%d" length;
          Printf.sprintf "seed=%d" seed;
        ])

let handle ?env ?pool ?cancel ?(cache_only = false) ?checkpoint ?resume
    (req : Request.t) =
  Obs.Counters.bump Obs.Counters.Serve_requests;
  let id = req.Request.id in
  let respond ?cached payload = Response.ok ?id ?cached payload in
  try
    let s = select ?env req.Request.spec in
    let cache_key =
      match (env, cache_extra ~instructions:(sel_instructions s) req) with
      | Some env, Some extra ->
        Some
          ( env.env_verdicts,
            Cache.key ~kind:(Request.kind_name req) ~extra (sel_tr s) )
      | _ -> None
    in
    let cached_payload =
      Option.bind cache_key (fun (cache, k) -> Cache.find cache k)
    in
    match cached_payload with
    | Some payload -> respond ~cached:true payload
    | None when cache_only ->
      (* Degraded mode: only cached answers are served; fresh
         evaluation is refused so the queue can drain. *)
      Response.fail ?id Response.Overloaded
        "server is in cache-only degraded mode and this verdict is not cached"
    | None ->
      let payload =
        match req.Request.kind with
        | Request.Transform { verilog } -> eval_transform ~verilog s
        | Request.Verify -> eval_verify ?pool ?cancel s
        | Request.Proof -> eval_proof ?pool ?cancel s
        | Request.Stats -> eval_stats s
        | Request.Campaign { seed; mutants; transients; hang; timeout_s; bmc }
          ->
          eval_campaign ?pool ?checkpoint ?resume
            ~machine:req.Request.spec.Request.machine ~seed ~mutants
            ~transients ~hang ~timeout_s ~bmc s
        | Request.Sweep { axis; points; length; seed; lanes } ->
          eval_sweep ?pool ~spec:req.Request.spec ~axis ~points ~length ~seed
            ~lanes ()
      in
      Option.iter (fun (cache, k) -> Cache.add cache k payload) cache_key;
      respond payload
  with
  | Invalid_request msg -> Response.fail ?id Response.Usage msg
  | Check_failed msg -> Response.fail ?id Response.Failed_check msg
  | Exec.Cancel.Cancelled -> (
    (* The token's latched reason decides the response class; a
       deadline trip is a timeout, an explicit trip (shutdown, client
       abandonment) is a cancellation.  No token in scope can only
       mean some descendant deadline fired — a timeout. *)
    let elapsed =
      match cancel with
      | Some c -> Printf.sprintf " after %.2fs" (Exec.Cancel.elapsed_s c)
      | None -> ""
    in
    match Option.bind cancel Exec.Cancel.reason with
    | Some Exec.Cancel.Explicit ->
      Response.fail ?id Response.Cancelled ("request cancelled" ^ elapsed)
    | Some Exec.Cancel.Deadline | None ->
      Response.fail ?id Response.Timeout ("request timed out" ^ elapsed))
  | Pipeline.Transform.Transform_error msg ->
    Response.fail ?id ~phase:"transform" Response.Internal msg
  | Hw.Expr.Ill_typed msg ->
    Response.fail ?id ~phase:"expr" Response.Internal msg
  | Sys_error msg | Failure msg -> Response.fail ?id Response.Internal msg

(* Warm-start the verdict cache from a journaled (request, payload)
   pair: recompute the content address the ordinary path would use and
   install the payload under it.  Campaigns are never cached, and any
   failure to rebuild the key (the kernel disappeared, the assembly
   file moved) just skips the warm — replay correctness does not
   depend on it, only cache hit rates do. *)
let warm ~env (req : Request.t) payload =
  match req.Request.kind with
  | Request.Campaign _ -> ()
  | _ -> (
    try
      let s = select ~env req.Request.spec in
      match cache_extra ~instructions:(sel_instructions s) req with
      | Some extra ->
        Cache.add env.env_verdicts
          (Cache.key ~kind:(Request.kind_name req) ~extra (sel_tr s))
          payload
      | None -> ()
    with _ -> ())
