(* A fixed-size domain pool over one shared work queue.

   The locking discipline: every field except the queue's task
   closures is read and written under [mutex].  Task closures run
   outside the lock.  Result cells written by a worker become visible
   to the submitting thread through the mutex acquire/release pair
   around the batch counter — the counter reaching zero happens-after
   every result write.

   The submitting thread of [map] does not merely wait: while its
   batch is unfinished it pops and runs queued tasks (its own or any
   other batch's).  This makes [map] re-entrant — a task calling [map]
   on the same pool always makes progress — and lets a size-[n] pool
   deliver [n]-way parallelism with only [n - 1] spawned domains. *)

type domain_stats = { worker : int; tasks : int; busy_s : float }

type t = {
  pool_size : int;
  mutex : Mutex.t;
  work : Condition.t;
      (* signalled on: new batch, batch completion, shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t array;
  w_tasks : int array; (* slot 0 = submitting thread, 1.. = workers *)
  w_busy : float array;
  w_started : float array; (* 0.0 = idle, else task start timestamp *)
  mutable dead_slots : int list; (* killed workers awaiting [heal] *)
  chaos : Chaos.t option;
}

let default_size () = Domain.recommended_domain_count ()

(* Run one task outside the lock, charging wall time to [slot].  The
   start timestamp is published under the mutex so the watchdog
   ([wedged]) can spot a slot that has been inside one task too long. *)
let run_task t slot task =
  let t0 = Unix.gettimeofday () in
  Mutex.lock t.mutex;
  t.w_started.(slot) <- t0;
  Mutex.unlock t.mutex;
  task ();
  let dt = Unix.gettimeofday () -. t0 in
  Obs.Counters.bump Obs.Counters.Pool_tasks;
  Obs.Counters.bump
    (if slot = 0 then Obs.Counters.Pool_helped else Obs.Counters.Pool_stolen);
  Mutex.lock t.mutex;
  t.w_started.(slot) <- 0.0;
  t.w_tasks.(slot) <- t.w_tasks.(slot) + 1;
  t.w_busy.(slot) <- t.w_busy.(slot) +. dt;
  Mutex.unlock t.mutex

let worker_loop t slot =
  let rec next () =
    (* invariant: mutex held here *)
    if not (Queue.is_empty t.queue) then begin
      let task = Queue.pop t.queue in
      match
        match t.chaos with Some c -> Chaos.apply_worker c | None -> ()
      with
      | () ->
        Mutex.unlock t.mutex;
        run_task t slot task;
        Mutex.lock t.mutex;
        next ()
      | exception Chaos.Injected_kill _ ->
        (* This domain "dies" before running its claimed task: the task
           goes back on the queue losslessly (result cells are
           index-addressed, so requeue position is irrelevant), the
           corpse is recorded for [heal], and the domain exits.  The
           batch still completes without healing because the submitter
           helps drain. *)
        Queue.add task t.queue;
        t.dead_slots <- slot :: t.dead_slots;
        Condition.broadcast t.work;
        Mutex.unlock t.mutex
    end
    else if t.closed then Mutex.unlock t.mutex
    else begin
      Condition.wait t.work t.mutex;
      next ()
    end
  in
  Mutex.lock t.mutex;
  next ()

let create ?size ?chaos () =
  let pool_size = match size with None -> default_size () | Some n -> n in
  if pool_size < 1 then
    invalid_arg "Exec.Pool.create: size must be at least 1";
  let t =
    {
      pool_size;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      closed = false;
      domains = [||];
      w_tasks = Array.make pool_size 0;
      w_busy = Array.make pool_size 0.0;
      w_started = Array.make pool_size 0.0;
      dead_slots = [];
      chaos;
    }
  in
  t.domains <-
    Array.init (pool_size - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let size t = t.pool_size

(* Respawn every recorded dead worker.  Draining [dead_slots] under the
   mutex makes each corpse the responsibility of exactly one healer, so
   the joins and the [domains] writes below race with nobody. *)
let heal t =
  Mutex.lock t.mutex;
  let dead = t.dead_slots in
  t.dead_slots <- [];
  let closed = t.closed in
  Mutex.unlock t.mutex;
  if closed then 0
  else begin
    List.iter
      (fun slot ->
        Domain.join t.domains.(slot - 1);
        t.domains.(slot - 1) <- Domain.spawn (fun () -> worker_loop t slot);
        Obs.Counters.bump Obs.Counters.Pool_restarts)
      dead;
    List.length dead
  end

let dead_workers t =
  Mutex.lock t.mutex;
  let n = List.length t.dead_slots in
  Mutex.unlock t.mutex;
  n

let wedged ?(budget_s = 1.0) t =
  let now = Unix.gettimeofday () in
  Mutex.lock t.mutex;
  let r =
    List.filter
      (fun i -> t.w_started.(i) > 0.0 && now -. t.w_started.(i) > budget_s)
      (List.init t.pool_size Fun.id)
  in
  Mutex.unlock t.mutex;
  r

let shutdown t =
  Mutex.lock t.mutex;
  if t.closed then Mutex.unlock t.mutex
  else begin
    t.closed <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

let with_pool ?size ?chaos f =
  let t = create ?size ?chaos () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f xs =
  if t.pool_size <= 1 then begin
    (* Zero-domain fallback: inline, still accounted in the stats. *)
    let t0 = Unix.gettimeofday () in
    let r = List.map f xs in
    let n = List.length xs in
    Obs.Counters.add Obs.Counters.Pool_tasks n;
    Obs.Counters.add Obs.Counters.Pool_inline n;
    t.w_tasks.(0) <- t.w_tasks.(0) + n;
    t.w_busy.(0) <- t.w_busy.(0) +. (Unix.gettimeofday () -. t0);
    r
  end
  else
    match xs with
    | [] -> []
    | xs ->
      (* Self-healing: respawn any workers that died since the last
         batch, so injected kills degrade parallelism only briefly.
         Correctness never depends on this — the submitter helps. *)
      if t.chaos <> None then ignore (heal t : int);
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      let remaining = ref n in
      let first_error = ref None in
      let task i () =
        (match f arr.(i) with
        | r -> results.(i) <- Some r
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock t.mutex;
          if !first_error = None then first_error := Some (e, bt);
          Mutex.unlock t.mutex);
        Mutex.lock t.mutex;
        decr remaining;
        if !remaining = 0 then Condition.broadcast t.work;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      if t.closed then begin
        Mutex.unlock t.mutex;
        invalid_arg "Exec.Pool.map: pool has been shut down"
      end;
      for i = 0 to n - 1 do
        Queue.add (task i) t.queue
      done;
      Obs.Counters.record_max Obs.Counters.Pool_queue_hwm
        (Queue.length t.queue);
      Condition.broadcast t.work;
      (* Help drain the queue until this batch is done. *)
      let rec wait_drain () =
        (* invariant: mutex held here *)
        if !remaining = 0 then Mutex.unlock t.mutex
        else if not (Queue.is_empty t.queue) then begin
          let task = Queue.pop t.queue in
          Mutex.unlock t.mutex;
          run_task t 0 task;
          Mutex.lock t.mutex;
          wait_drain ()
        end
        else begin
          Condition.wait t.work t.mutex;
          wait_drain ()
        end
      in
      wait_drain ();
      if t.chaos <> None then ignore (heal t : int);
      (match !first_error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list
        (Array.map
           (function Some r -> r | None -> assert false)
           results)

let map_reduce t ~map:f ~fold ~init xs = List.fold_left fold init (map t f xs)

type 'a task_result =
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace
  | Timed_out of float
  | Cancelled of float

(* [map] with per-task fault isolation: each task gets its own
   cancellation token (tripping after [timeout_s], when given) and its
   exception — including {!Cancel.Cancelled} from the timeout — is
   captured in the result instead of poisoning the batch.  The wrapper
   task never raises, so the plain [map] machinery's first-error path
   stays dormant and every element yields a verdict.

   A {!Cancel.Cancelled} escape is classified from the token's latched
   {!Cancel.reason}: a deadline trip is [Timed_out], an explicit trip
   (batch cancellation, shutdown) is [Cancelled].  The pool's chaos
   injector, when armed, consults its task stream once per attempt
   right here — inside the isolation wrapper — so an injected crash
   surfaces as [Failed] and an injected wedge is still bounded by the
   task's own deadline. *)
let map_result ?timeout_s ?cancel t f xs =
  map t
    (fun x ->
      let token =
        match cancel with
        | None -> Cancel.create ?timeout_s ()
        | Some parent -> Cancel.with_parent parent ?timeout_s ()
      in
      match
        (match t.chaos with
        | Some c -> Chaos.apply_task c ~cancel:token
        | None -> ());
        f ~cancel:token x
      with
      | r -> Done r
      | exception Cancel.Cancelled -> (
        let el = Cancel.elapsed_s token in
        match Cancel.reason token with
        | Some Cancel.Deadline -> Timed_out el
        | Some Cancel.Explicit | None -> Cancelled el)
      | exception e -> Failed (e, Printexc.get_raw_backtrace ()))
    xs

let stats t =
  Mutex.lock t.mutex;
  let r =
    List.init t.pool_size (fun i ->
        { worker = i; tasks = t.w_tasks.(i); busy_s = t.w_busy.(i) })
  in
  Mutex.unlock t.mutex;
  r

let reset_stats t =
  Mutex.lock t.mutex;
  Array.fill t.w_tasks 0 t.pool_size 0;
  Array.fill t.w_busy 0 t.pool_size 0.0;
  Mutex.unlock t.mutex

let map_opt pool f xs =
  match pool with None -> List.map f xs | Some p -> map p f xs

(* Contiguous, balanced shards: shard [i] of [k] holds elements
   [i*n/k, (i+1)*n/k).  Concatenating the shards in order restores the
   input order exactly, so a sharded map is bit-identical to [map]. *)
let shard ~shards xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let k = max 1 (min shards n) in
  List.init k (fun i ->
      let lo = i * n / k and hi = (i + 1) * n / k in
      Array.to_list (Array.sub arr lo (hi - lo)))

let map_sharded ?shards t f xs =
  match xs with
  | [] -> []
  | xs ->
    let k = match shards with Some k -> k | None -> t.pool_size in
    if t.pool_size <= 1 || k <= 1 then map t f xs
    else List.concat (map t (fun chunk -> List.map f chunk) (shard ~shards:k xs))

let map_opt_sharded ?shards pool f xs =
  match pool with
  | None -> List.map f xs
  | Some p -> map_sharded ?shards p f xs
