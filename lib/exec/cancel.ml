exception Cancelled

type token = {
  flag : bool Atomic.t;
  created : float;
  deadline : float option;  (* absolute, from [created] + timeout *)
  parent : token option;  (* tripping the parent trips this token *)
}

let create ?timeout_s () =
  let created = Unix.gettimeofday () in
  {
    flag = Atomic.make false;
    created;
    deadline = Option.map (fun t -> created +. t) timeout_s;
    parent = None;
  }

let with_parent parent ?timeout_s () =
  let created = Unix.gettimeofday () in
  {
    flag = Atomic.make false;
    created;
    deadline = Option.map (fun t -> created +. t) timeout_s;
    parent = Some parent;
  }

let never =
  { flag = Atomic.make false; created = 0.0; deadline = None; parent = None }

let cancel t = Atomic.set t.flag true

let rec cancelled t =
  Atomic.get t.flag
  || (match t.deadline with
     | None -> false
     | Some d ->
       if Unix.gettimeofday () > d then begin
         (* Latch, so later polls skip the clock read. *)
         Atomic.set t.flag true;
         true
       end
       else false)
  ||
  match t.parent with
  | None -> false
  | Some p ->
    if cancelled p then begin
      (* Latch, so later polls skip the parent chain. *)
      Atomic.set t.flag true;
      true
    end
    else false

let check t = if cancelled t then raise Cancelled

let elapsed_s t = Unix.gettimeofday () -. t.created
