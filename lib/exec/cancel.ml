exception Cancelled

type reason = Explicit | Deadline

(* The flag encodes the trip reason so callers can distinguish a
   deadline trip (report Timeout) from an explicit one (report
   Cancelled) without guessing from context: 0 = armed, 1 = explicit,
   2 = deadline.  A token latches the *first* reason and keeps it. *)
let armed = 0
let r_explicit = 1
let r_deadline = 2

type token = {
  flag : int Atomic.t;
  created : float;
  deadline : float option;  (* absolute, from [created] + timeout *)
  parent : token option;  (* tripping the parent trips this token *)
}

let create ?timeout_s () =
  let created = Unix.gettimeofday () in
  {
    flag = Atomic.make armed;
    created;
    deadline = Option.map (fun t -> created +. t) timeout_s;
    parent = None;
  }

let with_parent parent ?timeout_s () =
  let created = Unix.gettimeofday () in
  {
    flag = Atomic.make armed;
    created;
    deadline = Option.map (fun t -> created +. t) timeout_s;
    parent = Some parent;
  }

let never =
  { flag = Atomic.make armed; created = 0.0; deadline = None; parent = None }

(* First reason wins: an already-tripped token keeps its reason. *)
let latch t r = ignore (Atomic.compare_and_set t.flag armed r : bool)

let cancel t = latch t r_explicit

let rec cancelled t =
  Atomic.get t.flag <> armed
  || (match t.deadline with
     | None -> false
     | Some d ->
       if Unix.gettimeofday () > d then begin
         (* Latch, so later polls skip the clock read. *)
         latch t r_deadline;
         true
       end
       else false)
  ||
  match t.parent with
  | None -> false
  | Some p ->
    if cancelled p then begin
      (* Latch the parent's reason, so later polls skip the chain and
         the child reports why the whole tree went down. *)
      latch t (Atomic.get p.flag);
      true
    end
    else false

let reason t =
  if cancelled t then
    match Atomic.get t.flag with
    | 2 -> Some Deadline
    | _ -> Some Explicit
  else None

let check t = if cancelled t then raise Cancelled

let elapsed_s t = Unix.gettimeofday () -. t.created
