(** Seeded, deterministic fault injection for the execution engine.

    PR 4 pointed seeded fault campaigns at the {e verified machines};
    this module points the same discipline at the {e engine and
    service}: every robustness path in {!Pool} and the serve loop can
    be exercised on demand, reproducibly, from a single seed.

    Determinism contract: each consultation of the injector consumes
    the next position in a pure (seed, index) decision stream, so the
    {e multiset} of injected faults is a function of the seed and the
    number of consultations — independent of how tasks race onto
    domains.  Per-fault budgets cap the total injections of a kind,
    turning rates into exact counts ("crash the first 2 draws that
    land in the crash band, then nothing"), which is what lets the
    bench gate SERVE.* robustness counters exactly and lets admission
    control guarantee that a bounded retry outlasts a bounded crash
    budget. *)

type config = {
  seed : int;
  crash : float;  (** probability a task raises {!Injected_crash} *)
  crash_budget : int option;
  delay : float;  (** probability of an injected sleep before a task *)
  delay_s : float;  (** duration of that sleep *)
  delay_budget : int option;
  wedge : float;  (** probability of a simulated wedged domain *)
  wedge_s : float;  (** busy-spin length (the cancel token still polls) *)
  wedge_budget : int option;
  alloc : float;  (** probability of an allocation-pressure spike *)
  alloc_words : int;  (** words allocated (then dropped) per spike *)
  alloc_budget : int option;
  kill : float;  (** probability a worker domain dies ({!Injected_kill}) *)
  kill_budget : int option;
}

val default_config : config
(** Seed 0, all probabilities 0, sane durations (2ms delay, 20ms
    wedge, 256k-word alloc spike), no budgets. *)

val config_of_string : string -> (config, string) result
(** Parse the [--chaos] spec [SEED[,key=value,...]].  Keys: [crash],
    [delay], [delay_ms], [wedge], [wedge_ms], [alloc], [alloc_kwords],
    [kill] and the corresponding [*_budget]s.  Probabilities are
    per-draw in \[0,1\]; the crash/delay/wedge/alloc bands share one
    uniform draw (cumulative thresholds), so their probabilities
    should sum to at most 1. *)

exception Injected_crash of int
(** A forced task exception; the payload is the draw index.  Escapes a
    task like any bug would — {!Pool.map_result} reports the task
    [Failed], and the serve layer's bounded retry treats it as
    transient. *)

exception Injected_kill of int
(** A simulated killed worker domain (the payload is the draw index).
    Raised {e before} the victim runs its claimed task, so the task
    can be requeued losslessly; the worker records itself dead and
    exits, and {!Pool.heal} respawns it. *)

type t

val create : config -> t
(** A fresh injector: stream positions and budgets start at zero. *)

val injected : t -> int
(** Total faults injected so far (all kinds). *)

val apply_task : t -> cancel:Cancel.token -> unit
(** Consult the task-level stream once; called by {!Pool.map_result}
    immediately before each task attempt.  May sleep (delay), spin
    polling [cancel] (wedge — a deadline or shutdown still cuts it
    short), allocate garbage (alloc), or raise {!Injected_crash}. *)

val apply_worker : t -> unit
(** Consult the worker-level kill stream once; called by the pool as a
    worker claims a task.  Raises {!Injected_kill} when the draw says
    this domain dies.  The kill stream is salted separately from the
    task stream so enabling kills does not shift task-fault
    decisions. *)
