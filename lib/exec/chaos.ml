(* Seeded fault injection for the execution engine itself.

   Decisions come from a pure function of (seed, draw index): the
   draw stream is fixed by the seed, so a run at -j 1 is fully
   reproducible and at any -j the *multiset* of injected faults is —
   each consultation consumes the next stream position regardless of
   which domain gets there first.  Per-fault budgets turn rates into
   exact counts ("crash the first 2 tasks, then nothing"), which is
   what the bench's gated SERVE.counters section and the retry
   guarantees rely on: a crash budget no larger than the admission
   retry budget means a retried task always eventually succeeds. *)

type config = {
  seed : int;
  crash : float;  (* probability of a forced task exception *)
  crash_budget : int option;
  delay : float;  (* probability of an injected sleep *)
  delay_s : float;  (* injected sleep duration *)
  delay_budget : int option;
  wedge : float;  (* probability of a simulated wedged domain *)
  wedge_s : float;  (* how long the wedge spins (cancel still polls) *)
  wedge_budget : int option;
  alloc : float;  (* probability of an allocation-pressure spike *)
  alloc_words : int;  (* words allocated (and dropped) per spike *)
  alloc_budget : int option;
  kill : float;  (* probability of a simulated killed worker domain *)
  kill_budget : int option;
}

let default_config =
  {
    seed = 0;
    crash = 0.0;
    crash_budget = None;
    delay = 0.0;
    delay_s = 0.002;
    delay_budget = None;
    wedge = 0.0;
    wedge_s = 0.02;
    wedge_budget = None;
    alloc = 0.0;
    alloc_words = 1 lsl 18;
    alloc_budget = None;
    kill = 0.0;
    kill_budget = None;
  }

type fault = Crash | Delay | Wedge | Alloc

exception Injected_crash of int
exception Injected_kill of int

type t = {
  config : config;
  draws : int Atomic.t;  (* task-level stream position *)
  kill_draws : int Atomic.t;  (* worker-level stream (own salt) *)
  spent_crash : int Atomic.t;
  spent_delay : int Atomic.t;
  spent_wedge : int Atomic.t;
  spent_alloc : int Atomic.t;
  spent_kill : int Atomic.t;
  injected : int Atomic.t;
}

let create config =
  {
    config;
    draws = Atomic.make 0;
    kill_draws = Atomic.make 0;
    spent_crash = Atomic.make 0;
    spent_delay = Atomic.make 0;
    spent_wedge = Atomic.make 0;
    spent_alloc = Atomic.make 0;
    spent_kill = Atomic.make 0;
    injected = Atomic.make 0;
  }

let injected t = Atomic.get t.injected

(* splitmix-style avalanche on the native int, good enough to turn
   (seed, index, salt) into an i.i.d.-looking uniform draw. *)
let mix seed index salt =
  let h = ref (seed lxor (salt * 0x9e3779b9) lxor (index * 0x85ebca6b)) in
  h := !h lxor (!h lsr 16);
  h := !h * 0x21f0aaad land max_int;
  h := !h lxor (!h lsr 15);
  h := !h * 0x735a2d97 land max_int;
  h := !h lxor (!h lsr 15);
  !h land 0x3FFFFFFF

let unit_float seed index salt =
  float_of_int (mix seed index salt) /. float_of_int 0x40000000

(* Claim one unit of a budget.  [None] = unlimited. *)
let within budget spent =
  match budget with
  | None ->
    Atomic.incr spent;
    true
  | Some b ->
    let rec claim () =
      let n = Atomic.get spent in
      n < b
      && (Atomic.compare_and_set spent n (n + 1) || claim ())
    in
    claim ()

(* One task-level decision: thresholds are cumulative over the same
   uniform draw, so at most one fault fires per consultation. *)
let decide t =
  let c = t.config in
  let k = Atomic.fetch_and_add t.draws 1 in
  let u = unit_float c.seed k 1 in
  let pick lo hi budget spent =
    u >= lo && u < hi && within budget spent
  in
  let a = c.crash in
  let b = a +. c.delay in
  let d = b +. c.wedge in
  let e = d +. c.alloc in
  if pick 0.0 a c.crash_budget t.spent_crash then Some (Crash, k)
  else if pick a b c.delay_budget t.spent_delay then Some (Delay, k)
  else if pick b d c.wedge_budget t.spent_wedge then Some (Wedge, k)
  else if pick d e c.alloc_budget t.spent_alloc then Some (Alloc, k)
  else None

(* Busy-spin [wedge_s] seconds, polling the cancellation token the way
   a wedged-but-instrumented domain would: the per-task deadline (or a
   shutdown) still cuts it short, and without one the wedge clears on
   its own — a *temporarily* unresponsive domain, never a hung batch. *)
let spin_wedge ~cancel ~until =
  let rec spin () =
    Cancel.check cancel;
    if Unix.gettimeofday () < until then begin
      ignore (Sys.opaque_identity (ref 0));
      spin ()
    end
  in
  spin ()

let apply_task t ~cancel =
  match decide t with
  | None -> ()
  | Some (fault, k) -> (
    Atomic.incr t.injected;
    match fault with
    | Crash -> raise (Injected_crash k)
    | Delay -> Unix.sleepf t.config.delay_s
    | Wedge ->
      spin_wedge ~cancel ~until:(Unix.gettimeofday () +. t.config.wedge_s)
    | Alloc ->
      (* An allocation-pressure spike: a short-lived major-heap block,
         immediately garbage. *)
      ignore (Sys.opaque_identity (Array.make t.config.alloc_words 0)))

let apply_worker t =
  let c = t.config in
  if c.kill > 0.0 then begin
    let k = Atomic.fetch_and_add t.kill_draws 1 in
    if unit_float c.seed k 2 < c.kill && within c.kill_budget t.spent_kill
    then begin
      Atomic.incr t.injected;
      raise (Injected_kill k)
    end
  end

(* ------------------------------------------------------------------ *)
(* The spec string: SEED[,key=value,...]                               *)
(* ------------------------------------------------------------------ *)

let config_of_string s =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let float_v k v =
    match float_of_string_opt v with
    | Some f when f >= 0.0 -> Ok f
    | _ -> err "chaos: %s wants a non-negative number, got %S" k v
  in
  let int_v k v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> Ok n
    | _ -> err "chaos: %s wants a non-negative integer, got %S" k v
  in
  match String.split_on_char ',' (String.trim s) with
  | [] | [ "" ] -> err "chaos: empty spec (want SEED[,key=value,...])"
  | seed_s :: fields ->
    let* seed =
      match int_of_string_opt (String.trim seed_s) with
      | Some n -> Ok n
      | None -> err "chaos: spec must start with a seed, got %S" seed_s
    in
    List.fold_left
      (fun acc field ->
        let* c = acc in
        match String.index_opt field '=' with
        | None -> err "chaos: expected key=value, got %S" field
        | Some i ->
          let k = String.trim (String.sub field 0 i) in
          let v =
            String.trim
              (String.sub field (i + 1) (String.length field - i - 1))
          in
          let f () = float_v k v in
          let n () = int_v k v in
          let b () = Result.map (fun n -> Some n) (int_v k v) in
          (match k with
          | "crash" -> Result.map (fun x -> { c with crash = x }) (f ())
          | "crash_budget" ->
            Result.map (fun x -> { c with crash_budget = x }) (b ())
          | "delay" -> Result.map (fun x -> { c with delay = x }) (f ())
          | "delay_ms" ->
            Result.map (fun x -> { c with delay_s = x /. 1000.0 }) (f ())
          | "delay_budget" ->
            Result.map (fun x -> { c with delay_budget = x }) (b ())
          | "wedge" -> Result.map (fun x -> { c with wedge = x }) (f ())
          | "wedge_ms" ->
            Result.map (fun x -> { c with wedge_s = x /. 1000.0 }) (f ())
          | "wedge_budget" ->
            Result.map (fun x -> { c with wedge_budget = x }) (b ())
          | "alloc" -> Result.map (fun x -> { c with alloc = x }) (f ())
          | "alloc_kwords" ->
            Result.map (fun x -> { c with alloc_words = x * 1024 }) (n ())
          | "alloc_budget" ->
            Result.map (fun x -> { c with alloc_budget = x }) (b ())
          | "kill" -> Result.map (fun x -> { c with kill = x }) (f ())
          | "kill_budget" ->
            Result.map (fun x -> { c with kill_budget = x }) (b ())
          | _ -> err "chaos: unknown key %S" k))
      (Ok { default_config with seed })
      fields
