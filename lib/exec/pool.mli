(** A fixed-size OCaml 5 domain pool for embarrassingly parallel
    verification work: sweep points, proof-obligation discharge, BMC
    program enumeration.

    A pool of size [n] provides [n]-way parallelism: [n - 1] worker
    domains plus the submitting thread, which {e helps} drain the work
    queue while it waits for its batch.  Helping makes {!map}
    re-entrant — a task may itself call {!map} on the same pool (e.g.
    obligation discharge nested inside {!Core.verify}) without risk of
    deadlock, because every blocked caller executes queued tasks
    instead of sleeping on an idle queue.

    [size = 1] is the zero-domain fallback: no domains are spawned and
    {!map} runs inline, exactly [List.map].

    {2 Determinism contract}

    {!map} preserves input order and {!map_reduce} folds in input
    order, so results are bit-identical to the serial execution as
    long as the per-element function is pure (or touches only
    domain-local state).  The simulation stack satisfies this: a
    compiled plan ({!Hw.Plan.t}, {!Pipeline.Pipesem.compiled}) is
    immutable and may be shared across domains, while every run
    creates its own private {!Hw.Plan.instance} and machine state.

    {2 Exceptions}

    If any task raises, {!map} first drains the batch (every task
    still runs to completion), then re-raises the first-recorded
    exception with its original backtrace.  The pool itself survives:
    subsequent batches on the same pool work normally. *)

type t

val default_size : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?size:int -> ?chaos:Chaos.t -> unit -> t
(** [create ~size ()] spawns [size - 1] worker domains
    (default size: {!default_size}).  @raise Invalid_argument when
    [size < 1].

    With [chaos], the pool consults the injector on every worker task
    claim (kill stream) and inside every {!map_result} task (task
    stream): injected crashes surface as [Failed] results, injected
    kills exercise the requeue + {!heal} path.  Plain {!map} tasks are
    not crash-injected — only the fault-isolated path is. *)

val size : t -> int
(** The parallelism degree [n] the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  With a pool of size 1, runs
    inline.  @raise Invalid_argument on a pool that has been shut
    down. *)

val map_reduce :
  t -> map:('a -> 'b) -> fold:('acc -> 'b -> 'acc) -> init:'acc ->
  'a list -> 'acc
(** [map] in parallel, then a left fold over the results in input
    order (the merge is deterministic regardless of completion
    order). *)

(** {1 Fault-isolated map} *)

type 'a task_result =
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace
      (** the task raised; the batch was unaffected *)
  | Timed_out of float
      (** the task's token tripped on its {e deadline}
          ({!Cancel.reason} = [Deadline], e.g. past the [timeout_s]
          budget); payload is the task's elapsed wall-clock seconds *)
  | Cancelled of float
      (** the task's token was tripped {e explicitly}
          ({!Cancel.reason} = [Explicit] — batch cancellation via
          [?cancel], server shutdown); payload as for [Timed_out] *)

val map_result :
  ?timeout_s:float ->
  ?cancel:Cancel.token ->
  t ->
  (cancel:Cancel.token -> 'a -> 'b) ->
  'a list ->
  'b task_result list
(** Order-preserving parallel map with per-task fault isolation: every
    element yields a {!task_result}; a raising or timed-out task never
    aborts the batch or kills a worker domain.

    Cancellation is {e cooperative} ({!Cancel}): each task receives a
    fresh token whose deadline is [timeout_s] seconds after the task
    starts, and is expected to poll it ({!Cancel.check}) at safe
    points — the cycle simulators do.  A task that never polls cannot
    be interrupted (OCaml domains are not killable); it will simply
    run to completion and be reported [Done]/[Failed].

    With [cancel], every per-task token is a child of that token
    ({!Cancel.with_parent}): tripping it cancels the whole batch while
    each task still keeps its individual [timeout_s] budget.  The
    serve loop passes its shutdown token here. *)

val shutdown : t -> unit
(** Signal the workers and join them.  Idempotent.  Pending work of a
    concurrent {!map} is still drained (the caller of that map helps);
    new batches are rejected. *)

val with_pool : ?size:int -> ?chaos:Chaos.t -> (t -> 'a) -> 'a
(** [create], run, then {!shutdown} (also on exceptions). *)

(** {1 Self-healing}

    A worker domain that dies (an injected kill — or, symmetrically,
    any exception escaping the worker loop) first requeues its claimed
    task, so no batch ever loses work; the submitting thread's helping
    guarantees the batch completes even with {e every} worker dead.
    Healing restores parallelism, not correctness. *)

val heal : t -> int
(** Join and respawn every worker recorded dead since the last call,
    bumping [Pool_restarts] per respawn; returns the number respawned.
    Called automatically at batch boundaries when the pool has a chaos
    injector; a serve-loop watchdog may also call it directly.  Safe
    from any thread; a no-op (0) after {!shutdown}. *)

val dead_workers : t -> int
(** Workers currently dead and not yet healed. *)

val wedged : ?budget_s:float -> t -> int list
(** Worker slots that have been inside a {e single} task for more than
    [budget_s] seconds (default 1.0) — the watchdog's view of a wedged
    domain.  Advisory: a wedged domain cannot be killed, only reported
    and (if the task polls its token) cancelled. *)

(** {1 Utilization} *)

type domain_stats = {
  worker : int;   (** 0 = the submitting thread, 1.. = spawned domains *)
  tasks : int;    (** tasks executed by this worker *)
  busy_s : float; (** wall-clock seconds spent inside tasks *)
}

val stats : t -> domain_stats list
(** Cumulative per-worker utilization since creation (or the last
    {!reset_stats}), in worker order. *)

val reset_stats : t -> unit

(** {1 Optional-pool helper} *)

val map_opt : t option -> ('a -> 'b) -> 'a list -> 'b list
(** [map_opt None] is [List.map]; [map_opt (Some pool)] is
    [map pool].  The idiom for [?pool] parameters throughout the
    verification stack. *)

(** {1 Sharded map (coarse-grained fan-out)} *)

val map_sharded : ?shards:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map] with element batching: the input is split into at most
    [shards] (default: the pool size) {e contiguous} balanced chunks,
    each chunk is one pool task, and each task maps its elements in
    input order.  Results are bit-identical to [map] — only the
    scheduling granularity changes.

    Use this when the per-element work is small relative to the task
    dispatch cost, or when consecutive elements share domain-local
    caches (e.g. {!Pipeline.Pipesem.local_session}): one shard runs
    entirely on one domain, so a cached session is bound once per
    shard instead of competing per element. *)

val map_opt_sharded :
  ?shards:int -> t option -> ('a -> 'b) -> 'a list -> 'b list
(** [map_opt] with {!map_sharded} on the pool path. *)
