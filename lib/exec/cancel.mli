(** Cooperative cancellation for verification work.

    OCaml domains cannot be killed from outside, so cancellation is a
    contract: long-running tasks (the cycle simulators, obligation
    checkers, campaign mutant runs) poll a shared {!token} at safe
    points and abandon their work by raising {!Cancelled}.  A token
    trips either explicitly ({!cancel}) or implicitly when its
    deadline passes — the deadline is evaluated lazily at each poll,
    so no timer domain or signal handler is needed.

    Tokens are domain-safe: the flag is an [Atomic.t] and the deadline
    is immutable, so one token may be shared between the {!Pool}
    submitter that sets the budget and the worker running the task. *)

exception Cancelled
(** Raised by {!check} (and by polling tasks) when the token has
    tripped.  {!Pool.map_result} catches it and classifies the task
    from the token's {!reason} — [Timed_out] on a deadline trip,
    [Cancelled] on an explicit one; anywhere else it propagates like
    any exception. *)

type reason =
  | Explicit  (** {!cancel} was called (directly or on an ancestor) *)
  | Deadline  (** the token's (or an ancestor's) deadline passed *)
(** Why a token tripped.  The {e first} cause latches: a token that
    timed out stays [Deadline] even if {!cancel} is called later, and
    a child inherits the reason of the ancestor that brought it
    down. *)

type token

val create : ?timeout_s:float -> unit -> token
(** A fresh token; with [timeout_s], it trips automatically once that
    many wall-clock seconds have passed since creation. *)

val with_parent : token -> ?timeout_s:float -> unit -> token
(** A fresh token linked to [parent]: it trips when its own flag or
    deadline trips {e or} whenever the parent is tripped.  A tripped
    parent latches into the child's own flag on first observation, so
    subsequent polls stay one atomic load.  The serve loop gives each
    request such a child of the server-wide shutdown token: a request
    timeout cancels one request, shutdown cancels them all. *)

val never : token
(** A shared token that never trips (the zero-cost default for
    [?cancel] parameters). *)

val cancel : token -> unit
(** Trip the token explicitly.  Idempotent. *)

val cancelled : token -> bool
(** Whether the token has tripped (checks the deadline too). *)

val reason : token -> reason option
(** [None] while the token is armed; the latched {!reason} once it has
    tripped.  Call sites that must answer "timeout or cancelled?" —
    {!Pool.map_result}, the service handler — read this instead of
    inferring from which budget they happen to know about. *)

val check : token -> unit
(** @raise Cancelled when the token has tripped.  Cheap enough to call
    once per simulated cycle. *)

val elapsed_s : token -> float
(** Wall-clock seconds since the token was created. *)
