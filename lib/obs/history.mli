(** Per-commit performance history: [BENCH_history.jsonl].

    One line per bench run, appended by [bench --history]: the
    commit-ish, the epoch, and the run's full export (the same
    schema'd {!Export.entry} rows as [BENCH_pipeline.json]).  The
    history is what turns a single-snapshot baseline into a
    trajectory: trends are visible ([pipegen perf]), any two records
    diff against each other, and the [@check] gate compares the
    current run against a tolerance band over the last [k] records
    instead of ignoring timing fields.

    {2 Gate semantics}

    {ul
    {- [WORK.*] entries are deterministic work scores: every field is
       compared {e exactly} against the most recent record.  Any
       difference is a regression (or an intentional change that must
       be re-recorded).}
    {- [SCHED.*] entries are scheduling-dependent and never gated.}
    {- Timing entries ([ns_per_run]) gate on a band over the last [k]
       records: with at least [min_records] prior observations, the
       run fails if the current value falls outside
       [best * (1 +- tol)] — [best] is the minimum of the window for
       ns-like rows (lower is better) and the maximum for rows whose
       name contains ["speedup"] (higher is better).  The generous
       default tolerance absorbs shared-host noise while still
       catching sustained erosion.}} *)

type record = {
  commit : string;  (** short commit-ish, or ["unknown"] *)
  epoch : float;  (** seconds since the epoch, at append time *)
  entries : Export.entry list;
}

val schema_version : string

(** {1 The JSONL file} *)

val append : path:string -> record -> unit
(** Append one record as a single minified JSON line. *)

val read : path:string -> (record list, string) result
(** All records, oldest first.  A missing file is an error (callers
    treat it as the empty history explicitly). *)

val record_to_json : record -> Json.t
val record_of_json : Json.t -> (record, string) result

(** {1 Repository discovery} *)

val repo_root : unit -> string option
(** Walk up from the cwd to the first directory containing [.git] —
    works from inside dune's [_build] sandbox, where the cwd is a
    mirror of the source tree without the git metadata. *)

val default_path : unit -> string
(** [<repo_root>/BENCH_history.jsonl] (cwd-relative if no repository
    was found). *)

val current_commit : unit -> string
(** The short hash of [HEAD], read directly from [.git] (no
    subprocess); ["unknown"] when it cannot be resolved. *)

(** {1 Trend gate} *)

type gate_kind = Work | Timing

type gate = {
  g_name : string;  (** metric row, e.g. ["WORK.counters.plan_ops"] *)
  g_baseline : float;
  g_current : float;  (** [nan] when the row disappeared *)
  g_delta_pct : float;
  g_kind : gate_kind;
}

val trend_gate :
  ?k:int ->
  ?tol:float ->
  ?min_records:int ->
  history:record list ->
  Export.entry list ->
  gate list
(** Regressed rows of the current run against the history (empty list:
    the gate passes).  Defaults: [k = 5], [tol = 0.5],
    [min_records = 3] (timing rows with fewer prior observations are
    not gated; [WORK.*] rows gate from the first record). *)

val pp_gates : Format.formatter -> gate list -> unit
(** The human-readable regression table: name, baseline, current,
    delta. *)

(** {1 Trends and diffs (pipegen perf)} *)

val flatten : Export.entry list -> (string * float) list
(** Every numeric field of every entry as a flat
    [(metric, value)] list: ["<exp>.ns_per_run"], ["<exp>.cpi"],
    ["<exp>.instructions"], ["<exp>.cycles"], ["<exp>.<breakdown
    key>"]. *)

val select : record list -> string -> (record, string) result
(** Find a record by selector: a negative index from the end
    (["-1"] = newest), a non-negative index from the start, or a
    commit prefix. *)

type diff_row = {
  d_name : string;
  d_a : float option;
  d_b : float option;  (** [None]: the metric is absent on that side *)
}

val diff : record -> record -> diff_row list
(** Metrics that differ between two records (exact comparison),
    sorted by name. *)

val pp_diff : a:record -> b:record -> Format.formatter -> diff_row list -> unit

val pp_trends : ?k:int -> Format.formatter -> record list -> unit
(** Per-metric trend over the last [k] records (default 10): oldest
    and newest values with the relative change, timing rows and
    [WORK.*] rows separated. *)
