(** Deterministic work counters: cachegrind-style scores for the
    simulation and verification hot paths.

    Wall-clock timings drift with the host; these counters do not.
    Every counter tallies a unit of {e semantic} work (a plan run, a
    cell written, a cycle simulated) or of {e scheduling} work (a pool
    task, a plan binding).  The two classes have different contracts:

    {ul
    {- {b Work} counters are bit-identical for a given workload across
       pool sizes ([-j 1] vs [-j max]) and across the batched vs
       rebuild evaluation paths — they count what was computed, not
       how it was scheduled.  The bench exports them as [WORK.*] rows
       that regress {e exactly}.}
    {- {b Sched} counters depend on the pool size and the per-domain
       session caches (how the work was placed).  They are exported as
       [SCHED.*] rows and are informational only.}}

    Counting is {e domain-safe}: each domain increments a private
    domain-local array (no contention on the hot path), and
    {!snapshot} sums — or takes the max of, for high-water-mark
    counters — the arrays of every domain that ever counted,
    including pool workers that have since been joined.

    Overhead when disabled is one atomic load per call site. *)

type id =
  (* Work class: deterministic at any pool size. *)
  | Plan_runs  (** {!Hw.Plan.run} invocations (one per engine cycle) *)
  | Plan_ops  (** tape instructions executed by {!Hw.Plan.run} *)
  | Cells_written  (** register/file cells written by [Commit.apply] *)
  | State_resets  (** in-place {!Machine.State.reset} calls *)
  | Snapshot_words  (** words scanned by visible-state snapshots *)
  | Sim_cycles  (** pipeline cycles driven by the [Pipesem] loop *)
  | Sim_retired  (** instructions retired by the [Pipesem] loop *)
  | Seq_instructions  (** instructions executed by [Seqsem] sessions *)
  | Obligations  (** proof obligations processed by [discharge_all] *)
  | Bmc_programs  (** programs enumerated by [Bmc.exhaustive] *)
  | Sweep_points  (** sweep points evaluated by [Workload.Sweep] *)
  (* Sched class: varies with pool size, session-cache and
     compile-cache hits. *)
  | Plan_ops_folded
      (** tape instructions removed by {!Hw.Plan.optimize} (constant
          folding, identities, dead-code elimination) — compile-time
          work avoided on every subsequent {!Hw.Plan.run}.  Sched
          class: scales with the number of (re)compilations, not with
          per-program semantic work *)
  | Slots_killed
      (** plan slots removed by tape compaction in {!Hw.Plan.optimize}
          (Sched class, like {!Plan_ops_folded}) *)
  | Plan_binds  (** {!Machine.State.bind_plan} calls (per session) *)
  | Sessions  (** simulation sessions created (per domain) *)
  | Pool_tasks  (** tasks executed by an {!Exec.Pool} (any path) *)
  | Pool_stolen  (** tasks executed by a spawned worker domain *)
  | Pool_helped  (** tasks the submitting thread ran while waiting *)
  | Pool_inline  (** tasks run inline by a size-1 pool *)
  | Pool_queue_hwm  (** queued-task high-water mark (a [Max] counter) *)
  | Serve_requests  (** requests admitted by the [pipegen serve] loop *)
  | Serve_cache_hits  (** verdicts served from the content-addressed cache *)
  | Serve_cache_misses  (** verdict-cache lookups that had to evaluate *)
  | Serve_coalesced  (** duplicate in-batch requests folded into one run *)
  | Serve_queue_hwm  (** admission batch depth high-water mark (a [Max]) *)
  | Serve_shed  (** requests rejected [Overloaded] by admission control *)
  | Serve_retries  (** transient-failure task retries by the serve loop *)
  | Serve_journal_replayed  (** requests recovered from the journal *)
  | Pool_restarts  (** dead worker domains respawned by {!Exec.Pool.heal} *)

val all : id list
(** Every counter, in declaration order. *)

val name : id -> string
(** Stable snake_case name, e.g. ["plan_ops"]. *)

val is_work : id -> bool
(** [true] for the Work (deterministic) class. *)

val is_max : id -> bool
(** [true] for high-water-mark counters: {!record_max} aggregation
    (max across domains, max over time) instead of summing. *)

(** {1 Counting (hot path)} *)

val bump : id -> unit
(** [add id 1]. *)

val add : id -> int -> unit
(** Add [n] to this domain's cell.  No-op while disabled. *)

val record_max : id -> int -> unit
(** Raise this domain's cell to [n] if [n] is larger.  For [Max]
    counters.  No-op while disabled. *)

(** {1 Control} *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Counting is on by default.  The flag is global (all domains). *)

val with_disabled : (unit -> 'a) -> 'a
(** Run [f] with counting off, restoring the previous state (also on
    exceptions).  The bench uses this around repetition-timing loops
    and the fault campaign, whose iteration counts are wall-clock
    dependent and would make the totals nondeterministic. *)

val with_discarded : (unit -> 'a) -> 'a
(** Run [f] with this domain's counts going to a scratch cell that is
    thrown away afterwards.  Unlike {!with_disabled} the effect is
    local to the calling domain, so it is safe inside pool workers:
    other domains keep counting normally.  Used for scalar replays
    whose work was already accounted by a lane-parallel run. *)

val reset : unit -> unit
(** Zero every domain's cells (including domains already joined). *)

(** {1 Ledgers}

    A ledger stages counts for a speculative evaluation path (the
    bit-parallel lane engine).  Nothing becomes visible until
    {!ledger_flush}; a path that aborts simply drops the ledger and
    re-runs through the ordinary counted path, keeping the WORK totals
    bit-identical to the non-speculative run. *)

type ledger

val ledger : unit -> ledger
(** A fresh, all-zero ledger. *)

val ledger_add : ledger -> id -> int -> unit
(** Stage [n] units of [id] into the ledger (unconditionally — the
    enabled flag is consulted at flush time). *)

val ledger_flush : ledger -> unit
(** Fold the staged counts into the calling domain's cell.  No-op
    while counting is disabled. *)

(** {1 Snapshots} *)

val get : id -> int
(** Aggregated value of one counter (sum, or max for [Max] kinds). *)

val snapshot : unit -> (string * int) list
(** All counters, aggregated across domains, sorted by name. *)

val work_snapshot : unit -> (string * int) list
(** The Work class only — the deterministic [WORK.*] scores. *)

val sched_snapshot : unit -> (string * int) list
(** The Sched class only — informational [SCHED.*] values. *)
