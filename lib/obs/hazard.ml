type cause =
  | Startup
  | Dhaz of { stage : int; operand : string }
  | Ext_stall
  | Rollback_squash
  | Fetch_stall_propagated

let cause_label = function
  | Startup -> "startup"
  | Dhaz { stage; operand } -> Printf.sprintf "dhaz:stage%d:%s" stage operand
  | Ext_stall -> "ext_stall"
  | Rollback_squash -> "rollback_squash"
  | Fetch_stall_propagated -> "fetch_stall_propagated"

module Causes = Map.Make (struct
  type t = cause

  let compare = compare
end)

type t = {
  n_stages : int;
  reasons : cause option array;
      (* reasons.(k) = Some c when stage k holds a bubble created by c;
         None when the stage holds an instruction.  Stage 0 is always
         full, so index 0 is unused. *)
  mutable lost_map : int Causes.t;
  stage_maps : int Causes.t array;
  hits : (string * string, int) Hashtbl.t;
  mutable total_cycles : int;
  mutable retired : int;
  mutable retiring_cycles : int;
  mutable multi_retire_extra : int;
}

let create ~n_stages =
  let reasons = Array.make (max n_stages 1) (Some Startup) in
  reasons.(0) <- None;
  {
    n_stages;
    reasons;
    lost_map = Causes.empty;
    stage_maps = Array.make n_stages Causes.empty;
    hits = Hashtbl.create 16;
    total_cycles = 0;
    retired = 0;
    retiring_cycles = 0;
    multi_retire_extra = 0;
  }

let bump map cause = Causes.update cause (fun n -> Some (Option.value n ~default:0 + 1)) map

(* Why is stage [k] stalled this cycle?  [stall_k = (dhaz_k ∨ ext_k ∨
   stall_{k+1}) ∧ full_k]; attribute in the engine's OR order, falling
   back to the propagated-stall cause (for stage 0 this is the paper's
   fetch stall). *)
let stall_cause ~dhaz ~ext ~operand k =
  if dhaz.(k) then
    Dhaz { stage = k; operand = Option.value (operand k) ~default:"?" }
  else if ext.(k) then Ext_stall
  else Fetch_stall_propagated

let observe t ~full ~stall ~dhaz ~ext ~rollback ~ue ~operand ~retired =
  let n = t.n_stages in
  (* rollback'_k = ⋁_{i ≥ k} rollback_i (suffix over deeper stages) *)
  let rollback_up = Array.make n false in
  for k = n - 1 downto 0 do
    rollback_up.(k) <-
      rollback.(k) || (k < n - 1 && rollback_up.(k + 1))
  done;
  (* Retirement-slot attribution: a cycle with no retirement is charged
     to whatever kept the last stage from producing one. *)
  let w = n - 1 in
  if retired = 0 then begin
    let cause =
      if rollback_up.(w) then Rollback_squash
      else if full.(w) && stall.(w) then stall_cause ~dhaz ~ext ~operand w
      else if not full.(w) then
        (* The bubble occupying writeback; Startup covers the fill
           cycles before the first instruction arrives. *)
        Option.value t.reasons.(w) ~default:Startup
      else
        (* full ∧ ¬stall ∧ ¬rollback' ⇒ ue_w ⇒ a retirement; by the
           simulator's invariant this branch is unreachable. *)
        Startup
    in
    t.lost_map <- bump t.lost_map cause
  end
  else begin
    t.retiring_cycles <- t.retiring_cycles + 1;
    t.multi_retire_extra <- t.multi_retire_extra + (retired - 1)
  end;
  t.retired <- t.retired + retired;
  (* Per-stage attribution of every ¬ue_k cycle. *)
  for k = 0 to n - 1 do
    if not ue.(k) then begin
      let cause =
        if rollback_up.(k) then Rollback_squash
        else if full.(k) then stall_cause ~dhaz ~ext ~operand k
        else Option.value t.reasons.(k) ~default:Startup
      in
      t.stage_maps.(k) <- bump t.stage_maps.(k) cause
    end
  done;
  (* Bubble-reason shift, mirroring the simulator's tag shift: a stage
     that fails to receive from above records why stage k-1 did not
     deliver.  At a creation site the cause is always local (a
     propagated stall at k-1 implies stage k itself stalled, which
     contradicts the bubble forming at k). *)
  let old = Array.copy t.reasons in
  for st = n - 1 downto 1 do
    t.reasons.(st) <-
      (if rollback_up.(st) then Some Rollback_squash
       else if ue.(st - 1) then None  (* instruction moves in *)
       else if stall.(st) && full.(st) then old.(st)  (* holds its content *)
       else if not full.(st - 1) then
         Some (Option.value old.(st - 1) ~default:Startup)  (* bubble moves down *)
       else if rollback_up.(st - 1) then Some Rollback_squash
       else Some (stall_cause ~dhaz ~ext ~operand (st - 1)))
  done;
  t.total_cycles <- t.total_cycles + 1

let record_hit t ~rule ~source =
  let key = (rule, source) in
  Hashtbl.replace t.hits key
    (Option.value (Hashtbl.find_opt t.hits key) ~default:0 + 1)

type component = { cause : cause; cycles : int }

type summary = {
  n_stages : int;
  total_cycles : int;
  retired : int;
  retiring_cycles : int;
  multi_retire_extra : int;
  lost : component list;
  stage_stalls : (int * component list) list;
  hits : ((string * string) * int) list;
}

let components_of map =
  Causes.bindings map
  |> List.map (fun (cause, cycles) -> { cause; cycles })
  |> List.sort (fun a b -> compare (-a.cycles, a.cause) (-b.cycles, b.cause))

let summary (t : t) =
  {
    n_stages = t.n_stages;
    total_cycles = t.total_cycles;
    retired = t.retired;
    retiring_cycles = t.retiring_cycles;
    multi_retire_extra = t.multi_retire_extra;
    lost = components_of t.lost_map;
    stage_stalls =
      List.init t.n_stages (fun k -> (k, components_of t.stage_maps.(k)));
    hits =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.hits []
      |> List.sort compare;
  }

let cpi s =
  if s.retired = 0 then infinity
  else float_of_int s.total_cycles /. float_of_int s.retired

type decomposition = {
  base : float;
  terms : (string * float) list;
  cpi_total : float;
}

let decompose s =
  let r = float_of_int (max s.retired 1) in
  let terms =
    List.map
      (fun c -> (cause_label c.cause, float_of_int c.cycles /. r))
      s.lost
  in
  let terms =
    if s.multi_retire_extra > 0 then
      terms
      @ [ ("multi_retire", -.float_of_int s.multi_retire_extra /. r) ]
    else terms
  in
  { base = 1.0; terms; cpi_total = cpi s }

let pp_decomposition ppf d =
  Format.fprintf ppf "  %-34s %8.4f@." "base (one cycle per instruction)"
    d.base;
  List.iter
    (fun (label, v) -> Format.fprintf ppf "  %-34s %8.4f@." label v)
    d.terms;
  Format.fprintf ppf "  %-34s %8.4f@." "= CPI" d.cpi_total

let pp_summary ppf s =
  Format.fprintf ppf
    "cycles %d, retired %d (%d retiring cycles, %d coincident), CPI %.4f@."
    s.total_cycles s.retired s.retiring_cycles s.multi_retire_extra (cpi s);
  Format.fprintf ppf "lost-cycle attribution (retirement slot):@.";
  List.iter
    (fun c ->
      Format.fprintf ppf "  %-34s %8d@." (cause_label c.cause) c.cycles)
    s.lost;
  Format.fprintf ppf "per-stage stall attribution (cycles with !ue_k):@.";
  List.iter
    (fun (k, comps) ->
      if comps <> [] then begin
        Format.fprintf ppf "  stage %d:@." k;
        List.iter
          (fun c ->
            Format.fprintf ppf "    %-32s %8d@." (cause_label c.cause) c.cycles)
          comps
      end)
    s.stage_stalls;
  if s.hits <> [] then begin
    Format.fprintf ppf "forwarding-source hits (operand <- source):@.";
    List.iter
      (fun ((rule, source), count) ->
        Format.fprintf ppf "  %-22s <- %-16s %8d@." rule source count)
      s.hits
  end

let summary_to_json s =
  let components comps =
    Json.Obj
      (List.map (fun c -> (cause_label c.cause, Json.Int c.cycles)) comps)
  in
  Json.Obj
    [
      ("n_stages", Json.Int s.n_stages);
      ("cycles", Json.Int s.total_cycles);
      ("retired", Json.Int s.retired);
      ("retiring_cycles", Json.Int s.retiring_cycles);
      ("multi_retire_extra", Json.Int s.multi_retire_extra);
      ("cpi", Json.Float (cpi s));
      ("lost", components s.lost);
      ( "stage_stalls",
        Json.Obj
          (List.filter_map
             (fun (k, comps) ->
               if comps = [] then None
               else Some (Printf.sprintf "stage%d" k, components comps))
             s.stage_stalls) );
      ( "forwarding_hits",
        Json.Obj
          (List.map
             (fun ((rule, source), count) ->
               (rule ^ "<-" ^ source, Json.Int count))
             s.hits) );
    ]
