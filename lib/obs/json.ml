type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null"  (* JSON has no NaN *)
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(minify = false) v =
  let buf = Buffer.create 256 in
  let indent d = if not minify then Buffer.add_string buf (String.make (2 * d) ' ') in
  let newline () = if not minify then Buffer.add_char buf '\n' in
  let rec go d v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin Buffer.add_char buf ','; newline () end;
          indent (d + 1);
          go (d + 1) item)
        items;
      newline ();
      indent d;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin Buffer.add_char buf ','; newline () end;
          indent (d + 1);
          escape_string buf k;
          Buffer.add_string buf (if minify then ":" else ": ");
          go (d + 1) item)
        members;
      newline ();
      indent d;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of { pos : int; msg : string }

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error { pos = !pos; msg }) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected '%c', got '%c'" c c')
    | None -> fail (Printf.sprintf "expected '%c', got end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_encode buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> fail "invalid \\u escape"
           in
           pos := !pos + 4;
           utf8_encode buf code
         | c -> fail (Printf.sprintf "invalid escape '\\%c'" c));
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin is_float := true; advance (); digits () end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "invalid number";
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let parse_member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let members = ref [ parse_member () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          members := parse_member () :: !members;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !members)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing characters after JSON value";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error { pos; msg } ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" pos msg)

let write_file ~path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

let read_file ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    parse contents

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj m -> List.assoc_opt key m | _ -> None

let to_int_opt = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
let to_obj_opt = function Obj m -> Some m | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
