type id =
  | Plan_runs
  | Plan_ops
  | Cells_written
  | State_resets
  | Snapshot_words
  | Sim_cycles
  | Sim_retired
  | Seq_instructions
  | Obligations
  | Bmc_programs
  | Sweep_points
  | Plan_ops_folded
  | Slots_killed
  | Plan_binds
  | Sessions
  | Pool_tasks
  | Pool_stolen
  | Pool_helped
  | Pool_inline
  | Pool_queue_hwm
  | Serve_requests
  | Serve_cache_hits
  | Serve_cache_misses
  | Serve_coalesced
  | Serve_queue_hwm
  | Serve_shed
  | Serve_retries
  | Serve_journal_replayed
  | Pool_restarts

let all =
  [
    Plan_runs; Plan_ops; Cells_written; State_resets; Snapshot_words;
    Sim_cycles; Sim_retired; Seq_instructions; Obligations; Bmc_programs;
    Sweep_points; Plan_ops_folded; Slots_killed;
    Plan_binds; Sessions; Pool_tasks; Pool_stolen; Pool_helped;
    Pool_inline; Pool_queue_hwm; Serve_requests; Serve_cache_hits;
    Serve_cache_misses; Serve_coalesced; Serve_queue_hwm; Serve_shed;
    Serve_retries; Serve_journal_replayed; Pool_restarts;
  ]

let index = function
  | Plan_runs -> 0
  | Plan_ops -> 1
  | Cells_written -> 2
  | State_resets -> 3
  | Snapshot_words -> 4
  | Sim_cycles -> 5
  | Sim_retired -> 6
  | Seq_instructions -> 7
  | Obligations -> 8
  | Bmc_programs -> 9
  | Sweep_points -> 10
  | Plan_ops_folded -> 11
  | Slots_killed -> 12
  | Plan_binds -> 13
  | Sessions -> 14
  | Pool_tasks -> 15
  | Pool_stolen -> 16
  | Pool_helped -> 17
  | Pool_inline -> 18
  | Pool_queue_hwm -> 19
  | Serve_requests -> 20
  | Serve_cache_hits -> 21
  | Serve_cache_misses -> 22
  | Serve_coalesced -> 23
  | Serve_queue_hwm -> 24
  | Serve_shed -> 25
  | Serve_retries -> 26
  | Serve_journal_replayed -> 27
  | Pool_restarts -> 28

let n_ids = 29

let name = function
  | Plan_runs -> "plan_runs"
  | Plan_ops -> "plan_ops"
  | Cells_written -> "cells_written"
  | State_resets -> "state_resets"
  | Snapshot_words -> "snapshot_words"
  | Sim_cycles -> "sim_cycles"
  | Sim_retired -> "sim_retired"
  | Seq_instructions -> "seq_instructions"
  | Obligations -> "obligations"
  | Bmc_programs -> "bmc_programs"
  | Sweep_points -> "sweep_points"
  | Plan_ops_folded -> "plan_ops_folded"
  | Slots_killed -> "slots_killed"
  | Plan_binds -> "plan_binds"
  | Sessions -> "sessions"
  | Pool_tasks -> "pool_tasks"
  | Pool_stolen -> "pool_stolen"
  | Pool_helped -> "pool_helped"
  | Pool_inline -> "pool_inline"
  | Pool_queue_hwm -> "pool_queue_hwm"
  | Serve_requests -> "serve_requests"
  | Serve_cache_hits -> "serve_cache_hits"
  | Serve_cache_misses -> "serve_cache_misses"
  | Serve_coalesced -> "serve_coalesced"
  | Serve_queue_hwm -> "serve_queue_hwm"
  | Serve_shed -> "serve_shed"
  | Serve_retries -> "serve_retries"
  | Serve_journal_replayed -> "serve_journal_replayed"
  | Pool_restarts -> "pool_restarts"

let is_work = function
  | Plan_runs | Plan_ops | Cells_written | State_resets | Snapshot_words
  | Sim_cycles | Sim_retired | Seq_instructions | Obligations | Bmc_programs
  | Sweep_points ->
    true
  (* [Plan_ops_folded] / [Slots_killed] are compile-time tallies: they
     scale with how many times a machine is (re)compiled — a caching
     artifact, like [Plan_binds] — not with the semantic work of a run,
     so they sit outside the batched-equals-rebuild WORK contract. *)
  | Plan_ops_folded | Slots_killed | Plan_binds | Sessions | Pool_tasks
  | Pool_stolen | Pool_helped | Pool_inline | Pool_queue_hwm | Serve_requests
  | Serve_cache_hits | Serve_cache_misses | Serve_coalesced | Serve_queue_hwm
  | Serve_shed | Serve_retries | Serve_journal_replayed | Pool_restarts ->
    false

let is_max = function Pool_queue_hwm | Serve_queue_hwm -> true | _ -> false

(* Every domain counts into a private array (registered once, on the
   domain's first count) so the hot path takes no lock; aggregation
   walks the registry under [lock].  Arrays of joined domains stay
   registered: totals include work done by pool workers that have
   since been shut down. *)
let lock = Mutex.create ()
let cells : int array list ref = ref []

let dls : int array Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let a = Array.make n_ids 0 in
      Mutex.lock lock;
      cells := a :: !cells;
      Mutex.unlock lock;
      a)

let on = Atomic.make true
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b

let with_disabled f =
  let was = Atomic.get on in
  Atomic.set on false;
  Fun.protect ~finally:(fun () -> Atomic.set on was) f

let add id n =
  if Atomic.get on then begin
    let a = Domain.DLS.get dls in
    let i = index id in
    Array.unsafe_set a i (Array.unsafe_get a i + n)
  end

let bump id = add id 1

let record_max id n =
  if Atomic.get on then begin
    let a = Domain.DLS.get dls in
    let i = index id in
    if n > Array.unsafe_get a i then Array.unsafe_set a i n
  end

(* Counting into a scratch array that is deliberately NOT in the
   [cells] registry: everything counted inside [f] is discarded.
   Unlike [with_disabled] this is per-domain — other domains keep
   counting — so it is safe inside pool workers (the global [on] flag
   would turn counting off for every domain at once). *)
let with_discarded f =
  let prev = Domain.DLS.get dls in
  Domain.DLS.set dls (Array.make n_ids 0);
  Fun.protect ~finally:(fun () -> Domain.DLS.set dls prev) f

(* A ledger is a local accumulator for a speculative evaluation path:
   counts are staged into a plain array and only become visible when
   [ledger_flush] folds them into the calling domain's cell.  A path
   that fails mid-way simply drops the ledger and re-runs through the
   ordinary counted path, leaving the totals exactly as if the
   speculative attempt never happened. *)
type ledger = int array

let ledger () = Array.make n_ids 0

let ledger_add (l : ledger) id n =
  let i = index id in
  Array.unsafe_set l i (Array.unsafe_get l i + n)

let ledger_flush (l : ledger) =
  if Atomic.get on then begin
    let a = Domain.DLS.get dls in
    for i = 0 to n_ids - 1 do
      if l.(i) <> 0 then a.(i) <- a.(i) + l.(i)
    done
  end

let reset () =
  Mutex.lock lock;
  List.iter (fun a -> Array.fill a 0 n_ids 0) !cells;
  Mutex.unlock lock

let totals () =
  let t = Array.make n_ids 0 in
  let maxes =
    let m = Array.make n_ids false in
    List.iter (fun id -> m.(index id) <- is_max id) all;
    m
  in
  Mutex.lock lock;
  List.iter
    (fun a ->
      for i = 0 to n_ids - 1 do
        if maxes.(i) then t.(i) <- max t.(i) a.(i) else t.(i) <- t.(i) + a.(i)
      done)
    !cells;
  Mutex.unlock lock;
  t

let get id = (totals ()).(index id)

let snapshot_of pred =
  let t = totals () in
  List.filter pred all
  |> List.map (fun id -> (name id, t.(index id)))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () = snapshot_of (fun _ -> true)
let work_snapshot () = snapshot_of is_work
let sched_snapshot () = snapshot_of (fun id -> not (is_work id))
