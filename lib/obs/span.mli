(** Phase profiling: lightweight wall-clock spans around the stages of
    the transformation/verification pipeline (hint resolution,
    forwarding synthesis, stall-engine construction, consistency
    checking, BMC/equivalence), rendered to Chrome trace-event JSON by
    {!Trace_event} and loadable in Perfetto / chrome://tracing.

    Collection is process-global and off by default: instrumented code
    calls {!with_span} unconditionally, which costs one branch when
    disabled.  Nesting is tracked so the viewer can reconstruct the
    flame graph.

    Thread-safety: safe to call from any OCaml 5 domain.  The record
    list is mutex-protected; the nesting depth is domain-local, so a
    span opened inside an {!Exec.Pool} worker starts at depth 0 of
    that worker's own flame.  {!records} returns spans from every
    domain in completion order. *)

type record = {
  span_name : string;
  start_us : float;  (** microseconds since {!set_enabled}[ true] *)
  dur_us : float;
  depth : int;       (** static nesting depth at entry, 0 = top level *)
  args : (string * string) list;
}

val set_enabled : bool -> unit
(** Enabling resets the clock origin and clears previous records. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop collected records (keeps the enabled flag and clock origin). *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Runs the thunk; when collection is enabled, records a completed
    span even if the thunk raises.  No-op wrapper when disabled. *)

val records : unit -> record list
(** Completed spans in completion order (children before parents). *)
