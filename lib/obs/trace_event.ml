let event (r : Span.record) =
  Json.Obj
    ([
       ("name", Json.String r.Span.span_name);
       ("cat", Json.String "pipegen");
       ("ph", Json.String "X");
       ("ts", Json.Float r.Span.start_us);
       ("dur", Json.Float r.Span.dur_us);
       ("pid", Json.Int 1);
       ("tid", Json.Int 1);
     ]
    @
    match r.Span.args with
    | [] -> []
    | args ->
      [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args)) ])

let metadata name =
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let to_json ?(process_name = "pipegen") records =
  (* Chrome expects events sorted by timestamp; parents (which complete
     after their children) must still come first for stable nesting, so
     sort by (start, deeper-last). *)
  let sorted =
    List.sort
      (fun (a : Span.record) (b : Span.record) ->
        match compare a.Span.start_us b.Span.start_us with
        | 0 -> compare a.Span.depth b.Span.depth
        | c -> c)
      records
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata process_name :: List.map event sorted));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string ?process_name records = Json.to_string (to_json ?process_name records)

let write_file ~path ?process_name records =
  Json.write_file ~path (to_json ?process_name records)
