type record = {
  span_name : string;
  start_us : float;
  dur_us : float;
  depth : int;
  args : (string * string) list;
}

(* Collection is process-global and shared by every domain: the record
   list and the clock origin are guarded by [lock]; the nesting depth
   is domain-local (spans opened by a worker domain start at depth 0
   in that domain's own flame). *)
let lock = Mutex.create ()
let flag = ref false
let origin = ref 0.0
let completed : record list ref = ref []
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let set_enabled b =
  Mutex.lock lock;
  flag := b;
  if b then begin
    origin := Unix.gettimeofday ();
    completed := []
  end;
  Mutex.unlock lock;
  Domain.DLS.get depth_key := 0

let enabled () = !flag

let reset () =
  Mutex.lock lock;
  completed := [];
  Mutex.unlock lock

let with_span ?(args = []) span_name f =
  if not !flag then f ()
  else begin
    let depth_now = Domain.DLS.get depth_key in
    let start = Unix.gettimeofday () in
    let depth = !depth_now in
    incr depth_now;
    Fun.protect
      ~finally:(fun () ->
        decr depth_now;
        let stop = Unix.gettimeofday () in
        let r =
          {
            span_name;
            start_us = (start -. !origin) *. 1e6;
            dur_us = (stop -. start) *. 1e6;
            depth;
            args;
          }
        in
        Mutex.lock lock;
        completed := r :: !completed;
        Mutex.unlock lock)
      f
  end

let records () =
  Mutex.lock lock;
  let r = List.rev !completed in
  Mutex.unlock lock;
  r
