type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

(* Power-of-two buckets: bucket [i] counts samples in (2^(i-1), 2^i];
   bucket 0 counts samples <= 1.  64 buckets cover the full int range. *)
type histogram = {
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type timer = { mutable t_total_s : float; mutable t_count : int }

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Timer of timer

type registry = {
  tbl : (string, string * instrument) Hashtbl.t;  (* name -> help, metric *)
  mutable order : string list;                    (* reverse insertion order *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Timer _ -> "timer"

let register reg ?(help = "") name fresh extract =
  match Hashtbl.find_opt reg.tbl name with
  | Some (_, existing) -> (
    match extract existing with
    | Some m -> m
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s" name
           (kind_name existing)))
  | None ->
    let m = fresh () in
    let instrument, value = m in
    Hashtbl.replace reg.tbl name (help, instrument);
    reg.order <- name :: reg.order;
    value

let counter reg ?help name =
  register reg ?help name
    (fun () ->
      let c = { c_value = 0 } in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: negative counter increment";
  c.c_value <- c.c_value + n

let counter_value c = c.c_value

let gauge reg ?help name =
  register reg ?help name
    (fun () ->
      let g = { g_value = 0.0 } in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let set g v = g.g_value <- v
let gauge_value g = g.g_value

let histogram reg ?help name =
  register reg ?help name
    (fun () ->
      let h =
        {
          buckets = Array.make 64 0;
          h_count = 0;
          h_sum = 0.0;
          h_min = Float.infinity;
          h_max = Float.neg_infinity;
        }
      in
      (Histogram h, h))
    (function Histogram h -> Some h | _ -> None)

let bucket_index v =
  if v <= 1.0 then 0
  else
    let i = int_of_float (Float.ceil (Float.log2 v)) in
    if i < 0 then 0 else if i > 63 then 63 else i

let observe h v =
  h.buckets.(bucket_index v) <- h.buckets.(bucket_index v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let histogram_buckets h =
  let acc = ref [] in
  for i = 63 downto 0 do
    if h.buckets.(i) > 0 then acc := (Float.pow 2.0 (float_of_int i), h.buckets.(i)) :: !acc
  done;
  !acc

let timer reg ?help name =
  register reg ?help name
    (fun () ->
      let t = { t_total_s = 0.0; t_count = 0 } in
      (Timer t, t))
    (function Timer t -> Some t | _ -> None)

let time t f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      t.t_total_s <- t.t_total_s +. (Unix.gettimeofday () -. t0);
      t.t_count <- t.t_count + 1)
    f

let timer_total_s t = t.t_total_s
let timer_count t = t.t_count

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let fold_ordered reg f =
  List.fold_left
    (fun acc name ->
      match Hashtbl.find_opt reg.tbl name with
      | Some (help, m) -> f acc name help m
      | None -> acc)
    [] (List.rev reg.order)
  |> List.rev

let to_json reg =
  let pick want =
    fold_ordered reg (fun acc name help m ->
        match want name help m with Some j -> j :: acc | None -> acc)
  in
  let counters =
    pick (fun name _ m ->
        match m with Counter c -> Some (name, Json.Int c.c_value) | _ -> None)
  in
  let gauges =
    pick (fun name _ m ->
        match m with Gauge g -> Some (name, Json.Float g.g_value) | _ -> None)
  in
  let histograms =
    pick (fun name _ m ->
        match m with
        | Histogram h ->
          Some
            ( name,
              Json.Obj
                [
                  ("count", Json.Int h.h_count);
                  ("sum", Json.Float h.h_sum);
                  ( "min",
                    if h.h_count = 0 then Json.Null else Json.Float h.h_min );
                  ( "max",
                    if h.h_count = 0 then Json.Null else Json.Float h.h_max );
                  ( "buckets",
                    Json.List
                      (List.map
                         (fun (le, count) ->
                           Json.Obj
                             [ ("le", Json.Float le); ("count", Json.Int count) ])
                         (histogram_buckets h)) );
                ] )
        | _ -> None)
  in
  let timers =
    pick (fun name _ m ->
        match m with
        | Timer t ->
          Some
            ( name,
              Json.Obj
                [
                  ("total_s", Json.Float t.t_total_s);
                  ("count", Json.Int t.t_count);
                ] )
        | _ -> None)
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
      ("timers", Json.Obj timers);
    ]

let to_csv reg =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "kind,name,value,count,help\n";
  let quote s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let row kind name value count help =
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%s,%d,%s\n" kind (quote name) value count
         (quote help))
  in
  List.iter
    (fun (kind, name, value, count, help) -> row kind name value count help)
    (fold_ordered reg (fun acc name help m ->
         (match m with
         | Counter c -> ("counter", name, string_of_int c.c_value, 1, help)
         | Gauge g -> ("gauge", name, Printf.sprintf "%.6g" g.g_value, 1, help)
         | Histogram h ->
           ("histogram", name, Printf.sprintf "%.6g" h.h_sum, h.h_count, help)
         | Timer t ->
           ("timer", name, Printf.sprintf "%.6g" t.t_total_s, t.t_count, help))
         :: acc));
  Buffer.contents buf
