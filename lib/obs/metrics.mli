(** Zero-dependency metrics registry: counters, gauges, histograms and
    timers, with JSON and CSV serialization.

    A registry is an explicit value (no global): simulators, checkers
    and benchmark drivers create one per run and hand it to the
    serializers.  Metric names within a registry are unique; asking for
    an existing name of the same kind returns the existing instrument,
    of a different kind raises [Invalid_argument]. *)

type registry

val create : unit -> registry

(** {1 Counters} — monotone integer accumulators *)

type counter

val counter : registry -> ?help:string -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
(** @raise Invalid_argument on a negative increment. *)

val counter_value : counter -> int

(** {1 Gauges} — last-write-wins floats *)

type gauge

val gauge : registry -> ?help:string -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} — power-of-two-bucketed distributions of
    non-negative samples, with exact count/sum/min/max *)

type histogram

val histogram : registry -> ?help:string -> string -> histogram

val observe : histogram -> float -> unit
(** Negative samples clamp to bucket 0. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_buckets : histogram -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)], ascending. *)

(** {1 Timers} — wall-clock span accumulators *)

type timer

val timer : registry -> ?help:string -> string -> timer

val time : timer -> (unit -> 'a) -> 'a
(** Accumulates elapsed wall-clock seconds (and a call count) even when
    the thunk raises. *)

val timer_total_s : timer -> float
val timer_count : timer -> int

(** {1 Serialization} *)

val to_json : registry -> Json.t
(** [{ "counters": {...}, "gauges": {...}, "histograms": {...},
       "timers": {...} }], each metric keyed by name. *)

val to_csv : registry -> string
(** One row per metric: [kind,name,value,count,help]; histograms report
    their sum in [value]. *)
