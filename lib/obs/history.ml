type record = {
  commit : string;
  epoch : float;
  entries : Export.entry list;
}

let schema_version = "pipeline-bench-history/1"

let ( let* ) r f = Result.bind r f

let record_to_json r =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("commit", Json.String r.commit);
      ("epoch", Json.Float r.epoch);
      ("export", Export.to_json r.entries);
    ]

let record_of_json j =
  match Json.member "schema" j with
  | Some (Json.String v) when v = schema_version ->
    let* commit =
      match Json.member "commit" j with
      | Some (Json.String c) -> Ok c
      | _ -> Error "missing \"commit\" field"
    in
    let* epoch =
      match Option.bind (Json.member "epoch" j) Json.to_float_opt with
      | Some e -> Ok e
      | None -> Error "missing \"epoch\" field"
    in
    let* entries =
      match Json.member "export" j with
      | Some e -> Export.of_json e
      | None -> Error "missing \"export\" field"
    in
    Ok { commit; epoch; entries }
  | Some (Json.String v) ->
    Error
      (Printf.sprintf "unknown history schema %S (expected %S)" v
         schema_version)
  | Some _ | None -> Error "missing \"schema\" field"

let append ~path r =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~minify:true (record_to_json r));
      output_char oc '\n')

let read ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents ->
    let lines = String.split_on_char '\n' contents in
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | line :: tl ->
        if String.trim line = "" then go (i + 1) acc tl
        else
          let* j =
            Result.map_error
              (fun m -> Printf.sprintf "%s:%d: %s" path i m)
              (Json.parse line)
          in
          let* r =
            Result.map_error
              (fun m -> Printf.sprintf "%s:%d: %s" path i m)
              (record_of_json j)
          in
          go (i + 1) (r :: acc) tl
    in
    go 1 [] lines

(* ------------------------------------------------------------------ *)
(* Repository discovery (no subprocess)                                 *)
(* ------------------------------------------------------------------ *)

let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir ".git") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let default_path () =
  match repo_root () with
  | Some root -> Filename.concat root "BENCH_history.jsonl"
  | None -> "BENCH_history.jsonl"

let read_first_line path =
  match In_channel.with_open_text path In_channel.input_line with
  | Some l -> Some (String.trim l)
  | None | (exception Sys_error _) -> None

let short h = if String.length h > 12 then String.sub h 0 12 else h

let is_hex s =
  String.length s >= 7
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
       s

let resolve_ref gitdir r =
  match read_first_line (Filename.concat gitdir r) with
  | Some h when is_hex h -> Some (short h)
  | Some _ | None -> (
    (* The ref may only exist packed. *)
    match
      In_channel.with_open_text
        (Filename.concat gitdir "packed-refs")
        In_channel.input_lines
    with
    | exception Sys_error _ -> None
    | lines ->
      List.find_map
        (fun line ->
          match String.index_opt line ' ' with
          | Some i
            when String.sub line (i + 1) (String.length line - i - 1) = r ->
            let h = String.sub line 0 i in
            if is_hex h then Some (short h) else None
          | Some _ | None -> None)
        lines)

let current_commit () =
  match repo_root () with
  | None -> "unknown"
  | Some root -> (
    let gitdir = Filename.concat root ".git" in
    match read_first_line (Filename.concat gitdir "HEAD") with
    | Some head when String.length head > 5 && String.sub head 0 5 = "ref: "
      -> (
      let r = String.trim (String.sub head 5 (String.length head - 5)) in
      match resolve_ref gitdir r with Some h -> h | None -> "unknown")
    | Some head when is_hex head -> short head
    | Some _ | None -> "unknown")

(* ------------------------------------------------------------------ *)
(* Flattening: every numeric field as a named metric row                *)
(* ------------------------------------------------------------------ *)

let flatten entries =
  List.concat_map
    (fun (e : Export.entry) ->
      let n = e.Export.experiment in
      List.filter_map Fun.id
        [
          Option.map (fun v -> (n ^ ".ns_per_run", v)) e.Export.ns_per_run;
          Option.map (fun v -> (n ^ ".cpi", v)) e.Export.cpi;
          Option.map
            (fun v -> (n ^ ".instructions", float_of_int v))
            e.Export.instructions;
          Option.map
            (fun v -> (n ^ ".cycles", float_of_int v))
            e.Export.cycles;
        ]
      @ List.map (fun (k, v) -> (n ^ "." ^ k, v)) e.Export.breakdown)
    entries

(* ------------------------------------------------------------------ *)
(* Trend gate                                                           *)
(* ------------------------------------------------------------------ *)

type gate_kind = Work | Timing

type gate = {
  g_name : string;
  g_baseline : float;
  g_current : float;
  g_delta_pct : float;
  g_kind : gate_kind;
}

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let contains_sub sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let pct ~baseline ~current =
  if baseline = 0.0 then if current = 0.0 then 0.0 else infinity
  else (current -. baseline) /. baseline *. 100.0

let gate ~kind ~name ~baseline ~current =
  {
    g_name = name;
    g_baseline = baseline;
    g_current = current;
    g_delta_pct = pct ~baseline ~current;
    g_kind = kind;
  }

(* The last [k] records, newest first. *)
let window ~k records =
  let rec take n = function
    | [] -> []
    | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl
  in
  take k (List.rev records)

let trend_gate ?(k = 5) ?(tol = 0.5) ?(min_records = 3) ~history entries =
  let recent = window ~k history in
  let gates = ref [] in
  (* WORK.* rows: exact comparison against the most recent record that
     carries the row.  Every numeric field participates. *)
  let work_current =
    flatten
      (List.filter
         (fun (e : Export.entry) -> has_prefix "WORK." e.Export.experiment)
         entries)
  in
  let work_baseline =
    List.find_map
      (fun r ->
        let rows =
          flatten
            (List.filter
               (fun (e : Export.entry) ->
                 has_prefix "WORK." e.Export.experiment)
               r.entries)
        in
        if rows = [] then None else Some rows)
      recent
  in
  (match work_baseline with
  | None -> ()
  | Some baseline_rows ->
    List.iter
      (fun (name, bv) ->
        match List.assoc_opt name work_current with
        | Some cv ->
          if cv <> bv then
            gates := gate ~kind:Work ~name ~baseline:bv ~current:cv :: !gates
        | None ->
          gates :=
            gate ~kind:Work ~name ~baseline:bv ~current:Float.nan :: !gates)
      baseline_rows);
  (* Timing rows: a tolerance band over the window.  [SCHED.*] rows
     never carry ns_per_run, but exclude them defensively anyway. *)
  List.iter
    (fun (e : Export.entry) ->
      let name = e.Export.experiment in
      if not (has_prefix "WORK." name || has_prefix "SCHED." name) then
        match e.Export.ns_per_run with
        | None -> ()
        | Some current ->
          let past =
            List.filter_map
              (fun r ->
                List.find_map
                  (fun (b : Export.entry) ->
                    if b.Export.experiment = name then b.Export.ns_per_run
                    else None)
                  r.entries)
              recent
          in
          if List.length past >= min_records then
            let row = name ^ ".ns_per_run" in
            if contains_sub "speedup" name then begin
              (* Higher is better: regress against the window's best. *)
              let best = List.fold_left max neg_infinity past in
              if current < best *. (1.0 -. tol) then
                gates :=
                  gate ~kind:Timing ~name:row ~baseline:best ~current
                  :: !gates
            end
            else begin
              let best = List.fold_left min infinity past in
              if current > best *. (1.0 +. tol) then
                gates :=
                  gate ~kind:Timing ~name:row ~baseline:best ~current
                  :: !gates
            end)
    entries;
  List.sort (fun a b -> String.compare a.g_name b.g_name) !gates

(* Work scores are exact integers and must print as such; timings keep
   6 significant digits. *)
let num v =
  if Float.is_nan v then "(missing)"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let pp_gates ppf gates =
  Format.fprintf ppf "  %-48s %14s %14s %10s@." "row" "baseline" "current"
    "delta";
  List.iter
    (fun g ->
      let delta =
        match g.g_kind with
        | Work ->
          if Float.is_nan g.g_current then "gone"
          else Printf.sprintf "%+.0f" (g.g_current -. g.g_baseline)
        | Timing -> Printf.sprintf "%+.1f%%" g.g_delta_pct
      in
      Format.fprintf ppf "  %-48s %14s %14s %10s@." g.g_name
        (num g.g_baseline) (num g.g_current) delta)
    gates

(* ------------------------------------------------------------------ *)
(* Selection, diff, trends                                              *)
(* ------------------------------------------------------------------ *)

let select records spec =
  let n = List.length records in
  match int_of_string_opt spec with
  | Some i ->
    let i = if i < 0 then n + i else i in
    if i >= 0 && i < n then Ok (List.nth records i)
    else Error (Printf.sprintf "record index %s out of range (0..%d)" spec (n - 1))
  | None -> (
    match
      List.filter (fun r -> has_prefix spec r.commit) records
    with
    | [ r ] -> Ok r
    | [] -> Error (Printf.sprintf "no record with commit prefix %S" spec)
    | _ :: _ ->
      Error (Printf.sprintf "commit prefix %S is ambiguous" spec))

type diff_row = {
  d_name : string;
  d_a : float option;
  d_b : float option;
}

let diff a b =
  let fa = flatten a.entries and fb = flatten b.entries in
  let names =
    List.sort_uniq String.compare (List.map fst fa @ List.map fst fb)
  in
  List.filter_map
    (fun name ->
      let va = List.assoc_opt name fa and vb = List.assoc_opt name fb in
      if va = vb then None else Some { d_name = name; d_a = va; d_b = vb })
    names

let label r =
  let tm = Unix.gmtime r.epoch in
  Printf.sprintf "%s (%04d-%02d-%02d)" r.commit (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday

let pp_diff ~a ~b ppf rows =
  Format.fprintf ppf "  %-48s %14s %14s %10s@." "metric" (label a) (label b)
    "delta";
  List.iter
    (fun { d_name; d_a; d_b } ->
      let opt = function Some v -> num v | None -> "(absent)" in
      let delta =
        match (d_a, d_b) with
        | Some va, Some vb when va <> 0.0 ->
          Printf.sprintf "%+.1f%%" ((vb -. va) /. va *. 100.0)
        | _ -> ""
      in
      Format.fprintf ppf "  %-48s %14s %14s %10s@." d_name (opt d_a)
        (opt d_b) delta)
    rows

let pp_trends ?(k = 10) ppf records =
  match window ~k records with
  | [] -> Format.fprintf ppf "  (empty history)@."
  | newest :: _ as recent ->
    let oldest = List.nth recent (List.length recent - 1) in
    Format.fprintf ppf "  %d record(s), %s .. %s@." (List.length records)
      (label oldest) (label newest);
    let f_new = flatten newest.entries and f_old = flatten oldest.entries in
    let section title pred =
      let rows =
        List.filter (fun (name, _) -> pred name) f_new
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      if rows <> [] then begin
        Format.fprintf ppf "@.  %s@." title;
        Format.fprintf ppf "  %-48s %14s %14s %10s@." "metric" "oldest"
          "newest" "delta";
        List.iter
          (fun (name, v_new) ->
            match List.assoc_opt name f_old with
            | Some v_old ->
              let delta =
                if v_old = 0.0 then
                  if v_new = 0.0 then "" else "new!=0"
                else Printf.sprintf "%+.1f%%" ((v_new -. v_old) /. v_old *. 100.0)
              in
              Format.fprintf ppf "  %-48s %14s %14s %10s@." name (num v_old)
                (num v_new) delta
            | None ->
              Format.fprintf ppf "  %-48s %14s %14s %10s@." name "-"
                (num v_new) "new")
          rows
      end
    in
    section "deterministic work scores (gate: exact)" (has_prefix "WORK.");
    section "timings (gate: trend band)" (fun name ->
        (not (has_prefix "WORK." name || has_prefix "SCHED." name))
        && Filename.check_suffix name ".ns_per_run");
    section "scheduling (informational)" (has_prefix "SCHED.")
