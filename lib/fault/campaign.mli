(** Detection-coverage campaigns (the fault-injection driver).

    For every mutant the campaign runs the verification stack —
    consistency co-simulation against the unfaulted reference, the
    full obligation discharge, and (when the target provides one) an
    exhaustive BMC sweep — and classifies the result:

    - {e detected}: some checker flagged the mutant (the desired
      outcome — the proof engine caught the defect);
    - {e masked}: every checker passed {e and} the mutant's
      architecturally visible final state equals the golden run's —
      the fault has no observable effect on this workload, so the
      green verdict is sound;
    - {e missed}: every checker passed but the visible state
      {e differs} from the golden run — a proof-engine false
      negative.  Any miss fails the campaign;
    - {e timed out}: the per-mutant budget expired (the wedged-engine
      mutant exercises this path deliberately);
    - {e aborted}: the classification task itself died — an engine
      bug, counted as a campaign failure like a miss.

    Campaigns are deterministic: outcomes carry no timing data and
    are reported in mutant order, so a run is bit-identical at any
    pool size, and the JSON checkpoint lets an interrupted campaign
    resume without re-running finished mutants. *)

type classification = Detected | Masked | Missed | Timed_out | Aborted

type outcome = {
  out_id : string;       (** {!Mutate.id} of the fault *)
  out_fault : string;    (** human-readable fault description *)
  out_class : classification;
  out_evidence : string;
}

type summary = {
  mutants : int;
  detected : int;
  masked : int;
  missed : int;
  timed_out : int;
  aborted : int;
}

val ok : summary -> bool
(** No misses and no aborts. *)

type target

val make_target :
  ?reference:Machine.Seqsem.trace ->
  ?instructions:int ->
  ?disasm:(int -> string option) ->
  ?bmc:(int list -> Pipeline.Transform.t) * int list * int ->
  ?bmc_load:(int list -> (string * Machine.Value.t) list) ->
  Pipeline.Transform.t ->
  target
(** The machine under test.  Its evaluation plan is compiled once,
    here: the golden run and every {e behavioural} mutant (injection
    hooks over the unchanged netlist) replay it through per-domain
    sessions; only {e structural} mutants — whose fault is a rewritten
    netlist ({!Mutate.mut_structural}) — still transform and compile
    their own machine.

    [reference] is the specification trace the co-simulations compare
    against (default: the prepared sequential machine itself);
    [instructions] the workload length (default 200); [disasm] renders
    instruction tags in evidence strings; [bmc = (build, alphabet,
    length)] adds an exhaustive sweep per mutant — [build] constructs
    the {e unfaulted} machine for a program, the campaign re-applies
    each structural fault to it ({!Mutate.rewrite}).  [bmc_load] makes
    those sweeps batched (compile once {e per mutant}, see
    {!Proof_engine.Bmc.exhaustive}): it must return the
    program-dependent initial values of [build]'s machine (e.g.
    [Core.Toy.image]). *)

val run :
  ?pool:Exec.Pool.t ->
  ?timeout_s:float ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?metrics:Obs.Metrics.registry ->
  ?lanes:bool ->
  target ->
  Mutate.mutant list ->
  outcome list * summary
(** Classify every mutant.  With [pool], mutants fan out over the
    domain pool ({!Exec.Pool.map_result}): a raising task is
    [Aborted], a task past [timeout_s] is cancelled cooperatively and
    [Timed_out] — neither ever aborts the campaign or kills a worker.

    [checkpoint] names a JSON file rewritten after every completed
    batch; with [resume], mutants whose ids already appear in it are
    not re-run.  [metrics] receives [fault.*] counters.

    [lanes] threads through to the per-mutant BMC sweeps
    ({!Proof_engine.Bmc.exhaustive}): batched sweeps of {e structural}
    mutants run bit-parallel, up to 62 programs per machine word;
    behavioural mutants carry injection hooks, which the lane engine
    refuses, so their sweeps stay scalar.  Classifications, evidence
    strings and WORK counters are identical either way. *)

val summarize : outcome list -> summary

val breakdown : summary -> (string * float) list
(** The detection-coverage section for the perf export
    ({!Obs.Export.entry} breakdown): mutant counts per class. *)

val to_json : outcome list -> Obs.Json.t
(** The checkpoint schema (["fault-campaign/1"]): summary plus the
    per-mutant outcomes, in campaign order. *)

val of_json : Obs.Json.t -> (outcome list, string) result

val pp_outcome : Format.formatter -> outcome -> unit
val pp_summary : Format.formatter -> summary -> unit
