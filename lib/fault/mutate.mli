(** Fault models and structural mutators (detection-coverage
    campaigns, step 1).

    A {!fault} describes one defect in the generated pipeline control:
    a stuck-at on a stall-engine wire, a structural rewrite of the
    synthesized forwarding netlist, a transient single-event bit flip
    in a pipeline register, or a wedged engine.  {!apply} turns a
    fault into a {!mutant} — a possibly-rewritten {!Pipeline.Transform.t}
    plus a stable identifier — which the campaign driver then runs the
    verification stack against.

    Structural faults ([Stuck_hit], [Drop_dhaz], [Mux_swap]) rewrite
    the synthesized signal definitions, so they are carried by the
    netlist itself and survive plan compilation; behavioural faults
    ([Stuck_wire], [Transient_flip], [Hang]) live in the simulator's
    injection hooks ({!Inject.injection}) because the stall engine's
    wires are computed by the cycle driver, not the netlist. *)

(** A stall-engine wire, per stage. *)
type wire =
  | Full           (** the full-bit register output, [full_k] *)
  | Stall          (** [stall_k]; a stuck wire also re-derives [ue_k] *)
  | Update_enable  (** [ue_k] after derivation *)
  | Rollback       (** the squash request [rollback_k]; the suffix OR
                       and [ue] are re-derived coherently *)

type fault =
  | Stuck_wire of { wire : wire; stage : int; value : bool }
  | Stuck_hit of { signal : string; value : bool }
      (** a forwarding hit comparator output tied to 0 or 1 *)
  | Drop_dhaz of { signal : string }
      (** a per-operand interlock request wire dropped (tied to 0) *)
  | Mux_swap of { g_signal : string; hit_a : string; hit_b : string }
      (** two select inputs of a forwarding mux crossed *)
  | Transient_flip of { register : string; bit : int; at_cycle : int }
      (** single-event upset: one bit of a pipeline register flips
          right after the given clock edge *)
  | Hang of { at_cycle : int }
      (** the stall engine wedges (spins) at the given cycle — the
          deliberate liveness-broken mutant exercising the campaign's
          timeout path *)

type mutant = {
  mut_id : string;          (** stable, human-readable; see {!id} *)
  mut_fault : fault;
  mut_tr : Pipeline.Transform.t;
      (** the machine under test: structurally rewritten for
          structural faults, the original otherwise *)
  mut_structural : bool;    (** the netlist was rewritten *)
}

val id : fault -> string
(** Deterministic identifier, e.g. ["stall@2=1"], ["hit:$hit_A_3=0"],
    ["muxswap:$g_A:$hit_A_1<->$hit_A_2"], ["flip:C.4[7]@c12"],
    ["hang@c5"].  Used as the checkpoint/resume key. *)

val structural : fault -> bool

val rewrite : fault -> Pipeline.Transform.t -> Pipeline.Transform.t
(** Apply a structural fault to the netlist (identity for behavioural
    faults).  Exposed separately so the BMC sweep can re-apply a
    fault to freshly built machines of the same family.
    @raise Invalid_argument when the fault names a signal the machine
    does not have. *)

val apply : fault -> Pipeline.Transform.t -> mutant

val enumerate :
  ?transients:int ->
  ?seed:int ->
  ?max_cycle:int ->
  ?hang:bool ->
  Pipeline.Transform.t ->
  mutant list
(** The campaign's mutant space, in a deterministic order:

    - stuck-at faults on every stall-engine wire of every stage
      (both polarities where meaningful; rollback stuck-at-0 only
      when the machine speculates);
    - per forwarding rule: every hit comparator stuck both ways, the
      interlock request dropped, and — when the rule has at least two
      forwarding sources — the mux-select swap;
    - [transients] (default 8) seeded-random single-bit flips in
      scalar pipeline registers at cycles in [1, max_cycle]
      (default 30), replayable from [seed] (default 0);
    - with [hang] (default [false]), one wedged-engine mutant. *)

val sample : seed:int -> count:int -> 'a list -> 'a list
(** A seeded-shuffle prefix of [count] elements (the whole list when
    shorter), deterministic in [seed]; input order does not leak into
    the prefix order. *)

val pp_fault : Format.formatter -> fault -> unit
